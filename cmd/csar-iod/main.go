// Command csar-iod runs one CSAR I/O daemon: the per-node storage server
// holding a file's data, mirror, parity and overflow stores, the parity
// lock table, and the Section 5.2 write buffering.
//
// With -store the daemon keeps its stores as sparse files in a host
// directory (the role the iods' local ext2 file systems play in the
// paper), surviving restarts; without it, contents live in memory and the
// redundancy on the other servers is what protects them.
// See csar-mgr for deployment wiring.
//
// Observability: -debug-addr starts an HTTP listener serving Prometheus
// /metrics, /debug/pprof/*, and a JSON /statusz. It is off by default and
// unauthenticated — bind it to localhost (see DESIGN.md, "Observability").
// -slow-op logs every request that exceeds the threshold, with its
// client-minted trace ID for correlation.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"time"

	"csar/internal/obs"
	"csar/internal/rpc"
	"csar/internal/server"
	"csar/internal/simdisk"
	"csar/internal/storage"
)

func main() {
	var (
		listen    = flag.String("listen", ":7101", "address to listen on")
		index     = flag.Int("index", -1, "this server's position in the stripe layout (0-based)")
		pageSize  = flag.Int("pagesize", 4096, "local block size in bytes")
		writeBuf  = flag.Bool("writebuf", true, "enable Section 5.2 write buffering")
		storeDir  = flag.String("store", "", "directory for durable storage (default: in-memory)")
		debugAddr = flag.String("debug-addr", "", "serve /metrics, /statusz and /debug/pprof on this address (default: off; unauthenticated — bind to localhost)")
		slowOp    = flag.Duration("slow-op", 0, "log requests slower than this, with their trace IDs (0 disables)")
	)
	flag.Parse()

	if *index < 0 {
		log.Fatal("csar-iod: -index is required")
	}
	var backend storage.Backend
	if *storeDir != "" {
		dir, err := storage.NewDir(*storeDir)
		if err != nil {
			log.Fatalf("csar-iod: %v", err)
		}
		backend = dir
		fmt.Printf("csar-iod: durable storage in %s\n", dir.Root())
	} else {
		backend = simdisk.New(nil, simdisk.Params{PageSize: *pageSize})
	}
	opts := server.DefaultOptions()
	opts.WriteBuffering = *writeBuf
	opts.PageSize = *pageSize
	opts.SlowOp = *slowOp
	srv := server.New(*index, backend, opts)

	if *debugAddr != "" {
		startedAt := time.Now()
		closer, err := obs.ServeDebug(*debugAddr, srv.Obs(), func() map[string]any {
			return map[string]any{
				"index":          *index,
				"uptime_seconds": int64(time.Since(startedAt).Seconds()),
			}
		})
		if err != nil {
			log.Fatalf("csar-iod: debug listener: %v", err)
		}
		defer closer.Close() //nolint:errcheck
		fmt.Printf("csar-iod: debug endpoints on http://%s/metrics\n", *debugAddr)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("csar-iod: %v", err)
	}
	fmt.Printf("csar-iod: server %d listening on %s\n", *index, ln.Addr())
	for {
		conn, err := ln.Accept()
		if err != nil {
			log.Fatalf("csar-iod: accept: %v", err)
		}
		go rpc.ServeConnTraced(conn, srv.HandleTraced, nil, nil) //nolint:errcheck
	}
}
