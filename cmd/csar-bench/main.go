// Command csar-bench regenerates the figures and tables of the paper's
// evaluation (Section 6) on the modeled cluster.
//
// Usage:
//
//	csar-bench -list
//	csar-bench -exp fig4a
//	csar-bench -exp all -div 16 -scale 2s
//
// -div divides the paper's data sizes (and scales the server cache with
// them); -scale sets the wall-clock length of one simulated second —
// larger is slower but less noisy.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"csar/internal/bench"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment to run (see -list), or 'all'")
		list     = flag.Bool("list", false, "list available experiments")
		div      = flag.Int64("div", 16, "divide paper-scale data sizes by this factor")
		scale    = flag.Duration("scale", 2*time.Second, "wall-clock duration of one simulated second")
		iods     = flag.Int("servers", 8, "maximum number of I/O servers")
		jsonPath = flag.String("json", "", "also write machine-readable results (bandwidth + op latency percentiles) to this file")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, e := range bench.Experiments() {
			fmt.Printf("  %-9s %s\n", e.Name, e.Title)
		}
		fmt.Println("  all       run everything above in order")
		if *exp == "" {
			os.Exit(2)
		}
		return
	}

	cfg := bench.Config{Scale: *scale, SizeDiv: *div, MaxServers: *iods}
	if *jsonPath != "" {
		cfg.Results = &bench.Results{SchemaVersion: bench.ResultsSchemaVersion}
	}
	start := time.Now()
	if err := bench.Run(*exp, cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "csar-bench:", err)
		os.Exit(1)
	}
	if *jsonPath != "" {
		buf, err := json.MarshalIndent(cfg.Results, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "csar-bench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "csar-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %d result points to %s (schema v%d)\n",
			len(cfg.Results.Points), *jsonPath, bench.ResultsSchemaVersion)
	}
	fmt.Printf("\n(%s in %.1fs wall; sizes 1/%d of paper scale, 1 sim-s = %v wall)\n",
		*exp, time.Since(start).Seconds(), *div, *scale)
}
