package main

import (
	"bytes"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"csar/internal/meta"
	"csar/internal/rpc"
	"csar/internal/server"
	"csar/internal/simdisk"
)

// testCluster is an in-process TCP deployment: n iods plus a manager, the
// same shape `csar-iod` and `csar-mgr` serve, so run() exercises the real
// dial/RPC path.
type testCluster struct {
	mgrAddr string
	iodLns  []net.Listener
}

func startCluster(t *testing.T, n int) *testCluster {
	t.Helper()
	tc := &testCluster{}
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		tc.iodLns = append(tc.iodLns, ln)
		addrs[i] = ln.Addr().String()
		srv := server.New(i, simdisk.New(nil, simdisk.Params{PageSize: 4096}), server.DefaultOptions())
		go func() {
			for {
				conn, err := ln.Accept()
				if err != nil {
					return
				}
				go rpc.ServeConnTraced(conn, srv.HandleTraced, nil, nil) //nolint:errcheck
			}
		}()
	}
	mln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mln.Close() })
	tc.mgrAddr = mln.Addr().String()
	mgr := meta.New(n, addrs)
	go func() {
		for {
			conn, err := mln.Accept()
			if err != nil {
				return
			}
			go rpc.ServeConn(conn, mgr.Handle, nil, nil) //nolint:errcheck
		}
	}()
	return tc
}

// deadAddr returns an address nothing listens on (bound, then released).
func deadAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// fastFlags makes failure paths fail fast instead of riding the default
// retry/backoff schedule.
func fastFlags(mgr string) []string {
	return []string{"-mgr", mgr, "-retries", "0", "-retry-backoff", "1ms", "-probe-after", "1ms"}
}

// TestRunExitCodes audits the CLI contract: 0 on success, 1 on operational
// failure with a one-line `csar: ...` cause on stderr, 2 on usage errors.
func TestRunExitCodes(t *testing.T) {
	tc := startCluster(t, 4)
	live := tc.mgrAddr
	dead := deadAddr(t)

	local := filepath.Join(t.TempDir(), "in.bin")
	if err := os.WriteFile(local, bytes.Repeat([]byte("x"), 10000), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name       string
		args       []string
		want       int
		wantStderr string // substring; "" = no requirement
	}{
		{"no command", []string{}, 2, "Usage"},
		{"bad flag", []string{"-definitely-not-a-flag"}, 2, ""},
		{"unknown command", append(fastFlags(live), "frobnicate"), 2, "unknown command"},
		{"create missing args", append(fastFlags(live), "create"), 2, "usage: csar create"},
		{"get missing args", append(fastFlags(live), "get", "only-one"), 2, "usage: csar get"},
		{"rebuild missing args", append(fastFlags(live), "rebuild", "f"), 2, "usage: csar rebuild"},
		{"unreachable manager", append(fastFlags(dead), "ls"), 1, "csar: "},
		{"open nonexistent", append(fastFlags(live), "cat", "no-such-file"), 1, "csar: "},
		{"put then ls", append(fastFlags(live), "put", local, "f1"), 0, ""},
		{"ls ok", append(fastFlags(live), "ls"), 0, ""},
		{"df ok", append(fastFlags(live), "df"), 0, ""},
		{"verify ok", append(fastFlags(live), "verify", "f1"), 0, ""},
		{"migrate missing args", append(fastFlags(live), "migrate"), 2, "usage: csar migrate"},
		{"migrate without -to", append(fastFlags(live), "migrate", "f1"), 2, "usage: csar migrate"},
		{"migrate to rs", append(append(fastFlags(live), "-to", "rs", "-rs-m", "2"), "migrate", "f1"), 0, ""},
		{"migrate same scheme", append(append(fastFlags(live), "-to", "rs"), "migrate", "f1"), 1, "csar: "},
		{"verify after migrate", append(fastFlags(live), "verify", "f1"), 0, ""},
		{"migrate abort idle", append(append(fastFlags(live), "-abort"), "migrate", "f1"), 0, ""},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			var out, errBuf bytes.Buffer
			got := run(tt.args, &out, &errBuf)
			if got != tt.want {
				t.Fatalf("run(%v) = %d, want %d\nstdout:\n%s\nstderr:\n%s",
					tt.args, got, tt.want, out.String(), errBuf.String())
			}
			if tt.wantStderr != "" && !strings.Contains(errBuf.String(), tt.wantStderr) {
				t.Fatalf("stderr %q does not contain %q", errBuf.String(), tt.wantStderr)
			}
			if tt.want == 1 {
				// Failure causes must be one line, not a dump.
				if n := strings.Count(strings.TrimRight(errBuf.String(), "\n"), "\n"); n > 0 {
					t.Fatalf("want one-line cause on stderr, got %d lines:\n%s", n+1, errBuf.String())
				}
			}
		})
	}
}

// TestStatsCommand checks `csar stats` against a live 4-iod cluster: exit 0,
// a row per server with nonzero requests, and the latency table — then exit
// 1 with a cause once a server stops answering.
func TestStatsCommand(t *testing.T) {
	tc := startCluster(t, 4)

	// Drive some I/O so the tables have content.
	local := filepath.Join(t.TempDir(), "in.bin")
	if err := os.WriteFile(local, bytes.Repeat([]byte("y"), 64<<10), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errBuf bytes.Buffer
	if got := run(append(fastFlags(tc.mgrAddr), "-scheme", "raid5", "put", local, "f"), &out, &errBuf); got != 0 {
		t.Fatalf("put failed (%d): %s", got, errBuf.String())
	}

	out.Reset()
	errBuf.Reset()
	if got := run(append(fastFlags(tc.mgrAddr), "stats"), &out, &errBuf); got != 0 {
		t.Fatalf("stats = %d, want 0; stderr: %s", got, errBuf.String())
	}
	text := out.String()
	if !strings.Contains(text, "servers: 4") {
		t.Errorf("stats output missing server count:\n%s", text)
	}
	for _, col := range []string{"requests", "bytes_in", "bytes_out", "locks_held"} {
		if !strings.Contains(text, col) {
			t.Errorf("stats output missing column %q", col)
		}
	}
	if !strings.Contains(text, "server rpc latencies") {
		t.Errorf("stats output missing merged latency table:\n%s", text)
	}
	if !strings.Contains(text, "rpc_") || !strings.Contains(text, "p95_us") {
		t.Errorf("stats output missing histogram rows:\n%s", text)
	}

	// Stop one iod; stats must report it by line and exit non-zero.
	tc.iodLns[2].Close()
	out.Reset()
	errBuf.Reset()
	if got := run(append(fastFlags(tc.mgrAddr), "stats"), &out, &errBuf); got != 1 {
		t.Fatalf("stats with a dead iod = %d, want 1\nstdout:\n%s", got, out.String())
	}
	if !strings.Contains(out.String(), "unreachable") {
		t.Errorf("stats output does not flag the dead server:\n%s", out.String())
	}
	if !strings.Contains(errBuf.String(), "1 of 4 servers unreachable") {
		t.Errorf("stderr cause missing: %q", errBuf.String())
	}
}
