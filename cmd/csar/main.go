// Command csar is the CLI client for a running CSAR deployment.
//
// Usage:
//
//	csar -mgr localhost:7100 <command> [args]
//
// Commands:
//
//	ls                         list files
//	create <name>              create a file (-scheme, -servers, -su)
//	put <local> <name>         copy a local file in (creates it)
//	get <name> <local>         copy a file out
//	cat <name>                 write a file's contents to stdout
//	rm <name>                  remove a file
//	df                         per-server and total storage in use
//	stat <name>                show size, scheme and per-store storage
//	verify <name>              check redundancy invariants (fsck)
//	scrub <name>               verify and repair redundancy online
//	                           (-scrub-rate, -repair-data)
//	rebuild <name> <server>    rebuild a replaced server's stores and
//	                           re-admit it
//	resync <name> <server>     replay only the regions degraded writes
//	                           damaged onto a returned server, then
//	                           re-admit it (-resync-rate, -resync-dry-run)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"csar"
)

func main() {
	def := csar.DefaultPolicy()
	var (
		mgr        = flag.String("mgr", "localhost:7100", "manager address")
		scheme     = flag.String("scheme", "hybrid", "redundancy scheme for create/put")
		servers    = flag.Int("servers", 0, "servers to stripe over (0 = all)")
		su         = flag.Int64("su", csar.DefaultStripeUnit, "stripe unit in bytes")
		scrubRate  = flag.Float64("scrub-rate", 0, "scrub I/O rate limit in bytes/sec (0 = unlimited)")
		repairData = flag.Bool("repair-data", false, "let scrub overwrite primary data when evidence says it is the corrupt copy")
		resyncRate = flag.Float64("resync-rate", 0, "resync replay I/O rate limit in bytes/sec (0 = unlimited)")
		resyncDry  = flag.Bool("resync-dry-run", false, "report what resync would replay without writing")

		callTimeout = flag.Duration("call-timeout", def.CallTimeout, "per-RPC deadline (0 = none)")
		retries     = flag.Int("retries", def.Retries, "retry attempts for idempotent RPCs after the first try")
		backoff     = flag.Duration("retry-backoff", def.BackoffBase, "base retry backoff, doubled per attempt")
		breakerAt   = flag.Int("breaker-failures", def.BreakerThreshold, "consecutive failures that open a server's circuit breaker (0 = breaker off)")
		probeAfter  = flag.Duration("probe-after", def.ProbeAfter, "how long an open breaker waits before probing the server")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	cl, err := csar.Dial(*mgr)
	if err != nil {
		fail(err)
	}
	pol := def
	pol.CallTimeout = *callTimeout
	pol.Retries = *retries
	pol.BackoffBase = *backoff
	pol.BreakerThreshold = *breakerAt
	pol.ProbeAfter = *probeAfter
	cl.SetResilience(pol)

	sch, err := csar.ParseScheme(*scheme)
	if err != nil {
		fail(err)
	}
	opts := csar.FileOptions{Servers: *servers, StripeUnit: *su, Scheme: sch}

	switch cmd, rest := args[0], args[1:]; cmd {
	case "ls":
		names, err := cl.List()
		if err != nil {
			fail(err)
		}
		for _, n := range names {
			fmt.Println(n)
		}
	case "create":
		need(rest, 1, "create <name>")
		if _, err := cl.Create(rest[0], opts); err != nil {
			fail(err)
		}
	case "put":
		need(rest, 2, "put <local> <name>")
		data, err := os.ReadFile(rest[0])
		if err != nil {
			fail(err)
		}
		f, err := cl.Create(rest[1], opts)
		if err != nil {
			fail(err)
		}
		if _, err := f.WriteAt(data, 0); err != nil {
			fail(err)
		}
		if err := f.Sync(); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %d bytes to %s (%v)\n", len(data), rest[1], sch)
	case "get", "cat":
		need(rest, map[string]int{"get": 2, "cat": 1}[cmd], cmd+" <name> [local]")
		f, err := cl.Open(rest[0])
		if err != nil {
			fail(err)
		}
		buf := make([]byte, f.Size())
		if _, err := f.ReadAt(buf, 0); err != nil {
			fail(err)
		}
		var out io.Writer = os.Stdout
		if cmd == "get" {
			fh, err := os.Create(rest[1])
			if err != nil {
				fail(err)
			}
			defer fh.Close()
			out = fh
		}
		if _, err := out.Write(buf); err != nil {
			fail(err)
		}
	case "rm":
		need(rest, 1, "rm <name>")
		if err := cl.Remove(rest[0]); err != nil {
			fail(err)
		}
	case "df":
		totals, err := cl.StorageTotals()
		if err != nil {
			fail(err)
		}
		var sum int64
		for i, n := range totals {
			fmt.Printf("iod %-3d %12d bytes\n", i, n)
			sum += n
		}
		fmt.Printf("total   %12d bytes\n", sum)
	case "stat":
		need(rest, 1, "stat <name>")
		f, err := cl.Open(rest[0])
		if err != nil {
			fail(err)
		}
		total, by, err := f.StorageBytes()
		if err != nil {
			fail(err)
		}
		fmt.Printf("name:    %s\nsize:    %d bytes\nscheme:  %v\n", rest[0], f.Size(), f.Scheme())
		fmt.Printf("storage: %d bytes total (data %d, mirror %d, parity %d, overflow %d, ov-mirror %d)\n",
			total, by[0], by[1], by[2], by[3], by[4])
	case "verify":
		need(rest, 1, "verify <name>")
		f, err := cl.Open(rest[0])
		if err != nil {
			fail(err)
		}
		problems, err := cl.Verify(f)
		if err != nil {
			fail(err)
		}
		if len(problems) == 0 {
			fmt.Println("consistent")
			return
		}
		for _, p := range problems {
			fmt.Println("PROBLEM:", p)
		}
		os.Exit(1)
	case "scrub":
		need(rest, 1, "scrub <name>")
		f, err := cl.Open(rest[0])
		if err != nil {
			fail(err)
		}
		rep, err := cl.Scrub(f, csar.ScrubOptions{RateLimit: *scrubRate, RepairData: *repairData})
		if err != nil {
			fail(err)
		}
		fmt.Println(rep)
		for _, p := range rep.Problems {
			fmt.Println("PROBLEM:", p)
		}
		if rep.Totals().Unrepairable > 0 {
			os.Exit(1)
		}
	case "rebuild":
		need(rest, 2, "rebuild <name> <server-index>")
		f, err := cl.Open(rest[0])
		if err != nil {
			fail(err)
		}
		idx, err := strconv.Atoi(rest[1])
		if err != nil {
			fail(err)
		}
		fmt.Printf("server %d before: %v\n", idx, cl.BreakerStates()[idx])
		if err := cl.Rebuild(f, idx); err != nil {
			fail(err)
		}
		// The rebuild restored the server's stores; without MarkUp the
		// client would keep treating it as failed (and its breaker as
		// stale) forever.
		cl.MarkUp(idx)
		fmt.Printf("server %d after:  %v\n", idx, cl.BreakerStates()[idx])
		fmt.Printf("rebuilt and re-admitted server %d for %s\n", idx, rest[0])
	case "resync":
		need(rest, 2, "resync <name> <server-index>")
		f, err := cl.Open(rest[0])
		if err != nil {
			fail(err)
		}
		idx, err := strconv.Atoi(rest[1])
		if err != nil {
			fail(err)
		}
		fmt.Printf("server %d before: %v\n", idx, cl.BreakerStates()[idx])
		rep, err := cl.Resync(f, idx, csar.ResyncOptions{RateLimit: *resyncRate, DryRun: *resyncDry})
		if err != nil {
			fail(err)
		}
		if *resyncDry {
			fmt.Printf("dry run: would replay %d units, %d mirrors, %d stripes (full rebuild: %v)\n",
				rep.Units, rep.Mirrors, rep.Stripes, rep.FullRebuild)
			return
		}
		cl.MarkUp(idx)
		fmt.Printf("server %d after:  %v\n", idx, cl.BreakerStates()[idx])
		fmt.Printf("resynced server %d for %s: %d units, %d mirrors, %d stripes, %d overflow bytes in %d rounds (full rebuild: %v)\n",
			idx, rest[0], rep.Units, rep.Mirrors, rep.Stripes, rep.OverflowBytes, rep.Rounds, rep.FullRebuild)
	default:
		fmt.Fprintf(os.Stderr, "csar: unknown command %q\n", cmd)
		os.Exit(2)
	}
}

func need(args []string, n int, usage string) {
	if len(args) < n {
		fmt.Fprintf(os.Stderr, "usage: csar %s\n", usage)
		os.Exit(2)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "csar:", err)
	os.Exit(1)
}
