// Command csar is the CLI client for a running CSAR deployment.
//
// Usage:
//
//	csar -mgr localhost:7100 <command> [args]
//
// Commands:
//
//	ls                         list files
//	create <name>              create a file (-scheme, -servers, -su;
//	                           scheme rs also takes -rs-k, -rs-m)
//	put <local> <name>         copy a local file in (creates it)
//	get <name> <local>         copy a file out
//	cat <name>                 write a file's contents to stdout
//	rm <name>                  remove a file
//	df                         per-server and total storage in use
//	stat <name>                show size, scheme and per-store storage
//	stats                      manager + client + per-server observability
//	                           dump: manager roles/epochs/replication lag,
//	                           request counts, store gauges, latency
//	                           histograms (p50/p95/p99)
//	verify <name>              check redundancy invariants (fsck)
//	scrub <name>               verify and repair redundancy online
//	                           (-scrub-rate, -repair-data)
//	rebuild <name> <server>    rebuild a replaced server's stores and
//	                           re-admit it
//	resync <name> <server>     replay only the regions degraded writes
//	                           damaged onto a returned server, then
//	                           re-admit it (-resync-rate, -resync-dry-run)
//	migrate <name>             re-layout a live file onto another scheme
//	                           online: -to <scheme> (rs also takes -rs-m),
//	                           -migrate-rate; -abort discards a migration
//	                           a crashed coordinator left pinned
//
// Exit status: 0 on success; 1 when the operation failed (unreachable
// manager or servers, I/O error, unrepairable or inconsistent redundancy),
// with a one-line cause on stderr; 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"csar"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole CLI with main's side effects abstracted away: argv
// without the program name, the two output streams, and the exit code as
// the return value — so tests can drive every command and assert on codes.
func run(argv []string, stdout, stderr io.Writer) int {
	def := csar.DefaultPolicy()
	fs := flag.NewFlagSet("csar", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		mgr        = fs.String("mgr", "localhost:7100", "manager address, or the comma-separated manager group in index order")
		scheme     = fs.String("scheme", "hybrid", "redundancy scheme for create/put: "+strings.Join(csar.SchemeNames(), ", "))
		servers    = fs.Int("servers", 0, "servers to stripe over (0 = all)")
		su         = fs.Int64("su", csar.DefaultStripeUnit, "stripe unit in bytes")
		rsK        = fs.Int("rs-k", 0, "rs data units per stripe; sets servers to k+m (0 = derive from -servers)")
		rsM        = fs.Int("rs-m", 0, "rs parity units per stripe (0 = 2)")
		scrubRate  = fs.Float64("scrub-rate", 0, "scrub I/O rate limit in bytes/sec (0 = unlimited)")
		repairData = fs.Bool("repair-data", false, "let scrub overwrite primary data when evidence says it is the corrupt copy")
		resyncRate = fs.Float64("resync-rate", 0, "resync replay I/O rate limit in bytes/sec (0 = unlimited)")
		resyncDry  = fs.Bool("resync-dry-run", false, "report what resync would replay without writing")
		migrateTo  = fs.String("to", "", "target scheme for migrate: "+strings.Join(csar.SchemeNames(), ", "))
		migRate    = fs.Float64("migrate-rate", 0, "migration copy I/O rate limit in bytes/sec (0 = unlimited)")
		migAbort   = fs.Bool("abort", false, "migrate: discard the file's pinned migration instead of running one")

		callTimeout = fs.Duration("call-timeout", def.CallTimeout, "per-RPC deadline (0 = none)")
		retries     = fs.Int("retries", def.Retries, "retry attempts for idempotent RPCs after the first try")
		backoff     = fs.Duration("retry-backoff", def.BackoffBase, "base retry backoff, doubled per attempt")
		breakerAt   = fs.Int("breaker-failures", def.BreakerThreshold, "consecutive failures that open a server's circuit breaker (0 = breaker off)")
		probeAfter  = fs.Duration("probe-after", def.ProbeAfter, "how long an open breaker waits before probing the server")
	)
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	args := fs.Args()
	if len(args) == 0 {
		fs.Usage()
		return 2
	}

	fail := func(err error) int {
		fmt.Fprintln(stderr, "csar:", err)
		return 1
	}
	usage := func(u string) int {
		fmt.Fprintf(stderr, "usage: csar %s\n", u)
		return 2
	}

	cl, err := csar.Dial(*mgr)
	if err != nil {
		return fail(err)
	}
	defer cl.Close() //nolint:errcheck
	pol := def
	pol.CallTimeout = *callTimeout
	pol.Retries = *retries
	pol.BackoffBase = *backoff
	pol.BreakerThreshold = *breakerAt
	pol.ProbeAfter = *probeAfter
	cl.SetResilience(pol)

	sch, err := csar.ParseScheme(*scheme)
	if err != nil {
		return fail(err)
	}
	var target csar.Scheme
	if *migrateTo != "" {
		if target, err = csar.ParseScheme(*migrateTo); err != nil {
			return fail(err)
		}
	}
	if (*rsK != 0 || *rsM != 0) && sch != csar.ReedSolomon && target != csar.ReedSolomon {
		return fail(fmt.Errorf("-rs-k/-rs-m only apply to -scheme rs, not %v", sch))
	}
	opts := csar.FileOptions{Servers: *servers, StripeUnit: *su, Scheme: sch, ParityUnits: *rsM}
	if *rsK != 0 {
		m := *rsM
		if m == 0 {
			m = 2
		}
		opts.Servers = *rsK + m
		opts.ParityUnits = m
	}

	switch cmd, rest := args[0], args[1:]; cmd {
	case "ls":
		names, err := cl.List()
		if err != nil {
			return fail(err)
		}
		for _, n := range names {
			fmt.Fprintln(stdout, n)
		}
	case "create":
		if len(rest) < 1 {
			return usage("create <name>")
		}
		if _, err := cl.Create(rest[0], opts); err != nil {
			return fail(err)
		}
	case "put":
		if len(rest) < 2 {
			return usage("put <local> <name>")
		}
		data, err := os.ReadFile(rest[0])
		if err != nil {
			return fail(err)
		}
		f, err := cl.Create(rest[1], opts)
		if err != nil {
			return fail(err)
		}
		if _, err := f.WriteAt(data, 0); err != nil {
			return fail(err)
		}
		if err := f.Sync(); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "wrote %d bytes to %s (%v)\n", len(data), rest[1], sch)
	case "get", "cat":
		if len(rest) < map[string]int{"get": 2, "cat": 1}[cmd] {
			return usage(cmd + " <name> [local]")
		}
		f, err := cl.Open(rest[0])
		if err != nil {
			return fail(err)
		}
		buf := make([]byte, f.Size())
		if _, err := f.ReadAt(buf, 0); err != nil {
			return fail(err)
		}
		if cmd == "cat" {
			if _, err := stdout.Write(buf); err != nil {
				return fail(err)
			}
			break
		}
		fh, err := os.Create(rest[1])
		if err != nil {
			return fail(err)
		}
		if _, err := fh.Write(buf); err != nil {
			fh.Close() //nolint:errcheck // the write error is the cause
			return fail(err)
		}
		// Close errors are real data-loss (deferred flush on a full disk):
		// they must fail the command, not vanish in a defer.
		if err := fh.Close(); err != nil {
			return fail(err)
		}
	case "rm":
		if len(rest) < 1 {
			return usage("rm <name>")
		}
		if err := cl.Remove(rest[0]); err != nil {
			return fail(err)
		}
	case "df":
		totals, err := cl.StorageTotals()
		if err != nil {
			return fail(err)
		}
		var sum int64
		for i, n := range totals {
			fmt.Fprintf(stdout, "iod %-3d %12d bytes\n", i, n)
			sum += n
		}
		fmt.Fprintf(stdout, "total   %12d bytes\n", sum)
	case "stat":
		if len(rest) < 1 {
			return usage("stat <name>")
		}
		f, err := cl.Open(rest[0])
		if err != nil {
			return fail(err)
		}
		total, by, err := f.StorageBytes()
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "name:    %s\nsize:    %d bytes\nscheme:  %v\n", rest[0], f.Size(), f.Scheme())
		fmt.Fprintf(stdout, "storage: %d bytes total (data %d, mirror %d, parity %d, overflow %d, ov-mirror %d)\n",
			total, by[0], by[1], by[2], by[3], by[4])
	case "stats":
		return statsCmd(cl, stdout, stderr)
	case "verify":
		if len(rest) < 1 {
			return usage("verify <name>")
		}
		f, err := cl.Open(rest[0])
		if err != nil {
			return fail(err)
		}
		problems, err := cl.Verify(f)
		if err != nil {
			return fail(err)
		}
		if len(problems) == 0 {
			fmt.Fprintln(stdout, "consistent")
			return 0
		}
		for _, p := range problems {
			fmt.Fprintln(stdout, "PROBLEM:", p)
		}
		return fail(fmt.Errorf("%s: %d redundancy violations", rest[0], len(problems)))
	case "scrub":
		if len(rest) < 1 {
			return usage("scrub <name>")
		}
		f, err := cl.Open(rest[0])
		if err != nil {
			return fail(err)
		}
		rep, err := cl.Scrub(f, csar.ScrubOptions{RateLimit: *scrubRate, RepairData: *repairData})
		if err != nil {
			return fail(err)
		}
		fmt.Fprintln(stdout, rep)
		for _, p := range rep.Problems {
			fmt.Fprintln(stdout, "PROBLEM:", p)
		}
		if n := rep.Totals().Unrepairable; n > 0 {
			return fail(fmt.Errorf("%s: %d mismatches left unrepaired", rest[0], n))
		}
	case "rebuild":
		if len(rest) < 2 {
			return usage("rebuild <name> <server-index>")
		}
		f, err := cl.Open(rest[0])
		if err != nil {
			return fail(err)
		}
		idx, err := strconv.Atoi(rest[1])
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "server %d before: %v\n", idx, cl.BreakerStates()[idx])
		if err := cl.Rebuild(f, idx); err != nil {
			return fail(err)
		}
		// The rebuild restored the server's stores; without MarkUp the
		// client would keep treating it as failed (and its breaker as
		// stale) forever.
		cl.MarkUp(idx)
		fmt.Fprintf(stdout, "server %d after:  %v\n", idx, cl.BreakerStates()[idx])
		fmt.Fprintf(stdout, "rebuilt and re-admitted server %d for %s\n", idx, rest[0])
	case "resync":
		if len(rest) < 2 {
			return usage("resync <name> <server-index>")
		}
		f, err := cl.Open(rest[0])
		if err != nil {
			return fail(err)
		}
		idx, err := strconv.Atoi(rest[1])
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "server %d before: %v\n", idx, cl.BreakerStates()[idx])
		rep, err := cl.Resync(f, idx, csar.ResyncOptions{RateLimit: *resyncRate, DryRun: *resyncDry})
		if err != nil {
			return fail(err)
		}
		if *resyncDry {
			fmt.Fprintf(stdout, "dry run: would replay %d units, %d mirrors, %d stripes (full rebuild: %v)\n",
				rep.Units, rep.Mirrors, rep.Stripes, rep.FullRebuild)
			return 0
		}
		cl.MarkUp(idx)
		fmt.Fprintf(stdout, "server %d after:  %v\n", idx, cl.BreakerStates()[idx])
		fmt.Fprintf(stdout, "resynced server %d for %s: %d units, %d mirrors, %d stripes, %d overflow bytes in %d rounds (full rebuild: %v)\n",
			idx, rest[0], rep.Units, rep.Mirrors, rep.Stripes, rep.OverflowBytes, rep.Rounds, rep.FullRebuild)
	case "migrate":
		if len(rest) < 1 {
			return usage("migrate (-to <scheme> | -abort) <name>")
		}
		if *migAbort {
			if err := cl.AbortMigration(rest[0]); err != nil {
				return fail(err)
			}
			fmt.Fprintf(stdout, "discarded pinned migration of %s\n", rest[0])
			break
		}
		if *migrateTo == "" {
			return usage("migrate (-to <scheme> | -abort) <name>")
		}
		if *rsK != 0 {
			return fail(fmt.Errorf("migrate keeps the file's server set; -rs-k does not apply"))
		}
		f, err := cl.Open(rest[0])
		if err != nil {
			return fail(err)
		}
		rep, err := cl.Migrate(f, target, *rsM, csar.MigrateOptions{RateLimit: *migRate})
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "migrated %s: %v -> %v, %d bytes re-encoded (file id %d)\n",
			rest[0], rep.From, rep.To, rep.BytesCopied, rep.NewID)
		if rep.CleanupErrs > 0 {
			fmt.Fprintf(stderr, "csar: %d old-layout stores could not be removed (left as garbage)\n", rep.CleanupErrs)
		}
	default:
		fmt.Fprintf(stderr, "csar: unknown command %q\n", cmd)
		return 2
	}
	return 0
}

// statsCmd renders the combined observability table: this client's own
// snapshot (mostly interesting after put/get in the same process — here it
// shows the RPCs stats itself issued) and every I/O server's dump over the
// Stats RPC. Unreachable servers are reported by line, and make the command
// exit non-zero: an operator scripting health checks should see the partial
// failure, not a clean zero.
func statsCmd(cl *csar.Client, stdout, stderr io.Writer) int {
	// Manager section first: role, epoch and replication state per group
	// member. With a single manager this is one primary line.
	mgrStatuses := cl.ManagerStatuses()
	mgrStats := cl.ManagerStats()
	fmt.Fprintf(stdout, "managers: %d\n", len(mgrStatuses))
	fmt.Fprintf(stdout, "%-4s %-8s %7s %9s %7s %10s %12s %9s\n",
		"mgr", "role", "epoch", "seq", "files", "wal_bytes", "wal_appends", "repl_lag")
	mgrUnreachable := 0
	for i, st := range mgrStatuses {
		if st.Files < 0 {
			mgrUnreachable++
			fmt.Fprintf(stdout, "%-4d unreachable\n", i)
			continue
		}
		role := "standby"
		if st.Primary {
			role = "primary"
		}
		var walAppends, lag int64
		if i < len(mgrStats) && mgrStats[i].Requests >= 0 {
			snap := csar.StatsOfServer(mgrStats[i])
			walAppends = statValue(snap.Counters, "meta_wal_appends")
			lag = statValue(snap.Gauges, "meta_replication_lag")
		}
		fmt.Fprintf(stdout, "%-4d %-8s %7d %9d %7d %10d %12d %9d\n",
			i, role, st.Epoch, st.Seq, st.Files, st.WALBytes, walAppends, lag)
	}
	fmt.Fprintln(stdout)

	srvStats := cl.ServerStats()

	fmt.Fprintf(stdout, "servers: %d\n\n", len(srvStats))
	fmt.Fprintf(stdout, "%-4s %10s %14s %14s %11s %13s %10s %9s\n",
		"iod", "requests", "bytes_in", "bytes_out", "locks_held", "intents_live", "dirty_log", "slow_ops")
	unreachable := 0
	for _, sr := range srvStats {
		if sr.Requests < 0 {
			unreachable++
			fmt.Fprintf(stdout, "%-4d unreachable\n", sr.Index)
			continue
		}
		snap := csar.StatsOfServer(sr)
		fmt.Fprintf(stdout, "%-4d %10d %14d %14d %11d %13d %10d %9d\n",
			sr.Index, sr.Requests,
			statValue(snap.Counters, "bytes_in"), statValue(snap.Counters, "bytes_out"),
			statValue(snap.Gauges, "locks_held"), statValue(snap.Gauges, "intents_live"),
			statValue(snap.Gauges, "dirty_log_entries"), statValue(snap.Counters, "slow_ops"))
	}

	// Merge every reachable server's histograms into one latency table.
	var snaps []csar.Stats
	for _, sr := range srvStats {
		if sr.Requests >= 0 {
			snaps = append(snaps, csar.StatsOfServer(sr))
		}
	}
	merged := csar.MergeStats(snaps...)
	if len(merged.Hists) > 0 {
		fmt.Fprintf(stdout, "\nserver rpc latencies (all reachable servers):\n")
		writeHistTable(stdout, merged)
	}

	if own := cl.Stats(); len(own.Hists) > 0 {
		fmt.Fprintf(stdout, "\nthis client:\n")
		writeHistTable(stdout, own)
	}

	exit := 0
	if mgrUnreachable > 0 {
		fmt.Fprintf(stderr, "csar: %d of %d managers unreachable\n", mgrUnreachable, len(mgrStatuses))
		exit = 1
	}
	if unreachable > 0 {
		fmt.Fprintf(stderr, "csar: %d of %d servers unreachable\n", unreachable, len(srvStats))
		exit = 1
	}
	return exit
}

// statValue finds one named counter/gauge in a snapshot list; absent → 0.
func statValue(kvs []csar.KV, name string) int64 {
	for _, kv := range kvs {
		if kv.Name == name {
			return kv.Value
		}
	}
	return 0
}

// writeHistTable prints a snapshot's histograms as one row per name with
// count and microsecond percentiles.
func writeHistTable(w io.Writer, s csar.Stats) {
	fmt.Fprintf(w, "  %-28s %10s %10s %10s %10s %10s\n",
		"histogram", "count", "p50_us", "p95_us", "p99_us", "max_us")
	for _, h := range s.Hists {
		if h.Count == 0 {
			continue
		}
		fmt.Fprintf(w, "  %-28s %10d %10d %10d %10d %10d\n",
			h.Name, h.Count,
			h.P50().Microseconds(), h.P95().Microseconds(),
			h.P99().Microseconds(), h.Max.Microseconds())
	}
}
