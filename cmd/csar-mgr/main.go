// Command csar-mgr runs the CSAR metadata manager: the process that owns
// file names, layouts and sizes, and tells clients where the I/O servers
// are. It is never on the data path.
//
// A three-server deployment on one machine:
//
//	csar-iod -listen :7101 -index 0 &
//	csar-iod -listen :7102 -index 1 &
//	csar-iod -listen :7103 -index 2 &
//	csar-mgr -listen :7100 -iods localhost:7101,localhost:7102,localhost:7103
//
// Clients reach it with csar.Dial("localhost:7100") or the csar CLI.
//
// Metadata high availability: run several managers and give each the full
// group with -mgrs (index order, self included) plus its own -mgr-index.
// Manager 0 starts as the primary, the rest as replicating standbys
// (-standby overrides). Give clients the whole group: csar.Dial accepts
// the same comma-separated list. -promote-after enables automatic
// failover: a standby that sees every lower-index manager unreachable for
// that long promotes itself at a fresh epoch, fencing the old primary.
// See DESIGN.md §11 for the promotion rule and its split-brain caveat.
//
//	csar-mgr -listen :7100 -meta m0/meta.json -mgrs localhost:7100,localhost:7200 -mgr-index 0 -iods ... &
//	csar-mgr -listen :7200 -meta m1/meta.json -mgrs localhost:7100,localhost:7200 -mgr-index 1 -promote-after 5s -iods ... &
//
// Observability: -debug-addr starts an HTTP listener serving Prometheus
// /metrics, /debug/pprof/*, and a JSON /statusz. It is off by default and
// unauthenticated — bind it to localhost (see DESIGN.md, "Observability").
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"strings"
	"time"

	"csar"
	"csar/internal/meta"
	"csar/internal/obs"
	"csar/internal/rpc"
	"csar/internal/wire"
)

func main() {
	var (
		listen          = flag.String("listen", ":7100", "address to listen on")
		iods            = flag.String("iods", "", "comma-separated I/O server addresses, in index order")
		metaDB          = flag.String("meta", "", "metadata snapshot file for durable metadata; the write-ahead log lives beside it at <path>.wal (default: in-memory)")
		mgrs            = flag.String("mgrs", "", "comma-separated manager group addresses in index order, self included (default: this manager alone)")
		mgrIndex        = flag.Int("mgr-index", 0, "this manager's index within -mgrs")
		standby         = flag.Bool("standby", false, "start as a replicating standby (default: true for -mgr-index > 0)")
		promoteAfter    = flag.Duration("promote-after", 0, "promote this standby after every lower-index manager has been unreachable this long (0 = manual promotion only)")
		debugAddr       = flag.String("debug-addr", "", "serve /metrics, /statusz and /debug/pprof on this address (default: off; unauthenticated — bind to localhost)")
		scrubEvery      = flag.Duration("scrub-every", 0, "period of the background integrity scrub over all files (0 = disabled)")
		scrubRate       = flag.Float64("scrub-rate", 0, "scrub I/O rate limit in bytes/sec per pass (0 = unlimited)")
		scrubRepairData = flag.Bool("scrub-repair-data", false, "let the background scrub overwrite primary data when evidence says it is the corrupt copy")
		resyncEvery     = flag.Duration("resync-every", 0, "period of the recovery loop that resyncs returned-but-stale servers (0 = disabled)")
		resyncRate      = flag.Float64("resync-rate", 0, "resync replay I/O rate limit in bytes/sec (0 = unlimited)")
		resyncDry       = flag.Bool("resync-dry-run", false, "recovery loop only reports what it would resync, without writing or re-admitting")
		migratePolicy   = flag.String("migrate-policy", "off", "scheme-migration policy for hybrid files whose mirrored overflow dominates their storage: off, recommend (log only), or auto (re-layout them online onto -migrate-to)")
		migrateEvery    = flag.Duration("migrate-every", 0, "period of the migration-policy loop (0 = disabled)")
		migrateTo       = flag.String("migrate-to", "raid1", "target scheme for -migrate-policy auto")
		migrateFrac     = flag.Float64("migrate-overflow-frac", 0.5, "overflow fraction of a hybrid file's storage above which the policy acts")
		migrateRate     = flag.Float64("migrate-rate", 0, "migration copy I/O rate limit in bytes/sec (0 = unlimited)")

		def         = csar.DefaultPolicy()
		callTimeout = flag.Duration("call-timeout", def.CallTimeout, "per-RPC deadline for the scrub client (0 = none)")
		retries     = flag.Int("retries", def.Retries, "retry attempts for the scrub client's idempotent RPCs")
		backoff     = flag.Duration("retry-backoff", def.BackoffBase, "base retry backoff for the scrub client, doubled per attempt")
		breakerAt   = flag.Int("breaker-failures", def.BreakerThreshold, "consecutive failures that open a server's circuit breaker (0 = breaker off)")
		probeAfter  = flag.Duration("probe-after", def.ProbeAfter, "how long an open breaker waits before probing the server")
		lockLease   = flag.Duration("lock-lease", def.LockLease, "parity-lock lease the scrub client requests; expiry fail-stops the stripe (0 = no lease)")
		leaseRenew  = flag.Duration("lease-renew-every", def.LeaseRenewEvery, "parity-lock heartbeat period (0 = lease/3, negative = heartbeat off)")
	)
	flag.Parse()

	addrs := strings.Split(*iods, ",")
	if *iods == "" || len(addrs) == 0 {
		log.Fatal("csar-mgr: -iods is required (comma-separated addresses, index order)")
	}
	for i, a := range addrs {
		addrs[i] = strings.TrimSpace(a)
		if addrs[i] == "" {
			log.Fatalf("csar-mgr: empty address at position %d", i)
		}
	}

	var m *meta.Manager
	var err error
	if *metaDB != "" {
		m, err = meta.NewPersistent(len(addrs), addrs, *metaDB)
		if err != nil {
			log.Fatalf("csar-mgr: %v", err)
		}
		fmt.Printf("csar-mgr: durable metadata in %s\n", *metaDB)
	} else {
		m = meta.New(len(addrs), addrs)
	}
	// Join the replicated manager group, if one is configured. Peers are
	// lazy redialing connections, so the group comes up in any order.
	var peers []meta.Caller
	if *mgrs != "" {
		var mgrAddrs []string
		for _, a := range strings.Split(*mgrs, ",") {
			if a = strings.TrimSpace(a); a != "" {
				mgrAddrs = append(mgrAddrs, a)
			}
		}
		if *mgrIndex < 0 || *mgrIndex >= len(mgrAddrs) {
			log.Fatalf("csar-mgr: -mgr-index %d out of range for %d managers", *mgrIndex, len(mgrAddrs))
		}
		peers = make([]meta.Caller, len(mgrAddrs))
		for i, a := range mgrAddrs {
			if i != *mgrIndex {
				peers[i] = meta.NewTCPPeer(a, 2*time.Second)
			}
		}
		isStandby := *standby || (*mgrIndex != 0 && !flagPassed("standby"))
		m.SetCluster(*mgrIndex, peers, isStandby)
		role := "primary"
		if isStandby {
			role = "standby"
		}
		fmt.Printf("csar-mgr: manager %d of %d, starting as %s\n", *mgrIndex, len(mgrAddrs), role)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("csar-mgr: %v", err)
	}
	fmt.Printf("csar-mgr: serving metadata on %s for %d I/O servers\n", ln.Addr(), len(addrs))

	// The manager counts its own requests and serves the Stats RPC; the
	// debug endpoint exposes the same registry.
	handle := m.Handle
	if *debugAddr != "" {
		startedAt := time.Now()
		closer, err := obs.ServeDebug(*debugAddr, m.Obs(), func() map[string]any {
			return map[string]any{
				"iods":           len(addrs),
				"uptime_seconds": int64(time.Since(startedAt).Seconds()),
			}
		})
		if err != nil {
			log.Fatalf("csar-mgr: debug listener: %v", err)
		}
		defer closer.Close() //nolint:errcheck
		fmt.Printf("csar-mgr: debug endpoints on http://%s/metrics\n", *debugAddr)
	}

	pol := def
	pol.CallTimeout = *callTimeout
	pol.Retries = *retries
	pol.BackoffBase = *backoff
	pol.BreakerThreshold = *breakerAt
	pol.ProbeAfter = *probeAfter
	pol.LockLease = *lockLease
	pol.LeaseRenewEvery = *leaseRenew
	if *promoteAfter > 0 && peers != nil {
		fmt.Printf("csar-mgr: automatic promotion after %v of lower-index unreachability\n", *promoteAfter)
		go promotionLoop(m, peers, *mgrIndex, *promoteAfter)
	}
	if *scrubEvery > 0 {
		fmt.Printf("csar-mgr: background scrub every %v\n", *scrubEvery)
		go func() {
			journals := make(map[string]*csar.ScrubJournal)
			for range time.Tick(*scrubEvery) {
				scrubPass(ln.Addr().String(), journals, *scrubRate, *scrubRepairData, pol)
			}
		}()
	}
	if *resyncEvery > 0 {
		fmt.Printf("csar-mgr: recovery loop every %v\n", *resyncEvery)
		go func() {
			for range time.Tick(*resyncEvery) {
				resyncPass(ln.Addr().String(), *resyncRate, *resyncDry, pol)
			}
		}()
	}
	if *migratePolicy != "off" {
		if *migratePolicy != "recommend" && *migratePolicy != "auto" {
			log.Fatalf("csar-mgr: -migrate-policy must be off, recommend or auto, not %q", *migratePolicy)
		}
		target, err := csar.ParseScheme(*migrateTo)
		if err != nil {
			log.Fatalf("csar-mgr: -migrate-to: %v", err)
		}
		if *migrateEvery <= 0 {
			log.Fatalf("csar-mgr: -migrate-policy %s needs -migrate-every > 0", *migratePolicy)
		}
		fmt.Printf("csar-mgr: migration policy %s (overflow > %.0f%% -> %v) every %v\n",
			*migratePolicy, *migrateFrac*100, target, *migrateEvery)
		go func() {
			for range time.Tick(*migrateEvery) {
				migratePass(ln.Addr().String(), *migratePolicy == "auto", target, *migrateFrac, *migrateRate, pol)
			}
		}()
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			log.Fatalf("csar-mgr: accept: %v", err)
		}
		go rpc.ServeConn(conn, handle, nil, nil) //nolint:errcheck
	}
}

// flagPassed reports whether the named flag was given explicitly on the
// command line (as opposed to holding its default).
func flagPassed(name string) bool {
	passed := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			passed = true
		}
	})
	return passed
}

// promotionLoop is the automatic failover policy: while this manager is a
// standby and every lower-index manager has been continuously unreachable
// for the promote-after window, it promotes itself via the deterministic
// rule (TryPromote re-probes, so a peer that returns at the last moment
// still wins). A single observation of an unreachable primary never
// promotes — transient blips must not bump the epoch and fence a healthy
// primary.
func promotionLoop(m *meta.Manager, peers []meta.Caller, idx int, after time.Duration) {
	tick := after / 4
	if tick < 250*time.Millisecond {
		tick = 250 * time.Millisecond
	}
	var downSince time.Time
	for range time.Tick(tick) {
		st, err := m.Handle(&wire.MetaStatus{})
		if err != nil {
			continue
		}
		if sr, ok := st.(*wire.MetaStatusResp); ok && sr.Primary {
			downSince = time.Time{}
			continue
		}
		lowerAlive := false
		for i, p := range peers {
			if i >= idx {
				break
			}
			if p == nil {
				continue
			}
			if _, err := p.Call(&wire.MetaStatus{}); err == nil {
				lowerAlive = true
				break
			}
		}
		if lowerAlive {
			downSince = time.Time{}
			continue
		}
		if downSince.IsZero() {
			downSince = time.Now()
			continue
		}
		if time.Since(downSince) < after {
			continue
		}
		won, err := m.TryPromote()
		switch {
		case err != nil:
			log.Printf("csar-mgr: promotion attempt failed: %v", err)
		case won:
			log.Printf("csar-mgr: promoted to primary (every lower-index manager unreachable for %v)", after)
			downSince = time.Time{}
		}
	}
}

// scrubPass runs one background scrub over every file through a short-lived
// client of this very deployment, keeping one checksum journal per file so
// repeated passes can attribute corruption to the right copy. The client is
// closed on every return path: the loop used to leak one set of server
// connections per tick, which on a long-lived manager exhausts descriptors.
func scrubPass(addr string, journals map[string]*csar.ScrubJournal, rate float64, repairData bool, pol csar.Policy) {
	cl, err := csar.Dial(addr)
	if err != nil {
		log.Printf("csar-mgr: scrub: dial: %v", err)
		return
	}
	defer cl.Close() //nolint:errcheck
	cl.SetResilience(pol)
	names, err := cl.List()
	if err != nil {
		log.Printf("csar-mgr: scrub: list: %v", err)
		return
	}
	live := make(map[string]bool, len(names))
	for _, name := range names {
		live[name] = true
		f, err := cl.Open(name)
		if err != nil {
			log.Printf("csar-mgr: scrub %s: %v", name, err)
			continue
		}
		j := journals[name]
		if j == nil {
			j = csar.NewScrubJournal()
			journals[name] = j
		}
		// Replay abandoned stripe intents first: a stripe fail-stopped
		// by a crashed writer would otherwise be skipped by the scrub
		// (it must not "repair" parity that replay still needs).
		if rr, err := cl.ReplayIntents(f); err != nil {
			log.Printf("csar-mgr: replay %s: %v", name, err)
		} else if rr.Replayed > 0 || len(rr.Problems) > 0 {
			log.Printf("csar-mgr: replay %s: %d stripes reconciled, %d deferred %v",
				name, rr.Replayed, rr.Skipped, rr.Problems)
		}
		rep, err := cl.Scrub(f, csar.ScrubOptions{
			RateLimit: rate, RepairData: repairData, Journal: j,
		})
		if err != nil {
			log.Printf("csar-mgr: scrub %s: %v", name, err)
			continue
		}
		if !rep.Clean() {
			log.Printf("csar-mgr: scrub %s: %v", name, rep)
			for _, p := range rep.Problems {
				log.Printf("csar-mgr: scrub %s: %s", name, p)
			}
		}
	}
	for name := range journals {
		if !live[name] {
			delete(journals, name)
		}
	}
}

// resyncPass is one tick of the automatic re-admission path: it asks the
// surviving servers which peers hold un-replayed degraded writes (the
// dirty-region logs), health-probes those peers, and resyncs each one that
// has come back — replaying only the damaged regions, or falling back to a
// full rebuild when the log cannot be trusted — then re-admits it. Like
// scrubPass, it closes its client on every path.
// migratePass is one tick of the scheme-migration policy: a Hybrid file
// whose storage is dominated by the mirrored overflow region is taking
// mirroring's 2x space cost on most of its bytes — the workload is small
// unaligned writes, which plain mirroring serves at half the storage
// bookkeeping — so the policy recommends (or, in auto mode, performs) an
// online re-layout onto the configured target scheme. Migration runs under
// live writers; an aborted pass leaves its pinned shadow layout for the
// next tick to resume. Like its siblings, the pass closes its client on
// every path.
func migratePass(addr string, auto bool, target csar.Scheme, frac, rate float64, pol csar.Policy) {
	cl, err := csar.Dial(addr)
	if err != nil {
		log.Printf("csar-mgr: migrate: dial: %v", err)
		return
	}
	defer cl.Close() //nolint:errcheck
	cl.SetResilience(pol)
	names, err := cl.List()
	if err != nil {
		log.Printf("csar-mgr: migrate: list: %v", err)
		return
	}
	for _, name := range names {
		f, err := cl.Open(name)
		if err != nil {
			log.Printf("csar-mgr: migrate %s: %v", name, err)
			continue
		}
		if f.Scheme() != csar.Hybrid || f.Scheme() == target {
			continue
		}
		total, by, err := f.StorageBytes()
		if err != nil || total == 0 {
			continue
		}
		overflow := float64(by[3]+by[4]) / float64(total)
		if overflow < frac {
			continue
		}
		if !auto {
			log.Printf("csar-mgr: migrate %s: %.0f%% of %d storage bytes is overflow; would re-layout to %v",
				name, overflow*100, total, target)
			continue
		}
		rep, err := cl.Migrate(f, target, 0, csar.MigrateOptions{RateLimit: rate})
		if err != nil {
			// An aborted pass leaves the shadow layout pinned; the next
			// tick resumes it.
			log.Printf("csar-mgr: migrate %s: %v", name, err)
			continue
		}
		log.Printf("csar-mgr: migrate %s: %v -> %v, %d bytes re-encoded (file id %d)",
			name, rep.From, rep.To, rep.BytesCopied, rep.NewID)
	}
}

func resyncPass(addr string, rate float64, dry bool, pol csar.Policy) {
	cl, err := csar.Dial(addr)
	if err != nil {
		log.Printf("csar-mgr: resync: dial: %v", err)
		return
	}
	defer cl.Close() //nolint:errcheck
	cl.SetResilience(pol)
	names, err := cl.List()
	if err != nil {
		log.Printf("csar-mgr: resync: list: %v", err)
		return
	}
	for _, name := range names {
		f, err := cl.Open(name)
		if err != nil {
			log.Printf("csar-mgr: resync %s: %v", name, err)
			continue
		}
		for _, dead := range cl.DirtyServers(f) {
			if !cl.ServerHealthy(dead) {
				continue // still out; leave the dirty log growing
			}
			if dry {
				rep, err := cl.Resync(f, dead, csar.ResyncOptions{RateLimit: rate, DryRun: true})
				if err != nil {
					log.Printf("csar-mgr: resync %s server %d (dry): %v", name, dead, err)
					continue
				}
				log.Printf("csar-mgr: resync %s server %d (dry): would replay %d units, %d mirrors, %d stripes (full rebuild: %v)",
					name, dead, rep.Units, rep.Mirrors, rep.Stripes, rep.FullRebuild)
				continue
			}
			// Plan around the stale server while we replay: its data
			// is out of date until the resync finishes.
			cl.MarkDown(dead)
			rep, err := cl.Resync(f, dead, csar.ResyncOptions{RateLimit: rate})
			if err != nil {
				// ErrResyncAborted leaves the dirty log intact; the
				// next tick re-runs and converges.
				log.Printf("csar-mgr: resync %s server %d: %v", name, dead, err)
				continue
			}
			cl.MarkUp(dead)
			if rep.FullRebuild {
				log.Printf("csar-mgr: resync %s server %d: dirty log untrusted, full rebuild done; re-admitted",
					name, dead)
				continue
			}
			log.Printf("csar-mgr: resync %s server %d: %d units, %d mirrors, %d stripes, %d overflow bytes in %d rounds; re-admitted",
				name, dead, rep.Units, rep.Mirrors, rep.Stripes, rep.OverflowBytes, rep.Rounds)
		}
	}
}
