// Command csar-mgr runs the CSAR metadata manager: the process that owns
// file names, layouts and sizes, and tells clients where the I/O servers
// are. It is never on the data path.
//
// A three-server deployment on one machine:
//
//	csar-iod -listen :7101 -index 0 &
//	csar-iod -listen :7102 -index 1 &
//	csar-iod -listen :7103 -index 2 &
//	csar-mgr -listen :7100 -iods localhost:7101,localhost:7102,localhost:7103
//
// Clients reach it with csar.Dial("localhost:7100") or the csar CLI.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"strings"

	"csar/internal/meta"
	"csar/internal/rpc"
)

func main() {
	var (
		listen = flag.String("listen", ":7100", "address to listen on")
		iods   = flag.String("iods", "", "comma-separated I/O server addresses, in index order")
		metaDB = flag.String("meta", "", "metadata snapshot file for durable metadata (default: in-memory)")
	)
	flag.Parse()

	addrs := strings.Split(*iods, ",")
	if *iods == "" || len(addrs) == 0 {
		log.Fatal("csar-mgr: -iods is required (comma-separated addresses, index order)")
	}
	for i, a := range addrs {
		addrs[i] = strings.TrimSpace(a)
		if addrs[i] == "" {
			log.Fatalf("csar-mgr: empty address at position %d", i)
		}
	}

	var m *meta.Manager
	var err error
	if *metaDB != "" {
		m, err = meta.NewPersistent(len(addrs), addrs, *metaDB)
		if err != nil {
			log.Fatalf("csar-mgr: %v", err)
		}
		fmt.Printf("csar-mgr: durable metadata in %s\n", *metaDB)
	} else {
		m = meta.New(len(addrs), addrs)
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("csar-mgr: %v", err)
	}
	fmt.Printf("csar-mgr: serving metadata on %s for %d I/O servers\n", ln.Addr(), len(addrs))
	for {
		conn, err := ln.Accept()
		if err != nil {
			log.Fatalf("csar-mgr: accept: %v", err)
		}
		go rpc.ServeConn(conn, m.Handle, nil, nil) //nolint:errcheck
	}
}
