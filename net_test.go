package csar

import (
	"net"
	"testing"

	"csar/internal/rpc"
	"csar/internal/wire"
)

// A server that is down must not wedge or abort the caller — its calls fail
// with an unavailability-class error — and once something is listening again
// the same caller must reconnect on its own, because that is what the
// circuit breaker's re-admission probe rides on.
func TestRedialCallerFailsUnavailableThenRecovers(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // nothing listening: the address is known-dead

	rc := &redialCaller{addr: addr}
	if _, err := rc.Call(&wire.Ping{}); err == nil {
		t.Fatal("call to a dead server succeeded")
	}

	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("cannot rebind %s: %v", addr, err)
	}
	defer ln2.Close()
	go func() {
		for {
			conn, err := ln2.Accept()
			if err != nil {
				return
			}
			go rpc.ServeConn(conn, func(wire.Msg) (wire.Msg, error) {
				return &wire.OK{}, nil
			}, nil, nil) //nolint:errcheck
		}
	}()

	if _, err := rc.Call(&wire.Ping{}); err != nil {
		t.Fatalf("redial after the server came back: %v", err)
	}
}
