module csar

go 1.22
