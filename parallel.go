package csar

import "csar/internal/mpio"

// Req is one rank's I/O request in a collective operation: Data is written
// at Off (CollectiveWrite) or filled from Off (CollectiveRead).
type Req struct {
	Off  int64
	Data []byte
}

// Rank is one process of an SPMD parallel program, in the style of MPI.
type Rank struct {
	inner *mpio.Rank
}

// RunParallel executes fn on `ranks` concurrent ranks sharing one
// communicator, like an MPI program launched with mpirun -np ranks. It
// returns the joined errors of all ranks.
//
// Collective I/O through the ranks reproduces ROMIO's two-phase collective
// buffering: each rank's small, non-contiguous requests are merged into
// large contiguous writes before reaching the file system — the
// transformation that makes BTIO's output appear to PVFS as ~4 MB requests
// (Section 6.5 of the paper).
func RunParallel(ranks int, fn func(r *Rank) error) error {
	return mpio.Run(ranks, func(r *mpio.Rank) error {
		return fn(&Rank{inner: r})
	})
}

// ID returns the rank number in [0, Size).
func (r *Rank) ID() int { return r.inner.ID() }

// Size returns the number of ranks.
func (r *Rank) Size() int { return r.inner.Size() }

// Barrier blocks until every rank has entered it.
func (r *Rank) Barrier() { r.inner.Barrier() }

// SetPipelineDepth bounds how many collective chunks each aggregator rank
// keeps in flight at once (the issue window). The default overlaps a few
// chunk round trips; depth 1 reproduces strict write-and-wait ROMIO
// behaviour. Call from one rank before the collective operation.
func (r *Rank) SetPipelineDepth(d int) { r.inner.SetPipelineDepth(d) }

// CollectiveWrite performs a collectively buffered write of every rank's
// requests. All ranks must call it, even with no requests.
func (r *Rank) CollectiveWrite(f *File, reqs []Req) error {
	return r.inner.CollectiveWrite(f.inner, toMPIO(reqs))
}

// CollectiveRead performs a collectively buffered read filling every
// rank's request buffers. All ranks must call it, even with no requests.
func (r *Rank) CollectiveRead(f *File, reqs []Req) error {
	return r.inner.CollectiveRead(f.inner, toMPIO(reqs))
}

func toMPIO(reqs []Req) []mpio.Req {
	out := make([]mpio.Req, len(reqs))
	for i, q := range reqs {
		out[i] = mpio.Req{Off: q.Off, Data: q.Data}
	}
	return out
}
