GO ?= go

.PHONY: build vet test race fuzz-seeds ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Run every checked-in fuzz corpus seed (including the wire-protocol
# ChecksumRange messages) as regular tests, without open-ended fuzzing.
fuzz-seeds:
	$(GO) test -run Fuzz ./internal/wire ./internal/extent

ci: vet build race fuzz-seeds
