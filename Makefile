GO ?= go

.PHONY: build vet test race fuzz-seeds faults ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Run every checked-in fuzz corpus seed (including the wire-protocol
# ChecksumRange messages) as regular tests, without open-ended fuzzing.
fuzz-seeds:
	$(GO) test -run Fuzz ./internal/wire ./internal/extent

# The deterministic fault-schedule suite: injected server hangs, ghost
# parity locks, partitions and flapping servers, run twice under the race
# detector to prove the scenarios are timing-independent.
faults:
	$(GO) test -race -count=2 -run 'TestFaultSchedule|TestAutoFailover' ./internal/cluster

ci: vet build race fuzz-seeds faults
