GO ?= go

.PHONY: build vet test race fuzz-seeds faults crash resync rs obs allocs bench-smoke meta-ha migrate staticcheck ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Run every checked-in fuzz corpus seed (including the wire-protocol
# ChecksumRange messages) as regular tests, without open-ended fuzzing.
fuzz-seeds:
	$(GO) test -run Fuzz ./internal/wire ./internal/extent

# The deterministic fault-schedule suite: injected server hangs, ghost
# parity locks, partitions and flapping servers, run twice under the race
# detector to prove the scenarios are timing-independent.
faults:
	$(GO) test -race -count=2 -run 'TestFaultSchedule|TestAutoFailover' ./internal/cluster

# The crash-consistency suite for the RAID5 write hole: client death
# mid-RMW, parity-server crash-restart with intent-journal replay, lease
# heartbeats under a stalled write, lease/intent metrics, and the
# real-TCP iod bounce — run twice under the race detector to prove the
# schedules are deterministic.
crash:
	$(GO) test -race -count=2 -run 'TestCrashClientMidRMW|TestCrashServerMidParityWrite|TestLeaseRenewalKeepsLock' ./internal/cluster
	$(GO) test -race -count=2 -run 'TestMetricsLeaseAndIntent|TestRestartedIODReadmission' .

# The online-resync suite: dirty-region tracking by degraded writes, delta
# replay with a concurrent foreground writer, cursor forwarding, the
# epoch-mismatch full-rebuild fallback, abort/rerun convergence, and
# dirty-log durability across a replica crash — run twice under the race
# detector because the delta scenario is genuinely concurrent.
resync:
	$(GO) test -race -count=2 -run 'TestResync|TestDirtyLog|TestRebuildAbort' ./internal/cluster
	$(GO) test -race -count=2 -run 'TestMetricsResyncCounters' .

# The Reed-Solomon suite: the GF(256) field and RS(k,m) matrix unit and
# property tests, and the RS(4,2) double-fault cluster scenarios —
# degraded reads with any two servers dead, double rebuild, delta resync
# and multi-parity crash-restart intent replay — under the race detector.
rs:
	$(GO) test -race -count=2 ./internal/gf256
	$(GO) test -race -count=2 -run 'TestRS' ./internal/cluster
	$(GO) test -race -count=2 -run 'TestMultiParityPlacement' ./internal/raid

# The observability suite: the lock-free histogram's concurrency property
# test under the race detector, the metrics/snapshot drift check, the
# /metrics + /statusz endpoint tests, and the live-cluster stats and
# fd-leak regressions over real TCP.
obs:
	$(GO) test -race ./internal/obs
	$(GO) test -race -run 'TestMetricsSnapshotDrift' ./internal/client
	$(GO) test -race -run 'TestDialCloseNoFDLeak|TestStatsOverLiveCluster' .
	$(GO) test -race ./cmd/csar

# The write-hot-path suite: allocation-budget regressions (pooled frame
# marshal, decode, full-stripe WriteAt through the whole stack), the
# poison-on-put pool-correctness property test, the pending-map drain
# regression, and the stripe-pipelining overlap/serialization tests — all
# under the race detector so the zero-copy paths are proven safe and lean
# at once.
allocs:
	$(GO) test -race -run 'TestMarshalFrameAllocs|TestUnmarshalAllocs|TestMarshalFrameMatchesMarshal|TestPoolPoisonCorrectness|TestTimedOutCallsDrainPendingMap' ./internal/wire ./internal/rpc
	$(GO) test -race -run 'TestFullStripeWriteAllocs|TestPipelinedStripeWritesOverlap|TestSameStripeWritesSerializeThroughParityLock' ./internal/cluster

# A tiny end-to-end run of the real csar-bench binary plus the schema-v2
# validation test, so BENCH_N.json files stay comparable across PRs.
bench-smoke:
	$(GO) build -o /tmp/csar-bench-smoke ./cmd/csar-bench
	/tmp/csar-bench-smoke -exp fig3 -div 2048 -scale 10ms -servers 6 -json /tmp/csar-bench-smoke.json
	$(GO) test -run TestBenchSmokeSchema ./internal/bench

# The metadata high-availability suite: WAL torn-tail recovery at every
# byte offset, crash-mid-compaction replay, primary→standby replication
# with epoch fencing, deterministic promotion, and the kill-the-primary-
# mid-create-stream failover acceptance test — run twice under the race
# detector because replication ships concurrently with client retries.
meta-ha:
	$(GO) test -race -count=2 -run 'TestWAL|TestReplication|TestStandby|TestPromotion|TestDeposed|TestLagging|TestTryPromote|TestReplicated|TestStatsRPC' ./internal/meta
	$(GO) test -race -count=2 -run 'TestManagerFailoverMidCreateStream|TestManagerGroupInMemory' ./internal/cluster
	$(GO) test -race -count=2 -run 'TestManagerFailoverOverTCP' .

# The online scheme-migration suite: the manager's pin/commit/abort fences
# with WAL, snapshot and standby-replication durability, the dual-write
# cursor boundary, the full scheme-transition matrix, abort/rerun
# convergence, the write-window stream regressions that ride the same PR,
# and the acceptance scenario — Hybrid -> RS(4,2) under concurrent writers
# surviving an I/O-server crash and a manager failover — run twice under
# the race detector because the migration copy is genuinely concurrent
# with foreground writers.
migrate:
	$(GO) test -race -count=2 -run 'TestSetScheme|TestCommitScheme|TestAbortScheme|TestMigration' ./internal/meta
	$(GO) test -race -count=2 -run 'TestMigrate|TestRelayout|TestAbortMigration' ./internal/cluster
	$(GO) test -race -count=2 -run 'TestStream|TestWindow' ./internal/client .

# Static analysis beyond go vet, when the tool is installed (CI images
# that lack it skip the target rather than fail it — nothing is
# downloaded at build time).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping"; \
	fi

ci: vet staticcheck build race fuzz-seeds faults crash resync rs obs allocs bench-smoke meta-ha migrate
