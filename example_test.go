package csar_test

import (
	"fmt"
	"log"

	"csar"
)

// The basic lifecycle: an in-process cluster, a Hybrid file, a write and a
// read back.
func ExampleNewCluster() {
	cluster, err := csar.NewCluster(csar.ClusterOptions{Servers: 5})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	client := cluster.NewClient()
	f, err := client.Create("example", csar.FileOptions{Scheme: csar.Hybrid})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("adaptive redundancy"), 0); err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 8)
	if _, err := f.ReadAt(buf, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s\n", buf)
	// Output: adaptive
}

// Storage overhead varies by scheme; for aligned full-stripe writes RAID1
// stores 2x while RAID5 and Hybrid store N/(N-1) x.
func ExampleFile_StorageBytes() {
	cluster, _ := csar.NewCluster(csar.ClusterOptions{Servers: 5})
	defer cluster.Close()
	client := cluster.NewClient()

	payload := make([]byte, 4*4*4096) // four full stripes of 4x4096
	for _, scheme := range []csar.Scheme{csar.Raid0, csar.Raid1, csar.Raid5, csar.Hybrid} {
		f, _ := client.Create("f-"+scheme.String(), csar.FileOptions{
			Scheme:     scheme,
			StripeUnit: 4096,
		})
		f.WriteAt(payload, 0)
		total, _, _ := f.StorageBytes()
		fmt.Printf("%s %.2fx\n", scheme, float64(total)/float64(len(payload)))
	}
	// Output:
	// raid0 1.00x
	// raid1 2.00x
	// raid5 1.25x
	// hybrid 1.25x
}

// Surviving a server failure: degraded read, then rebuild.
func ExampleClient_Rebuild() {
	cluster, _ := csar.NewCluster(csar.ClusterOptions{Servers: 4})
	defer cluster.Close()
	client := cluster.NewClient()

	f, _ := client.Create("precious", csar.FileOptions{Scheme: csar.Raid5, StripeUnit: 4096})
	f.WriteAt([]byte("survives a disk failure"), 0)

	cluster.StopServer(1)
	client.MarkDown(1)
	buf := make([]byte, 8)
	f.ReadAt(buf, 0) // reconstructed from survivors + parity
	fmt.Printf("degraded: %s\n", buf)

	cluster.ReplaceServer(1)
	client.Rebuild(f, 1)
	client.MarkUp(1)
	problems, _ := client.Verify(f)
	fmt.Printf("problems after rebuild: %d\n", len(problems))
	// Output:
	// degraded: survives
	// problems after rebuild: 0
}

// Parallel ranks with collective I/O, as MPI-IO applications use CSAR.
func ExampleRunParallel() {
	cluster, _ := csar.NewCluster(csar.ClusterOptions{Servers: 4})
	defer cluster.Close()
	setup := cluster.NewClient()
	setup.Create("shared", csar.FileOptions{Scheme: csar.Hybrid})

	err := csar.RunParallel(4, func(r *csar.Rank) error {
		client := cluster.NewClient()
		f, err := client.Open("shared")
		if err != nil {
			return err
		}
		data := []byte{byte('a' + r.ID())}
		return r.CollectiveWrite(f, []csar.Req{{Off: int64(r.ID()), Data: data}})
	})
	if err != nil {
		log.Fatal(err)
	}
	f, _ := setup.Open("shared")
	buf := make([]byte, 4)
	f.ReadAt(buf, 0)
	fmt.Printf("%s\n", buf)
	// Output: abcd
}

// Compacting a Hybrid file reclaims overflow storage (Section 6.7).
func ExampleFile_Compact() {
	cluster, _ := csar.NewCluster(csar.ClusterOptions{Servers: 4})
	defer cluster.Close()
	client := cluster.NewClient()
	f, _ := client.Create("small-writes", csar.FileOptions{Scheme: csar.Hybrid, StripeUnit: 4096})

	// Many sub-stripe writes: everything lands mirrored in overflow (~2x).
	for off := int64(0); off < 1<<20; off += 2048 {
		f.WriteAt(make([]byte, 2048), off)
	}
	before, _, _ := f.StorageBytes()
	f.Compact()
	after, _, _ := f.StorageBytes()
	fmt.Printf("before: %.2fx after: %.2fx\n",
		float64(before)/float64(1<<20), float64(after)/float64(1<<20))
	// Output: before: 2.00x after: 1.34x
}
