package csar_test

import (
	"net"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"csar"
	"csar/internal/meta"
	"csar/internal/rpc"
	"csar/internal/server"
	"csar/internal/simdisk"
)

// startTCPServers brings up n loopback-TCP I/O daemons and returns their
// addresses (the managers under test are started separately, unlike
// startTCPCluster's built-in single manager).
func startTCPServers(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		addrs[i] = ln.Addr().String()
		srv := server.New(i, simdisk.New(nil, simdisk.Params{PageSize: 4096}), server.DefaultOptions())
		go func() {
			for {
				conn, err := ln.Accept()
				if err != nil {
					return
				}
				go rpc.ServeConnTraced(conn, srv.HandleTraced, nil, nil) //nolint:errcheck
			}
		}()
	}
	return addrs
}

// startTCPManager serves mgr on a fresh loopback listener and returns its
// address plus a stop function that closes the listener (modeling the
// manager process becoming unreachable; the Manager itself is closed by the
// caller).
func startTCPManager(t *testing.T, mgr *meta.Manager) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go rpc.ServeConn(conn, mgr.Handle, nil, nil) //nolint:errcheck
		}
	}()
	return ln.Addr().String(), func() { ln.Close() }
}

// TestManagerFailoverOverTCP exercises the whole HA stack over real
// sockets — the same wiring csar-mgr performs: two persistent managers
// replicating through meta.TCPPeer, a client built by csar.DialList with
// both addresses, the primary's listener torn down mid-stream, the standby
// promoted, and the surviving namespace verified through a fresh client.
func TestManagerFailoverOverTCP(t *testing.T) {
	srvAddrs := startTCPServers(t, 4)

	dir := t.TempDir()
	mgrs := make([]*meta.Manager, 2)
	addrs := make([]string, 2)
	stops := make([]func(), 2)
	for i := range mgrs {
		mdir := filepath.Join(dir, "mgr"+string(rune('0'+i)))
		if err := os.MkdirAll(mdir, 0o755); err != nil {
			t.Fatal(err)
		}
		m, err := meta.NewPersistent(len(srvAddrs), srvAddrs, filepath.Join(mdir, "meta.json"))
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		mgrs[i] = m
		addrs[i], stops[i] = startTCPManager(t, m)
	}
	for i, m := range mgrs {
		peers := make([]meta.Caller, 2)
		for j := range peers {
			if j != i {
				peers[j] = meta.NewTCPPeer(addrs[j], 2*time.Second)
			}
		}
		m.SetCluster(i, peers, i != 0)
	}

	cl, err := csar.DialList(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	want := []string{"tcp-a", "tcp-b", "tcp-c"}
	for _, name := range want {
		if _, err := cl.Create(name, csar.FileOptions{Scheme: csar.Raid1, StripeUnit: 4096}); err != nil {
			t.Fatalf("Create(%q): %v", name, err)
		}
	}

	// Primary becomes unreachable; the standby is promoted (as csar-mgr's
	// -promote-after loop would) and the same client must converge on it.
	stops[0]()
	if won, err := mgrs[1].TryPromote(); err != nil || !won {
		t.Fatalf("TryPromote: won=%v err=%v", won, err)
	}
	if _, err := cl.Create("tcp-d", csar.FileOptions{Scheme: csar.Raid1, StripeUnit: 4096}); err != nil {
		t.Fatalf("Create after failover: %v", err)
	}
	want = append(want, "tcp-d")
	if cl.Metrics().MetaFailovers == 0 {
		t.Fatal("expected MetaFailovers > 0 after primary loss")
	}

	// A fresh client dialed with the full list (dead primary first) must
	// see every acknowledged file.
	cl2, err := csar.DialList(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	names, err := cl2.List()
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(names)
	sort.Strings(want)
	if len(names) != len(want) {
		t.Fatalf("List = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("List = %v, want %v", names, want)
		}
	}
	stops[1]()
}
