package csar_test

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"time"

	"csar"
	"csar/internal/meta"
	"csar/internal/rpc"
	"csar/internal/server"
	"csar/internal/simdisk"
)

func newTestCluster(t *testing.T, n int) *csar.Cluster {
	t.Helper()
	c, err := csar.NewCluster(csar.ClusterOptions{Servers: n})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestFacadeLifecycle(t *testing.T) {
	c := newTestCluster(t, 5)
	cl := c.NewClient()

	f, err := cl.Create("f", csar.FileOptions{Scheme: csar.Hybrid, StripeUnit: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if f.Scheme() != csar.Hybrid {
		t.Fatalf("scheme = %v", f.Scheme())
	}
	data := bytes.Repeat([]byte("csar!"), 10000)
	if _, err := f.WriteAt(data, 123); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := f.ReadAt(got, 123); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip failed")
	}
	if f.Size() != int64(123+len(data)) {
		t.Fatalf("size = %d", f.Size())
	}

	names, err := cl.List()
	if err != nil || len(names) != 1 || names[0] != "f" {
		t.Fatalf("list = %v, %v", names, err)
	}
	total, _, err := f.StorageBytes()
	if err != nil || total == 0 {
		t.Fatalf("storage = %d, %v", total, err)
	}
	problems, err := cl.Verify(f)
	if err != nil || len(problems) > 0 {
		t.Fatalf("verify = %v, %v", problems, err)
	}
	if err := cl.Remove("f"); err != nil {
		t.Fatal(err)
	}
	if c.TotalStorage() != 0 {
		t.Fatal("storage remains after remove")
	}
}

func TestFacadeDefaults(t *testing.T) {
	c := newTestCluster(t, 4)
	cl := c.NewClient()
	f, err := cl.Create("d", csar.FileOptions{}) // all defaults
	if err != nil {
		t.Fatal(err)
	}
	if f.Scheme() != csar.Raid0 {
		t.Fatalf("default scheme = %v", f.Scheme())
	}
	if _, err := f.WriteAt([]byte("x"), 0); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeFailureWorkflow(t *testing.T) {
	c := newTestCluster(t, 4)
	cl := c.NewClient()
	f, err := cl.Create("f", csar.FileOptions{Scheme: csar.Raid5, StripeUnit: 4096})
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{9}, 100_000)
	f.WriteAt(data, 0)

	c.StopServer(1)
	cl.MarkDown(1)
	got := make([]byte, len(data))
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("degraded read wrong")
	}
	// Degraded writes land via the redundancy (extension beyond the paper).
	patch := []byte("degraded!")
	if _, err := f.WriteAt(patch, 500); err != nil {
		t.Fatalf("degraded write: %v", err)
	}
	copy(data[500:], patch)
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("degraded write not visible to degraded read")
	}
	c.ReplaceServer(1)
	if err := cl.Rebuild(f, 1); err != nil {
		t.Fatal(err)
	}
	cl.MarkUp(1)
	problems, err := cl.Verify(f)
	if err != nil || len(problems) > 0 {
		t.Fatalf("after rebuild: %v, %v", problems, err)
	}
}

func TestIsServerDown(t *testing.T) {
	c := newTestCluster(t, 3)
	cl := c.NewClient()
	f, err := cl.Create("f", csar.FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	f.WriteAt(make([]byte, 1<<20), 0)
	c.StopServer(0)
	_, err = f.ReadAt(make([]byte, 1<<20), 0)
	if !csar.IsServerDown(err) {
		t.Fatalf("IsServerDown(%v) = false", err)
	}
}

func TestTimedClusterReportsSimTime(t *testing.T) {
	c, err := csar.NewCluster(csar.ClusterOptions{
		Servers: 3,
		Model:   csar.DefaultModel(50 * time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !c.Timed() {
		t.Fatal("modeled cluster not timed")
	}
	cl := c.NewClient()
	f, err := cl.Create("f", csar.FileOptions{Scheme: csar.Raid1})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := f.WriteAt(make([]byte, 4<<20), 0); err != nil {
		t.Fatal(err)
	}
	if sim := c.SimElapsed(start); sim <= 0 {
		t.Fatalf("SimElapsed = %v", sim)
	}
	if c.ServerDiskStats(0).CacheMisses < 0 {
		t.Fatal("stats accessor broken")
	}
	if c.ServerRequests(0) == 0 {
		t.Fatal("no requests recorded")
	}
}

func TestParseScheme(t *testing.T) {
	s, err := csar.ParseScheme("hybrid")
	if err != nil || s != csar.Hybrid {
		t.Fatalf("ParseScheme = %v, %v", s, err)
	}
	if _, err := csar.ParseScheme("raid9"); err == nil {
		t.Fatal("bad scheme accepted")
	}
}

func TestRunParallelCollectives(t *testing.T) {
	c := newTestCluster(t, 4)
	setup := c.NewClient()
	if _, err := setup.Create("p", csar.FileOptions{Scheme: csar.Hybrid}); err != nil {
		t.Fatal(err)
	}
	err := csar.RunParallel(4, func(r *csar.Rank) error {
		cl := c.NewClient()
		f, err := cl.Open("p")
		if err != nil {
			return err
		}
		data := bytes.Repeat([]byte{byte(r.ID() + 1)}, 10_000)
		if err := r.CollectiveWrite(f, []csar.Req{{Off: int64(r.ID()) * 10_000, Data: data}}); err != nil {
			return err
		}
		r.Barrier()
		buf := make([]byte, 10_000)
		if err := r.CollectiveRead(f, []csar.Req{{Off: int64(r.ID()) * 10_000, Data: buf}}); err != nil {
			return err
		}
		if !bytes.Equal(buf, data) {
			return errors.New("collective read mismatch")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDialOverTCP brings up a real manager and iods on loopback TCP and
// exercises the deployment path the csar/csar-mgr/csar-iod commands use.
func TestDialOverTCP(t *testing.T) {
	const servers = 3
	addrs := make([]string, servers)
	for i := 0; i < servers; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		addrs[i] = ln.Addr().String()
		srv := server.New(i, simdisk.New(nil, simdisk.Params{PageSize: 4096}), server.DefaultOptions())
		go func() {
			for {
				conn, err := ln.Accept()
				if err != nil {
					return
				}
				go rpc.ServeConn(conn, srv.Handle, nil, nil) //nolint:errcheck
			}
		}()
	}
	mln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer mln.Close()
	mgr := meta.New(servers, addrs)
	go func() {
		for {
			conn, err := mln.Accept()
			if err != nil {
				return
			}
			go rpc.ServeConn(conn, mgr.Handle, nil, nil) //nolint:errcheck
		}
	}()

	cl, err := csar.Dial(mln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	f, err := cl.Create("tcp-file", csar.FileOptions{Scheme: csar.Raid5, StripeUnit: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("over tcp "), 50_000)
	if _, err := f.WriteAt(data, 777); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := f.ReadAt(got, 777); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("TCP round trip failed")
	}
	problems, err := cl.Verify(f)
	if err != nil || len(problems) > 0 {
		t.Fatalf("verify over TCP: %v, %v", problems, err)
	}
}

func TestDialErrors(t *testing.T) {
	if _, err := csar.Dial("127.0.0.1:1"); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}
