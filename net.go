package csar

import (
	"fmt"
	"net"

	"csar/internal/client"
	"csar/internal/rpc"
	"csar/internal/wire"
)

// Dial connects to a running CSAR deployment: it contacts the manager at
// mgrAddr, asks it for the I/O server addresses, and opens a connection to
// every server. The returned client is ready for Create/Open, and has
// DefaultPolicy's resilience applied — per-call deadlines, retries of
// idempotent calls, and the per-server circuit breaker; SetResilience
// overrides it (the zero Policy disables the layer).
//
// Deployments are started with the csar-mgr and csar-iod commands; see
// their documentation for the wiring.
func Dial(mgrAddr string) (*Client, error) {
	mconn, err := net.Dial("tcp", mgrAddr)
	if err != nil {
		return nil, fmt.Errorf("csar: dial manager: %w", err)
	}
	mgr := rpc.NewClient(mconn, nil, nil)
	resp, err := mgr.Call(&wire.ServerList{})
	if err != nil {
		mgr.Close()
		return nil, fmt.Errorf("csar: server list: %w", err)
	}
	addrs := resp.(*wire.ServerListResp).Addrs
	if len(addrs) == 0 {
		mgr.Close()
		return nil, fmt.Errorf("csar: manager reports no I/O servers")
	}
	callers := make([]client.Caller, len(addrs))
	for i, a := range addrs {
		conn, err := net.Dial("tcp", a)
		if err != nil {
			mgr.Close()
			return nil, fmt.Errorf("csar: dial iod %d (%s): %w", i, a, err)
		}
		callers[i] = rpc.NewClient(conn, nil, nil)
	}
	inner := client.New(mgr, callers)
	inner.SetPolicy(client.DefaultPolicy())
	return &Client{inner: inner}, nil
}
