package csar

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"csar/internal/client"
	"csar/internal/rpc"
	"csar/internal/wire"
)

// DefaultConnsPerServer is the size of each I/O server's connection pool.
// One rpc.Client already multiplexes any number of in-flight requests over
// its connection, but a single TCP stream serializes the *bytes*: a large
// write frame from one operation delays every frame queued behind it. A
// small pool gives concurrent operations independent streams.
const DefaultConnsPerServer = 2

// redialCaller is the connection pool to one I/O server, tolerant of the
// server being down. Each slot's TCP connection is established lazily on
// first use and re-established after it fails, so:
//
//   - a server that is dead when Dial runs does not abort the whole client —
//     its calls fail with an unavailability error, which is exactly what
//     trips the circuit breaker and routes reads to the degraded
//     reconstruction paths (the point of the redundancy schemes);
//   - a server that crashes mid-session and comes back is re-admitted by the
//     breaker's Health probe, because the probe's call re-dials instead of
//     hitting a permanently closed rpc client.
//
// Calls pick a slot round-robin; in-flight requests multiplex freely on
// each slot's rpc.Client.
type redialCaller struct {
	addr string
	next atomic.Uint32

	mu    sync.Mutex
	conns []*rpc.Client
}

func newRedialCaller(addr string, conns int) *redialCaller {
	if conns < 1 {
		conns = 1
	}
	return &redialCaller{addr: addr, conns: make([]*rpc.Client, conns)}
}

func (r *redialCaller) get() (*rpc.Client, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.conns) == 0 { // zero-value caller: degenerate single-conn pool
		r.conns = make([]*rpc.Client, 1)
	}
	// Reduce in unsigned space: on 32-bit platforms int(uint32) goes
	// negative once the counter wraps past 2^31, and a negative index
	// would panic here.
	slot := int(r.next.Add(1) % uint32(len(r.conns)))
	if r.conns[slot] != nil {
		return r.conns[slot], nil
	}
	conn, err := net.Dial("tcp", r.addr)
	if err != nil {
		return nil, fmt.Errorf("csar: dial iod %s: %v: %w", r.addr, err, wire.ErrUnavailable)
	}
	r.conns[slot] = rpc.NewClient(conn, nil, nil)
	return r.conns[slot], nil
}

// drop forgets a failed connection so the next call on its slot re-dials.
func (r *redialCaller) drop(failed *rpc.Client) {
	r.mu.Lock()
	for i, c := range r.conns {
		if c == failed {
			failed.Close()
			r.conns[i] = nil
		}
	}
	r.mu.Unlock()
}

func (r *redialCaller) Call(m wire.Msg) (wire.Msg, error) {
	return r.CallTimeout(m, 0)
}

// CallTimeout satisfies the resilience layer's timeoutCaller fast path, so
// per-call deadlines ride the rpc client's abandon path instead of a
// goroutine race.
func (r *redialCaller) CallTimeout(m wire.Msg, timeout time.Duration) (wire.Msg, error) {
	cli, err := r.get()
	if err != nil {
		return nil, err
	}
	resp, err := cli.CallTimeout(m, timeout)
	if err != nil && errors.Is(err, rpc.ErrClosed) {
		r.drop(cli)
	}
	return resp, err
}

// CallTraced satisfies the resilience layer's tracedCaller fast path: the
// request rides the wire with its operation's trace ID in the frame header,
// so server-side slow-op logs can be correlated back to the client op.
func (r *redialCaller) CallTraced(m wire.Msg, trace uint64, timeout time.Duration) (wire.Msg, error) {
	cli, err := r.get()
	if err != nil {
		return nil, err
	}
	resp, err := cli.CallTraced(m, trace, timeout)
	if err != nil && errors.Is(err, rpc.ErrClosed) {
		r.drop(cli)
	}
	return resp, err
}

// Close drops every cached connection. The caller stays usable — a later
// call re-dials — but a client being torn down releases its descriptors
// instead of leaking them (periodic dial-work-exit loops depend on this).
func (r *redialCaller) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var first error
	for i, c := range r.conns {
		if c == nil {
			continue
		}
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
		r.conns[i] = nil
	}
	return first
}

// Dial connects to a running CSAR deployment: it contacts the manager(s)
// at mgrAddr — a single address, or a comma-separated list naming the
// whole manager group in cluster index order — asks for the I/O server
// addresses, and wires up a connection to every server. The returned
// client is ready for Create/Open, and has DefaultPolicy's resilience
// applied — per-call deadlines, retries of idempotent calls, and the
// per-server circuit breaker; SetResilience overrides it (the zero Policy
// disables the layer).
//
// An I/O server that is unreachable is not an error here: its connection is
// established lazily and, until that succeeds, it is treated like any other
// down server — the breaker opens and reads route through the degraded
// reconstruction paths. With a manager group, a dead manager is likewise
// tolerated: its connection redials lazily and metadata RPCs fail over to
// the survivors. Dial fails only when no manager answers at all.
//
// Deployments are started with the csar-mgr and csar-iod commands; see
// their documentation for the wiring.
func Dial(mgrAddr string) (*Client, error) {
	return DialList(splitAddrs(mgrAddr))
}

// DialList is Dial taking the manager group as an explicit address slice.
func DialList(mgrAddrs []string) (*Client, error) {
	if len(mgrAddrs) == 0 {
		return nil, fmt.Errorf("csar: no manager address")
	}
	mgrs := make([]client.Caller, len(mgrAddrs))
	for i, a := range mgrAddrs {
		mgrs[i] = newRedialCaller(a, 1)
	}
	// Any group member — primary or standby — serves ServerList; take the
	// first that answers.
	var addrs []string
	var lastErr error
	for _, m := range mgrs {
		resp, err := m.(*redialCaller).CallTimeout(&wire.ServerList{}, 5*time.Second)
		if err != nil {
			lastErr = err
			continue
		}
		addrs = resp.(*wire.ServerListResp).Addrs
		lastErr = nil
		break
	}
	if lastErr != nil {
		return nil, fmt.Errorf("csar: server list: no manager reachable: %w", lastErr)
	}
	if len(addrs) == 0 {
		return nil, fmt.Errorf("csar: manager reports no I/O servers")
	}
	callers := make([]client.Caller, len(addrs))
	for i, a := range addrs {
		callers[i] = newRedialCaller(a, DefaultConnsPerServer)
	}
	inner := client.NewMulti(mgrs, callers)
	inner.SetPolicy(client.DefaultPolicy())
	return &Client{inner: inner}, nil
}

// splitAddrs parses a comma-separated address list, trimming whitespace
// and dropping empty entries.
func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}
