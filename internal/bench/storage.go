package bench

import (
	"fmt"
	"io"

	"csar/internal/workload"
)

func init() {
	register(Experiment{"tab2", "Table 2: storage requirement per scheme", tab2})
}

// tab2 reproduces the storage-requirement table: run each application
// workload under each scheme and sum the file sizes at the I/O servers.
// Storage accounting is timing-independent, so these runs use untimed
// clusters. The paper's qualitative results: RAID1 = 2x RAID0, RAID5 =
// n/(n-1) x RAID0 for large-write workloads, and Hybrid between RAID5 and
// RAID1 except for small-write workloads with large stripe units (FLASH
// at 64 KB), where overflow-slot fragmentation pushes it above RAID1.
func tab2(cfg Config, w io.Writer) error {
	servers := cfg.MaxServers

	type row struct {
		name  string
		su    int64
		ranks int
		run   func(e workload.Env) (int64, error)
	}
	rows := []row{
		{"btio-a", 64 << 10, 4, func(e workload.Env) (int64, error) {
			return workload.BTIO(e, "f", 4, workload.BTIOClassA.Scaled(cfg.SizeDiv))
		}},
		{"btio-b", 64 << 10, 4, func(e workload.Env) (int64, error) {
			return workload.BTIO(e, "f", 4, workload.BTIOClassB.Scaled(cfg.SizeDiv))
		}},
		{"btio-c", 64 << 10, 4, func(e workload.Env) (int64, error) {
			return workload.BTIO(e, "f", 4, workload.BTIOClassC.Scaled(cfg.SizeDiv))
		}},
		{"flash 4p, 16K su", 16 << 10, 4, func(e workload.Env) (int64, error) {
			return workload.FlashIO(e, "f", 4, cfg.scaled(45<<20, 2<<20))
		}},
		{"flash 4p, 64K su", 64 << 10, 4, func(e workload.Env) (int64, error) {
			return workload.FlashIO(e, "f", 4, cfg.scaled(45<<20, 2<<20))
		}},
		{"flash 24p, 16K su", 16 << 10, 24, func(e workload.Env) (int64, error) {
			return workload.FlashIO(e, "f", 24, cfg.scaled(235<<20, 8<<20))
		}},
		{"flash 24p, 64K su", 64 << 10, 24, func(e workload.Env) (int64, error) {
			return workload.FlashIO(e, "f", 24, cfg.scaled(235<<20, 8<<20))
		}},
		{"hartree-fock", 64 << 10, 1, func(e workload.Env) (int64, error) {
			return workload.HartreeFock(e, "f", cfg.scaled(149<<20, 2<<20), 0)
		}},
		{"cactus", 64 << 10, 8, func(e workload.Env) (int64, error) {
			return workload.Cactus(e, "f", 8, cfg.scaled(400<<20, 4<<20))
		}},
	}

	t := &Table{
		Title:  fmt.Sprintf("Table 2: storage requirement (MB, sizes scaled by 1/%d)", cfg.SizeDiv),
		Header: []string{"benchmark"},
	}
	for _, s := range appSchemes {
		t.Header = append(t.Header, s.String())
	}
	for _, r := range rows {
		cells := []string{r.name}
		for _, scheme := range appSchemes {
			cl, err := cfg.newUntimedCluster(servers)
			if err != nil {
				return err
			}
			if _, err := r.run(env(cl, scheme, r.su)); err != nil {
				cl.Close()
				return fmt.Errorf("%s/%v: %w", r.name, scheme, err)
			}
			total := cl.TotalStorage()
			cl.Close()
			cells = append(cells, fmt.Sprintf("%.1f", float64(total)/1e6))
		}
		t.AddRow(cells...)
	}
	t.Notes = append(t.Notes,
		"paper: Hybrid exceeds RAID1 only for FLASH with 64K stripe unit (overflow fragmentation)")
	_, err := t.WriteTo(w)
	return err
}
