package bench

import (
	"strings"
	"testing"
	"time"
)

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) < 12 {
		t.Fatalf("only %d experiments registered", len(exps))
	}
	// Sorted and unique names; every paper figure/table present.
	seen := map[string]bool{}
	for i, e := range exps {
		if seen[e.Name] {
			t.Fatalf("duplicate experiment %q", e.Name)
		}
		seen[e.Name] = true
		if i > 0 && exps[i-1].Name >= e.Name {
			t.Fatalf("experiments not sorted: %q before %q", exps[i-1].Name, e.Name)
		}
		if e.Title == "" || e.Run == nil {
			t.Fatalf("experiment %q incomplete", e.Name)
		}
	}
	for _, want := range []string{
		"fig1", "fig3", "fig4a", "fig4b", "fig5", "fig6", "fig7", "fig8",
		"tab2", "writebuf", "ablate-su", "ablate-compact", "ablate-lock",
	} {
		if !seen[want] {
			t.Fatalf("experiment %q missing", want)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var sb strings.Builder
	if err := Run("nope", Config{}, &sb); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Scale <= 0 || c.SizeDiv <= 0 || c.MaxServers <= 0 {
		t.Fatalf("defaults not applied: %+v", c)
	}
	if got := c.scaled(3200, 10); got != 3200/c.SizeDiv {
		t.Fatalf("scaled=%d", got)
	}
	if got := c.scaled(1, 10); got != 10 {
		t.Fatalf("scaled floor=%d", got)
	}
	m := c.model()
	if m.ServerCacheBytes != paperCacheBytes/c.SizeDiv {
		t.Fatalf("cache not scaled: %d", m.ServerCacheBytes)
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		Title:  "T",
		Header: []string{"x", "a", "bb"},
		Notes:  []string{"a note"},
	}
	tab.AddRow("1", "2.0", "3.00")
	tab.AddRow("10", "20.0", "30.00")
	var sb strings.Builder
	if _, err := tab.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"== T ==", "30.00", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Value columns are right-aligned under their headers.
	lines := strings.Split(out, "\n")
	var header, row string
	for i, l := range lines {
		if strings.HasPrefix(l, "x") {
			header = l
			row = lines[i+2]
			break
		}
	}
	if strings.Index(header, "bb")+2 != strings.Index(row, "3.00")+4 {
		t.Fatalf("misaligned columns:\n%q\n%q", header, row)
	}
}

func TestFig1RunsInstantly(t *testing.T) {
	var sb strings.Builder
	if err := Run("fig1", Config{}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "fill-time") {
		t.Fatal("fig1 output missing columns")
	}
}

func TestTimedExperimentSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("timed experiment")
	}
	// A tiny, fast configuration: validates the whole harness path (cluster
	// construction, workload, measurement, table) without paper-scale cost.
	cfg := Config{Scale: 20 * time.Millisecond, SizeDiv: 512, MaxServers: 4}
	var sb strings.Builder
	if err := Run("fig4b", cfg, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "raid5") {
		t.Fatalf("fig4b output incomplete:\n%s", sb.String())
	}
}

func TestStorageExperimentSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full workloads")
	}
	cfg := Config{Scale: time.Millisecond, SizeDiv: 1024, MaxServers: 4}
	var sb strings.Builder
	if err := Run("ablate-compact", cfg, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "after Compact") {
		t.Fatalf("compaction output incomplete:\n%s", sb.String())
	}
}
