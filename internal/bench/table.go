package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is a printable experiment result: one labeled x column plus one
// column per series, matching the figure or table it regenerates.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// WriteTo renders the table with aligned columns.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	b.WriteString("\n== " + t.Title + " ==\n")
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			if i == 0 {
				b.WriteString(c + strings.Repeat(" ", pad))
			} else {
				b.WriteString(strings.Repeat(" ", pad) + c)
			}
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	b.WriteString(strings.Repeat("-", total) + "\n")
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		b.WriteString("note: " + n + "\n")
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// mb formats a bandwidth value.
func mb(v float64) string { return fmt.Sprintf("%.1f", v) }

// ratio formats a normalized value.
func ratio(v float64) string { return fmt.Sprintf("%.2f", v) }
