// Package bench regenerates every figure and table of the paper's
// evaluation (Section 6) on the modeled cluster: it builds a fresh cluster
// per data point, runs the corresponding workload generator, measures
// bandwidth in simulated time, and prints the same rows and series the
// paper plots.
//
// Absolute numbers depend on the model parameters (NIC and disk rates of
// the 2003 testbed); the claims under test are the shapes — which scheme
// wins, by what factor, and where the crossovers fall. EXPERIMENTS.md
// records paper-vs-measured for each experiment.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"csar"
	"csar/internal/workload"
)

// Config scales the experiments.
type Config struct {
	// Scale is the wall-clock duration of one simulated second. Larger
	// values reduce CPU noise in the measurements; smaller values run
	// faster. Default 2s.
	Scale time.Duration
	// SizeDiv divides the paper's data sizes (and the servers' cache
	// size, to preserve cache-pressure effects). Default 16.
	SizeDiv int64
	// MaxServers caps the I/O server counts swept by the microbenchmarks.
	// Default 8, the size of the paper's first testbed.
	MaxServers int
	// Results, when non-nil, collects every measured data point (with its
	// op-latency percentiles) for machine-readable output alongside the
	// printed tables. csar-bench wires it to the -json flag.
	Results *Results
}

// ResultsSchemaVersion identifies the bench JSON layout. Version 1 carried
// bandwidth only; version 2 adds per-op latency percentiles.
const ResultsSchemaVersion = 2

// Results is the machine-readable output of a bench run.
type Results struct {
	SchemaVersion int      `json:"schema_version"`
	Points        []Result `json:"results"`
}

// Result is one measured data point: an experiment cell's bandwidth plus
// the latency distribution of every logical op path the workload exercised
// (op_write, op_write_full_stripe, op_write_rmw, parity_lock_wait, ...),
// merged over all clients the workload used.
type Result struct {
	Experiment    string                    `json:"experiment"`
	Scheme        string                    `json:"scheme,omitempty"`
	Servers       int                       `json:"servers,omitempty"`
	MBps          float64                   `json:"mbps"`
	OpLatenciesUS map[string]LatencySummary `json:"op_latencies_us,omitempty"`
}

// LatencySummary compresses one histogram into count + microsecond
// percentiles. Percentiles are upper bounds of the power-of-two bucket the
// rank falls in — within one bucket of exact.
type LatencySummary struct {
	Count int64 `json:"count"`
	P50   int64 `json:"p50"`
	P95   int64 `json:"p95"`
	P99   int64 `json:"p99"`
	Max   int64 `json:"max"`
}

// opLatencies extracts the op-path and lock-wait histograms from a merged
// client snapshot (simulated time under the model, like the MB/s figures).
func opLatencies(s csar.Stats) map[string]LatencySummary {
	out := make(map[string]LatencySummary)
	for _, h := range s.Hists {
		if h.Count == 0 {
			continue
		}
		if !strings.HasPrefix(h.Name, "op_") && h.Name != "parity_lock_wait" {
			continue
		}
		out[h.Name] = LatencySummary{
			Count: h.Count,
			P50:   h.P50().Microseconds(),
			P95:   h.P95().Microseconds(),
			P99:   h.P99().Microseconds(),
			Max:   h.Max.Microseconds(),
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// DefaultConfig returns the standard experiment scaling.
func DefaultConfig() Config {
	return Config{Scale: 2 * time.Second, SizeDiv: 16, MaxServers: 8}
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 2 * time.Second
	}
	if c.SizeDiv <= 0 {
		c.SizeDiv = 16
	}
	if c.MaxServers <= 0 {
		c.MaxServers = 8
	}
	return c
}

// paperCacheBytes is the page cache of one testbed node (1 GB RAM).
const paperCacheBytes = 1 << 30

// model returns the timed cluster model at the config's scale, with the
// server cache scaled down alongside the data sizes.
func (c Config) model() csar.Model {
	m := csar.DefaultModel(c.Scale)
	m.ServerCacheBytes = paperCacheBytes / c.SizeDiv
	if m.ServerCacheBytes < 1<<20 {
		m.ServerCacheBytes = 1 << 20
	}
	return m
}

// newCluster builds a timed cluster of n servers.
func (c Config) newCluster(n int) (*csar.Cluster, error) {
	return csar.NewCluster(csar.ClusterOptions{Servers: n, Model: c.model()})
}

// newUntimedCluster builds a functional cluster (storage accounting runs
// need no timing and are much faster without it).
func (c Config) newUntimedCluster(n int) (*csar.Cluster, error) {
	return csar.NewCluster(csar.ClusterOptions{Servers: n})
}

// scaled divides a paper-scale byte count by the config's divisor,
// keeping at least min bytes.
func (c Config) scaled(bytes, min int64) int64 {
	n := bytes / c.SizeDiv
	if n < min {
		n = min
	}
	return n
}

// runTimed executes fn against a fresh timed cluster and returns the
// modeled bandwidth in MB/s.
func (c Config) runTimed(servers int, fn func(cl *csar.Cluster) (int64, error)) (float64, error) {
	return c.runTimedPoint("", "", servers, fn)
}

// runTimedPoint is runTimed plus result collection: when Config.Results is
// set and experiment is non-empty, the data point — bandwidth and the
// latency percentiles of every client op the workload ran — is appended to
// the machine-readable output.
func (c Config) runTimedPoint(experiment, scheme string, servers int, fn func(cl *csar.Cluster) (int64, error)) (float64, error) {
	cl, err := c.newCluster(servers)
	if err != nil {
		return 0, err
	}
	defer cl.Close()
	start := time.Now()
	bytes, err := fn(cl)
	if err != nil {
		return 0, err
	}
	sim := cl.SimElapsed(start)
	if sim <= 0 {
		return 0, fmt.Errorf("bench: no simulated time elapsed")
	}
	mbps := float64(bytes) / 1e6 / sim.Seconds()
	if c.Results != nil && experiment != "" {
		c.Results.Points = append(c.Results.Points, Result{
			Experiment:    experiment,
			Scheme:        scheme,
			Servers:       servers,
			MBps:          mbps,
			OpLatenciesUS: opLatencies(cl.ClientStats()),
		})
	}
	return mbps, nil
}

// Experiment is one regenerable figure or table.
type Experiment struct {
	Name  string
	Title string
	Run   func(cfg Config, w io.Writer) error
}

var experiments = map[string]Experiment{}

func register(e Experiment) { experiments[e.Name] = e }

// Experiments lists all registered experiments sorted by name.
func Experiments() []Experiment {
	out := make([]Experiment, 0, len(experiments))
	for _, e := range experiments {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Run executes the named experiment ("all" runs every one in order).
func Run(name string, cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	if name == "all" {
		for _, e := range Experiments() {
			if err := e.Run(cfg, w); err != nil {
				return fmt.Errorf("%s: %w", e.Name, err)
			}
		}
		return nil
	}
	e, ok := experiments[name]
	if !ok {
		return fmt.Errorf("bench: unknown experiment %q (try -list)", name)
	}
	return e.Run(cfg, w)
}

// env builds a workload environment on a cluster.
func env(cl *csar.Cluster, scheme csar.Scheme, su int64) workload.Env {
	return workload.Env{Cluster: cl, Scheme: scheme, StripeUnit: su}
}
