package bench

import (
	"fmt"
	"io"
	"time"

	"csar"
	"csar/internal/workload"
)

func init() {
	register(Experiment{"fig1", "Figure 1: time to fill a disk to capacity", fig1})
	register(Experiment{"fig3", "Figure 3: parity-lock overhead under contention", fig3})
	register(Experiment{"fig4a", "Figure 4a: large (full-stripe) write bandwidth", fig4a})
	register(Experiment{"fig4b", "Figure 4b: small (one-block) write bandwidth", fig4b})
	register(Experiment{"writebuf", "Section 5.2: server write-buffering ablation", writeBuf})
}

// fig1 reproduces the motivation figure: disk capacity has grown much
// faster than disk bandwidth, so the time to fill a disk to capacity grew
// roughly tenfold over fifteen years. The data points are representative
// commodity drives from Dahlin's technology-trend tables, which the paper
// cites as its source.
func fig1(cfg Config, w io.Writer) error {
	drives := []struct {
		year     int
		capacity float64 // MB
		bw       float64 // MB/s
	}{
		{1983, 30, 0.6},
		{1987, 344, 1.3},
		{1990, 672, 2.0},
		{1993, 1370, 3.5},
		{1996, 4300, 7.0},
		{1999, 18200, 15.0},
		{2002, 73400, 35.0},
	}
	t := &Table{
		Title:  "Figure 1: time to fill a disk to capacity over the years",
		Header: []string{"year", "capacity(MB)", "bandwidth(MB/s)", "fill-time(min)"},
	}
	first, last := 0.0, 0.0
	for _, d := range drives {
		minutes := d.capacity / d.bw / 60
		if first == 0 {
			first = minutes
		}
		last = minutes
		t.AddRow(fmt.Sprintf("%d", d.year), fmt.Sprintf("%.0f", d.capacity),
			fmt.Sprintf("%.1f", d.bw), fmt.Sprintf("%.1f", minutes))
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"fill time grew %.0fx across the period (the paper reports ~10x over 15 years)", last/first))
	_, err := t.WriteTo(w)
	return err
}

// fig3 reproduces the locking-overhead microbenchmark: five clients write
// distinct blocks of one RAID5 stripe (six servers, so a stripe has five
// data blocks). R5-NOLOCK transfers the same bytes without the lock; the
// paper measures locking at about 20% at five clients.
func fig3(cfg Config, w io.Writer) error {
	const servers = 6
	const clients = 5
	const su = 64 << 10
	rounds := int(cfg.scaled(4096, 64))

	t := &Table{
		Title:  fmt.Sprintf("Figure 3: %d clients writing distinct blocks of one stripe (MB/s)", clients),
		Header: []string{"scheme", "MB/s"},
	}
	var r5, nolock float64
	for _, scheme := range []csar.Scheme{csar.Raid0, csar.Raid5NoLock, csar.Raid5} {
		bw, err := cfg.runTimedPoint("fig3", scheme.String(), servers, func(cl *csar.Cluster) (int64, error) {
			return workload.Contention(env(cl, scheme, su), "f", clients, rounds)
		})
		if err != nil {
			return err
		}
		label := scheme.String()
		if scheme == csar.Raid5NoLock {
			label = "r5-no-lock"
			nolock = bw
		}
		if scheme == csar.Raid5 {
			r5 = bw
		}
		t.AddRow(label, mb(bw))
	}
	if nolock > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"locking overhead: %.0f%% (paper: ~20%%)", (1-r5/nolock)*100))
	}
	_, err := t.WriteTo(w)
	return err
}

// sweepServers runs one single-client workload across server counts and
// schemes and renders the Figure 4 style table (rows = #iod, columns =
// schemes).
func sweepServers(cfg Config, w io.Writer, name, title string, schemes []csar.Scheme,
	run func(e workload.Env) (int64, error)) error {
	t := &Table{Title: title, Header: []string{"#iod"}}
	for _, s := range schemes {
		t.Header = append(t.Header, s.String())
	}
	for n := 1; n <= cfg.MaxServers-1; n++ {
		row := []string{fmt.Sprintf("%d", n)}
		for _, scheme := range schemes {
			minServers := 1
			if scheme == csar.Raid1 {
				minServers = 2
			}
			if scheme.UsesParity() {
				minServers = 3
			}
			if scheme == csar.ReedSolomon {
				minServers = 4 // RS(k, 2) needs at least 2 data units
			}
			if n < minServers {
				row = append(row, "-")
				continue
			}
			bw, err := cfg.runTimedPoint(name, scheme.String(), n, func(cl *csar.Cluster) (int64, error) {
				return run(env(cl, scheme, 64<<10))
			})
			if err != nil {
				return err
			}
			row = append(row, mb(bw))
		}
		t.AddRow(row...)
	}
	_, err := t.WriteTo(w)
	return err
}

// fig4a: a single client writes whole stripes — RAID1 flattens early (its
// client link carries 2x the bytes), RAID5 and Hybrid track RAID0 minus
// the parity fraction, and RAID5-npc isolates the parity-computation cost.
func fig4a(cfg Config, w io.Writer) error {
	total := cfg.scaled(1<<30, 8<<20) // 1 GB of paper-scale traffic
	schemes := []csar.Scheme{csar.Raid0, csar.Raid1, csar.Raid5, csar.Hybrid, csar.Raid5NPC, csar.ReedSolomon}
	return sweepServers(cfg, w, "fig4a",
		"Figure 4a: full-stripe writes, single client (MB/s)",
		schemes,
		func(e workload.Env) (int64, error) {
			chunkStripes := int((4 << 20) / e.StripeSize())
			if chunkStripes < 1 {
				chunkStripes = 1
			}
			return workload.FullStripeWrite(e, "f", total, chunkStripes)
		})
}

// fig4b: one-block writes into a just-created file — RAID5 pays the
// read-modify-write (from cache here), RAID1 and Hybrid just write twice.
func fig4b(cfg Config, w io.Writer) error {
	total := cfg.scaled(256<<20, 4<<20)
	schemes := []csar.Scheme{csar.Raid0, csar.Raid1, csar.Raid5, csar.Hybrid, csar.ReedSolomon}
	return sweepServers(cfg, w, "fig4b",
		"Figure 4b: one-block writes, single client (MB/s)",
		schemes,
		func(e workload.Env) (int64, error) {
			return workload.SmallBlockWrite(e, "f", total)
		})
}

// writeBuf reproduces the Section 5.2 problem and fix: unaligned writes to
// a pre-existing, uncached file. Without server write buffering, the data
// is written in receive-chunk pieces whose boundary pages force
// read-before-write from disk.
func writeBuf(cfg Config, w io.Writer) error {
	const servers = 4
	total := cfg.scaled(256<<20, 8<<20)
	t := &Table{
		Title:  "Section 5.2: overwrite of an uncached file, with/without write buffering (MB/s)",
		Header: []string{"write-buffering", "raid0 MB/s"},
	}
	for _, buffering := range []bool{false, true} {
		buffering := buffering
		cl, err := csar.NewCluster(csar.ClusterOptions{
			Servers:        servers,
			Model:          cfg.model(),
			WriteBuffering: &buffering,
		})
		if err != nil {
			return err
		}
		e := env(cl, csar.Raid0, 64<<10)
		// Create the file, flush, and evict it: the overwrite then hits
		// uncached pages.
		if _, err := workload.FullStripeWrite(e, "f", total, 16); err != nil {
			cl.Close()
			return err
		}
		cl.DropCaches()
		start := time.Now()
		n, err := unalignedOverwrite(cl, "f", total)
		if err != nil {
			cl.Close()
			return err
		}
		sim := cl.SimElapsed(start)
		cl.Close()
		label := "off"
		if buffering {
			label = "on"
		}
		t.AddRow(label, mb(float64(n)/1e6/sim.Seconds()))
	}
	t.Notes = append(t.Notes,
		"the paper observed degraded overwrite bandwidth until the write-buffer fix; 'on' is CSAR's default")
	_, err := t.WriteTo(w)
	return err
}

// unalignedOverwrite rewrites an existing file in 1 MiB chunks starting at
// a deliberately page-unaligned offset.
func unalignedOverwrite(cl *csar.Cluster, name string, total int64) (int64, error) {
	c := cl.NewClient()
	f, err := c.Open(name)
	if err != nil {
		return 0, err
	}
	const chunk = 1 << 20
	buf := make([]byte, chunk)
	var n int64
	for off := int64(13); off+chunk <= total; off += chunk {
		if _, err := f.WriteAt(buf, off); err != nil {
			return 0, err
		}
		n += chunk
	}
	if err := f.Sync(); err != nil {
		return 0, err
	}
	return n, nil
}
