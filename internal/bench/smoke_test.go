package bench

import (
	"encoding/json"
	"io"
	"os"
	"sort"
	"testing"
	"time"
)

// TestBenchSmokeSchema is the bench-smoke CI gate: it runs the fig3
// experiment at a tiny scale through the same path csar-bench -json uses,
// and validates that the emitted document still has the schema-v2 shape of
// the committed BENCH_* baselines — same top-level keys, same per-point
// keys, same percentile fields. A schema drift would silently break every
// downstream comparison of BENCH_N.json files.
func TestBenchSmokeSchema(t *testing.T) {
	cfg := Config{
		Scale:      10 * time.Millisecond,
		SizeDiv:    2048,
		MaxServers: 6,
		Results:    &Results{SchemaVersion: ResultsSchemaVersion},
	}
	if err := Run("fig3", cfg, io.Discard); err != nil {
		t.Fatal(err)
	}
	buf, err := json.Marshal(cfg.Results)
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]json.RawMessage
	if err := json.Unmarshal(buf, &got); err != nil {
		t.Fatal(err)
	}

	refBuf, err := os.ReadFile("../../BENCH_6.json")
	if err != nil {
		t.Fatalf("committed baseline missing: %v", err)
	}
	var ref map[string]json.RawMessage
	if err := json.Unmarshal(refBuf, &ref); err != nil {
		t.Fatalf("baseline BENCH_6.json corrupt: %v", err)
	}

	if gk, rk := keysOf(t, got), keysOf(t, ref); !equalKeys(gk, rk) {
		t.Fatalf("top-level keys drifted: emitted %v, baseline %v", gk, rk)
	}
	var gotVer, refVer int
	json.Unmarshal(got["schema_version"], &gotVer) //nolint:errcheck
	json.Unmarshal(ref["schema_version"], &refVer) //nolint:errcheck
	if gotVer != refVer || gotVer != ResultsSchemaVersion {
		t.Fatalf("schema_version = %d, baseline %d, code %d", gotVer, refVer, ResultsSchemaVersion)
	}

	var gotPoints, refPoints []map[string]json.RawMessage
	json.Unmarshal(got["results"], &gotPoints) //nolint:errcheck
	json.Unmarshal(ref["results"], &refPoints) //nolint:errcheck
	if len(gotPoints) == 0 || len(refPoints) == 0 {
		t.Fatalf("no result points: emitted %d, baseline %d", len(gotPoints), len(refPoints))
	}
	if gk, rk := pointKeys(t, gotPoints[0]), pointKeys(t, refPoints[0]); !equalKeys(gk, rk) {
		t.Fatalf("result-point keys drifted: emitted %v, baseline %v", gk, rk)
	}

	// Every latency summary must carry the full percentile set.
	var lats map[string]map[string]json.RawMessage
	if err := json.Unmarshal(gotPoints[0]["op_latencies_us"], &lats); err != nil {
		t.Fatalf("op_latencies_us: %v", err)
	}
	want := []string{"count", "max", "p50", "p95", "p99"}
	for op, sum := range lats {
		var ks []string
		for k := range sum {
			ks = append(ks, k)
		}
		sort.Strings(ks)
		if !equalKeys(ks, want) {
			t.Fatalf("latency summary %q has keys %v, want %v", op, ks, want)
		}
	}
}

func keysOf(t *testing.T, m map[string]json.RawMessage) []string {
	t.Helper()
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func pointKeys(t *testing.T, p map[string]json.RawMessage) []string {
	return keysOf(t, p)
}

func equalKeys(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
