package bench

import (
	"fmt"
	"io"
	"time"

	"csar"
	"csar/internal/workload"
)

func init() {
	register(Experiment{"fig5", "Figure 5: ROMIO perf read/write bandwidth", fig5})
	register(Experiment{"fig6", "Figure 6: BTIO Class B write/overwrite", fig6})
	register(Experiment{"fig7", "Figure 7: BTIO Class C write/overwrite", fig7})
	register(Experiment{"fig8", "Figure 8: application output time (normalized)", fig8})
}

var appSchemes = []csar.Scheme{csar.Raid0, csar.Raid1, csar.Raid5, csar.Hybrid}

// fig5 runs ROMIO's perf: every client writes 4 MB at rank*4MB, the file
// is flushed, caches are dropped, and the buffers are read back. Reads
// never touch redundancy, so all schemes should coincide in the read
// table; writes favour the parity schemes (large aligned-ish accesses).
func fig5(cfg Config, w io.Writer) error {
	servers := cfg.MaxServers
	buf := int64(4 << 20)
	clientCounts := []int{1, 2, 4, 8}

	writeT := &Table{Title: "Figure 5b: perf write bandwidth after flush (MB/s)", Header: []string{"clients"}}
	readT := &Table{Title: "Figure 5a: perf read bandwidth (MB/s)", Header: []string{"clients"}}
	for _, s := range appSchemes {
		writeT.Header = append(writeT.Header, s.String())
		readT.Header = append(readT.Header, s.String())
	}
	for _, nc := range clientCounts {
		wrow := []string{fmt.Sprintf("%d", nc)}
		rrow := []string{fmt.Sprintf("%d", nc)}
		for _, scheme := range appSchemes {
			cl, err := cfg.newCluster(servers)
			if err != nil {
				return err
			}
			e := env(cl, scheme, 64<<10)

			start := time.Now()
			wb, err := workload.PerfWrite(e, "perf", nc, buf)
			if err != nil {
				cl.Close()
				return err
			}
			wrow = append(wrow, mb(float64(wb)/1e6/cl.SimElapsed(start).Seconds()))

			cl.DropCaches() // post-flush read comes from disk
			start = time.Now()
			rb, err := workload.PerfRead(e, "perf", nc, buf)
			if err != nil {
				cl.Close()
				return err
			}
			rrow = append(rrow, mb(float64(rb)/1e6/cl.SimElapsed(start).Seconds()))
			cl.Close()
		}
		writeT.AddRow(wrow...)
		readT.AddRow(rrow...)
	}
	if _, err := readT.WriteTo(w); err != nil {
		return err
	}
	_, err := writeT.WriteTo(w)
	return err
}

// btioFigure runs the BTIO experiment for one class: for each process
// count and scheme, measure the initial write into a new file, then drop
// the server caches and measure the overwrite of the now-uncached file —
// the case where RAID5's read-modify-write goes to disk.
func btioFigure(cfg Config, w io.Writer, fig string, class workload.BTIOClass) error {
	servers := cfg.MaxServers
	ranks := []int{4, 9, 16, 25}
	scaled := class.Scaled(cfg.SizeDiv)

	writeT := &Table{
		Title: fmt.Sprintf("Figure %sa: BTIO Class %s initial write (MB/s, %d steps of %d MB)",
			fig, class.Name, scaled.Steps, scaled.Bytes/int64(scaled.Steps)>>20),
		Header: []string{"procs"},
	}
	overT := &Table{
		Title:  fmt.Sprintf("Figure %sb: BTIO Class %s overwrite, uncached (MB/s)", fig, class.Name),
		Header: []string{"procs"},
	}
	for _, s := range appSchemes {
		writeT.Header = append(writeT.Header, s.String())
		overT.Header = append(overT.Header, s.String())
	}

	for _, np := range ranks {
		wrow := []string{fmt.Sprintf("%d", np)}
		orow := []string{fmt.Sprintf("%d", np)}
		for _, scheme := range appSchemes {
			cl, err := cfg.newCluster(servers)
			if err != nil {
				return err
			}
			e := env(cl, scheme, 64<<10)

			start := time.Now()
			wb, err := workload.BTIO(e, "btio", np, scaled)
			if err != nil {
				cl.Close()
				return err
			}
			wrow = append(wrow, mb(float64(wb)/1e6/cl.SimElapsed(start).Seconds()))

			cl.DropCaches()
			start = time.Now()
			ob, err := workload.BTIO(e, "btio", np, scaled)
			if err != nil {
				cl.Close()
				return err
			}
			orow = append(orow, mb(float64(ob)/1e6/cl.SimElapsed(start).Seconds()))
			cl.Close()
		}
		writeT.AddRow(wrow...)
		overT.AddRow(orow...)
	}
	if _, err := writeT.WriteTo(w); err != nil {
		return err
	}
	_, err := overT.WriteTo(w)
	return err
}

func fig6(cfg Config, w io.Writer) error {
	return btioFigure(cfg, w, "6", workload.BTIOClassB)
}

func fig7(cfg Config, w io.Writer) error {
	return btioFigure(cfg, w, "7", workload.BTIOClassC)
}

// fig8 measures total output time for the four applications under each
// scheme, normalized to RAID0 (the paper's Figure 8). Lower is better;
// the paper's claim is that Hybrid is comparable to or better than the
// best of RAID1 and RAID5 for every application.
func fig8(cfg Config, w io.Writer) error {
	servers := cfg.MaxServers
	const ranks = 8

	type app struct {
		name string
		run  func(e workload.Env) (int64, error)
	}
	apps := []app{
		{"btio-b", func(e workload.Env) (int64, error) {
			return workload.BTIO(e, "f", ranks, workload.BTIOClassB.Scaled(cfg.SizeDiv))
		}},
		{"flash-io", func(e workload.Env) (int64, error) {
			return workload.FlashIO(e, "f", ranks, cfg.scaled(128<<20, 4<<20))
		}},
		{"cactus", func(e workload.Env) (int64, error) {
			return workload.Cactus(e, "f", ranks, cfg.scaled(400<<20, 4<<20))
		}},
		{"hartree-fock", func(e workload.Env) (int64, error) {
			// The paper's HF run goes through the PVFS kernel module,
			// whose per-request cost (kernel crossing plus the pvfsd
			// userspace bounce) dwarfs the I/O itself and levels the four
			// schemes to within a few percent (Section 6.6).
			return workload.HartreeFock(e, "f", cfg.scaled(149<<20, 2<<20), 10*time.Millisecond)
		}},
	}

	t := &Table{
		Title:  "Figure 8: application output time normalized to RAID0 (lower is better)",
		Header: []string{"application"},
	}
	for _, s := range appSchemes {
		t.Header = append(t.Header, s.String())
	}
	for _, a := range apps {
		row := []string{a.name}
		var base float64
		for _, scheme := range appSchemes {
			cl, err := cfg.newCluster(servers)
			if err != nil {
				return err
			}
			start := time.Now()
			if _, err := a.run(env(cl, scheme, 64<<10)); err != nil {
				cl.Close()
				return fmt.Errorf("%s/%v: %w", a.name, scheme, err)
			}
			sim := cl.SimElapsed(start).Seconds()
			cl.Close()
			if scheme == csar.Raid0 {
				base = sim
			}
			row = append(row, ratio(sim/base))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper: Hybrid comparable to or better than the best of RAID1/RAID5 on every application")
	_, err := t.WriteTo(w)
	return err
}
