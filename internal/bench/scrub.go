package bench

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"csar"
)

func init() {
	register(Experiment{"scrub", "Scrub interference: foreground write bandwidth vs scrub rate limit", scrubBench})
}

const debugScrubBench = false

// scrubWriters is how many concurrent foreground writers each data point
// runs, each appending to its own file and syncing every stripe. Together
// their per-sync elevator seeks keep the disk arms — the one resource the
// scrubber's checksum sweeps also use — near saturation, so the scrub's
// share of them shows up as foreground slowdown. A single writer is
// latency-bound (client CPU, NIC, RPC round trips) and a sequential
// checksum sweep fits into its idle arm time almost for free.
const scrubWriters = 4

// scrubBench measures how much foreground write bandwidth the online
// integrity scrubber steals at several rate-limit settings. Each row builds
// a fresh Hybrid cluster, prefills one file per writer (so syncs cannot
// coalesce across writers), then has the writers overwrite their files with
// full-stripe writes — syncing every stripe, like durability-conscious
// applications — while a scrubber loops over all the files at the given
// limit, the way the csar-mgr background loop does. Foreground bandwidth
// should decline monotonically — and boundedly — as the scrub is allowed
// more I/O.
func scrubBench(cfg Config, w io.Writer) error {
	const (
		servers = 6
		su      = int64(64 << 10)
	)
	// Size the data set so each server's share of data plus parity
	// overflows its page cache (1 GB / SizeDiv): a real scrub sweeps mostly
	// cold data, and only cache-missing scrub reads contend with foreground
	// I/O for the disk arm. Per server that share is about total/5, the
	// cache is paperCacheBytes/SizeDiv, so 8 GB paper-scale gives a 1.6x
	// overshoot.
	total := cfg.scaled(8<<30, 8<<20)
	// Stripe-align the per-writer files.
	stripe := su * int64(servers-1)
	region := total / scrubWriters / stripe * stripe

	t := &Table{
		Title:  "Scrub interference: Hybrid foreground writes vs scrub rate",
		Header: []string{"scrub rate", "fg write MB/s", "scrub MB/s"},
	}
	rates := []struct {
		label string
		rate  float64
		on    bool
	}{
		{"off", 0, false},
		{"4 MB/s", 4e6, true},
		{"16 MB/s", 16e6, true},
		{"unlimited", 0, true},
	}
	for _, r := range rates {
		fg, sc, err := scrubPoint(cfg, servers, su, region, r.rate, r.on)
		if err != nil {
			return err
		}
		row := []string{r.label, mb(fg), "-"}
		if r.on {
			row[2] = mb(sc)
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d writers, one file each, sync every stripe; the scrub checksums server-locally, so it competes for disk arms, not the network", scrubWriters),
		"expectation: fg bandwidth declines monotonically with the scrub limit and bottoms out at the unlimited row",
		"the signal is a few percent, so run at -scale 2s or larger: below that, wall-clock sleep overshoot on the thousands of modeled waits swamps it")
	_, err := t.WriteTo(w)
	return err
}

// scrubPoint runs one data point: aggregate foreground MB/s and scrub MB/s
// at the given scrub rate limit (scrubOn false measures the baseline with
// no scrubber at all). Each of the scrubWriters files is region bytes.
func scrubPoint(cfg Config, servers int, su, region int64, rate float64, scrubOn bool) (fg, sc float64, err error) {
	cl, err := cfg.newCluster(servers)
	if err != nil {
		return 0, 0, err
	}
	defer cl.Close()

	// Prefill: the scrubber needs populated files from pass one.
	buf := make([]byte, su*int64(servers-1)) // one full stripe per write
	for i := range buf {
		buf[i] = byte(i)
	}
	setup := cl.NewClient()
	for wi := 0; wi < scrubWriters; wi++ {
		f, err := setup.Create(fmt.Sprintf("s%d", wi), csar.FileOptions{Scheme: csar.Hybrid, StripeUnit: su})
		if err != nil {
			return 0, 0, err
		}
		for off := int64(0); off < region; off += int64(len(buf)) {
			if _, err := f.WriteAt(buf, off); err != nil {
				return 0, 0, err
			}
		}
		if err := f.Sync(); err != nil {
			return 0, 0, err
		}
	}
	cl.DropCaches() // every row starts cache-cold, like a long-running system

	var (
		scrubber *csar.Client
		stop     = make(chan struct{})
		scrubWG  sync.WaitGroup
		scrubErr error
	)
	if scrubOn {
		scrubber = cl.NewClient()
		files := make([]*csar.File, scrubWriters)
		journals := make([]*csar.ScrubJournal, scrubWriters)
		for wi := range files {
			if files[wi], err = scrubber.Open(fmt.Sprintf("s%d", wi)); err != nil {
				return 0, 0, err
			}
			journals[wi] = csar.NewScrubJournal()
		}
		scrubWG.Add(1)
		go func() {
			defer scrubWG.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				wi := i % scrubWriters
				_, err := scrubber.Scrub(files[wi], csar.ScrubOptions{
					RateLimit: rate, Journal: journals[wi], Cancel: stop,
				})
				if err != nil && err != csar.ErrScrubCanceled {
					scrubErr = err
					return
				}
			}
		}()
	}

	// Concurrent writers, each on its own file, each syncing after every
	// stripe. Frequent syncs also keep the timing honest: the disk model
	// charges a dirty page's write-back to whichever request evicts it, so
	// an unsynced writer could otherwise push its write-back costs onto the
	// scrubber's reads and appear to speed up under scrubbing.
	start := time.Now()
	var fgBytes atomic.Int64
	var fgWG sync.WaitGroup
	fgErrs := make([]error, scrubWriters)
	for wi := 0; wi < scrubWriters; wi++ {
		fgWG.Add(1)
		go func(wi int) {
			defer fgWG.Done()
			wcl := cl.NewClient()
			wf, err := wcl.Open(fmt.Sprintf("s%d", wi))
			if err != nil {
				fgErrs[wi] = err
				return
			}
			for pass := 0; pass < 2; pass++ {
				for off := int64(0); off < region; off += int64(len(buf)) {
					n, err := wf.WriteAt(buf, off)
					if err == nil {
						err = wf.Sync()
					}
					if err != nil {
						fgErrs[wi] = err
						return
					}
					fgBytes.Add(int64(n))
				}
			}
		}(wi)
	}
	fgWG.Wait()
	sim := cl.SimElapsed(start).Seconds()
	var scrubBytes int64
	if scrubOn {
		scrubBytes = scrubber.Metrics().ScrubBytes // before stop: the window's bytes, not the final pass's
	}
	if debugScrubBench {
		st := cl.ServerDiskStats(0)
		fmt.Printf("DBG rate=%v on=%v sim=%.2fs stats0=%+v reqs0=%d\n", rate, scrubOn, sim, st, cl.ServerRequests(0))
	}
	close(stop)
	scrubWG.Wait()
	for _, werr := range fgErrs {
		if werr != nil {
			return 0, 0, werr
		}
	}
	if scrubErr != nil {
		return 0, 0, scrubErr
	}
	if sim <= 0 {
		return 0, 0, fmt.Errorf("bench: no simulated time elapsed")
	}
	fg = float64(fgBytes.Load()) / 1e6 / sim
	sc = float64(scrubBytes) / 1e6 / sim
	return fg, sc, nil
}
