package bench

import (
	"fmt"
	"io"

	"csar"
	"csar/internal/workload"
)

func init() {
	register(Experiment{"ablate-su", "Ablation: stripe-unit size vs Hybrid storage and bandwidth", ablateStripeUnit})
	register(Experiment{"ablate-compact", "Ablation: Section 6.7 overflow compaction", ablateCompact})
	register(Experiment{"ablate-lock", "Ablation: parity-lock overhead vs number of contending clients", ablateLock})
}

// ablateStripeUnit quantifies the design trade-off Section 6.7 discusses:
// larger stripe units mean fewer full-stripe writes and more
// (unit-granular) overflow fragmentation under the Hybrid scheme. It runs
// the FLASH-like small-write workload at several stripe units and reports
// Hybrid's storage overhead (vs RAID1's fixed 2x) and its modeled write
// bandwidth.
func ablateStripeUnit(cfg Config, w io.Writer) error {
	const servers = 8
	total := cfg.scaled(45<<20, 2<<20)

	t := &Table{
		Title:  "Ablation: Hybrid vs stripe unit, FLASH-like small writes",
		Header: []string{"stripe-unit", "hybrid storage (xRAID0)", "raid1 storage (xRAID0)", "hybrid MB/s"},
	}
	for _, su := range []int64{8 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10} {
		ratios := map[csar.Scheme]float64{}
		for _, scheme := range []csar.Scheme{csar.Raid0, csar.Raid1, csar.Hybrid} {
			cl, err := cfg.newUntimedCluster(servers)
			if err != nil {
				return err
			}
			n, err := workload.FlashIO(workload.Env{Cluster: cl, Scheme: scheme, StripeUnit: su}, "f", 4, total)
			if err != nil {
				cl.Close()
				return err
			}
			_ = n
			ratios[scheme] = float64(cl.TotalStorage())
			cl.Close()
		}
		bw, err := cfg.runTimed(servers, func(cl *csar.Cluster) (int64, error) {
			return workload.FlashIO(workload.Env{Cluster: cl, Scheme: csar.Hybrid, StripeUnit: su}, "f", 4, total)
		})
		if err != nil {
			return err
		}
		t.AddRow(fmt.Sprintf("%dK", su>>10),
			ratio(ratios[csar.Hybrid]/ratios[csar.Raid0]),
			ratio(ratios[csar.Raid1]/ratios[csar.Raid0]),
			mb(bw))
	}
	t.Notes = append(t.Notes,
		"paper (Table 2): smaller stripe units cut Hybrid's overflow fragmentation below RAID1's 2x")
	_, err := t.WriteTo(w)
	return err
}

// ablateCompact measures the Section 6.7 extension: storage before and
// after compacting a Hybrid file built by small writes.
func ablateCompact(cfg Config, w io.Writer) error {
	const servers = 6
	cl, err := cfg.newUntimedCluster(servers)
	if err != nil {
		return err
	}
	defer cl.Close()
	client := cl.NewClient()
	f, err := client.Create("c", csar.FileOptions{Scheme: csar.Hybrid, StripeUnit: 16 << 10})
	if err != nil {
		return err
	}
	total := cfg.scaled(64<<20, 2<<20)
	buf := make([]byte, 10_000) // sub-unit writes: everything lands in overflow
	for off := int64(0); off < total; off += int64(len(buf)) {
		if _, err := f.WriteAt(buf, off); err != nil {
			return err
		}
	}
	before, _, err := f.StorageBytes()
	if err != nil {
		return err
	}
	if err := f.Compact(); err != nil {
		return err
	}
	after, _, err := f.StorageBytes()
	if err != nil {
		return err
	}
	t := &Table{
		Title:  "Ablation: overflow compaction (Section 6.7 extension)",
		Header: []string{"phase", "stored (xdata)"},
	}
	t.AddRow("after small writes", ratio(float64(before)/float64(total)))
	t.AddRow("after Compact", ratio(float64(after)/float64(total)))
	t.Notes = append(t.Notes,
		fmt.Sprintf("RAID5 long-term ratio for %d servers is %.2f; the paper: \"the long-term storage of the Hybrid scheme would be the same as the RAID5 scheme\"",
			servers, float64(servers)/float64(servers-1)))
	_, err = t.WriteTo(w)
	return err
}

// ablateLock extends Figure 3 into a sweep: locking overhead as the number
// of clients contending for one stripe grows.
func ablateLock(cfg Config, w io.Writer) error {
	const servers = 6 // 5 data blocks per stripe
	rounds := int(cfg.scaled(2048, 32))
	t := &Table{
		Title:  "Ablation: parity-lock cost vs contending clients (one shared stripe)",
		Header: []string{"clients", "raid5 MB/s", "no-lock MB/s", "overhead"},
	}
	for _, clients := range []int{1, 2, 3, 5} {
		var r5, nolock float64
		for _, scheme := range []csar.Scheme{csar.Raid5, csar.Raid5NoLock} {
			bw, err := cfg.runTimed(servers, func(cl *csar.Cluster) (int64, error) {
				return workload.Contention(env(cl, scheme, 64<<10), "f", clients, rounds)
			})
			if err != nil {
				return err
			}
			if scheme == csar.Raid5 {
				r5 = bw
			} else {
				nolock = bw
			}
		}
		t.AddRow(fmt.Sprintf("%d", clients), mb(r5), mb(nolock),
			fmt.Sprintf("%.0f%%", (1-r5/nolock)*100))
	}
	t.Notes = append(t.Notes,
		"uncontended (1 client) the lock costs little; the serialized window grows with contention")
	_, err := t.WriteTo(w)
	return err
}
