// Package storage defines the I/O server's local storage abstraction and
// its two implementations: the modeled in-memory disk (internal/simdisk,
// used by in-process clusters and the performance experiments) and a real
// directory-backed store (this package's Dir) that gives the standalone
// csar-iod daemon durable files on the host file system — the same role
// the servers' local ext2 file systems play for PVFS iods in the paper.
package storage

// Backend is one server's local storage: a flat namespace of sparse files.
type Backend interface {
	// Open returns a handle to the named file, creating it empty if absent.
	Open(name string) File
	// Remove deletes the named file.
	Remove(name string)
	// FileNames returns all file names, sorted.
	FileNames() []string
	// TotalBytes sums logical file sizes (holes included).
	TotalBytes() int64
	// AllocatedBytes sums materialized bytes, du-style (holes excluded).
	AllocatedBytes() int64
	// SyncAll flushes everything to stable storage.
	SyncAll()
	// DropCaches evicts cached pages, forcing subsequent reads to storage.
	// Backends without a modeled cache may treat it as a no-op.
	DropCaches()
}

// File is a handle to one file on a Backend. Reads of holes and of offsets
// beyond the current size return zeros (CSAR treats sparse regions of its
// stores as zero-filled).
type File interface {
	Name() string
	ReadAt(p []byte, off int64) (int, error)
	WriteAt(p []byte, off int64) (int, error)
	Size() int64
	Allocated() int64
	Truncate(size int64)
	Sync()
}
