package storage_test

import (
	"bytes"
	"testing"

	"csar/internal/server"
	"csar/internal/storage"
	"csar/internal/wire"
)

func newDir(t *testing.T) *storage.Dir {
	t.Helper()
	d, err := storage.NewDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDirRoundTrip(t *testing.T) {
	d := newDir(t)
	f := d.Open("data")
	msg := []byte("persistent bytes")
	if _, err := f.WriteAt(msg, 100); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := f.ReadAt(got, 100); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q", got)
	}
	if f.Size() != int64(100+len(msg)) {
		t.Fatalf("size=%d", f.Size())
	}
	if f.Name() != "data" {
		t.Fatalf("name=%q", f.Name())
	}
}

func TestDirHolesReadZero(t *testing.T) {
	d := newDir(t)
	f := d.Open("sparse")
	f.WriteAt([]byte{7}, 1_000_000)
	got := make([]byte, 10)
	if _, err := f.ReadAt(got, 500); err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0 {
			t.Fatal("hole not zero")
		}
	}
	// Beyond EOF also zero-fills, like the modeled disk.
	if _, err := f.ReadAt(got, 2_000_000); err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0 {
			t.Fatal("EOF read not zero")
		}
	}
}

func TestDirSparseAllocation(t *testing.T) {
	d := newDir(t)
	f := d.Open("sparse")
	f.WriteAt([]byte{1}, 10<<20) // 10 MB hole
	f.Sync()
	if f.Size() <= 10<<20 {
		t.Fatalf("size=%d", f.Size())
	}
	if alloc := f.Allocated(); alloc >= 10<<20 {
		t.Fatalf("hole materialized: allocated=%d", alloc)
	}
}

func TestDirPersistsAcrossReopen(t *testing.T) {
	root := t.TempDir()
	d1, err := storage.NewDir(root)
	if err != nil {
		t.Fatal(err)
	}
	d1.Open("a").WriteAt([]byte("hello"), 0)
	d1.SyncAll()

	d2, err := storage.NewDir(root)
	if err != nil {
		t.Fatal(err)
	}
	names := d2.FileNames()
	if len(names) != 1 || names[0] != "a" {
		t.Fatalf("names=%v", names)
	}
	got := make([]byte, 5)
	d2.Open("a").ReadAt(got, 0)
	if string(got) != "hello" {
		t.Fatalf("got %q", got)
	}
}

func TestDirRemoveAndTruncate(t *testing.T) {
	d := newDir(t)
	f := d.Open("x")
	f.WriteAt(bytes.Repeat([]byte{1}, 100), 0)
	f.Truncate(10)
	if f.Size() != 10 {
		t.Fatalf("size=%d", f.Size())
	}
	d.Remove("x")
	if len(d.FileNames()) != 0 {
		t.Fatal("file survives remove")
	}
	if n := d.TotalBytes(); n != 0 {
		t.Fatalf("TotalBytes=%d", n)
	}
}

// TestServerOnDirBackend runs the full I/O daemon against the durable
// backend: the same tests the simdisk backend passes.
func TestServerOnDirBackend(t *testing.T) {
	d := newDir(t)
	opts := server.DefaultOptions()
	opts.PageSize = 64
	s := server.New(0, d, opts)
	r := wire.FileRef{ID: 1, Servers: 3, StripeUnit: 128, Scheme: wire.Hybrid}

	payload := bytes.Repeat([]byte{0xCD}, 128)
	if _, err := s.Handle(&wire.WriteData{File: r, Spans: []wire.Span{{Off: 0, Len: 128}}, Data: payload}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Handle(&wire.WriteOverflow{
		File: r, Extents: []wire.Span{{Off: 5, Len: 20}}, Data: bytes.Repeat([]byte{0xEE}, 20),
	}); err != nil {
		t.Fatal(err)
	}
	resp, err := s.Handle(&wire.Read{File: r, Spans: []wire.Span{{Off: 0, Len: 128}}})
	if err != nil {
		t.Fatal(err)
	}
	got := resp.(*wire.ReadResp).Data
	for i := 0; i < 128; i++ {
		want := byte(0xCD)
		if i >= 5 && i < 25 {
			want = 0xEE
		}
		if got[i] != want {
			t.Fatalf("byte %d = %x want %x", i, got[i], want)
		}
	}
	if _, err := s.Handle(&wire.Sync{File: r}); err != nil {
		t.Fatal(err)
	}
	st, err := s.Handle(&wire.StorageStat{FileID: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.(*wire.StorageStatResp).Total == 0 {
		t.Fatal("no storage accounted on dir backend")
	}
}
