package storage

import (
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"syscall"
)

// Dir is a Backend storing each file as a regular file inside a host
// directory. It is what the standalone csar-iod daemon uses for durable
// storage; holes are real sparse-file holes, so AllocatedBytes matches du.
type Dir struct {
	root string

	mu    sync.Mutex
	files map[string]*dirFile
}

// NewDir creates (if needed) and opens a directory-backed store.
func NewDir(root string) (*Dir, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, err
	}
	d := &Dir{root: root, files: make(map[string]*dirFile)}
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if !e.IsDir() {
			d.files[e.Name()] = &dirFile{dir: d, name: e.Name()}
		}
	}
	return d, nil
}

// Root returns the backing directory.
func (d *Dir) Root() string { return d.root }

func (d *Dir) path(name string) string { return filepath.Join(d.root, name) }

// Open returns a handle to the named file, creating it if absent.
func (d *Dir) Open(name string) File {
	d.mu.Lock()
	defer d.mu.Unlock()
	f := d.files[name]
	if f == nil {
		f = &dirFile{dir: d, name: name}
		d.files[name] = f
	}
	return f
}

// Remove deletes the named file.
func (d *Dir) Remove(name string) {
	d.mu.Lock()
	f := d.files[name]
	delete(d.files, name)
	d.mu.Unlock()
	if f != nil {
		f.close()
	}
	os.Remove(d.path(name)) //nolint:errcheck // absent is fine
}

// FileNames returns all file names, sorted.
func (d *Dir) FileNames() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	names := make([]string, 0, len(d.files))
	for n := range d.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TotalBytes sums logical sizes.
func (d *Dir) TotalBytes() int64 {
	var n int64
	for _, name := range d.FileNames() {
		n += d.Open(name).Size()
	}
	return n
}

// AllocatedBytes sums materialized bytes (block-granular, like du).
func (d *Dir) AllocatedBytes() int64 {
	var n int64
	for _, name := range d.FileNames() {
		n += d.Open(name).Allocated()
	}
	return n
}

// SyncAll fsyncs every open file.
func (d *Dir) SyncAll() {
	for _, name := range d.FileNames() {
		d.Open(name).Sync()
	}
}

// DropCaches is a no-op: the host kernel owns the page cache.
func (d *Dir) DropCaches() {}

type dirFile struct {
	dir  *Dir
	name string

	mu sync.Mutex
	fh *os.File
}

// handle lazily opens the backing file.
func (f *dirFile) handle() (*os.File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fh == nil {
		fh, err := os.OpenFile(f.dir.path(f.name), os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			return nil, err
		}
		f.fh = fh
	}
	return f.fh, nil
}

func (f *dirFile) close() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fh != nil {
		f.fh.Close() //nolint:errcheck
		f.fh = nil
	}
}

// Name returns the file's name within its store.
func (f *dirFile) Name() string { return f.name }

// ReadAt fills p, zero-filling bytes beyond EOF (matching the modeled
// disk's sparse semantics).
func (f *dirFile) ReadAt(p []byte, off int64) (int, error) {
	fh, err := f.handle()
	if err != nil {
		return 0, err
	}
	n, err := fh.ReadAt(p, off)
	if err == io.EOF || (err == nil && n < len(p)) {
		for i := n; i < len(p); i++ {
			p[i] = 0
		}
		return len(p), nil
	}
	if err != nil {
		return n, err
	}
	return n, nil
}

// WriteAt writes p at off, extending the file as needed.
func (f *dirFile) WriteAt(p []byte, off int64) (int, error) {
	fh, err := f.handle()
	if err != nil {
		return 0, err
	}
	return fh.WriteAt(p, off)
}

// Size returns the file's logical size.
func (f *dirFile) Size() int64 {
	fh, err := f.handle()
	if err != nil {
		return 0
	}
	st, err := fh.Stat()
	if err != nil {
		return 0
	}
	return st.Size()
}

// Allocated returns the file's materialized bytes (512-byte block units on
// Unix, matching du; falls back to Size where block counts are unknown).
func (f *dirFile) Allocated() int64 {
	fh, err := f.handle()
	if err != nil {
		return 0
	}
	st, err := fh.Stat()
	if err != nil {
		return 0
	}
	if sys, ok := st.Sys().(*syscall.Stat_t); ok {
		return sys.Blocks * 512
	}
	return st.Size()
}

// Truncate sets the file size.
func (f *dirFile) Truncate(size int64) {
	fh, err := f.handle()
	if err != nil {
		return
	}
	fh.Truncate(size) //nolint:errcheck
}

// Sync fsyncs the file.
func (f *dirFile) Sync() {
	fh, err := f.handle()
	if err != nil {
		return
	}
	fh.Sync() //nolint:errcheck
}
