package wire

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, m Msg) Msg {
	t.Helper()
	b := Marshal(m)
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatalf("unmarshal %T: %v", m, err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("round trip of %T:\n sent %+v\n got  %+v", m, m, got)
	}
	return got
}

func TestRoundTripAllKinds(t *testing.T) {
	ref := FileRef{ID: 42, Servers: 7, StripeUnit: 65536, Scheme: Hybrid}
	spans := []Span{{0, 100}, {4096, 65536}}
	data := []byte("payload bytes")
	msgs := []Msg{
		&Error{Text: "boom", Code: CodeUnavailable},
		&OK{},
		&Ping{},
		&Read{File: ref, Spans: spans, Raw: true},
		&ReadResp{Data: data},
		&WriteData{File: ref, Spans: spans, Data: data, Raw: true},
		&WriteMirror{File: ref, Spans: spans, Data: data},
		&ReadMirror{File: ref, Spans: spans},
		&ReadParity{File: ref, Stripes: []int64{3, 9}, Lock: true, Owner: 77, LeaseMS: 10000},
		&UnlockParity{File: ref, Stripes: []int64{3, 9}, Owner: 77, Dirty: true},
		&RenewLease{File: ref, Stripes: []int64{3, 9}, Owner: 77, LeaseMS: 10000},
		&RenewLeaseResp{Renewed: 2},
		&ListIntents{File: ref},
		&ListIntentsResp{Intents: []Intent{{Stripe: 3, Owner: 77, Abandoned: true}}},
		&ResolveIntent{File: ref, Stripe: 3, Owner: 77, Data: data},
		&Health{},
		&HealthResp{Index: 3, Requests: 12345},
		&WriteParity{File: ref, Stripes: []int64{3}, Data: data, Unlock: true, Owner: 77},
		&WriteOverflow{File: ref, Extents: spans, Data: data, Mirror: true},
		&InvalidateOverflow{File: ref, Spans: spans, Mirror: true},
		&OverflowDump{File: ref, Mirror: true},
		&OverflowDumpResp{Extents: spans, Data: data},
		&Sync{File: ref},
		&DropCaches{},
		&StorageStat{FileID: 9},
		&StorageStatResp{Total: 500, ByStore: [5]int64{1, 2, 3, 4, 490}},
		&RemoveFile{File: ref},
		&CompactOverflow{File: ref, Mirror: true},
		&Create{Name: "f", Servers: 4, StripeUnit: 1024, Scheme: Raid5},
		&CreateResp{Ref: ref},
		&Open{Name: "f"},
		&OpenResp{Ref: ref, Size: 12345, Mig: FileRef{ID: 43, Servers: 7, StripeUnit: 65536, Scheme: ReedSolomon, Parity: 2}},
		&SetSize{ID: 42, Size: 777},
		&SetScheme{ID: 42, Scheme: ReedSolomon, Parity: 2},
		&SetSchemeResp{Old: ref, New: FileRef{ID: 43, Servers: 7, StripeUnit: 65536, Scheme: ReedSolomon, Parity: 2}, Size: 12345},
		&CommitScheme{ID: 42, NewID: 43},
		&AbortScheme{ID: 42, NewID: 43},
		&Remove{Name: "f"},
		&List{},
		&ListResp{Names: []string{"a", "b"}},
		&ServerList{},
		&ServerListResp{Addrs: []string{"127.0.0.1:7000"}},
		&ChecksumRange{File: ref, Store: StoreParity, Off: 4096, Len: 65536, Chunk: 4096},
		&ChecksumRangeResp{Sums: []uint32{0xdeadbeef, 1, 0}, Bytes: 65536},
		&MarkDirty{File: ref, Dead: 3, Epoch: 99, Units: []int64{3, 10}, Mirrors: []int64{2}, Stripes: []int64{1}, Overflow: true},
		&DirtyDump{File: ref, Dead: 3},
		&DirtyDumpResp{Epochs: []uint64{99, 100}, Units: []DirtyItem{{Val: 3, Gen: 1}, {Val: 10, Gen: 4}}, Mirrors: []DirtyItem{{Val: 2, Gen: 2}}, Stripes: []DirtyItem{{Val: 1, Gen: 3}}, Overflow: true, OverflowGen: 5},
		&ClearDirty{File: ref, Dead: 3, Units: []DirtyItem{{Val: 3, Gen: 1}}, Mirrors: []DirtyItem{{Val: 2, Gen: 2}}, Stripes: []DirtyItem{{Val: 1, Gen: 3}}, Overflow: true, OverflowGen: 5},
		&MetaReplicate{Epoch: 5, Seq: 31, Snap: true, Rec: []byte(`{"next_id":3}`)},
		&MetaReplicateResp{Epoch: 5, Seq: 31},
		&MetaStatus{},
		&MetaStatusResp{Index: 2, Epoch: 5, Seq: 31, Primary: true, Files: 4, WALBytes: 512},
		&Stats{},
		&StatsResp{
			Index:    3,
			Requests: 9999,
			Counters: []StatKV{{Name: "bytes_in", Value: 1 << 20}, {Name: "bytes_out", Value: 7}},
			Gauges:   []StatKV{{Name: "locks_held", Value: 2}},
			Hists:    []HistDump{{Name: "rpc_read", Count: 3, Sum: 4500, Max: 2000, Buckets: []int64{0, 1, 1, 1}}},
		},
	}
	seen := map[Kind]bool{}
	for _, m := range msgs {
		roundTrip(t, m)
		if seen[m.Kind()] {
			t.Fatalf("duplicate kind %d in test set", m.Kind())
		}
		seen[m.Kind()] = true
	}
	if len(seen) != len(registry) {
		t.Fatalf("test covers %d kinds, registry has %d", len(seen), len(registry))
	}
}

func TestRoundTripEmptySlices(t *testing.T) {
	// nil and empty slices must survive; decoders produce consistent values.
	m := &Read{File: FileRef{ID: 1, Servers: 3, StripeUnit: 8, Scheme: Raid0}}
	b := Marshal(m)
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	r := got.(*Read)
	if len(r.Spans) != 0 {
		t.Fatalf("spans = %v", r.Spans)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(nil); err == nil {
		t.Fatal("empty message accepted")
	}
	if _, err := Unmarshal([]byte{0xEE}); err == nil {
		t.Fatal("unknown kind accepted")
	}
	// Truncated body.
	b := Marshal(&Open{Name: "a-long-file-name"})
	if _, err := Unmarshal(b[:len(b)-3]); err == nil {
		t.Fatal("truncated message accepted")
	}
}

func TestUnmarshalRandomBytesNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		b := make([]byte, r.Intn(64))
		r.Read(b)
		Unmarshal(b) // must not panic regardless of outcome
	}
}

func TestUnmarshalHostileLengthPrefix(t *testing.T) {
	// A length prefix far larger than the buffer must error, not allocate.
	e := Encoder{}
	e.U8(uint8(KListResp))
	e.U32(0xFFFFFFFF)
	if _, err := Unmarshal(e.Buf); err == nil {
		t.Fatal("hostile length accepted")
	}
}

func TestSchemeString(t *testing.T) {
	for _, s := range []Scheme{Raid0, Raid1, Raid5, Hybrid, Raid5NoLock, Raid5NPC, ReedSolomon} {
		name := s.String()
		got, err := ParseScheme(name)
		if err != nil || got != s {
			t.Fatalf("ParseScheme(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseScheme("nope"); err == nil {
		t.Fatal("bad scheme name accepted")
	}
	if Scheme(200).String() == "" {
		t.Fatal("unknown scheme has empty String")
	}
}

func TestSchemepredicates(t *testing.T) {
	cases := []struct {
		s                     Scheme
		parity, mirror, locks bool
	}{
		{Raid0, false, false, false},
		{Raid1, false, true, false},
		{Raid5, true, false, true},
		{Hybrid, true, false, true},
		{Raid5NoLock, true, false, false},
		{Raid5NPC, true, false, true},
		{ReedSolomon, true, false, true},
	}
	if len(cases) != len(schemeNames) {
		t.Errorf("predicate table covers %d schemes, protocol has %d", len(cases), len(schemeNames))
	}
	names := SchemeNames()
	if len(names) != len(schemeNames) {
		t.Errorf("SchemeNames returned %d names, want %d", len(names), len(schemeNames))
	}
	for i, n := range names {
		if n == "" || n != Scheme(i).String() {
			t.Errorf("SchemeNames[%d] = %q, want %q", i, n, Scheme(i).String())
		}
	}
	for _, c := range cases {
		if c.s.UsesParity() != c.parity || c.s.UsesMirror() != c.mirror || c.s.UsesLocking() != c.locks {
			t.Errorf("%v predicates wrong", c.s)
		}
	}
}

func TestErrorCodeClassification(t *testing.T) {
	plain := &Error{Text: "bad args"}
	if errors.Is(plain, ErrUnavailable) {
		t.Fatal("generic error classified unavailable")
	}
	down := &Error{Text: "down", Code: CodeUnavailable}
	if !errors.Is(down, ErrUnavailable) {
		t.Fatal("CodeUnavailable error not classified unavailable")
	}
	// The classification survives a wire round trip (how it actually
	// reaches clients on a real transport).
	got := roundTrip(t, down)
	if !errors.Is(got.(*Error), ErrUnavailable) {
		t.Fatal("classification lost in round trip")
	}
	if ErrorCodeOf(fmt.Errorf("wrapped: %w", ErrUnavailable)) != CodeUnavailable {
		t.Fatal("ErrorCodeOf missed a wrapped ErrUnavailable")
	}
	if ErrorCodeOf(errors.New("app error")) != CodeGeneric {
		t.Fatal("ErrorCodeOf misclassified an app error")
	}
	for _, c := range []struct {
		code     uint8
		sentinel error
	}{
		{CodeLeaseExpired, ErrLeaseExpired},
		{CodeStripeTorn, ErrStripeTorn},
		{CodeNotPrimary, ErrNotPrimary},
		{CodeStaleEpoch, ErrStaleEpoch},
	} {
		e := &Error{Text: "x", Code: c.code}
		if !errors.Is(e, c.sentinel) {
			t.Fatalf("code %d error does not unwrap to its sentinel", c.code)
		}
		if errors.Is(e, ErrUnavailable) {
			t.Fatalf("code %d error classified unavailable", c.code)
		}
		if ErrorCodeOf(fmt.Errorf("wrapped: %w", c.sentinel)) != c.code {
			t.Fatalf("ErrorCodeOf missed a wrapped sentinel for code %d", c.code)
		}
		if got := roundTrip(t, e).(*Error); !errors.Is(got, c.sentinel) {
			t.Fatalf("code %d classification lost in round trip", c.code)
		}
	}
}

func TestEncoderDecoderPrimitives(t *testing.T) {
	f := func(a uint8, b uint16, c uint32, dd uint64, s string, raw []byte) bool {
		var e Encoder
		e.U8(a)
		e.U16(b)
		e.U32(c)
		e.U64(dd)
		e.Str(s)
		e.Bytes(raw)
		e.I64(-12345)
		d := Decoder{Buf: e.Buf}
		ok := d.U8() == a && d.U16() == b && d.U32() == c && d.U64() == dd &&
			d.Str() == s && bytes.Equal(d.BytesCopy(), raw) && d.I64() == -12345
		return ok && d.Err() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
