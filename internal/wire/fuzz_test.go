package wire

import (
	"bytes"
	"testing"
)

// fuzzSeeds holds at least one exemplar message per registered kind; the
// fuzz corpus is built from their encodings, and
// TestFuzzSeedsCoverAllKinds keeps the list honest as the protocol grows
// (a new message type without a seed fails the suite, not just the fuzzer's
// coverage).
func fuzzSeeds() []Msg {
	ref := FileRef{ID: 3, Servers: 5, StripeUnit: 4096, Scheme: Hybrid}
	// Reed-Solomon seeds: the RS scheme + parity-count FileRef field and
	// the multi-parity lock/intent traffic (same stripe locked on several
	// parity servers, per-server intent resolution).
	rsRef := FileRef{ID: 4, Servers: 6, StripeUnit: 4096, Scheme: ReedSolomon, Parity: 2}
	return []Msg{
		&Create{Name: "rs", Servers: 6, StripeUnit: 4096, Scheme: ReedSolomon, Parity: 2},
		&CreateResp{Ref: rsRef},
		&ReadParity{File: rsRef, Stripes: []int64{7, 13}, Lock: true, Owner: 91, LeaseMS: 5000},
		&WriteParity{File: rsRef, Stripes: []int64{7, 13}, Data: []byte{0xC3, 0x5A}, Unlock: true, Owner: 91},
		&UnlockParity{File: rsRef, Stripes: []int64{7}, Owner: 91, Dirty: true},
		&RenewLease{File: rsRef, Stripes: []int64{7, 13}, Owner: 91, LeaseMS: 5000},
		&ListIntents{File: rsRef},
		&ResolveIntent{File: rsRef, Stripe: 7, Owner: 91, Data: []byte{0x01, 0x02}},
		&MarkDirty{File: rsRef, Dead: 4, Epoch: 7, Stripes: []int64{7, 13}},
		&Error{Text: "boom"},
		&Error{Text: "down", Code: CodeUnavailable},
		&OK{},
		&Ping{},
		&Read{File: ref, Spans: []Span{{0, 10}, {100, 5}}, Raw: true},
		&ReadResp{Data: []byte{4, 5, 6}},
		&WriteData{File: ref, Spans: []Span{{0, 3}}, Data: []byte{1, 2, 3}},
		&WriteMirror{File: ref, Spans: []Span{{64, 4}}, Data: []byte{8, 8, 8, 8}},
		&ReadMirror{File: ref, Spans: []Span{{0, 128}}},
		&ReadParity{File: ref, Stripes: []int64{7}, Lock: true, Owner: 42, LeaseMS: 5000},
		&WriteParity{File: ref, Stripes: []int64{7}, Data: []byte{0xAA}, Unlock: true, Owner: 42},
		&WriteOverflow{File: ref, Extents: []Span{{8, 2}}, Data: []byte{9, 9}, Mirror: true},
		&InvalidateOverflow{File: ref, Spans: []Span{{8, 2}}, Mirror: true},
		&OverflowDump{File: ref, Mirror: true},
		&OverflowDumpResp{Extents: []Span{{8, 2}}, Data: []byte{9, 9}},
		&Sync{File: ref},
		&DropCaches{},
		&StorageStat{FileID: 3},
		&StorageStatResp{Total: 5, ByStore: [5]int64{1, 1, 1, 1, 1}},
		&RemoveFile{File: ref},
		&CompactOverflow{File: ref, Mirror: true},
		&Create{Name: "f", Servers: 5, StripeUnit: 4096, Scheme: Hybrid},
		&CreateResp{Ref: ref},
		&Open{Name: "f"},
		&OpenResp{Ref: ref, Size: 1 << 40},
		&OpenResp{Ref: ref, Size: 1 << 20, Mig: rsRef}, // mid-migration open
		&SetSize{ID: 3, Size: 999},
		&SetScheme{ID: 3, Scheme: ReedSolomon, Parity: 2},
		&SetSchemeResp{Old: ref, New: rsRef, Size: 1 << 20},
		&CommitScheme{ID: 3, NewID: 4},
		&AbortScheme{ID: 3, NewID: 4},
		&Remove{Name: "f"},
		&List{},
		&ListResp{Names: []string{"a", "b"}},
		&ServerList{},
		&ServerListResp{Addrs: []string{"127.0.0.1:7101"}},
		&ChecksumRange{File: ref, Store: StoreOverflowMirror, Off: 0, Len: 1 << 20, Chunk: 4096},
		&ChecksumRangeResp{Sums: []uint32{7, 0xffffffff}, Bytes: 8192},
		&Health{},
		&HealthResp{Index: 2, Requests: 17},
		&UnlockParity{File: ref, Stripes: []int64{7, 9}, Owner: 42, Dirty: true},
		&Error{Text: "fenced", Code: CodeLeaseExpired},
		&Error{Text: "torn", Code: CodeStripeTorn},
		&RenewLease{File: ref, Stripes: []int64{7, 9}, Owner: 42, LeaseMS: 5000},
		&RenewLeaseResp{Renewed: 2},
		&ListIntents{File: ref},
		&ListIntentsResp{Intents: []Intent{{Stripe: 7, Owner: 42, Abandoned: true}, {Stripe: 9, Owner: 43}}},
		&ResolveIntent{File: ref, Stripe: 7, Owner: 42, Data: []byte{0xAA, 0xBB}},
		&MarkDirty{File: ref, Dead: 2, Epoch: 99, Units: []int64{2, 7}, Mirrors: []int64{1}, Stripes: []int64{3}, Overflow: true},
		&MarkDirty{File: ref, Dead: 0, Epoch: 0}, // poison record
		&DirtyDump{File: ref, Dead: 2},
		&DirtyDumpResp{Epochs: []uint64{99}, Units: []DirtyItem{{Val: 2, Gen: 1}, {Val: 7, Gen: 3}}, Stripes: []DirtyItem{{Val: 3, Gen: 1}}, Overflow: true, OverflowGen: 2},
		&ClearDirty{File: ref, Dead: 2, Units: []DirtyItem{{Val: 2, Gen: 1}}, Mirrors: []DirtyItem{{Val: 1, Gen: 1}}, Overflow: true, OverflowGen: 2},
		&ClearDirty{File: ref, Dead: 2, All: true},
		&MetaReplicate{Epoch: 3, Seq: 17, Rec: []byte{0x01, 0x02, 0x03}},
		&MetaReplicate{Epoch: 4, Seq: 20, Snap: true, Rec: []byte(`{"next_id":5}`)},
		&MetaReplicateResp{Epoch: 3, Seq: 17},
		&MetaStatus{},
		&MetaStatusResp{Index: 1, Epoch: 3, Seq: 17, Primary: true, Files: 9, WALBytes: 4096},
		&Error{Text: "standby", Code: CodeNotPrimary},
		&Error{Text: "deposed", Code: CodeStaleEpoch},
		&Stats{},
		&StatsResp{
			Index:    2,
			Requests: 123,
			Counters: []StatKV{{Name: "bytes_in", Value: 4096}},
			Gauges:   []StatKV{{Name: "locks_held", Value: 1}},
			Hists: []HistDump{{
				Name: "rpc_read", Count: 2, Sum: 3000, Max: 2000,
				Buckets: []int64{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 1},
			}},
		},
	}
}

// TestKindsBelowTraceFlag keeps the kind space clear of the trace-flag bit:
// a kind value at or above 0x80 would be indistinguishable from a traced
// frame of kind value-0x80.
func TestKindsBelowTraceFlag(t *testing.T) {
	for k := range registry {
		if uint8(k)&KindTraceFlag != 0 {
			t.Errorf("message kind %d (%v) collides with KindTraceFlag", uint8(k), k)
		}
	}
}

// TestTracedRoundTrip covers the traced frame encoding: the trace ID rides
// the header, the message body is unchanged, and zero-trace frames use the
// untraced encoding byte-for-byte.
func TestTracedRoundTrip(t *testing.T) {
	ref := FileRef{ID: 3, Servers: 5, StripeUnit: 4096, Scheme: Hybrid}
	msg := &Read{File: ref, Spans: []Span{{0, 10}}}

	b := MarshalTraced(msg, 0xDEADBEEFCAFE)
	m, trace, err := UnmarshalTraced(b)
	if err != nil {
		t.Fatal(err)
	}
	if trace != 0xDEADBEEFCAFE {
		t.Errorf("trace = %#x, want 0xDEADBEEFCAFE", trace)
	}
	if got := m.(*Read); got.File != ref || len(got.Spans) != 1 {
		t.Errorf("traced body mismatch: %+v", got)
	}
	// Plain Unmarshal accepts traced frames too, discarding the ID.
	if _, err := Unmarshal(b); err != nil {
		t.Errorf("Unmarshal rejected traced frame: %v", err)
	}
	if !bytes.Equal(MarshalTraced(msg, 0), Marshal(msg)) {
		t.Error("zero-trace MarshalTraced differs from Marshal")
	}
	if _, _, err := UnmarshalTraced([]byte{uint8(KRead) | KindTraceFlag, 1, 2}); err == nil {
		t.Error("truncated trace header accepted")
	}
}

// TestFuzzSeedsCoverAllKinds asserts every wire message type has at least
// one fuzz corpus seed.
func TestFuzzSeedsCoverAllKinds(t *testing.T) {
	seeded := map[Kind]bool{}
	for _, m := range fuzzSeeds() {
		seeded[m.Kind()] = true
	}
	for k := range registry {
		if !seeded[k] {
			t.Errorf("message kind %d (%T) has no fuzz seed", k, registry[k]())
		}
	}
}

// FuzzUnmarshal feeds arbitrary bytes to the message decoder: it must never
// panic, and anything it accepts must re-marshal and re-parse to an
// equivalent message (a decode/encode/decode fixed point).
func FuzzUnmarshal(f *testing.F) {
	for i, m := range fuzzSeeds() {
		f.Add(Marshal(m))
		// Every other seed also goes in traced form, so the fuzzer mutates
		// the trace-ID header path as readily as the bodies.
		if i%2 == 0 {
			f.Add(MarshalTraced(m, 0x1234567890ABCDEF))
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0x00, 0x01})
	f.Add([]byte{uint8(KPing) | KindTraceFlag, 1, 2, 3}) // truncated trace header

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		re := Marshal(m)
		m2, err := Unmarshal(re)
		if err != nil {
			t.Fatalf("re-marshal of accepted message failed to parse: %v", err)
		}
		re2 := Marshal(m2)
		if !bytes.Equal(re, re2) {
			t.Fatalf("marshal not a fixed point:\n first %x\n second %x", re, re2)
		}
	})
}
