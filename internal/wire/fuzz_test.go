package wire

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal feeds arbitrary bytes to the message decoder: it must never
// panic, and anything it accepts must re-marshal and re-parse to an
// equivalent message (a decode/encode/decode fixed point).
func FuzzUnmarshal(f *testing.F) {
	ref := FileRef{ID: 3, Servers: 5, StripeUnit: 4096, Scheme: Hybrid}
	seeds := []Msg{
		&Ping{},
		&Read{File: ref, Spans: []Span{{0, 10}, {100, 5}}, Raw: true},
		&WriteData{File: ref, Spans: []Span{{0, 3}}, Data: []byte{1, 2, 3}},
		&ReadParity{File: ref, Stripes: []int64{7}, Lock: true},
		&WriteOverflow{File: ref, Extents: []Span{{8, 2}}, Data: []byte{9, 9}, Mirror: true},
		&OpenResp{Ref: ref, Size: 1 << 40},
		&ListResp{Names: []string{"a", "b"}},
		&StorageStatResp{Total: 5, ByStore: [5]int64{1, 1, 1, 1, 1}},
		&ChecksumRange{File: ref, Store: StoreOverflowMirror, Off: 0, Len: 1 << 20, Chunk: 4096},
		&ChecksumRangeResp{Sums: []uint32{7, 0xffffffff}, Bytes: 8192},
		&Error{Text: "boom"},
	}
	for _, m := range seeds {
		f.Add(Marshal(m))
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0x00, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		re := Marshal(m)
		m2, err := Unmarshal(re)
		if err != nil {
			t.Fatalf("re-marshal of accepted message failed to parse: %v", err)
		}
		re2 := Marshal(m2)
		if !bytes.Equal(re, re2) {
			t.Fatalf("marshal not a fixed point:\n first %x\n second %x", re, re2)
		}
	})
}
