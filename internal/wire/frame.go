package wire

import (
	"sync"
	"sync/atomic"
)

// FramePrefix bytes are reserved at the front of every Frame buffer so the
// transport can prepend its length+sequence header in place and put the
// whole head on the wire with a single write, no copy.
const FramePrefix = 8

// payloadSplitMin is the smallest Bytes payload worth passing by reference
// in Frame.Payload. Below it, copying into the head buffer is cheaper than
// a second writev element.
const payloadSplitMin = 2048

// maxPooledHead caps the head buffers kept warm in the pool; oversized
// one-off heads (huge span lists, stats dumps) are left to the GC.
const maxPooledHead = 64 << 10

// maxPooledPayload caps the private payload copies (OwnPayload) kept warm in
// their pool; larger one-offs are left to the GC.
const maxPooledPayload = 4 << 20

// Frame is the scatter-gather form of a marshaled message.
//
// Head() is the encoded message (kind byte, optional trace header,
// metadata fields) in a pooled buffer; Payload is the message's bulk data
// field passed by reference — it aliases the Msg's own slice and must hit
// the wire immediately after the head. The caller owns the frame until it
// calls Free, which recycles the head buffer; neither Head() nor Payload
// may be retained afterward.
type Frame struct {
	buf     []byte // [FramePrefix reserved bytes][marshaled head]
	Payload []byte
	bp      *[]byte // pool box, reused on Free; nil for unpooled frames
	pp      *[]byte // private payload copy made by OwnPayload; nil if by-reference
}

// Head returns the marshaled message bytes (without the transport prefix).
func (f *Frame) Head() []byte { return f.buf[FramePrefix:] }

// HeadWithPrefix returns the head buffer including the FramePrefix reserved
// bytes at the front, for the transport to fill with its own header.
func (f *Frame) HeadWithPrefix() []byte { return f.buf }

// BodyLen returns the length of the marshaled message including the
// by-reference payload (what a contiguous Marshal would have produced).
func (f *Frame) BodyLen() int { return len(f.buf) - FramePrefix + len(f.Payload) }

// OwnPayload replaces the frame's by-reference Payload with a private pooled
// copy. A transport whose write can outlive the caller — rpc abandons a
// timed-out call while its send goroutine is still streaming the frame —
// must take ownership before returning control, or a caller that reuses its
// buffer after the timeout races the in-flight wire write and the receiver
// can apply a torn payload. Free recycles the copy. A frame whose payload is
// already inlined (or already owned) is untouched.
func (f *Frame) OwnPayload() {
	if len(f.Payload) == 0 || f.pp != nil {
		return
	}
	pp := payloadPool.Get().(*[]byte)
	*pp = append((*pp)[:0], f.Payload...)
	f.Payload = *pp
	f.pp = pp
}

// Free returns the head buffer (and any OwnPayload copy) to their pools. The
// frame must not be used again.
func (f *Frame) Free() {
	if f.bp != nil && cap(f.buf) <= maxPooledHead {
		if poisonPooledBuffers.Load() {
			poison(f.buf[:cap(f.buf)])
		}
		*f.bp = f.buf[:0] // the box rides along, so Put allocates nothing
		headPool.Put(f.bp)
	}
	if f.pp != nil && cap(*f.pp) <= maxPooledPayload {
		if poisonPooledBuffers.Load() {
			poison((*f.pp)[:cap(*f.pp)])
		}
		*f.pp = (*f.pp)[:0]
		payloadPool.Put(f.pp)
	}
	f.buf, f.Payload, f.bp, f.pp = nil, nil, nil, nil
}

var headPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 512)
	return &b
}}

var payloadPool = sync.Pool{New: func() any { return new([]byte) }}

// poisonPooledBuffers, when set by tests, overwrites every buffer returned
// to the pool so that any still-live alias of a freed frame is caught by
// the pool-correctness property tests. Atomic because background frame
// traffic may still be draining when a test flips it.
var poisonPooledBuffers atomic.Bool

// SetPoolPoison toggles poisoning of head buffers returned to the frame
// pool (test-only).
func SetPoolPoison(on bool) { poisonPooledBuffers.Store(on) }

func poison(b []byte) {
	for i := range b {
		b[i] = 0xDB
	}
}

// MarshalFrame serializes a message into a pooled scatter-gather frame.
// A zero trace produces the plain (untraced) encoding. The message's first
// large byte payload is carried in Frame.Payload by reference — the caller
// must not mutate the Msg's data until the frame has been written and
// freed.
func MarshalFrame(m Msg, trace uint64) Frame {
	bp := headPool.Get().(*[]byte)
	var prefix [FramePrefix]byte
	e := Encoder{Buf: append((*bp)[:0], prefix[:]...), split: true}
	if trace != 0 {
		e.U8(uint8(m.Kind()) | KindTraceFlag)
		e.U64(trace)
	} else {
		e.U8(uint8(m.Kind()))
	}
	m.encode(&e)
	if e.Payload != nil && e.splitAt != len(e.Buf) {
		// Fields were encoded after the split payload (the payload is not
		// the message's last field): fold it back in at its position so
		// the wire bytes stay identical to the contiguous encoding.
		tail := len(e.Buf) - e.splitAt
		e.Buf = append(e.Buf, make([]byte, len(e.Payload))...)
		copy(e.Buf[e.splitAt+len(e.Payload):], e.Buf[e.splitAt:e.splitAt+tail])
		copy(e.Buf[e.splitAt:], e.Payload)
		e.Payload = nil
	}
	return Frame{buf: e.Buf, Payload: e.Payload, bp: bp}
}
