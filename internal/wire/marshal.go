package wire

import (
	"encoding/binary"
	"fmt"
)

// Marshal serializes a message as a kind byte followed by its body.
func Marshal(m Msg) []byte {
	e := Encoder{Buf: make([]byte, 0, 64)}
	e.U8(uint8(m.Kind()))
	m.encode(&e)
	return e.Buf
}

// MarshalTraced serializes a message with an operation trace ID: the kind
// byte carries KindTraceFlag and an 8-byte little-endian trace ID precedes
// the body. A zero trace falls back to the plain Marshal encoding, so
// untraced callers pay nothing and old decoders never see the flag.
func MarshalTraced(m Msg, trace uint64) []byte {
	if trace == 0 {
		return Marshal(m)
	}
	e := Encoder{Buf: make([]byte, 0, 72)}
	e.U8(uint8(m.Kind()) | KindTraceFlag)
	e.U64(trace)
	m.encode(&e)
	return e.Buf
}

// Unmarshal parses a message produced by Marshal or MarshalTraced,
// discarding any trace ID.
func Unmarshal(b []byte) (Msg, error) {
	m, _, err := UnmarshalTraced(b)
	return m, err
}

// UnmarshalTraced parses a message produced by Marshal or MarshalTraced and
// returns the trace ID it carried (zero for untraced frames).
func UnmarshalTraced(b []byte) (Msg, uint64, error) {
	if len(b) == 0 {
		return nil, 0, fmt.Errorf("wire: empty message")
	}
	kind := b[0]
	body := b[1:]
	var trace uint64
	if kind&KindTraceFlag != 0 {
		if len(body) < 8 {
			return nil, 0, fmt.Errorf("wire: truncated trace header")
		}
		trace = binary.LittleEndian.Uint64(body)
		body = body[8:]
		kind &^= KindTraceFlag
	}
	mk, ok := registry[Kind(kind)]
	if !ok {
		return nil, 0, fmt.Errorf("wire: unknown message kind %d", kind)
	}
	m := mk()
	d := Decoder{Buf: body}
	m.decode(&d)
	if err := d.Err(); err != nil {
		return nil, 0, fmt.Errorf("wire: decoding %T: %w", m, err)
	}
	return m, trace, nil
}

var registry = map[Kind]func() Msg{
	KError:              func() Msg { return &Error{} },
	KOK:                 func() Msg { return &OK{} },
	KPing:               func() Msg { return &Ping{} },
	KRead:               func() Msg { return &Read{} },
	KReadResp:           func() Msg { return &ReadResp{} },
	KWriteData:          func() Msg { return &WriteData{} },
	KWriteMirror:        func() Msg { return &WriteMirror{} },
	KReadMirror:         func() Msg { return &ReadMirror{} },
	KReadParity:         func() Msg { return &ReadParity{} },
	KWriteParity:        func() Msg { return &WriteParity{} },
	KWriteOverflow:      func() Msg { return &WriteOverflow{} },
	KInvalidateOverflow: func() Msg { return &InvalidateOverflow{} },
	KOverflowDump:       func() Msg { return &OverflowDump{} },
	KOverflowDumpResp:   func() Msg { return &OverflowDumpResp{} },
	KSync:               func() Msg { return &Sync{} },
	KDropCaches:         func() Msg { return &DropCaches{} },
	KStorageStat:        func() Msg { return &StorageStat{} },
	KStorageStatResp:    func() Msg { return &StorageStatResp{} },
	KRemoveFile:         func() Msg { return &RemoveFile{} },
	KCompactOverflow:    func() Msg { return &CompactOverflow{} },
	KCreate:             func() Msg { return &Create{} },
	KCreateResp:         func() Msg { return &CreateResp{} },
	KOpen:               func() Msg { return &Open{} },
	KOpenResp:           func() Msg { return &OpenResp{} },
	KSetSize:            func() Msg { return &SetSize{} },
	KRemove:             func() Msg { return &Remove{} },
	KList:               func() Msg { return &List{} },
	KListResp:           func() Msg { return &ListResp{} },
	KServerList:         func() Msg { return &ServerList{} },
	KServerListResp:     func() Msg { return &ServerListResp{} },
	KChecksumRange:      func() Msg { return &ChecksumRange{} },
	KChecksumRangeResp:  func() Msg { return &ChecksumRangeResp{} },
	KHealth:             func() Msg { return &Health{} },
	KHealthResp:         func() Msg { return &HealthResp{} },
	KUnlockParity:       func() Msg { return &UnlockParity{} },
	KRenewLease:         func() Msg { return &RenewLease{} },
	KRenewLeaseResp:     func() Msg { return &RenewLeaseResp{} },
	KListIntents:        func() Msg { return &ListIntents{} },
	KListIntentsResp:    func() Msg { return &ListIntentsResp{} },
	KResolveIntent:      func() Msg { return &ResolveIntent{} },
	KMarkDirty:          func() Msg { return &MarkDirty{} },
	KDirtyDump:          func() Msg { return &DirtyDump{} },
	KDirtyDumpResp:      func() Msg { return &DirtyDumpResp{} },
	KClearDirty:         func() Msg { return &ClearDirty{} },
	KStats:              func() Msg { return &Stats{} },
	KStatsResp:          func() Msg { return &StatsResp{} },
	KMetaReplicate:      func() Msg { return &MetaReplicate{} },
	KMetaReplicateResp:  func() Msg { return &MetaReplicateResp{} },
	KMetaStatus:         func() Msg { return &MetaStatus{} },
	KMetaStatusResp:     func() Msg { return &MetaStatusResp{} },
	KSetScheme:          func() Msg { return &SetScheme{} },
	KSetSchemeResp:      func() Msg { return &SetSchemeResp{} },
	KCommitScheme:       func() Msg { return &CommitScheme{} },
	KAbortScheme:        func() Msg { return &AbortScheme{} },
}

func (m *Error) Kind() Kind { return KError }
func (m *Error) encode(e *Encoder) {
	e.Str(m.Text)
	e.U8(m.Code)
}
func (m *Error) decode(d *Decoder) {
	m.Text = d.Str()
	m.Code = d.U8()
}
func (m *Error) Error() string { return m.Text }

func (m *OK) Kind() Kind      { return KOK }
func (m *OK) encode(*Encoder) {}
func (m *OK) decode(*Decoder) {}

func (m *Ping) Kind() Kind      { return KPing }
func (m *Ping) encode(*Encoder) {}
func (m *Ping) decode(*Decoder) {}

func (m *Read) Kind() Kind { return KRead }
func (m *Read) encode(e *Encoder) {
	e.FileRef(m.File)
	e.Spans(m.Spans)
	e.Bool(m.Raw)
}
func (m *Read) decode(d *Decoder) {
	m.File = d.FileRef()
	m.Spans = d.Spans()
	m.Raw = d.Bool()
}

func (m *ReadResp) Kind() Kind        { return KReadResp }
func (m *ReadResp) encode(e *Encoder) { e.Bytes(m.Data) }
func (m *ReadResp) decode(d *Decoder) { m.Data = d.BytesCopy() }

// WriteData (like WriteParity and WriteOverflow below) encodes its bulk
// Data field last so MarshalFrame can carry it by reference instead of
// copying it into the head buffer.
func (m *WriteData) Kind() Kind { return KWriteData }
func (m *WriteData) encode(e *Encoder) {
	e.FileRef(m.File)
	e.Spans(m.Spans)
	e.Bool(m.Raw)
	e.Bytes(m.Data)
}
func (m *WriteData) decode(d *Decoder) {
	m.File = d.FileRef()
	m.Spans = d.Spans()
	m.Raw = d.Bool()
	m.Data = d.BytesCopy()
}

func (m *WriteMirror) Kind() Kind { return KWriteMirror }
func (m *WriteMirror) encode(e *Encoder) {
	e.FileRef(m.File)
	e.Spans(m.Spans)
	e.Bytes(m.Data)
}
func (m *WriteMirror) decode(d *Decoder) {
	m.File = d.FileRef()
	m.Spans = d.Spans()
	m.Data = d.BytesCopy()
}

func (m *ReadMirror) Kind() Kind { return KReadMirror }
func (m *ReadMirror) encode(e *Encoder) {
	e.FileRef(m.File)
	e.Spans(m.Spans)
}
func (m *ReadMirror) decode(d *Decoder) {
	m.File = d.FileRef()
	m.Spans = d.Spans()
}

func (m *ReadParity) Kind() Kind { return KReadParity }
func (m *ReadParity) encode(e *Encoder) {
	e.FileRef(m.File)
	e.I64s(m.Stripes)
	e.Bool(m.Lock)
	e.U64(m.Owner)
	e.U32(m.LeaseMS)
}
func (m *ReadParity) decode(d *Decoder) {
	m.File = d.FileRef()
	m.Stripes = d.I64sDec()
	m.Lock = d.Bool()
	m.Owner = d.U64()
	m.LeaseMS = d.U32()
}

func (m *RenewLease) Kind() Kind { return KRenewLease }
func (m *RenewLease) encode(e *Encoder) {
	e.FileRef(m.File)
	e.I64s(m.Stripes)
	e.U64(m.Owner)
	e.U32(m.LeaseMS)
}
func (m *RenewLease) decode(d *Decoder) {
	m.File = d.FileRef()
	m.Stripes = d.I64sDec()
	m.Owner = d.U64()
	m.LeaseMS = d.U32()
}

func (m *RenewLeaseResp) Kind() Kind        { return KRenewLeaseResp }
func (m *RenewLeaseResp) encode(e *Encoder) { e.U32(m.Renewed) }
func (m *RenewLeaseResp) decode(d *Decoder) { m.Renewed = d.U32() }

func (m *ListIntents) Kind() Kind        { return KListIntents }
func (m *ListIntents) encode(e *Encoder) { e.FileRef(m.File) }
func (m *ListIntents) decode(d *Decoder) { m.File = d.FileRef() }

func (m *ListIntentsResp) Kind() Kind { return KListIntentsResp }
func (m *ListIntentsResp) encode(e *Encoder) {
	e.U32(uint32(len(m.Intents)))
	for _, in := range m.Intents {
		e.I64(in.Stripe)
		e.U64(in.Owner)
		e.Bool(in.Abandoned)
	}
}
func (m *ListIntentsResp) decode(d *Decoder) {
	n := int(d.U32())
	if d.err != nil || n < 0 || n > len(d.Buf) {
		d.fail()
		return
	}
	m.Intents = make([]Intent, n)
	for i := range m.Intents {
		m.Intents[i].Stripe = d.I64()
		m.Intents[i].Owner = d.U64()
		m.Intents[i].Abandoned = d.Bool()
	}
}

func (m *ResolveIntent) Kind() Kind { return KResolveIntent }
func (m *ResolveIntent) encode(e *Encoder) {
	e.FileRef(m.File)
	e.I64(m.Stripe)
	e.U64(m.Owner)
	e.Bytes(m.Data)
}
func (m *ResolveIntent) decode(d *Decoder) {
	m.File = d.FileRef()
	m.Stripe = d.I64()
	m.Owner = d.U64()
	m.Data = d.BytesCopy()
}

func (m *MarkDirty) Kind() Kind { return KMarkDirty }
func (m *MarkDirty) encode(e *Encoder) {
	e.FileRef(m.File)
	e.U16(m.Dead)
	e.U64(m.Epoch)
	e.I64s(m.Units)
	e.I64s(m.Mirrors)
	e.I64s(m.Stripes)
	e.Bool(m.Overflow)
}
func (m *MarkDirty) decode(d *Decoder) {
	m.File = d.FileRef()
	m.Dead = d.U16()
	m.Epoch = d.U64()
	m.Units = d.I64sDec()
	m.Mirrors = d.I64sDec()
	m.Stripes = d.I64sDec()
	m.Overflow = d.Bool()
}

func (m *DirtyDump) Kind() Kind { return KDirtyDump }
func (m *DirtyDump) encode(e *Encoder) {
	e.FileRef(m.File)
	e.U16(m.Dead)
}
func (m *DirtyDump) decode(d *Decoder) {
	m.File = d.FileRef()
	m.Dead = d.U16()
}

func (m *DirtyDumpResp) Kind() Kind { return KDirtyDumpResp }
func (m *DirtyDumpResp) encode(e *Encoder) {
	e.U64s(m.Epochs)
	e.DirtyItems(m.Units)
	e.DirtyItems(m.Mirrors)
	e.DirtyItems(m.Stripes)
	e.Bool(m.Overflow)
	e.U64(m.OverflowGen)
}
func (m *DirtyDumpResp) decode(d *Decoder) {
	m.Epochs = d.U64sDec()
	m.Units = d.DirtyItemsDec()
	m.Mirrors = d.DirtyItemsDec()
	m.Stripes = d.DirtyItemsDec()
	m.Overflow = d.Bool()
	m.OverflowGen = d.U64()
}

func (m *ClearDirty) Kind() Kind { return KClearDirty }
func (m *ClearDirty) encode(e *Encoder) {
	e.FileRef(m.File)
	e.U16(m.Dead)
	e.Bool(m.All)
	e.DirtyItems(m.Units)
	e.DirtyItems(m.Mirrors)
	e.DirtyItems(m.Stripes)
	e.Bool(m.Overflow)
	e.U64(m.OverflowGen)
}
func (m *ClearDirty) decode(d *Decoder) {
	m.File = d.FileRef()
	m.Dead = d.U16()
	m.All = d.Bool()
	m.Units = d.DirtyItemsDec()
	m.Mirrors = d.DirtyItemsDec()
	m.Stripes = d.DirtyItemsDec()
	m.Overflow = d.Bool()
	m.OverflowGen = d.U64()
}

func (m *UnlockParity) Kind() Kind { return KUnlockParity }
func (m *UnlockParity) encode(e *Encoder) {
	e.FileRef(m.File)
	e.I64s(m.Stripes)
	e.U64(m.Owner)
	e.Bool(m.Dirty)
}
func (m *UnlockParity) decode(d *Decoder) {
	m.File = d.FileRef()
	m.Stripes = d.I64sDec()
	m.Owner = d.U64()
	m.Dirty = d.Bool()
}

func (m *Health) Kind() Kind      { return KHealth }
func (m *Health) encode(*Encoder) {}
func (m *Health) decode(*Decoder) {}

func (m *HealthResp) Kind() Kind { return KHealthResp }
func (m *HealthResp) encode(e *Encoder) {
	e.U16(m.Index)
	e.I64(m.Requests)
}
func (m *HealthResp) decode(d *Decoder) {
	m.Index = d.U16()
	m.Requests = d.I64()
}

func (m *WriteParity) Kind() Kind { return KWriteParity }
func (m *WriteParity) encode(e *Encoder) {
	e.FileRef(m.File)
	e.I64s(m.Stripes)
	e.Bool(m.Unlock)
	e.U64(m.Owner)
	e.Bytes(m.Data)
}
func (m *WriteParity) decode(d *Decoder) {
	m.File = d.FileRef()
	m.Stripes = d.I64sDec()
	m.Unlock = d.Bool()
	m.Owner = d.U64()
	m.Data = d.BytesCopy()
}

func (m *WriteOverflow) Kind() Kind { return KWriteOverflow }
func (m *WriteOverflow) encode(e *Encoder) {
	e.FileRef(m.File)
	e.Spans(m.Extents)
	e.Bool(m.Mirror)
	e.Bytes(m.Data)
}
func (m *WriteOverflow) decode(d *Decoder) {
	m.File = d.FileRef()
	m.Extents = d.Spans()
	m.Mirror = d.Bool()
	m.Data = d.BytesCopy()
}

func (m *InvalidateOverflow) Kind() Kind { return KInvalidateOverflow }
func (m *InvalidateOverflow) encode(e *Encoder) {
	e.FileRef(m.File)
	e.Spans(m.Spans)
	e.Bool(m.Mirror)
}
func (m *InvalidateOverflow) decode(d *Decoder) {
	m.File = d.FileRef()
	m.Spans = d.Spans()
	m.Mirror = d.Bool()
}

func (m *OverflowDump) Kind() Kind { return KOverflowDump }
func (m *OverflowDump) encode(e *Encoder) {
	e.FileRef(m.File)
	e.Bool(m.Mirror)
}
func (m *OverflowDump) decode(d *Decoder) {
	m.File = d.FileRef()
	m.Mirror = d.Bool()
}

func (m *OverflowDumpResp) Kind() Kind { return KOverflowDumpResp }
func (m *OverflowDumpResp) encode(e *Encoder) {
	e.Spans(m.Extents)
	e.Bytes(m.Data)
}
func (m *OverflowDumpResp) decode(d *Decoder) {
	m.Extents = d.Spans()
	m.Data = d.BytesCopy()
}

func (m *Sync) Kind() Kind        { return KSync }
func (m *Sync) encode(e *Encoder) { e.FileRef(m.File) }
func (m *Sync) decode(d *Decoder) { m.File = d.FileRef() }

func (m *DropCaches) Kind() Kind      { return KDropCaches }
func (m *DropCaches) encode(*Encoder) {}
func (m *DropCaches) decode(*Decoder) {}

func (m *StorageStat) Kind() Kind        { return KStorageStat }
func (m *StorageStat) encode(e *Encoder) { e.U64(m.FileID) }
func (m *StorageStat) decode(d *Decoder) { m.FileID = d.U64() }

func (m *StorageStatResp) Kind() Kind { return KStorageStatResp }
func (m *StorageStatResp) encode(e *Encoder) {
	e.I64(m.Total)
	for _, v := range m.ByStore {
		e.I64(v)
	}
}
func (m *StorageStatResp) decode(d *Decoder) {
	m.Total = d.I64()
	for i := range m.ByStore {
		m.ByStore[i] = d.I64()
	}
}

func (m *RemoveFile) Kind() Kind        { return KRemoveFile }
func (m *RemoveFile) encode(e *Encoder) { e.FileRef(m.File) }
func (m *RemoveFile) decode(d *Decoder) { m.File = d.FileRef() }

func (m *CompactOverflow) Kind() Kind { return KCompactOverflow }
func (m *CompactOverflow) encode(e *Encoder) {
	e.FileRef(m.File)
	e.Bool(m.Mirror)
}
func (m *CompactOverflow) decode(d *Decoder) {
	m.File = d.FileRef()
	m.Mirror = d.Bool()
}

func (m *Create) Kind() Kind { return KCreate }
func (m *Create) encode(e *Encoder) {
	e.Str(m.Name)
	e.U16(m.Servers)
	e.U32(m.StripeUnit)
	e.U8(uint8(m.Scheme))
	e.U8(m.Parity)
}
func (m *Create) decode(d *Decoder) {
	m.Name = d.Str()
	m.Servers = d.U16()
	m.StripeUnit = d.U32()
	m.Scheme = Scheme(d.U8())
	m.Parity = d.U8()
}

func (m *CreateResp) Kind() Kind        { return KCreateResp }
func (m *CreateResp) encode(e *Encoder) { e.FileRef(m.Ref) }
func (m *CreateResp) decode(d *Decoder) { m.Ref = d.FileRef() }

func (m *Open) Kind() Kind        { return KOpen }
func (m *Open) encode(e *Encoder) { e.Str(m.Name) }
func (m *Open) decode(d *Decoder) { m.Name = d.Str() }

func (m *OpenResp) Kind() Kind { return KOpenResp }
func (m *OpenResp) encode(e *Encoder) {
	e.FileRef(m.Ref)
	e.I64(m.Size)
	e.FileRef(m.Mig)
}
func (m *OpenResp) decode(d *Decoder) {
	m.Ref = d.FileRef()
	m.Size = d.I64()
	m.Mig = d.FileRef()
}

func (m *SetSize) Kind() Kind { return KSetSize }
func (m *SetSize) encode(e *Encoder) {
	e.U64(m.ID)
	e.I64(m.Size)
}
func (m *SetSize) decode(d *Decoder) {
	m.ID = d.U64()
	m.Size = d.I64()
}

func (m *Remove) Kind() Kind        { return KRemove }
func (m *Remove) encode(e *Encoder) { e.Str(m.Name) }
func (m *Remove) decode(d *Decoder) { m.Name = d.Str() }

func (m *List) Kind() Kind      { return KList }
func (m *List) encode(*Encoder) {}
func (m *List) decode(*Decoder) {}

func (m *ListResp) Kind() Kind        { return KListResp }
func (m *ListResp) encode(e *Encoder) { e.Strs(m.Names) }
func (m *ListResp) decode(d *Decoder) { m.Names = d.Strs() }

func (m *ServerList) Kind() Kind      { return KServerList }
func (m *ServerList) encode(*Encoder) {}
func (m *ServerList) decode(*Decoder) {}

func (m *ServerListResp) Kind() Kind        { return KServerListResp }
func (m *ServerListResp) encode(e *Encoder) { e.Strs(m.Addrs) }
func (m *ServerListResp) decode(d *Decoder) { m.Addrs = d.Strs() }

func (m *ChecksumRange) Kind() Kind { return KChecksumRange }
func (m *ChecksumRange) encode(e *Encoder) {
	e.FileRef(m.File)
	e.U8(m.Store)
	e.I64(m.Off)
	e.I64(m.Len)
	e.I64(m.Chunk)
}
func (m *ChecksumRange) decode(d *Decoder) {
	m.File = d.FileRef()
	m.Store = d.U8()
	m.Off = d.I64()
	m.Len = d.I64()
	m.Chunk = d.I64()
}

func (m *Stats) Kind() Kind      { return KStats }
func (m *Stats) encode(*Encoder) {}
func (m *Stats) decode(*Decoder) {}

func (m *StatsResp) Kind() Kind { return KStatsResp }
func (m *StatsResp) encode(e *Encoder) {
	e.U16(m.Index)
	e.I64(m.Requests)
	e.U32(uint32(len(m.Counters)))
	for _, kv := range m.Counters {
		e.Str(kv.Name)
		e.I64(kv.Value)
	}
	e.U32(uint32(len(m.Gauges)))
	for _, kv := range m.Gauges {
		e.Str(kv.Name)
		e.I64(kv.Value)
	}
	e.U32(uint32(len(m.Hists)))
	for _, h := range m.Hists {
		e.Str(h.Name)
		e.I64(h.Count)
		e.I64(h.Sum)
		e.I64(h.Max)
		e.I64s(h.Buckets)
	}
}
func (m *StatsResp) decode(d *Decoder) {
	m.Index = d.U16()
	m.Requests = d.I64()
	m.Counters = d.statKVs()
	m.Gauges = d.statKVs()
	n := int(d.U32())
	if d.err != nil || n < 0 || n > len(d.Buf) {
		d.fail()
		return
	}
	m.Hists = make([]HistDump, n)
	for i := range m.Hists {
		m.Hists[i].Name = d.Str()
		m.Hists[i].Count = d.I64()
		m.Hists[i].Sum = d.I64()
		m.Hists[i].Max = d.I64()
		m.Hists[i].Buckets = d.I64sDec()
	}
}

// MetaReplicate encodes its bulk Rec field last so MarshalFrame can carry a
// snapshot payload by reference instead of copying it into the head buffer.
func (m *MetaReplicate) Kind() Kind { return KMetaReplicate }
func (m *MetaReplicate) encode(e *Encoder) {
	e.U64(m.Epoch)
	e.U64(m.Seq)
	e.Bool(m.Snap)
	e.Bytes(m.Rec)
}
func (m *MetaReplicate) decode(d *Decoder) {
	m.Epoch = d.U64()
	m.Seq = d.U64()
	m.Snap = d.Bool()
	m.Rec = d.BytesCopy()
}

func (m *MetaReplicateResp) Kind() Kind { return KMetaReplicateResp }
func (m *MetaReplicateResp) encode(e *Encoder) {
	e.U64(m.Epoch)
	e.U64(m.Seq)
}
func (m *MetaReplicateResp) decode(d *Decoder) {
	m.Epoch = d.U64()
	m.Seq = d.U64()
}

func (m *SetScheme) Kind() Kind { return KSetScheme }
func (m *SetScheme) encode(e *Encoder) {
	e.U64(m.ID)
	e.U8(uint8(m.Scheme))
	e.U8(m.Parity)
}
func (m *SetScheme) decode(d *Decoder) {
	m.ID = d.U64()
	m.Scheme = Scheme(d.U8())
	m.Parity = d.U8()
}

func (m *SetSchemeResp) Kind() Kind { return KSetSchemeResp }
func (m *SetSchemeResp) encode(e *Encoder) {
	e.FileRef(m.Old)
	e.FileRef(m.New)
	e.I64(m.Size)
}
func (m *SetSchemeResp) decode(d *Decoder) {
	m.Old = d.FileRef()
	m.New = d.FileRef()
	m.Size = d.I64()
}

func (m *CommitScheme) Kind() Kind { return KCommitScheme }
func (m *CommitScheme) encode(e *Encoder) {
	e.U64(m.ID)
	e.U64(m.NewID)
}
func (m *CommitScheme) decode(d *Decoder) {
	m.ID = d.U64()
	m.NewID = d.U64()
}

func (m *AbortScheme) Kind() Kind { return KAbortScheme }
func (m *AbortScheme) encode(e *Encoder) {
	e.U64(m.ID)
	e.U64(m.NewID)
}
func (m *AbortScheme) decode(d *Decoder) {
	m.ID = d.U64()
	m.NewID = d.U64()
}

func (m *MetaStatus) Kind() Kind      { return KMetaStatus }
func (m *MetaStatus) encode(*Encoder) {}
func (m *MetaStatus) decode(*Decoder) {}

func (m *MetaStatusResp) Kind() Kind { return KMetaStatusResp }
func (m *MetaStatusResp) encode(e *Encoder) {
	e.U16(m.Index)
	e.U64(m.Epoch)
	e.U64(m.Seq)
	e.Bool(m.Primary)
	e.I64(m.Files)
	e.I64(m.WALBytes)
}
func (m *MetaStatusResp) decode(d *Decoder) {
	m.Index = d.U16()
	m.Epoch = d.U64()
	m.Seq = d.U64()
	m.Primary = d.Bool()
	m.Files = d.I64()
	m.WALBytes = d.I64()
}

func (d *Decoder) statKVs() []StatKV {
	n := int(d.U32())
	if d.err != nil || n < 0 || n > len(d.Buf) {
		d.fail()
		return nil
	}
	v := make([]StatKV, n)
	for i := range v {
		v[i].Name = d.Str()
		v[i].Value = d.I64()
	}
	return v
}

func (m *ChecksumRangeResp) Kind() Kind { return KChecksumRangeResp }
func (m *ChecksumRangeResp) encode(e *Encoder) {
	e.U32s(m.Sums)
	e.I64(m.Bytes)
}
func (m *ChecksumRangeResp) decode(d *Decoder) {
	m.Sums = d.U32sDec()
	m.Bytes = d.I64()
}
