// Package wire defines the CSAR on-the-wire protocol: the redundancy scheme
// identifiers, the file reference carried by every I/O request, and the
// binary encoding of all client↔manager and client↔I/O-server messages.
//
// The protocol mirrors the PVFS architecture the paper extends: clients
// obtain a file's layout from the manager once, then talk to the I/O
// servers directly. Servers are stateless with respect to clients — every
// request carries the compact file reference (ID, stripe geometry, scheme),
// so a server can be restarted or a client can fail without any session
// cleanup.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
)

// Scheme identifies a redundancy scheme. The first four are the schemes the
// paper evaluates; the last two are the instrumented variants used in its
// microbenchmarks (Figure 3's R5 NO LOCK and Figure 4a's RAID5-npc).
type Scheme uint8

const (
	// Raid0 is plain PVFS striping with no redundancy.
	Raid0 Scheme = iota
	// Raid1 mirrors every stripe unit onto the next server's redundancy file.
	Raid1
	// Raid5 keeps one rotating parity unit per stripe of N-1 data units.
	Raid5
	// Hybrid writes full stripes as RAID5 and partial stripes as mirrored
	// overflow-region writes — the paper's contribution.
	Hybrid
	// Raid5NoLock is RAID5 with the parity-consistency locking disabled.
	// It transfers the same bytes but may corrupt parity under concurrency;
	// it exists only to measure the locking overhead (Figure 3).
	Raid5NoLock
	// Raid5NPC is RAID5 with the client's parity computation elided (the
	// parity buffer is written without being XOR-computed). It isolates the
	// CPU cost of parity generation (Figure 4a).
	Raid5NPC
	// ReedSolomon keeps m rotating Reed-Solomon parity units per stripe of
	// k = N-m data units (GF(256) systematic code), tolerating any m
	// simultaneous server failures. The per-file parity count rides in
	// FileRef.Parity.
	ReedSolomon
)

var schemeNames = map[Scheme]string{
	Raid0:       "raid0",
	Raid1:       "raid1",
	Raid5:       "raid5",
	Hybrid:      "hybrid",
	Raid5NoLock: "raid5-nolock",
	Raid5NPC:    "raid5-npc",
	ReedSolomon: "rs",
}

func (s Scheme) String() string {
	if n, ok := schemeNames[s]; ok {
		return n
	}
	return fmt.Sprintf("scheme(%d)", uint8(s))
}

// SchemeNames returns every scheme name ParseScheme accepts, in scheme-value
// order. CLI usage text and error messages enumerate schemes through it so
// the list cannot drift from the protocol as schemes are added.
func SchemeNames() []string {
	out := make([]string, 0, len(schemeNames))
	for s := Scheme(0); int(s) < len(schemeNames); s++ {
		out = append(out, schemeNames[s])
	}
	return out
}

// ParseScheme converts a scheme name as printed by String back to a Scheme.
func ParseScheme(name string) (Scheme, error) {
	for s, n := range schemeNames {
		if n == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("wire: unknown scheme %q (want one of: %s)",
		name, strings.Join(SchemeNames(), ", "))
}

// UsesParity reports whether the scheme maintains rotating parity units
// (XOR for the RAID5 family, GF(256) rows for Reed-Solomon).
func (s Scheme) UsesParity() bool {
	switch s {
	case Raid5, Hybrid, Raid5NoLock, Raid5NPC, ReedSolomon:
		return true
	}
	return false
}

// UsesMirror reports whether the scheme maintains RAID1-style whole-unit
// mirrors of in-place data.
func (s Scheme) UsesMirror() bool { return s == Raid1 }

// UsesLocking reports whether partial-stripe parity updates take the
// distributed parity lock.
func (s Scheme) UsesLocking() bool {
	switch s {
	case Raid5, Hybrid, Raid5NPC, ReedSolomon:
		return true
	}
	return false
}

// FileRef is the compact file description carried in every I/O request.
type FileRef struct {
	ID         uint64
	Servers    uint16
	StripeUnit uint32
	Scheme     Scheme
	// Parity is the number of parity units per stripe for ReedSolomon
	// files; the single-parity schemes leave it zero (meaning one).
	Parity uint8
}

// ParityUnits returns the effective parity-unit count of the file's
// geometry: Parity for ReedSolomon, defaulted to one for the XOR schemes.
func (r FileRef) ParityUnits() int {
	if r.Parity < 1 {
		return 1
	}
	return int(r.Parity)
}

// Span is a byte range [Off, Off+Len) of the logical file.
type Span struct {
	Off int64
	Len int64
}

// Kind identifies a message type.
type Kind uint8

// Message kinds. Requests and responses share one space.
const (
	KError Kind = iota + 1
	KOK
	KPing

	// I/O server requests.
	KRead
	KReadResp
	KWriteData
	KWriteMirror
	KReadMirror
	KReadParity
	KWriteParity
	KWriteOverflow
	KInvalidateOverflow
	KOverflowDump
	KOverflowDumpResp
	KSync
	KDropCaches
	KStorageStat
	KStorageStatResp
	KRemoveFile
	KCompactOverflow

	// Manager requests.
	KCreate
	KCreateResp
	KOpen
	KOpenResp
	KSetSize
	KRemove
	KList
	KListResp
	KServerList
	KServerListResp

	// Integrity scrubbing (appended so earlier kinds keep their values).
	KChecksumRange
	KChecksumRangeResp

	// Resilience layer (appended so earlier kinds keep their values).
	KHealth
	KHealthResp
	KUnlockParity

	// Crash consistency: leased parity locks and the stripe intent journal
	// (appended so earlier kinds keep their values).
	KRenewLease
	KRenewLeaseResp
	KListIntents
	KListIntentsResp
	KResolveIntent

	// Online incremental resync: the dirty-region log of an outage
	// (appended so earlier kinds keep their values).
	KMarkDirty
	KDirtyDump
	KDirtyDumpResp
	KClearDirty

	// Observability: the server-side stats dump
	// (appended so earlier kinds keep their values).
	KStats
	KStatsResp

	// Metadata high availability: primary→standby operation replication and
	// the manager role/epoch probe (appended so earlier kinds keep their
	// values).
	KMetaReplicate
	KMetaReplicateResp
	KMetaStatus
	KMetaStatusResp

	// Online scheme migration (appended so earlier kinds keep their
	// values): pinning, committing and aborting a file's layout change at
	// the manager.
	KSetScheme
	KSetSchemeResp
	KCommitScheme
	KAbortScheme
)

// KindTraceFlag is the high bit of the kind byte in a marshaled frame. Kinds
// themselves stay below it (the iota above must never reach 0x80, which
// TestKindsBelowTraceFlag enforces); a set flag means an 8-byte little-endian
// trace ID follows the kind byte before the message body. Decoders that
// predate the flag reject such frames as unknown kinds rather than
// misparsing them.
const KindTraceFlag uint8 = 0x80

var kindNames = map[Kind]string{
	KError:              "error",
	KOK:                 "ok",
	KPing:               "ping",
	KRead:               "read",
	KReadResp:           "read_resp",
	KWriteData:          "write_data",
	KWriteMirror:        "write_mirror",
	KReadMirror:         "read_mirror",
	KReadParity:         "read_parity",
	KWriteParity:        "write_parity",
	KWriteOverflow:      "write_overflow",
	KInvalidateOverflow: "invalidate_overflow",
	KOverflowDump:       "overflow_dump",
	KOverflowDumpResp:   "overflow_dump_resp",
	KSync:               "sync",
	KDropCaches:         "drop_caches",
	KStorageStat:        "storage_stat",
	KStorageStatResp:    "storage_stat_resp",
	KRemoveFile:         "remove_file",
	KCompactOverflow:    "compact_overflow",
	KCreate:             "create",
	KCreateResp:         "create_resp",
	KOpen:               "open",
	KOpenResp:           "open_resp",
	KSetSize:            "set_size",
	KRemove:             "remove",
	KList:               "list",
	KListResp:           "list_resp",
	KServerList:         "server_list",
	KServerListResp:     "server_list_resp",
	KChecksumRange:      "checksum_range",
	KChecksumRangeResp:  "checksum_range_resp",
	KHealth:             "health",
	KHealthResp:         "health_resp",
	KUnlockParity:       "unlock_parity",
	KRenewLease:         "renew_lease",
	KRenewLeaseResp:     "renew_lease_resp",
	KListIntents:        "list_intents",
	KListIntentsResp:    "list_intents_resp",
	KResolveIntent:      "resolve_intent",
	KMarkDirty:          "mark_dirty",
	KDirtyDump:          "dirty_dump",
	KDirtyDumpResp:      "dirty_dump_resp",
	KClearDirty:         "clear_dirty",
	KStats:              "stats",
	KStatsResp:          "stats_resp",
	KMetaReplicate:      "meta_replicate",
	KMetaReplicateResp:  "meta_replicate_resp",
	KMetaStatus:         "meta_status",
	KMetaStatusResp:     "meta_status_resp",
	KSetScheme:          "set_scheme",
	KSetSchemeResp:      "set_scheme_resp",
	KCommitScheme:       "commit_scheme",
	KAbortScheme:        "abort_scheme",
}

// String names a kind for logs and metric labels (e.g. the per-RPC-kind
// latency histograms are named "rpc_" + Kind.String()).
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Store kinds addressable by ChecksumRange, in the order of
// StorageStatResp.ByStore and the server's local store layout.
const (
	StoreData uint8 = iota
	StoreMirror
	StoreParity
	StoreOverflow
	StoreOverflowMirror
	NumStores
)

// Msg is one protocol message.
type Msg interface {
	Kind() Kind
	encode(e *Encoder)
	decode(d *Decoder)
}

// Error codes classify failure responses so a client can tell an
// application-level refusal (bad arguments, unknown file — retrying cannot
// help) from server unavailability (the retry/failover layer's business).
const (
	// CodeGeneric marks an application error: the server is alive and
	// answered; the request itself was rejected.
	CodeGeneric uint8 = iota
	// CodeUnavailable marks a server that cannot serve requests at all
	// (stopped, partitioned behind a proxy, shutting down). Errors with
	// this code unwrap to ErrUnavailable.
	CodeUnavailable
	// CodeLeaseExpired marks a request refused because the parity-lock
	// lease it rode on was revoked: the server expired the lease, woke the
	// lock queue and abandoned the stripe's intent, so the caller's update
	// must not land. Errors with this code unwrap to ErrLeaseExpired.
	CodeLeaseExpired
	// CodeStripeTorn marks a stripe that is fail-stopped awaiting intent
	// replay: a crashed or expired update may have left its parity stale,
	// so new parity-lock acquisitions are refused until ReplayIntents (or a
	// fresh full-stripe write) reconciles it. Errors with this code unwrap
	// to ErrStripeTorn.
	CodeStripeTorn
	// CodeNotPrimary marks a metadata mutation refused by a standby
	// manager: the server is healthy but not the namespace's primary, so
	// the client should fail over to the next manager in its list. Errors
	// with this code unwrap to ErrNotPrimary.
	CodeNotPrimary
	// CodeStaleEpoch marks a request fenced for carrying a primary epoch
	// older than the receiver's: the sender was deposed and must not be
	// allowed to mutate state it no longer owns — the metadata analogue of
	// CodeLeaseExpired fencing stale parity writes. Errors with this code
	// unwrap to ErrStaleEpoch.
	CodeStaleEpoch
)

// ErrUnavailable is the sentinel behind CodeUnavailable errors: matching it
// with errors.Is classifies a failure as server unavailability regardless
// of which transport delivered it.
var ErrUnavailable = errors.New("server unavailable")

// ErrLeaseExpired is the sentinel behind CodeLeaseExpired errors: the
// caller's parity-lock lease was revoked before its unlocking parity write
// arrived.
var ErrLeaseExpired = errors.New("parity lock lease expired")

// ErrStripeTorn is the sentinel behind CodeStripeTorn errors: the stripe
// has an abandoned write intent and is refusing new parity-lock
// acquisitions until its parity is replayed.
var ErrStripeTorn = errors.New("stripe awaiting intent replay")

// ErrNotPrimary is the sentinel behind CodeNotPrimary errors: the manager
// answering is a standby; metadata mutations belong on the primary.
var ErrNotPrimary = errors.New("manager is not primary")

// ErrStaleEpoch is the sentinel behind CodeStaleEpoch errors: the request
// carried a primary epoch older than the receiver's, so its sender has been
// deposed and its operation was fenced off.
var ErrStaleEpoch = errors.New("stale manager epoch")

// ErrorCodeOf maps a handler error to the wire code its Error response
// should carry.
func ErrorCodeOf(err error) uint8 {
	switch {
	case errors.Is(err, ErrUnavailable):
		return CodeUnavailable
	case errors.Is(err, ErrLeaseExpired):
		return CodeLeaseExpired
	case errors.Is(err, ErrStripeTorn):
		return CodeStripeTorn
	case errors.Is(err, ErrNotPrimary):
		return CodeNotPrimary
	case errors.Is(err, ErrStaleEpoch):
		return CodeStaleEpoch
	}
	return CodeGeneric
}

// Error is the generic failure response; the RPC layer converts it to a Go
// error on the caller's side. Code classifies the failure (see CodeGeneric,
// CodeUnavailable).
type Error struct {
	Text string
	Code uint8
}

// Unwrap lets errors.Is see through a decoded failure response to the
// sentinel its code stands for (ErrUnavailable, ErrLeaseExpired,
// ErrStripeTorn).
func (m *Error) Unwrap() error {
	switch m.Code {
	case CodeUnavailable:
		return ErrUnavailable
	case CodeLeaseExpired:
		return ErrLeaseExpired
	case CodeStripeTorn:
		return ErrStripeTorn
	case CodeNotPrimary:
		return ErrNotPrimary
	case CodeStaleEpoch:
		return ErrStaleEpoch
	}
	return nil
}

// OK is the empty success response.
type OK struct{}

// Ping checks liveness.
type Ping struct{}

// Read asks an I/O server for the given logical spans of a file. The server
// returns the newest data, patching in overflow-region contents, unless Raw
// is set (recovery wants the in-place data file contents only).
type Read struct {
	File  FileRef
	Spans []Span
	Raw   bool
}

// ReadResp carries the concatenated bytes of the requested spans or stripes.
type ReadResp struct{ Data []byte }

// WriteData writes the given logical spans in place into the data file. Raw
// marks a repair or rebuild write: the bytes are restored in place exactly,
// without the overflow invalidation a Hybrid foreground full-stripe write
// implies (a repair must not discard newer overflow contents of the range).
type WriteData struct {
	File  FileRef
	Spans []Span
	Data  []byte
	Raw   bool
}

// WriteMirror writes the RAID1 mirror copies of the given logical spans into
// the redundancy file. The receiving server is the mirror server of the
// spans' stripe units.
type WriteMirror struct {
	File  FileRef
	Spans []Span
	Data  []byte
}

// ReadMirror reads mirror copies (for degraded reads and verification).
type ReadMirror struct {
	File  FileRef
	Spans []Span
}

// ReadParity reads whole parity units of the listed stripes. With Lock set,
// the server acquires the stripe's parity lock before answering (the
// Section 5.1 protocol: a parity read announces a partial-stripe update).
// Owner is the caller's lock token for that acquisition: a later
// UnlockParity carrying the same token releases exactly this acquisition
// and no other, so a client whose locked read timed out can free a
// possibly-granted lock without ever stealing one granted to someone else.
//
// A locked read also opens a durable write intent per stripe (the stripe
// may be torn until the closing WriteParity commits it). LeaseMS, when
// non-zero, bounds how long the acquisition may stay open without a
// RenewLease heartbeat: past the deadline the server revokes the lock,
// wakes the FIFO queue and marks the intent abandoned, so a dead client
// cannot wedge the stripe.
type ReadParity struct {
	File    FileRef
	Stripes []int64
	Lock    bool
	Owner   uint64
	LeaseMS uint32
}

// UnlockParity force-releases the parity locks of the listed stripes if —
// and only if — they are held (or queued) under the given Owner token. It
// is the escape hatch for a dead or timed-out peer: the lock protocol of
// Section 5.1 releases locks with WriteParity{Unlock}, but a client that
// never saw its locked-read response cannot know whether it holds the lock,
// and sends this instead. A token that matches nothing is a no-op.
//
// Dirty tells the server how far the canceling client got. False — the
// usual case — means no data write was ever issued: the stripe is
// untouched, so the server retires the acquisition's intent and hands the
// lock to the next waiter. True means data writes were already in flight
// when the update was given up on, so the stripe may be torn: the server
// abandons the intent and fail-stops the stripe (lock revoked, queue
// canceled, new acquisitions refused) until recovery replays it.
type UnlockParity struct {
	File    FileRef
	Stripes []int64
	Owner   uint64
	Dirty   bool
}

// RenewLease extends the lease on parity locks held under Owner for the
// listed stripes of a file — the client heartbeat that keeps a long
// read-modify-write alive. Each matching, still-held, non-abandoned
// acquisition has its deadline pushed LeaseMS past now.
type RenewLease struct {
	File    FileRef
	Stripes []int64
	Owner   uint64
	LeaseMS uint32
}

// RenewLeaseResp reports how many of the requested stripes were actually
// renewed. Renewed < len(Stripes) means some lease already expired (the
// lock was revoked and the intent abandoned); the writer must treat its
// update as fenced off.
type RenewLeaseResp struct {
	Renewed uint32
}

// Intent is one stripe write intent in a ListIntentsResp. Abandoned
// intents (lease expired, crash-restart load, explicit UnlockParity)
// mark possibly-torn stripes awaiting replay; open intents belong to an
// in-flight read-modify-write and must be left alone.
type Intent struct {
	Stripe    int64
	Owner     uint64
	Abandoned bool
}

// ListIntents asks a server for the write intents it holds for a file —
// exactly the set of stripes whose parity may not match their data.
// Recovery replays the abandoned ones; the scrubber skips all of them so
// it never "repairs" a stripe mid-update.
type ListIntents struct{ File FileRef }

// ListIntentsResp is the reply to ListIntents.
type ListIntentsResp struct{ Intents []Intent }

// ResolveIntent retires an abandoned intent by installing parity
// recomputed from the stripe's data units. Data must be one full parity
// unit. Owner zero resolves regardless of which token abandoned the
// intent; a non-zero Owner resolves only its own. The server refuses to
// touch an intent that is still open (the update is live), and treats a
// missing intent as already resolved.
type ResolveIntent struct {
	File   FileRef
	Stripe int64
	Owner  uint64
	Data   []byte
}

// MarkDirty records, on a surviving server, which regions a degraded write
// could not deliver to the dead server — the dirty-region log that lets
// recovery resynchronize only what the outage actually touched instead of
// rebuilding every store. Clients send it to the dead server's two
// neighbours (its mirror partners) before issuing the degraded write
// itself, so by the time any data lands the damage is already durably
// logged.
//
// Units are stripe units owned by Dead whose in-place bytes it missed;
// Mirrors are units whose RAID1 mirror copy on Dead is stale; Stripes are
// parity stripes owned by Dead whose parity it missed; Overflow marks that
// Dead's overflow or overflow-mirror store diverged (extents appended or
// invalidated while it was away) and must be reconciled wholesale.
//
// Epoch identifies the outage: each client mints a random non-zero epoch at
// its first degraded write per (file, dead server) and stamps every record
// with it. A replica that lost its log (blank replacement disk) comes back
// with a different epoch set than its peer, which resync detects and
// answers with a full rebuild instead of a silent under-resync. An Epoch of
// zero is the poison value: the sending client could not replicate some
// earlier record, so the log must be considered incomplete.
type MarkDirty struct {
	File     FileRef
	Dead     uint16
	Epoch    uint64
	Units    []int64
	Mirrors  []int64
	Stripes  []int64
	Overflow bool
}

// DirtyDump asks a surviving server for its dirty-region log of (File,
// Dead). Resync snapshots both replicas' logs, replays the union, and
// clears exactly what it read.
type DirtyDump struct {
	File FileRef
	Dead uint16
}

// DirtyItem is one logged dirty region (a unit or stripe index) together
// with the generation at which it was last re-dirtied. Generations make the
// dump→replay→clear cycle race-free under concurrent foreground writes: a
// ClearDirty removes an item only if its generation still matches the dump,
// so a region re-dirtied after the snapshot survives the clear and is
// replayed in the next round.
type DirtyItem struct {
	Val int64
	Gen uint64
}

// DirtyDumpResp is a surviving server's dirty-region log for one (file,
// dead server) pair. An empty Epochs means the server holds no log at all.
type DirtyDumpResp struct {
	Epochs      []uint64
	Units       []DirtyItem
	Mirrors     []DirtyItem
	Stripes     []DirtyItem
	Overflow    bool
	OverflowGen uint64
}

// ClearDirty retires replayed entries from a dirty-region log. With All
// set the whole (File, Dead) log is dropped regardless of generations —
// the full-rebuild fallback's unconditional clear. Otherwise each listed
// item is removed only if its generation still matches, and the Overflow
// flag only if OverflowGen matches; entries re-dirtied since the dump stay
// logged. A log whose last entry is cleared disappears, epochs included.
type ClearDirty struct {
	File        FileRef
	Dead        uint16
	All         bool
	Units       []DirtyItem
	Mirrors     []DirtyItem
	Stripes     []DirtyItem
	Overflow    bool
	OverflowGen uint64
}

// Health asks a server for a liveness/health report; the client's circuit
// breaker probes with it before re-admitting a server.
type Health struct{}

// HealthResp is the reply to Health.
type HealthResp struct {
	Index    uint16 // the server's position in the stripe layout
	Requests int64  // requests handled since startup
}

// WriteParity writes whole parity units of the listed stripes. With Unlock
// set it releases the parity locks taken by a prior locked ReadParity and
// Owner must carry that acquisition's token: the server only releases a lock
// held under the same token, and refuses the write outright when a non-zero
// token no longer holds it — the acquisition was canceled by UnlockParity
// after a client-side timeout, so this frame is a late ghost whose bytes
// could clobber parity now owned by another client's update. A zero Owner is
// the legacy tokenless protocol: the unlock applies only if the holder is
// also tokenless, and is otherwise a no-op.
type WriteParity struct {
	File    FileRef
	Stripes []int64
	Data    []byte
	Unlock  bool
	Owner   uint64
}

// WriteOverflow appends new data for the given logical extents into the
// overflow region (Mirror selects the overflow-mirror store) and records
// them in the overflow table.
type WriteOverflow struct {
	File    FileRef
	Extents []Span
	Data    []byte
	Mirror  bool
}

// InvalidateOverflow removes overflow-table coverage of the given spans;
// sent when a full-stripe write migrates data back to RAID5.
type InvalidateOverflow struct {
	File   FileRef
	Spans  []Span
	Mirror bool
}

// OverflowDump returns a server's entire overflow table and contents for a
// file; used by recovery and by storage accounting tests.
type OverflowDump struct {
	File   FileRef
	Mirror bool
}

// OverflowDumpResp carries the overflow extents, with Data holding the
// concatenation of each extent's bytes in order.
type OverflowDumpResp struct {
	Extents []Span
	Data    []byte
}

// Sync flushes a file's server-side stores to the modeled disk.
type Sync struct{ File FileRef }

// DropCaches empties the server's page cache (between experiment phases).
type DropCaches struct{}

// StorageStat reports the bytes stored for one file (or the whole disk when
// FileID is zero), broken down by store.
type StorageStat struct{ FileID uint64 }

// StorageStatResp is the reply to StorageStat. ByStore is indexed by the
// server store kinds: data, mirror, parity, overflow, overflow-mirror.
type StorageStatResp struct {
	Total   int64
	ByStore [5]int64
}

// RemoveFile deletes every local store of the file.
type RemoveFile struct{ File FileRef }

// CompactOverflow rewrites a file's overflow store (or its mirror) keeping
// only live extents, reclaiming the space of superseded and invalidated
// slots. It implements the storage-recovery process the paper sketches in
// Section 6.7.
type CompactOverflow struct {
	File   FileRef
	Mirror bool
}

// ChecksumRange asks an I/O server to compute CRC32C checksums over part of
// one of its local stores, so the integrity scrubber can cross-check
// redundant copies without shipping the data itself over the network.
//
// For the flat stores (data, mirror, parity) Off and Len address the local
// store file directly and one checksum per Chunk-sized piece is returned
// (the final piece may be short; Chunk <= 0 means one checksum for the whole
// range). For the overflow stores Off and Len select a logical file range
// and a single aggregate checksum is returned, computed over every live
// overflow extent intersecting the range — offset, length and contents, in
// table order — so equal sums mean both the table and the bytes agree.
type ChecksumRange struct {
	File  FileRef
	Store uint8 // store kind, StoreData..StoreOverflowMirror
	Off   int64
	Len   int64
	Chunk int64
}

// ChecksumRangeResp carries the checksums of one ChecksumRange request.
// Bytes is how many store bytes the server read to compute them, which the
// scrubber charges against its rate limit.
type ChecksumRangeResp struct {
	Sums  []uint32
	Bytes int64
}

// Create asks the manager to create a file with the given layout.
type Create struct {
	Name       string
	Servers    uint16
	StripeUnit uint32
	Scheme     Scheme
	// Parity is the per-stripe parity-unit count for ReedSolomon files
	// (zero for the other schemes).
	Parity uint8
}

// CreateResp returns the new file's reference.
type CreateResp struct{ Ref FileRef }

// Open looks a file up by name.
type Open struct{ Name string }

// OpenResp returns a file's reference and current logical size. While an
// online scheme migration is pinned, Mig carries the migration target's
// reference (the shadow layout being populated); Mig.ID == 0 means no
// migration is in progress. The field is appended to the message body, so
// it rides existing frames without a protocol version bump.
type OpenResp struct {
	Ref  FileRef
	Size int64
	Mig  FileRef
}

// SetSize raises the manager's recorded logical file size after a write.
// The manager keeps the maximum of all reported sizes.
type SetSize struct {
	ID   uint64
	Size int64
}

// Remove deletes a file's metadata at the manager.
type Remove struct{ Name string }

// SetScheme asks the manager to pin an online scheme migration for file ID:
// allocate a shadow file ID laid out with the new scheme/parity over the
// same servers and stripe unit, WAL-log the pin, and replicate it. Both
// layouts stay pinned until CommitScheme or AbortScheme, so a manager
// failover mid-migration resumes with the same pair rather than a torn
// state. Re-issuing SetScheme with the same target while a matching pin is
// live is idempotent and returns the existing shadow reference — the resume
// path after a client crash or an aborted copy pass.
type SetScheme struct {
	ID     uint64
	Scheme Scheme
	// Parity is the per-stripe parity-unit count for a ReedSolomon target
	// (zero applies the manager's default); other targets reject non-zero.
	Parity uint8
}

// SetSchemeResp returns the migration pair: the file's current (old)
// layout, the pinned shadow (new) layout, and the logical size at pin time.
type SetSchemeResp struct {
	Old  FileRef
	New  FileRef
	Size int64
}

// CommitScheme atomically cuts file ID over to its pinned migration target.
// NewID fences the commit to the pin it belongs to: a commit carrying a
// stale shadow ID (the pin was aborted and re-created in between) is
// refused rather than cutting over to a half-copied layout. After commit
// the name resolves to the new layout and the old ID's stores are dead.
type CommitScheme struct {
	ID    uint64
	NewID uint64
}

// AbortScheme drops file ID's pinned migration target (fenced by NewID,
// like CommitScheme). The shadow layout's stores are dead after the abort;
// the file keeps its original layout.
type AbortScheme struct {
	ID    uint64
	NewID uint64
}

// List enumerates file names.
type List struct{}

// ListResp is the reply to List.
type ListResp struct{ Names []string }

// ServerList asks the manager for the I/O server addresses.
type ServerList struct{}

// ServerListResp is the reply to ServerList.
type ServerListResp struct{ Addrs []string }

// Stats asks a server (an I/O daemon or the manager) for its observability
// snapshot: per-RPC-kind latency histograms and store-level counters.
type Stats struct{}

// StatKV is one named counter or gauge value in a StatsResp.
type StatKV struct {
	Name  string
	Value int64
}

// HistDump is one latency histogram in a StatsResp: power-of-two buckets
// (Buckets[i] counts observations of bit length i nanoseconds), with Sum and
// Max in nanoseconds. Zero-count trailing buckets may be elided; decoders
// must accept any length up to the current bucket count.
type HistDump struct {
	Name    string
	Count   int64
	Sum     int64
	Max     int64
	Buckets []int64
}

// StatsResp is a server's observability snapshot. Index is the server's
// stripe position (or 0xFFFF for the manager); Requests is its lifetime
// request count.
type StatsResp struct {
	Index    uint16
	Requests int64
	Counters []StatKV
	Gauges   []StatKV
	Hists    []HistDump
}

// MetaReplicate ships one committed metadata operation (or a full snapshot)
// from the primary manager to a standby. Epoch is the sender's primary
// epoch: a standby whose epoch is newer refuses the record with
// CodeStaleEpoch — the fence that stops a deposed primary's stragglers —
// and a standby whose epoch is older adopts the sender's.
//
// For an operation record, Seq is the record's log sequence number and Rec
// its WAL payload; the standby applies it only if Seq is exactly one past
// its own (a duplicate is acknowledged idempotently, a gap is refused so
// the primary falls back to a snapshot). With Snap set, Rec instead carries
// a full metadata snapshot through Seq, which the standby installs
// wholesale — the catch-up path for a freshly (re)started standby.
type MetaReplicate struct {
	Epoch uint64
	Seq   uint64
	Snap  bool
	Rec   []byte
}

// MetaReplicateResp acknowledges a MetaReplicate: the standby's epoch and
// the log sequence number it has durably applied through. The primary uses
// Seq to track per-standby replication lag.
type MetaReplicateResp struct {
	Epoch uint64
	Seq   uint64
}

// MetaStatus asks a manager for its replication role and progress. Unlike
// the mutation RPCs it is answered by primaries and standbys alike — it is
// the probe promotion logic and `csar stats` use to map the manager group.
type MetaStatus struct{}

// MetaStatusResp reports a manager's view of itself: its configured index
// in the manager group, the primary epoch it is at, whether it currently
// holds the primary role, the log sequence number it has applied through,
// the number of files in its namespace, and its WAL size in bytes.
type MetaStatusResp struct {
	Index    uint16
	Epoch    uint64
	Seq      uint64
	Primary  bool
	Files    int64
	WALBytes int64
}

// --- encoding ---

// Encoder appends fixed-width little-endian values to a buffer.
//
// When split is set (frame marshaling), the first large Bytes payload is
// not copied into Buf: its length prefix is appended and the slice itself
// is parked in Payload for the transport to scatter-gather onto the wire.
type Encoder struct {
	Buf []byte

	split   bool
	splitAt int    // len(Buf) right after the split point
	Payload []byte // payload passed by reference instead of appended
}

func (e *Encoder) U8(v uint8) { e.Buf = append(e.Buf, v) }

func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

func (e *Encoder) U16(v uint16) { e.Buf = binary.LittleEndian.AppendUint16(e.Buf, v) }
func (e *Encoder) U32(v uint32) { e.Buf = binary.LittleEndian.AppendUint32(e.Buf, v) }
func (e *Encoder) U64(v uint64) { e.Buf = binary.LittleEndian.AppendUint64(e.Buf, v) }
func (e *Encoder) I64(v int64)  { e.U64(uint64(v)) }

func (e *Encoder) Str(s string) {
	e.U32(uint32(len(s)))
	e.Buf = append(e.Buf, s...)
}

func (e *Encoder) Bytes(b []byte) {
	e.U32(uint32(len(b)))
	if e.split && e.Payload == nil && len(b) >= payloadSplitMin {
		e.Payload = b
		e.splitAt = len(e.Buf)
		return
	}
	e.Buf = append(e.Buf, b...)
}

func (e *Encoder) Spans(s []Span) {
	e.U32(uint32(len(s)))
	for _, sp := range s {
		e.I64(sp.Off)
		e.I64(sp.Len)
	}
}

func (e *Encoder) U32s(v []uint32) {
	e.U32(uint32(len(v)))
	for _, x := range v {
		e.U32(x)
	}
}

func (e *Encoder) I64s(v []int64) {
	e.U32(uint32(len(v)))
	for _, x := range v {
		e.I64(x)
	}
}

func (e *Encoder) U64s(v []uint64) {
	e.U32(uint32(len(v)))
	for _, x := range v {
		e.U64(x)
	}
}

func (e *Encoder) DirtyItems(v []DirtyItem) {
	e.U32(uint32(len(v)))
	for _, it := range v {
		e.I64(it.Val)
		e.U64(it.Gen)
	}
}

func (e *Encoder) Strs(v []string) {
	e.U32(uint32(len(v)))
	for _, s := range v {
		e.Str(s)
	}
}

func (e *Encoder) FileRef(r FileRef) {
	e.U64(r.ID)
	e.U16(r.Servers)
	e.U32(r.StripeUnit)
	e.U8(uint8(r.Scheme))
	e.U8(r.Parity)
}

// Decoder reads fixed-width little-endian values from a buffer, latching
// the first error.
type Decoder struct {
	Buf []byte
	off int
	err error
}

// Err returns the first decoding error encountered, if any.
func (d *Decoder) Err() error { return d.err }

func (d *Decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("wire: truncated message (offset %d of %d)", d.off, len(d.Buf))
	}
}

func (d *Decoder) take(n int) []byte {
	if d.err != nil || n < 0 || d.off+n > len(d.Buf) {
		d.fail()
		return nil
	}
	b := d.Buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *Decoder) Bool() bool { return d.U8() != 0 }

func (d *Decoder) U16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *Decoder) I64() int64 { return int64(d.U64()) }

func (d *Decoder) Str() string {
	n := int(d.U32())
	b := d.take(n)
	return string(b)
}

func (d *Decoder) BytesCopy() []byte {
	n := int(d.U32())
	b := d.take(n)
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

func (d *Decoder) Spans() []Span {
	n := int(d.U32())
	if d.err != nil || n < 0 || n > len(d.Buf) {
		d.fail()
		return nil
	}
	s := make([]Span, n)
	for i := range s {
		s[i].Off = d.I64()
		s[i].Len = d.I64()
	}
	return s
}

func (d *Decoder) U32sDec() []uint32 {
	n := int(d.U32())
	if d.err != nil || n < 0 || n > len(d.Buf) {
		d.fail()
		return nil
	}
	v := make([]uint32, n)
	for i := range v {
		v[i] = d.U32()
	}
	return v
}

func (d *Decoder) U64sDec() []uint64 {
	n := int(d.U32())
	if d.err != nil || n < 0 || n > len(d.Buf) {
		d.fail()
		return nil
	}
	v := make([]uint64, n)
	for i := range v {
		v[i] = d.U64()
	}
	return v
}

func (d *Decoder) DirtyItemsDec() []DirtyItem {
	n := int(d.U32())
	if d.err != nil || n < 0 || n > len(d.Buf) {
		d.fail()
		return nil
	}
	v := make([]DirtyItem, n)
	for i := range v {
		v[i].Val = d.I64()
		v[i].Gen = d.U64()
	}
	return v
}

func (d *Decoder) I64sDec() []int64 {
	n := int(d.U32())
	if d.err != nil || n < 0 || n > len(d.Buf) {
		d.fail()
		return nil
	}
	v := make([]int64, n)
	for i := range v {
		v[i] = d.I64()
	}
	return v
}

func (d *Decoder) Strs() []string {
	n := int(d.U32())
	if d.err != nil || n < 0 || n > len(d.Buf) {
		d.fail()
		return nil
	}
	v := make([]string, n)
	for i := range v {
		v[i] = d.Str()
	}
	return v
}

func (d *Decoder) FileRef() FileRef {
	var r FileRef
	r.ID = d.U64()
	r.Servers = d.U16()
	r.StripeUnit = d.U32()
	r.Scheme = Scheme(d.U8())
	r.Parity = d.U8()
	return r
}
