package wire

import (
	"fmt"
	"testing"
)

// Allocation budgets for the hot-path messages. These are regression
// budgets, not aspirations: marshal must stay allocation-free in steady
// state (pooled head buffer, payload carried by reference), and unmarshal
// is bounded by the struct plus its deep-copied slices. A change that
// exceeds a budget is a hot-path regression and fails CI.
const (
	// Steady state is 1 (the Encoder escaping through the Msg interface);
	// one extra tolerates a GC-emptied pool mid-measurement.
	marshalFrameBudget = 2
	unmarshalBudget    = 6
)

func hotMessages() map[string]Msg {
	payload := make([]byte, 64<<10)
	for i := range payload {
		payload[i] = byte(i)
	}
	file := FileRef{ID: 7, Servers: 6, StripeUnit: 64 << 10, Scheme: Raid5}
	return map[string]Msg{
		"WriteData": &WriteData{
			File:  file,
			Spans: []Span{{Off: 0, Len: 64 << 10}, {Off: 384 << 10, Len: 64 << 10}},
			Data:  payload,
		},
		"Read": &Read{
			File:  file,
			Spans: []Span{{Off: 0, Len: 64 << 10}, {Off: 384 << 10, Len: 64 << 10}},
		},
		"ReadResp": &ReadResp{Data: payload},
		"WriteParity": &WriteParity{
			File:    file,
			Stripes: []int64{0},
			Data:    payload,
			Unlock:  true,
			Owner:   42,
		},
	}
}

// TestMarshalFrameAllocs pins the steady-state allocation count of framing
// a hot-path message: the head buffer comes from the pool and the bulk
// payload rides by reference, so the whole marshal should not allocate.
func TestMarshalFrameAllocs(t *testing.T) {
	for name, m := range hotMessages() {
		t.Run(name, func(t *testing.T) {
			// Warm the pool outside the measurement.
			fr := MarshalFrame(m, 0)
			fr.Free()
			avg := testing.AllocsPerRun(200, func() {
				fr := MarshalFrame(m, 0)
				fr.Free()
			})
			t.Logf("MarshalFrame(%s): %.2f allocs/op", name, avg)
			if avg > marshalFrameBudget {
				t.Fatalf("MarshalFrame(%s) allocates %.2f/op, budget %d", name, avg, marshalFrameBudget)
			}
		})
	}
}

// TestUnmarshalAllocs pins the decode side: one struct, one deep copy per
// slice field, nothing else.
func TestUnmarshalAllocs(t *testing.T) {
	for name, m := range hotMessages() {
		t.Run(name, func(t *testing.T) {
			body := Marshal(m)
			avg := testing.AllocsPerRun(200, func() {
				if _, err := Unmarshal(body); err != nil {
					panic(err)
				}
			})
			t.Logf("Unmarshal(%s): %.2f allocs/op", name, avg)
			if avg > unmarshalBudget {
				t.Fatalf("Unmarshal(%s) allocates %.2f/op, budget %d", name, avg, unmarshalBudget)
			}
		})
	}
}

// TestMarshalFrameMatchesMarshal proves the scatter-gather encoding is
// byte-identical to the contiguous one for every hot message — the frame
// split is a transport optimization, not a wire-format change.
func TestMarshalFrameMatchesMarshal(t *testing.T) {
	for name, m := range hotMessages() {
		fr := MarshalFrame(m, 0)
		got := append(append([]byte{}, fr.Head()...), fr.Payload...)
		want := Marshal(m)
		if fmt.Sprintf("%x", got) != fmt.Sprintf("%x", want) {
			t.Fatalf("%s: frame bytes differ from contiguous marshal", name)
		}
		fr.Free()
	}
}
