package meta

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"csar/internal/wire"
)

// buildWAL runs a canonical mutation sequence against a fresh persistent
// manager and returns its paths plus the marshaled pre-crash state.
func buildWAL(t *testing.T) (snapPath string, walPath string, wantState []byte, m *Manager) {
	t.Helper()
	snapPath = filepath.Join(t.TempDir(), "meta.json")
	m, err := NewPersistent(8, []string{"a:1", "b:2"}, snapPath)
	if err != nil {
		t.Fatal(err)
	}
	cr := call(t, m, &wire.Create{Name: "alpha", Servers: 4, StripeUnit: 64, Scheme: wire.Raid5}).(*wire.CreateResp)
	call(t, m, &wire.SetSize{ID: cr.Ref.ID, Size: 4096})
	call(t, m, &wire.Create{Name: "beta", Servers: 2, StripeUnit: 128, Scheme: wire.Raid1})
	call(t, m, &wire.Create{Name: "gamma", Servers: 6, StripeUnit: 64, Scheme: wire.ReedSolomon, Parity: 2})
	call(t, m, &wire.Remove{Name: "beta"})
	call(t, m, &wire.SetSize{ID: cr.Ref.ID, Size: 65536})

	m.mu.Lock()
	wantState, err = m.marshalSnapshotLocked()
	m.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	return snapPath, snapPath + ".wal", wantState, m
}

// stateBytes marshals a manager's namespace deterministically.
func stateBytes(t *testing.T, m *Manager) []byte {
	t.Helper()
	m.mu.Lock()
	defer m.mu.Unlock()
	b, err := m.marshalSnapshotLocked()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// frameEnds parses a WAL image and returns the byte offset of the end of
// each complete frame — the offsets at which a truncation loses nothing.
func frameEnds(t *testing.T, data []byte) []int {
	t.Helper()
	var ends []int
	for off := 0; off+walFrameHeader <= len(data); {
		n := int(binary.LittleEndian.Uint32(data[off:]))
		if off+walFrameHeader+n > len(data) {
			t.Fatalf("test WAL image itself is torn at %d", off)
		}
		off += walFrameHeader + n
		ends = append(ends, off)
	}
	return ends
}

// TestWALTornTailEveryOffset is the torn-tail property test: for a log
// truncated at EVERY byte offset, recovery must never fail or panic, must
// recover exactly the records whose frames survived whole, and must leave
// the file truncated to that valid prefix so the next append is clean.
func TestWALTornTailEveryOffset(t *testing.T) {
	_, walPath, _, src := buildWAL(t)
	src.Close()
	image, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(image) == 0 {
		t.Fatal("test needs a non-empty WAL")
	}
	ends := frameEnds(t, image)

	dir := t.TempDir()
	for off := 0; off <= len(image); off++ {
		p := filepath.Join(dir, "torn.wal")
		if err := os.WriteFile(p, image[:off], 0o644); err != nil {
			t.Fatal(err)
		}
		w, recs, err := openWAL(p)
		if err != nil {
			t.Fatalf("offset %d: recovery failed: %v", off, err)
		}
		// Complete frames up to the truncation point survive; everything
		// after the last complete frame is discarded.
		wantRecs, wantSize := 0, 0
		for i, e := range ends {
			if e <= off {
				wantRecs, wantSize = i+1, e
			}
		}
		if len(recs) != wantRecs {
			t.Fatalf("offset %d: recovered %d records, want %d", off, len(recs), wantRecs)
		}
		if w.size != int64(wantSize) {
			t.Fatalf("offset %d: post-recovery size %d, want %d", off, w.size, wantSize)
		}
		if st, err := os.Stat(p); err != nil || st.Size() != int64(wantSize) {
			t.Fatalf("offset %d: file not truncated to valid prefix (%v, %v)", off, st.Size(), err)
		}
		// Sequence numbers are the contiguous prefix 1..wantRecs.
		for i, rec := range recs {
			if rec.seq != uint64(i+1) {
				t.Fatalf("offset %d: record %d has seq %d", off, i, rec.seq)
			}
		}
		w.Close()
	}
}

// TestWALCorruptTailBitFlip covers the CRC half of torn-tail recovery: a
// flipped bit inside the final record's payload discards exactly that
// record.
func TestWALCorruptTailBitFlip(t *testing.T) {
	_, walPath, _, src := buildWAL(t)
	src.Close()
	image, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	ends := frameEnds(t, image)
	if len(ends) < 2 {
		t.Fatal("test needs at least two records")
	}
	corrupt := append([]byte(nil), image...)
	corrupt[len(corrupt)-1] ^= 0x40 // inside the final record's payload

	p := filepath.Join(t.TempDir(), "bitrot.wal")
	if err := os.WriteFile(p, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	w, recs, err := openWAL(p)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if len(recs) != len(ends)-1 {
		t.Fatalf("recovered %d records, want %d (corrupt final dropped)", len(recs), len(ends)-1)
	}
	if w.size != int64(ends[len(ends)-2]) {
		t.Fatalf("size %d, want %d", w.size, ends[len(ends)-2])
	}
}

// TestWALReplayByteIdenticalState is the replay acceptance test: a manager
// restarted from snapshot + WAL — including one whose log has a torn final
// record — reproduces byte-identical namespace state to the pre-crash
// snapshot.
func TestWALReplayByteIdenticalState(t *testing.T) {
	snapPath, walPath, want, src := buildWAL(t)
	src.Close()

	m2, err := NewPersistent(8, []string{"a:1", "b:2"}, snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if got := stateBytes(t, m2); !bytes.Equal(got, want) {
		t.Fatalf("replayed state differs from pre-crash state:\n got: %s\nwant: %s", got, want)
	}
	m2.Close()

	// Now tear the final record (simulate a crash mid-append of an op that
	// was never acknowledged) and add it back torn: state must equal the
	// pre-crash state MINUS that unacknowledged final op.
	image, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	ends := frameEnds(t, image)
	cut := (ends[len(ends)-2] + ends[len(ends)-1]) / 2 // mid-final-frame
	if err := os.WriteFile(walPath, image[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	m3, err := NewPersistent(8, []string{"a:1", "b:2"}, snapPath)
	if err != nil {
		t.Fatal(err)
	}
	defer m3.Close()
	// The torn record was the final SetSize(65536); the recovered state is
	// exactly the canonical sequence without it.
	or := call(t, m3, &wire.Open{Name: "alpha"}).(*wire.OpenResp)
	if or.Size != 4096 {
		t.Fatalf("size after torn-tail replay = %d, want 4096 (torn op dropped)", or.Size)
	}
	// And the recovered prefix state round-trips byte-identically through
	// another restart (replay is deterministic).
	want3 := stateBytes(t, m3)
	m3.Close()
	m4, err := NewPersistent(8, []string{"a:1", "b:2"}, snapPath)
	if err != nil {
		t.Fatal(err)
	}
	defer m4.Close()
	if got := stateBytes(t, m4); !bytes.Equal(got, want3) {
		t.Fatal("replay of recovered prefix is not deterministic")
	}
}

// TestWALCrashMidCompaction covers the compaction crash window: the
// snapshot has been rewritten (covering every logged op) but the crash hits
// before the log truncation. Replay must skip every record the snapshot
// already covers and reproduce identical state.
func TestWALCrashMidCompaction(t *testing.T) {
	snapPath, walPath, want, src := buildWAL(t)
	// Write the compaction snapshot but "crash" before wal.reset.
	src.mu.Lock()
	if err := src.save(); err != nil {
		src.mu.Unlock()
		t.Fatal(err)
	}
	src.mu.Unlock()
	src.Close()
	if st, err := os.Stat(walPath); err != nil || st.Size() == 0 {
		t.Fatalf("precondition: WAL should still hold records (%v, %v)", st, err)
	}

	m2, err := NewPersistent(8, []string{"a:1", "b:2"}, snapPath)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if got := stateBytes(t, m2); !bytes.Equal(got, want) {
		t.Fatalf("state after crash-mid-compaction restart differs:\n got: %s\nwant: %s", got, want)
	}
	// No double-apply artifacts: exactly the two surviving names.
	lr := call(t, m2, &wire.List{}).(*wire.ListResp)
	if len(lr.Names) != 2 || lr.Names[0] != "alpha" || lr.Names[1] != "gamma" {
		t.Fatalf("names after restart = %v", lr.Names)
	}
	// New mutations append cleanly after the recovered state.
	cr := call(t, m2, &wire.Create{Name: "delta", Servers: 2, StripeUnit: 64, Scheme: wire.Raid0}).(*wire.CreateResp)
	if cr.Ref.ID == 0 {
		t.Fatal("bad post-recovery create")
	}
}

// TestWALCompactionTriggersAndRecovers drives enough mutations through a
// tiny compaction threshold that the log is snapshotted-and-truncated many
// times, then restarts and checks nothing was lost.
func TestWALCompactionTriggersAndRecovers(t *testing.T) {
	snapPath := filepath.Join(t.TempDir(), "meta.json")
	m, err := NewPersistent(8, nil, snapPath)
	if err != nil {
		t.Fatal(err)
	}
	m.SetWALCompactBytes(1) // every commit compacts
	cr := call(t, m, &wire.Create{Name: "f", Servers: 2, StripeUnit: 64, Scheme: wire.Raid0}).(*wire.CreateResp)
	for i := 1; i <= 50; i++ {
		call(t, m, &wire.SetSize{ID: cr.Ref.ID, Size: int64(i * 100)})
	}
	if n := m.obs.Snapshot().Counter("meta_compactions"); n == 0 {
		t.Fatal("compaction never triggered")
	}
	want := stateBytes(t, m)
	m.Close()
	if st, err := os.Stat(snapPath + ".wal"); err != nil || st.Size() != 0 {
		t.Fatalf("WAL not empty after threshold-1 compaction (%v, %v)", st, err)
	}
	m2, err := NewPersistent(8, nil, snapPath)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if got := stateBytes(t, m2); !bytes.Equal(got, want) {
		t.Fatal("state lost across compactions + restart")
	}
	or := call(t, m2, &wire.Open{Name: "f"}).(*wire.OpenResp)
	if or.Size != 5000 {
		t.Fatalf("size = %d, want 5000", or.Size)
	}
}
