package meta

import (
	"strings"
	"testing"

	"csar/internal/wire"
)

func call(t *testing.T, m *Manager, msg wire.Msg) wire.Msg {
	t.Helper()
	resp, err := m.Handle(msg)
	if err != nil {
		t.Fatalf("%T: %v", msg, err)
	}
	return resp
}

func TestCreateOpenLifecycle(t *testing.T) {
	m := New(8, nil)
	cr := call(t, m, &wire.Create{Name: "a", Servers: 4, StripeUnit: 64, Scheme: wire.Raid5}).(*wire.CreateResp)
	if cr.Ref.ID == 0 || cr.Ref.Servers != 4 || cr.Ref.Scheme != wire.Raid5 {
		t.Fatalf("ref = %+v", cr.Ref)
	}
	or := call(t, m, &wire.Open{Name: "a"}).(*wire.OpenResp)
	if or.Ref != cr.Ref || or.Size != 0 {
		t.Fatalf("open = %+v", or)
	}
	// IDs are unique and increasing.
	cr2 := call(t, m, &wire.Create{Name: "b", Servers: 4, StripeUnit: 64, Scheme: wire.Raid0}).(*wire.CreateResp)
	if cr2.Ref.ID == cr.Ref.ID {
		t.Fatal("duplicate file IDs")
	}
}

func TestCreateValidation(t *testing.T) {
	m := New(4, nil)
	cases := []wire.Create{
		{Name: "", Servers: 2, StripeUnit: 64, Scheme: wire.Raid0},     // empty name
		{Name: "x", Servers: 0, StripeUnit: 64, Scheme: wire.Raid0},    // no servers
		{Name: "x", Servers: 2, StripeUnit: 0, Scheme: wire.Raid0},     // no stripe unit
		{Name: "x", Servers: 2, StripeUnit: 64, Scheme: wire.Raid5},    // parity needs 3
		{Name: "x", Servers: 2, StripeUnit: 64, Scheme: wire.Hybrid},   // parity needs 3
		{Name: "x", Servers: 9, StripeUnit: 64, Scheme: wire.Raid0},    // exceeds cluster
		{Name: "x", Servers: 3, StripeUnit: 64, Scheme: wire.Raid5NPC}, // ok (control)
		{Name: "x2", Servers: 2, StripeUnit: 64, Scheme: wire.Raid1},   // ok (control)
		{Name: "x3", Servers: 1, StripeUnit: 64, Scheme: wire.Raid0},   // ok (control)
	}
	for i, c := range cases {
		_, err := m.Handle(&c)
		wantErr := i < 6
		if wantErr && err == nil {
			t.Errorf("case %d (%+v): accepted", i, c)
		}
		if !wantErr && err != nil {
			t.Errorf("case %d (%+v): rejected: %v", i, c, err)
		}
	}
}

func TestDuplicateCreate(t *testing.T) {
	m := New(4, nil)
	call(t, m, &wire.Create{Name: "a", Servers: 2, StripeUnit: 64, Scheme: wire.Raid0})
	if _, err := m.Handle(&wire.Create{Name: "a", Servers: 2, StripeUnit: 64, Scheme: wire.Raid0}); err == nil {
		t.Fatal("duplicate create accepted")
	}
}

func TestSetSizeMaxSemantics(t *testing.T) {
	m := New(4, nil)
	cr := call(t, m, &wire.Create{Name: "a", Servers: 2, StripeUnit: 64, Scheme: wire.Raid0}).(*wire.CreateResp)
	call(t, m, &wire.SetSize{ID: cr.Ref.ID, Size: 100})
	call(t, m, &wire.SetSize{ID: cr.Ref.ID, Size: 50}) // lower report ignored
	or := call(t, m, &wire.Open{Name: "a"}).(*wire.OpenResp)
	if or.Size != 100 {
		t.Fatalf("size = %d, want 100 (max of reports)", or.Size)
	}
	if _, err := m.Handle(&wire.SetSize{ID: 999, Size: 1}); err == nil {
		t.Fatal("SetSize for unknown id accepted")
	}
}

func TestRemoveAndList(t *testing.T) {
	m := New(4, nil)
	call(t, m, &wire.Create{Name: "b", Servers: 2, StripeUnit: 64, Scheme: wire.Raid0})
	call(t, m, &wire.Create{Name: "a", Servers: 2, StripeUnit: 64, Scheme: wire.Raid0})
	lr := call(t, m, &wire.List{}).(*wire.ListResp)
	if len(lr.Names) != 2 || lr.Names[0] != "a" || lr.Names[1] != "b" {
		t.Fatalf("list = %v (want sorted)", lr.Names)
	}
	call(t, m, &wire.Remove{Name: "a"})
	if _, err := m.Handle(&wire.Open{Name: "a"}); err == nil {
		t.Fatal("open after remove succeeded")
	}
	if _, err := m.Handle(&wire.Remove{Name: "a"}); err == nil {
		t.Fatal("double remove succeeded")
	}
}

func TestServerList(t *testing.T) {
	addrs := []string{"h1:1", "h2:2"}
	m := New(2, addrs)
	sl := call(t, m, &wire.ServerList{}).(*wire.ServerListResp)
	if strings.Join(sl.Addrs, ",") != "h1:1,h2:2" {
		t.Fatalf("addrs = %v", sl.Addrs)
	}
	// The response is a copy; mutating it does not affect the manager.
	sl.Addrs[0] = "evil"
	sl2 := call(t, m, &wire.ServerList{}).(*wire.ServerListResp)
	if sl2.Addrs[0] != "h1:1" {
		t.Fatal("server list aliased internal state")
	}
}

func TestUnsupportedMessage(t *testing.T) {
	m := New(2, nil)
	if _, err := m.Handle(&wire.ReadResp{}); err == nil {
		t.Fatal("unsupported message accepted")
	}
}

func TestPing(t *testing.T) {
	m := New(2, nil)
	if _, ok := call(t, m, &wire.Ping{}).(*wire.OK); !ok {
		t.Fatal("ping did not return OK")
	}
}
