package meta

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"csar/internal/wire"
)

// snapshot is the on-disk metadata format (JSON for inspectability).
type snapshot struct {
	NextID uint64         `json:"next_id"`
	Files  []snapshotFile `json:"files"`
}

type snapshotFile struct {
	Name       string `json:"name"`
	ID         uint64 `json:"id"`
	Servers    uint16 `json:"servers"`
	StripeUnit uint32 `json:"stripe_unit"`
	Scheme     uint8  `json:"scheme"`
	Parity     uint8  `json:"parity,omitempty"`
	Size       int64  `json:"size"`
}

// NewPersistent creates a manager whose metadata survives restarts: state
// is loaded from path if it exists and re-written (atomically, via a temp
// file and rename) after every metadata mutation. PVFS's mgr keeps its
// metadata in files the same way.
func NewPersistent(serverCount int, serverAddrs []string, path string) (*Manager, error) {
	m := New(serverCount, serverAddrs)
	m.persistPath = path
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return m, nil
	}
	if err != nil {
		return nil, fmt.Errorf("meta: reading snapshot: %w", err)
	}
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("meta: corrupt snapshot %s: %w", path, err)
	}
	m.nextID = snap.NextID
	if m.nextID == 0 {
		m.nextID = 1
	}
	for _, sf := range snap.Files {
		fm := &fileMeta{
			name: sf.Name,
			ref: wire.FileRef{
				ID:         sf.ID,
				Servers:    sf.Servers,
				StripeUnit: sf.StripeUnit,
				Scheme:     wire.Scheme(sf.Scheme),
				Parity:     sf.Parity,
			},
			size: sf.Size,
		}
		m.byName[fm.name] = fm
		m.byID[fm.ref.ID] = fm
	}
	return m, nil
}

// save writes the snapshot atomically. Caller holds m.mu.
func (m *Manager) save() error {
	if m.persistPath == "" {
		return nil
	}
	snap := snapshot{NextID: m.nextID}
	for _, fm := range m.byName {
		snap.Files = append(snap.Files, snapshotFile{
			Name:       fm.name,
			ID:         fm.ref.ID,
			Servers:    fm.ref.Servers,
			StripeUnit: fm.ref.StripeUnit,
			Scheme:     uint8(fm.ref.Scheme),
			Parity:     fm.ref.Parity,
			Size:       fm.size,
		})
	}
	data, err := json.MarshalIndent(&snap, "", "  ")
	if err != nil {
		return err
	}
	// Write-fsync-rename: the temp file's bytes must be durable before the
	// rename publishes them, or a crash could leave the (durable) rename
	// pointing at (lost) content — the metadata flavor of the write hole.
	tmp := m.persistPath + ".tmp"
	tf, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := tf.Write(data); err != nil {
		tf.Close()
		return err
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		return err
	}
	if err := tf.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, m.persistPath); err != nil {
		return err
	}
	// Durability of the rename itself.
	if dir, err := os.Open(filepath.Dir(m.persistPath)); err == nil {
		dir.Sync() //nolint:errcheck
		dir.Close()
	}
	return nil
}
