package meta

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"csar/internal/wire"
)

// snapshot is the on-disk metadata format (JSON for inspectability). Epoch
// and Seq record the primary epoch and last operation sequence number the
// snapshot covers: WAL replay skips records at or below Seq, so a crash
// between writing the snapshot and truncating the log re-applies nothing.
type snapshot struct {
	Epoch  uint64         `json:"epoch"`
	Seq    uint64         `json:"seq"`
	NextID uint64         `json:"next_id"`
	Files  []snapshotFile `json:"files"`
}

type snapshotFile struct {
	Name       string `json:"name"`
	ID         uint64 `json:"id"`
	Servers    uint16 `json:"servers"`
	StripeUnit uint32 `json:"stripe_unit"`
	Scheme     uint8  `json:"scheme"`
	Parity     uint8  `json:"parity,omitempty"`
	Size       int64  `json:"size"`
	// In-flight scheme migration pin. The shadow layout shares the file's
	// server set and stripe unit, so only its identity and target scheme
	// are recorded.
	MigID     uint64 `json:"mig_id,omitempty"`
	MigScheme uint8  `json:"mig_scheme,omitempty"`
	MigParity uint8  `json:"mig_parity,omitempty"`
}

// NewPersistent creates a manager whose metadata survives restarts: state
// is the last snapshot at path plus the replay of the write-ahead log at
// path+".wal". Mutations append (fsynced) to the log; the snapshot is only
// rewritten when the log passes the compaction threshold, so the per-
// mutation cost is one sequential append instead of a full state rewrite.
func NewPersistent(serverCount int, serverAddrs []string, path string) (*Manager, error) {
	m := New(serverCount, serverAddrs)
	m.persistPath = path

	data, err := os.ReadFile(path)
	switch {
	case os.IsNotExist(err):
	case err != nil:
		return nil, fmt.Errorf("meta: reading snapshot: %w", err)
	default:
		var snap snapshot
		if err := json.Unmarshal(data, &snap); err != nil {
			return nil, fmt.Errorf("meta: corrupt snapshot %s: %w", path, err)
		}
		m.installSnapshotLocked(&snap)
	}

	w, recs, err := openWAL(path + ".wal")
	if err != nil {
		return nil, err
	}
	m.wal = w
	for _, rec := range recs {
		// Records the snapshot already covers are replay noise from a crash
		// mid-compaction; skip them. Epoch records and the rest re-apply
		// idempotently in log order.
		if rec.seq <= m.seq {
			continue
		}
		m.applyRecLocked(rec)
	}
	return m, nil
}

// snapshotLocked captures the manager's state as a snapshot with files
// sorted by ID. The ordering matters: marshaled snapshots must be
// byte-identical for identical namespace state (map iteration is not), so
// a replica rebuilt from WAL replay can be diffed against the pre-crash
// snapshot and replication snapshots are deterministic. Caller holds m.mu.
func (m *Manager) snapshotLocked() *snapshot {
	snap := &snapshot{Epoch: m.epoch, Seq: m.seq, NextID: m.nextID}
	for _, fm := range m.byName {
		snap.Files = append(snap.Files, snapshotFile{
			Name:       fm.name,
			ID:         fm.ref.ID,
			Servers:    fm.ref.Servers,
			StripeUnit: fm.ref.StripeUnit,
			Scheme:     uint8(fm.ref.Scheme),
			Parity:     fm.ref.Parity,
			Size:       fm.size,
			MigID:      fm.mig.ID,
			MigScheme:  uint8(fm.mig.Scheme),
			MigParity:  fm.mig.Parity,
		})
	}
	sort.Slice(snap.Files, func(i, j int) bool { return snap.Files[i].ID < snap.Files[j].ID })
	return snap
}

// marshalSnapshotLocked serializes the deterministic snapshot form (also
// the payload of a MetaReplicate{Snap} catch-up transfer). Caller holds m.mu.
func (m *Manager) marshalSnapshotLocked() ([]byte, error) {
	return json.MarshalIndent(m.snapshotLocked(), "", "  ")
}

// installSnapshotLocked replaces the manager's namespace, epoch and
// sequence state with the snapshot's. Caller holds m.mu (or is still
// constructing the manager).
func (m *Manager) installSnapshotLocked(snap *snapshot) {
	m.epoch = snap.Epoch
	if m.epoch == 0 {
		m.epoch = 1 // pre-HA snapshots carry no epoch
	}
	m.seq = snap.Seq
	m.nextID = snap.NextID
	if m.nextID == 0 {
		m.nextID = 1
	}
	m.byName = make(map[string]*fileMeta, len(snap.Files))
	m.byID = make(map[uint64]*fileMeta, len(snap.Files))
	for _, sf := range snap.Files {
		fm := &fileMeta{
			name: sf.Name,
			ref: wire.FileRef{
				ID:         sf.ID,
				Servers:    sf.Servers,
				StripeUnit: sf.StripeUnit,
				Scheme:     wire.Scheme(sf.Scheme),
				Parity:     sf.Parity,
			},
			size: sf.Size,
		}
		if sf.MigID != 0 {
			fm.mig = wire.FileRef{
				ID:         sf.MigID,
				Servers:    sf.Servers,
				StripeUnit: sf.StripeUnit,
				Scheme:     wire.Scheme(sf.MigScheme),
				Parity:     sf.MigParity,
			}
		}
		m.byName[fm.name] = fm
		m.byID[fm.ref.ID] = fm
	}
}

// save writes the snapshot atomically. Caller holds m.mu.
func (m *Manager) save() error {
	if m.persistPath == "" {
		return nil
	}
	data, err := m.marshalSnapshotLocked()
	if err != nil {
		return err
	}
	// Write-fsync-rename: the temp file's bytes must be durable before the
	// rename publishes them, or a crash could leave the (durable) rename
	// pointing at (lost) content — the metadata flavor of the write hole.
	tmp := m.persistPath + ".tmp"
	tf, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := tf.Write(data); err != nil {
		tf.Close()
		return err
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		return err
	}
	if err := tf.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, m.persistPath); err != nil {
		return err
	}
	// Durability of the rename itself: until the directory entry is synced,
	// a power cut can resurrect the old snapshot — which is only safe if we
	// know the sync happened everywhere we assume it did, so failures are
	// reported, not swallowed.
	if err := syncDir(m.persistPath); err != nil {
		return fmt.Errorf("meta: syncing snapshot rename: %w", err)
	}
	return nil
}

// syncDir fsyncs the directory containing path, making a rename within it
// durable.
func syncDir(path string) error {
	dir, err := os.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	if err := dir.Sync(); err != nil {
		dir.Close()
		return err
	}
	return dir.Close()
}

// compactLocked rewrites the snapshot and empties the log once the log
// outgrows the threshold. Both steps are individually atomic and the
// snapshot records its covered sequence number, so a crash between them
// only costs replaying records the snapshot already holds. Caller holds the
// commit path.
func (m *Manager) compactLocked() error {
	if m.wal == nil || m.walCompact <= 0 || m.wal.size < m.walCompact {
		return nil
	}
	if err := m.save(); err != nil {
		return fmt.Errorf("meta: compaction snapshot: %w", err)
	}
	if err := m.wal.reset(); err != nil {
		return err
	}
	m.obs.Counter("meta_compactions").Add(1)
	return nil
}
