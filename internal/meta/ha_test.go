package meta

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync/atomic"
	"testing"

	"csar/internal/wire"
)

// gatedPeer calls straight into a peer manager's Handle, with a kill
// switch: while down, calls fail with an unavailability error, exactly like
// a dead TCP peer.
type gatedPeer struct {
	m    *Manager
	down atomic.Bool
}

func (g *gatedPeer) Call(msg wire.Msg) (wire.Msg, error) {
	if g.down.Load() {
		return nil, fmt.Errorf("peer down: %w", wire.ErrUnavailable)
	}
	return g.m.Handle(msg)
}

// group wires n in-memory managers into a replicated group with manager 0
// primary. It returns the managers and the gates controlling reachability
// of each (gates[i] guards every path INTO manager i).
func group(t *testing.T, n int) ([]*Manager, []*gatedPeer) {
	t.Helper()
	mgrs := make([]*Manager, n)
	gates := make([]*gatedPeer, n)
	for i := range mgrs {
		mgrs[i] = New(8, nil)
		gates[i] = &gatedPeer{m: mgrs[i]}
	}
	for i, m := range mgrs {
		peers := make([]Caller, n)
		for j := range peers {
			if j != i {
				peers[j] = gates[j]
			}
		}
		m.SetCluster(i, peers, i != 0)
	}
	return mgrs, gates
}

func mgrStatus(t *testing.T, m *Manager) *wire.MetaStatusResp {
	t.Helper()
	return call(t, m, &wire.MetaStatus{}).(*wire.MetaStatusResp)
}

func TestReplicationShipsEveryOp(t *testing.T) {
	mgrs, _ := group(t, 3)
	cr := call(t, mgrs[0], &wire.Create{Name: "a", Servers: 4, StripeUnit: 64, Scheme: wire.Raid5}).(*wire.CreateResp)
	call(t, mgrs[0], &wire.SetSize{ID: cr.Ref.ID, Size: 777})
	call(t, mgrs[0], &wire.Create{Name: "b", Servers: 2, StripeUnit: 64, Scheme: wire.Raid0})
	call(t, mgrs[0], &wire.Remove{Name: "b"})

	st0 := mgrStatus(t, mgrs[0])
	for i := 1; i < 3; i++ {
		st := mgrStatus(t, mgrs[i])
		if st.Seq != st0.Seq || st.Epoch != st0.Epoch {
			t.Fatalf("standby %d at (epoch %d, seq %d), primary at (%d, %d)",
				i, st.Epoch, st.Seq, st0.Epoch, st0.Seq)
		}
		if st.Files != 1 {
			t.Fatalf("standby %d holds %d files, want 1", i, st.Files)
		}
		if st.Primary {
			t.Fatalf("standby %d claims primary", i)
		}
	}
	// Standby namespaces are byte-identical to the primary's.
	want := stateBytes(t, mgrs[0])
	for i := 1; i < 3; i++ {
		if got := stateBytes(t, mgrs[i]); string(got) != string(want) {
			t.Fatalf("standby %d state diverged:\n got: %s\nwant: %s", i, got, want)
		}
	}
	// In-sync group: zero replication lag on the primary.
	for _, kv := range mgrs[0].obs.Snapshot().Gauges {
		if kv.Name == "meta_replication_lag" && kv.Value != 0 {
			t.Fatalf("replication lag = %d, want 0", kv.Value)
		}
	}
}

func TestStandbyRefusesNamespaceOps(t *testing.T) {
	mgrs, _ := group(t, 2)
	call(t, mgrs[0], &wire.Create{Name: "a", Servers: 2, StripeUnit: 64, Scheme: wire.Raid0})

	standby := mgrs[1]
	refused := []wire.Msg{
		&wire.Create{Name: "x", Servers: 2, StripeUnit: 64, Scheme: wire.Raid0},
		&wire.Open{Name: "a"},
		&wire.SetSize{ID: 1, Size: 5},
		&wire.Remove{Name: "a"},
		&wire.List{},
	}
	for _, msg := range refused {
		_, err := standby.Handle(msg)
		if !errors.Is(err, wire.ErrNotPrimary) {
			t.Fatalf("%T on standby: err = %v, want ErrNotPrimary", msg, err)
		}
	}
	// Liveness, topology and status probes are served in any role.
	call(t, standby, &wire.Ping{})
	call(t, standby, &wire.ServerList{})
	call(t, standby, &wire.MetaStatus{})
	call(t, standby, &wire.Stats{})
}

func TestPromotionFencesOldEpoch(t *testing.T) {
	mgrs, _ := group(t, 2)
	call(t, mgrs[0], &wire.Create{Name: "a", Servers: 2, StripeUnit: 64, Scheme: wire.Raid0})

	if err := mgrs[1].Promote(); err != nil {
		t.Fatal(err)
	}
	st1 := mgrStatus(t, mgrs[1])
	if !st1.Primary || st1.Epoch != 2 {
		t.Fatalf("promoted standby status = %+v", st1)
	}
	// The promotion shipped the new epoch to manager 0, deposing it.
	st0 := mgrStatus(t, mgrs[0])
	if st0.Primary {
		t.Fatal("old primary not deposed by promotion")
	}
	if st0.Epoch != 2 {
		t.Fatalf("old primary epoch = %d, want 2", st0.Epoch)
	}
	// It keeps the namespace (caught up via snapshot on the epoch bump).
	if st0.Seq != st1.Seq || st0.Files != 1 {
		t.Fatalf("deposed manager state = %+v, want seq %d / 1 file", st0, st1.Seq)
	}

	// A straggler record from the dead epoch is refused with the fencing
	// error on both managers.
	for i, m := range mgrs {
		_, err := m.Handle(&wire.MetaReplicate{Epoch: 1, Seq: st1.Seq + 1, Rec: encodeRec(walRec{op: opEpoch, epoch: 1, seq: st1.Seq + 1})})
		if !errors.Is(err, wire.ErrStaleEpoch) {
			t.Fatalf("manager %d: stale-epoch straggler err = %v, want ErrStaleEpoch", i, err)
		}
	}
	// Deposed manager refuses client mutations as a standby now.
	_, err := mgrs[0].Handle(&wire.Create{Name: "z", Servers: 2, StripeUnit: 64, Scheme: wire.Raid0})
	if !errors.Is(err, wire.ErrNotPrimary) {
		t.Fatalf("deposed primary accepted a create: %v", err)
	}
	// The new primary serves mutations.
	call(t, mgrs[1], &wire.Create{Name: "b", Servers: 2, StripeUnit: 64, Scheme: wire.Raid0})
}

func TestDeposedPrimaryFencedOnShip(t *testing.T) {
	mgrs, gates := group(t, 2)
	call(t, mgrs[0], &wire.Create{Name: "a", Servers: 2, StripeUnit: 64, Scheme: wire.Raid0})

	// Partition manager 0, then promote manager 1: the opEpoch ship to 0
	// fails silently, so 0 still believes it is primary at epoch 1.
	gates[0].down.Store(true)
	if err := mgrs[1].Promote(); err != nil {
		t.Fatal(err)
	}
	if st := mgrStatus(t, mgrs[0]); !st.Primary || st.Epoch != 1 {
		t.Fatalf("precondition: old primary should still think it leads (%+v)", st)
	}

	// Heal the partition. The old primary's next mutation ships to the new
	// primary, which fences it — the client sees the fencing error, not an
	// acknowledgment, and the old primary demotes itself.
	gates[0].down.Store(false)
	_, err := mgrs[0].Handle(&wire.Create{Name: "split", Servers: 2, StripeUnit: 64, Scheme: wire.Raid0})
	if !errors.Is(err, wire.ErrStaleEpoch) {
		t.Fatalf("deposed primary's create err = %v, want ErrStaleEpoch", err)
	}
	if st := mgrStatus(t, mgrs[0]); st.Primary {
		t.Fatal("old primary did not demote after being fenced")
	}
	// The fenced create must not exist on the new primary.
	if _, err := mgrs[1].Handle(&wire.Open{Name: "split"}); err == nil {
		t.Fatal("fenced create leaked to the new primary")
	}
}

func TestLaggingStandbyCatchesUpViaSnapshot(t *testing.T) {
	mgrs, gates := group(t, 2)
	call(t, mgrs[0], &wire.Create{Name: "a", Servers: 2, StripeUnit: 64, Scheme: wire.Raid0})

	// Standby misses a batch of ops.
	gates[1].down.Store(true)
	for i := 0; i < 5; i++ {
		call(t, mgrs[0], &wire.Create{Name: fmt.Sprintf("miss%d", i), Servers: 2, StripeUnit: 64, Scheme: wire.Raid0})
	}
	gates[1].down.Store(false)

	// The next shipped op reveals the gap; the primary sends a snapshot.
	call(t, mgrs[0], &wire.Create{Name: "b", Servers: 2, StripeUnit: 64, Scheme: wire.Raid0})
	st0, st1 := mgrStatus(t, mgrs[0]), mgrStatus(t, mgrs[1])
	if st1.Seq != st0.Seq || st1.Files != st0.Files {
		t.Fatalf("standby did not catch up: standby %+v, primary %+v", st1, st0)
	}
	if string(stateBytes(t, mgrs[1])) != string(stateBytes(t, mgrs[0])) {
		t.Fatal("standby state differs after snapshot catch-up")
	}
	if n := mgrs[0].obs.Snapshot().Counter("meta_snapshots_sent"); n == 0 {
		t.Fatal("catch-up did not use the snapshot path")
	}
}

func TestTryPromoteRespectsLowerIndex(t *testing.T) {
	mgrs, gates := group(t, 3)

	// Manager 2 must not promote while 0 (or 1) answers probes.
	if won, err := mgrs[2].TryPromote(); err != nil || won {
		t.Fatalf("TryPromote with live lower-index peers = (%v, %v)", won, err)
	}
	// Kill 0: manager 1 is now the lowest reachable index and wins ...
	gates[0].down.Store(true)
	if won, err := mgrs[1].TryPromote(); err != nil || !won {
		t.Fatalf("manager 1 TryPromote = (%v, %v), want promotion", won, err)
	}
	// ... and manager 2 still must not (1 answers its probe).
	if won, err := mgrs[2].TryPromote(); err != nil || won {
		t.Fatalf("manager 2 TryPromote after 1's promotion = (%v, %v)", won, err)
	}
	if st := mgrStatus(t, mgrs[1]); !st.Primary || st.Epoch != 2 {
		t.Fatalf("manager 1 status after promotion = %+v", st)
	}
	// A promoted manager's TryPromote is a no-op success.
	if won, err := mgrs[1].TryPromote(); err != nil || !won {
		t.Fatalf("primary's TryPromote = (%v, %v)", won, err)
	}
}

// TestReplicatedOpsSurviveStandbyRestart: a persistent standby logs
// replicated records to its own WAL, so a restart reproduces the replicated
// namespace from disk.
func TestReplicatedOpsSurviveStandbyRestart(t *testing.T) {
	dir := t.TempDir()
	p0 := New(8, nil)
	p1, err := NewPersistent(8, nil, filepath.Join(dir, "m1.json"))
	if err != nil {
		t.Fatal(err)
	}
	g1 := &gatedPeer{m: p1}
	p0.SetCluster(0, []Caller{nil, g1}, false)
	p1.SetCluster(1, []Caller{&gatedPeer{m: p0}, nil}, true)

	call(t, p0, &wire.Create{Name: "durable", Servers: 2, StripeUnit: 64, Scheme: wire.Raid0})
	call(t, p0, &wire.SetSize{ID: 1, Size: 4242})
	want := stateBytes(t, p1)
	p1.Close()

	p1b, err := NewPersistent(8, nil, filepath.Join(dir, "m1.json"))
	if err != nil {
		t.Fatal(err)
	}
	defer p1b.Close()
	if got := stateBytes(t, p1b); string(got) != string(want) {
		t.Fatalf("restarted standby state:\n got: %s\nwant: %s", got, want)
	}
	st := mgrStatus(t, p1b)
	if st.Seq != 2 || st.Files != 1 {
		t.Fatalf("restarted standby status = %+v", st)
	}
}

// TestStatsRPCServesManagerSnapshot: the manager answers Stats with the
// 0xFFFF index marker and its replication counters/gauges.
func TestStatsRPCServesManagerSnapshot(t *testing.T) {
	mgrs, _ := group(t, 2)
	call(t, mgrs[0], &wire.Create{Name: "a", Servers: 2, StripeUnit: 64, Scheme: wire.Raid0})

	sr := call(t, mgrs[0], &wire.Stats{}).(*wire.StatsResp)
	if sr.Index != 0xFFFF {
		t.Fatalf("manager stats index = %#x, want 0xFFFF", sr.Index)
	}
	if sr.Requests == 0 {
		t.Fatal("manager stats requests = 0")
	}
	gauges := map[string]int64{}
	for _, kv := range sr.Gauges {
		gauges[kv.Name] = kv.Value
	}
	if gauges["meta_epoch"] != 1 || gauges["meta_primary"] != 1 || gauges["meta_files"] != 1 {
		t.Fatalf("manager gauges = %v", gauges)
	}
	counters := map[string]int64{}
	for _, kv := range sr.Counters {
		counters[kv.Name] = kv.Value
	}
	if counters["meta_replication_ships"] == 0 {
		t.Fatalf("manager counters = %v", counters)
	}
	// Per-RPC-kind histograms ride along.
	found := false
	for _, h := range sr.Hists {
		if h.Name == "rpc_create" && h.Count > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("rpc_create histogram missing from manager stats")
	}
}
