package meta

import (
	"os"
	"path/filepath"
	"testing"

	"csar/internal/wire"
)

func TestPersistenceAcrossRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "meta.json")
	m1, err := NewPersistent(4, []string{"a:1"}, path)
	if err != nil {
		t.Fatal(err)
	}
	cr := call(t, m1, &wire.Create{Name: "f", Servers: 3, StripeUnit: 64, Scheme: wire.Hybrid}).(*wire.CreateResp)
	call(t, m1, &wire.SetSize{ID: cr.Ref.ID, Size: 12345})
	call(t, m1, &wire.Create{Name: "g", Servers: 2, StripeUnit: 128, Scheme: wire.Raid1})
	call(t, m1, &wire.Remove{Name: "g"})

	// "Restart" the manager from the snapshot.
	m2, err := NewPersistent(4, []string{"a:1"}, path)
	if err != nil {
		t.Fatal(err)
	}
	or := call(t, m2, &wire.Open{Name: "f"}).(*wire.OpenResp)
	if or.Ref != cr.Ref {
		t.Fatalf("ref after restart = %+v, want %+v", or.Ref, cr.Ref)
	}
	if or.Size != 12345 {
		t.Fatalf("size after restart = %d", or.Size)
	}
	if _, err := m2.Handle(&wire.Open{Name: "g"}); err == nil {
		t.Fatal("removed file resurrected by restart")
	}
	// New IDs must not collide with pre-restart ones.
	cr2 := call(t, m2, &wire.Create{Name: "h", Servers: 2, StripeUnit: 64, Scheme: wire.Raid0}).(*wire.CreateResp)
	if cr2.Ref.ID == cr.Ref.ID {
		t.Fatal("file ID reused after restart")
	}
}

func TestPersistenceCorruptSnapshotRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "meta.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewPersistent(4, nil, path); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
}

func TestPersistenceMissingSnapshotStartsEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "meta.json")
	m, err := NewPersistent(4, nil, path)
	if err != nil {
		t.Fatal(err)
	}
	lr := call(t, m, &wire.List{}).(*wire.ListResp)
	if len(lr.Names) != 0 {
		t.Fatalf("names = %v", lr.Names)
	}
}

func TestNonPersistentManagerUnaffected(t *testing.T) {
	m := New(4, nil)
	call(t, m, &wire.Create{Name: "x", Servers: 2, StripeUnit: 64, Scheme: wire.Raid0})
	// No snapshot path: nothing written anywhere, no errors.
}
