package meta

import (
	"path/filepath"
	"strings"
	"testing"

	"csar/internal/wire"
)

// Tests for the manager half of online scheme migration: pinning a shadow
// layout (SetScheme), the fenced cutover (CommitScheme) and discard
// (AbortScheme), idempotent resume semantics, and durability of a pin
// across a manager restart and across replication to a standby.

func TestSetSchemePinsShadowLayout(t *testing.T) {
	m := New(8, nil)
	cr := call(t, m, &wire.Create{Name: "f", Servers: 6, StripeUnit: 64, Scheme: wire.Hybrid}).(*wire.CreateResp)
	call(t, m, &wire.SetSize{ID: cr.Ref.ID, Size: 4096})

	sr := call(t, m, &wire.SetScheme{ID: cr.Ref.ID, Scheme: wire.ReedSolomon, Parity: 2}).(*wire.SetSchemeResp)
	if sr.Old != cr.Ref {
		t.Fatalf("old ref = %+v, want %+v", sr.Old, cr.Ref)
	}
	if sr.New.ID == cr.Ref.ID || sr.New.ID == 0 {
		t.Fatalf("shadow ID %d not fresh (live %d)", sr.New.ID, cr.Ref.ID)
	}
	if sr.New.Scheme != wire.ReedSolomon || sr.New.Parity != 2 {
		t.Fatalf("shadow scheme = %v/%d", sr.New.Scheme, sr.New.Parity)
	}
	if sr.New.Servers != cr.Ref.Servers || sr.New.StripeUnit != cr.Ref.StripeUnit {
		t.Fatalf("shadow layout changed width: %+v", sr.New)
	}
	if sr.Size != 4096 {
		t.Fatalf("size = %d", sr.Size)
	}

	// The pin is visible on Open, and the shadow ID is reserved: new
	// creates must not collide with it.
	or := call(t, m, &wire.Open{Name: "f"}).(*wire.OpenResp)
	if or.Mig != sr.New {
		t.Fatalf("open mig = %+v, want %+v", or.Mig, sr.New)
	}
	cr2 := call(t, m, &wire.Create{Name: "g", Servers: 2, StripeUnit: 64, Scheme: wire.Raid0}).(*wire.CreateResp)
	if cr2.Ref.ID == sr.New.ID {
		t.Fatal("shadow ID reissued to a new file")
	}

	// Re-issuing the same pin resumes it; a different target is refused
	// while one is pinned.
	sr2 := call(t, m, &wire.SetScheme{ID: cr.Ref.ID, Scheme: wire.ReedSolomon, Parity: 2}).(*wire.SetSchemeResp)
	if sr2.New != sr.New {
		t.Fatalf("resume returned %+v, want %+v", sr2.New, sr.New)
	}
	if _, err := m.Handle(&wire.SetScheme{ID: cr.Ref.ID, Scheme: wire.Raid5}); err == nil ||
		!strings.Contains(err.Error(), "already migrating") {
		t.Fatalf("conflicting pin: %v", err)
	}
}

func TestSetSchemeValidation(t *testing.T) {
	m := New(8, nil)
	cr := call(t, m, &wire.Create{Name: "f", Servers: 3, StripeUnit: 64, Scheme: wire.Raid5}).(*wire.CreateResp)
	cases := []wire.SetScheme{
		{ID: 999, Scheme: wire.Raid1},                          // no such file
		{ID: cr.Ref.ID, Scheme: wire.Raid5},                    // already that scheme
		{ID: cr.Ref.ID, Scheme: wire.Raid1, Parity: 1},         // parity on non-RS
		{ID: cr.Ref.ID, Scheme: wire.ReedSolomon, Parity: 200}, // parity too wide
	}
	for _, c := range cases {
		if _, err := m.Handle(&c); err == nil {
			t.Fatalf("SetScheme %+v accepted", c)
		}
	}
}

func TestCommitSchemeSwapsAndFences(t *testing.T) {
	m := New(8, nil)
	cr := call(t, m, &wire.Create{Name: "f", Servers: 4, StripeUnit: 64, Scheme: wire.Raid1}).(*wire.CreateResp)
	sr := call(t, m, &wire.SetScheme{ID: cr.Ref.ID, Scheme: wire.Raid5}).(*wire.SetSchemeResp)

	// A commit carrying the wrong shadow ID is a stale coordinator: fenced.
	if _, err := m.Handle(&wire.CommitScheme{ID: cr.Ref.ID, NewID: sr.New.ID + 7}); err == nil ||
		!strings.Contains(err.Error(), "stale scheme commit") {
		t.Fatalf("mismatched commit: %v", err)
	}

	call(t, m, &wire.CommitScheme{ID: cr.Ref.ID, NewID: sr.New.ID})
	or := call(t, m, &wire.Open{Name: "f"}).(*wire.OpenResp)
	if or.Ref != sr.New || or.Mig.ID != 0 {
		t.Fatalf("after commit: ref=%+v mig=%+v", or.Ref, or.Mig)
	}
	// The old ID no longer resolves; the new one does.
	if _, err := m.Handle(&wire.SetSize{ID: cr.Ref.ID, Size: 1}); err == nil {
		t.Fatal("old file ID still live after cutover")
	}
	call(t, m, &wire.SetSize{ID: sr.New.ID, Size: 1})

	// A retried commit after the swap is answered, not re-applied: the
	// retry addresses the old ID, which now maps to nothing, while the new
	// ID exists with no pin.
	call(t, m, &wire.CommitScheme{ID: cr.Ref.ID, NewID: sr.New.ID})
}

func TestAbortSchemeDropsPin(t *testing.T) {
	m := New(8, nil)
	cr := call(t, m, &wire.Create{Name: "f", Servers: 4, StripeUnit: 64, Scheme: wire.Raid1}).(*wire.CreateResp)
	sr := call(t, m, &wire.SetScheme{ID: cr.Ref.ID, Scheme: wire.Raid5}).(*wire.SetSchemeResp)

	if _, err := m.Handle(&wire.AbortScheme{ID: cr.Ref.ID, NewID: sr.New.ID + 1}); err == nil ||
		!strings.Contains(err.Error(), "stale scheme abort") {
		t.Fatalf("mismatched abort: %v", err)
	}
	call(t, m, &wire.AbortScheme{ID: cr.Ref.ID, NewID: sr.New.ID})
	if or := call(t, m, &wire.Open{Name: "f"}).(*wire.OpenResp); or.Mig.ID != 0 || or.Ref != cr.Ref {
		t.Fatalf("after abort: %+v", or)
	}
	// Duplicate abort: idempotent no-op.
	call(t, m, &wire.AbortScheme{ID: cr.Ref.ID, NewID: sr.New.ID})

	// A fresh pin after the abort gets a fresh shadow ID.
	sr2 := call(t, m, &wire.SetScheme{ID: cr.Ref.ID, Scheme: wire.Hybrid}).(*wire.SetSchemeResp)
	if sr2.New.ID == sr.New.ID {
		t.Fatal("aborted shadow ID reused")
	}
}

func TestMigrationPinSurvivesRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "meta.json")
	m1, err := NewPersistent(8, nil, path)
	if err != nil {
		t.Fatal(err)
	}
	cr := call(t, m1, &wire.Create{Name: "f", Servers: 6, StripeUnit: 64, Scheme: wire.Hybrid}).(*wire.CreateResp)
	sr := call(t, m1, &wire.SetScheme{ID: cr.Ref.ID, Scheme: wire.ReedSolomon, Parity: 2}).(*wire.SetSchemeResp)

	// Restart mid-migration: the pin must come back whole, and resuming it
	// must return the identical shadow layout.
	m2, err := NewPersistent(8, nil, path)
	if err != nil {
		t.Fatal(err)
	}
	or := call(t, m2, &wire.Open{Name: "f"}).(*wire.OpenResp)
	if or.Mig != sr.New {
		t.Fatalf("pin after restart = %+v, want %+v", or.Mig, sr.New)
	}
	sr2 := call(t, m2, &wire.SetScheme{ID: cr.Ref.ID, Scheme: wire.ReedSolomon, Parity: 2}).(*wire.SetSchemeResp)
	if sr2.New != sr.New {
		t.Fatalf("resume after restart = %+v, want %+v", sr2.New, sr.New)
	}
	// And no new file may be issued the pinned shadow's ID.
	if cr2 := call(t, m2, &wire.Create{Name: "g", Servers: 2, StripeUnit: 64, Scheme: wire.Raid0}).(*wire.CreateResp); cr2.Ref.ID <= sr.New.ID {
		t.Fatalf("ID %d issued at or below pinned shadow %d", cr2.Ref.ID, sr.New.ID)
	}

	// Commit, restart again: the swap is durable.
	call(t, m2, &wire.CommitScheme{ID: cr.Ref.ID, NewID: sr.New.ID})
	m3, err := NewPersistent(8, nil, path)
	if err != nil {
		t.Fatal(err)
	}
	or3 := call(t, m3, &wire.Open{Name: "f"}).(*wire.OpenResp)
	if or3.Ref != sr.New || or3.Mig.ID != 0 {
		t.Fatalf("after commit+restart: %+v", or3)
	}
}

func TestMigrationReplicatesToStandby(t *testing.T) {
	mgrs, _ := group(t, 2)
	cr := call(t, mgrs[0], &wire.Create{Name: "f", Servers: 4, StripeUnit: 64, Scheme: wire.Raid1}).(*wire.CreateResp)
	sr := call(t, mgrs[0], &wire.SetScheme{ID: cr.Ref.ID, Scheme: wire.Raid5}).(*wire.SetSchemeResp)

	// Promote the standby: the pin survived the primary's loss.
	if err := mgrs[1].Promote(); err != nil {
		t.Fatal(err)
	}
	or := call(t, mgrs[1], &wire.Open{Name: "f"}).(*wire.OpenResp)
	if or.Mig != sr.New {
		t.Fatalf("standby pin = %+v, want %+v", or.Mig, sr.New)
	}
	// And the promoted manager can finish the cutover.
	call(t, mgrs[1], &wire.CommitScheme{ID: cr.Ref.ID, NewID: sr.New.ID})
	if or2 := call(t, mgrs[1], &wire.Open{Name: "f"}).(*wire.OpenResp); or2.Ref != sr.New {
		t.Fatalf("promoted cutover: %+v", or2)
	}
}
