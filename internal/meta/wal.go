// The manager's write-ahead operation log. Every metadata mutation is
// encoded as one record, CRC-framed, appended and fsynced before the
// mutation is acknowledged — so a crash loses at most an unacknowledged
// tail, never an acknowledged operation. The same record encoding rides
// MetaReplicate frames to standby managers: the log is the replication
// stream, persisted.
//
// On-disk frame format, little-endian:
//
//	u32 payload length | u32 CRC32C(payload) | payload
//
// Record payload format (wire.Encoder conventions):
//
//	u8 op | u64 epoch | u64 seq | op-specific fields
//
// Recovery scans frames from the start and truncates the file at the first
// incomplete or corrupt frame (the torn tail a crash mid-append leaves), so
// replay always sees a valid prefix of acknowledged operations. Compaction
// rewrites the snapshot (which records the sequence number it covers) and
// atomically replaces the log with an empty one; replay skips records the
// snapshot already covers, so a crash between the two steps is harmless.

package meta

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"csar/internal/wire"
)

// WAL operation kinds. Appended only — old logs must replay forever.
const (
	opCreate uint8 = iota + 1
	opSetSize
	opRemove
	// opEpoch records a primary-epoch bump (a promotion). It mutates no
	// files but must be durable: a restarted manager may never again accept
	// an epoch older than one it acknowledged.
	opEpoch
	// Online scheme migration: opMigBegin pins a shadow layout (a fresh
	// file ID carrying the target scheme) next to the file's live ref,
	// opMigCommit atomically swaps the ref for the shadow, opMigAbort drops
	// the pin. Commit and abort carry the shadow ID as a fence so a stale
	// coordinator cannot conclude someone else's migration.
	opMigBegin
	opMigCommit
	opMigAbort
)

// walRec is one logged metadata operation. Only the fields of its op kind
// are meaningful.
type walRec struct {
	op    uint8
	epoch uint64
	seq   uint64

	name  string       // opCreate, opRemove
	ref   wire.FileRef // opCreate; opMigBegin (the shadow layout)
	id    uint64       // opSetSize; opMig* (the file's live ID)
	size  int64        // opSetSize
	newID uint64       // opMigCommit, opMigAbort (shadow-ID fence)
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// encodeRec serializes a record payload (the part that is CRC-protected on
// disk and shipped verbatim in MetaReplicate.Rec).
func encodeRec(rec walRec) []byte {
	e := wire.Encoder{Buf: make([]byte, 0, 64)}
	e.U8(rec.op)
	e.U64(rec.epoch)
	e.U64(rec.seq)
	switch rec.op {
	case opCreate:
		e.Str(rec.name)
		e.FileRef(rec.ref)
	case opSetSize:
		e.U64(rec.id)
		e.I64(rec.size)
	case opRemove:
		e.Str(rec.name)
	case opEpoch:
	case opMigBegin:
		e.U64(rec.id)
		e.FileRef(rec.ref)
	case opMigCommit, opMigAbort:
		e.U64(rec.id)
		e.U64(rec.newID)
	}
	return e.Buf
}

// decodeRec parses a record payload. Unknown op kinds and truncated fields
// are errors: a corrupt-but-CRC-valid record cannot happen, so either the
// peer speaks a newer protocol or the bytes did not come from encodeRec.
func decodeRec(b []byte) (walRec, error) {
	d := wire.Decoder{Buf: b}
	var rec walRec
	rec.op = d.U8()
	rec.epoch = d.U64()
	rec.seq = d.U64()
	switch rec.op {
	case opCreate:
		rec.name = d.Str()
		rec.ref = d.FileRef()
	case opSetSize:
		rec.id = d.U64()
		rec.size = d.I64()
	case opRemove:
		rec.name = d.Str()
	case opEpoch:
	case opMigBegin:
		rec.id = d.U64()
		rec.ref = d.FileRef()
	case opMigCommit, opMigAbort:
		rec.id = d.U64()
		rec.newID = d.U64()
	default:
		return rec, fmt.Errorf("meta: unknown wal op %d", rec.op)
	}
	if err := d.Err(); err != nil {
		return rec, fmt.Errorf("meta: truncated wal record: %w", err)
	}
	return rec, nil
}

// wal is the open write-ahead log file. All methods are called with the
// owning Manager's commit path serialized, so it needs no lock of its own.
type wal struct {
	path string
	f    *os.File
	size int64
}

const walFrameHeader = 8 // u32 length + u32 CRC32C

// openWAL opens (creating if absent) the log at path, replays its valid
// prefix, and truncates any torn tail so the next append lands on a clean
// frame boundary. The returned records are in append order.
func openWAL(path string) (*wal, []walRec, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("meta: opening wal: %w", err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("meta: reading wal: %w", err)
	}

	var recs []walRec
	valid := 0 // byte offset of the end of the last valid frame
	for off := 0; ; {
		if len(data)-off < walFrameHeader {
			break
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if n < 0 || off+walFrameHeader+n > len(data) {
			break // frame extends past EOF: torn tail
		}
		payload := data[off+walFrameHeader : off+walFrameHeader+n]
		if crc32.Checksum(payload, castagnoli) != sum {
			break // bit rot or a torn header: stop at the last good record
		}
		rec, err := decodeRec(payload)
		if err != nil {
			break // CRC-valid but unparseable: treat like a torn tail
		}
		recs = append(recs, rec)
		off += walFrameHeader + n
		valid = off
	}

	if valid < len(data) {
		// Drop the torn tail so the next append starts a clean frame. The
		// truncation must be durable before any new record lands after it.
		if err := f.Truncate(int64(valid)); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("meta: truncating torn wal tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("meta: syncing wal truncation: %w", err)
		}
	}
	if _, err := f.Seek(int64(valid), io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("meta: seeking wal: %w", err)
	}
	return &wal{path: path, f: f, size: int64(valid)}, recs, nil
}

// append frames, writes and fsyncs one record. On any error the log file's
// state is unknown, but the frame CRC makes a partial write indistinguishable
// from a crash: recovery truncates it.
func (w *wal) append(rec walRec) error {
	payload := encodeRec(rec)
	frame := make([]byte, walFrameHeader, walFrameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, castagnoli))
	frame = append(frame, payload...)
	if _, err := w.f.Write(frame); err != nil {
		return fmt.Errorf("meta: appending wal record: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("meta: syncing wal append: %w", err)
	}
	w.size += int64(len(frame))
	return nil
}

// reset atomically replaces the log with an empty one — the compaction step
// after the snapshot has durably recorded everything the log held. A fresh
// empty file is fsynced and renamed over the log, and the directory entry
// itself is fsynced (a rename alone does not survive a power cut on most
// filesystems), so a crash anywhere leaves either the full old log or a
// clean empty one.
func (w *wal) reset() error {
	tmp := w.path + ".tmp"
	tf, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("meta: creating wal replacement: %w", err)
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		return fmt.Errorf("meta: syncing wal replacement: %w", err)
	}
	if err := tf.Close(); err != nil {
		return fmt.Errorf("meta: closing wal replacement: %w", err)
	}
	if err := os.Rename(tmp, w.path); err != nil {
		return fmt.Errorf("meta: renaming wal replacement: %w", err)
	}
	if err := syncDir(w.path); err != nil {
		return fmt.Errorf("meta: syncing wal rename: %w", err)
	}
	// The old inode stays open in w.f; reopen the new one for appends.
	f, err := os.OpenFile(w.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("meta: reopening wal: %w", err)
	}
	w.f.Close()
	w.f = f
	w.size = 0
	return nil
}

// Close releases the log file handle.
func (w *wal) Close() error { return w.f.Close() }
