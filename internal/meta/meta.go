// Package meta implements the CSAR manager: the PVFS "mgr" process that
// owns file metadata — names, stripe layouts, redundancy schemes and
// logical sizes — and hands clients the layout they need to talk to the
// I/O servers directly. The manager is never on the data path.
package meta

import (
	"fmt"
	"sort"
	"sync"

	"csar/internal/raid"
	"csar/internal/wire"
)

// Manager is the metadata server. Drive it through Handle (an rpc.Handler).
type Manager struct {
	serverCount int
	serverAddrs []string
	persistPath string // optional metadata snapshot file

	mu     sync.Mutex
	nextID uint64
	byName map[string]*fileMeta
	byID   map[uint64]*fileMeta
}

type fileMeta struct {
	name string
	ref  wire.FileRef
	size int64
}

// New creates a manager for a cluster of serverCount I/O servers.
// serverAddrs optionally carries the servers' dialable addresses (TCP
// deployments); it may be nil for in-process clusters.
func New(serverCount int, serverAddrs []string) *Manager {
	return &Manager{
		serverCount: serverCount,
		serverAddrs: serverAddrs,
		nextID:      1,
		byName:      make(map[string]*fileMeta),
		byID:        make(map[uint64]*fileMeta),
	}
}

// Handle dispatches one request. It satisfies rpc.Handler.
func (m *Manager) Handle(req wire.Msg) (wire.Msg, error) {
	switch r := req.(type) {
	case *wire.Ping:
		return &wire.OK{}, nil
	case *wire.Create:
		return m.create(r)
	case *wire.Open:
		return m.open(r.Name)
	case *wire.SetSize:
		return m.setSize(r)
	case *wire.Remove:
		return m.remove(r.Name)
	case *wire.List:
		return m.list()
	case *wire.ServerList:
		return &wire.ServerListResp{Addrs: append([]string(nil), m.serverAddrs...)}, nil
	default:
		return nil, fmt.Errorf("meta: unsupported request %T", req)
	}
}

func (m *Manager) create(r *wire.Create) (wire.Msg, error) {
	parity := uint8(0)
	if r.Scheme == wire.ReedSolomon {
		// RS(k, m): m parity units per stripe, defaulting to double-fault
		// tolerance. The count is fixed at create time and rides the FileRef.
		parity = r.Parity
		if parity == 0 {
			parity = 2
		}
		if int(parity) > int(r.Servers)-2 {
			return nil, fmt.Errorf("meta: rs with %d parity units needs at least %d servers, got %d",
				parity, int(parity)+2, r.Servers)
		}
	} else if r.Parity != 0 {
		return nil, fmt.Errorf("meta: scheme %v does not take a parity-unit count", r.Scheme)
	}
	g := raid.Geometry{Servers: int(r.Servers), StripeUnit: int64(r.StripeUnit), ParityUnits: int(parity)}
	if r.Scheme.UsesParity() {
		if err := g.ValidateParity(); err != nil {
			return nil, err
		}
	} else {
		if err := g.Validate(); err != nil {
			return nil, err
		}
	}
	if r.Scheme == wire.Raid1 && g.Servers < 2 {
		return nil, fmt.Errorf("meta: raid1 needs at least 2 servers, got %d", g.Servers)
	}
	if g.Servers > m.serverCount {
		return nil, fmt.Errorf("meta: layout wants %d servers, cluster has %d", g.Servers, m.serverCount)
	}
	if r.Name == "" {
		return nil, fmt.Errorf("meta: empty file name")
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if _, exists := m.byName[r.Name]; exists {
		return nil, fmt.Errorf("meta: file %q already exists", r.Name)
	}
	fm := &fileMeta{
		name: r.Name,
		ref: wire.FileRef{
			ID:         m.nextID,
			Servers:    r.Servers,
			StripeUnit: r.StripeUnit,
			Scheme:     r.Scheme,
			Parity:     parity,
		},
	}
	m.nextID++
	m.byName[r.Name] = fm
	m.byID[fm.ref.ID] = fm
	if err := m.save(); err != nil {
		delete(m.byName, r.Name)
		delete(m.byID, fm.ref.ID)
		return nil, fmt.Errorf("meta: persisting create: %w", err)
	}
	return &wire.CreateResp{Ref: fm.ref}, nil
}

func (m *Manager) open(name string) (wire.Msg, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	fm := m.byName[name]
	if fm == nil {
		return nil, fmt.Errorf("meta: no such file %q", name)
	}
	return &wire.OpenResp{Ref: fm.ref, Size: fm.size}, nil
}

func (m *Manager) setSize(r *wire.SetSize) (wire.Msg, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	fm := m.byID[r.ID]
	if fm == nil {
		return nil, fmt.Errorf("meta: no such file id %d", r.ID)
	}
	if r.Size > fm.size {
		fm.size = r.Size
		if err := m.save(); err != nil {
			return nil, fmt.Errorf("meta: persisting size: %w", err)
		}
	}
	return &wire.OK{}, nil
}

func (m *Manager) remove(name string) (wire.Msg, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	fm := m.byName[name]
	if fm == nil {
		return nil, fmt.Errorf("meta: no such file %q", name)
	}
	delete(m.byName, name)
	delete(m.byID, fm.ref.ID)
	if err := m.save(); err != nil {
		return nil, fmt.Errorf("meta: persisting remove: %w", err)
	}
	return &wire.OK{}, nil
}

func (m *Manager) list() (wire.Msg, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.byName))
	for n := range m.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return &wire.ListResp{Names: names}, nil
}
