// Package meta implements the CSAR manager: the PVFS "mgr" process that
// owns file metadata — names, stripe layouts, redundancy schemes and
// logical sizes — and hands clients the layout they need to talk to the
// I/O servers directly. The manager is never on the data path.
//
// Managers run as a primary-backup group with epoch fencing (not
// consensus): one primary serves all metadata RPCs and synchronously ships
// every committed operation — the same record it just fsynced to its
// write-ahead log — to each reachable standby before acknowledging the
// client. A monotonically increasing primary epoch rides every replicated
// record; a manager refuses records from an older epoch, which fences a
// deposed primary's stragglers exactly like ErrLeaseExpired fences stale
// parity writes. Promotion is deterministic: the lowest-index manager that
// is still reachable wins the next epoch.
package meta

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"csar/internal/obs"
	"csar/internal/raid"
	"csar/internal/wire"
)

// Caller issues one RPC to a peer manager. TCPPeer implements it for real
// deployments; in-process tests pass the peer's Handle directly.
type Caller interface {
	Call(wire.Msg) (wire.Msg, error)
}

// defaultWALCompactBytes is the log size past which a commit triggers
// snapshot-and-truncate compaction.
const defaultWALCompactBytes = 256 << 10

// Manager is the metadata server. Drive it through Handle (an rpc.Handler).
type Manager struct {
	serverCount int
	serverAddrs []string
	persistPath string // optional metadata snapshot file ("" = in-memory)

	// shipMu serializes the commit path (apply → WAL append → ship to
	// standbys → acknowledge): replicated records must leave in sequence
	// order. Read-only requests take only mu, so they are not blocked by an
	// in-flight ship's network round trips.
	shipMu sync.Mutex

	mu      sync.Mutex
	primary bool
	index   int      // this manager's position in the group
	epoch   uint64   // current primary epoch
	seq     uint64   // last applied operation sequence number
	peers   []Caller // peer managers by group index; nil entries (incl. self) are skipped
	peerSeq []uint64 // last sequence number each peer acknowledged
	nextID  uint64
	byName  map[string]*fileMeta
	byID    map[uint64]*fileMeta

	wal        *wal
	walCompact int64

	obs      *obs.Registry
	requests atomic.Int64
}

type fileMeta struct {
	name string
	ref  wire.FileRef
	size int64
	// mig is the pinned shadow layout of an in-flight scheme migration
	// (zero ID = none): a fresh file ID carrying the target scheme on the
	// same server set and stripe unit. Both layouts stay pinned — shipped
	// to standbys and snapshotted — until the coordinator commits or
	// aborts, so a manager failover mid-migration loses nothing.
	mig wire.FileRef
}

// New creates a manager for a cluster of serverCount I/O servers.
// serverAddrs optionally carries the servers' dialable addresses (TCP
// deployments); it may be nil for in-process clusters. The manager starts
// as a single-member group: primary at epoch 1 with no peers. SetCluster
// joins it to a replicated group.
func New(serverCount int, serverAddrs []string) *Manager {
	m := &Manager{
		serverCount: serverCount,
		serverAddrs: serverAddrs,
		primary:     true,
		epoch:       1,
		nextID:      1,
		byName:      make(map[string]*fileMeta),
		byID:        make(map[uint64]*fileMeta),
		walCompact:  defaultWALCompactBytes,
		obs:         obs.NewRegistry(),
	}
	m.registerGauges()
	return m
}

// SetCluster joins the manager to a replicated group: its own index, the
// peer callers indexed by group position (the entry at index — and any
// other unreachable-by-construction slot — may be nil), and whether it
// starts as a standby. Call before serving requests.
func (m *Manager) SetCluster(index int, peers []Caller, standby bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.index = index
	m.peers = peers
	m.peerSeq = make([]uint64, len(peers))
	m.primary = !standby
}

// SetWALCompactBytes overrides the log size that triggers compaction
// (useful to exercise compaction in tests); n <= 0 disables compaction.
func (m *Manager) SetWALCompactBytes(n int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.walCompact = n
}

// Obs exposes the manager's metrics registry, for the daemon's -debug-addr
// HTTP endpoint.
func (m *Manager) Obs() *obs.Registry { return m.obs }

// Close releases the write-ahead log handle. The manager must not be used
// afterwards.
func (m *Manager) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.wal != nil {
		return m.wal.Close()
	}
	return nil
}

// registerGauges installs the live-state gauges evaluated at every stats
// snapshot.
func (m *Manager) registerGauges() {
	m.obs.RegisterGauge("meta_epoch", func() int64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		return int64(m.epoch)
	})
	m.obs.RegisterGauge("meta_primary", func() int64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		if m.primary {
			return 1
		}
		return 0
	})
	m.obs.RegisterGauge("meta_seq", func() int64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		return int64(m.seq)
	})
	m.obs.RegisterGauge("meta_files", func() int64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		return int64(len(m.byName))
	})
	// meta_replication_lag is the worst peer's distance behind the primary,
	// in operations: seq minus the lowest acknowledged peer seq.
	m.obs.RegisterGauge("meta_replication_lag", func() int64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		if !m.primary {
			return 0
		}
		var lag int64
		for i, p := range m.peers {
			if p == nil || i == m.index {
				continue
			}
			if d := int64(m.seq) - int64(m.peerSeq[i]); d > lag {
				lag = d
			}
		}
		return lag
	})
}

// Handle dispatches one request. It satisfies rpc.Handler.
func (m *Manager) Handle(req wire.Msg) (wire.Msg, error) {
	m.requests.Add(1)
	start := time.Now()
	resp, err := m.dispatch(req)
	m.obs.Hist("rpc_" + req.Kind().String()).Observe(time.Since(start))
	if err != nil {
		m.obs.Counter("errors").Add(1)
	}
	return resp, err
}

func (m *Manager) dispatch(req wire.Msg) (wire.Msg, error) {
	switch r := req.(type) {
	case *wire.Ping:
		return &wire.OK{}, nil
	case *wire.Create:
		return m.create(r)
	case *wire.Open:
		return m.open(r.Name)
	case *wire.SetSize:
		return m.setSize(r)
	case *wire.Remove:
		return m.remove(r.Name)
	case *wire.SetScheme:
		return m.setScheme(r)
	case *wire.CommitScheme:
		return m.commitScheme(r)
	case *wire.AbortScheme:
		return m.abortScheme(r)
	case *wire.List:
		return m.list()
	case *wire.ServerList:
		return &wire.ServerListResp{Addrs: append([]string(nil), m.serverAddrs...)}, nil
	case *wire.MetaStatus:
		return m.status()
	case *wire.MetaReplicate:
		return m.replicate(r)
	case *wire.Stats:
		return m.handleStats()
	default:
		return nil, fmt.Errorf("meta: unsupported request %T", req)
	}
}

// primaryCheckLocked refuses the namespace RPCs on a standby. The error
// carries CodeNotPrimary over the wire, which the client's manager-group
// routing treats as "try the next manager". Caller holds m.mu.
func (m *Manager) primaryCheckLocked() error {
	if m.primary {
		return nil
	}
	return fmt.Errorf("meta: manager %d is a standby at epoch %d: %w",
		m.index, m.epoch, wire.ErrNotPrimary)
}

func (m *Manager) create(r *wire.Create) (wire.Msg, error) {
	parity := uint8(0)
	if r.Scheme == wire.ReedSolomon {
		// RS(k, m): m parity units per stripe, defaulting to double-fault
		// tolerance. The count is fixed at create time and rides the FileRef.
		parity = r.Parity
		if parity == 0 {
			parity = 2
		}
		if int(parity) > int(r.Servers)-2 {
			return nil, fmt.Errorf("meta: rs with %d parity units needs at least %d servers, got %d",
				parity, int(parity)+2, r.Servers)
		}
	} else if r.Parity != 0 {
		return nil, fmt.Errorf("meta: scheme %v does not take a parity-unit count", r.Scheme)
	}
	g := raid.Geometry{Servers: int(r.Servers), StripeUnit: int64(r.StripeUnit), ParityUnits: int(parity)}
	if r.Scheme.UsesParity() {
		if err := g.ValidateParity(); err != nil {
			return nil, err
		}
	} else {
		if err := g.Validate(); err != nil {
			return nil, err
		}
	}
	if r.Scheme == wire.Raid1 && g.Servers < 2 {
		return nil, fmt.Errorf("meta: raid1 needs at least 2 servers, got %d", g.Servers)
	}
	if g.Servers > m.serverCount {
		return nil, fmt.Errorf("meta: layout wants %d servers, cluster has %d", g.Servers, m.serverCount)
	}
	if r.Name == "" {
		return nil, fmt.Errorf("meta: empty file name")
	}

	m.shipMu.Lock()
	defer m.shipMu.Unlock()
	m.mu.Lock()
	if err := m.primaryCheckLocked(); err != nil {
		m.mu.Unlock()
		return nil, err
	}
	if _, exists := m.byName[r.Name]; exists {
		m.mu.Unlock()
		return nil, fmt.Errorf("meta: file %q already exists", r.Name)
	}
	rec := walRec{
		op:   opCreate,
		name: r.Name,
		ref: wire.FileRef{
			ID:         m.nextID,
			Servers:    r.Servers,
			StripeUnit: r.StripeUnit,
			Scheme:     r.Scheme,
			Parity:     parity,
		},
	}
	prevID := m.nextID
	if err := m.commitAndShip(rec, func() {
		delete(m.byName, rec.name)
		delete(m.byID, rec.ref.ID)
		m.nextID = prevID
	}); err != nil {
		return nil, fmt.Errorf("meta: committing create: %w", err)
	}
	return &wire.CreateResp{Ref: rec.ref}, nil
}

func (m *Manager) open(name string) (wire.Msg, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.primaryCheckLocked(); err != nil {
		return nil, err
	}
	fm := m.byName[name]
	if fm == nil {
		return nil, fmt.Errorf("meta: no such file %q", name)
	}
	return &wire.OpenResp{Ref: fm.ref, Size: fm.size, Mig: fm.mig}, nil
}

func (m *Manager) setSize(r *wire.SetSize) (wire.Msg, error) {
	m.shipMu.Lock()
	defer m.shipMu.Unlock()
	m.mu.Lock()
	if err := m.primaryCheckLocked(); err != nil {
		m.mu.Unlock()
		return nil, err
	}
	fm := m.byID[r.ID]
	if fm == nil {
		m.mu.Unlock()
		return nil, fmt.Errorf("meta: no such file id %d", r.ID)
	}
	if r.Size <= fm.size {
		m.mu.Unlock()
		return &wire.OK{}, nil
	}
	prev := fm.size
	rec := walRec{op: opSetSize, id: r.ID, size: r.Size}
	if err := m.commitAndShip(rec, func() { fm.size = prev }); err != nil {
		return nil, fmt.Errorf("meta: committing size: %w", err)
	}
	return &wire.OK{}, nil
}

func (m *Manager) remove(name string) (wire.Msg, error) {
	m.shipMu.Lock()
	defer m.shipMu.Unlock()
	m.mu.Lock()
	if err := m.primaryCheckLocked(); err != nil {
		m.mu.Unlock()
		return nil, err
	}
	fm := m.byName[name]
	if fm == nil {
		m.mu.Unlock()
		return nil, fmt.Errorf("meta: no such file %q", name)
	}
	rec := walRec{op: opRemove, name: name}
	if err := m.commitAndShip(rec, func() {
		m.byName[fm.name] = fm
		m.byID[fm.ref.ID] = fm
	}); err != nil {
		return nil, fmt.Errorf("meta: committing remove: %w", err)
	}
	return &wire.OK{}, nil
}

// setScheme pins a shadow layout for an online scheme migration: a fresh
// file ID on the same server set and stripe unit, carrying the target
// scheme. The coordinator re-encodes the bytes old→new and then commits.
// Re-issuing the same target while a matching pin is live resumes it (the
// existing shadow ref comes back), so an interrupted coordinator — or a
// client retrying across a manager failover — picks up where it left off.
func (m *Manager) setScheme(r *wire.SetScheme) (wire.Msg, error) {
	m.shipMu.Lock()
	defer m.shipMu.Unlock()
	m.mu.Lock()
	if err := m.primaryCheckLocked(); err != nil {
		m.mu.Unlock()
		return nil, err
	}
	fm := m.byID[r.ID]
	if fm == nil {
		m.mu.Unlock()
		return nil, fmt.Errorf("meta: no such file id %d", r.ID)
	}
	parity := uint8(0)
	if r.Scheme == wire.ReedSolomon {
		parity = r.Parity
		if parity == 0 {
			parity = 2
		}
		if int(parity) > int(fm.ref.Servers)-2 {
			m.mu.Unlock()
			return nil, fmt.Errorf("meta: rs with %d parity units needs at least %d servers, file has %d",
				parity, int(parity)+2, fm.ref.Servers)
		}
	} else if r.Parity != 0 {
		m.mu.Unlock()
		return nil, fmt.Errorf("meta: scheme %v does not take a parity-unit count", r.Scheme)
	}
	g := raid.Geometry{Servers: int(fm.ref.Servers), StripeUnit: int64(fm.ref.StripeUnit), ParityUnits: int(parity)}
	if r.Scheme.UsesParity() {
		if err := g.ValidateParity(); err != nil {
			m.mu.Unlock()
			return nil, err
		}
	} else if err := g.Validate(); err != nil {
		m.mu.Unlock()
		return nil, err
	}
	if r.Scheme == wire.Raid1 && g.Servers < 2 {
		m.mu.Unlock()
		return nil, fmt.Errorf("meta: raid1 needs at least 2 servers, file has %d", g.Servers)
	}
	if fm.mig.ID != 0 {
		if fm.mig.Scheme == r.Scheme && fm.mig.Parity == parity {
			// Idempotent resume: the same target is already pinned.
			resp := &wire.SetSchemeResp{Old: fm.ref, New: fm.mig, Size: fm.size}
			m.mu.Unlock()
			return resp, nil
		}
		err := fmt.Errorf("meta: file id %d is already migrating to %v; abort it first", r.ID, fm.mig.Scheme)
		m.mu.Unlock()
		return nil, err
	}
	if fm.ref.Scheme == r.Scheme && fm.ref.Parity == parity {
		m.mu.Unlock()
		return nil, fmt.Errorf("meta: file id %d already uses scheme %v", r.ID, r.Scheme)
	}
	mig := wire.FileRef{
		ID:         m.nextID,
		Servers:    fm.ref.Servers,
		StripeUnit: fm.ref.StripeUnit,
		Scheme:     r.Scheme,
		Parity:     parity,
	}
	prevID := m.nextID
	rec := walRec{op: opMigBegin, id: r.ID, ref: mig}
	if err := m.commitAndShip(rec, func() {
		fm.mig = wire.FileRef{}
		m.nextID = prevID
	}); err != nil {
		return nil, fmt.Errorf("meta: committing scheme pin: %w", err)
	}
	m.obs.Counter("meta_migrations_begun").Add(1)
	return &wire.SetSchemeResp{Old: fm.ref, New: mig, Size: fm.size}, nil
}

// commitScheme swaps a file's live ref for its pinned shadow layout. The
// NewID fence refuses a commit whose pin has since been aborted or
// superseded; a re-send of an already-applied commit answers OK.
func (m *Manager) commitScheme(r *wire.CommitScheme) (wire.Msg, error) {
	m.shipMu.Lock()
	defer m.shipMu.Unlock()
	m.mu.Lock()
	if err := m.primaryCheckLocked(); err != nil {
		m.mu.Unlock()
		return nil, err
	}
	fm := m.byID[r.ID]
	if fm == nil {
		// The old ID is gone: a retry of a commit that already swapped the
		// ref succeeds idempotently if the shadow is now live.
		if cur := m.byID[r.NewID]; cur != nil && cur.mig.ID == 0 {
			m.mu.Unlock()
			return &wire.OK{}, nil
		}
		m.mu.Unlock()
		return nil, fmt.Errorf("meta: no such file id %d", r.ID)
	}
	if fm.mig.ID == 0 || fm.mig.ID != r.NewID {
		err := fmt.Errorf("meta: stale scheme commit for file id %d (fence %d, pinned %d)",
			r.ID, r.NewID, fm.mig.ID)
		m.mu.Unlock()
		return nil, err
	}
	prevRef, prevMig := fm.ref, fm.mig
	rec := walRec{op: opMigCommit, id: r.ID, newID: r.NewID}
	if err := m.commitAndShip(rec, func() {
		delete(m.byID, prevMig.ID)
		fm.ref, fm.mig = prevRef, prevMig
		m.byID[prevRef.ID] = fm
	}); err != nil {
		return nil, fmt.Errorf("meta: committing scheme cutover: %w", err)
	}
	m.obs.Counter("meta_migrations_committed").Add(1)
	return &wire.OK{}, nil
}

// abortScheme drops a pinned shadow layout. Fenced by NewID like commit; an
// already-cleared pin answers OK so abort is safely re-issuable.
func (m *Manager) abortScheme(r *wire.AbortScheme) (wire.Msg, error) {
	m.shipMu.Lock()
	defer m.shipMu.Unlock()
	m.mu.Lock()
	if err := m.primaryCheckLocked(); err != nil {
		m.mu.Unlock()
		return nil, err
	}
	fm := m.byID[r.ID]
	if fm == nil {
		m.mu.Unlock()
		return nil, fmt.Errorf("meta: no such file id %d", r.ID)
	}
	if fm.mig.ID == 0 {
		m.mu.Unlock()
		return &wire.OK{}, nil
	}
	if fm.mig.ID != r.NewID {
		err := fmt.Errorf("meta: stale scheme abort for file id %d (fence %d, pinned %d)",
			r.ID, r.NewID, fm.mig.ID)
		m.mu.Unlock()
		return nil, err
	}
	prevMig := fm.mig
	rec := walRec{op: opMigAbort, id: r.ID, newID: r.NewID}
	if err := m.commitAndShip(rec, func() { fm.mig = prevMig }); err != nil {
		return nil, fmt.Errorf("meta: committing scheme abort: %w", err)
	}
	m.obs.Counter("meta_migrations_aborted").Add(1)
	return &wire.OK{}, nil
}

func (m *Manager) list() (wire.Msg, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.primaryCheckLocked(); err != nil {
		return nil, err
	}
	names := make([]string, 0, len(m.byName))
	for n := range m.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return &wire.ListResp{Names: names}, nil
}

// applyRecLocked applies one operation record to the in-memory namespace
// and advances epoch/seq to the record's. It is idempotent per record — a
// create of an existing (name, ID) pair, a size already surpassed, a remove
// of a missing name are all no-ops — so WAL replay and replication re-sends
// are safe. Caller holds m.mu (or is still constructing the manager).
func (m *Manager) applyRecLocked(rec walRec) {
	m.epoch = rec.epoch
	m.seq = rec.seq
	switch rec.op {
	case opCreate:
		fm := &fileMeta{name: rec.name, ref: rec.ref}
		m.byName[fm.name] = fm
		m.byID[fm.ref.ID] = fm
		if rec.ref.ID >= m.nextID {
			m.nextID = rec.ref.ID + 1
		}
	case opSetSize:
		if fm := m.byID[rec.id]; fm != nil && rec.size > fm.size {
			fm.size = rec.size
		}
	case opRemove:
		if fm := m.byName[rec.name]; fm != nil {
			delete(m.byName, rec.name)
			delete(m.byID, fm.ref.ID)
		}
	case opEpoch:
	case opMigBegin:
		if fm := m.byID[rec.id]; fm != nil {
			fm.mig = rec.ref
			if rec.ref.ID >= m.nextID {
				m.nextID = rec.ref.ID + 1
			}
		}
	case opMigCommit:
		if fm := m.byID[rec.id]; fm != nil && fm.mig.ID == rec.newID && rec.newID != 0 {
			delete(m.byID, fm.ref.ID)
			fm.ref, fm.mig = fm.mig, wire.FileRef{}
			m.byID[fm.ref.ID] = fm
		}
	case opMigAbort:
		if fm := m.byID[rec.id]; fm != nil && fm.mig.ID == rec.newID {
			fm.mig = wire.FileRef{}
		}
	}
}

// commitAndShip runs the primary's commit path for one mutation: stamp the
// record with the next sequence number and current epoch, apply it, fsync
// it to the WAL, then ship it to every peer — and only then let the caller
// acknowledge. Called with shipMu held and m.mu held; m.mu is released
// before the network ships (readers proceed while the record travels).
//
// undo reverses the caller's optimistic view if the record cannot be made
// durable locally. A fencing response from a peer does NOT undo: the record
// is already in our log, and a deposed primary's divergent tail is healed
// by the snapshot transfer when it rejoins as a standby — the caller just
// sees the fencing error instead of an acknowledgment.
func (m *Manager) commitAndShip(rec walRec, undo func()) error {
	rec.epoch = m.epoch
	rec.seq = m.seq + 1
	m.applyRecLocked(rec)
	if m.wal != nil {
		if err := m.wal.append(rec); err != nil {
			undo()
			m.seq = rec.seq - 1
			m.mu.Unlock()
			return err
		}
		m.obs.Counter("meta_wal_appends").Add(1)
		if err := m.compactLocked(); err != nil {
			// The operation itself is durable; compaction can retry at the
			// next commit. Surface the disk trouble without failing the op.
			m.obs.Counter("meta_compact_errors").Add(1)
			log.Printf("meta: wal compaction failed (will retry): %v", err)
		}
	}
	peers := m.peers
	selfIdx := m.index
	m.mu.Unlock()

	payload := encodeRec(rec)
	fenced := false
	for i, p := range peers {
		if p == nil || i == selfIdx {
			continue
		}
		m.obs.Counter("meta_replication_ships").Add(1)
		resp, err := p.Call(&wire.MetaReplicate{Epoch: rec.epoch, Seq: rec.seq, Rec: payload})
		switch {
		case err == nil:
			rr, ok := resp.(*wire.MetaReplicateResp)
			if !ok {
				continue
			}
			if rr.Epoch > rec.epoch {
				fenced = true
				continue
			}
			if rr.Seq < rec.seq {
				// The standby is behind (fresh start, missed ops, or an
				// epoch transition that may hide divergence): catch it up
				// with a full snapshot.
				m.sendSnapshot(i, p)
			} else {
				m.setPeerSeq(i, rr.Seq)
			}
		case errors.Is(err, wire.ErrStaleEpoch):
			fenced = true
		default:
			// Unreachable peer: it catches up via the snapshot path on the
			// first ship it answers. Not this operation's problem.
		}
	}
	if fenced {
		m.demote()
		return fmt.Errorf("meta: primary at epoch %d was deposed: %w", rec.epoch, wire.ErrStaleEpoch)
	}
	return nil
}

// sendSnapshot ships the full namespace through the current sequence number
// to one lagging peer. Called with shipMu held (so seq cannot advance
// mid-marshal) and m.mu released.
func (m *Manager) sendSnapshot(i int, p Caller) {
	m.mu.Lock()
	data, err := m.marshalSnapshotLocked()
	epoch, seq := m.epoch, m.seq
	m.mu.Unlock()
	if err != nil {
		return
	}
	m.obs.Counter("meta_snapshots_sent").Add(1)
	resp, err := p.Call(&wire.MetaReplicate{Epoch: epoch, Seq: seq, Snap: true, Rec: data})
	if err != nil {
		return
	}
	if rr, ok := resp.(*wire.MetaReplicateResp); ok && rr.Epoch == epoch {
		m.setPeerSeq(i, rr.Seq)
	}
}

func (m *Manager) setPeerSeq(i int, seq uint64) {
	m.mu.Lock()
	if i < len(m.peerSeq) && seq > m.peerSeq[i] {
		m.peerSeq[i] = seq
	}
	m.mu.Unlock()
}

// demote steps down from the primary role after a fencing response proved
// a higher epoch exists.
func (m *Manager) demote() {
	m.mu.Lock()
	if m.primary {
		m.primary = false
		m.obs.Counter("meta_demotions").Add(1)
	}
	m.mu.Unlock()
}

// replicate applies one record (or installs one snapshot) shipped by the
// primary. The epoch fence lives here: a record from an epoch older than
// ours is refused with CodeStaleEpoch, a record from a newer epoch demotes
// us (if we thought we were primary) and asks for a snapshot — an epoch
// transition means our log may have diverged from the new primary's, so
// only a full transfer is trusted.
func (m *Manager) replicate(r *wire.MetaReplicate) (wire.Msg, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if r.Epoch < m.epoch {
		m.obs.Counter("meta_replication_fenced").Add(1)
		return nil, fmt.Errorf("meta: replicate from epoch %d refused at epoch %d: %w",
			r.Epoch, m.epoch, wire.ErrStaleEpoch)
	}

	if r.Snap {
		var snap snapshot
		if err := json.Unmarshal(r.Rec, &snap); err != nil {
			return nil, fmt.Errorf("meta: corrupt replicated snapshot: %w", err)
		}
		if m.primary {
			m.primary = false
			m.obs.Counter("meta_demotions").Add(1)
		}
		m.installSnapshotLocked(&snap)
		if r.Epoch > m.epoch {
			m.epoch = r.Epoch
		}
		if m.wal != nil {
			// Persist the installed state and drop any divergent log tail;
			// refuse to acknowledge a snapshot we could not make durable.
			if err := m.save(); err != nil {
				return nil, fmt.Errorf("meta: persisting replicated snapshot: %w", err)
			}
			if err := m.wal.reset(); err != nil {
				return nil, err
			}
		}
		m.obs.Counter("meta_snapshots_installed").Add(1)
		return &wire.MetaReplicateResp{Epoch: m.epoch, Seq: m.seq}, nil
	}

	if r.Epoch > m.epoch {
		// Epoch transition via an op record: adopt the new epoch, step down
		// if needed, and report Seq 0 so the new primary sends a snapshot —
		// our same-numbered log suffix may belong to the deposed history.
		m.epoch = r.Epoch
		if m.primary {
			m.primary = false
			m.obs.Counter("meta_demotions").Add(1)
		}
		return &wire.MetaReplicateResp{Epoch: m.epoch, Seq: 0}, nil
	}

	rec, err := decodeRec(r.Rec)
	if err != nil {
		return nil, err
	}
	if rec.seq <= m.seq {
		// Duplicate of something we already hold (a primary retry).
		return &wire.MetaReplicateResp{Epoch: m.epoch, Seq: m.seq}, nil
	}
	if rec.seq != m.seq+1 {
		// Gap: we missed operations while unreachable. Reporting our true
		// seq (< the record's) makes the primary fall back to a snapshot.
		return &wire.MetaReplicateResp{Epoch: m.epoch, Seq: m.seq}, nil
	}
	m.applyRecLocked(rec)
	if m.wal != nil {
		if err := m.wal.append(rec); err != nil {
			// Could not durably log it: report the op unapplied (seq rolls
			// back; the in-memory apply is idempotent under the re-send).
			m.seq = rec.seq - 1
			return nil, err
		}
		m.obs.Counter("meta_wal_appends").Add(1)
		if cerr := m.compactLocked(); cerr != nil {
			m.obs.Counter("meta_compact_errors").Add(1)
			log.Printf("meta: wal compaction failed (will retry): %v", cerr)
		}
	}
	return &wire.MetaReplicateResp{Epoch: m.epoch, Seq: m.seq}, nil
}

// status answers the MetaStatus probe. Unlike the namespace RPCs it is
// served in any role — promotion logic and `csar stats` must see standbys.
func (m *Manager) status() (wire.Msg, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var walBytes int64
	if m.wal != nil {
		walBytes = m.wal.size
	}
	return &wire.MetaStatusResp{
		Index:    uint16(m.index),
		Epoch:    m.epoch,
		Seq:      m.seq,
		Primary:  m.primary,
		Files:    int64(len(m.byName)),
		WALBytes: walBytes,
	}, nil
}

// Promote makes this manager the primary at a fresh epoch. The epoch bump
// is logged (a restarted manager must never accept records from an epoch it
// already moved past) and shipped to every reachable peer, which adopts the
// new epoch — and steps down, fencing the old primary if it still lives.
func (m *Manager) Promote() error {
	m.shipMu.Lock()
	defer m.shipMu.Unlock()
	m.mu.Lock()
	prevEpoch, prevPrimary := m.epoch, m.primary
	m.epoch++
	m.primary = true
	m.obs.Counter("meta_promotions").Add(1)
	rec := walRec{op: opEpoch}
	if err := m.commitAndShip(rec, func() {
		m.epoch = prevEpoch
		m.primary = prevPrimary
	}); err != nil {
		return fmt.Errorf("meta: promoting: %w", err)
	}
	return nil
}

// TryPromote promotes this manager only if no lower-index peer answers a
// MetaStatus probe — the deterministic promotion rule: the lowest-index
// reachable manager wins the next epoch. It reports whether this manager
// is (now) the primary.
//
// The rule is primary-backup with fencing, not consensus: two managers
// partitioned from each other can both conclude they win. The epoch fence
// limits the damage — the second promotion deposes the first retroactively,
// and the deposed side's unreplicated tail is discarded when it rejoins —
// but operators who need zero split-brain windows must arbitrate
// externally (see DESIGN §11).
func (m *Manager) TryPromote() (bool, error) {
	m.mu.Lock()
	idx, primary := m.index, m.primary
	peers := m.peers
	m.mu.Unlock()
	if primary {
		return true, nil
	}
	for i, p := range peers {
		if i >= idx {
			break
		}
		if p == nil {
			continue
		}
		if resp, err := p.Call(&wire.MetaStatus{}); err == nil {
			if _, ok := resp.(*wire.MetaStatusResp); ok {
				return false, nil // a lower-index manager is alive; it wins
			}
		}
	}
	if err := m.Promote(); err != nil {
		return false, err
	}
	return true, nil
}

// handleStats answers the Stats RPC with the manager's observability
// snapshot: replication counters, role/epoch/lag gauges, and the per-RPC-
// kind latency histograms. Index 0xFFFF marks a manager snapshot.
func (m *Manager) handleStats() (wire.Msg, error) {
	snap := m.obs.Snapshot()
	resp := &wire.StatsResp{
		Index:    0xFFFF,
		Requests: m.requests.Load(),
	}
	for _, kv := range snap.Counters {
		resp.Counters = append(resp.Counters, wire.StatKV{Name: kv.Name, Value: kv.Value})
	}
	for _, kv := range snap.Gauges {
		resp.Gauges = append(resp.Gauges, wire.StatKV{Name: kv.Name, Value: kv.Value})
	}
	for _, h := range snap.Hists {
		resp.Hists = append(resp.Hists, wire.HistDump{
			Name:    h.Name,
			Count:   h.Count,
			Sum:     int64(h.Sum),
			Max:     int64(h.Max),
			Buckets: h.TrimmedBuckets(),
		})
	}
	return resp, nil
}
