package meta

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"csar/internal/rpc"
	"csar/internal/wire"
)

// TCPPeer is a redialing Caller to a peer manager, tolerant of the peer
// being down: the connection is established lazily on first use and
// re-established after it fails, so a standby that is dead when the primary
// starts does not wedge replication — its ships fail with an unavailability
// error and it catches up via a snapshot when it returns.
type TCPPeer struct {
	addr    string
	timeout time.Duration

	mu  sync.Mutex
	cli *rpc.Client
}

// NewTCPPeer returns a caller for the manager at addr. timeout bounds each
// replication RPC (zero means no deadline — not recommended: a hung standby
// would stall every commit behind it).
func NewTCPPeer(addr string, timeout time.Duration) *TCPPeer {
	return &TCPPeer{addr: addr, timeout: timeout}
}

func (p *TCPPeer) get() (*rpc.Client, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cli != nil {
		return p.cli, nil
	}
	conn, err := net.Dial("tcp", p.addr)
	if err != nil {
		return nil, fmt.Errorf("meta: dial peer %s: %v: %w", p.addr, err, wire.ErrUnavailable)
	}
	p.cli = rpc.NewClient(conn, nil, nil)
	return p.cli, nil
}

func (p *TCPPeer) drop(failed *rpc.Client) {
	p.mu.Lock()
	if p.cli == failed {
		failed.Close()
		p.cli = nil
	}
	p.mu.Unlock()
}

// Call issues one RPC to the peer, re-dialing a dead connection on the next
// attempt.
func (p *TCPPeer) Call(m wire.Msg) (wire.Msg, error) {
	cli, err := p.get()
	if err != nil {
		return nil, err
	}
	resp, err := cli.CallTimeout(m, p.timeout)
	if err != nil && errors.Is(err, rpc.ErrClosed) {
		p.drop(cli)
	}
	return resp, err
}

// Close drops the cached connection. The peer stays usable — a later Call
// re-dials.
func (p *TCPPeer) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cli == nil {
		return nil
	}
	err := p.cli.Close()
	p.cli = nil
	return err
}
