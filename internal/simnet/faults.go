package simnet

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrLinkDown is returned by Node.Send when the directed link between the
// two nodes carries a Drop fault (or either side of a partition).
var ErrLinkDown = errors.New("simnet: link down")

// Wildcard matches any node name in a fault's from/to position.
const Wildcard = "*"

// LinkFault describes what happens to messages on one directed link.
// Exactly one of Drop and Hang is normally set; ExtraLatency may accompany
// either or stand alone.
type LinkFault struct {
	// Drop makes every Send on the link fail immediately with ErrLinkDown —
	// the TCP-reset / route-lost failure mode.
	Drop bool
	// Hang blocks every Send on the link until the fault is cleared — the
	// silent-loss failure mode that only deadlines can detect. When the
	// fault is cleared, hung sends re-evaluate the fault table (a hang
	// replaced by a drop fails them; a cleared link lets them through).
	Hang bool
	// ExtraLatency adds a per-message simulated delay on top of the modeled
	// transfer time (ignored on untimed networks, like all modeled delays).
	ExtraLatency time.Duration
}

// faultEntry is one installed fault; cleared is closed when the entry is
// removed or replaced so hung senders wake and re-evaluate.
type faultEntry struct {
	f       LinkFault
	cleared chan struct{}
}

// faultTable holds the directed-link fault set of a Network. Lookups check
// exact (from,to) first, then (from,*), (*,to), (*,*).
type faultTable struct {
	mu      sync.Mutex
	entries map[[2]string]*faultEntry
}

func (t *faultTable) set(from, to string, f LinkFault) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.entries == nil {
		t.entries = make(map[[2]string]*faultEntry)
	}
	key := [2]string{from, to}
	if old := t.entries[key]; old != nil {
		close(old.cleared)
	}
	t.entries[key] = &faultEntry{f: f, cleared: make(chan struct{})}
}

func (t *faultTable) clear(from, to string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	key := [2]string{from, to}
	if old := t.entries[key]; old != nil {
		close(old.cleared)
		delete(t.entries, key)
	}
}

func (t *faultTable) clearAll() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for key, e := range t.entries {
		close(e.cleared)
		delete(t.entries, key)
	}
}

func (t *faultTable) lookup(from, to string) *faultEntry {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.entries == nil {
		return nil
	}
	for _, key := range [][2]string{{from, to}, {from, Wildcard}, {Wildcard, to}, {Wildcard, Wildcard}} {
		if e := t.entries[key]; e != nil {
			return e
		}
	}
	return nil
}

// SetLinkFault installs (or replaces) the fault on the directed link
// from→to. Either name may be Wildcard. Faults apply on untimed networks
// too: correctness tests inject drops and hangs without modeling time.
func (n *Network) SetLinkFault(from, to string, f LinkFault) { n.faults.set(from, to, f) }

// ClearLinkFault removes the fault on the directed link from→to, waking any
// sends hung on it.
func (n *Network) ClearLinkFault(from, to string) { n.faults.clear(from, to) }

// ClearFaults removes every installed fault.
func (n *Network) ClearFaults() { n.faults.clearAll() }

// Partition isolates a node: messages to and from it fail with ErrLinkDown.
func (n *Network) Partition(name string) {
	n.faults.set(name, Wildcard, LinkFault{Drop: true})
	n.faults.set(Wildcard, name, LinkFault{Drop: true})
}

// Heal removes the partition installed for a node by Partition.
func (n *Network) Heal(name string) {
	n.faults.clear(name, Wildcard)
	n.faults.clear(Wildcard, name)
}

// FaultStep is one entry of a deterministic fault schedule: at simulated
// offset At from the start of RunSchedule, install (or, with Clear, remove)
// the fault on the directed link From→To.
type FaultStep struct {
	At       time.Duration
	From, To string
	Clear    bool
	Fault    LinkFault
}

// RunSchedule applies the steps in order, each at its simulated-time offset
// from the call (converted to wall time by the network's clock; on an
// untimed network all steps apply immediately, still in order). It returns
// a channel closed after the last step, so tests can await the full
// schedule. The schedule is deterministic in the sense that matters: the
// sequence of fault-table states is exactly the steps in order, and on a
// timed network the offsets land at the modeled instants.
func (n *Network) RunSchedule(steps []FaultStep) <-chan struct{} {
	done := make(chan struct{})
	start := time.Now()
	go func() {
		defer close(done)
		for _, s := range steps {
			if n.clock.Timed() {
				target := start.Add(n.clock.Wall(s.At))
				if d := time.Until(target); d > 0 {
					time.Sleep(d)
				}
			}
			if s.Clear {
				n.ClearLinkFault(s.From, s.To)
			} else {
				n.SetLinkFault(s.From, s.To, s.Fault)
			}
		}
	}()
	return done
}

// applyFaults enforces the fault table for one message from→to: dropped
// links error, hung links block until cleared (then re-evaluate), and extra
// latency is charged on timed networks.
func (n *Network) applyFaults(from, to string) error {
	for {
		e := n.faults.lookup(from, to)
		if e == nil {
			return nil
		}
		if e.f.Drop {
			return fmt.Errorf("%w (%s -> %s)", ErrLinkDown, from, to)
		}
		if e.f.Hang {
			<-e.cleared
			continue
		}
		if e.f.ExtraLatency > 0 {
			n.clock.Sleep(e.f.ExtraLatency)
		}
		return nil
	}
}
