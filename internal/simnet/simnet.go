// Package simnet models the cluster interconnect: every node owns a
// full-duplex NIC with finite per-direction bandwidth, and messages between
// two nodes pay the maximum of the sender's outbound and the receiver's
// inbound transfer time, plus a one-way latency.
//
// The single effect that matters for the paper's figures is client NIC
// saturation: a RAID1 client pushes twice the bytes of a RAID0 client, so
// its link becomes the bottleneck and write bandwidth flattens near half of
// RAID0 as I/O servers are added (Figure 4a). That emerges directly from
// the per-node outbound limiter.
package simnet

import (
	"time"

	"csar/internal/simtime"
)

// Params configures the interconnect model.
type Params struct {
	// Latency is the one-way message latency in simulated time.
	Latency time.Duration
	// BandwidthBPS is the per-direction NIC bandwidth of every node in
	// bytes per simulated second.
	BandwidthBPS float64
}

// DefaultParams models the paper's network path: Myrinet 1.3 Gb/s links
// (about 160 MB/s per direction) driven through the kernel TCP stack, as
// PVFS uses sockets — per-message latency is therefore in the
// hundred-microsecond range, not raw-Myrinet microseconds.
func DefaultParams() Params {
	return Params{
		Latency:      150 * time.Microsecond,
		BandwidthBPS: 160e6,
	}
}

// Network is a set of nodes sharing one timing model and one fault table
// (see faults.go): deterministic per-link drop, hang, latency and partition
// faults drive the failover tests.
type Network struct {
	clock  *simtime.Clock
	params Params
	faults faultTable
}

// New creates a network on the given clock. An untimed clock produces a
// network with no modeled delays.
func New(clock *simtime.Clock, p Params) *Network {
	return &Network{clock: clock, params: p}
}

// Clock returns the network's time base.
func (n *Network) Clock() *simtime.Clock { return n.clock }

// Node is one machine's network attachment.
type Node struct {
	net     *Network
	name    string
	in, out *simtime.Limiter
}

// NewNode attaches a named node to the network.
func (n *Network) NewNode(name string) *Node {
	return &Node{
		net:  n,
		name: name,
		in:   simtime.NewLimiter(n.clock, n.params.BandwidthBPS),
		out:  simtime.NewLimiter(n.clock, n.params.BandwidthBPS),
	}
}

// Name returns the node's name.
func (nd *Node) Name() string { return nd.name }

// Send charges the transfer of n bytes from nd to dst and blocks until the
// modeled transfer completes: both NIC directions are reserved concurrently
// and the call sleeps until the later of the two, plus one-way latency.
//
// Link faults apply first, even on untimed networks: a dropped link returns
// ErrLinkDown, a hung link blocks until the fault clears, and extra latency
// is charged before the transfer.
func (nd *Node) Send(dst *Node, n int64) error {
	if nd == nil || dst == nil {
		return nil
	}
	if err := nd.net.applyFaults(nd.name, dst.name); err != nil {
		return err
	}
	if !nd.net.clock.Timed() {
		return nil
	}
	tOut := nd.out.Reserve(n)
	tIn := dst.in.Reserve(n)
	target := tOut
	if tIn.After(target) {
		target = tIn
	}
	if target.IsZero() {
		target = time.Now()
	}
	// Fold the one-way latency into the same wall-clock deadline: one
	// precise sleep instead of two, so host timer granularity is paid at
	// most once per message.
	simtime.SleepUntil(target.Add(nd.net.clock.Wall(nd.net.params.Latency)))
	return nil
}
