package simnet

import (
	"sync"
	"testing"
	"time"

	"csar/internal/simtime"
)

func TestUntimedNetworkIsFree(t *testing.T) {
	n := New(nil, DefaultParams())
	a, b := n.NewNode("a"), n.NewNode("b")
	start := time.Now()
	a.Send(b, 1<<40)
	if time.Since(start) > 100*time.Millisecond {
		t.Fatal("untimed send blocked")
	}
}

func TestNilNodesAreFree(t *testing.T) {
	var a, b *Node
	a.Send(b, 100) // must not panic
}

func TestSendChargesBandwidth(t *testing.T) {
	clock := &simtime.Clock{Scale: 10 * time.Millisecond}
	n := New(clock, Params{Latency: 0, BandwidthBPS: 1e6})
	a, b := n.NewNode("a"), n.NewNode("b")
	start := time.Now()
	a.Send(b, 2e6) // 2 sim s = 20 ms
	got := time.Since(start)
	if got < 15*time.Millisecond || got > 200*time.Millisecond {
		t.Fatalf("send took %v, want about 20ms", got)
	}
}

func TestSenderLinkIsTheBottleneck(t *testing.T) {
	// One sender fanning out to many receivers is limited by its own
	// outbound NIC: doubling receivers does not double throughput.
	clock := &simtime.Clock{Scale: 5 * time.Millisecond}
	n := New(clock, Params{Latency: 0, BandwidthBPS: 1e6})
	src := n.NewNode("client")

	elapsed := func(receivers int) time.Duration {
		dsts := make([]*Node, receivers)
		for i := range dsts {
			dsts[i] = n.NewNode("s")
		}
		start := time.Now()
		var wg sync.WaitGroup
		for _, d := range dsts {
			wg.Add(1)
			go func(d *Node) {
				defer wg.Done()
				src.Send(d, 1e6)
			}(d)
		}
		wg.Wait()
		return time.Since(start)
	}

	t2 := elapsed(2)
	t4 := elapsed(4)
	// 4 receivers move 2x the bytes of 2 receivers through the same
	// saturated sender link, so they should take roughly 2x as long.
	if t4 < t2*3/2 {
		t.Fatalf("4-way fanout took %v vs 2-way %v; sender link not saturating", t4, t2)
	}
}

func TestReceiversIndependent(t *testing.T) {
	// Two distinct sender/receiver pairs do not share any link and should
	// overlap almost perfectly.
	clock := &simtime.Clock{Scale: 5 * time.Millisecond}
	n := New(clock, Params{Latency: 0, BandwidthBPS: 1e6})
	a1, b1 := n.NewNode("a1"), n.NewNode("b1")
	a2, b2 := n.NewNode("a2"), n.NewNode("b2")

	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); a1.Send(b1, 2e6) }()
	go func() { defer wg.Done(); a2.Send(b2, 2e6) }()
	wg.Wait()
	got := time.Since(start)
	// Each pair alone would take 10ms; if they serialized it would be 20ms.
	if got > 18*time.Millisecond {
		t.Fatalf("independent pairs serialized: %v", got)
	}
}

func TestLatencyCharged(t *testing.T) {
	clock := &simtime.Clock{Scale: time.Millisecond}
	n := New(clock, Params{Latency: 20 * time.Second, BandwidthBPS: 0}) // latency only
	a, b := n.NewNode("a"), n.NewNode("b")
	start := time.Now()
	a.Send(b, 1)
	if got := time.Since(start); got < 15*time.Millisecond {
		t.Fatalf("latency not charged: %v", got)
	}
}
