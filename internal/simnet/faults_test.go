package simnet

import (
	"errors"
	"testing"
	"time"

	"csar/internal/simtime"
)

func TestDropFaultFailsSend(t *testing.T) {
	n := New(nil, DefaultParams())
	a, b := n.NewNode("a"), n.NewNode("b")
	n.SetLinkFault("a", "b", LinkFault{Drop: true})
	if err := a.Send(b, 100); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("err = %v, want ErrLinkDown", err)
	}
	// Directed: the reverse link is unaffected.
	if err := b.Send(a, 100); err != nil {
		t.Fatalf("reverse link failed: %v", err)
	}
	n.ClearLinkFault("a", "b")
	if err := a.Send(b, 100); err != nil {
		t.Fatalf("cleared link failed: %v", err)
	}
}

func TestHangBlocksUntilCleared(t *testing.T) {
	n := New(nil, DefaultParams())
	a, b := n.NewNode("a"), n.NewNode("b")
	n.SetLinkFault("a", "b", LinkFault{Hang: true})

	done := make(chan error, 1)
	go func() { done <- a.Send(b, 100) }()
	select {
	case err := <-done:
		t.Fatalf("send completed through a hung link: %v", err)
	case <-time.After(30 * time.Millisecond):
	}
	n.ClearLinkFault("a", "b")
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("send after clear: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("hung send never woke after clear")
	}
}

func TestHangReplacedByDropReevaluates(t *testing.T) {
	// A hung sender must re-check the fault table when its entry changes: a
	// hang replaced by a drop fails the send instead of letting it through.
	n := New(nil, DefaultParams())
	a, b := n.NewNode("a"), n.NewNode("b")
	n.SetLinkFault("a", "b", LinkFault{Hang: true})

	done := make(chan error, 1)
	go func() { done <- a.Send(b, 100) }()
	time.Sleep(10 * time.Millisecond)
	n.SetLinkFault("a", "b", LinkFault{Drop: true})
	select {
	case err := <-done:
		if !errors.Is(err, ErrLinkDown) {
			t.Fatalf("err = %v, want ErrLinkDown after hang->drop", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("send stayed hung after the fault was replaced")
	}
	n.ClearFaults()
}

func TestWildcardMatchingAndPrecedence(t *testing.T) {
	n := New(nil, DefaultParams())
	a, b, c := n.NewNode("a"), n.NewNode("b"), n.NewNode("c")

	// (*,b) drops anything toward b.
	n.SetLinkFault(Wildcard, "b", LinkFault{Drop: true})
	if err := a.Send(b, 1); !errors.Is(err, ErrLinkDown) {
		t.Fatal("wildcard destination fault did not apply")
	}
	if err := a.Send(c, 1); err != nil {
		t.Fatalf("unrelated link affected: %v", err)
	}
	// An exact (a,b) entry takes precedence — here a no-op fault that lets
	// a's traffic through an otherwise-dropped destination.
	n.SetLinkFault("a", "b", LinkFault{})
	if err := a.Send(b, 1); err != nil {
		t.Fatalf("exact entry did not shadow the wildcard: %v", err)
	}
	if err := c.Send(b, 1); !errors.Is(err, ErrLinkDown) {
		t.Fatal("wildcard stopped applying to other sources")
	}
	n.ClearFaults()
	if err := c.Send(b, 1); err != nil {
		t.Fatalf("ClearFaults left a fault behind: %v", err)
	}
}

func TestPartitionIsBidirectional(t *testing.T) {
	n := New(nil, DefaultParams())
	a, b, c := n.NewNode("a"), n.NewNode("b"), n.NewNode("c")
	n.Partition("b")
	if err := a.Send(b, 1); !errors.Is(err, ErrLinkDown) {
		t.Fatal("inbound link survived the partition")
	}
	if err := b.Send(a, 1); !errors.Is(err, ErrLinkDown) {
		t.Fatal("outbound link survived the partition")
	}
	if err := a.Send(c, 1); err != nil {
		t.Fatalf("partition leaked onto other nodes: %v", err)
	}
	n.Heal("b")
	if err := a.Send(b, 1); err != nil {
		t.Fatalf("heal did not restore the link: %v", err)
	}
	if err := b.Send(a, 1); err != nil {
		t.Fatalf("heal did not restore the reverse link: %v", err)
	}
}

func TestExtraLatencyCharged(t *testing.T) {
	clock := &simtime.Clock{Scale: 10 * time.Millisecond}
	n := New(clock, Params{Latency: 0, BandwidthBPS: 1e12})
	a, b := n.NewNode("a"), n.NewNode("b")
	n.SetLinkFault("a", "b", LinkFault{ExtraLatency: 2 * time.Second}) // 2 sim s = 20 ms wall
	start := time.Now()
	if err := a.Send(b, 1); err != nil {
		t.Fatal(err)
	}
	if got := time.Since(start); got < 15*time.Millisecond {
		t.Fatalf("send took %v, extra latency not charged", got)
	}
}

func TestRunScheduleUntimedAppliesInOrder(t *testing.T) {
	n := New(nil, DefaultParams())
	a, b := n.NewNode("a"), n.NewNode("b")
	// Install then clear the same fault: the final table state must reflect
	// the last step, proving in-order application.
	done := n.RunSchedule([]FaultStep{
		{From: "a", To: "b", Fault: LinkFault{Drop: true}},
		{At: time.Second, From: "a", To: "b", Clear: true},
	})
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("untimed schedule did not complete immediately")
	}
	if err := a.Send(b, 1); err != nil {
		t.Fatalf("final schedule state wrong: %v", err)
	}
}

func TestRunScheduleTimedOffsets(t *testing.T) {
	clock := &simtime.Clock{Scale: 10 * time.Millisecond}
	n := New(clock, Params{Latency: 0, BandwidthBPS: 1e12})
	a, b := n.NewNode("a"), n.NewNode("b")
	// The drop lands 2 simulated seconds (20 ms wall) in: a send issued
	// immediately passes, one after the schedule completes fails.
	if err := a.Send(b, 1); err != nil {
		t.Fatalf("pre-schedule send: %v", err)
	}
	done := n.RunSchedule([]FaultStep{
		{At: 2 * time.Second, From: "a", To: "b", Fault: LinkFault{Drop: true}},
	})
	<-done
	if err := a.Send(b, 1); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("post-schedule send: %v, want ErrLinkDown", err)
	}
	n.ClearFaults()
}
