// Dirty-region log — the server half of online incremental resync.
//
// While a server is dead, every degraded write records the regions the
// absentee missed onto its two neighbours (MarkDirty), each of which keeps
// a durable per-(file, dead-server) log next to the intent journal. When
// the server returns, recovery dumps both replicas (DirtyDump), replays
// only the union of their entries, and retires exactly what it read
// (ClearDirty) — entries re-dirtied by concurrent foreground writes keep a
// newer generation and survive the clear, so the next resync round picks
// them up instead of losing them.
//
// The log is journaled with the same discipline as the stripe intents:
// length-prefixed records, fsync per append batch, full rewrite on clear
// (the log shrinks at exactly the moments it is cheap to rewrite), torn
// tails ignored at load. A crash-restart of a surviving server therefore
// preserves the outage's damage records; only a blank replacement disk
// loses them, which resync detects through the epoch set and answers with
// a full rebuild.
package server

import (
	"fmt"
	"sort"
	"sync"

	"csar/internal/storage"
	"csar/internal/wire"
)

// dirtyJournalName is the server-wide dirty-region journal on the local
// backend.
const dirtyJournalName = "dirty.journal"

// Journal record kinds. Every record carries the outage epoch so the load
// path can rebuild the epoch set from any record mix.
const (
	dirtyKindEpoch    uint8 = iota + 1 // epoch sighting only; value unused
	dirtyKindUnit                      // data unit owned by the dead server
	dirtyKindMirror                    // unit whose mirror copy lives on it
	dirtyKindStripe                    // parity stripe it owns
	dirtyKindOverflow                  // its overflow stores diverged; value unused
)

// dirtyRecordLen is the encoded body length of one journal record:
// kind (1) + file ID (8) + dead server (2) + epoch (8) + value (8).
const dirtyRecordLen = 1 + 8 + 2 + 8 + 8

// dirtyKey addresses one log: the damage a specific dead server missed for
// a specific file.
type dirtyKey struct {
	file uint64
	dead uint16
}

// dirtyLog is the in-memory state of one (file, dead server) log. Each
// entry remembers the generation of its last MarkDirty; generations are
// not persisted — after a restart they start over, which only makes a
// concurrent ClearDirty more conservative (stale generations never match,
// so entries survive and are replayed again).
type dirtyLog struct {
	epochs      map[uint64]struct{}
	units       map[int64]uint64 // unit -> generation
	mirrors     map[int64]uint64
	stripes     map[int64]uint64
	overflow    bool
	overflowGen uint64
	gen         uint64
}

func newDirtyLog() *dirtyLog {
	return &dirtyLog{
		epochs:  make(map[uint64]struct{}),
		units:   make(map[int64]uint64),
		mirrors: make(map[int64]uint64),
		stripes: make(map[int64]uint64),
	}
}

func (dl *dirtyLog) empty() bool {
	return len(dl.units) == 0 && len(dl.mirrors) == 0 && len(dl.stripes) == 0 && !dl.overflow
}

// dirtyState is the server's dirty-log table plus its journal cursor,
// guarded by its own mutex (independent of mu/jmu; handlers take only it).
type dirtyState struct {
	mu      sync.Mutex
	logs    map[dirtyKey]*dirtyLog
	journal storage.File
	off     int64
}

func dirtyRecord(e *wire.Encoder, kind uint8, fileID uint64, dead uint16, epoch uint64, val int64) {
	e.U32(dirtyRecordLen)
	e.U8(kind)
	e.U64(fileID)
	e.U16(dead)
	e.U64(epoch)
	e.I64(val)
}

// loadDirty replays the dirty journal at startup, so a surviving server's
// damage records outlive its own crash-restarts. The state is rewritten
// once after load to drop any torn tail.
func (s *Server) loadDirty() {
	s.dirty.logs = make(map[dirtyKey]*dirtyLog)
	f := s.disk.Open(dirtyJournalName)
	s.dirty.journal = f
	size := f.Size()
	if size == 0 {
		return
	}
	buf := make([]byte, size)
	f.ReadAt(buf, 0) //nolint:errcheck // zero-fill semantics
	d := wire.Decoder{Buf: buf}
	torn := false
	for {
		n := d.U32()
		if d.Err() != nil || n != dirtyRecordLen {
			torn = d.Err() == nil && n != 0 // trailing garbage vs clean end
			break
		}
		kind := d.U8()
		fileID := d.U64()
		dead := d.U16()
		epoch := d.U64()
		val := d.I64()
		if d.Err() != nil {
			torn = true
			break
		}
		k := dirtyKey{fileID, dead}
		dl := s.dirty.logs[k]
		if dl == nil {
			dl = newDirtyLog()
			s.dirty.logs[k] = dl
		}
		dl.epochs[epoch] = struct{}{}
		dl.gen++
		switch kind {
		case dirtyKindUnit:
			dl.units[val] = dl.gen
		case dirtyKindMirror:
			dl.mirrors[val] = dl.gen
		case dirtyKindStripe:
			dl.stripes[val] = dl.gen
		case dirtyKindOverflow:
			dl.overflow = true
			dl.overflowGen = dl.gen
		}
	}
	s.dirty.off = size
	if torn {
		s.rewriteDirtyLocked()
	}
}

// rewriteDirtyLocked compacts the journal to the current state: one epoch
// record per epoch sighting, one record per live entry. Caller holds
// dirty.mu.
func (s *Server) rewriteDirtyLocked() {
	e := wire.Encoder{Buf: make([]byte, 0, 256)}
	for k, dl := range s.dirty.logs {
		// Item records carry an arbitrary member of the epoch set; the
		// set itself is reconstructed from the dedicated epoch records.
		var anyEpoch uint64
		for ep := range dl.epochs {
			anyEpoch = ep
			break
		}
		for ep := range dl.epochs {
			dirtyRecord(&e, dirtyKindEpoch, k.file, k.dead, ep, 0)
		}
		for v := range dl.units {
			dirtyRecord(&e, dirtyKindUnit, k.file, k.dead, anyEpoch, v)
		}
		for v := range dl.mirrors {
			dirtyRecord(&e, dirtyKindMirror, k.file, k.dead, anyEpoch, v)
		}
		for v := range dl.stripes {
			dirtyRecord(&e, dirtyKindStripe, k.file, k.dead, anyEpoch, v)
		}
		if dl.overflow {
			dirtyRecord(&e, dirtyKindOverflow, k.file, k.dead, anyEpoch, 0)
		}
	}
	if s.dirty.journal == nil {
		s.dirty.journal = s.disk.Open(dirtyJournalName)
	}
	s.dirty.journal.Truncate(0)
	if len(e.Buf) > 0 {
		s.dirty.journal.WriteAt(e.Buf, 0) //nolint:errcheck // local store
	}
	s.dirty.off = int64(len(e.Buf))
	s.dirty.journal.Sync()
}

// dirtyAppendLocked durably appends an encoded record batch. Caller holds
// dirty.mu.
func (s *Server) dirtyAppendLocked(buf []byte) {
	if len(buf) == 0 {
		return
	}
	if s.dirty.journal == nil {
		s.dirty.journal = s.disk.Open(dirtyJournalName)
		s.dirty.off = s.dirty.journal.Size()
	}
	s.dirty.journal.WriteAt(buf, s.dirty.off) //nolint:errcheck // local store
	s.dirty.off += int64(len(buf))
	s.dirty.journal.Sync()
}

// handleMarkDirty merges one degraded write's damage into the log. Every
// mentioned entry gets a fresh generation even when it is already logged —
// that is what makes a re-dirty during resync visible to the clear — but
// only genuinely new entries cost a journal record, so hammering the same
// region does not grow the log.
func (s *Server) handleMarkDirty(m *wire.MarkDirty) (wire.Msg, error) {
	if int(m.Dead) >= int(m.File.Servers) {
		return nil, fmt.Errorf("server: MarkDirty for server %d of a %d-server layout", m.Dead, m.File.Servers)
	}
	k := dirtyKey{m.File.ID, m.Dead}
	s.dirty.mu.Lock()
	defer s.dirty.mu.Unlock()
	dl := s.dirty.logs[k]
	if dl == nil {
		dl = newDirtyLog()
		s.dirty.logs[k] = dl
	}
	e := wire.Encoder{Buf: make([]byte, 0, 4 + dirtyRecordLen)}
	if _, ok := dl.epochs[m.Epoch]; !ok {
		dl.epochs[m.Epoch] = struct{}{}
		dirtyRecord(&e, dirtyKindEpoch, k.file, k.dead, m.Epoch, 0)
	}
	mark := func(set map[int64]uint64, kind uint8, vals []int64) {
		for _, v := range vals {
			dl.gen++
			if _, ok := set[v]; !ok {
				dirtyRecord(&e, kind, k.file, k.dead, m.Epoch, v)
			}
			set[v] = dl.gen
		}
	}
	mark(dl.units, dirtyKindUnit, m.Units)
	mark(dl.mirrors, dirtyKindMirror, m.Mirrors)
	mark(dl.stripes, dirtyKindStripe, m.Stripes)
	if m.Overflow {
		dl.gen++
		if !dl.overflow {
			dirtyRecord(&e, dirtyKindOverflow, k.file, k.dead, m.Epoch, 0)
		}
		dl.overflow = true
		dl.overflowGen = dl.gen
	}
	s.dirtyAppendLocked(e.Buf)
	return &wire.OK{}, nil
}

// handleDirtyDump snapshots one log. Lists are sorted so dumps are
// deterministic; an absent log answers with an empty epoch set, which is
// how resync distinguishes "nothing happened" from "log present".
func (s *Server) handleDirtyDump(m *wire.DirtyDump) (wire.Msg, error) {
	k := dirtyKey{m.File.ID, m.Dead}
	resp := &wire.DirtyDumpResp{}
	s.dirty.mu.Lock()
	defer s.dirty.mu.Unlock()
	dl := s.dirty.logs[k]
	if dl == nil {
		return resp, nil
	}
	for ep := range dl.epochs {
		resp.Epochs = append(resp.Epochs, ep)
	}
	sort.Slice(resp.Epochs, func(i, j int) bool { return resp.Epochs[i] < resp.Epochs[j] })
	items := func(set map[int64]uint64) []wire.DirtyItem {
		out := make([]wire.DirtyItem, 0, len(set))
		for v, g := range set {
			out = append(out, wire.DirtyItem{Val: v, Gen: g})
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Val < out[j].Val })
		return out
	}
	resp.Units = items(dl.units)
	resp.Mirrors = items(dl.mirrors)
	resp.Stripes = items(dl.stripes)
	resp.Overflow = dl.overflow
	resp.OverflowGen = dl.overflowGen
	return resp, nil
}

// handleClearDirty retires replayed entries: each one only if its
// generation still matches the dump it was replayed from. A fully drained
// log disappears, epochs included — the outage is over. The journal is
// rewritten rather than appended to, so clears are also compactions.
func (s *Server) handleClearDirty(m *wire.ClearDirty) (wire.Msg, error) {
	k := dirtyKey{m.File.ID, m.Dead}
	s.dirty.mu.Lock()
	defer s.dirty.mu.Unlock()
	dl := s.dirty.logs[k]
	if dl == nil {
		return &wire.OK{}, nil
	}
	if m.All {
		delete(s.dirty.logs, k)
		s.rewriteDirtyLocked()
		return &wire.OK{}, nil
	}
	retire := func(set map[int64]uint64, items []wire.DirtyItem) {
		for _, it := range items {
			if g, ok := set[it.Val]; ok && g == it.Gen {
				delete(set, it.Val)
			}
		}
	}
	retire(dl.units, m.Units)
	retire(dl.mirrors, m.Mirrors)
	retire(dl.stripes, m.Stripes)
	if m.Overflow && dl.overflow && dl.overflowGen == m.OverflowGen {
		dl.overflow = false
	}
	if dl.empty() {
		delete(s.dirty.logs, k)
	}
	s.rewriteDirtyLocked()
	return &wire.OK{}, nil
}

// dropFileDirty removes every dirty log of a deleted file.
func (s *Server) dropFileDirty(fileID uint64) {
	s.dirty.mu.Lock()
	defer s.dirty.mu.Unlock()
	changed := false
	for k := range s.dirty.logs {
		if k.file == fileID {
			delete(s.dirty.logs, k)
			changed = true
		}
	}
	if changed {
		s.rewriteDirtyLocked()
	}
}
