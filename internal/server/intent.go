// Stripe intent journal and leased parity locks — the server half of the
// RAID5 write-hole closure.
//
// A locked ReadParity opens one durable *write intent* per stripe before
// its response leaves the server, and the closing WriteParity retires it;
// after any crash the journal's surviving intents are exactly the stripes
// whose parity may not match their data. A lock acquisition may carry a
// lease deadline, renewed by the client's RenewLease heartbeat; when it
// passes, the server revokes the lock, wakes the FIFO queue canceled and
// marks the intent *abandoned* — a dead client can no longer wedge a
// stripe forever. Abandoned stripes fail-stop: new lock acquisitions are
// refused (wire.ErrStripeTorn) until recovery replays the stripe with
// ResolveIntent, or a fresh full-stripe parity write supersedes it.
package server

import (
	"fmt"
	"time"

	"csar/internal/wire"
)

// intentJournalName is the server-wide journal file on the local backend.
const intentJournalName = "intents.journal"

// Journal record operations.
const (
	intentOpOpen uint8 = iota + 1
	intentOpRetire
	intentOpAbandon
)

// intentRecordLen is the encoded body length of one journal record:
// op (1) + file ID (8) + stripe (8) + owner (8).
const intentRecordLen = 1 + 8 + 8 + 8

// intentRec is one stripe's write intent. A nil deadline timer means the
// acquisition carried no lease (legacy callers); it then lives until its
// unlocking write, an UnlockParity cancellation, or a server restart.
type intentRec struct {
	owner     uint64
	abandoned bool
	deadline  time.Time   // zero: no lease
	timer     *time.Timer // armed iff deadline is set
}

// IntentStats is a snapshot of the server's intent/lease counters.
type IntentStats struct {
	Opened        int64 // intents opened by locked parity reads
	Retired       int64 // intents committed by their unlocking parity write
	Abandoned     int64 // lease expiries + UnlockParity + crash-restart loads
	Resolved      int64 // abandoned intents retired by replay or a full-stripe write
	LeaseRenewals int64 // stripes renewed by RenewLease
	LeaseExpiries int64 // leases the server revoked
}

// IntentStats returns the current intent/lease counters.
func (s *Server) IntentStats() IntentStats {
	return IntentStats{
		Opened:        s.intOpened.Load(),
		Retired:       s.intRetired.Load(),
		Abandoned:     s.intAbandoned.Load(),
		Resolved:      s.intResolved.Load(),
		LeaseRenewals: s.leaseRenewals.Load(),
		LeaseExpiries: s.leaseExpiries.Load(),
	}
}

// journalAppend durably appends one record. delta is the change to the
// count of live intents (+1 open, -1 retire, 0 abandon); when the count
// drops to zero the journal is truncated — the whole history is balanced
// open/retire pairs, so an empty live set compacts to an empty log.
// Lock order: callers may hold sf.mu; jmu nests inside it.
func (s *Server) journalAppend(op uint8, fileID uint64, stripe int64, owner uint64, delta int) {
	e := wire.Encoder{Buf: make([]byte, 0, 4+intentRecordLen)}
	e.U32(intentRecordLen)
	e.U8(op)
	e.U64(fileID)
	e.I64(stripe)
	e.U64(owner)

	s.jmu.Lock()
	defer s.jmu.Unlock()
	if s.journal == nil {
		s.journal = s.disk.Open(intentJournalName)
		s.jOff = s.journal.Size()
	}
	s.jLive += delta
	if s.jLive <= 0 {
		s.jLive = 0
		s.journal.Truncate(0)
		s.jOff = 0
		if op == intentOpRetire {
			// Nothing live: the retire needs no record either.
			s.journal.Sync()
			return
		}
	}
	s.journal.WriteAt(e.Buf, s.jOff) //nolint:errcheck // local store
	s.jOff += int64(len(e.Buf))
	s.journal.Sync()
}

// loadIntents replays the journal at startup. Every surviving intent —
// open or already abandoned — is marked abandoned: the server just
// restarted, so no pre-crash update can still be in flight and each such
// stripe is possibly torn. Survivors are parked in s.pendingIntents and
// adopted when the file record is first materialized. The journal is then
// compacted to one abandon record per survivor, so repeated crashes do
// not grow it. A torn final record (crash mid-append) is ignored.
func (s *Server) loadIntents() {
	f := s.disk.Open(intentJournalName)
	size := f.Size()
	if size == 0 {
		s.journal, s.jOff = f, 0
		return
	}
	buf := make([]byte, size)
	f.ReadAt(buf, 0) //nolint:errcheck // zero-fill semantics
	live := make(map[uint64]map[int64]uint64)
	d := wire.Decoder{Buf: buf}
	for {
		n := d.U32()
		if d.Err() != nil || n != intentRecordLen {
			break // end of log or torn tail
		}
		op := d.U8()
		fileID := d.U64()
		stripe := d.I64()
		owner := d.U64()
		if d.Err() != nil {
			break
		}
		switch op {
		case intentOpOpen, intentOpAbandon:
			if live[fileID] == nil {
				live[fileID] = make(map[int64]uint64)
			}
			live[fileID][stripe] = owner
		case intentOpRetire:
			delete(live[fileID], stripe)
		}
	}

	// Compact: the surviving set, each as a single abandon record.
	e := wire.Encoder{Buf: make([]byte, 0, 64)}
	count := 0
	for fileID, stripes := range live {
		for stripe, owner := range stripes {
			e.U32(intentRecordLen)
			e.U8(intentOpAbandon)
			e.U64(fileID)
			e.I64(stripe)
			e.U64(owner)
			count++
			s.intAbandoned.Add(1)
		}
		if len(stripes) == 0 {
			delete(live, fileID)
		}
	}
	f.Truncate(0)
	if count > 0 {
		f.WriteAt(e.Buf, 0) //nolint:errcheck
	}
	f.Sync()
	s.journal = f
	s.jOff = int64(len(e.Buf))
	s.jLive = count
	s.pendingIntents = live
}

// adoptIntents moves journal-loaded intents for a file onto its fresh
// serverFile record. Caller holds s.mu.
func (s *Server) adoptIntents(sf *serverFile) {
	stripes := s.pendingIntents[sf.ref.ID]
	if stripes == nil {
		return
	}
	for stripe, owner := range stripes {
		sf.intents[stripe] = &intentRec{owner: owner, abandoned: true}
	}
	delete(s.pendingIntents, sf.ref.ID)
}

// openIntents records one durable write intent per just-locked stripe and
// arms its lease, immediately before the locked ReadParity response
// returns. The journal append happens before the client can act on the
// grant, so a crash at any later point leaves the stripe covered.
func (s *Server) openIntents(sf *serverFile, stripes []int64, owner uint64, leaseMS uint32) {
	for _, stripe := range stripes {
		sf.mu.Lock()
		rec := &intentRec{owner: owner}
		sf.intents[stripe] = rec
		if leaseMS > 0 {
			dur := time.Duration(leaseMS) * time.Millisecond
			rec.deadline = time.Now().Add(dur)
			st := stripe
			rec.timer = time.AfterFunc(dur, func() { s.leaseCheck(sf, st, owner) })
		}
		s.journalAppend(intentOpOpen, sf.ref.ID, stripe, owner, +1)
		sf.mu.Unlock()
		s.intOpened.Add(1)
	}
}

// retireIntent commits the intent of one stripe: its unlocking parity
// write landed, the stripe is consistent again. A mismatched or missing
// intent is a no-op (the acquisition was canceled or already expired —
// the caller's refusal paths handle those).
func (sf *serverFile) retireIntent(s *Server, stripe int64, owner uint64) {
	sf.mu.Lock()
	rec := sf.intents[stripe]
	if rec == nil || rec.owner != owner || rec.abandoned {
		sf.mu.Unlock()
		return
	}
	if rec.timer != nil {
		rec.timer.Stop()
	}
	delete(sf.intents, stripe)
	s.journalAppend(intentOpRetire, sf.ref.ID, stripe, owner, -1)
	sf.mu.Unlock()
	s.intRetired.Add(1)
}

// abandonIntent marks one stripe's intent abandoned (lease revoked or the
// client compensated with UnlockParity after an unknown outcome). The
// stripe fail-stops until replay. Caller holds sf.mu; reports whether the
// intent transitioned.
func (sf *serverFile) abandonIntentLocked(s *Server, stripe int64, owner uint64) bool {
	rec := sf.intents[stripe]
	if rec == nil || rec.owner != owner || rec.abandoned {
		return false
	}
	rec.abandoned = true
	if rec.timer != nil {
		rec.timer.Stop()
	}
	s.journalAppend(intentOpAbandon, sf.ref.ID, stripe, owner, 0)
	return true
}

// failStopLocked abandons owner's open intent on stripe and revokes the
// parity lock, waking every queued waiter canceled — the stripe's parity
// may be stale, so nobody may build a read-modify-write on it until
// replay. Caller holds sf.mu; the returned waiters must be woken (false)
// after it is released. Reports whether the intent transitioned.
func (sf *serverFile) failStopLocked(s *Server, stripe int64, owner uint64) (bool, []lockWaiter) {
	if !sf.abandonIntentLocked(s, stripe, owner) {
		return false, nil
	}
	if owner != 0 {
		// Late frames under the fenced token must be refused, like a
		// client-initiated cancellation.
		sf.rememberCanceled(owner)
	}
	var woken []lockWaiter
	l := sf.locks[stripe]
	if l != nil && l.held && l.owner == owner {
		woken = l.queue
		l.queue = nil
		l.held = false
		l.owner = 0
	}
	return true, woken
}

// leaseCheck runs when a lease timer fires. A renewed deadline re-arms the
// timer; an expired one fail-stops the stripe: the lock is revoked, the
// queue canceled, the intent abandoned.
func (s *Server) leaseCheck(sf *serverFile, stripe int64, owner uint64) {
	sf.mu.Lock()
	rec := sf.intents[stripe]
	if rec == nil || rec.owner != owner || rec.abandoned || rec.deadline.IsZero() {
		sf.mu.Unlock()
		return
	}
	if rem := time.Until(rec.deadline); rem > 0 {
		rec.timer.Reset(rem)
		sf.mu.Unlock()
		return
	}
	_, woken := sf.failStopLocked(s, stripe, owner)
	sf.mu.Unlock()
	for _, w := range woken {
		w.ch <- false
	}
	s.leaseExpiries.Add(1)
	s.intAbandoned.Add(1)
}

// handleRenewLease extends the lease deadline of every still-live
// acquisition matching (stripe, owner). Stripes whose lease already
// expired (or that hold no matching intent) are simply not counted — the
// client compares Renewed against what it asked for and fences itself.
func (s *Server) handleRenewLease(m *wire.RenewLease) (wire.Msg, error) {
	sf, err := s.file(m.File)
	if err != nil {
		return nil, err
	}
	if m.LeaseMS == 0 {
		return nil, fmt.Errorf("server: renew with zero lease")
	}
	dur := time.Duration(m.LeaseMS) * time.Millisecond
	var renewed uint32
	for _, stripe := range m.Stripes {
		if _, ok := sf.geom.ParityUnitOn(s.idx, stripe); !ok {
			return nil, fmt.Errorf("server %d does not hold parity of stripe %d", s.idx, stripe)
		}
		sf.mu.Lock()
		rec := sf.intents[stripe]
		if rec != nil && !rec.abandoned && rec.owner == m.Owner && !rec.deadline.IsZero() {
			rec.deadline = time.Now().Add(dur)
			renewed++
		}
		sf.mu.Unlock()
	}
	s.leaseRenewals.Add(int64(renewed))
	return &wire.RenewLeaseResp{Renewed: renewed}, nil
}

// handleListIntents reports the file's write intents — the exact set of
// stripes whose parity may disagree with their data. Recovery replays the
// abandoned ones; the scrubber skips all of them.
func (s *Server) handleListIntents(m *wire.ListIntents) (wire.Msg, error) {
	sf, err := s.file(m.File)
	if err != nil {
		return nil, err
	}
	sf.mu.Lock()
	resp := &wire.ListIntentsResp{Intents: make([]wire.Intent, 0, len(sf.intents))}
	for stripe, rec := range sf.intents {
		resp.Intents = append(resp.Intents, wire.Intent{
			Stripe: stripe, Owner: rec.owner, Abandoned: rec.abandoned,
		})
	}
	sf.mu.Unlock()
	return resp, nil
}

// handleResolveIntent retires an abandoned intent by installing parity
// recomputed from the stripe's data units. The check-write-retire runs
// atomically under sf.mu: a concurrent full-stripe write retires the
// intent under the same mutex before writing its own parity, so either
// this replay sees no intent and writes nothing, or the superseding
// parity write is ordered after the replayed bytes. An intent that is
// still open belongs to a live update and is refused; a missing one is
// already resolved.
func (s *Server) handleResolveIntent(m *wire.ResolveIntent) (wire.Msg, error) {
	sf, err := s.file(m.File)
	if err != nil {
		return nil, err
	}
	if _, ok := sf.geom.ParityUnitOn(s.idx, m.Stripe); !ok {
		return nil, fmt.Errorf("server %d does not hold parity of stripe %d", s.idx, m.Stripe)
	}
	su := sf.geom.StripeUnit
	if int64(len(m.Data)) != su {
		return nil, fmt.Errorf("server: resolve payload %d bytes, parity unit is %d", len(m.Data), su)
	}
	par := sf.store(s.disk, StoreParity) // before sf.mu: store() locks it

	sf.mu.Lock()
	rec := sf.intents[m.Stripe]
	if rec == nil {
		sf.mu.Unlock()
		return &wire.OK{}, nil // already resolved or superseded
	}
	if !rec.abandoned {
		sf.mu.Unlock()
		return nil, fmt.Errorf("server: intent of stripe %d still open", m.Stripe)
	}
	if m.Owner != 0 && rec.owner != m.Owner {
		sf.mu.Unlock()
		return nil, fmt.Errorf("server: intent of stripe %d abandoned under a different token", m.Stripe)
	}
	s.writePiece(par, sf.geom.ParityLocalOffsetOn(s.idx, m.Stripe), m.Data)
	if rec.timer != nil {
		rec.timer.Stop()
	}
	delete(sf.intents, m.Stripe)
	s.journalAppend(intentOpRetire, sf.ref.ID, m.Stripe, rec.owner, -1)
	sf.mu.Unlock()
	s.intResolved.Add(1)
	return &wire.OK{}, nil
}

// resolveAbandonedByWrite retires any abandoned intents among stripes: a
// fresh full-stripe parity write is about to install parity that is
// correct by construction, superseding whatever tear the intent recorded.
// Called before the parity bytes are written (see handleResolveIntent for
// the ordering argument).
func (s *Server) resolveAbandonedByWrite(sf *serverFile, stripes []int64) {
	for _, stripe := range stripes {
		sf.mu.Lock()
		rec := sf.intents[stripe]
		if rec != nil && rec.abandoned {
			if rec.timer != nil {
				rec.timer.Stop()
			}
			delete(sf.intents, stripe)
			s.journalAppend(intentOpRetire, sf.ref.ID, stripe, rec.owner, -1)
			sf.mu.Unlock()
			s.intResolved.Add(1)
			continue
		}
		sf.mu.Unlock()
	}
}

// dropFileIntents retires every intent of a removed file.
func (s *Server) dropFileIntents(sf *serverFile) {
	sf.mu.Lock()
	for stripe, rec := range sf.intents {
		if rec.timer != nil {
			rec.timer.Stop()
		}
		delete(sf.intents, stripe)
		s.journalAppend(intentOpRetire, sf.ref.ID, stripe, rec.owner, -1)
	}
	sf.mu.Unlock()
}
