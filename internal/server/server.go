// Package server implements the CSAR I/O daemon — the per-node storage
// server that PVFS calls an iod, extended with the redundancy machinery of
// the paper:
//
//   - five local stores per file: the data file (identical layout to PVFS),
//     the RAID1 mirror file, the RAID5 parity file, and the Hybrid scheme's
//     overflow region plus its mirror;
//   - the overflow table mapping logical byte ranges to overflow contents,
//     consulted on every read so clients always receive the newest data
//     (Section 4, "the I/O servers return the latest copy of the data which
//     could be in the overflow region");
//   - the parity-lock table of Section 5.1: a read of a parity unit with the
//     lock flag set acquires a FIFO lock on that stripe's parity, released
//     by the subsequent parity write;
//   - the write-buffering scheme of Section 5.2, which coalesces the data
//     received from the network into aligned, full-block disk writes.
//
// A Server is driven through its Handle method, which satisfies rpc.Handler.
package server

import (
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"
	"time"

	"csar/internal/extent"
	"csar/internal/obs"
	"csar/internal/raid"
	"csar/internal/simtime"
	"csar/internal/storage"
	"csar/internal/wire"
)

// Store indexes the five per-file local stores.
type Store int

// The store kinds, in the order reported by wire.StorageStatResp.ByStore.
const (
	StoreData Store = iota
	StoreMirror
	StoreParity
	StoreOverflow
	StoreOverflowMirror
	numStores
)

var storeSuffix = [numStores]string{"data", "mirror", "parity", "overflow", "ovmirror"}

// Options tunes a server.
type Options struct {
	// WriteBuffering enables the Section 5.2 fix: incoming data is
	// accumulated and flushed to the local store in block-aligned pieces.
	// When disabled, data is written in network-receive-sized chunks as it
	// arrives, reproducing the partial-block write problem.
	WriteBuffering bool
	// RecvChunk is the size of one modeled non-blocking network receive,
	// used when WriteBuffering is off. Defaults to 8 KiB.
	RecvChunk int
	// Clock is the performance-model time base; nil runs untimed.
	Clock *simtime.Clock
	// RequestCPU is the modeled per-request processing cost of the iod
	// (request parsing, buffer management, syscalls — a few hundred
	// microseconds on the paper's 1 GHz Pentium III nodes). Charged per
	// request when the clock is timed.
	RequestCPU time.Duration
	// PageSize is the local block size the write-buffering path aligns
	// flushes to. Defaults to 4 KiB.
	PageSize int
	// SlowOp, when positive, logs every request whose handling takes longer
	// (with its kind, duration and trace ID) — the server end of the
	// client's operation tracing.
	SlowOp time.Duration
}

// DefaultOptions returns the production configuration (write buffering on).
func DefaultOptions() Options {
	return Options{WriteBuffering: true, RecvChunk: 8 << 10, PageSize: 4096}
}

// Server is one I/O daemon.
type Server struct {
	idx  int
	disk storage.Backend
	opts Options
	cpu  *simtime.Limiter // serial request processing, like the iod's event loop

	requests atomic.Int64

	mu    sync.Mutex
	files map[uint64]*serverFile

	// Stripe intent journal (see intent.go). jmu nests inside sf.mu.
	jmu     sync.Mutex
	journal storage.File
	jOff    int64 // append cursor
	jLive   int   // live (open or abandoned) intents across all files
	// pendingIntents holds journal-loaded intents (fileID -> stripe ->
	// owner) not yet adopted by a serverFile record. Guarded by mu.
	pendingIntents map[uint64]map[int64]uint64

	// Dirty-region logs of outages this server witnessed as a survivor
	// (see dirty.go). Self-locking; independent of mu and jmu.
	dirty dirtyState

	intOpened     atomic.Int64
	intRetired    atomic.Int64
	intAbandoned  atomic.Int64
	intResolved   atomic.Int64
	leaseRenewals atomic.Int64
	leaseExpiries atomic.Int64

	// obs holds the per-RPC-kind latency histograms and the store-level
	// counters/gauges served by the Stats RPC and the /metrics endpoint
	// (stats.go).
	obs *obs.Registry
}

// Requests returns the number of requests handled since startup.
func (s *Server) Requests() int64 { return s.requests.Load() }

type serverFile struct {
	ref  wire.FileRef
	geom raid.Geometry

	mu       sync.Mutex
	stores   [numStores]storage.File
	ovTable  extent.Map      // logical range -> offset in overflow store
	ovmTable extent.Map      // logical range -> offset in overflow-mirror store
	ovNext   int64           // allocation cursor of the overflow store
	ovmNext  int64           // allocation cursor of the overflow-mirror store
	ovSlots  map[int64]int64 // stripe unit -> its slot base in the overflow store
	ovmSlots map[int64]int64 // stripe unit -> slot base in the overflow mirror
	locks    map[int64]*parityLock
	// intents holds the file's stripe write intents: open ones belong to
	// an in-flight locked read-modify-write, abandoned ones mark possibly
	// torn stripes that refuse new parity locks until replayed (intent.go).
	intents map[int64]*intentRec
	// canceled remembers tokens whose acquisitions UnlockParity canceled, so
	// a late-arriving locked ReadParity (its frame delivered after the
	// client's compensating UnlockParity was processed) is refused instead of
	// re-acquiring a lock nobody will ever release. canceledFIFO bounds it.
	canceled     map[uint64]struct{}
	canceledFIFO []uint64
}

// canceledTokensMax bounds the canceled-token memory per file. Tokens are
// single-use, so an evicted entry only matters if its locked read is still
// in flight after 4096 later cancellations on the same file — far beyond any
// plausible frame reordering window.
const canceledTokensMax = 4096

// parityLock is one stripe's FIFO parity lock. owner is the token of the
// holding acquisition (0 for legacy lockers that carry none); each queued
// waiter remembers its own token so UnlockParity can surgically cancel a
// dead peer's acquisition — held or still queued — without disturbing
// anyone else's.
type parityLock struct {
	held  bool
	owner uint64
	queue []lockWaiter
}

type lockWaiter struct {
	ch    chan bool // true: granted; false: canceled by UnlockParity
	owner uint64
}

// New creates a server with the given index (its position in every file's
// stripe layout) backed by disk.
func New(idx int, disk storage.Backend, opts Options) *Server {
	if opts.RecvChunk <= 0 {
		opts.RecvChunk = 8 << 10
	}
	if opts.PageSize <= 0 {
		opts.PageSize = 4096
	}
	s := &Server{
		idx:   idx,
		disk:  disk,
		opts:  opts,
		cpu:   simtime.NewLimiter(opts.Clock, 1), // durations only
		files: make(map[uint64]*serverFile),
		obs:   obs.NewRegistry(),
	}
	s.registerGauges()
	s.loadIntents()
	s.loadDirty()
	return s
}

// Index returns the server's position in the stripe layout.
func (s *Server) Index() int { return s.idx }

// Disk exposes the underlying storage (tests and the harness inspect its
// storage totals).
func (s *Server) Disk() storage.Backend { return s.disk }

func (s *Server) file(ref wire.FileRef) (*serverFile, error) {
	g := raid.Geometry{Servers: int(ref.Servers), StripeUnit: int64(ref.StripeUnit)}
	if ref.Scheme == wire.ReedSolomon {
		g.ParityUnits = ref.ParityUnits()
		if err := g.ValidateParity(); err != nil {
			return nil, err
		}
	} else if err := g.Validate(); err != nil {
		return nil, err
	}
	if s.idx >= g.Servers {
		return nil, fmt.Errorf("server %d not part of %d-server layout", s.idx, g.Servers)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sf := s.files[ref.ID]
	if sf == nil {
		sf = &serverFile{
			ref:      ref,
			geom:     g,
			ovSlots:  make(map[int64]int64),
			ovmSlots: make(map[int64]int64),
			locks:    make(map[int64]*parityLock),
			intents:  make(map[int64]*intentRec),
			canceled: make(map[uint64]struct{}),
		}
		s.adoptIntents(sf)
		s.files[ref.ID] = sf
	}
	return sf, nil
}

func (sf *serverFile) store(d storage.Backend, k Store) storage.File {
	sf.mu.Lock()
	defer sf.mu.Unlock()
	if sf.stores[k] == nil {
		sf.stores[k] = d.Open(fmt.Sprintf("f%06d.%s", sf.ref.ID, storeSuffix[k]))
	}
	return sf.stores[k]
}

// Handle dispatches one request. It satisfies rpc.Handler.
func (s *Server) Handle(req wire.Msg) (wire.Msg, error) {
	return s.HandleTraced(req, 0)
}

func (s *Server) dispatch(req wire.Msg) (wire.Msg, error) {
	switch m := req.(type) {
	case *wire.Ping:
		return &wire.OK{}, nil
	case *wire.Health:
		return &wire.HealthResp{Index: uint16(s.idx), Requests: s.requests.Load()}, nil
	case *wire.UnlockParity:
		return s.handleUnlockParity(m)
	case *wire.RenewLease:
		return s.handleRenewLease(m)
	case *wire.ListIntents:
		return s.handleListIntents(m)
	case *wire.ResolveIntent:
		return s.handleResolveIntent(m)
	case *wire.MarkDirty:
		return s.handleMarkDirty(m)
	case *wire.DirtyDump:
		return s.handleDirtyDump(m)
	case *wire.ClearDirty:
		return s.handleClearDirty(m)
	case *wire.Read:
		return s.handleRead(m)
	case *wire.WriteData:
		return s.handleWriteData(m)
	case *wire.WriteMirror:
		return s.handleWriteMirror(m)
	case *wire.ReadMirror:
		return s.handleReadMirror(m)
	case *wire.ReadParity:
		return s.handleReadParity(m)
	case *wire.WriteParity:
		return s.handleWriteParity(m)
	case *wire.WriteOverflow:
		return s.handleWriteOverflow(m)
	case *wire.InvalidateOverflow:
		return s.handleInvalidateOverflow(m)
	case *wire.OverflowDump:
		return s.handleOverflowDump(m)
	case *wire.Sync:
		return s.handleSync(m)
	case *wire.DropCaches:
		s.disk.DropCaches()
		return &wire.OK{}, nil
	case *wire.StorageStat:
		return s.handleStorageStat(m)
	case *wire.RemoveFile:
		return s.handleRemoveFile(m)
	case *wire.CompactOverflow:
		return s.handleCompactOverflow(m)
	case *wire.ChecksumRange:
		return s.handleChecksumRange(m)
	case *wire.Stats:
		return s.handleStats()
	default:
		return nil, fmt.Errorf("server: unsupported request %T", req)
	}
}

// writePiece writes one contiguous piece of incoming data to a local store,
// modeling how the data actually reached the disk. With write buffering the
// piece lands in at most three aligned flushes (unaligned head, full pages,
// unaligned tail). Without it, every modeled network receive chunk is
// written immediately, so pages straddling chunk boundaries are first
// touched by partial writes and pay the forced read of Section 5.2.
func (s *Server) writePiece(f storage.File, off int64, p []byte) {
	if len(p) == 0 {
		return
	}
	if s.opts.WriteBuffering {
		ps := int64(s.opts.PageSize)
		end := off + int64(len(p))
		headEnd := off
		if r := off % ps; r != 0 {
			headEnd = off - r + ps
			if headEnd > end {
				headEnd = end
			}
		}
		bodyEnd := end - end%ps
		if bodyEnd < headEnd {
			bodyEnd = headEnd
		}
		if headEnd > off {
			f.WriteAt(p[:headEnd-off], off) //nolint:errcheck // offsets validated
		}
		if bodyEnd > headEnd {
			f.WriteAt(p[headEnd-off:bodyEnd-off], headEnd) //nolint:errcheck
		}
		if end > bodyEnd {
			f.WriteAt(p[bodyEnd-off:], bodyEnd) //nolint:errcheck
		}
		return
	}
	for i := 0; i < len(p); i += s.opts.RecvChunk {
		e := i + s.opts.RecvChunk
		if e > len(p) {
			e = len(p)
		}
		f.WriteAt(p[i:e], off+int64(i)) //nolint:errcheck
	}
}

// handleRead returns the concatenated bytes of the pieces of each span that
// this server stores, in span order then offset order — the same iteration
// the client uses to reassemble. Unless Raw is set, overflow-region contents
// override the data file.
func (s *Server) handleRead(m *wire.Read) (wire.Msg, error) {
	sf, err := s.file(m.File)
	if err != nil {
		return nil, err
	}
	data := sf.store(s.disk, StoreData)
	var total int64
	for _, sp := range m.Spans {
		sf.geom.ToLocal(s.idx, sp.Off, sp.Len, func(_, _, n int64) { total += n })
	}
	// One exact-size response buffer, read into in place: a multi-span read
	// costs a single allocation instead of one per piece plus append growth.
	out := make([]byte, 0, total)
	for _, sp := range m.Spans {
		sf.geom.ToLocal(s.idx, sp.Off, sp.Len, func(logical, local, n int64) {
			buf := out[len(out) : len(out)+int(n)]
			out = out[:len(out)+int(n)]
			data.ReadAt(buf, local) //nolint:errcheck // zero-fill semantics
			if !m.Raw {
				s.patchOverflow(sf, logical, buf)
			}
		})
	}
	return &wire.ReadResp{Data: out}, nil
}

// patchOverflow overlays overflow-region bytes onto buf, which holds the
// logical range [logical, logical+len(buf)).
func (s *Server) patchOverflow(sf *serverFile, logical int64, buf []byte) {
	sf.mu.Lock()
	hits := make([]extent.Extent, 0, 4)
	sf.ovTable.Lookup(logical, int64(len(buf)), func(l, src, n int64) {
		hits = append(hits, extent.Extent{Off: l, Len: n, Src: src})
	}, nil)
	sf.mu.Unlock()
	if len(hits) == 0 {
		return
	}
	ov := sf.store(s.disk, StoreOverflow)
	for _, h := range hits {
		ov.ReadAt(buf[h.Off-logical:h.Off-logical+h.Len], h.Src) //nolint:errcheck
	}
}

func (s *Server) handleWriteData(m *wire.WriteData) (wire.Msg, error) {
	sf, err := s.file(m.File)
	if err != nil {
		return nil, err
	}
	data := sf.store(s.disk, StoreData)
	cur := int64(0)
	for _, sp := range m.Spans {
		sf.geom.ToLocal(s.idx, sp.Off, sp.Len, func(logical, local, n int64) {
			if cur+n > int64(len(m.Data)) {
				err = fmt.Errorf("server: write payload short: need %d, have %d", cur+n, len(m.Data))
				return
			}
			s.writePiece(data, local, m.Data[cur:cur+n])
			cur += n
		})
	}
	if err != nil {
		return nil, err
	}
	if m.File.Scheme == wire.Hybrid && !m.Raw {
		// A Hybrid client writes data in place only for full-stripe
		// portions, which supersede any overflow contents of the same
		// range: "when a client issues a full-stripe write any data in the
		// overflow region for that stripe is invalidated" (Section 4).
		// The written span covers whole stripes — every server's units —
		// so this server can also invalidate its overflow-mirror entries
		// (which mirror the previous server's units) without any extra
		// message. Raw writes (scrub repairs, rebuilds) restore the
		// in-place bytes only and must leave the overflow tables alone —
		// the overflow still holds the newest data for those ranges.
		sf.mu.Lock()
		for _, sp := range m.Spans {
			sf.ovTable.Invalidate(sp.Off, sp.Len)
			sf.ovmTable.Invalidate(sp.Off, sp.Len)
		}
		sf.mu.Unlock()
	}
	return &wire.OK{}, nil
}

func (s *Server) handleWriteMirror(m *wire.WriteMirror) (wire.Msg, error) {
	sf, err := s.file(m.File)
	if err != nil {
		return nil, err
	}
	mir := sf.store(s.disk, StoreMirror)
	cur := int64(0)
	for _, sp := range m.Spans {
		sf.geom.ToMirrorLocal(s.idx, sp.Off, sp.Len, func(logical, local, n int64) {
			if cur+n > int64(len(m.Data)) {
				err = fmt.Errorf("server: mirror payload short: need %d, have %d", cur+n, len(m.Data))
				return
			}
			s.writePiece(mir, local, m.Data[cur:cur+n])
			cur += n
		})
	}
	if err != nil {
		return nil, err
	}
	return &wire.OK{}, nil
}

func (s *Server) handleReadMirror(m *wire.ReadMirror) (wire.Msg, error) {
	sf, err := s.file(m.File)
	if err != nil {
		return nil, err
	}
	mir := sf.store(s.disk, StoreMirror)
	var out []byte
	for _, sp := range m.Spans {
		sf.geom.ToMirrorLocal(s.idx, sp.Off, sp.Len, func(logical, local, n int64) {
			buf := make([]byte, n)
			mir.ReadAt(buf, local) //nolint:errcheck
			out = append(out, buf...)
		})
	}
	return &wire.ReadResp{Data: out}, nil
}

func (s *Server) handleReadParity(m *wire.ReadParity) (wire.Msg, error) {
	sf, err := s.file(m.File)
	if err != nil {
		return nil, err
	}
	par := sf.store(s.disk, StoreParity)
	su := sf.geom.StripeUnit
	out := make([]byte, 0, int64(len(m.Stripes))*su)
	// Locks acquired by this request so far: a failure on a later stripe
	// must release them, or they would be held forever (the client sees one
	// error for the whole request and never sends the unlocking writes).
	var acquired []int64
	rollback := func() {
		for _, stripe := range acquired {
			sf.unlockStripeOwned(stripe, m.Owner)
		}
	}
	for _, stripe := range m.Stripes {
		if _, ok := sf.geom.ParityUnitOn(s.idx, stripe); !ok {
			rollback()
			return nil, fmt.Errorf("server %d does not hold parity of stripe %d", s.idx, stripe)
		}
		if m.Lock {
			if err := sf.lockStripe(stripe, m.Owner); err != nil {
				rollback()
				return nil, err
			}
			acquired = append(acquired, stripe)
		}
		buf := make([]byte, su)
		par.ReadAt(buf, sf.geom.ParityLocalOffsetOn(s.idx, stripe)) //nolint:errcheck
		out = append(out, buf...)
	}
	if m.Lock {
		// All stripes locked: open their durable write intents before the
		// grant leaves the server, so from here to the unlocking parity
		// write every possibly-torn state is journal-covered.
		s.openIntents(sf, m.Stripes, m.Owner, m.LeaseMS)
	}
	return &wire.ReadResp{Data: out}, nil
}

func (s *Server) handleWriteParity(m *wire.WriteParity) (wire.Msg, error) {
	sf, err := s.file(m.File)
	if err != nil {
		return nil, err
	}
	par := sf.store(s.disk, StoreParity)
	su := sf.geom.StripeUnit
	if int64(len(m.Data)) != int64(len(m.Stripes))*su {
		return nil, fmt.Errorf("server: parity payload %d bytes for %d stripes of %d",
			len(m.Data), len(m.Stripes), su)
	}
	for _, stripe := range m.Stripes {
		if _, ok := sf.geom.ParityUnitOn(s.idx, stripe); !ok {
			return nil, fmt.Errorf("server %d does not hold parity of stripe %d", s.idx, stripe)
		}
		// A tokened unlocking write is an RMW completion and is only valid
		// while its lock acquisition still holds: if the token no longer owns
		// the lock, the acquisition was canceled (the client timed out and
		// compensated with UnlockParity), making this frame a late ghost —
		// refuse it before writing anything, or its bytes would clobber
		// parity now serialized under another client's lock. Checked for all
		// stripes up front so a multi-stripe ghost writes nothing. Tokenless
		// (Owner 0) unlocks keep the legacy lenient behavior for callers
		// predating the resilience layer.
		if m.Unlock && m.Owner != 0 {
			// An abandoned intent under this token fences the write even if
			// the lock bookkeeping has not caught up: the lease was revoked
			// (or the client canceled with unknown outcome) and the stripe
			// awaits replay, so the late completion must not land
			// (wire.ErrLeaseExpired tells the writer it lost its lease, not
			// merely the lock).
			sf.mu.Lock()
			rec := sf.intents[stripe]
			expired := rec != nil && rec.owner == m.Owner && rec.abandoned
			sf.mu.Unlock()
			if expired {
				return nil, fmt.Errorf("server: parity write of stripe %d: %w", stripe, wire.ErrLeaseExpired)
			}
			if !sf.ownsLock(stripe, m.Owner) {
				return nil, fmt.Errorf("server: parity lock of stripe %d not held under this token", stripe)
			}
		}
	}
	if !m.Unlock {
		// A fresh full-stripe parity write installs parity correct by
		// construction, superseding any tear an abandoned intent recorded.
		// Retired before the bytes land (see handleResolveIntent for the
		// ordering argument against a racing replay).
		s.resolveAbandonedByWrite(sf, m.Stripes)
	}
	for i, stripe := range m.Stripes {
		s.writePiece(par, sf.geom.ParityLocalOffsetOn(s.idx, stripe), m.Data[int64(i)*su:int64(i+1)*su])
		if m.Unlock {
			// Commit: the read-modify-write completed, the stripe is
			// consistent again. The intent retires before the lock hands
			// off, so the next holder's open cannot collide.
			sf.retireIntent(s, stripe, m.Owner)
			sf.unlockStripeOwned(stripe, m.Owner)
		}
	}
	if m.File.Scheme == wire.Hybrid && !m.Unlock {
		// A fresh (non-RMW) parity write means a full-stripe write is
		// superseding these stripes. This server holds no data of the
		// stripes it stores parity for, so it receives no WriteData for a
		// single-stripe body — but its overflow-mirror table may still
		// cover the previous server's units inside them. Invalidate here
		// so the migration back to RAID5 is complete on every server.
		sf.mu.Lock()
		for _, stripe := range m.Stripes {
			off := sf.geom.StripeStart(stripe)
			sf.ovTable.Invalidate(off, sf.geom.StripeSize())
			sf.ovmTable.Invalidate(off, sf.geom.StripeSize())
		}
		sf.mu.Unlock()
	}
	return &wire.OK{}, nil
}

func (s *Server) handleWriteOverflow(m *wire.WriteOverflow) (wire.Msg, error) {
	sf, err := s.file(m.File)
	if err != nil {
		return nil, err
	}
	k, tbl, next, slots := StoreOverflow, &sf.ovTable, &sf.ovNext, sf.ovSlots
	if m.Mirror {
		k, tbl, next, slots = StoreOverflowMirror, &sf.ovmTable, &sf.ovmNext, sf.ovmSlots
	}
	ov := sf.store(s.disk, k)
	var total int64
	for _, e := range m.Extents {
		total += e.Len
		if e.Len <= 0 {
			return nil, fmt.Errorf("server: overflow extent with non-positive length %d", e.Len)
		}
		if sf.geom.UnitOf(e.Off) != sf.geom.UnitOf(e.Off+e.Len-1) {
			return nil, fmt.Errorf("server: overflow extent [%d,%d) crosses a stripe unit", e.Off, e.Off+e.Len)
		}
	}
	if total != int64(len(m.Data)) {
		return nil, fmt.Errorf("server: overflow payload %d bytes for extents totaling %d",
			len(m.Data), total)
	}

	// Allocation is stripe-unit granular: each updated unit gets a whole
	// unit-sized slot, with the bytes placed at their within-unit offset.
	// This matches the paper's design — "the updated blocks are written to
	// an overflow region" — and reproduces the fragmentation Table 2
	// reports for workloads whose writes are small compared to the stripe
	// unit ("a smaller stripe unit results in less fragmentation in the
	// overflow regions"). A unit keeps one slot for the file's lifetime:
	// later overflow writes to the same unit update it in place, which is
	// what keeps Hartree-Fock's sequential 16 KB stream at RAID1-like 2x
	// storage in Table 2 rather than one slot per request. Slots are only
	// reclaimed by Compact.
	su := sf.geom.StripeUnit
	type placement struct {
		src  int64
		data []byte
	}
	var places []placement
	sf.mu.Lock()
	cur := int64(0)
	for _, e := range m.Extents {
		unit := sf.geom.UnitOf(e.Off)
		within := e.Off - sf.geom.UnitStart(unit)
		slot, ok := slots[unit]
		if ok {
			places = append(places, placement{src: slot + within, data: m.Data[cur : cur+e.Len]})
		} else {
			slot = *next
			*next += su
			slots[unit] = slot
			// Fresh slot: the whole block is written (zero-padded around
			// the new bytes), materializing it on disk as the paper's
			// block-granular overflow does.
			padded := make([]byte, su)
			copy(padded[within:], m.Data[cur:cur+e.Len])
			places = append(places, placement{src: slot, data: padded})
		}
		tbl.Insert(e.Off, e.Len, slot+within)
		cur += e.Len
	}
	sf.mu.Unlock()

	for _, pl := range places {
		s.writePiece(ov, pl.src, pl.data)
	}
	return &wire.OK{}, nil
}

func (s *Server) handleInvalidateOverflow(m *wire.InvalidateOverflow) (wire.Msg, error) {
	sf, err := s.file(m.File)
	if err != nil {
		return nil, err
	}
	tbl := &sf.ovTable
	if m.Mirror {
		tbl = &sf.ovmTable
	}
	sf.mu.Lock()
	for _, sp := range m.Spans {
		tbl.Invalidate(sp.Off, sp.Len)
	}
	sf.mu.Unlock()
	return &wire.OK{}, nil
}

func (s *Server) handleOverflowDump(m *wire.OverflowDump) (wire.Msg, error) {
	sf, err := s.file(m.File)
	if err != nil {
		return nil, err
	}
	k, tbl := StoreOverflow, &sf.ovTable
	if m.Mirror {
		k, tbl = StoreOverflowMirror, &sf.ovmTable
	}
	sf.mu.Lock()
	exts := tbl.Extents()
	sf.mu.Unlock()
	ov := sf.store(s.disk, k)
	resp := &wire.OverflowDumpResp{}
	for _, e := range exts {
		buf := make([]byte, e.Len)
		ov.ReadAt(buf, e.Src) //nolint:errcheck
		resp.Extents = append(resp.Extents, wire.Span{Off: e.Off, Len: e.Len})
		resp.Data = append(resp.Data, buf...)
	}
	return resp, nil
}

func (s *Server) handleSync(m *wire.Sync) (wire.Msg, error) {
	sf, err := s.file(m.File)
	if err != nil {
		return nil, err
	}
	sf.mu.Lock()
	stores := sf.stores
	sf.mu.Unlock()
	for _, f := range stores {
		if f != nil {
			f.Sync()
		}
	}
	return &wire.OK{}, nil
}

// handleStorageStat reports materialized (du-style) bytes: the Hybrid
// scheme's data files are sparse wherever the newest data lives only in
// the overflow region, and the paper's Table 2 sums what the servers'
// disks actually hold.
func (s *Server) handleStorageStat(m *wire.StorageStat) (wire.Msg, error) {
	resp := &wire.StorageStatResp{}
	if m.FileID == 0 {
		resp.Total = s.disk.AllocatedBytes()
		return resp, nil
	}
	s.mu.Lock()
	sf := s.files[m.FileID]
	s.mu.Unlock()
	if sf == nil {
		return resp, nil
	}
	sf.mu.Lock()
	stores := sf.stores
	sf.mu.Unlock()
	for k, f := range stores {
		if f != nil {
			resp.ByStore[k] = f.Allocated()
			resp.Total += f.Allocated()
		}
	}
	return resp, nil
}

func (s *Server) handleRemoveFile(m *wire.RemoveFile) (wire.Msg, error) {
	s.mu.Lock()
	sf := s.files[m.File.ID]
	delete(s.files, m.File.ID)
	s.mu.Unlock()
	if sf != nil {
		s.dropFileIntents(sf)
		for k := Store(0); k < numStores; k++ {
			s.disk.Remove(fmt.Sprintf("f%06d.%s", m.File.ID, storeSuffix[k]))
		}
	}
	s.dropFileDirty(m.File.ID)
	return &wire.OK{}, nil
}

// handleCompactOverflow rewrites the overflow store keeping only the live
// extents, reclaiming superseded and invalidated slots — the background
// storage-recovery process the paper sketches in Section 6.7 ("the storage
// used for overflow regions could be recovered").
func (s *Server) handleCompactOverflow(m *wire.CompactOverflow) (wire.Msg, error) {
	sf, err := s.file(m.File)
	if err != nil {
		return nil, err
	}
	k, tbl, next, slots := StoreOverflow, &sf.ovTable, &sf.ovNext, sf.ovSlots
	if m.Mirror {
		k, tbl, next, slots = StoreOverflowMirror, &sf.ovmTable, &sf.ovmNext, sf.ovmSlots
	}
	ov := sf.store(s.disk, k)

	sf.mu.Lock()
	live := tbl.Extents()
	sf.mu.Unlock()

	// Read the live contents before rewriting the store.
	type kept struct {
		off, length int64
		data        []byte
	}
	keeps := make([]kept, 0, len(live))
	for _, e := range live {
		buf := make([]byte, e.Len)
		ov.ReadAt(buf, e.Src) //nolint:errcheck // zero-fill semantics
		keeps = append(keeps, kept{e.Off, e.Len, buf})
	}

	su := sf.geom.StripeUnit
	sf.mu.Lock()
	tbl.Clear()
	*next = 0
	for u := range slots {
		delete(slots, u)
	}
	ov.Truncate(0)
	// Reinsert with fresh, dense slot allocation.
	type placement struct {
		src  int64
		data []byte
	}
	var places []placement
	for _, kp := range keeps {
		unit := sf.geom.UnitOf(kp.off)
		within := kp.off - sf.geom.UnitStart(unit)
		slot, ok := slots[unit]
		if !ok {
			slot = *next
			*next += su
			slots[unit] = slot
			padded := make([]byte, su)
			copy(padded[within:], kp.data)
			places = append(places, placement{slot, padded})
		} else {
			places = append(places, placement{slot + within, kp.data})
		}
		tbl.Insert(kp.off, kp.length, slot+within)
	}
	sf.mu.Unlock()
	for _, pl := range places {
		s.writePiece(ov, pl.src, pl.data)
	}
	return &wire.OK{}, nil
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// handleChecksumRange computes CRC32C checksums over part of one local
// store, so the scrubber can cross-check redundant copies without shipping
// the data over the network. For the flat stores (data, mirror, parity) the
// range is chunked and one checksum per chunk returned; for the overflow
// stores a single aggregate checksum covers every live extent intersecting
// the logical range — offset, length (little-endian uint64s) and contents,
// in table order — so equal sums mean table and bytes both agree.
func (s *Server) handleChecksumRange(m *wire.ChecksumRange) (wire.Msg, error) {
	sf, err := s.file(m.File)
	if err != nil {
		return nil, err
	}
	if m.Store >= wire.NumStores {
		return nil, fmt.Errorf("server: unknown store %d", m.Store)
	}
	if m.Off < 0 || m.Len < 0 {
		return nil, fmt.Errorf("server: negative checksum range [%d,+%d)", m.Off, m.Len)
	}

	if m.Store == wire.StoreOverflow || m.Store == wire.StoreOverflowMirror {
		k, tbl := StoreOverflow, &sf.ovTable
		if m.Store == wire.StoreOverflowMirror {
			k, tbl = StoreOverflowMirror, &sf.ovmTable
		}
		sf.mu.Lock()
		hits := make([]extent.Extent, 0, 8)
		tbl.Lookup(m.Off, m.Len, func(l, src, n int64) {
			hits = append(hits, extent.Extent{Off: l, Len: n, Src: src})
		}, nil)
		sf.mu.Unlock()
		ov := sf.store(s.disk, k)
		var sum uint32
		var total int64
		hdr := make([]byte, 16)
		for _, h := range hits {
			putU64LE(hdr[0:8], uint64(h.Off))
			putU64LE(hdr[8:16], uint64(h.Len))
			sum = crc32.Update(sum, castagnoli, hdr)
			buf := make([]byte, h.Len)
			readDirect(ov, buf, h.Src)
			sum = crc32.Update(sum, castagnoli, buf)
			total += h.Len
		}
		return &wire.ChecksumRangeResp{Sums: []uint32{sum}, Bytes: total}, nil
	}

	f := sf.store(s.disk, Store(m.Store))
	chunk := m.Chunk
	if chunk <= 0 {
		chunk = m.Len
	}
	var sums []uint32
	for cur := m.Off; cur < m.Off+m.Len; cur += chunk {
		n := min(chunk, m.Off+m.Len-cur)
		buf := make([]byte, n)
		readDirect(f, buf, cur)
		sums = append(sums, crc32.Checksum(buf, castagnoli))
	}
	return &wire.ChecksumRangeResp{Sums: sums, Bytes: m.Len}, nil
}

// readDirect reads through the store's cache-bypassing path when the
// backend offers one (the modeled disk does), so a scrub's checksum sweep
// behaves like O_DIRECT: it neither evicts the foreground working set nor
// absorbs its dirty-page write-backs.
func readDirect(f storage.File, p []byte, off int64) {
	type directReader interface {
		ReadAtDirect(p []byte, off int64) (int, error)
	}
	if dr, ok := f.(directReader); ok {
		dr.ReadAtDirect(p, off) //nolint:errcheck // zero-fill semantics
		return
	}
	f.ReadAt(p, off) //nolint:errcheck // zero-fill semantics
}

func putU64LE(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// lockStripe acquires the FIFO parity lock of one stripe, blocking while
// another client's partial-stripe update is in flight (Section 5.1). owner
// is the acquisition's token for UnlockParity cancellation (0 = none). It
// fails if the acquisition was canceled — either while queued, or before
// it arrived: a token already canceled by UnlockParity is refused
// outright, so a late-delivered locked read cannot re-acquire a lock its
// client gave up on and will never release. A stripe with an abandoned
// write intent fail-stops (wire.ErrStripeTorn): its parity may be stale,
// so no new read-modify-write may base itself on it until replay.
func (sf *serverFile) lockStripe(stripe int64, owner uint64) error {
	sf.mu.Lock()
	if owner != 0 {
		if _, ok := sf.canceled[owner]; ok {
			sf.mu.Unlock()
			return fmt.Errorf("server: parity lock of stripe %d canceled", stripe)
		}
	}
	if rec := sf.intents[stripe]; rec != nil && rec.abandoned {
		sf.mu.Unlock()
		return fmt.Errorf("server: stripe %d: %w", stripe, wire.ErrStripeTorn)
	}
	l := sf.locks[stripe]
	if l == nil {
		l = &parityLock{}
		sf.locks[stripe] = l
	}
	if !l.held {
		l.held = true
		l.owner = owner
		sf.mu.Unlock()
		return nil
	}
	ch := make(chan bool, 1)
	l.queue = append(l.queue, lockWaiter{ch: ch, owner: owner})
	sf.mu.Unlock()
	if !<-ch { // woken holding the lock, or canceled
		return fmt.Errorf("server: parity lock of stripe %d canceled", stripe)
	}
	return nil
}

// ownsLock reports whether stripe's parity lock is currently held under
// owner's token.
func (sf *serverFile) ownsLock(stripe int64, owner uint64) bool {
	sf.mu.Lock()
	defer sf.mu.Unlock()
	l := sf.locks[stripe]
	return l != nil && l.held && l.owner == owner
}

// unlockStripeOwned releases the parity lock if it is held under owner's
// token — the zero token matches only a tokenless (legacy) holder — handing
// it to the first queued waiter if any. A mismatch is a no-op: an unlock
// whose acquisition was already canceled must never release a lock since
// granted to a different client.
func (sf *serverFile) unlockStripeOwned(stripe int64, owner uint64) {
	sf.mu.Lock()
	l := sf.locks[stripe]
	if l == nil || !l.held || l.owner != owner {
		sf.mu.Unlock()
		return
	}
	if len(l.queue) > 0 {
		w := l.queue[0]
		l.queue = l.queue[1:]
		l.owner = w.owner
		sf.mu.Unlock()
		w.ch <- true
		return
	}
	l.held = false
	l.owner = 0
	sf.mu.Unlock()
}

// rememberCanceled records a canceled acquisition token so late frames
// carrying it are refused, evicting the oldest entry past the bound. Caller
// holds sf.mu.
func (sf *serverFile) rememberCanceled(owner uint64) {
	if _, ok := sf.canceled[owner]; ok {
		return
	}
	sf.canceled[owner] = struct{}{}
	sf.canceledFIFO = append(sf.canceledFIFO, owner)
	if len(sf.canceledFIFO) > canceledTokensMax {
		delete(sf.canceled, sf.canceledFIFO[0])
		sf.canceledFIFO = sf.canceledFIFO[1:]
	}
}

// cancelLock releases stripe's parity lock if held under owner's token, and
// removes any queued acquisitions carrying it (waking them canceled). The
// token is remembered even when nothing matches — that is the case where the
// cancellation overtook its locked read in the dispatch, and the read must
// find the tombstone when it lands. A zero token never matches: legacy
// lockers cannot be canceled.
func (sf *serverFile) cancelLock(stripe int64, owner uint64) {
	if owner == 0 {
		return
	}
	sf.mu.Lock()
	sf.rememberCanceled(owner)
	l := sf.locks[stripe]
	if l == nil {
		sf.mu.Unlock()
		return
	}
	var canceled []lockWaiter
	kept := l.queue[:0]
	for _, w := range l.queue {
		if w.owner == owner {
			canceled = append(canceled, w)
		} else {
			kept = append(kept, w)
		}
	}
	l.queue = kept
	var grant *lockWaiter
	if l.held && l.owner == owner {
		if len(l.queue) > 0 {
			w := l.queue[0]
			l.queue = l.queue[1:]
			l.owner = w.owner
			grant = &w
		} else {
			l.held = false
			l.owner = 0
		}
	}
	sf.mu.Unlock()
	for _, w := range canceled {
		w.ch <- false
	}
	if grant != nil {
		grant.ch <- true
	}
}

func (s *Server) handleUnlockParity(m *wire.UnlockParity) (wire.Msg, error) {
	sf, err := s.file(m.File)
	if err != nil {
		return nil, err
	}
	for _, stripe := range m.Stripes {
		if _, ok := sf.geom.ParityUnitOn(s.idx, stripe); !ok {
			return nil, fmt.Errorf("server %d does not hold parity of stripe %d", s.idx, stripe)
		}
		if m.Dirty {
			// Data writes were already in flight when the client gave up,
			// so the stripe may be torn: fail-stop it — abandon the intent
			// and revoke the lock without handing it to queued waiters, who
			// would otherwise read possibly-stale parity. Replay recomputes
			// the parity; recomputing an untouched stripe is merely
			// redundant, never wrong.
			sf.mu.Lock()
			abandoned, woken := sf.failStopLocked(s, stripe, m.Owner)
			sf.mu.Unlock()
			for _, w := range woken {
				w.ch <- false
			}
			if abandoned {
				s.intAbandoned.Add(1)
				continue
			}
			// No open intent (the acquisition never got that far): fall
			// through to the plain cancellation.
		} else {
			// Nothing was written: the stripe is untouched and consistent,
			// so the acquisition's intent — if the grant raced the client's
			// timeout — simply retires.
			sf.retireIntent(s, stripe, m.Owner)
		}
		sf.cancelLock(stripe, m.Owner)
	}
	return &wire.OK{}, nil
}
