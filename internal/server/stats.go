// Server-side observability: per-RPC-kind latency histograms, byte
// counters, live-state gauges, slow-op logging, and the Stats RPC that
// exports all of it to clients and the csar CLI.

package server

import (
	"log"
	"time"

	"csar/internal/obs"
	"csar/internal/wire"
)

// Obs exposes the server's metrics registry, for the daemon's -debug-addr
// HTTP endpoint.
func (s *Server) Obs() *obs.Registry { return s.obs }

// HandleTraced is Handle with the request's operation trace ID. It satisfies
// rpc.TracedHandler: every request is counted, charged its modeled CPU,
// timed into the per-kind histogram, and logged when it exceeds the SlowOp
// threshold — with the trace ID, so a slow server-side request can be
// correlated with the client operation that issued it.
func (s *Server) HandleTraced(req wire.Msg, trace uint64) (wire.Msg, error) {
	s.requests.Add(1)
	if s.opts.Clock.Timed() && s.opts.RequestCPU > 0 {
		s.cpu.AcquireDur(s.opts.RequestCPU)
	}
	s.obs.Counter("bytes_in").Add(payloadBytes(req))
	start := time.Now()
	resp, err := s.dispatch(req)
	// Under the performance model, record modeled time (what the paper's
	// figures are about); on a real deployment, wall time.
	var d time.Duration
	if s.opts.Clock.Timed() {
		d = s.opts.Clock.SimSince(start)
	} else {
		d = time.Since(start)
	}
	kind := req.Kind()
	s.obs.Hist("rpc_" + kind.String()).Observe(d)
	if err != nil {
		s.obs.Counter("errors").Add(1)
	} else {
		s.obs.Counter("bytes_out").Add(payloadBytes(resp))
	}
	if s.opts.SlowOp > 0 && d >= s.opts.SlowOp {
		s.obs.Counter("slow_ops").Add(1)
		log.Printf("csar-iod %d: slow op: %v took %v (trace %016x)", s.idx, kind, d, trace)
	}
	return resp, err
}

// payloadBytes returns the data bytes a message carries, for the bytes_in /
// bytes_out counters (header and framing overhead excluded — the counters
// track the I/O traffic the paper's figures measure, not protocol chatter).
func payloadBytes(m wire.Msg) int64 {
	switch t := m.(type) {
	case *wire.WriteData:
		return int64(len(t.Data))
	case *wire.WriteMirror:
		return int64(len(t.Data))
	case *wire.WriteParity:
		return int64(len(t.Data))
	case *wire.WriteOverflow:
		return int64(len(t.Data))
	case *wire.ResolveIntent:
		return int64(len(t.Data))
	case *wire.ReadResp:
		return int64(len(t.Data))
	case *wire.OverflowDumpResp:
		return int64(len(t.Data))
	}
	return 0
}

// registerGauges installs the live-state gauges evaluated at every stats
// snapshot. Each gauge takes its own subsystem lock; none are held together
// (the file list is copied under s.mu before any sf.mu is taken), so the
// established lock order is respected.
func (s *Server) registerGauges() {
	s.obs.RegisterGauge("locks_held", func() int64 {
		var n int64
		for _, sf := range s.fileList() {
			sf.mu.Lock()
			for _, pl := range sf.locks {
				if pl.held {
					n++
				}
			}
			sf.mu.Unlock()
		}
		return n
	})
	s.obs.RegisterGauge("intents_live", func() int64 {
		s.jmu.Lock()
		defer s.jmu.Unlock()
		return int64(s.jLive)
	})
	s.obs.RegisterGauge("dirty_log_entries", func() int64 {
		s.dirty.mu.Lock()
		defer s.dirty.mu.Unlock()
		var n int64
		for _, dl := range s.dirty.logs {
			n += int64(len(dl.units) + len(dl.mirrors) + len(dl.stripes))
			if dl.overflow {
				n++
			}
		}
		return n
	})
	s.obs.RegisterGauge("files_open", func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return int64(len(s.files))
	})
}

// fileList snapshots the server's file records under s.mu, so callers can
// take each sf.mu afterwards without nesting the two locks.
func (s *Server) fileList() []*serverFile {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*serverFile, 0, len(s.files))
	for _, sf := range s.files {
		out = append(out, sf)
	}
	return out
}

// handleStats answers the Stats RPC with the server's full observability
// snapshot: registry counters, evaluated gauges, intent/lease lifetime
// counters, and every per-RPC-kind histogram.
func (s *Server) handleStats() (wire.Msg, error) {
	snap := s.obs.Snapshot()
	is := s.IntentStats()
	resp := &wire.StatsResp{
		Index:    uint16(s.idx),
		Requests: s.requests.Load(),
	}
	for _, kv := range snap.Counters {
		resp.Counters = append(resp.Counters, wire.StatKV{Name: kv.Name, Value: kv.Value})
	}
	resp.Counters = append(resp.Counters,
		wire.StatKV{Name: "intents_opened", Value: is.Opened},
		wire.StatKV{Name: "intents_retired", Value: is.Retired},
		wire.StatKV{Name: "intents_abandoned", Value: is.Abandoned},
		wire.StatKV{Name: "intents_resolved", Value: is.Resolved},
		wire.StatKV{Name: "lease_renewals", Value: is.LeaseRenewals},
		wire.StatKV{Name: "lease_expiries", Value: is.LeaseExpiries},
	)
	for _, kv := range snap.Gauges {
		resp.Gauges = append(resp.Gauges, wire.StatKV{Name: kv.Name, Value: kv.Value})
	}
	for _, h := range snap.Hists {
		resp.Hists = append(resp.Hists, wire.HistDump{
			Name:    h.Name,
			Count:   h.Count,
			Sum:     int64(h.Sum),
			Max:     int64(h.Max),
			Buckets: h.TrimmedBuckets(),
		})
	}
	return resp, nil
}
