package server

import (
	"bytes"
	"hash/crc32"
	"sync"
	"testing"
	"time"

	"csar/internal/simdisk"
	"csar/internal/wire"
)

func testServer(idx int) *Server {
	opts := DefaultOptions()
	opts.PageSize = 64
	return New(idx, simdisk.New(nil, simdisk.Params{PageSize: 64}), opts)
}

func ref() wire.FileRef {
	return wire.FileRef{ID: 1, Servers: 3, StripeUnit: 128, Scheme: wire.Hybrid}
}

func call(t *testing.T, s *Server, m wire.Msg) wire.Msg {
	t.Helper()
	resp, err := s.Handle(m)
	if err != nil {
		t.Fatalf("%T: %v", m, err)
	}
	return resp
}

func TestPing(t *testing.T) {
	s := testServer(0)
	if _, ok := call(t, s, &wire.Ping{}).(*wire.OK); !ok {
		t.Fatal("ping did not return OK")
	}
}

func TestUnsupportedMessage(t *testing.T) {
	s := testServer(0)
	if _, err := s.Handle(&wire.OpenResp{}); err == nil {
		t.Fatal("unsupported message accepted")
	}
}

func TestBadGeometryRejected(t *testing.T) {
	s := testServer(0)
	bad := wire.FileRef{ID: 1, Servers: 0, StripeUnit: 128}
	if _, err := s.Handle(&wire.Read{File: bad}); err == nil {
		t.Fatal("zero-server geometry accepted")
	}
	outside := wire.FileRef{ID: 1, Servers: 2, StripeUnit: 128}
	s5 := testServer(5)
	if _, err := s5.Handle(&wire.Read{File: outside}); err == nil {
		t.Fatal("server outside layout accepted request")
	}
}

func TestWriteReadOwnPieces(t *testing.T) {
	// Server 0 of a 3-server layout owns units 0, 3, 6... Writing a span
	// and reading it back must round-trip exactly the server's pieces.
	s := testServer(0)
	r := ref()
	// Span [0, 640) = units 0..4; server 0 owns units 0 and 3: bytes
	// [0,128) and [384,512).
	payload := append(bytes.Repeat([]byte{0xA1}, 128), bytes.Repeat([]byte{0xA2}, 128)...)
	call(t, s, &wire.WriteData{File: r, Spans: []wire.Span{{Off: 0, Len: 640}}, Data: payload})
	resp := call(t, s, &wire.Read{File: r, Spans: []wire.Span{{Off: 0, Len: 640}}, Raw: true})
	got := resp.(*wire.ReadResp).Data
	if !bytes.Equal(got, payload) {
		t.Fatal("server pieces did not round-trip")
	}
}

func TestWritePayloadLengthValidated(t *testing.T) {
	s := testServer(0)
	r := ref()
	_, err := s.Handle(&wire.WriteData{
		File:  r,
		Spans: []wire.Span{{Off: 0, Len: 640}},
		Data:  []byte{1, 2, 3}, // far too short for server 0's pieces
	})
	if err == nil {
		t.Fatal("short payload accepted")
	}
}

func TestParityOwnershipEnforced(t *testing.T) {
	s := testServer(0)
	r := ref()
	// Stripe 0's parity lives on server 2, not 0.
	if _, err := s.Handle(&wire.ReadParity{File: r, Stripes: []int64{0}}); err == nil {
		t.Fatal("parity read for foreign stripe accepted")
	}
	if _, err := s.Handle(&wire.WriteParity{File: r, Stripes: []int64{0}, Data: make([]byte, 128)}); err == nil {
		t.Fatal("parity write for foreign stripe accepted")
	}
}

func TestParityPayloadLengthValidated(t *testing.T) {
	s := testServer(2) // owns stripe 0's parity
	r := ref()
	if _, err := s.Handle(&wire.WriteParity{File: r, Stripes: []int64{0}, Data: make([]byte, 5)}); err == nil {
		t.Fatal("short parity payload accepted")
	}
}

func TestParityLockFIFO(t *testing.T) {
	s := testServer(2)
	r := ref()
	// First locked read acquires the lock immediately.
	call(t, s, &wire.ReadParity{File: r, Stripes: []int64{0}, Lock: true})

	// Second locked read must block until the parity write releases.
	got := make(chan struct{})
	go func() {
		s.Handle(&wire.ReadParity{File: r, Stripes: []int64{0}, Lock: true}) //nolint:errcheck
		close(got)
	}()
	select {
	case <-got:
		t.Fatal("second locked read did not block")
	case <-time.After(20 * time.Millisecond):
	}
	// Release: the queued reader acquires and returns.
	call(t, s, &wire.WriteParity{File: r, Stripes: []int64{0}, Data: make([]byte, 128), Unlock: true})
	select {
	case <-got:
	case <-time.After(5 * time.Second):
		t.Fatal("queued locked read never woke")
	}
	// It now holds the lock; a final unlock cleans up.
	call(t, s, &wire.WriteParity{File: r, Stripes: []int64{0}, Data: make([]byte, 128), Unlock: true})
}

func TestParityLockManyWaitersAllServed(t *testing.T) {
	s := testServer(2)
	r := ref()
	const waiters = 8
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Handle(&wire.ReadParity{File: r, Stripes: []int64{0}, Lock: true}); err != nil {
				t.Error(err)
				return
			}
			s.Handle(&wire.WriteParity{ //nolint:errcheck
				File: r, Stripes: []int64{0}, Data: make([]byte, 128), Unlock: true,
			})
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("lock queue wedged")
	}
}

func TestUnlockWithoutLockIsSafe(t *testing.T) {
	s := testServer(2)
	r := ref()
	// Unlock with no lock held must not panic or wedge.
	call(t, s, &wire.WriteParity{File: r, Stripes: []int64{0}, Data: make([]byte, 128), Unlock: true})
}

func TestTokenedUnlockRequiresOwner(t *testing.T) {
	s := testServer(2)
	r := ref()
	// Client A acquires under its token; its compensating UnlockParity
	// (fired after a client-side timeout) releases the acquisition.
	call(t, s, &wire.ReadParity{File: r, Stripes: []int64{0}, Lock: true, Owner: 101})
	call(t, s, &wire.UnlockParity{File: r, Stripes: []int64{0}, Owner: 101})
	// Client B acquires next.
	call(t, s, &wire.ReadParity{File: r, Stripes: []int64{0}, Lock: true, Owner: 202})
	// A's unlocking parity write now arrives late: it must be refused, not
	// release B's lock or write its stale parity bytes.
	if _, err := s.Handle(&wire.WriteParity{
		File: r, Stripes: []int64{0}, Data: make([]byte, 128), Unlock: true, Owner: 101,
	}); err == nil {
		t.Fatal("late unlocking parity write with a canceled token accepted")
	}
	// B must still hold the lock: its own unlocking write succeeds (it would
	// be refused if A's ghost had released it).
	call(t, s, &wire.WriteParity{
		File: r, Stripes: []int64{0}, Data: make([]byte, 128), Unlock: true, Owner: 202,
	})
}

func TestCanceledTokenRefusesLateLockedRead(t *testing.T) {
	s := testServer(2)
	r := ref()
	// The compensating UnlockParity overtakes its own locked read in the
	// server's concurrent dispatch: nothing matches yet, but the token must
	// be tombstoned.
	call(t, s, &wire.UnlockParity{File: r, Stripes: []int64{0}, Owner: 303})
	// The locked read lands afterwards: it must be refused, or it would
	// acquire a lock its client has already given up on — permanently.
	if _, err := s.Handle(&wire.ReadParity{
		File: r, Stripes: []int64{0}, Lock: true, Owner: 303,
	}); err == nil {
		t.Fatal("late locked read with a canceled token acquired the lock")
	}
	// The stripe stays immediately lockable by everyone else.
	got := make(chan struct{})
	go func() {
		defer close(got)
		if _, err := s.Handle(&wire.ReadParity{
			File: r, Stripes: []int64{0}, Lock: true, Owner: 404,
		}); err != nil {
			t.Error(err)
		}
	}()
	select {
	case <-got:
	case <-time.After(5 * time.Second):
		t.Fatal("stripe wedged by a refused ghost acquisition")
	}
	call(t, s, &wire.WriteParity{
		File: r, Stripes: []int64{0}, Data: make([]byte, 128), Unlock: true, Owner: 404,
	})
}

func TestMultiStripeLockRollbackOnCancel(t *testing.T) {
	s := testServer(2) // holds parity of stripes 0 and 3
	r := ref()
	// Another owner holds stripe 3, so the two-stripe acquisition below
	// locks stripe 0 and then queues on stripe 3.
	call(t, s, &wire.ReadParity{File: r, Stripes: []int64{3}, Lock: true, Owner: 600})

	errc := make(chan error, 1)
	go func() {
		_, err := s.Handle(&wire.ReadParity{File: r, Stripes: []int64{0, 3}, Lock: true, Owner: 500})
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	// Cancel the in-flight acquisition. Whether it already queued on stripe 3
	// or has not even locked stripe 0 yet, the end state must be the same:
	// the request fails and holds nothing.
	call(t, s, &wire.UnlockParity{File: r, Stripes: []int64{0, 3}, Owner: 500})
	if err := <-errc; err == nil {
		t.Fatal("canceled two-stripe acquisition reported success")
	}
	// Stripe 0's lock — taken before the cancellation hit stripe 3 — must
	// have been rolled back: a fresh acquisition may not block.
	got := make(chan struct{})
	go func() {
		defer close(got)
		if _, err := s.Handle(&wire.ReadParity{
			File: r, Stripes: []int64{0}, Lock: true, Owner: 700,
		}); err != nil {
			t.Error(err)
		}
	}()
	select {
	case <-got:
	case <-time.After(5 * time.Second):
		t.Fatal("stripe 0 lock leaked by the canceled multi-stripe request")
	}
}

func TestOverflowRoundTripAndPatch(t *testing.T) {
	s := testServer(0)
	r := ref()
	// In-place data first.
	base := bytes.Repeat([]byte{0x10}, 128)
	call(t, s, &wire.WriteData{File: r, Spans: []wire.Span{{Off: 0, Len: 128}}, Data: base})
	// Overflow write overriding bytes [10, 40) of unit 0.
	call(t, s, &wire.WriteOverflow{
		File:    r,
		Extents: []wire.Span{{Off: 10, Len: 30}},
		Data:    bytes.Repeat([]byte{0xFF}, 30),
	})
	// Raw read sees the old data; patched read sees the overflow bytes.
	raw := call(t, s, &wire.Read{File: r, Spans: []wire.Span{{Off: 0, Len: 128}}, Raw: true}).(*wire.ReadResp).Data
	if !bytes.Equal(raw, base) {
		t.Fatal("raw read saw overflow data")
	}
	patched := call(t, s, &wire.Read{File: r, Spans: []wire.Span{{Off: 0, Len: 128}}}).(*wire.ReadResp).Data
	for i := 0; i < 128; i++ {
		want := byte(0x10)
		if i >= 10 && i < 40 {
			want = 0xFF
		}
		if patched[i] != want {
			t.Fatalf("patched byte %d = %x, want %x", i, patched[i], want)
		}
	}
}

func TestOverflowExtentMustStayInUnit(t *testing.T) {
	s := testServer(0)
	r := ref()
	_, err := s.Handle(&wire.WriteOverflow{
		File:    r,
		Extents: []wire.Span{{Off: 100, Len: 60}}, // crosses the 128-byte unit boundary
		Data:    make([]byte, 60),
	})
	if err == nil {
		t.Fatal("cross-unit overflow extent accepted")
	}
	_, err = s.Handle(&wire.WriteOverflow{
		File:    r,
		Extents: []wire.Span{{Off: 0, Len: 10}},
		Data:    make([]byte, 3), // payload mismatch
	})
	if err == nil {
		t.Fatal("mismatched overflow payload accepted")
	}
}

func TestOverflowSlotReuse(t *testing.T) {
	s := testServer(0)
	r := ref()
	ov := func() int64 {
		resp := call(t, s, &wire.StorageStat{FileID: r.ID}).(*wire.StorageStatResp)
		return resp.ByStore[StoreOverflow]
	}
	call(t, s, &wire.WriteOverflow{File: r, Extents: []wire.Span{{Off: 0, Len: 10}}, Data: make([]byte, 10)})
	first := ov()
	if first == 0 {
		t.Fatal("no overflow storage after write")
	}
	// Another write to the same unit reuses its slot: no growth.
	call(t, s, &wire.WriteOverflow{File: r, Extents: []wire.Span{{Off: 50, Len: 10}}, Data: make([]byte, 10)})
	if got := ov(); got != first {
		t.Fatalf("same-unit overflow grew storage: %d -> %d", first, got)
	}
	// A different unit allocates a new slot.
	call(t, s, &wire.WriteOverflow{File: r, Extents: []wire.Span{{Off: 3 * 128, Len: 10}}, Data: make([]byte, 10)})
	if got := ov(); got <= first {
		t.Fatalf("new-unit overflow did not grow storage: %d -> %d", first, got)
	}
}

func TestHybridWriteDataInvalidatesOverflow(t *testing.T) {
	s := testServer(0)
	r := ref()
	call(t, s, &wire.WriteOverflow{File: r, Extents: []wire.Span{{Off: 0, Len: 20}}, Data: make([]byte, 20)})
	call(t, s, &wire.WriteOverflow{File: r, Extents: []wire.Span{{Off: 5, Len: 10}}, Data: make([]byte, 10), Mirror: true})
	// An in-place write over the range (a full-stripe body under Hybrid)
	// invalidates both tables implicitly.
	call(t, s, &wire.WriteData{File: r, Spans: []wire.Span{{Off: 0, Len: 128}}, Data: make([]byte, 128)})
	for _, mirror := range []bool{false, true} {
		dump := call(t, s, &wire.OverflowDump{File: r, Mirror: mirror}).(*wire.OverflowDumpResp)
		if len(dump.Extents) != 0 {
			t.Fatalf("mirror=%v: overflow extents survive a covering data write: %v", mirror, dump.Extents)
		}
	}
}

func TestRaid5WriteDataDoesNotTouchOverflow(t *testing.T) {
	s := testServer(0)
	r := ref()
	r.Scheme = wire.Raid5
	// (Overflow under RAID5 never happens in practice, but invalidation
	// must not trigger for non-Hybrid schemes.)
	rh := r
	rh.Scheme = wire.Hybrid
	call(t, s, &wire.WriteOverflow{File: rh, Extents: []wire.Span{{Off: 0, Len: 20}}, Data: make([]byte, 20)})
	call(t, s, &wire.WriteData{File: r, Spans: []wire.Span{{Off: 0, Len: 128}}, Data: make([]byte, 128)})
	dump := call(t, s, &wire.OverflowDump{File: rh}).(*wire.OverflowDumpResp)
	if len(dump.Extents) != 1 {
		t.Fatalf("raid5 data write altered overflow table: %v", dump.Extents)
	}
}

func TestMirrorStoreRoundTrip(t *testing.T) {
	// Server 1 is the mirror server of unit 0 (owned by server 0).
	s := testServer(1)
	r := ref()
	payload := bytes.Repeat([]byte{0x77}, 128)
	call(t, s, &wire.WriteMirror{File: r, Spans: []wire.Span{{Off: 0, Len: 128}}, Data: payload})
	got := call(t, s, &wire.ReadMirror{File: r, Spans: []wire.Span{{Off: 0, Len: 128}}}).(*wire.ReadResp).Data
	if !bytes.Equal(got, payload) {
		t.Fatal("mirror store did not round-trip")
	}
}

func TestRemoveFileClearsStores(t *testing.T) {
	s := testServer(0)
	r := ref()
	call(t, s, &wire.WriteData{File: r, Spans: []wire.Span{{Off: 0, Len: 128}}, Data: make([]byte, 128)})
	call(t, s, &wire.WriteOverflow{File: r, Extents: []wire.Span{{Off: 0, Len: 10}}, Data: make([]byte, 10)})
	if s.Disk().TotalBytes() == 0 {
		t.Fatal("nothing stored before remove")
	}
	call(t, s, &wire.RemoveFile{File: r})
	if got := s.Disk().TotalBytes(); got != 0 {
		t.Fatalf("%d bytes remain after RemoveFile", got)
	}
	// The file can be recreated cleanly afterwards.
	call(t, s, &wire.WriteData{File: r, Spans: []wire.Span{{Off: 0, Len: 128}}, Data: make([]byte, 128)})
}

func TestStorageStatBreakdown(t *testing.T) {
	s := testServer(2)
	r := ref()
	call(t, s, &wire.WriteParity{File: r, Stripes: []int64{0}, Data: make([]byte, 128)})
	st := call(t, s, &wire.StorageStat{FileID: r.ID}).(*wire.StorageStatResp)
	if st.ByStore[StoreParity] == 0 || st.Total != st.ByStore[StoreParity] {
		t.Fatalf("parity write not accounted: %+v", st)
	}
	// Whole-disk stat.
	whole := call(t, s, &wire.StorageStat{}).(*wire.StorageStatResp)
	if whole.Total == 0 {
		t.Fatal("whole-disk stat empty")
	}
	// Unknown file: empty stat, no error.
	unknown := call(t, s, &wire.StorageStat{FileID: 999}).(*wire.StorageStatResp)
	if unknown.Total != 0 {
		t.Fatal("unknown file reported storage")
	}
}

func TestWriteBufferingModesEquivalentContent(t *testing.T) {
	// Buffered and unbuffered servers must store identical bytes; only the
	// modeled timing differs.
	for _, buffering := range []bool{true, false} {
		opts := DefaultOptions()
		opts.WriteBuffering = buffering
		opts.RecvChunk = 40 // force many chunks
		s := New(0, simdisk.New(nil, simdisk.Params{PageSize: 64}), opts)
		r := ref()
		payload := make([]byte, 128)
		for i := range payload {
			payload[i] = byte(i * 3)
		}
		call(t, s, &wire.WriteData{File: r, Spans: []wire.Span{{Off: 0, Len: 128}}, Data: payload})
		got := call(t, s, &wire.Read{File: r, Spans: []wire.Span{{Off: 0, Len: 128}}, Raw: true}).(*wire.ReadResp).Data
		if !bytes.Equal(got, payload) {
			t.Fatalf("buffering=%v corrupted data", buffering)
		}
	}
}

func TestSyncAndDropCaches(t *testing.T) {
	disk := simdisk.New(nil, simdisk.Params{PageSize: 64})
	opts := DefaultOptions()
	opts.PageSize = 64
	s := New(0, disk, opts)
	r := ref()
	call(t, s, &wire.WriteData{File: r, Spans: []wire.Span{{Off: 0, Len: 128}}, Data: make([]byte, 128)})
	call(t, s, &wire.Sync{File: r})
	if w := disk.Stats().DiskWriteBytes; w == 0 {
		t.Fatal("sync flushed nothing")
	}
	call(t, s, &wire.DropCaches{})
	call(t, s, &wire.Read{File: r, Spans: []wire.Span{{Off: 0, Len: 128}}})
	if m := disk.Stats().CacheMisses; m == 0 {
		t.Fatal("read after drop-caches hit the cache")
	}
}

func TestChecksumRangeChunked(t *testing.T) {
	s := testServer(0)
	r := ref()
	// Server 0 owns units 0 and 3 of span [0,640): local bytes [0,256).
	payload := append(bytes.Repeat([]byte{0xB1}, 128), bytes.Repeat([]byte{0xB2}, 128)...)
	call(t, s, &wire.WriteData{File: r, Spans: []wire.Span{{Off: 0, Len: 640}}, Data: payload})

	resp := call(t, s, &wire.ChecksumRange{File: r, Store: wire.StoreData, Off: 0, Len: 256, Chunk: 128})
	cr := resp.(*wire.ChecksumRangeResp)
	if len(cr.Sums) != 2 || cr.Bytes != 256 {
		t.Fatalf("got %d sums, %d bytes; want 2 sums, 256 bytes", len(cr.Sums), cr.Bytes)
	}
	for i := 0; i < 2; i++ {
		want := crc32.Checksum(payload[i*128:(i+1)*128], castagnoli)
		if cr.Sums[i] != want {
			t.Fatalf("chunk %d sum %08x, want %08x", i, cr.Sums[i], want)
		}
	}

	// Chunk <= 0 means one checksum over the whole range; a final short
	// chunk is checksummed as-is.
	whole := call(t, s, &wire.ChecksumRange{File: r, Store: wire.StoreData, Off: 0, Len: 256}).(*wire.ChecksumRangeResp)
	if len(whole.Sums) != 1 || whole.Sums[0] != crc32.Checksum(payload, castagnoli) {
		t.Fatal("whole-range checksum wrong")
	}
	short := call(t, s, &wire.ChecksumRange{File: r, Store: wire.StoreData, Off: 0, Len: 200, Chunk: 128}).(*wire.ChecksumRangeResp)
	if len(short.Sums) != 2 || short.Sums[1] != crc32.Checksum(payload[128:200], castagnoli) {
		t.Fatal("short final chunk checksum wrong")
	}

	// Unwritten store ranges checksum as zeros (zero-fill semantics).
	z := call(t, s, &wire.ChecksumRange{File: r, Store: wire.StoreParity, Off: 0, Len: 128}).(*wire.ChecksumRangeResp)
	if z.Sums[0] != crc32.Checksum(make([]byte, 128), castagnoli) {
		t.Fatal("hole checksum is not the zero-block checksum")
	}
}

func TestChecksumRangeOverflowAggregate(t *testing.T) {
	s := testServer(0)
	r := ref()
	// Two overflow extents inside unit 0 (server 0's unit).
	e1 := wire.Span{Off: 10, Len: 20}
	e2 := wire.Span{Off: 50, Len: 8}
	d1 := bytes.Repeat([]byte{0xC1}, 20)
	d2 := bytes.Repeat([]byte{0xC2}, 8)
	call(t, s, &wire.WriteOverflow{File: r, Extents: []wire.Span{e1, e2}, Data: append(d1, d2...)})

	resp := call(t, s, &wire.ChecksumRange{File: r, Store: wire.StoreOverflow, Off: 0, Len: 1 << 30}).(*wire.ChecksumRangeResp)
	if len(resp.Sums) != 1 || resp.Bytes != 28 {
		t.Fatalf("got %d sums, %d bytes; want 1 sum, 28 bytes", len(resp.Sums), resp.Bytes)
	}
	var want uint32
	hdr := make([]byte, 16)
	for _, x := range []struct {
		sp   wire.Span
		data []byte
	}{{e1, d1}, {e2, d2}} {
		putU64LE(hdr[0:8], uint64(x.sp.Off))
		putU64LE(hdr[8:16], uint64(x.sp.Len))
		want = crc32.Update(want, castagnoli, hdr)
		want = crc32.Update(want, castagnoli, x.data)
	}
	if resp.Sums[0] != want {
		t.Fatalf("aggregate sum %08x, want %08x", resp.Sums[0], want)
	}

	// A range that misses every extent yields the empty aggregate.
	missResp := call(t, s, &wire.ChecksumRange{File: r, Store: wire.StoreOverflow, Off: 1000, Len: 10}).(*wire.ChecksumRangeResp)
	if missResp.Sums[0] != 0 || missResp.Bytes != 0 {
		t.Fatal("empty overflow range should checksum to 0 over 0 bytes")
	}
	// The untouched mirror store is empty too.
	mir := call(t, s, &wire.ChecksumRange{File: r, Store: wire.StoreOverflowMirror, Off: 0, Len: 1 << 30}).(*wire.ChecksumRangeResp)
	if mir.Sums[0] != 0 || mir.Bytes != 0 {
		t.Fatal("empty overflow mirror should checksum to 0 over 0 bytes")
	}
}

func TestChecksumRangeValidation(t *testing.T) {
	s := testServer(0)
	r := ref()
	if _, err := s.Handle(&wire.ChecksumRange{File: r, Store: 99, Len: 10}); err == nil {
		t.Fatal("unknown store accepted")
	}
	if _, err := s.Handle(&wire.ChecksumRange{File: r, Store: wire.StoreData, Off: -1, Len: 10}); err == nil {
		t.Fatal("negative offset accepted")
	}
	if _, err := s.Handle(&wire.ChecksumRange{File: r, Store: wire.StoreData, Off: 0, Len: -10}); err == nil {
		t.Fatal("negative length accepted")
	}
}

func TestRawWritePreservesOverflow(t *testing.T) {
	// A Raw (repair) data write must not invalidate Hybrid overflow
	// entries: foreground reads still need the overflow bytes.
	s := testServer(0)
	r := ref()
	call(t, s, &wire.WriteData{File: r, Spans: []wire.Span{{Off: 0, Len: 640}}, Data: append(bytes.Repeat([]byte{1}, 128), bytes.Repeat([]byte{2}, 128)...)})
	ovData := bytes.Repeat([]byte{0xEE}, 16)
	call(t, s, &wire.WriteOverflow{File: r, Extents: []wire.Span{{Off: 4, Len: 16}}, Data: ovData})

	call(t, s, &wire.WriteData{File: r, Spans: []wire.Span{{Off: 0, Len: 640}}, Data: append(bytes.Repeat([]byte{3}, 128), bytes.Repeat([]byte{4}, 128)...), Raw: true})
	got := call(t, s, &wire.Read{File: r, Spans: []wire.Span{{Off: 4, Len: 16}}}).(*wire.ReadResp).Data
	if !bytes.Equal(got, ovData) {
		t.Fatal("raw write invalidated overflow contents")
	}

	// A normal (full-stripe) write does invalidate them.
	call(t, s, &wire.WriteData{File: r, Spans: []wire.Span{{Off: 0, Len: 640}}, Data: append(bytes.Repeat([]byte{5}, 128), bytes.Repeat([]byte{6}, 128)...)})
	got = call(t, s, &wire.Read{File: r, Spans: []wire.Span{{Off: 4, Len: 16}}}).(*wire.ReadResp).Data
	if !bytes.Equal(got, bytes.Repeat([]byte{5}, 16)) {
		t.Fatal("full-stripe write did not supersede overflow")
	}
}
