// Package mpio is a miniature MPI-IO: SPMD ranks running as goroutines,
// barriers, and ROMIO-style collective buffered I/O.
//
// The paper's application benchmarks (BTIO, FLASH I/O, Cactus BenchIO)
// reach PVFS through ROMIO, whose two-phase collective buffering merges
// each rank's small, non-contiguous accesses into a few large contiguous
// requests — "as a result, for the BTIO benchmark, the PVFS layer sees
// large writes, most of which are about 4 MB in size" (Section 6.5). This
// package reproduces that transformation so the workload generators can
// emit the *application's* access pattern and the file system still sees
// the request stream the paper measured.
package mpio

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"csar/internal/client"
)

// DefaultCBBuffer is ROMIO's default collective-buffer size (4 MiB), which
// is also the dominant request size the paper reports at the PVFS layer.
const DefaultCBBuffer = 4 << 20

// DefaultPipelineDepth is each aggregator's issue window: how many of its
// chunks may be in flight at once during phase 2 of a collective. Depth 1
// reproduces strict ROMIO behaviour (write, wait, write); the default
// keeps a QD1 application's servers busy across chunk round trips.
const DefaultPipelineDepth = 4

// Comm is a communicator of Size ranks.
type Comm struct {
	size     int
	cbBuffer int64
	depth    int

	barrier *barrier

	mu    sync.Mutex
	slots [][]Req // per-rank contributed requests
	plan  []chunk // merged plan, computed once per collective
	errs  []error // per-rank collective errors
}

// Req is one rank's I/O request: Data is written at Off (collective write)
// or filled from Off (collective read).
type Req struct {
	Off  int64
	Data []byte
}

// Rank is one process of the SPMD program.
type Rank struct {
	comm *Comm
	id   int
}

// Run executes fn on size ranks concurrently and returns the joined errors.
func Run(size int, fn func(r *Rank) error) error {
	c, err := NewComm(size)
	if err != nil {
		return err
	}
	errs := make([]error, size)
	var wg sync.WaitGroup
	for i := 0; i < size; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = fn(&Rank{comm: c, id: i})
		}(i)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// NewComm creates a communicator for explicit rank management.
func NewComm(size int) (*Comm, error) {
	if size < 1 {
		return nil, fmt.Errorf("mpio: communicator size %d", size)
	}
	return &Comm{
		size:     size,
		cbBuffer: DefaultCBBuffer,
		depth:    DefaultPipelineDepth,
		barrier:  newBarrier(size),
		slots:    make([][]Req, size),
		errs:     make([]error, size),
	}, nil
}

// SetCollectiveBuffer overrides the collective buffer (chunk) size; call
// before any collective operation.
func (c *Comm) SetCollectiveBuffer(n int64) {
	if n > 0 {
		c.cbBuffer = n
	}
}

// SetPipelineDepth overrides each aggregator's chunk issue window; call
// before any collective operation. Depth 1 issues chunks strictly
// serially.
func (c *Comm) SetPipelineDepth(d int) {
	if d > 0 {
		c.depth = d
	}
}

// Rank returns rank i of the communicator (for use outside Run).
func (c *Comm) Rank(i int) *Rank { return &Rank{comm: c, id: i} }

// ID returns the rank number.
func (r *Rank) ID() int { return r.id }

// SetPipelineDepth sets the communicator's aggregator issue window (see
// Comm.SetPipelineDepth); call from one rank before the collective.
func (r *Rank) SetPipelineDepth(d int) { r.comm.SetPipelineDepth(d) }

// Size returns the communicator size.
func (r *Rank) Size() int { return r.comm.size }

// Barrier blocks until every rank has entered it.
func (r *Rank) Barrier() { r.comm.barrier.await() }

// chunk is one aggregated contiguous request, owned by one aggregator rank.
type chunk struct {
	off        int64
	length     int64
	aggregator int
	copies     []copyOp
}

// copyOp moves bytes between a rank's request buffer and a chunk buffer.
type copyOp struct {
	rank, req int   // source/destination request
	reqOff    int64 // offset within the request's Data
	chunkOff  int64 // offset within the chunk
	n         int64
}

// CollectiveWrite performs a two-phase collective write: all ranks'
// requests are merged into contiguous chunks of at most the collective
// buffer size, each chunk is assembled by one aggregator rank and written
// with that rank's file handle. Every rank must call it (with possibly
// empty reqs); it returns each rank's view of the collective's error.
func (r *Rank) CollectiveWrite(f *client.File, reqs []Req) error {
	c := r.comm
	c.mu.Lock()
	c.slots[r.id] = reqs
	c.mu.Unlock()
	r.Barrier()

	if r.id == 0 {
		c.plan = c.buildPlan()
		for i := range c.errs {
			c.errs[i] = nil
		}
	}
	r.Barrier()

	// Phase 2: each aggregator assembles and writes its chunks through a
	// bounded issue window, so consecutive chunks of its file domain are in
	// flight together instead of each waiting out the previous round trip.
	// Chunks cover disjoint ranges; writes sharing a boundary stripe
	// serialize through the parity lock as any concurrent writers do.
	win := client.NewWindow(c.depth)
	for _, ch := range c.plan {
		if ch.aggregator != r.id {
			continue
		}
		if win.Failed() {
			break
		}
		buf := make([]byte, ch.length)
		for _, cp := range ch.copies {
			src := c.slots[cp.rank][cp.req].Data
			copy(buf[cp.chunkOff:cp.chunkOff+cp.n], src[cp.reqOff:cp.reqOff+cp.n])
		}
		off := ch.off
		win.Go(func() error {
			_, err := f.WriteAt(buf, off)
			return err
		})
	}
	myErr := win.Wait()
	c.mu.Lock()
	c.errs[r.id] = myErr
	c.mu.Unlock()
	r.Barrier()

	err := errors.Join(c.errs...)
	r.Barrier() // everyone has read errs before the next collective reuses them
	return err
}

// CollectiveRead is the reverse: aggregators read merged chunks and scatter
// the bytes into every rank's request buffers.
func (r *Rank) CollectiveRead(f *client.File, reqs []Req) error {
	c := r.comm
	c.mu.Lock()
	c.slots[r.id] = reqs
	c.mu.Unlock()
	r.Barrier()

	if r.id == 0 {
		c.plan = c.buildPlan()
		for i := range c.errs {
			c.errs[i] = nil
		}
	}
	r.Barrier()

	win := client.NewWindow(c.depth)
	for _, ch := range c.plan {
		if ch.aggregator != r.id {
			continue
		}
		if win.Failed() {
			break
		}
		ch := ch
		win.Go(func() error {
			buf := make([]byte, ch.length)
			if _, err := f.ReadAt(buf, ch.off); err != nil {
				return err
			}
			c.mu.Lock()
			for _, cp := range ch.copies {
				dst := c.slots[cp.rank][cp.req].Data
				copy(dst[cp.reqOff:cp.reqOff+cp.n], buf[cp.chunkOff:cp.chunkOff+cp.n])
			}
			c.mu.Unlock()
			return nil
		})
	}
	myErr := win.Wait()
	c.mu.Lock()
	c.errs[r.id] = myErr
	c.mu.Unlock()
	r.Barrier()

	err := errors.Join(c.errs...)
	r.Barrier()
	return err
}

// buildPlan merges all contributed requests into contiguous extents, splits
// them into collective-buffer-sized chunks, and assigns aggregators
// round-robin. Called by rank 0 between barriers; c.slots is stable.
func (c *Comm) buildPlan() []chunk {
	type piece struct {
		off, n    int64
		rank, req int
		reqOff    int64
	}
	var pieces []piece
	for rank, reqs := range c.slots {
		for ri, rq := range reqs {
			if len(rq.Data) > 0 {
				pieces = append(pieces, piece{rq.Off, int64(len(rq.Data)), rank, ri, 0})
			}
		}
	}
	if len(pieces) == 0 {
		return nil
	}
	sort.Slice(pieces, func(i, j int) bool {
		if pieces[i].off != pieces[j].off {
			return pieces[i].off < pieces[j].off
		}
		return pieces[i].rank < pieces[j].rank
	})

	// Group pieces into contiguous extents (no gaps inside an extent).
	var chunks []chunk
	agg := 0
	flush := func(start, end int64, group []piece) {
		// ROMIO divides each contiguous extent into per-aggregator file
		// domains of extent/naggs bytes, then each aggregator streams its
		// domain in collective-buffer-sized pieces. With many ranks the
		// effective request size shrinks accordingly — which is why the
		// paper sees more (and more contended) partial-stripe writes as
		// the BTIO process count grows.
		step := (end - start + int64(c.size) - 1) / int64(c.size)
		if step > c.cbBuffer {
			step = c.cbBuffer
		}
		if floor := min64(64<<10, c.cbBuffer); step < floor {
			step = floor
		}
		for cur := start; cur < end; cur += step {
			cEnd := cur + step
			if cEnd > end {
				cEnd = end
			}
			ch := chunk{off: cur, length: cEnd - cur, aggregator: agg % c.size}
			agg++
			for _, p := range group {
				lo, hi := p.off, p.off+p.n
				if lo < cur {
					lo = cur
				}
				if hi > cEnd {
					hi = cEnd
				}
				if lo >= hi {
					continue
				}
				ch.copies = append(ch.copies, copyOp{
					rank:     p.rank,
					req:      p.req,
					reqOff:   lo - p.off,
					chunkOff: lo - cur,
					n:        hi - lo,
				})
			}
			chunks = append(chunks, ch)
		}
	}

	start := pieces[0].off
	end := pieces[0].off + pieces[0].n
	group := []piece{pieces[0]}
	for _, p := range pieces[1:] {
		if p.off <= end { // contiguous or overlapping: extend the extent
			group = append(group, p)
			if p.off+p.n > end {
				end = p.off + p.n
			}
			continue
		}
		flush(start, end, group)
		start, end = p.off, p.off+p.n
		group = []piece{p}
	}
	flush(start, end, group)
	return chunks
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// barrier is a reusable counting barrier.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	size  int
	count int
	gen   int
}

func newBarrier(size int) *barrier {
	b := &barrier{size: size}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) await() {
	b.mu.Lock()
	defer b.mu.Unlock()
	gen := b.gen
	b.count++
	if b.count == b.size {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
}
