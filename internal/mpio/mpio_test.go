package mpio

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"csar/internal/cluster"
	"csar/internal/wire"
)

func testCluster(t *testing.T, n int) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(cluster.DefaultConfig(n))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestRunAndBarrier(t *testing.T) {
	var entered, after atomic.Int32
	err := Run(8, func(r *Rank) error {
		entered.Add(1)
		r.Barrier()
		// After the barrier every rank must have entered.
		if entered.Load() != 8 {
			return errors.New("barrier let a rank through early")
		}
		after.Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if after.Load() != 8 {
		t.Fatalf("after=%d", after.Load())
	}
}

func TestRunJoinsErrors(t *testing.T) {
	err := Run(4, func(r *Rank) error {
		if r.ID() == 2 {
			return errors.New("rank two failed")
		}
		return nil
	})
	if err == nil || err.Error() != "rank two failed" {
		t.Fatalf("err=%v", err)
	}
}

func TestReusableBarrier(t *testing.T) {
	var phase atomic.Int32
	err := Run(5, func(r *Rank) error {
		for i := 0; i < 20; i++ {
			r.Barrier()
			if r.ID() == 0 {
				phase.Add(1)
			}
			r.Barrier()
			if got := phase.Load(); got != int32(i+1) {
				return fmt.Errorf("iteration %d saw phase %d", i, got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectiveWritePerfPattern(t *testing.T) {
	// The ROMIO perf pattern: rank i writes 64 KiB at i*64Ki.
	c := testCluster(t, 4)
	setup := c.NewClient()
	if _, err := setup.Create("perf", 4, 4096, wire.Hybrid); err != nil {
		t.Fatal(err)
	}
	const chunk = 64 << 10
	err := Run(5, func(r *Rank) error {
		cl := c.NewClient()
		f, err := cl.Open("perf")
		if err != nil {
			return err
		}
		data := make([]byte, chunk)
		for i := range data {
			data[i] = byte(r.ID() + 1)
		}
		return r.CollectiveWrite(f, []Req{{Off: int64(r.ID()) * chunk, Data: data}})
	})
	if err != nil {
		t.Fatal(err)
	}
	f, _ := setup.Open("perf")
	got := make([]byte, 5*chunk)
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	for rank := 0; rank < 5; rank++ {
		for i := 0; i < chunk; i++ {
			if got[rank*chunk+i] != byte(rank+1) {
				t.Fatalf("rank %d byte %d = %d", rank, i, got[rank*chunk+i])
			}
		}
	}
}

func TestCollectiveWriteMergesSmallPieces(t *testing.T) {
	// Each rank writes many small interleaved pieces; collective buffering
	// must merge them into a handful of large chunks, and the data must be
	// exactly right.
	c := testCluster(t, 4)
	setup := c.NewClient()
	if _, err := setup.Create("bt", 4, 1024, wire.Raid5); err != nil {
		t.Fatal(err)
	}
	const ranks = 4
	const pieces = 32
	const pieceLen = 512
	total := ranks * pieces * pieceLen
	ref := make([]byte, total)

	err := Run(ranks, func(r *Rank) error {
		cl := c.NewClient()
		f, err := cl.Open("bt")
		if err != nil {
			return err
		}
		var reqs []Req
		for p := 0; p < pieces; p++ {
			// Round-robin interleaving: piece p of rank r at (p*ranks+r).
			off := int64((p*ranks + r.ID()) * pieceLen)
			data := make([]byte, pieceLen)
			for i := range data {
				data[i] = byte(int(off) + i)
			}
			copy(ref[off:], data)
			reqs = append(reqs, Req{Off: off, Data: data})
		}
		return r.CollectiveWrite(f, reqs)
	})
	if err != nil {
		t.Fatal(err)
	}
	f, _ := setup.Open("bt")
	got := make([]byte, total)
	f.ReadAt(got, 0)
	if !bytes.Equal(got, ref) {
		t.Fatal("collective write produced wrong contents")
	}
}

func TestCollectiveRead(t *testing.T) {
	c := testCluster(t, 4)
	setup := c.NewClient()
	f, err := setup.Create("rd", 4, 1024, wire.Raid1)
	if err != nil {
		t.Fatal(err)
	}
	total := 1 << 16
	ref := make([]byte, total)
	rand.New(rand.NewSource(1)).Read(ref)
	f.WriteAt(ref, 0)

	const ranks = 4
	per := total / ranks
	err = Run(ranks, func(r *Rank) error {
		cl := c.NewClient()
		fr, err := cl.Open("rd")
		if err != nil {
			return err
		}
		buf := make([]byte, per)
		if err := r.CollectiveRead(fr, []Req{{Off: int64(r.ID() * per), Data: buf}}); err != nil {
			return err
		}
		if !bytes.Equal(buf, ref[r.ID()*per:(r.ID()+1)*per]) {
			return fmt.Errorf("rank %d read wrong data", r.ID())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectiveWriteEmptyRanks(t *testing.T) {
	// Ranks with no data still participate in the collective.
	c := testCluster(t, 3)
	setup := c.NewClient()
	if _, err := setup.Create("e", 3, 64, wire.Raid0); err != nil {
		t.Fatal(err)
	}
	err := Run(4, func(r *Rank) error {
		cl := c.NewClient()
		f, err := cl.Open("e")
		if err != nil {
			return err
		}
		var reqs []Req
		if r.ID() == 2 {
			reqs = []Req{{Off: 0, Data: []byte("hello")}}
		}
		return r.CollectiveWrite(f, reqs)
	})
	if err != nil {
		t.Fatal(err)
	}
	f, _ := setup.Open("e")
	got := make([]byte, 5)
	f.ReadAt(got, 0)
	if string(got) != "hello" {
		t.Fatalf("got %q", got)
	}
}

func TestCollectiveWriteErrorPropagatesToAllRanks(t *testing.T) {
	c := testCluster(t, 3)
	setup := c.NewClient()
	if _, err := setup.Create("err", 3, 64, wire.Raid0); err != nil {
		t.Fatal(err)
	}
	c.StopServer(1) // every write will fail server-side
	var sawErr atomic.Int32
	Run(3, func(r *Rank) error { //nolint:errcheck
		cl := c.NewClient()
		f, err := cl.Open("err")
		if err != nil {
			return err
		}
		data := make([]byte, 4096)
		if err := r.CollectiveWrite(f, []Req{{Off: int64(r.ID()) * 4096, Data: data}}); err != nil {
			sawErr.Add(1)
		}
		return nil
	})
	if sawErr.Load() != 3 {
		t.Fatalf("only %d ranks saw the collective error", sawErr.Load())
	}
}

func TestChunkingRespectsBufferSize(t *testing.T) {
	comm, err := NewComm(3)
	if err != nil {
		t.Fatal(err)
	}
	comm.SetCollectiveBuffer(1000)
	comm.slots[0] = []Req{{Off: 0, Data: make([]byte, 2500)}}
	comm.slots[1] = []Req{{Off: 2500, Data: make([]byte, 500)}}
	comm.slots[2] = []Req{{Off: 5000, Data: make([]byte, 100)}} // gap before it
	plan := comm.buildPlan()
	if len(plan) != 4 { // 3000 bytes -> 3 chunks, plus the separate 100
		t.Fatalf("plan has %d chunks: %+v", len(plan), plan)
	}
	var covered int64
	aggs := map[int]bool{}
	for _, ch := range plan {
		if ch.length > 1000 {
			t.Fatalf("chunk longer than buffer: %d", ch.length)
		}
		covered += ch.length
		aggs[ch.aggregator] = true
		var copyTotal int64
		for _, cp := range ch.copies {
			copyTotal += cp.n
		}
		if copyTotal != ch.length {
			t.Fatalf("chunk at %d not fully covered by copies", ch.off)
		}
	}
	if covered != 3100 {
		t.Fatalf("plan covers %d bytes", covered)
	}
	if len(aggs) < 2 {
		t.Fatalf("aggregators not distributed: %v", aggs)
	}
}
