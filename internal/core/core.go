// Package core implements the heart of the paper's contribution: the
// arithmetic and planning that let a CSAR client pick, per write and even
// per portion of a single write, between RAID5 parity updates and
// RAID1-style mirrored overflow writes.
//
// Every write is decomposed (raid.Geometry.Decompose) into a leading partial
// stripe, a body of whole stripes, and a trailing partial stripe. The Hybrid
// scheme sends the body down the RAID5 path — parity computed client-side,
// data written in place — and diverts the partial portions to the overflow
// region with a plain mirrored copy, avoiding RAID5's read-modify-write
// entirely. Plain RAID5 instead performs the read-modify-write for the
// partial portions, which is what this package's parity-delta helpers
// implement.
package core

import (
	"fmt"

	"csar/internal/gf256"
	"csar/internal/raid"
	"csar/internal/wire"
)

// PortionMode says how one portion of a write is stored.
type PortionMode int

const (
	// ModeNone marks an empty portion.
	ModeNone PortionMode = iota
	// ModeFullStripe writes data in place with freshly computed parity.
	ModeFullStripe
	// ModeRMW updates data in place with a locked parity read-modify-write.
	ModeRMW
	// ModeOverflow writes the new data (and a mirror copy) to the overflow
	// region, leaving the in-place data and parity untouched.
	ModeOverflow
	// ModeMirrored writes data in place plus a whole mirror copy (RAID1).
	ModeMirrored
	// ModePlain writes data in place with no redundancy (RAID0).
	ModePlain
)

func (m PortionMode) String() string {
	switch m {
	case ModeNone:
		return "none"
	case ModeFullStripe:
		return "full-stripe"
	case ModeRMW:
		return "rmw"
	case ModeOverflow:
		return "overflow"
	case ModeMirrored:
		return "mirrored"
	case ModePlain:
		return "plain"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Portion is one contiguous piece of a planned write.
type Portion struct {
	Span raid.Span
	Mode PortionMode
}

// Plan describes how a write [off, off+length) is performed under a scheme.
// Portions are contiguous, in file order, and cover the write exactly;
// empty portions are omitted.
type Plan struct {
	Scheme   wire.Scheme
	Portions []Portion
}

// PlanWrite applies the scheme-selection rule of Section 4 to one write.
//
// RAID0 and RAID1 store every byte the same way. RAID5 uses fresh parity
// for whole stripes and read-modify-write for the at-most-two partial
// stripes. Hybrid selects "the appropriate reliability level on the fly":
// full stripes go to RAID5, partial-stripe portions go to the mirrored
// overflow region.
func PlanWrite(g raid.Geometry, scheme wire.Scheme, off, length int64) Plan {
	p := Plan{Scheme: scheme}
	if length <= 0 {
		return p
	}
	whole := raid.Span{Off: off, Len: length}
	switch scheme {
	case wire.Raid0:
		p.Portions = []Portion{{whole, ModePlain}}
	case wire.Raid1:
		p.Portions = []Portion{{whole, ModeMirrored}}
	case wire.Raid5, wire.Raid5NoLock, wire.Raid5NPC, wire.ReedSolomon:
		head, body, tail := g.Decompose(off, length)
		p.add(head, ModeRMW)
		p.add(body, ModeFullStripe)
		p.add(tail, ModeRMW)
	case wire.Hybrid:
		head, body, tail := g.Decompose(off, length)
		p.add(head, ModeOverflow)
		p.add(body, ModeFullStripe)
		p.add(tail, ModeOverflow)
	default:
		p.Portions = []Portion{{whole, ModePlain}}
	}
	return p
}

func (p *Plan) add(s raid.Span, m PortionMode) {
	if s.Len > 0 {
		p.Portions = append(p.Portions, Portion{s, m})
	}
}

// StripeParity computes the parity unit of one full stripe from its data.
// stripeData holds the stripe's (Servers-1) consecutive data units; parity
// must be one stripe unit long.
func StripeParity(g raid.Geometry, stripeData, parity []byte) {
	su := g.StripeUnit
	if int64(len(stripeData)) != g.StripeSize() {
		panic(fmt.Sprintf("core: stripe data is %d bytes, want %d", len(stripeData), g.StripeSize()))
	}
	if int64(len(parity)) != su {
		panic(fmt.Sprintf("core: parity buffer is %d bytes, want %d", len(parity), su))
	}
	for i := range parity {
		parity[i] = 0
	}
	for u := 0; u < g.DataWidth(); u++ {
		raid.XORInto(parity, stripeData[int64(u)*su:int64(u+1)*su])
	}
}

// ApplyParityDelta folds a partial-stripe update into an existing parity
// unit: for the logical range [off, off+len(oldData)) — which must lie
// entirely within one stripe — it applies parity ^= old ^ new at the
// within-unit positions the range occupies. oldData and newData are the
// previous and new contents of the range; parity is the stripe's full
// parity unit, updated in place.
func ApplyParityDelta(g raid.Geometry, off int64, oldData, newData, parity []byte) {
	if len(oldData) != len(newData) {
		panic(fmt.Sprintf("core: old/new length mismatch %d != %d", len(oldData), len(newData)))
	}
	if int64(len(parity)) != g.StripeUnit {
		panic(fmt.Sprintf("core: parity buffer is %d bytes, want %d", len(parity), g.StripeUnit))
	}
	length := int64(len(oldData))
	if length == 0 {
		return
	}
	if g.StripeOf(off) != g.StripeOf(off+length-1) {
		panic(fmt.Sprintf("core: range [%d,%d) crosses a stripe boundary", off, off+length))
	}
	end := off + length
	for cur := off; cur < end; {
		b := g.UnitOf(cur)
		unitStart := g.UnitStart(b)
		pieceEnd := unitStart + g.StripeUnit
		if pieceEnd > end {
			pieceEnd = end
		}
		pos := cur - unitStart // within-unit == within-parity position
		n := pieceEnd - cur
		raid.XORInto(parity[pos:pos+n], oldData[cur-off:cur-off+n])
		raid.XORInto(parity[pos:pos+n], newData[cur-off:cur-off+n])
		cur = pieceEnd
	}
}

// RSOf returns the Reed-Solomon code matching the geometry's stripe shape
// (k = DataWidth data units, m = ParityUnits parity units).
func RSOf(g raid.Geometry) (*gf256.RS, error) {
	return gf256.NewRS(g.DataWidth(), g.PU())
}

// StripeRSParity computes every Reed-Solomon parity unit of one full stripe
// from its data. stripeData holds the stripe's k consecutive data units;
// parity holds m buffers of one stripe unit each, zeroed and overwritten.
func StripeRSParity(g raid.Geometry, code *gf256.RS, stripeData []byte, parity [][]byte) {
	su := g.StripeUnit
	if int64(len(stripeData)) != g.StripeSize() {
		panic(fmt.Sprintf("core: stripe data is %d bytes, want %d", len(stripeData), g.StripeSize()))
	}
	if len(parity) != g.PU() {
		panic(fmt.Sprintf("core: %d parity buffers, want %d", len(parity), g.PU()))
	}
	data := make([][]byte, g.DataWidth())
	for u := range data {
		data[u] = stripeData[int64(u)*su : int64(u+1)*su]
	}
	code.EncodeInto(parity, data)
}

// ApplyRSParityDelta folds a partial-stripe update into one existing
// Reed-Solomon parity unit: the ApplyParityDelta identity generalized to
// coefficient rows, parity_j ^= Coef(j,i)*(old_i XOR new_i) for each data
// unit i the range [off, off+len(oldData)) touches. The range must lie
// within one stripe; parity is parity unit j of that stripe, updated in
// place.
func ApplyRSParityDelta(g raid.Geometry, code *gf256.RS, j int, off int64, oldData, newData, parity []byte) {
	if len(oldData) != len(newData) {
		panic(fmt.Sprintf("core: old/new length mismatch %d != %d", len(oldData), len(newData)))
	}
	if int64(len(parity)) != g.StripeUnit {
		panic(fmt.Sprintf("core: parity buffer is %d bytes, want %d", len(parity), g.StripeUnit))
	}
	length := int64(len(oldData))
	if length == 0 {
		return
	}
	if g.StripeOf(off) != g.StripeOf(off+length-1) {
		panic(fmt.Sprintf("core: range [%d,%d) crosses a stripe boundary", off, off+length))
	}
	k := int64(g.DataWidth())
	end := off + length
	for cur := off; cur < end; {
		b := g.UnitOf(cur)
		unitStart := g.UnitStart(b)
		pieceEnd := unitStart + g.StripeUnit
		if pieceEnd > end {
			pieceEnd = end
		}
		pos := cur - unitStart // within-unit == within-parity position
		n := pieceEnd - cur
		c := code.Coef(j, int(b%k))
		gf256.MulAddSlice(c, parity[pos:pos+n], oldData[cur-off:cur-off+n])
		gf256.MulAddSlice(c, parity[pos:pos+n], newData[cur-off:cur-off+n])
		cur = pieceEnd
	}
}

// PartialStripes returns the stripe indices of the at-most-two partial
// stripe portions of the write, in ascending order. RAID5 clients lock
// these stripes' parity in this order to avoid deadlock (Section 5.1:
// "the client serializes the reads for the parity blocks, waiting for the
// read for the lower numbered block to complete").
func PartialStripes(g raid.Geometry, off, length int64) []int64 {
	head, _, tail := g.Decompose(off, length)
	var out []int64
	if head.Len > 0 {
		out = append(out, g.StripeOf(head.Off))
	}
	if tail.Len > 0 {
		out = append(out, g.StripeOf(tail.Off))
	}
	return out
}
