package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"csar/internal/raid"
	"csar/internal/wire"
)

func geom() raid.Geometry { return raid.Geometry{Servers: 5, StripeUnit: 25} } // stripe size 100

func modes(p Plan) []PortionMode {
	var out []PortionMode
	for _, pt := range p.Portions {
		out = append(out, pt.Mode)
	}
	return out
}

func TestPlanWriteSchemeSelection(t *testing.T) {
	g := geom()
	cases := []struct {
		scheme   wire.Scheme
		off, len int64
		want     []PortionMode
	}{
		{wire.Raid0, 0, 250, []PortionMode{ModePlain}},
		{wire.Raid1, 0, 250, []PortionMode{ModeMirrored}},
		{wire.Raid5, 0, 200, []PortionMode{ModeFullStripe}},
		{wire.Raid5, 50, 100, []PortionMode{ModeRMW, ModeRMW}},
		{wire.Raid5, 50, 250, []PortionMode{ModeRMW, ModeFullStripe}},
		{wire.Raid5, 0, 150, []PortionMode{ModeFullStripe, ModeRMW}},
		{wire.Raid5, 50, 275, []PortionMode{ModeRMW, ModeFullStripe, ModeRMW}},
		{wire.Hybrid, 0, 200, []PortionMode{ModeFullStripe}},
		{wire.Hybrid, 50, 30, []PortionMode{ModeOverflow}},
		{wire.Hybrid, 50, 275, []PortionMode{ModeOverflow, ModeFullStripe, ModeOverflow}},
		{wire.Raid5NoLock, 50, 30, []PortionMode{ModeRMW}},
		{wire.Raid5NPC, 0, 100, []PortionMode{ModeFullStripe}},
		{wire.Raid0, 0, 0, nil},
	}
	for _, c := range cases {
		got := modes(PlanWrite(g, c.scheme, c.off, c.len))
		if len(got) != len(c.want) {
			t.Errorf("%v write(%d,%d): modes %v, want %v", c.scheme, c.off, c.len, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%v write(%d,%d): modes %v, want %v", c.scheme, c.off, c.len, got, c.want)
				break
			}
		}
	}
}

func TestPlanCoversWriteExactly(t *testing.T) {
	f := func(schemeSeed uint8, offSeed, lenSeed uint32) bool {
		g := geom()
		schemes := []wire.Scheme{wire.Raid0, wire.Raid1, wire.Raid5, wire.Hybrid}
		scheme := schemes[int(schemeSeed)%len(schemes)]
		off := int64(offSeed % 10000)
		length := int64(lenSeed % 5000)
		p := PlanWrite(g, scheme, off, length)
		var total int64
		cur := off
		for _, pt := range p.Portions {
			if pt.Span.Off != cur || pt.Span.Len <= 0 || pt.Mode == ModeNone {
				return false
			}
			cur = pt.Span.End()
			total += pt.Span.Len
		}
		return total == length
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHybridNeverRMWs(t *testing.T) {
	f := func(offSeed, lenSeed uint32) bool {
		g := geom()
		p := PlanWrite(g, wire.Hybrid, int64(offSeed%10000), int64(lenSeed%5000))
		for _, pt := range p.Portions {
			if pt.Mode == ModeRMW {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStripeParity(t *testing.T) {
	g := geom()
	r := rand.New(rand.NewSource(7))
	data := make([]byte, g.StripeSize())
	r.Read(data)
	parity := make([]byte, g.StripeUnit)
	StripeParity(g, data, parity)
	// XOR of all units and parity must be zero.
	acc := make([]byte, g.StripeUnit)
	copy(acc, parity)
	for u := 0; u < g.DataWidth(); u++ {
		raid.XORInto(acc, data[int64(u)*g.StripeUnit:int64(u+1)*g.StripeUnit])
	}
	for _, v := range acc {
		if v != 0 {
			t.Fatal("parity invariant violated")
		}
	}
}

func TestStripeParityPanicsOnBadSizes(t *testing.T) {
	g := geom()
	for _, fn := range []func(){
		func() { StripeParity(g, make([]byte, 10), make([]byte, g.StripeUnit)) },
		func() { StripeParity(g, make([]byte, g.StripeSize()), make([]byte, 10)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestApplyParityDeltaMatchesRecompute(t *testing.T) {
	// Updating a random in-stripe range via the delta must give the same
	// parity as recomputing from the updated stripe contents.
	f := func(seed int64, offSeed, lenSeed uint16) bool {
		g := geom()
		r := rand.New(rand.NewSource(seed))
		ss := g.StripeSize()
		stripeIdx := int64(3)
		base := g.StripeStart(stripeIdx)

		data := make([]byte, ss)
		r.Read(data)
		parity := make([]byte, g.StripeUnit)
		StripeParity(g, data, parity)

		off := int64(offSeed) % ss
		maxLen := ss - off
		length := int64(lenSeed)%maxLen + 1

		oldD := append([]byte(nil), data[off:off+length]...)
		newD := make([]byte, length)
		r.Read(newD)

		ApplyParityDelta(g, base+off, oldD, newD, parity)
		copy(data[off:], newD)

		want := make([]byte, g.StripeUnit)
		StripeParity(g, data, want)
		return bytes.Equal(parity, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestApplyParityDeltaRejectsCrossStripe(t *testing.T) {
	g := geom()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on cross-stripe range")
		}
	}()
	ApplyParityDelta(g, 90, make([]byte, 20), make([]byte, 20), make([]byte, g.StripeUnit))
}

func TestPartialStripes(t *testing.T) {
	g := geom()
	cases := []struct {
		off, len int64
		want     []int64
	}{
		{0, 100, nil},
		{50, 30, []int64{0}},
		{50, 100, []int64{0, 1}},
		{50, 275, []int64{0, 3}},
		{0, 150, []int64{1}},
	}
	for _, c := range cases {
		got := PartialStripes(g, c.off, c.len)
		if len(got) != len(c.want) {
			t.Errorf("PartialStripes(%d,%d)=%v want %v", c.off, c.len, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("PartialStripes(%d,%d)=%v want %v", c.off, c.len, got, c.want)
			}
		}
		// Always ascending (deadlock-avoidance order).
		for i := 1; i < len(got); i++ {
			if got[i] <= got[i-1] {
				t.Errorf("PartialStripes(%d,%d) not ascending: %v", c.off, c.len, got)
			}
		}
	}
}

func TestPortionModeString(t *testing.T) {
	for m := ModeNone; m <= ModePlain; m++ {
		if m.String() == "" {
			t.Fatalf("mode %d has empty String", m)
		}
	}
	if PortionMode(99).String() == "" {
		t.Fatal("unknown mode has empty String")
	}
}
