package scrub

import (
	"hash/crc32"
	"math/rand"
	"strings"
	"testing"

	"csar/internal/raid"
)

func TestXORSumIdentity(t *testing.T) {
	// xorSum of the blocks' checksums must equal the checksum of the
	// blocks' XOR, for both even and odd block counts.
	r := rand.New(rand.NewSource(7))
	for _, su := range []int64{1, 64, 4096} {
		zero := crc32.Checksum(make([]byte, su), castagnoli)
		for k := 1; k <= 6; k++ {
			acc := make([]byte, su)
			sums := make([]uint32, 0, k)
			for i := 0; i < k; i++ {
				blk := make([]byte, su)
				r.Read(blk)
				raid.XORInto(acc, blk)
				sums = append(sums, crcOf(blk))
			}
			if got, want := xorSum(sums, zero), crcOf(acc); got != want {
				t.Fatalf("su=%d k=%d: xorSum=%08x, crc of XOR=%08x", su, k, got, want)
			}
		}
	}
}

func TestNilJournalIsSafe(t *testing.T) {
	var j *Journal
	j.setUnit(1, 2)
	j.dropUnit(1)
	j.setParity(3, 4)
	j.dropStripe(3, 6, 2)
	j.setOverflow(0, 5)
	j.dropOverflow(0)
	if _, ok := j.unit(1); ok {
		t.Fatal("nil journal returned a unit entry")
	}
	if _, ok := j.parityOf(3); ok {
		t.Fatal("nil journal returned a parity entry")
	}
	if _, ok := j.overflowOf(0); ok {
		t.Fatal("nil journal returned an overflow entry")
	}
}

func TestJournalDropSemantics(t *testing.T) {
	j := NewJournal()
	j.setUnit(10, 1)
	j.setUnit(11, 2)
	j.setParity(5, 3)
	j.setOverflow(2, 4)

	if v, ok := j.unit(10); !ok || v != 1 {
		t.Fatal("unit entry lost")
	}
	j.dropStripe(5, 10, 2)
	if _, ok := j.parityOf(5); ok {
		t.Fatal("dropStripe kept the parity entry")
	}
	if _, ok := j.unit(10); ok {
		t.Fatal("dropStripe kept unit 10")
	}
	if _, ok := j.unit(11); ok {
		t.Fatal("dropStripe kept unit 11")
	}
	if v, ok := j.overflowOf(2); !ok || v != 4 {
		t.Fatal("dropStripe touched overflow entries")
	}
	j.dropOverflow(2)
	if _, ok := j.overflowOf(2); ok {
		t.Fatal("dropOverflow kept the entry")
	}
}

func TestReportTotalsAndString(t *testing.T) {
	r := &Report{
		Mirror:   Counts{Checked: 5, Mismatched: 2, Repaired: 1, Unrepairable: 1},
		Parity:   Counts{Checked: 7, Mismatched: 1, Repaired: 1},
		Overflow: Counts{Checked: 3},
	}
	tot := r.Totals()
	if tot.Checked != 15 || tot.Mismatched != 3 || tot.Repaired != 2 || tot.Unrepairable != 1 {
		t.Fatalf("totals = %+v", tot)
	}
	if r.Clean() {
		t.Fatal("report with mismatches claims clean")
	}
	if !(&Report{}).Clean() {
		t.Fatal("empty report not clean")
	}
	if s := r.String(); !strings.Contains(s, "15 checked") || !strings.Contains(s, "3 mismatched") {
		t.Fatalf("String() = %q", s)
	}
}
