package scrub

import (
	"bytes"
	"errors"
	"fmt"

	"csar/internal/core"
	"csar/internal/wire"
)

// Reed-Solomon scrubbing. The checksum fast path of scrubParity leans on
// CRC32 being affine over GF(2), which covers XOR parity only: parity unit 0
// of an RS stripe is the plain XOR of the data units (the first coefficient
// row is all ones) and can still be checked from checksums alone, but units
// j > 0 are GF(256) combinations whose CRCs are not derivable from the data
// units' CRCs. Those units are instead checked against the Journal: a stripe
// whose every current checksum — data units and parity units — still equals
// its last-known-good value is unchanged since it was last verified
// consistent. Everything else (and every stripe on a journal-less pass) is
// verified at the byte level by re-encoding the stripe.

// rsParitySum folds the m parity-unit checksums of one stripe into the
// single value the Journal stores per stripe.
func rsParitySum(sums []uint32) uint32 {
	buf := make([]byte, 4*len(sums))
	for i, s := range sums {
		buf[4*i] = byte(s)
		buf[4*i+1] = byte(s >> 8)
		buf[4*i+2] = byte(s >> 16)
		buf[4*i+3] = byte(s >> 24)
	}
	return crcOf(buf)
}

// scrubParityRS cross-checks every stripe of a Reed-Solomon file. As in
// scrubParity, a window of N consecutive stripes places exactly k data units
// and m parity units on every server, so checksums are fetched as contiguous
// runs; the per-stripe fast path then needs both the XOR check on parity
// unit 0 and journal agreement on the rest.
func (s *scrubber) scrubParityRS() error {
	n := int64(s.g.Servers)
	dw := int64(s.g.DataWidth())
	m := s.g.PU()
	stripes := s.g.StripesIn(s.size)
	windows := (stripes + n - 1) / n
	batch := int64(s.opts.BatchStripes)
	intents, err := s.intentStripes()
	if err != nil {
		return err
	}
	for w0 := int64(0); w0 < windows; w0 += batch {
		if s.canceled() {
			return ErrCanceled
		}
		w1 := min(w0+batch, windows)
		dataSums := make([][]uint32, s.g.Servers)
		parSums := make([][]uint32, s.g.Servers)
		err := s.eachServer(func(i int) error {
			ds, err := s.sums(i, wire.StoreData, w0*dw*s.su, (w1-w0)*dw*s.su, s.su)
			if err != nil {
				return err
			}
			ps, err := s.sums(i, wire.StoreParity, w0*int64(m)*s.su, (w1-w0)*int64(m)*s.su, s.su)
			if err != nil {
				return err
			}
			dataSums[i], parSums[i] = ds, ps
			return nil
		})
		if err != nil {
			return err
		}
		for st := w0 * n; st < w1*n && st < stripes; st++ {
			if intents[st] {
				s.rep.IntentSkips++
				continue
			}
			s.rep.Parity.Checked++
			first, count := s.g.DataUnitsOf(st)
			unitSums := make([]uint32, count)
			for j := 0; j < count; j++ {
				u := first + int64(j)
				unitSums[j] = dataSums[s.g.ServerOf(u)][u/n-w0*dw]
			}
			pSums := make([]uint32, m)
			for j := 0; j < m; j++ {
				srv := s.g.ParityServerOfUnit(st, j)
				pSums[j] = parSums[srv][s.g.ParityLocalOffsetOn(srv, st)/s.su-w0*int64(m)]
			}
			if s.rsFastPathConsistent(st, first, count, unitSums, pSums) {
				continue
			}
			if err := s.checkStripeRS(st); err != nil {
				return err
			}
		}
	}
	return nil
}

// rsFastPathConsistent decides from checksums alone that a stripe is
// consistent: parity unit 0 must equal the XOR of the data units, and every
// checksum — each data unit's and the folded parity set — must match its
// last-known-good journal entry (proving the GF-combined units j > 0
// unchanged since the last byte-level verification). On success the journal
// entries are refreshed; any failure sends the stripe to byte-level review.
func (s *scrubber) rsFastPathConsistent(st, first int64, count int, unitSums, pSums []uint32) bool {
	if xorSum(unitSums, s.zero) != pSums[0] {
		return false
	}
	if len(pSums) > 1 {
		known, ok := s.opts.Journal.parityOf(st)
		if !ok || known != rsParitySum(pSums) {
			return false
		}
		for j := 0; j < count; j++ {
			u, ok := s.opts.Journal.unit(first + int64(j))
			if !ok || u != unitSums[j] {
				return false
			}
		}
	}
	for j := 0; j < count; j++ {
		s.opts.Journal.setUnit(first+int64(j), unitSums[j])
	}
	s.opts.Journal.setParity(st, rsParitySum(pSums))
	return true
}

// checkStripeRS re-verifies one RS stripe at the byte level and repairs it.
// Locking parity unit 0's server suffices to serialize against foreground
// read-modify-writes: every RMW acquires its parity locks in unit order, so
// none can get past unit 0 while the scrubber holds it.
func (s *scrubber) checkStripeRS(st int64) error {
	code, err := core.RSOf(s.g)
	if err != nil {
		return err
	}
	lock := s.ref.Scheme.UsesLocking()
	first, count := s.g.DataUnitsOf(st)
	m := s.g.PU()

	presp, err := s.call(s.g.ParityServerOfUnit(st, 0), &wire.ReadParity{
		File: s.ref, Stripes: []int64{st}, Lock: lock,
	})
	if errors.Is(err, wire.ErrStripeTorn) {
		s.rep.IntentSkips++
		s.rep.Parity.Checked--
		return nil
	}
	if err != nil {
		return err
	}
	parity := make([][]byte, m)
	parity[0] = presp.(*wire.ReadResp).Data
	if int64(len(parity[0])) != s.su {
		s.release(st, parity[0], lock) //nolint:errcheck // already failing
		return fmt.Errorf("scrub: short parity read of stripe %d", st)
	}
	s.throttle(s.su)
	for j := 1; j < m; j++ {
		resp, rerr := s.call(s.g.ParityServerOfUnit(st, j), &wire.ReadParity{
			File: s.ref, Stripes: []int64{st},
		})
		if rerr != nil {
			s.release(st, parity[0], lock) //nolint:errcheck
			return rerr
		}
		parity[j] = resp.(*wire.ReadResp).Data
		if int64(len(parity[j])) != s.su {
			s.release(st, parity[0], lock) //nolint:errcheck
			return fmt.Errorf("scrub: short parity read of stripe %d unit %d", st, j)
		}
		s.throttle(s.su)
	}
	units := make([][]byte, count)
	for j := 0; j < count; j++ {
		data, rerr := s.readRawUnit(first + int64(j))
		if rerr != nil {
			s.release(st, parity[0], lock) //nolint:errcheck
			return rerr
		}
		units[j] = data
	}

	want := make([][]byte, m)
	for j := range want {
		want[j] = make([]byte, s.su)
	}
	code.EncodeInto(want, units)
	var badParity []int
	for j := 0; j < m; j++ {
		if !bytes.Equal(want[j], parity[j]) {
			badParity = append(badParity, j)
		}
	}
	if len(badParity) == 0 {
		// The checksum mismatch (or cold journal) resolved consistent under
		// the lock; record the evidence for the next pass's fast path.
		sums := make([]uint32, m)
		for j := 0; j < m; j++ {
			sums[j] = crcOf(parity[j])
		}
		for j := 0; j < count; j++ {
			s.opts.Journal.setUnit(first+int64(j), crcOf(units[j]))
		}
		s.opts.Journal.setParity(st, rsParitySum(sums))
		return s.release(st, parity[0], lock)
	}
	s.rep.Parity.Mismatched++
	defer s.opts.Journal.dropStripe(st, first, count)

	knownParity, haveParity := s.opts.Journal.parityOf(st)
	allUnits := true
	var deviants []int
	for j := 0; j < count; j++ {
		known, ok := s.opts.Journal.unit(first + int64(j))
		if !ok {
			allUnits = false
			break
		}
		if crcOf(units[j]) != known {
			deviants = append(deviants, j)
		}
	}
	curParity := make([]uint32, m)
	for j := 0; j < m; j++ {
		curParity[j] = crcOf(parity[j])
	}
	parityDeviates := haveParity && rsParitySum(curParity) != knownParity

	switch {
	case haveParity && allUnits && parityDeviates && len(deviants) == 0:
		s.problemf("stripe %d: parity fails its last-known-good checksum; regenerating from data", st)
		return s.repairParityRS(st, badParity, want, lock)
	case haveParity && allUnits && !parityDeviates && len(deviants) == 1:
		// Parity and every other unit still match their last-known-good
		// checksums: the deviating unit is corrupt, and its original bytes
		// are recoverable by decoding from any k of the survivors.
		bad := first + int64(deviants[0])
		if !s.opts.RepairData {
			s.rep.Parity.Unrepairable++
			s.problemf("stripe %d: unit %d fails its last-known-good checksum; parity matches (RepairData off)", st, bad)
			return s.release(st, parity[0], lock)
		}
		all := make([][]byte, count+m)
		for j := 0; j < count; j++ {
			all[j] = units[j]
		}
		all[deviants[0]] = nil
		for j := 0; j < m; j++ {
			all[count+j] = parity[j]
		}
		if derr := code.Reconstruct(all); derr != nil {
			s.release(st, parity[0], lock) //nolint:errcheck
			return derr
		}
		s.problemf("stripe %d: unit %d fails its last-known-good checksum; restoring it from parity", st, bad)
		if err := s.repairData(bad, all[deviants[0]], &s.rep.Parity); err != nil {
			s.release(st, parity[0], lock) //nolint:errcheck
			return err
		}
		return s.release(st, parity[0], lock)
	default:
		s.problemf("stripe %d: parity does not match data and no usable evidence; regenerating parity from data", st)
		return s.repairParityRS(st, badParity, want, lock)
	}
}

// repairParityRS rewrites the mismatched parity units of one stripe from the
// re-encoded data, releasing the unit-0 lock with the last write to that
// server (or explicitly when unit 0 was not among the bad ones).
func (s *scrubber) repairParityRS(st int64, bad []int, want [][]byte, lock bool) error {
	unlocked := false
	for _, j := range bad {
		if _, err := s.call(s.g.ParityServerOfUnit(st, j), &wire.WriteParity{
			File: s.ref, Stripes: []int64{st}, Data: want[j], Unlock: lock && j == 0,
		}); err != nil {
			return err
		}
		if j == 0 {
			unlocked = true
		}
		s.throttle(s.su)
	}
	s.rep.Parity.Repaired++
	if lock && !unlocked {
		return s.release(st, want[0], lock)
	}
	return nil
}
