// Package scrub implements CSAR's online integrity scrubber: a background
// pass that walks a file stripe by stripe, cross-checks every redundant copy
// against the data it protects, and repairs silent corruption in place —
// while the file stays online and foreground writers keep going.
//
// The scrubber compares checksums, not bytes. Each I/O server computes
// CRC32C sums over its local stores (the ChecksumRange request), so the
// modeled network carries a few words per stripe unit instead of the unit
// itself; full blocks are read back only for ranges whose checksums
// disagree. The RAID5/Hybrid parity fast path never ships data at all:
// CRC32 is affine over GF(2), so the checksum the parity block *should*
// have is computed from the data units' checksums alone (xorSum).
//
// What a mismatch means depends on history. A checksum Journal carries
// last-known-good evidence between passes: the copy still matching the
// checksum it had when everything last agreed wins, and the other is
// repaired. Without evidence the scrubber applies the conservative default
// of md-raid's repair mode — the data copy is assumed good and the
// redundancy (mirror, parity, overflow mirror) is regenerated from it.
// Repairs that would overwrite the primary data copy are additionally
// gated behind Options.RepairData, because a wrong guess there loses user
// bytes rather than redundancy.
//
// Scrubbing is safe concurrently with foreground writes: byte-level stripe
// verification takes the same parity lock the read-modify-write path uses,
// transient disagreements (a write landing between two reads) are detected
// by double-reading and skipped, and journal entries are dropped on any
// mismatch so stale evidence can never outvote data a writer just wrote.
// The scrubber's own disk traffic is metered by a token-bucket rate limiter
// driven by simulated time, so a throttled scrub steals a bounded, settable
// share of the disks from foreground I/O.
package scrub

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"
	"time"

	"csar/internal/client"
	"csar/internal/raid"
	"csar/internal/simtime"
	"csar/internal/wire"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCanceled is returned by Run when Options.Cancel fires mid-pass. The
// report still covers everything scrubbed up to that point.
var ErrCanceled = errors.New("scrub: canceled")

// allRange covers any store offset; used to checksum a whole overflow table.
const allRange = int64(1) << 62

// Options tunes one scrub pass.
type Options struct {
	// RateLimit caps the scrubber's store I/O in bytes per second of
	// simulated time (wall time when the client is untimed). Zero or
	// negative means unlimited.
	RateLimit float64
	// Clock drives the rate limiter; nil uses the client's clock.
	Clock *simtime.Clock
	// BatchStripes is how many stripe rows of checksums are fetched from
	// every server in one round trip. Defaults to 4.
	BatchStripes int
	// Journal carries last-known-good checksums between passes of the same
	// file, enabling evidence-based repair decisions. Nil disables them:
	// every mismatch falls back to regenerating redundancy from data.
	Journal *Journal
	// RepairData allows the scrubber to overwrite the primary data copy
	// when the evidence says the data — not the redundancy — is corrupt.
	// Off by default; such mismatches are then reported as unrepairable.
	RepairData bool
	// Cancel, when closed, stops the pass at the next batch boundary; Run
	// then returns its partial report with ErrCanceled. Nil never cancels.
	Cancel <-chan struct{}
}

// Counts summarizes one redundancy kind's scrub outcome.
type Counts struct {
	Checked      int64 // units / stripes / overflow pairs examined
	Mismatched   int64 // found inconsistent at the byte level
	Repaired     int64 // repaired in place
	Unrepairable int64 // left inconsistent (repair gated off or impossible)
}

func (c *Counts) add(o Counts) {
	c.Checked += o.Checked
	c.Mismatched += o.Mismatched
	c.Repaired += o.Repaired
	c.Unrepairable += o.Unrepairable
}

// Report is the outcome of one scrub pass over one file.
type Report struct {
	Scheme        wire.Scheme
	BytesScrubbed int64 // store bytes examined (checksummed or read back)
	Mirror        Counts
	Parity        Counts
	Overflow      Counts
	// IntentSkips counts stripes the pass left unexamined because their
	// parity server holds a write intent for them: an RMW is in flight (or
	// died and awaits replay), so data and parity legitimately disagree and
	// "repairing" the stripe would destroy the evidence replay needs.
	IntentSkips int64
	Problems    []string // human-readable notes on every mismatch
}

// Totals sums the per-kind counts.
func (r *Report) Totals() Counts {
	var t Counts
	t.add(r.Mirror)
	t.add(r.Parity)
	t.add(r.Overflow)
	return t
}

// Clean reports whether the pass found no mismatches.
func (r *Report) Clean() bool { return r.Totals().Mismatched == 0 }

func (r *Report) String() string {
	t := r.Totals()
	return fmt.Sprintf("scrub %v: %d checked, %d mismatched, %d repaired, %d unrepairable (%d bytes scrubbed)",
		r.Scheme, t.Checked, t.Mismatched, t.Repaired, t.Unrepairable, r.BytesScrubbed)
}

// Run performs one scrub pass over f and repairs what it safely can. It
// returns a report even when it fails partway (the counts cover the part
// that ran). A RAID0 file has no redundancy to check and yields an empty
// report.
func Run(c *client.Client, f *client.File, opts Options) (*Report, error) {
	g := f.Geometry()
	ref := f.Ref()
	rep := &Report{Scheme: ref.Scheme}
	for i := 0; i < g.Servers; i++ {
		if c.Down(i) {
			return rep, fmt.Errorf("scrub: server %d is down; rebuild it before scrubbing", i)
		}
	}
	size := f.Size()
	// Raid0 stores no redundancy, and Raid5NPC deliberately writes
	// uncomputed parity (a CPU-cost ablation): neither has an invariant a
	// scrub could check, let alone repair.
	if size == 0 || ref.Scheme == wire.Raid0 || ref.Scheme == wire.Raid5NPC {
		return rep, nil
	}
	if opts.Clock == nil {
		opts.Clock = c.Clock()
	}
	if !opts.Clock.Timed() && opts.RateLimit > 0 {
		// Live deployments have no modeled clock; pace the limiter in wall
		// time (one simulated second per real second) so RateLimit still
		// means bytes per second rather than silently not limiting.
		opts.Clock = &simtime.Clock{Scale: time.Second}
	}
	if opts.BatchStripes <= 0 {
		opts.BatchStripes = 4
	}
	defer c.ObserveSince("scrub_pass", time.Now())
	s := &scrubber{
		c:    c,
		g:    g,
		ref:  ref,
		size: size,
		su:   g.StripeUnit,
		opts: opts,
		lim:  simtime.NewLimiter(opts.Clock, opts.RateLimit),
		zero: crc32.Checksum(make([]byte, g.StripeUnit), castagnoli),
		rep:  rep,
	}
	var err error
	switch {
	case ref.Scheme == wire.Raid1:
		err = s.scrubMirrors()
	case ref.Scheme == wire.ReedSolomon:
		err = s.scrubParityRS()
	case ref.Scheme.UsesParity():
		err = s.scrubParity()
		if err == nil && ref.Scheme == wire.Hybrid {
			err = s.scrubOverflow()
		}
	}
	rep.BytesScrubbed = s.bytes.Load()
	t := rep.Totals()
	// Bytes were noted incrementally by throttle (so a long pass shows live
	// progress in Metrics); only the outcome counts remain.
	c.NoteScrub(0, t.Mismatched, t.Repaired, t.Unrepairable)
	c.NoteIntentSkips(rep.IntentSkips)
	return rep, err
}

type scrubber struct {
	c    *client.Client
	g    raid.Geometry
	ref  wire.FileRef
	size int64
	su   int64
	opts Options
	lim  *simtime.Limiter
	zero uint32 // CRC32C of one all-zero stripe unit

	bytes atomic.Int64 // store bytes examined; atomic: sums() runs per-server goroutines
	rep   *Report
}

func (s *scrubber) call(idx int, m wire.Msg) (wire.Msg, error) {
	return s.c.ServerCaller(idx).Call(m)
}

// throttle charges n store bytes against the rate limiter, then the report
// and the client's live scrub metrics — after the wait, so the metrics
// reflect transfers the limiter has let through, not reservations.
func (s *scrubber) throttle(n int64) {
	s.lim.Acquire(n)
	s.bytes.Add(n)
	s.c.NoteScrub(n, 0, 0, 0)
}

// canceled reports whether Options.Cancel has fired.
func (s *scrubber) canceled() bool {
	select {
	case <-s.opts.Cancel:
		return true
	default:
		return false
	}
}

func (s *scrubber) problemf(format string, args ...any) {
	s.rep.Problems = append(s.rep.Problems, fmt.Sprintf(format, args...))
}

func crcOf(p []byte) uint32 { return crc32.Checksum(p, castagnoli) }

// xorSum returns the CRC32C the XOR of the checksummed blocks must have.
// CRC32 is affine over GF(2): crc(x) = L(x) ⊕ c with L linear and
// c = crc(zeros), so crc(⊕dᵢ) = ⊕crc(dᵢ) ⊕ ((k+1) mod 2)·c for k blocks.
func xorSum(sums []uint32, zero uint32) uint32 {
	var x uint32
	for _, s := range sums {
		x ^= s
	}
	if len(sums)%2 == 0 {
		x ^= zero
	}
	return x
}

// eachServer runs fn for every server concurrently and joins the errors.
func (s *scrubber) eachServer(fn func(i int) error) error {
	errs := make([]error, s.g.Servers)
	var wg sync.WaitGroup
	for i := 0; i < s.g.Servers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// sums fetches checksums over one store range of one server and charges the
// server-reported byte count against the rate limit.
func (s *scrubber) sums(srv int, store uint8, off, length, chunk int64) ([]uint32, error) {
	resp, err := s.call(srv, &wire.ChecksumRange{
		File: s.ref, Store: store, Off: off, Len: length, Chunk: chunk,
	})
	if err != nil {
		return nil, err
	}
	cr := resp.(*wire.ChecksumRangeResp)
	s.throttle(cr.Bytes)
	return cr.Sums, nil
}

// readRawUnit reads one whole unit's in-place bytes from its server.
func (s *scrubber) readRawUnit(b int64) ([]byte, error) {
	span := wire.Span{Off: s.g.UnitStart(b), Len: s.su}
	resp, err := s.call(s.g.ServerOf(b), &wire.Read{File: s.ref, Spans: []wire.Span{span}, Raw: true})
	if err != nil {
		return nil, err
	}
	data := resp.(*wire.ReadResp).Data
	if int64(len(data)) != s.su {
		return nil, fmt.Errorf("scrub: short read of unit %d", b)
	}
	s.throttle(s.su)
	return data, nil
}

// readMirrorUnit reads one unit's mirror copy from the next server.
func (s *scrubber) readMirrorUnit(b int64) ([]byte, error) {
	span := wire.Span{Off: s.g.UnitStart(b), Len: s.su}
	resp, err := s.call(s.g.MirrorServerOf(b), &wire.ReadMirror{File: s.ref, Spans: []wire.Span{span}})
	if err != nil {
		return nil, err
	}
	data := resp.(*wire.ReadResp).Data
	if int64(len(data)) != s.su {
		return nil, fmt.Errorf("scrub: short read of unit %d's mirror", b)
	}
	s.throttle(s.su)
	return data, nil
}

// --- RAID1 -----------------------------------------------------------------

// scrubMirrors cross-checks every data unit against its mirror. One "row"
// is one local unit per server, so a row of data checksums plus a row of
// mirror checksums covers N units; rows are fetched in batches from all
// servers concurrently.
func (s *scrubber) scrubMirrors() error {
	n := int64(s.g.Servers)
	units := s.g.UnitsIn(s.size)
	rows := (units + n - 1) / n
	batch := int64(s.opts.BatchStripes)
	for r0 := int64(0); r0 < rows; r0 += batch {
		if s.canceled() {
			return ErrCanceled
		}
		r1 := min(r0+batch, rows)
		dataSums := make([][]uint32, s.g.Servers)
		mirSums := make([][]uint32, s.g.Servers)
		err := s.eachServer(func(i int) error {
			ds, err := s.sums(i, wire.StoreData, r0*s.su, (r1-r0)*s.su, s.su)
			if err != nil {
				return err
			}
			ms, err := s.sums(i, wire.StoreMirror, r0*s.su, (r1-r0)*s.su, s.su)
			if err != nil {
				return err
			}
			dataSums[i], mirSums[i] = ds, ms
			return nil
		})
		if err != nil {
			return err
		}
		for b := r0 * n; b < r1*n && b < units; b++ {
			s.rep.Mirror.Checked++
			dc := dataSums[s.g.ServerOf(b)][b/n-r0]
			mc := mirSums[s.g.MirrorServerOf(b)][b/n-r0]
			if dc == mc {
				s.opts.Journal.setUnit(b, dc)
				continue
			}
			if err := s.checkMirrorUnit(b); err != nil {
				return err
			}
		}
	}
	return nil
}

// checkMirrorUnit re-examines one unit whose checksums disagreed, at the
// byte level. RAID1 has no lock to serialize against writers, so each copy
// is read twice: a copy still changing belongs to an in-flight foreground
// write and is left for the next pass.
func (s *scrubber) checkMirrorUnit(b int64) error {
	prim1, err := s.readRawUnit(b)
	if err != nil {
		return err
	}
	mir1, err := s.readMirrorUnit(b)
	if err != nil {
		return err
	}
	prim, err := s.readRawUnit(b)
	if err != nil {
		return err
	}
	mir, err := s.readMirrorUnit(b)
	if err != nil {
		return err
	}
	if !bytes.Equal(prim1, prim) || !bytes.Equal(mir1, mir) {
		s.opts.Journal.dropUnit(b)
		return nil // foreground write in flight; revisit next pass
	}
	if bytes.Equal(prim, mir) {
		// The checksum mismatch was a transient race; the copies agree.
		s.opts.Journal.setUnit(b, crcOf(prim))
		return nil
	}
	s.rep.Mirror.Mismatched++
	defer s.opts.Journal.dropUnit(b)
	pc, mc := crcOf(prim), crcOf(mir)
	known, ok := s.opts.Journal.unit(b)
	switch {
	case ok && known == pc:
		return s.repairMirror(b, prim)
	case ok && known == mc:
		if !s.opts.RepairData {
			s.rep.Mirror.Unrepairable++
			s.problemf("unit %d: primary fails its last-known-good checksum; mirror matches (RepairData off)", b)
			return nil
		}
		return s.repairData(b, mir, &s.rep.Mirror)
	default:
		s.problemf("unit %d: mirror differs from primary with no usable evidence; rewriting mirror from primary", b)
		return s.repairMirror(b, prim)
	}
}

func (s *scrubber) repairMirror(b int64, data []byte) error {
	span := wire.Span{Off: s.g.UnitStart(b), Len: s.su}
	if _, err := s.call(s.g.MirrorServerOf(b), &wire.WriteMirror{
		File: s.ref, Spans: []wire.Span{span}, Data: data,
	}); err != nil {
		return err
	}
	s.throttle(s.su)
	s.rep.Mirror.Repaired++
	return nil
}

func (s *scrubber) repairData(b int64, data []byte, counts *Counts) error {
	span := wire.Span{Off: s.g.UnitStart(b), Len: s.su}
	if _, err := s.call(s.g.ServerOf(b), &wire.WriteData{
		File: s.ref, Spans: []wire.Span{span}, Data: data, Raw: true,
	}); err != nil {
		return err
	}
	s.throttle(s.su)
	counts.Repaired++
	return nil
}

// --- RAID5 / Hybrid parity -------------------------------------------------

// scrubParity cross-checks every stripe's parity against the XOR of its
// data units, using checksums only. A "window" of N consecutive stripes
// places exactly one parity unit and N-1 data units on every server, so
// per window each server contributes a contiguous run of N-1 data
// checksums and one parity checksum; windows are fetched in batches.
func (s *scrubber) scrubParity() error {
	n := int64(s.g.Servers)
	dw := int64(s.g.DataWidth())
	stripes := s.g.StripesIn(s.size)
	windows := (stripes + n - 1) / n
	batch := int64(s.opts.BatchStripes)
	intents, err := s.intentStripes()
	if err != nil {
		return err
	}
	for w0 := int64(0); w0 < windows; w0 += batch {
		if s.canceled() {
			return ErrCanceled
		}
		w1 := min(w0+batch, windows)
		dataSums := make([][]uint32, s.g.Servers)
		parSums := make([][]uint32, s.g.Servers)
		err := s.eachServer(func(i int) error {
			ds, err := s.sums(i, wire.StoreData, w0*dw*s.su, (w1-w0)*dw*s.su, s.su)
			if err != nil {
				return err
			}
			ps, err := s.sums(i, wire.StoreParity, w0*s.su, (w1-w0)*s.su, s.su)
			if err != nil {
				return err
			}
			dataSums[i], parSums[i] = ds, ps
			return nil
		})
		if err != nil {
			return err
		}
		for st := w0 * n; st < w1*n && st < stripes; st++ {
			if intents[st] {
				// A write intent covers this stripe: an update is in flight
				// or awaits replay; its transient mismatch is not corruption.
				s.rep.IntentSkips++
				continue
			}
			s.rep.Parity.Checked++
			first, count := s.g.DataUnitsOf(st)
			unitSums := make([]uint32, count)
			for j := 0; j < count; j++ {
				u := first + int64(j)
				unitSums[j] = dataSums[s.g.ServerOf(u)][u/n-w0*dw]
			}
			pc := parSums[s.g.ParityServerOf(st)][st/n-w0]
			if xorSum(unitSums, s.zero) == pc {
				for j := 0; j < count; j++ {
					s.opts.Journal.setUnit(first+int64(j), unitSums[j])
				}
				s.opts.Journal.setParity(st, pc)
				continue
			}
			if err := s.checkStripe(st); err != nil {
				return err
			}
		}
	}
	return nil
}

// intentStripes fetches every parity server's write-intent set at the start
// of a parity pass; the covered stripes are mid-update (or fail-stopped
// awaiting replay) and must not be "repaired" from their transient state.
func (s *scrubber) intentStripes() (map[int64]bool, error) {
	intents := make(map[int64]bool)
	var mu sync.Mutex
	err := s.eachServer(func(i int) error {
		resp, err := s.call(i, &wire.ListIntents{File: s.ref})
		if err != nil {
			return err
		}
		lr, ok := resp.(*wire.ListIntentsResp)
		if !ok {
			return fmt.Errorf("scrub: unexpected intent listing %T", resp)
		}
		mu.Lock()
		for _, in := range lr.Intents {
			intents[in.Stripe] = true
		}
		mu.Unlock()
		return nil
	})
	return intents, err
}

// checkStripe re-verifies one stripe at the byte level and repairs it. It
// acquires the stripe's parity lock (for the schemes that use locking), so
// no read-modify-write can interleave; the lock is released by the closing
// parity write — either the repair itself or an unchanged write-back.
func (s *scrubber) checkStripe(st int64) error {
	lock := s.ref.Scheme.UsesLocking()
	first, count := s.g.DataUnitsOf(st)
	presp, err := s.call(s.g.ParityServerOf(st), &wire.ReadParity{
		File: s.ref, Stripes: []int64{st}, Lock: lock,
	})
	if errors.Is(err, wire.ErrStripeTorn) {
		// The stripe fail-stopped (lease expiry) after the pass-start intent
		// snapshot; it belongs to recovery's replay, not to the scrubber.
		s.rep.IntentSkips++
		s.rep.Parity.Checked--
		return nil
	}
	if err != nil {
		return err
	}
	parity := presp.(*wire.ReadResp).Data
	if int64(len(parity)) != s.su {
		s.release(st, parity, lock) //nolint:errcheck // already failing
		return fmt.Errorf("scrub: short parity read of stripe %d", st)
	}
	s.throttle(s.su)

	acc := make([]byte, s.su)
	units := make([][]byte, count)
	for j := 0; j < count; j++ {
		data, rerr := s.readRawUnit(first + int64(j))
		if rerr != nil {
			s.release(st, parity, lock) //nolint:errcheck
			return rerr
		}
		units[j] = data
		raid.XORInto(acc, data)
	}
	if bytes.Equal(acc, parity) {
		// The checksum mismatch was a transient race; under the lock the
		// stripe is consistent.
		for j := 0; j < count; j++ {
			s.opts.Journal.setUnit(first+int64(j), crcOf(units[j]))
		}
		s.opts.Journal.setParity(st, crcOf(parity))
		return s.release(st, parity, lock)
	}
	s.rep.Parity.Mismatched++
	defer s.opts.Journal.dropStripe(st, first, count)

	// Journal evidence is usable only if it covers the whole stripe: the
	// parity entry and every unit entry must exist, and at most one copy
	// may deviate from its last-known-good checksum.
	knownParity, haveParity := s.opts.Journal.parityOf(st)
	allUnits := true
	var deviants []int
	for j := 0; j < count; j++ {
		known, ok := s.opts.Journal.unit(first + int64(j))
		if !ok {
			allUnits = false
			break
		}
		if crcOf(units[j]) != known {
			deviants = append(deviants, j)
		}
	}
	parityDeviates := haveParity && crcOf(parity) != knownParity

	switch {
	case haveParity && allUnits && parityDeviates && len(deviants) == 0:
		// Every data unit still matches its last-known-good checksum and
		// the parity alone drifted: the parity block is corrupt.
		s.problemf("stripe %d: parity fails its last-known-good checksum; regenerating from data", st)
		return s.repairParity(st, acc, lock)
	case haveParity && allUnits && !parityDeviates && len(deviants) == 1:
		// Parity and all other units are still at their last-known-good
		// checksums: the one deviating unit is corrupt, and its correct
		// contents are recoverable as parity ⊕ (the other units).
		bad := first + int64(deviants[0])
		if !s.opts.RepairData {
			s.rep.Parity.Unrepairable++
			s.problemf("stripe %d: unit %d fails its last-known-good checksum; parity matches (RepairData off)", st, bad)
			return s.release(st, parity, lock)
		}
		fix := make([]byte, s.su)
		copy(fix, parity)
		raid.XORInto(fix, acc)
		raid.XORInto(fix, units[deviants[0]])
		s.problemf("stripe %d: unit %d fails its last-known-good checksum; restoring it from parity", st, bad)
		if err := s.repairData(bad, fix, &s.rep.Parity); err != nil {
			s.release(st, parity, lock) //nolint:errcheck
			return err
		}
		return s.release(st, parity, lock)
	default:
		s.problemf("stripe %d: parity does not match data and no usable evidence; regenerating parity from data", st)
		return s.repairParity(st, acc, lock)
	}
}

// release writes the parity back unchanged purely to drop the stripe lock.
func (s *scrubber) release(st int64, parity []byte, lock bool) error {
	if !lock {
		return nil
	}
	_, err := s.call(s.g.ParityServerOf(st), &wire.WriteParity{
		File: s.ref, Stripes: []int64{st}, Data: parity, Unlock: true,
	})
	return err
}

// repairParity overwrites the stripe's parity block (releasing the lock for
// the schemes that hold one; for Raid5NoLock a plain parity write is safe
// because only Hybrid attaches overflow-invalidation semantics to it).
func (s *scrubber) repairParity(st int64, data []byte, lock bool) error {
	if _, err := s.call(s.g.ParityServerOf(st), &wire.WriteParity{
		File: s.ref, Stripes: []int64{st}, Data: data, Unlock: lock,
	}); err != nil {
		return err
	}
	s.throttle(s.su)
	s.rep.Parity.Repaired++
	return nil
}

// --- Hybrid overflow -------------------------------------------------------

// scrubOverflow cross-checks every server's primary overflow region against
// its mirror on the next server. The fast path compares one aggregate
// checksum per side, covering each live extent's table entry and contents,
// so both table drift and bit rot in the extent bytes are caught.
func (s *scrubber) scrubOverflow() error {
	for i := 0; i < s.g.Servers; i++ {
		if s.canceled() {
			return ErrCanceled
		}
		s.rep.Overflow.Checked++
		next := (i + 1) % s.g.Servers
		ps, err := s.sums(i, wire.StoreOverflow, 0, allRange, 0)
		if err != nil {
			return err
		}
		ms, err := s.sums(next, wire.StoreOverflowMirror, 0, allRange, 0)
		if err != nil {
			return err
		}
		if ps[0] == ms[0] {
			s.opts.Journal.setOverflow(i, ps[0])
			continue
		}
		if err := s.checkOverflowPair(i); err != nil {
			return err
		}
	}
	return nil
}

func (s *scrubber) dumpOverflow(srv int, mirror bool) (*wire.OverflowDumpResp, error) {
	resp, err := s.call(srv, &wire.OverflowDump{File: s.ref, Mirror: mirror})
	if err != nil {
		return nil, err
	}
	dump := resp.(*wire.OverflowDumpResp)
	s.throttle(int64(len(dump.Data)))
	return dump, nil
}

func dumpsEqual(a, b *wire.OverflowDumpResp) bool {
	if len(a.Extents) != len(b.Extents) {
		return false
	}
	for i := range a.Extents {
		if a.Extents[i] != b.Extents[i] {
			return false
		}
	}
	return bytes.Equal(a.Data, b.Data)
}

// aggOf computes the same aggregate checksum the server's ChecksumRange
// handler produces for an overflow store, from a dump of its live extents.
func aggOf(d *wire.OverflowDumpResp) uint32 {
	var sum uint32
	hdr := make([]byte, 16)
	cur := int64(0)
	for _, e := range d.Extents {
		for i := 0; i < 8; i++ {
			hdr[i] = byte(uint64(e.Off) >> (8 * i))
			hdr[8+i] = byte(uint64(e.Len) >> (8 * i))
		}
		sum = crc32.Update(sum, castagnoli, hdr)
		sum = crc32.Update(sum, castagnoli, d.Data[cur:cur+e.Len])
		cur += e.Len
	}
	return sum
}

// checkOverflowPair re-examines one primary/mirror overflow pair whose
// aggregate checksums disagreed. Overflow writes have no lock, so each side
// is dumped twice and a still-changing side defers the pair to the next
// pass. Note that foreground reads are served from the *primary* overflow,
// so restoring a corrupt primary from its mirror is a data repair and is
// gated behind RepairData like every other one.
func (s *scrubber) checkOverflowPair(i int) error {
	next := (i + 1) % s.g.Servers
	p1, err := s.dumpOverflow(i, false)
	if err != nil {
		return err
	}
	m1, err := s.dumpOverflow(next, true)
	if err != nil {
		return err
	}
	p, err := s.dumpOverflow(i, false)
	if err != nil {
		return err
	}
	m, err := s.dumpOverflow(next, true)
	if err != nil {
		return err
	}
	if !dumpsEqual(p1, p) || !dumpsEqual(m1, m) {
		s.opts.Journal.dropOverflow(i)
		return nil // foreground overflow write in flight; revisit next pass
	}
	pAgg, mAgg := aggOf(p), aggOf(m)
	if pAgg == mAgg {
		s.opts.Journal.setOverflow(i, pAgg)
		return nil
	}
	s.rep.Overflow.Mismatched++
	defer s.opts.Journal.dropOverflow(i)
	known, ok := s.opts.Journal.overflowOf(i)
	switch {
	case ok && known == pAgg:
		return s.rewriteOverflow(next, true, p)
	case ok && known == mAgg:
		if !s.opts.RepairData {
			s.rep.Overflow.Unrepairable++
			s.problemf("server %d: primary overflow fails its last-known-good checksum; mirror matches (RepairData off)", i)
			return nil
		}
		return s.rewriteOverflow(i, false, m)
	default:
		s.problemf("server %d: overflow mirror differs from primary with no usable evidence; rewriting mirror from primary", i)
		return s.rewriteOverflow(next, true, p)
	}
}

// rewriteOverflow replaces one overflow side (table and contents) with a
// dump of the other side.
func (s *scrubber) rewriteOverflow(srv int, mirror bool, from *wire.OverflowDumpResp) error {
	if _, err := s.call(srv, &wire.InvalidateOverflow{
		File: s.ref, Spans: []wire.Span{{Off: 0, Len: allRange}}, Mirror: mirror,
	}); err != nil {
		return err
	}
	if len(from.Extents) > 0 {
		if _, err := s.call(srv, &wire.WriteOverflow{
			File: s.ref, Extents: from.Extents, Data: from.Data, Mirror: mirror,
		}); err != nil {
			return err
		}
	}
	s.throttle(int64(len(from.Data)))
	s.rep.Overflow.Repaired++
	return nil
}
