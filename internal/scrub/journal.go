package scrub

import "sync"

// Journal carries checksum evidence between scrub passes of one file. When a
// pass finds a copy clean — primary and mirror agree, or parity matches the
// XOR of its data units — the journal remembers the checksums the agreement
// was reached at. A later pass that finds the copies diverged can then vote:
// the copy still matching the last-known-good checksum wins, and the other
// is repaired. Without journal evidence the scrubber falls back to the
// conservative default of regenerating redundancy from data.
//
// The journal is deliberately forgetful: any mismatch event drops the
// affected entries, because a mismatch under concurrent foreground writes
// usually means the journal is simply stale, and stale evidence must never
// outvote fresh data. Entries only return once a subsequent pass sees the
// copies agree again.
//
// A nil *Journal is valid and disables evidence-based classification.
type Journal struct {
	mu       sync.Mutex
	units    map[int64]uint32 // data unit -> checksum at last agreement
	parity   map[int64]uint32 // stripe -> parity checksum at last agreement
	overflow map[int]uint32   // server -> overflow aggregate at last agreement
}

// NewJournal returns an empty journal, typically kept across scrub passes of
// the same file.
func NewJournal() *Journal {
	return &Journal{
		units:    make(map[int64]uint32),
		parity:   make(map[int64]uint32),
		overflow: make(map[int]uint32),
	}
}

func (j *Journal) setUnit(b int64, sum uint32) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.units[b] = sum
	j.mu.Unlock()
}

func (j *Journal) unit(b int64) (uint32, bool) {
	if j == nil {
		return 0, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	sum, ok := j.units[b]
	return sum, ok
}

func (j *Journal) dropUnit(b int64) {
	if j == nil {
		return
	}
	j.mu.Lock()
	delete(j.units, b)
	j.mu.Unlock()
}

func (j *Journal) setParity(stripe int64, sum uint32) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.parity[stripe] = sum
	j.mu.Unlock()
}

func (j *Journal) parityOf(stripe int64) (uint32, bool) {
	if j == nil {
		return 0, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	sum, ok := j.parity[stripe]
	return sum, ok
}

// dropStripe forgets a stripe's parity entry and the entries of its data
// units [first, first+count).
func (j *Journal) dropStripe(stripe, first int64, count int) {
	if j == nil {
		return
	}
	j.mu.Lock()
	delete(j.parity, stripe)
	for i := int64(0); i < int64(count); i++ {
		delete(j.units, first+i)
	}
	j.mu.Unlock()
}

func (j *Journal) setOverflow(srv int, sum uint32) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.overflow[srv] = sum
	j.mu.Unlock()
}

func (j *Journal) overflowOf(srv int) (uint32, bool) {
	if j == nil {
		return 0, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	sum, ok := j.overflow[srv]
	return sum, ok
}

func (j *Journal) dropOverflow(srv int) {
	if j == nil {
		return
	}
	j.mu.Lock()
	delete(j.overflow, srv)
	j.mu.Unlock()
}
