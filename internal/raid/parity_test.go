package raid

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func randBlock(r *rand.Rand, n int) []byte {
	b := make([]byte, n)
	r.Read(b)
	return b
}

func TestXORIntoMatchesBytewise(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 7, 8, 9, 15, 16, 63, 64, 65, 1000, 4096} {
		a := randBlock(r, n)
		b := randBlock(r, n)
		w := append([]byte(nil), a...)
		bw := append([]byte(nil), a...)
		XORInto(w, b)
		XORIntoBytewise(bw, b)
		if !bytes.Equal(w, bw) {
			t.Fatalf("n=%d: word and bytewise XOR disagree", n)
		}
	}
}

func TestXORIntoLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	XORInto(make([]byte, 4), make([]byte, 5))
}

func TestParityReconstruct(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for _, width := range []int{1, 2, 4, 6} {
		blocks := make([][]byte, width)
		for i := range blocks {
			blocks[i] = randBlock(r, 512)
		}
		p := make([]byte, 512)
		Parity(p, blocks...)
		// Any single lost block is recoverable from parity + survivors.
		for lost := 0; lost < width; lost++ {
			var survivors [][]byte
			for i, b := range blocks {
				if i != lost {
					survivors = append(survivors, b)
				}
			}
			got := make([]byte, 512)
			Reconstruct(got, p, survivors...)
			if !bytes.Equal(got, blocks[lost]) {
				t.Fatalf("width=%d lost=%d: reconstruction mismatch", width, lost)
			}
		}
	}
}

func TestUpdateParity(t *testing.T) {
	// Read-modify-write parity must equal parity recomputed from scratch.
	r := rand.New(rand.NewSource(5))
	blocks := [][]byte{randBlock(r, 256), randBlock(r, 256), randBlock(r, 256)}
	p := make([]byte, 256)
	Parity(p, blocks...)

	newB1 := randBlock(r, 256)
	UpdateParity(p, blocks[1], newB1)
	blocks[1] = newB1

	want := make([]byte, 256)
	Parity(want, blocks...)
	if !bytes.Equal(p, want) {
		t.Fatal("incremental parity update diverged from recomputed parity")
	}
}

func TestUpdateParityPartialRegion(t *testing.T) {
	// Updating a sub-range of one block through its slice updates exactly
	// the corresponding parity bytes.
	r := rand.New(rand.NewSource(6))
	a := randBlock(r, 128)
	b := randBlock(r, 128)
	p := make([]byte, 128)
	Parity(p, a, b)

	oldMid := append([]byte(nil), b[32:96]...)
	newMid := randBlock(r, 64)
	copy(b[32:96], newMid)
	UpdateParity(p[32:96], oldMid, newMid)

	want := make([]byte, 128)
	Parity(want, a, b)
	if !bytes.Equal(p, want) {
		t.Fatal("partial-region parity update diverged")
	}
}

func TestParityProperties(t *testing.T) {
	// XOR of all blocks and their parity is zero (the defining invariant).
	f := func(seed int64, widthSeed uint8, sizeSeed uint16) bool {
		r := rand.New(rand.NewSource(seed))
		width := int(widthSeed%6) + 1
		size := int(sizeSeed%1024) + 1
		blocks := make([][]byte, width)
		for i := range blocks {
			blocks[i] = randBlock(r, size)
		}
		p := make([]byte, size)
		Parity(p, blocks...)
		acc := make([]byte, size)
		XORInto(acc, p)
		for _, b := range blocks {
			XORInto(acc, b)
		}
		for _, v := range acc {
			if v != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestParityZeroesDst(t *testing.T) {
	p := []byte{0xff, 0xff, 0xff, 0xff}
	Parity(p) // no blocks
	for _, v := range p {
		if v != 0 {
			t.Fatal("Parity with no blocks must zero dst")
		}
	}
}

func BenchmarkParityXORWordwise(b *testing.B) {
	dst := make([]byte, 64<<10)
	src := make([]byte, 64<<10)
	b.SetBytes(int64(len(dst)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		XORInto(dst, src)
	}
}

func BenchmarkParityXORBytewise(b *testing.B) {
	dst := make([]byte, 64<<10)
	src := make([]byte, 64<<10)
	b.SetBytes(int64(len(dst)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		XORIntoBytewise(dst, src)
	}
}
