package raid

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGeometryValidate(t *testing.T) {
	cases := []struct {
		g        Geometry
		ok       bool
		parityOK bool
	}{
		{Geometry{Servers: 1, StripeUnit: 4096}, true, false},
		{Geometry{Servers: 2, StripeUnit: 4096}, true, false},
		{Geometry{Servers: 3, StripeUnit: 4096}, true, true},
		{Geometry{Servers: 7, StripeUnit: 65536}, true, true},
		{Geometry{Servers: 0, StripeUnit: 4096}, false, false},
		{Geometry{Servers: 3, StripeUnit: 0}, false, false},
		{Geometry{Servers: 3, StripeUnit: -1}, false, false},
	}
	for _, c := range cases {
		if got := c.g.Validate() == nil; got != c.ok {
			t.Errorf("%+v Validate ok=%v want %v", c.g, got, c.ok)
		}
		if got := c.g.ValidateParity() == nil; got != c.parityOK {
			t.Errorf("%+v ValidateParity ok=%v want %v", c.g, got, c.parityOK)
		}
	}
}

func TestFigure2Layout(t *testing.T) {
	// Figure 2 of the paper: 3 servers; P[0-1] (parity of D0 and D1) is the
	// first block of the redundancy file on server 2.
	g := Geometry{Servers: 3, StripeUnit: 1024}
	if got := g.ServerOf(0); got != 0 {
		t.Errorf("D0 on server %d, want 0", got)
	}
	if got := g.ServerOf(1); got != 1 {
		t.Errorf("D1 on server %d, want 1", got)
	}
	if got := g.ParityServerOf(0); got != 2 {
		t.Errorf("P[0-1] on server %d, want 2", got)
	}
	if got := g.ParityLocalOffset(0); got != 0 {
		t.Errorf("P[0-1] at offset %d, want 0", got)
	}
	first, count := g.DataUnitsOf(0)
	if first != 0 || count != 2 {
		t.Errorf("stripe 0 data units (%d,%d), want (0,2)", first, count)
	}
	// Stripe 1 covers D2 (server 2) and D3 (server 0); parity must be on
	// server 1, the only server holding neither.
	if got := g.ParityServerOf(1); got != 1 {
		t.Errorf("stripe 1 parity on server %d, want 1", got)
	}
}

func TestParityServerHoldsNoData(t *testing.T) {
	for _, n := range []int{3, 4, 5, 6, 7, 8, 13} {
		g := Geometry{Servers: n, StripeUnit: 4096}
		for s := int64(0); s < int64(4*n); s++ {
			p := g.ParityServerOf(s)
			first, count := g.DataUnitsOf(s)
			for j := 0; j < count; j++ {
				if g.ServerOf(first+int64(j)) == p {
					t.Fatalf("n=%d stripe %d: parity server %d also holds data unit %d",
						n, s, p, first+int64(j))
				}
			}
		}
	}
}

func TestParityLocalOffsetsDistinct(t *testing.T) {
	// On any one server, the parity units of all stripes it owns must land
	// on distinct, densely packed local offsets.
	g := Geometry{Servers: 5, StripeUnit: 100}
	seen := map[int]map[int64]int64{} // server -> local offset -> stripe
	for s := int64(0); s < 100; s++ {
		p := g.ParityServerOf(s)
		off := g.ParityLocalOffset(s)
		if seen[p] == nil {
			seen[p] = map[int64]int64{}
		}
		if prev, dup := seen[p][off]; dup {
			t.Fatalf("server %d offset %d assigned to stripes %d and %d", p, off, prev, s)
		}
		seen[p][off] = s
	}
}

func TestToLocalRoundTrip(t *testing.T) {
	g := Geometry{Servers: 4, StripeUnit: 64}
	var covered int64
	for srv := 0; srv < g.Servers; srv++ {
		g.ToLocal(srv, 13, 1000, func(logical, local, n int64) {
			if n <= 0 {
				t.Fatalf("non-positive piece length %d", n)
			}
			if got := g.LocalToLogical(srv, local); got != logical {
				t.Fatalf("srv %d: local %d -> logical %d, want %d", srv, local, got, logical)
			}
			covered += n
		})
	}
	if covered != 1000 {
		t.Fatalf("pieces cover %d bytes, want 1000", covered)
	}
}

func TestToLocalProperty(t *testing.T) {
	// Across all servers, ToLocal partitions the range exactly, each piece
	// maps back via LocalToLogical, and pieces never cross a unit boundary.
	f := func(nSeed uint8, suSeed uint16, offSeed, lenSeed uint32) bool {
		n := int(nSeed%8) + 1
		su := int64(suSeed%512) + 1
		g := Geometry{Servers: n, StripeUnit: su}
		off := int64(offSeed % 100000)
		length := int64(lenSeed % 50000)
		type piece struct{ logical, n int64 }
		var pieces []piece
		for srv := 0; srv < n; srv++ {
			prevEnd := int64(-1)
			g.ToLocal(srv, off, length, func(logical, local, pn int64) {
				if g.LocalToLogical(srv, local) != logical {
					t.Fatalf("round trip failed")
				}
				if g.ServerOf(g.UnitOf(logical)) != srv {
					t.Fatalf("piece on wrong server")
				}
				if g.UnitOf(logical) != g.UnitOf(logical+pn-1) {
					t.Fatalf("piece crosses unit boundary")
				}
				if logical < prevEnd {
					t.Fatalf("pieces out of order on server %d", srv)
				}
				prevEnd = logical + pn
				pieces = append(pieces, piece{logical, pn})
			})
		}
		var total int64
		seen := map[int64]bool{}
		for _, p := range pieces {
			total += p.n
			for b := p.logical; b < p.logical+p.n; b++ {
				if seen[b] {
					return false // overlap
				}
				seen[b] = true
			}
		}
		return total == length
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestDecompose(t *testing.T) {
	g := Geometry{Servers: 5, StripeUnit: 25} // stripe size 100
	cases := []struct {
		off, len         int64
		head, body, tail int64 // lengths
	}{
		{0, 0, 0, 0, 0},
		{0, 100, 0, 100, 0},
		{0, 300, 0, 300, 0},
		{50, 50, 50, 0, 0},     // head fills to stripe end, no full stripe
		{50, 30, 30, 0, 0},     // entirely inside one stripe
		{50, 100, 50, 0, 50},   // straddles boundary, no full stripe
		{50, 150, 50, 100, 0},  // head + one full stripe
		{0, 150, 0, 100, 50},   // full stripe + tail
		{50, 250, 50, 200, 0},  // head + 2 full stripes
		{50, 275, 50, 200, 25}, // head + body + tail
		{100, 100, 0, 100, 0},  // aligned single stripe
		{199, 2, 1, 0, 1},      // one byte each side of a boundary
	}
	for _, c := range cases {
		head, body, tail := g.Decompose(c.off, c.len)
		if head.Len != c.head || body.Len != c.body || tail.Len != c.tail {
			t.Errorf("Decompose(%d,%d) = %d/%d/%d, want %d/%d/%d",
				c.off, c.len, head.Len, body.Len, tail.Len, c.head, c.body, c.tail)
		}
		if c.len > 0 {
			if head.Off != c.off {
				t.Errorf("Decompose(%d,%d): head.Off=%d", c.off, c.len, head.Off)
			}
			if head.End() != body.Off && head.Len > 0 && body.Len > 0 {
				t.Errorf("Decompose(%d,%d): head/body not contiguous", c.off, c.len)
			}
		}
	}
}

func TestDecomposeProperty(t *testing.T) {
	f := func(nSeed uint8, suSeed uint16, offSeed, lenSeed uint32) bool {
		n := int(nSeed%7) + 3
		su := int64(suSeed%200) + 1
		g := Geometry{Servers: n, StripeUnit: su}
		off := int64(offSeed % 1000000)
		length := int64(lenSeed % 500000)
		head, body, tail := g.Decompose(off, length)
		// Contiguity and coverage.
		if head.Len+body.Len+tail.Len != length {
			return false
		}
		if length > 0 {
			if head.Off != off {
				return false
			}
			if head.End() != body.Off || body.End() != tail.Off {
				return false
			}
		}
		// Body is stripe-aligned and an integral number of stripes.
		ss := g.StripeSize()
		if body.Len > 0 && (body.Off%ss != 0 || body.Len%ss != 0) {
			return false
		}
		// Head and tail each lie within a single stripe and are partial.
		for _, s := range []Span{head, tail} {
			if s.Len == 0 {
				continue
			}
			if s.Len >= ss {
				return false
			}
			if g.StripeOf(s.Off) != g.StripeOf(s.End()-1) {
				return false
			}
		}
		// Head must not be a full aligned stripe (that belongs to body).
		if head.Len > 0 && head.Off%ss == 0 && head.Len == ss {
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 400, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestUnitsAndStripesIn(t *testing.T) {
	g := Geometry{Servers: 4, StripeUnit: 10} // stripe size 30
	cases := []struct {
		size, units, stripes int64
	}{
		{-5, 0, 0},
		{0, 0, 0},
		{1, 1, 1},
		{10, 1, 1},
		{11, 2, 1},
		{30, 3, 1},
		{31, 4, 2},
		{120, 12, 4},
	}
	for _, c := range cases {
		if got := g.UnitsIn(c.size); got != c.units {
			t.Errorf("UnitsIn(%d) = %d, want %d", c.size, got, c.units)
		}
		if got := g.StripesIn(c.size); got != c.stripes {
			t.Errorf("StripesIn(%d) = %d, want %d", c.size, got, c.stripes)
		}
	}
}

func TestUnitsOwnedByMatchesBruteForce(t *testing.T) {
	for _, n := range []int{1, 3, 5} {
		g := Geometry{Servers: n, StripeUnit: 7}
		for _, size := range []int64{0, 1, 7, 50, 7 * int64(n) * 4} {
			seen := map[int64]int{}
			for srv := 0; srv < n; srv++ {
				var prev int64 = -1
				err := g.UnitsOwnedBy(srv, size, func(b int64) error {
					if g.ServerOf(b) != srv {
						t.Fatalf("n=%d size=%d: unit %d visited for server %d", n, size, b, srv)
					}
					if b <= prev {
						t.Fatalf("units out of order")
					}
					prev = b
					seen[b]++
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
			}
			for b := int64(0); b < g.UnitsIn(size); b++ {
				if seen[b] != 1 {
					t.Fatalf("n=%d size=%d: unit %d visited %d times", n, size, b, seen[b])
				}
			}
			if int64(len(seen)) != g.UnitsIn(size) {
				t.Fatalf("n=%d size=%d: visited %d units, want %d", n, size, len(seen), g.UnitsIn(size))
			}
		}
	}
}

func TestParityStripesOwnedByMatchesBruteForce(t *testing.T) {
	for _, n := range []int{3, 4, 7} {
		g := Geometry{Servers: n, StripeUnit: 8}
		for _, size := range []int64{0, 1, 100, g.StripeSize() * int64(3*n)} {
			seen := map[int64]int{}
			for srv := 0; srv < n; srv++ {
				err := g.ParityStripesOwnedBy(srv, size, func(s int64) error {
					if g.ParityServerOf(s) != srv {
						t.Fatalf("n=%d size=%d: stripe %d visited for server %d, parity on %d",
							n, size, s, srv, g.ParityServerOf(s))
					}
					seen[s]++
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
			}
			for s := int64(0); s < g.StripesIn(size); s++ {
				if seen[s] != 1 {
					t.Fatalf("n=%d size=%d: stripe %d visited %d times", n, size, s, seen[s])
				}
			}
			if int64(len(seen)) != g.StripesIn(size) {
				t.Fatalf("n=%d size=%d: visited %d stripes, want %d", n, size, len(seen), g.StripesIn(size))
			}
		}
	}
}

func TestMirrorServer(t *testing.T) {
	g := Geometry{Servers: 4, StripeUnit: 10}
	for b := int64(0); b < 16; b++ {
		m := g.MirrorServerOf(b)
		if m == g.ServerOf(b) {
			t.Fatalf("unit %d mirrored onto its own server %d", b, m)
		}
		if m != (int(b)+1)%4 {
			t.Fatalf("unit %d mirror on %d, want %d", b, m, (int(b)+1)%4)
		}
	}
}

// TestMultiParityPlacement checks the Reed-Solomon generalization of the
// parity layout: per stripe, data and parity units together occupy every
// server exactly once; each server holds exactly PU parity units per N
// consecutive stripes; local parity offsets are dense and collision-free
// per server; and the m=1 case reduces to the classic RAID5 placement.
func TestMultiParityPlacement(t *testing.T) {
	for _, n := range []int{4, 5, 6, 8, 9} {
		for _, m := range []int{1, 2, 3} {
			if n < m+2 {
				continue
			}
			g := Geometry{Servers: n, StripeUnit: 10, ParityUnits: m}
			k := g.DataWidth()
			if k != n-m {
				t.Fatalf("n=%d m=%d: DataWidth=%d", n, m, k)
			}
			for s := int64(0); s < int64(4*n); s++ {
				used := make(map[int]bool)
				first, count := g.DataUnitsOf(s)
				for i := 0; i < count; i++ {
					used[g.ServerOf(first+int64(i))] = true
				}
				for j := 0; j < m; j++ {
					ps := g.ParityServerOfUnit(s, j)
					if used[ps] {
						t.Fatalf("n=%d m=%d stripe %d: server %d holds data and parity", n, m, s, ps)
					}
					used[ps] = true
					if jj, ok := g.ParityUnitOn(ps, s); !ok || jj != j {
						t.Fatalf("n=%d m=%d stripe %d: ParityUnitOn(%d) = %d,%v want %d", n, m, s, ps, jj, ok, j)
					}
				}
				if len(used) != n {
					t.Fatalf("n=%d m=%d stripe %d: %d servers used", n, m, s, len(used))
				}
			}
			// Per-server offsets: collision-free, dense in [0, owned*SU).
			for srv := 0; srv < n; srv++ {
				offs := make(map[int64]bool)
				owned := 0
				for s := int64(0); s < int64(3*n); s++ {
					if _, ok := g.ParityUnitOn(srv, s); !ok {
						continue
					}
					owned++
					off := g.ParityLocalOffsetOn(srv, s)
					if offs[off] {
						t.Fatalf("n=%d m=%d srv %d: duplicate parity offset %d", n, m, srv, off)
					}
					offs[off] = true
					if off < 0 || off >= int64(3*n*m)*g.StripeUnit {
						t.Fatalf("n=%d m=%d srv %d: offset %d out of dense range", n, m, srv, off)
					}
				}
				if owned != 3*m {
					t.Fatalf("n=%d m=%d srv %d: owns %d parity units in 3 periods, want %d", n, m, srv, owned, 3*m)
				}
			}
			if m == 1 {
				classic := Geometry{Servers: n, StripeUnit: 10}
				for s := int64(0); s < int64(4*n); s++ {
					if g.ParityServerOfUnit(s, 0) != classic.ParityServerOf(s) {
						t.Fatalf("n=%d stripe %d: m=1 placement differs from classic", n, s)
					}
					if g.ParityLocalOffset(s) != classic.ParityLocalOffset(s) {
						t.Fatalf("n=%d stripe %d: m=1 offset differs from classic", n, s)
					}
				}
			}
		}
	}
}
