package raid

import (
	"encoding/binary"
	"fmt"
)

// XORInto xors src into dst element-wise: dst[i] ^= src[i]. The two slices
// must have the same length. The hot loop works one machine word at a time;
// the Swift/RAID paper (and Section 3 of the CSAR paper) report that
// word-at-a-time parity is a significant win over byte-at-a-time, which our
// parity microbenchmark reproduces (see XORIntoBytewise).
func XORInto(dst, src []byte) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("raid: XORInto length mismatch %d != %d", len(dst), len(src)))
	}
	n := len(dst) &^ 7
	for i := 0; i < n; i += 8 {
		d := binary.LittleEndian.Uint64(dst[i:])
		s := binary.LittleEndian.Uint64(src[i:])
		binary.LittleEndian.PutUint64(dst[i:], d^s)
	}
	for i := n; i < len(dst); i++ {
		dst[i] ^= src[i]
	}
}

// XORIntoBytewise is the byte-at-a-time variant of XORInto. It exists only
// as the ablation baseline for the parity-computation microbenchmark.
func XORIntoBytewise(dst, src []byte) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("raid: XORIntoBytewise length mismatch %d != %d", len(dst), len(src)))
	}
	for i := range dst {
		dst[i] ^= src[i]
	}
}

// Parity computes the parity of the given equal-length blocks into dst.
// dst is zeroed first; blocks may be empty, in which case dst is left zero.
func Parity(dst []byte, blocks ...[]byte) {
	for i := range dst {
		dst[i] = 0
	}
	for _, b := range blocks {
		XORInto(dst, b)
	}
}

// UpdateParity applies a read-modify-write parity delta: given the parity of
// a stripe, the old contents of a region and the new contents replacing it,
// it updates parity in place (parity ^= old ^ new). All three slices must
// have the same length.
func UpdateParity(parity, oldData, newData []byte) {
	XORInto(parity, oldData)
	XORInto(parity, newData)
}

// Reconstruct recovers one lost block from the surviving blocks of a stripe
// and its parity: lost = parity XOR (XOR of survivors). The result is
// written into dst, which must have the same length as every input.
func Reconstruct(dst, parity []byte, survivors ...[]byte) {
	copy(dst, parity)
	for _, b := range survivors {
		XORInto(dst, b)
	}
}
