// Package raid implements the stripe geometry and parity arithmetic shared
// by every CSAR redundancy scheme.
//
// The data layout is identical to the PVFS layout for all schemes: a file is
// split into stripe units of StripeUnit bytes; unit b lives on I/O server
// b mod N at local offset (b/N)*StripeUnit in that server's data file.
//
// For parity schemes, a stripe of k = N-m consecutive data units is
// protected by m parity units (m=1 for RAID5 and Hybrid; m>=1 for
// Reed-Solomon). Stripe s covers data units [s*k, (s+1)*k), which land on
// servers (s*k+i) mod N; its parity units j=0..m-1 rotate onto the m
// remaining servers ((s+1)*k+j) mod N, so every server carries an equal
// share of parity. For m=1 this is exactly the classic layout: parity of
// stripe s on server (N-1-s) mod N at local offset (s/N)*StripeUnit.
//
// For RAID1, the mirror of data unit b is stored on server (b+1) mod N in
// that server's redundancy file, at the same local offset as the primary.
package raid

import "fmt"

// Geometry describes the striping parameters of one file.
type Geometry struct {
	// Servers is the number of I/O servers the file is striped over.
	Servers int
	// StripeUnit is the size in bytes of one stripe unit (one block).
	StripeUnit int64
	// ParityUnits is the number of parity units per stripe for parity
	// schemes. Zero means one (the XOR-parity schemes predating
	// Reed-Solomon leave it unset).
	ParityUnits int
}

// PU returns the effective parity-unit count (ParityUnits, defaulted to 1).
func (g Geometry) PU() int {
	if g.ParityUnits < 1 {
		return 1
	}
	return g.ParityUnits
}

// Validate reports whether the geometry is usable.
func (g Geometry) Validate() error {
	if g.Servers < 1 {
		return fmt.Errorf("raid: geometry needs at least 1 server, got %d", g.Servers)
	}
	if g.StripeUnit <= 0 {
		return fmt.Errorf("raid: stripe unit must be positive, got %d", g.StripeUnit)
	}
	return nil
}

// ValidateParity reports whether the geometry supports parity
// (RAID5/Hybrid/Reed-Solomon), which needs at least two data units per
// stripe plus its parity units, so every stripe's parity lands on servers
// holding none of that stripe's data.
func (g Geometry) ValidateParity() error {
	if err := g.Validate(); err != nil {
		return err
	}
	if g.Servers < g.PU()+2 {
		return fmt.Errorf("raid: %d-parity schemes need at least %d servers, got %d",
			g.PU(), g.PU()+2, g.Servers)
	}
	return nil
}

// DataWidth returns the number of data units in one parity stripe
// (N minus the parity units).
func (g Geometry) DataWidth() int { return g.Servers - g.PU() }

// StripeSize returns the number of data bytes covered by one parity stripe.
func (g Geometry) StripeSize() int64 { return int64(g.DataWidth()) * g.StripeUnit }

// UnitOf returns the index of the stripe unit containing file offset off.
func (g Geometry) UnitOf(off int64) int64 { return off / g.StripeUnit }

// UnitStart returns the file offset at which stripe unit b begins.
func (g Geometry) UnitStart(b int64) int64 { return b * g.StripeUnit }

// ServerOf returns the I/O server holding data unit b.
func (g Geometry) ServerOf(b int64) int { return int(b % int64(g.Servers)) }

// LocalOffset returns the offset of data unit b within its server's data file.
func (g Geometry) LocalOffset(b int64) int64 { return (b / int64(g.Servers)) * g.StripeUnit }

// MirrorServerOf returns the server holding the RAID1 mirror of data unit b.
func (g Geometry) MirrorServerOf(b int64) int { return int((b + 1) % int64(g.Servers)) }

// ToLocal translates a logical file range into the local data-file range on
// server srv, calling fn once per contiguous local piece with the logical
// start, local start and length of the piece. Only pieces stored on srv are
// visited, in increasing offset order.
func (g Geometry) ToLocal(srv int, off, length int64, fn func(logical, local, n int64)) {
	end := off + length
	for cur := off; cur < end; {
		b := g.UnitOf(cur)
		unitEnd := g.UnitStart(b + 1)
		pieceEnd := min(unitEnd, end)
		if g.ServerOf(b) == srv {
			local := g.LocalOffset(b) + (cur - g.UnitStart(b))
			fn(cur, local, pieceEnd-cur)
		}
		cur = pieceEnd
	}
}

// ToMirrorLocal translates a logical file range into the RAID1 mirror-file
// range on server srv: it visits every contiguous piece whose *mirror* lives
// on srv, with the piece's logical start, its offset in srv's mirror file
// (identical to the primary's data-file offset), and its length.
func (g Geometry) ToMirrorLocal(srv int, off, length int64, fn func(logical, local, n int64)) {
	end := off + length
	for cur := off; cur < end; {
		b := g.UnitOf(cur)
		unitEnd := g.UnitStart(b + 1)
		pieceEnd := min(unitEnd, end)
		if g.MirrorServerOf(b) == srv {
			local := g.LocalOffset(b) + (cur - g.UnitStart(b))
			fn(cur, local, pieceEnd-cur)
		}
		cur = pieceEnd
	}
}

// LocalToLogical translates a local data-file offset on server srv back to
// the logical file offset it stores.
func (g Geometry) LocalToLogical(srv int, local int64) int64 {
	unit := local / g.StripeUnit
	within := local % g.StripeUnit
	b := unit*int64(g.Servers) + int64(srv)
	return g.UnitStart(b) + within
}

// StripeOf returns the parity stripe index containing file offset off.
func (g Geometry) StripeOf(off int64) int64 { return off / g.StripeSize() }

// StripeStart returns the file offset at which parity stripe s begins.
func (g Geometry) StripeStart(s int64) int64 { return s * g.StripeSize() }

// ParityServerOf returns the server storing parity unit 0 of stripe s.
// With one parity unit (the XOR schemes) it is the unique server holding
// none of stripe s's data units: (N-1-s) mod N.
func (g Geometry) ParityServerOf(s int64) int { return g.ParityServerOfUnit(s, 0) }

// ParityServerOfUnit returns the server storing parity unit j of stripe s.
// Stripe s's data units occupy servers (s*k+i) mod N for i in [0,k); its
// parity units continue the rotation onto the remaining m servers, so unit
// j lands on ((s+1)*k+j) mod N. For m=1, j=0 this reduces to the classic
// (N-1-s) mod N placement, keeping the on-disk layout of existing files.
func (g Geometry) ParityServerOfUnit(s int64, j int) int {
	n := int64(g.Servers)
	k := int64(g.DataWidth())
	return int((((s+1)*k+int64(j))%n + n) % n)
}

// ParityUnitOn reports which parity unit of stripe s server srv stores,
// if any. A server holds at most one parity unit of a given stripe (the
// m parity units of one stripe occupy m distinct servers).
func (g Geometry) ParityUnitOn(srv int, s int64) (j int, ok bool) {
	n := int64(g.Servers)
	k := int64(g.DataWidth())
	j = int(((int64(srv)-(s+1)*k)%n + n) % n)
	return j, j < g.PU()
}

// ParityLocalOffset returns the offset of stripe s's parity unit within the
// redundancy file of its (single) parity server. Only meaningful for
// one-parity-unit geometries; multi-parity callers name the server with
// ParityLocalOffsetOn.
func (g Geometry) ParityLocalOffset(s int64) int64 {
	return g.ParityLocalOffsetOn(g.ParityServerOf(s), s)
}

// ParityLocalOffsetOn returns the offset of stripe s's parity unit within
// server srv's redundancy file (srv must hold one of s's parity units).
// Each server owns exactly m parity units out of every N consecutive
// stripes; they are packed densely in stripe order, so the offset is the
// count of parity units srv owns for stripes before s, times the stripe
// unit. For m=1 this is the classic (s/N)*StripeUnit.
func (g Geometry) ParityLocalOffsetOn(srv int, s int64) int64 {
	n := int64(g.Servers)
	period := s / n
	rank := 0
	res := s % n
	for r := int64(0); r < res; r++ {
		if _, ok := g.ParityUnitOn(srv, r); ok {
			rank++
		}
	}
	return (period*int64(g.PU()) + int64(rank)) * g.StripeUnit
}

// DataUnitsOf returns the first data unit of stripe s and the number of data
// units in the stripe.
func (g Geometry) DataUnitsOf(s int64) (first int64, count int) {
	return s * int64(g.DataWidth()), g.DataWidth()
}

// UnitsIn returns the number of stripe units needed to cover a file of the
// given size (zero for empty files).
func (g Geometry) UnitsIn(size int64) int64 {
	if size <= 0 {
		return 0
	}
	return g.UnitOf(size-1) + 1
}

// StripesIn returns the number of parity stripes needed to cover a file of
// the given size (zero for empty files).
func (g Geometry) StripesIn(size int64) int64 {
	if size <= 0 {
		return 0
	}
	return g.StripeOf(size-1) + 1
}

// UnitsOwnedBy visits, in increasing order, every stripe unit stored on
// server srv that intersects [0, size), stopping at the first error.
func (g Geometry) UnitsOwnedBy(srv int, size int64, fn func(unit int64) error) error {
	units := g.UnitsIn(size)
	for b := int64(srv); b < units; b += int64(g.Servers) {
		if err := fn(b); err != nil {
			return err
		}
	}
	return nil
}

// ParityStripesOwnedBy visits, in increasing order, every parity stripe
// whose parity unit is stored on server srv and that intersects [0, size),
// stopping at the first error.
func (g Geometry) ParityStripesOwnedBy(srv int, size int64, fn func(stripe int64) error) error {
	n := int64(g.Servers)
	stripes := g.StripesIn(size)
	// Ownership depends only on s mod N: collect srv's residues (one for
	// the XOR schemes, PU of them for multi-parity) and walk each
	// arithmetic progression, merged in increasing stripe order.
	var residues []int64
	for r := int64(0); r < n; r++ {
		if _, ok := g.ParityUnitOn(srv, r); ok {
			residues = append(residues, r)
		}
	}
	for base := int64(0); base < stripes; base += n {
		for _, r := range residues {
			s := base + r
			if s >= stripes {
				break
			}
			if err := fn(s); err != nil {
				return err
			}
		}
	}
	return nil
}

// Span describes a byte range [Off, Off+Len) of the logical file.
type Span struct {
	Off int64
	Len int64
}

// End returns the exclusive end offset of the span.
func (s Span) End() int64 { return s.Off + s.Len }

// Empty reports whether the span covers no bytes.
func (s Span) Empty() bool { return s.Len <= 0 }

// Decompose splits the write [off, off+length) into the three portions of
// the Hybrid rule: a leading partial-stripe span, a body covering an
// integral number of full stripes, and a trailing partial-stripe span.
// Any of the three may be empty. head.Off == off always holds when the
// write is non-empty, and head, body, tail are contiguous.
func (g Geometry) Decompose(off, length int64) (head, body, tail Span) {
	if length <= 0 {
		return Span{Off: off}, Span{Off: off}, Span{Off: off}
	}
	ss := g.StripeSize()
	end := off + length

	bodyStart := off
	if r := off % ss; r != 0 {
		bodyStart = off - r + ss
	}
	bodyEnd := end - end%ss
	if bodyEnd <= bodyStart {
		// No full stripe inside the write. If the write lies within a single
		// stripe it is all head; otherwise it straddles one boundary and
		// splits into head + tail.
		if g.StripeOf(off) == g.StripeOf(end-1) {
			return Span{off, length}, Span{Off: end}, Span{Off: end}
		}
		return Span{off, bodyStart - off}, Span{Off: bodyStart}, Span{bodyStart, end - bodyStart}
	}
	return Span{off, bodyStart - off}, Span{bodyStart, bodyEnd - bodyStart}, Span{bodyEnd, end - bodyEnd}
}

func min(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
