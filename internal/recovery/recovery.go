// Package recovery implements the consumer of CSAR's redundancy: verifying
// that a file's redundant data is consistent, and rebuilding a failed
// server's stores from the survivors. Tolerating a single disk failure is
// the paper's stated long-term objective for CSAR; this package is the code
// path that objective pays for.
//
// Rebuild reconstructs, onto a blank replacement server:
//
//   - its data file, from the RAID1 mirror (next server) or from each
//     stripe's surviving units XOR parity;
//   - its mirror file (RAID1), by re-reading the previous server's units;
//   - its parity file (RAID5/Hybrid), by recomputing each owned stripe;
//   - its overflow region and table (Hybrid), from the overflow mirror on
//     the next server, and its overflow-mirror region from the previous
//     server's primary overflow.
//
// Note the Hybrid invariant that makes this work: the in-place data a
// stripe's parity covers is never updated by a partial-stripe write — new
// bytes go to the overflow region — so parity reconstruction always yields
// the old in-place data, and the overflow mirror then carries the newer
// bytes (Section 4: "the blocks cannot be updated in place because the old
// blocks are needed to reconstruct the data in the stripe").
package recovery

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"csar/internal/client"
	"csar/internal/raid"
	"csar/internal/wire"
)

const (
	// rebuildBatch is how many units (or parity stripes) one reconstruction
	// RPC batch carries: instead of one read and one write per unit, a batch
	// costs one multi-span read per source server and one multi-span write
	// to the replacement.
	rebuildBatch = 32
	// rebuildWorkers bounds how many batches are reconstructed concurrently.
	rebuildWorkers = 4
)

// runBatches runs fn for batch indices [0, n) on a bounded worker pool and
// joins the errors.
func runBatches(n int, fn func(i int) error) error {
	if n == 0 {
		return nil
	}
	workers := rebuildWorkers
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	return errors.Join(errs...)
}

// chunkInt64 splits vals into batches of rebuildBatch.
func chunkInt64(vals []int64) [][]int64 {
	var out [][]int64
	for len(vals) > rebuildBatch {
		out = append(out, vals[:rebuildBatch])
		vals = vals[rebuildBatch:]
	}
	if len(vals) > 0 {
		out = append(out, vals)
	}
	return out
}

// ownedUnits collects the data units server srv owns within size.
func ownedUnits(g raid.Geometry, srv int, size int64) []int64 {
	var units []int64
	g.UnitsOwnedBy(srv, size, func(b int64) error { //nolint:errcheck // fn never fails
		units = append(units, b)
		return nil
	})
	return units
}

// unitSpans returns each unit's logical span, in order.
func unitSpans(g raid.Geometry, units []int64) []wire.Span {
	spans := make([]wire.Span, len(units))
	for i, b := range units {
		spans[i] = wire.Span{Off: g.UnitStart(b), Len: g.StripeUnit}
	}
	return spans
}

// stripeSpans returns each stripe's whole logical span, in order.
func stripeSpans(g raid.Geometry, stripes []int64) []wire.Span {
	spans := make([]wire.Span, len(stripes))
	for i, s := range stripes {
		spans[i] = wire.Span{Off: g.StripeStart(s), Len: g.StripeSize()}
	}
	return spans
}

// Rebuild reconstructs server dead's stores for file f onto the replacement
// server now occupying the same slot. The caller must have already replaced
// the failed server with a blank one (and must not mark it up for normal
// use until Rebuild returns).
func Rebuild(c *client.Client, f *client.File, dead int) error {
	g := f.Geometry()
	ref := f.Ref()
	if dead < 0 || dead >= g.Servers {
		return fmt.Errorf("recovery: server %d out of range", dead)
	}
	size := f.Size()
	if size == 0 {
		return nil
	}
	defer c.ObserveSince("rebuild_pass", time.Now())

	switch ref.Scheme {
	case wire.Raid0:
		return fmt.Errorf("recovery: %w", client.ErrNoRedundancy)
	case wire.Raid1:
		if err := rebuildDataFromMirror(c, f, dead, size); err != nil {
			return err
		}
		return rebuildMirror(c, f, dead, size)
	case wire.Raid5, wire.Raid5NoLock, wire.Raid5NPC:
		if err := rebuildDataFromParity(c, f, dead, size); err != nil {
			return err
		}
		return rebuildParity(c, f, dead, size)
	case wire.Hybrid:
		if err := rebuildDataFromParity(c, f, dead, size); err != nil {
			return err
		}
		if err := rebuildParity(c, f, dead, size); err != nil {
			return err
		}
		return rebuildOverflow(c, f, dead)
	case wire.ReedSolomon:
		return rebuildRS(c, f, dead, size)
	default:
		return fmt.Errorf("recovery: unsupported scheme %v", ref.Scheme)
	}
}

// rebuildDataFromMirror restores a RAID1 data file from the mirror copies
// on the next server, a batch of units per round trip.
func rebuildDataFromMirror(c *client.Client, f *client.File, dead int, size int64) error {
	g := f.Geometry()
	ref := f.Ref()
	mirrorSrv := (dead + 1) % g.Servers
	batches := chunkInt64(ownedUnits(g, dead, size))
	return runBatches(len(batches), func(i int) error {
		spans := unitSpans(g, batches[i])
		resp, err := c.ServerCaller(mirrorSrv).Call(&wire.ReadMirror{File: ref, Spans: spans})
		if err != nil {
			return err
		}
		data := resp.(*wire.ReadResp).Data
		if int64(len(data)) != int64(len(spans))*g.StripeUnit {
			return fmt.Errorf("recovery: short mirror read (units %v)", batches[i])
		}
		_, err = c.ServerCaller(dead).Call(&wire.WriteData{File: ref, Spans: spans, Data: data, Raw: true})
		return err
	})
}

// rebuildMirror restores the mirror file on the dead server: it holds the
// mirror copies of the previous server's units, re-read from their primary
// a batch at a time.
func rebuildMirror(c *client.Client, f *client.File, dead int, size int64) error {
	g := f.Geometry()
	ref := f.Ref()
	prev := (dead - 1 + g.Servers) % g.Servers
	batches := chunkInt64(ownedUnits(g, prev, size))
	return runBatches(len(batches), func(i int) error {
		spans := unitSpans(g, batches[i])
		resp, err := c.ServerCaller(prev).Call(&wire.Read{File: ref, Spans: spans, Raw: true})
		if err != nil {
			return err
		}
		data := resp.(*wire.ReadResp).Data
		_, err = c.ServerCaller(dead).Call(&wire.WriteMirror{File: ref, Spans: spans, Data: data})
		return err
	})
}

// readUnitRaw reads one whole unit's in-place contents from its server.
func readUnitRaw(c *client.Client, ref wire.FileRef, g raid.Geometry, b int64) ([]byte, error) {
	span := wire.Span{Off: g.UnitStart(b), Len: g.StripeUnit}
	resp, err := c.ServerCaller(g.ServerOf(b)).Call(&wire.Read{File: ref, Spans: []wire.Span{span}, Raw: true})
	if err != nil {
		return nil, err
	}
	data := resp.(*wire.ReadResp).Data
	if int64(len(data)) != g.StripeUnit {
		return nil, fmt.Errorf("recovery: short unit read (unit %d)", b)
	}
	return data, nil
}

// rebuildDataFromParity restores a data file from the surviving units and
// parity of each affected stripe. Work proceeds in batches: every unit the
// dead server owns sits in a distinct stripe, so one batch costs one
// multi-stripe ReadParity per parity server, one multi-span raw Read per
// surviving server (each contributes exactly one unit per non-parity
// stripe), a local XOR, and one multi-span write to the replacement.
func rebuildDataFromParity(c *client.Client, f *client.File, dead int, size int64) error {
	g := f.Geometry()
	ref := f.Ref()
	su := g.StripeUnit
	batches := chunkInt64(ownedUnits(g, dead, size))
	return runBatches(len(batches), func(i int) error {
		batch := batches[i]
		accs := make([]byte, int64(len(batch))*su)
		stripeOf := make([]int64, len(batch))
		pos := make(map[int64]int, len(batch)) // stripe -> index in batch
		byPS := make(map[int][]int64)
		for j, b := range batch {
			s := b / int64(g.DataWidth())
			stripeOf[j] = s
			pos[s] = j
			ps := g.ParityServerOf(s)
			byPS[ps] = append(byPS[ps], s)
		}

		// Seed each accumulator with the stripe's parity.
		for ps, stripes := range byPS {
			resp, err := c.ServerCaller(ps).Call(&wire.ReadParity{File: ref, Stripes: stripes})
			if err != nil {
				return err
			}
			data := resp.(*wire.ReadResp).Data
			if int64(len(data)) != int64(len(stripes))*su {
				return fmt.Errorf("recovery: short parity read from server %d", ps)
			}
			for k, s := range stripes {
				copy(accs[int64(pos[s])*su:], data[int64(k)*su:int64(k+1)*su])
			}
		}

		// Fold in every survivor's units across the batch's stripes.
		spans := stripeSpans(g, stripeOf)
		for srv := 0; srv < g.Servers; srv++ {
			if srv == dead {
				continue
			}
			resp, err := c.ServerCaller(srv).Call(&wire.Read{File: ref, Spans: spans, Raw: true})
			if err != nil {
				return err
			}
			data := resp.(*wire.ReadResp).Data
			cur := int64(0)
			for j, s := range stripeOf {
				if g.ParityServerOf(s) == srv {
					continue // srv holds this stripe's parity, no data unit
				}
				if cur+su > int64(len(data)) {
					return fmt.Errorf("recovery: short unit read from server %d", srv)
				}
				raid.XORInto(accs[int64(j)*su:int64(j+1)*su], data[cur:cur+su])
				cur += su
			}
		}
		_, err := c.ServerCaller(dead).Call(&wire.WriteData{
			File: ref, Spans: unitSpans(g, batch), Data: accs, Raw: true})
		return err
	})
}

// rebuildParity recomputes the parity units owned by the dead server, a
// batch of stripes per round: one multi-span raw Read per surviving server
// (each owns exactly one data unit of every stripe whose parity the dead
// server holds), a local XOR, and one multi-stripe parity write.
func rebuildParity(c *client.Client, f *client.File, dead int, size int64) error {
	g := f.Geometry()
	ref := f.Ref()
	su := g.StripeUnit
	var stripes []int64
	g.ParityStripesOwnedBy(dead, size, func(s int64) error { //nolint:errcheck // fn never fails
		stripes = append(stripes, s)
		return nil
	})
	batches := chunkInt64(stripes)
	return runBatches(len(batches), func(i int) error {
		batch := batches[i]
		accs := make([]byte, int64(len(batch))*su)
		spans := stripeSpans(g, batch)
		for srv := 0; srv < g.Servers; srv++ {
			if srv == dead {
				continue
			}
			resp, err := c.ServerCaller(srv).Call(&wire.Read{File: ref, Spans: spans, Raw: true})
			if err != nil {
				return err
			}
			data := resp.(*wire.ReadResp).Data
			if int64(len(data)) != int64(len(batch))*su {
				return fmt.Errorf("recovery: short unit read from server %d", srv)
			}
			for j := range batch {
				raid.XORInto(accs[int64(j)*su:int64(j+1)*su], data[int64(j)*su:int64(j+1)*su])
			}
		}
		_, err := c.ServerCaller(dead).Call(&wire.WriteParity{
			File: ref, Stripes: batch, Data: accs,
		})
		return err
	})
}

// rebuildOverflow restores the dead server's overflow region (from its
// mirror on the next server) and its overflow-mirror region (from the
// previous server's primary overflow).
func rebuildOverflow(c *client.Client, f *client.File, dead int) error {
	g := f.Geometry()
	ref := f.Ref()
	next := (dead + 1) % g.Servers
	prev := (dead - 1 + g.Servers) % g.Servers

	// Primary overflow <- mirror copy held by the next server.
	resp, err := c.ServerCaller(next).Call(&wire.OverflowDump{File: ref, Mirror: true})
	if err != nil {
		return err
	}
	dump := resp.(*wire.OverflowDumpResp)
	if len(dump.Extents) > 0 {
		if _, err := c.ServerCaller(dead).Call(&wire.WriteOverflow{
			File: ref, Extents: dump.Extents, Data: dump.Data,
		}); err != nil {
			return err
		}
	}

	// Overflow mirror <- previous server's primary overflow.
	resp, err = c.ServerCaller(prev).Call(&wire.OverflowDump{File: ref})
	if err != nil {
		return err
	}
	dump = resp.(*wire.OverflowDumpResp)
	if len(dump.Extents) > 0 {
		if _, err := c.ServerCaller(dead).Call(&wire.WriteOverflow{
			File: ref, Extents: dump.Extents, Data: dump.Data, Mirror: true,
		}); err != nil {
			return err
		}
	}
	return nil
}

// Verify checks a file's redundancy invariants and returns a description of
// every violation found (empty means consistent). It is the fsck of CSAR.
func Verify(c *client.Client, f *client.File) ([]string, error) {
	g := f.Geometry()
	ref := f.Ref()
	size := f.Size()
	var problems []string
	if size == 0 {
		return nil, nil
	}

	switch {
	case ref.Scheme == wire.Raid1:
		lastUnit := g.UnitOf(size - 1)
		for b := int64(0); b <= lastUnit; b++ {
			span := wire.Span{Off: g.UnitStart(b), Len: g.StripeUnit}
			prim, err := c.ServerCaller(g.ServerOf(b)).Call(&wire.Read{File: ref, Spans: []wire.Span{span}, Raw: true})
			if err != nil {
				return nil, err
			}
			mir, err := c.ServerCaller(g.MirrorServerOf(b)).Call(&wire.ReadMirror{File: ref, Spans: []wire.Span{span}})
			if err != nil {
				return nil, err
			}
			if !bytes.Equal(prim.(*wire.ReadResp).Data, mir.(*wire.ReadResp).Data) {
				problems = append(problems, fmt.Sprintf("unit %d: mirror differs from primary", b))
			}
		}
	case ref.Scheme == wire.ReedSolomon:
		rsProblems, err := verifyRS(c, f)
		if err != nil {
			return nil, err
		}
		problems = append(problems, rsProblems...)
	case ref.Scheme.UsesParity():
		lastStripe := g.StripeOf(size - 1)
		for s := int64(0); s <= lastStripe; s++ {
			first, count := g.DataUnitsOf(s)
			acc := make([]byte, g.StripeUnit)
			for j := 0; j < count; j++ {
				data, err := readUnitRaw(c, ref, g, first+int64(j))
				if err != nil {
					return nil, err
				}
				raid.XORInto(acc, data)
			}
			presp, err := c.ServerCaller(g.ParityServerOf(s)).Call(
				&wire.ReadParity{File: ref, Stripes: []int64{s}})
			if err != nil {
				return nil, err
			}
			if !bytes.Equal(acc, presp.(*wire.ReadResp).Data) {
				problems = append(problems, fmt.Sprintf("stripe %d: parity does not match data", s))
			}
		}
		if ref.Scheme == wire.Hybrid {
			ovProblems, err := verifyOverflowMirrors(c, f)
			if err != nil {
				return nil, err
			}
			problems = append(problems, ovProblems...)
		}
	}
	return problems, nil
}

// verifyOverflowMirrors checks that every server's primary overflow table
// and contents match the mirror copy on the next server.
func verifyOverflowMirrors(c *client.Client, f *client.File) ([]string, error) {
	g := f.Geometry()
	ref := f.Ref()
	var problems []string
	for i := 0; i < g.Servers; i++ {
		next := (i + 1) % g.Servers
		presp, err := c.ServerCaller(i).Call(&wire.OverflowDump{File: ref})
		if err != nil {
			return nil, err
		}
		mresp, err := c.ServerCaller(next).Call(&wire.OverflowDump{File: ref, Mirror: true})
		if err != nil {
			return nil, err
		}
		p := presp.(*wire.OverflowDumpResp)
		m := mresp.(*wire.OverflowDumpResp)
		if len(p.Extents) != len(m.Extents) {
			problems = append(problems, fmt.Sprintf(
				"server %d: overflow table has %d extents, mirror on %d has %d",
				i, len(p.Extents), next, len(m.Extents)))
			continue
		}
		for k := range p.Extents {
			if p.Extents[k] != m.Extents[k] {
				problems = append(problems, fmt.Sprintf(
					"server %d: overflow extent %d differs from mirror", i, k))
			}
		}
		if !bytes.Equal(p.Data, m.Data) {
			problems = append(problems, fmt.Sprintf(
				"server %d: overflow contents differ from mirror", i))
		}
	}
	return problems, nil
}
