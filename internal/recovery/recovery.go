// Package recovery implements the consumer of CSAR's redundancy: verifying
// that a file's redundant data is consistent, and rebuilding a failed
// server's stores from the survivors. Tolerating a single disk failure is
// the paper's stated long-term objective for CSAR; this package is the code
// path that objective pays for.
//
// Rebuild reconstructs, onto a blank replacement server:
//
//   - its data file, from the RAID1 mirror (next server) or from each
//     stripe's surviving units XOR parity;
//   - its mirror file (RAID1), by re-reading the previous server's units;
//   - its parity file (RAID5/Hybrid), by recomputing each owned stripe;
//   - its overflow region and table (Hybrid), from the overflow mirror on
//     the next server, and its overflow-mirror region from the previous
//     server's primary overflow.
//
// Note the Hybrid invariant that makes this work: the in-place data a
// stripe's parity covers is never updated by a partial-stripe write — new
// bytes go to the overflow region — so parity reconstruction always yields
// the old in-place data, and the overflow mirror then carries the newer
// bytes (Section 4: "the blocks cannot be updated in place because the old
// blocks are needed to reconstruct the data in the stripe").
package recovery

import (
	"bytes"
	"fmt"

	"csar/internal/client"
	"csar/internal/raid"
	"csar/internal/wire"
)

// Rebuild reconstructs server dead's stores for file f onto the replacement
// server now occupying the same slot. The caller must have already replaced
// the failed server with a blank one (and must not mark it up for normal
// use until Rebuild returns).
func Rebuild(c *client.Client, f *client.File, dead int) error {
	g := f.Geometry()
	ref := f.Ref()
	if dead < 0 || dead >= g.Servers {
		return fmt.Errorf("recovery: server %d out of range", dead)
	}
	size := f.Size()
	if size == 0 {
		return nil
	}

	switch ref.Scheme {
	case wire.Raid0:
		return fmt.Errorf("recovery: %w", client.ErrNoRedundancy)
	case wire.Raid1:
		if err := rebuildDataFromMirror(c, f, dead, size); err != nil {
			return err
		}
		return rebuildMirror(c, f, dead, size)
	case wire.Raid5, wire.Raid5NoLock, wire.Raid5NPC:
		if err := rebuildDataFromParity(c, f, dead, size); err != nil {
			return err
		}
		return rebuildParity(c, f, dead, size)
	case wire.Hybrid:
		if err := rebuildDataFromParity(c, f, dead, size); err != nil {
			return err
		}
		if err := rebuildParity(c, f, dead, size); err != nil {
			return err
		}
		return rebuildOverflow(c, f, dead)
	default:
		return fmt.Errorf("recovery: unsupported scheme %v", ref.Scheme)
	}
}

// rebuildDataFromMirror restores a RAID1 data file from the mirror copies
// on the next server.
func rebuildDataFromMirror(c *client.Client, f *client.File, dead int, size int64) error {
	g := f.Geometry()
	ref := f.Ref()
	mirrorSrv := (dead + 1) % g.Servers
	return g.UnitsOwnedBy(dead, size, func(b int64) error {
		span := wire.Span{Off: g.UnitStart(b), Len: g.StripeUnit}
		resp, err := c.ServerCaller(mirrorSrv).Call(&wire.ReadMirror{File: ref, Spans: []wire.Span{span}})
		if err != nil {
			return err
		}
		data := resp.(*wire.ReadResp).Data
		if int64(len(data)) != span.Len {
			return fmt.Errorf("recovery: short mirror read for unit %d", b)
		}
		_, err = c.ServerCaller(dead).Call(&wire.WriteData{File: ref, Spans: []wire.Span{span}, Data: data, Raw: true})
		return err
	})
}

// rebuildMirror restores the mirror file on the dead server: it holds the
// mirror copies of the previous server's units, re-read from their primary.
func rebuildMirror(c *client.Client, f *client.File, dead int, size int64) error {
	g := f.Geometry()
	ref := f.Ref()
	prev := (dead - 1 + g.Servers) % g.Servers
	return g.UnitsOwnedBy(prev, size, func(b int64) error {
		span := wire.Span{Off: g.UnitStart(b), Len: g.StripeUnit}
		resp, err := c.ServerCaller(prev).Call(&wire.Read{File: ref, Spans: []wire.Span{span}, Raw: true})
		if err != nil {
			return err
		}
		data := resp.(*wire.ReadResp).Data
		_, err = c.ServerCaller(dead).Call(&wire.WriteMirror{File: ref, Spans: []wire.Span{span}, Data: data})
		return err
	})
}

// readUnitRaw reads one whole unit's in-place contents from its server.
func readUnitRaw(c *client.Client, ref wire.FileRef, g raid.Geometry, b int64) ([]byte, error) {
	span := wire.Span{Off: g.UnitStart(b), Len: g.StripeUnit}
	resp, err := c.ServerCaller(g.ServerOf(b)).Call(&wire.Read{File: ref, Spans: []wire.Span{span}, Raw: true})
	if err != nil {
		return nil, err
	}
	data := resp.(*wire.ReadResp).Data
	if int64(len(data)) != g.StripeUnit {
		return nil, fmt.Errorf("recovery: short unit read (unit %d)", b)
	}
	return data, nil
}

// rebuildDataFromParity restores a data file from each affected stripe's
// surviving units and parity.
func rebuildDataFromParity(c *client.Client, f *client.File, dead int, size int64) error {
	g := f.Geometry()
	ref := f.Ref()
	return g.UnitsOwnedBy(dead, size, func(b int64) error {
		stripe := b / int64(g.DataWidth())
		first, count := g.DataUnitsOf(stripe)
		acc := make([]byte, g.StripeUnit)

		presp, err := c.ServerCaller(g.ParityServerOf(stripe)).Call(
			&wire.ReadParity{File: ref, Stripes: []int64{stripe}})
		if err != nil {
			return err
		}
		copy(acc, presp.(*wire.ReadResp).Data)

		for j := 0; j < count; j++ {
			u := first + int64(j)
			if u == b {
				continue
			}
			data, err := readUnitRaw(c, ref, g, u)
			if err != nil {
				return err
			}
			raid.XORInto(acc, data)
		}
		span := wire.Span{Off: g.UnitStart(b), Len: g.StripeUnit}
		_, err = c.ServerCaller(dead).Call(&wire.WriteData{File: ref, Spans: []wire.Span{span}, Data: acc, Raw: true})
		return err
	})
}

// rebuildParity recomputes every parity unit owned by the dead server.
func rebuildParity(c *client.Client, f *client.File, dead int, size int64) error {
	g := f.Geometry()
	ref := f.Ref()
	return g.ParityStripesOwnedBy(dead, size, func(s int64) error {
		first, count := g.DataUnitsOf(s)
		acc := make([]byte, g.StripeUnit)
		for j := 0; j < count; j++ {
			data, err := readUnitRaw(c, ref, g, first+int64(j))
			if err != nil {
				return err
			}
			raid.XORInto(acc, data)
		}
		_, err := c.ServerCaller(dead).Call(&wire.WriteParity{
			File: ref, Stripes: []int64{s}, Data: acc,
		})
		return err
	})
}

// rebuildOverflow restores the dead server's overflow region (from its
// mirror on the next server) and its overflow-mirror region (from the
// previous server's primary overflow).
func rebuildOverflow(c *client.Client, f *client.File, dead int) error {
	g := f.Geometry()
	ref := f.Ref()
	next := (dead + 1) % g.Servers
	prev := (dead - 1 + g.Servers) % g.Servers

	// Primary overflow <- mirror copy held by the next server.
	resp, err := c.ServerCaller(next).Call(&wire.OverflowDump{File: ref, Mirror: true})
	if err != nil {
		return err
	}
	dump := resp.(*wire.OverflowDumpResp)
	if len(dump.Extents) > 0 {
		if _, err := c.ServerCaller(dead).Call(&wire.WriteOverflow{
			File: ref, Extents: dump.Extents, Data: dump.Data,
		}); err != nil {
			return err
		}
	}

	// Overflow mirror <- previous server's primary overflow.
	resp, err = c.ServerCaller(prev).Call(&wire.OverflowDump{File: ref})
	if err != nil {
		return err
	}
	dump = resp.(*wire.OverflowDumpResp)
	if len(dump.Extents) > 0 {
		if _, err := c.ServerCaller(dead).Call(&wire.WriteOverflow{
			File: ref, Extents: dump.Extents, Data: dump.Data, Mirror: true,
		}); err != nil {
			return err
		}
	}
	return nil
}

// Verify checks a file's redundancy invariants and returns a description of
// every violation found (empty means consistent). It is the fsck of CSAR.
func Verify(c *client.Client, f *client.File) ([]string, error) {
	g := f.Geometry()
	ref := f.Ref()
	size := f.Size()
	var problems []string
	if size == 0 {
		return nil, nil
	}

	switch {
	case ref.Scheme == wire.Raid1:
		lastUnit := g.UnitOf(size - 1)
		for b := int64(0); b <= lastUnit; b++ {
			span := wire.Span{Off: g.UnitStart(b), Len: g.StripeUnit}
			prim, err := c.ServerCaller(g.ServerOf(b)).Call(&wire.Read{File: ref, Spans: []wire.Span{span}, Raw: true})
			if err != nil {
				return nil, err
			}
			mir, err := c.ServerCaller(g.MirrorServerOf(b)).Call(&wire.ReadMirror{File: ref, Spans: []wire.Span{span}})
			if err != nil {
				return nil, err
			}
			if !bytes.Equal(prim.(*wire.ReadResp).Data, mir.(*wire.ReadResp).Data) {
				problems = append(problems, fmt.Sprintf("unit %d: mirror differs from primary", b))
			}
		}
	case ref.Scheme.UsesParity():
		lastStripe := g.StripeOf(size - 1)
		for s := int64(0); s <= lastStripe; s++ {
			first, count := g.DataUnitsOf(s)
			acc := make([]byte, g.StripeUnit)
			for j := 0; j < count; j++ {
				data, err := readUnitRaw(c, ref, g, first+int64(j))
				if err != nil {
					return nil, err
				}
				raid.XORInto(acc, data)
			}
			presp, err := c.ServerCaller(g.ParityServerOf(s)).Call(
				&wire.ReadParity{File: ref, Stripes: []int64{s}})
			if err != nil {
				return nil, err
			}
			if !bytes.Equal(acc, presp.(*wire.ReadResp).Data) {
				problems = append(problems, fmt.Sprintf("stripe %d: parity does not match data", s))
			}
		}
		if ref.Scheme == wire.Hybrid {
			ovProblems, err := verifyOverflowMirrors(c, f)
			if err != nil {
				return nil, err
			}
			problems = append(problems, ovProblems...)
		}
	}
	return problems, nil
}

// verifyOverflowMirrors checks that every server's primary overflow table
// and contents match the mirror copy on the next server.
func verifyOverflowMirrors(c *client.Client, f *client.File) ([]string, error) {
	g := f.Geometry()
	ref := f.Ref()
	var problems []string
	for i := 0; i < g.Servers; i++ {
		next := (i + 1) % g.Servers
		presp, err := c.ServerCaller(i).Call(&wire.OverflowDump{File: ref})
		if err != nil {
			return nil, err
		}
		mresp, err := c.ServerCaller(next).Call(&wire.OverflowDump{File: ref, Mirror: true})
		if err != nil {
			return nil, err
		}
		p := presp.(*wire.OverflowDumpResp)
		m := mresp.(*wire.OverflowDumpResp)
		if len(p.Extents) != len(m.Extents) {
			problems = append(problems, fmt.Sprintf(
				"server %d: overflow table has %d extents, mirror on %d has %d",
				i, len(p.Extents), next, len(m.Extents)))
			continue
		}
		for k := range p.Extents {
			if p.Extents[k] != m.Extents[k] {
				problems = append(problems, fmt.Sprintf(
					"server %d: overflow extent %d differs from mirror", i, k))
			}
		}
		if !bytes.Equal(p.Data, m.Data) {
			problems = append(problems, fmt.Sprintf(
				"server %d: overflow contents differ from mirror", i))
		}
	}
	return problems, nil
}
