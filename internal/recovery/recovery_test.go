package recovery

import (
	"errors"
	"testing"

	"csar/internal/client"
	"csar/internal/cluster"
	"csar/internal/wire"
)

func newCluster(t *testing.T, n int) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(cluster.DefaultConfig(n))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func fill(n int, seed byte) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(i)*11 + seed
	}
	return p
}

// corrupt overwrites part of a store on one server, bypassing the client.
func corrupt(t *testing.T, c *cluster.Cluster, srv int, name string, off int64) {
	t.Helper()
	d := c.Server(srv).Disk()
	found := false
	for _, fn := range d.FileNames() {
		if len(fn) >= len(name) && fn[len(fn)-len(name):] == name {
			f := d.Open(fn)
			if f.Size() > off {
				f.WriteAt([]byte{0xDE, 0xAD}, off)
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("no %q store on server %d reaching offset %d", name, srv, off)
	}
}

func TestVerifyDetectsMirrorCorruption(t *testing.T) {
	c := newCluster(t, 4)
	cl := c.NewClient()
	f, err := cl.Create("m", 4, 64, wire.Raid1)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteAt(fill(2000, 1), 0)
	problems, err := Verify(cl, f)
	if err != nil || len(problems) != 0 {
		t.Fatalf("clean file flagged: %v %v", problems, err)
	}
	corrupt(t, c, 1, "mirror", 0)
	problems, err = Verify(cl, f)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) == 0 {
		t.Fatal("mirror corruption not detected")
	}
}

func TestVerifyDetectsParityCorruption(t *testing.T) {
	for _, scheme := range []wire.Scheme{wire.Raid5, wire.Hybrid} {
		c := newCluster(t, 4)
		cl := c.NewClient()
		f, err := cl.Create("p", 4, 64, scheme)
		if err != nil {
			t.Fatal(err)
		}
		f.WriteAt(fill(3*64*4, 2), 0) // aligned full stripes
		corrupt(t, c, 3, "parity", 0)
		problems, err := Verify(cl, f)
		if err != nil {
			t.Fatal(err)
		}
		if len(problems) == 0 {
			t.Fatalf("%v: parity corruption not detected", scheme)
		}
	}
}

func TestVerifyDetectsOverflowMirrorDivergence(t *testing.T) {
	c := newCluster(t, 4)
	cl := c.NewClient()
	f, err := cl.Create("h", 4, 64, wire.Hybrid)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteAt(fill(30, 3), 10) // partial write -> overflow on server 0, mirror on 1
	corrupt(t, c, 1, "ovmirror", 12)
	problems, err := Verify(cl, f)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) == 0 {
		t.Fatal("overflow mirror divergence not detected")
	}
}

func TestVerifyEmptyFile(t *testing.T) {
	c := newCluster(t, 4)
	cl := c.NewClient()
	f, err := cl.Create("e", 4, 64, wire.Raid5)
	if err != nil {
		t.Fatal(err)
	}
	problems, err := Verify(cl, f)
	if err != nil || len(problems) != 0 {
		t.Fatalf("empty file: %v %v", problems, err)
	}
	if err := Rebuild(cl, f, 1); err != nil {
		t.Fatalf("rebuild of empty file: %v", err)
	}
}

func TestRebuildErrors(t *testing.T) {
	c := newCluster(t, 4)
	cl := c.NewClient()
	f, err := cl.Create("r0", 4, 64, wire.Raid0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteAt(fill(1000, 4), 0)
	if err := Rebuild(cl, f, 1); !errors.Is(err, client.ErrNoRedundancy) {
		t.Fatalf("raid0 rebuild err = %v", err)
	}
	f5, err := cl.Create("r5", 4, 64, wire.Raid5)
	if err != nil {
		t.Fatal(err)
	}
	f5.WriteAt(fill(1000, 4), 0)
	if err := Rebuild(cl, f5, -1); err == nil {
		t.Fatal("negative server index accepted")
	}
	if err := Rebuild(cl, f5, 9); err == nil {
		t.Fatal("out-of-range server index accepted")
	}
}

// TestRebuildRepairsCorruption uses Rebuild as a repair tool: corrupt one
// server's stores entirely (replace it), rebuild, verify clean.
func TestRebuildRepairsCorruption(t *testing.T) {
	c := newCluster(t, 5)
	cl := c.NewClient()
	f, err := cl.Create("x", 5, 64, wire.Hybrid)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteAt(fill(5000, 5), 0)
	f.WriteAt(fill(100, 6), 64*4+10) // overflow extent

	c.StopServer(3)
	c.ReplaceServer(3)
	if err := Rebuild(cl, f, 3); err != nil {
		t.Fatal(err)
	}
	problems, err := Verify(cl, f)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("not clean after rebuild: %v", problems)
	}
}
