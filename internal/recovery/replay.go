package recovery

import (
	"fmt"
	"time"

	"csar/internal/client"
	"csar/internal/core"
	"csar/internal/raid"
	"csar/internal/wire"
)

// ReplayReport summarizes one intent-replay pass over a file.
type ReplayReport struct {
	Open      int      // intents still live (an RMW in flight); left alone
	Abandoned int      // abandoned intents found (lease expiry, dirty cancel, crash restart)
	Replayed  int      // abandoned intents repaired: parity reconstructed and retired
	Skipped   int      // abandoned intents left for a later pass (e.g. a data server down)
	Problems  []string // human-readable notes for everything not repaired
}

// ReplayIntents closes the write hole's recovery half for one file: it asks
// every parity server for its open-intent set and reconstructs the parity of
// each abandoned stripe from the stripe's in-place data units.
//
// An abandoned intent marks a stripe whose read-modify-write died after its
// data writes may have started but before the unlocking parity write retired
// the intent — exactly the window where data and parity can disagree. Under
// the crash-safe RMW ordering the data units hold either the old bytes (the
// write never reached them) or the complete new bytes, so XOR-ing the data
// units yields a parity consistent with whatever the stripe now holds, and
// ResolveIntent applies it and retires the intent atomically on the server.
//
// Open (non-abandoned) intents belong to RMWs still in flight and are left
// untouched — the paper's Section 5.1 lock serializes us behind them. A
// degraded data server defers that stripe to a later pass (after Rebuild)
// rather than replaying from incomplete information.
func ReplayIntents(c *client.Client, f *client.File) (*ReplayReport, error) {
	g := f.Geometry()
	ref := f.Ref()
	rep := &ReplayReport{}
	if !ref.Scheme.UsesParity() {
		return rep, nil
	}
	defer c.ObserveSince("replay_pass", time.Now())

	for srv := 0; srv < g.Servers; srv++ {
		resp, err := c.ServerCaller(srv).Call(&wire.ListIntents{File: ref})
		if err != nil {
			return rep, fmt.Errorf("recovery: list intents on server %d: %w", srv, err)
		}
		lr, ok := resp.(*wire.ListIntentsResp)
		if !ok {
			return rep, fmt.Errorf("recovery: unexpected intent listing %T", resp)
		}
		for _, in := range lr.Intents {
			if !in.Abandoned {
				rep.Open++
				continue
			}
			rep.Abandoned++
			if err := replayStripe(c, ref, g, srv, in, rep); err != nil {
				return rep, err
			}
		}
	}
	c.NoteReplay(int64(rep.Replayed), int64(rep.Abandoned))
	return rep, nil
}

// replayStripe reconstructs one abandoned stripe's parity and resolves its
// intent on the parity server. Under multi-parity Reed-Solomon each of the
// stripe's m parity servers records its own intent, and each replay
// recomputes only the parity unit that server holds; parity unit 0 is the
// plain XOR of the data units, so the single-parity schemes are the j == 0
// special case.
func replayStripe(c *client.Client, ref wire.FileRef, g raid.Geometry, srv int, in wire.Intent, rep *ReplayReport) error {
	pu, ok := g.ParityUnitOn(srv, in.Stripe)
	if !ok {
		rep.Skipped++
		rep.Problems = append(rep.Problems, fmt.Sprintf(
			"stripe %d: intent on server %d, which owns none of its parity", in.Stripe, srv))
		return nil
	}
	first, count := g.DataUnitsOf(in.Stripe)
	data := make([][]byte, count)
	for j := 0; j < count; j++ {
		u := first + int64(j)
		if c.Down(g.ServerOf(u)) {
			// The stripe's data cannot be read in full; replaying from a
			// reconstruction of the failed server would be circular (that
			// reconstruction needs the very parity we distrust). Leave the
			// stripe fail-stopped for a pass after Rebuild.
			rep.Skipped++
			rep.Problems = append(rep.Problems, fmt.Sprintf(
				"stripe %d: data server %d down; replay deferred", in.Stripe, g.ServerOf(u)))
			return nil
		}
		d, err := readUnitRaw(c, ref, g, u)
		if err != nil {
			rep.Skipped++
			rep.Problems = append(rep.Problems, fmt.Sprintf(
				"stripe %d: reading unit %d: %v", in.Stripe, u, err))
			return nil
		}
		data[j] = d
	}
	acc := make([]byte, g.StripeUnit)
	if ref.Scheme == wire.ReedSolomon {
		code, err := core.RSOf(g)
		if err != nil {
			return err
		}
		code.EncodeUnitInto(pu, acc, data)
	} else {
		for _, d := range data {
			raid.XORInto(acc, d)
		}
	}
	if _, err := c.ServerCaller(srv).Call(&wire.ResolveIntent{
		File: ref, Stripe: in.Stripe, Owner: in.Owner, Data: acc,
	}); err != nil {
		return fmt.Errorf("recovery: resolve intent for stripe %d: %w", in.Stripe, err)
	}
	rep.Replayed++
	return nil
}
