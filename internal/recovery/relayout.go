package recovery

import (
	"errors"
	"fmt"
	"math"
	"time"

	"csar/internal/client"
	"csar/internal/simtime"
	"csar/internal/wire"
)

// This file implements online scheme migration ("re-layout under
// writers"): transitioning a live file between redundancy schemes —
// RAID1 ↔ Hybrid ↔ RAID5 ↔ RS(k, m) — without stopping foreground I/O.
// The layouts cannot share physical stores (stripe and parity numbering
// differ across schemes), so the manager pins a shadow layout under a
// fresh file ID, this engine copies the logical bytes across in
// rate-limited chunks, and a single metadata operation cuts the file over.
// Foreground writes are coordinated through the client's relayout cursor
// (see internal/client/relayout.go): behind it they are dual-written to
// both layouts, ahead of it they go to the live layout only and the copy
// picks them up when it arrives. Each chunk copy — read live, write
// shadow, advance cursor — runs under the exclusive side of the relayout
// gate; unlike resync there is no dirty log to absorb a write that slips
// in between, so the cursor must move inside the exclusive section.
//
// The whole procedure is abort-safe and re-runnable: the pin survives at
// the manager (WAL-logged and replicated, so a failover resumes it), a
// failed pass leaves nothing the next pass cannot overwrite, and commit
// and abort are fenced by the shadow ID.

// ErrMigrationAborted is returned when a migration pass could not finish.
// The shadow layout stays pinned at the manager: re-running Migrate with
// the same target resumes it, and AbortMigration discards it.
var ErrMigrationAborted = errors.New("recovery: migration aborted; shadow layout left pinned")

// MigrateOptions tunes an online scheme migration.
type MigrateOptions struct {
	// RateLimit throttles copy I/O to this many logical bytes per
	// simulated second; 0 means unthrottled. When the client has no
	// simulated clock, the limit is enforced in wall time.
	RateLimit float64
	// ChunkStripes sets how many target-layout stripes are copied per
	// exclusive section — the granularity at which foreground writes can
	// interleave with the copy. <= 0 uses 16.
	ChunkStripes int
	// Clock overrides the time base for the rate limiter; nil uses the
	// client's clock.
	Clock *simtime.Clock
}

// MigrateReport describes one completed migration.
type MigrateReport struct {
	From, To    wire.Scheme
	NewID       uint64 // the file's ID after the cutover
	BytesCopied int64  // logical bytes re-encoded by the copy passes
	CleanupErrs int    // old-layout stores that could not be removed
}

// Migrate transitions file f to the target scheme online. It pins a
// shadow layout at the manager (resuming a matching pin left by an
// earlier interrupted pass), re-encodes the file's bytes into it while
// foreground writes through c continue, commits the cutover, swaps f's
// layout in place, and removes the old layout's stores. parity is the
// RS(k, m) parity-unit count (0 = the manager's default); non-RS targets
// take 0. On success f reads and writes the new layout; other clients'
// open handles keep the old one (the same single-coordinator assumption
// as Rebuild and Resync) and must reopen.
func Migrate(c *client.Client, f *client.File, scheme wire.Scheme, parity int, opts MigrateOptions) (MigrateReport, error) {
	ref := f.Ref()
	var report MigrateReport
	report.From = ref.Scheme
	report.To = scheme
	defer c.ObserveSince("relayout_pass", time.Now())

	sr, err := c.PinScheme(ref.ID, scheme, uint8(parity))
	if err != nil {
		// Nothing was pinned, so this is not ErrMigrationAborted: there is
		// no shadow layout to resume or abort.
		return report, fmt.Errorf("recovery: pinning target scheme: %w", err)
	}
	report.NewID = sr.New.ID
	// Gate-exempt handles for use under the exclusive gate: the shadow
	// target and a second view of the live layout (the caller's f stays
	// gated, as every foreground writer's handle must).
	dst, err := c.FileForRelayout(sr.New, 0)
	if err != nil {
		return report, fmt.Errorf("%w: shadow layout: %v", ErrMigrationAborted, err)
	}
	src, err := c.FileForRelayout(ref, f.Size())
	if err != nil {
		return report, fmt.Errorf("%w: live layout: %v", ErrMigrationAborted, err)
	}

	clk := opts.Clock
	if clk == nil {
		clk = c.Clock()
	}
	if !clk.Timed() && opts.RateLimit > 0 {
		// No simulated clock to bill against: throttle in wall time.
		clk = &simtime.Clock{Scale: time.Second}
	}
	var lim *simtime.Limiter
	if opts.RateLimit > 0 {
		lim = simtime.NewLimiter(clk, opts.RateLimit)
	}

	chunkStripes := opts.ChunkStripes
	if chunkStripes <= 0 {
		chunkStripes = 16
	}
	// Chunks are whole target-layout stripes so the shadow writes take the
	// full-stripe path (no read-modify-write against half-copied parity).
	chunk := dst.Geometry().StripeSize() * int64(chunkStripes)
	buf := make([]byte, chunk)

	c.BeginRelayout(ref.ID, dst)
	defer c.EndRelayout(ref.ID)

	// Copy forward until the cursor overtakes the (possibly still growing)
	// logical size, then raise it to its terminal value under the gate —
	// after which every foreground write is dual-written and the two
	// layouts can no longer diverge.
	var off int64
	for {
		size := f.Size()
		if off >= size {
			done := false
			c.RelayoutExclusive(func() {
				if f.Size() > off {
					return // grew while we decided; another lap
				}
				c.AdvanceRelayoutCursor(ref.ID, math.MaxInt64)
				done = true
			})
			if done {
				break
			}
			continue
		}
		n := chunk
		if off+n > size {
			n = size - off
		}
		if lim != nil {
			lim.Acquire(n)
		}
		var cerr error
		c.RelayoutExclusive(func() {
			if _, err := src.ReadAt(buf[:n], off); err != nil {
				cerr = err
				return
			}
			if _, err := dst.WriteAt(buf[:n], off); err != nil {
				cerr = err
				return
			}
			c.AdvanceRelayoutCursor(ref.ID, off+n)
		})
		if cerr != nil {
			return report, fmt.Errorf("%w: copy at offset %d: %v", ErrMigrationAborted, off, cerr)
		}
		c.NoteRelayout(n)
		report.BytesCopied += n
		off += n
	}

	// Cutover, atomic with respect to foreground I/O: the manager swaps
	// the file's ref for the shadow (WAL-logged, replicated, fenced by the
	// shadow ID), and f adopts the new layout before any gated operation
	// can run again.
	var cerr error
	c.RelayoutExclusive(func() {
		if err := c.CommitScheme(ref.ID, sr.New.ID); err != nil {
			cerr = fmt.Errorf("%w: committing cutover: %v", ErrMigrationAborted, err)
			return
		}
		if err := f.AdoptRef(sr.New); err != nil {
			cerr = fmt.Errorf("recovery: adopting committed layout: %w", err)
		}
	})
	if cerr != nil {
		return report, cerr
	}
	c.NoteMigration()

	// Reclaim the old layout's stores. Best-effort: the cutover is
	// committed, and an unreachable server only leaks orphaned stores on a
	// now-unreferenced ID (reported, not fatal).
	for i := 0; i < int(ref.Servers); i++ {
		if _, err := c.ServerCaller(i).Call(&wire.RemoveFile{File: ref}); err != nil {
			report.CleanupErrs++
		}
	}
	return report, nil
}

// AbortMigration discards the shadow layout pinned for file name, if any,
// and removes whatever stores a partial copy materialized. A no-op when no
// migration is pinned.
func AbortMigration(c *client.Client, name string) error {
	info, err := c.OpenInfo(name)
	if err != nil {
		return err
	}
	if info.Mig.ID == 0 {
		return nil
	}
	if err := c.AbortScheme(info.Ref.ID, info.Mig.ID); err != nil {
		return err
	}
	// The pin is gone; orphaned shadow stores are only garbage. Best-effort.
	for i := 0; i < int(info.Mig.Servers); i++ {
		c.ServerCaller(i).Call(&wire.RemoveFile{File: info.Mig}) //nolint:errcheck
	}
	return nil
}
