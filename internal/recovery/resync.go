package recovery

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"csar/internal/client"
	"csar/internal/raid"
	"csar/internal/simtime"
	"csar/internal/wire"
)

// This file implements online incremental resync: instead of reconstructing
// every store a returning server owns (Rebuild), it replays only the regions
// degraded writes actually damaged while the server was out, as recorded in
// the dirty-region log its ring neighbours kept (wire.MarkDirty). The replay
// runs online — foreground writes continue, coordinated through the client's
// sync-point cursor: writes behind the cursor are forwarded straight to the
// recovering server, writes ahead of it re-dirty the log and are picked up
// by a later round.

// ErrResyncAborted is returned when a resync could not finish (an RPC
// failed mid-replay, or the rounds failed to converge). The dirty log is
// left intact: re-running Resync after the fault clears will converge, and
// nothing read from the recovering server in the meantime is trusted
// because it stays out of service until MarkUp.
var ErrResyncAborted = errors.New("recovery: resync aborted; dirty log left intact")

// ResyncOptions tunes an online resync pass.
type ResyncOptions struct {
	// RateLimit throttles replay I/O to this many bytes per simulated
	// second; 0 means unthrottled. When the client has no simulated clock,
	// the limit is enforced in wall time.
	RateLimit float64
	// DryRun dumps and validates the dirty log and reports what a resync
	// would replay, without writing anything or clearing the log.
	DryRun bool
	// Clock overrides the time base for the rate limiter; nil uses the
	// client's clock.
	Clock *simtime.Clock
}

// ResyncReport describes what a resync pass did (or, dry, would do).
type ResyncReport struct {
	Units         int64 // data units replayed onto the recovering server
	Mirrors       int64 // RAID1 mirror units replayed
	Stripes       int64 // parity stripes recomputed
	OverflowBytes int64 // Hybrid overflow bytes reconciled
	Rounds        int   // dump→replay→clear rounds until the log drained
	FullRebuild   bool  // the log was untrustworthy; Rebuild ran instead
}

// Items is the total dirty-log items the pass replayed.
func (r ResyncReport) Items() int64 { return r.Units + r.Mirrors + r.Stripes }

// resyncItem is one dirty-log entry in replay order.
type resyncItem struct {
	kind byte  // 'u' data unit, 'm' mirror unit, 's' parity stripe
	val  int64 // unit or stripe number
	end  int64 // logical byte offset its replay completes (cursor position)
}

// DirtyServers returns the servers that have outstanding dirty-region logs
// for file f — the set a recovery orchestrator should consider resyncing.
// The check is server-authoritative (it asks the replicas, not the client's
// own memory), so it works from a fresh process. Unreachable replicas are
// skipped: a candidate is reported if any reachable replica holds log
// entries for it.
func DirtyServers(c *client.Client, f *client.File) []int {
	g := f.Geometry()
	ref := f.Ref()
	var out []int
	for dead := 0; dead < g.Servers; dead++ {
		for _, r := range client.DirtyReplicas(g.Servers, dead) {
			resp, err := c.ServerCaller(r).Call(&wire.DirtyDump{File: ref, Dead: uint16(dead)})
			if err != nil {
				continue
			}
			if !dumpEmpty(resp.(*wire.DirtyDumpResp)) {
				out = append(out, dead)
				break
			}
		}
	}
	return out
}

func dumpEmpty(d *wire.DirtyDumpResp) bool {
	return len(d.Epochs) == 0 && len(d.Units) == 0 && len(d.Mirrors) == 0 &&
		len(d.Stripes) == 0 && !d.Overflow
}

// dumpAll fetches the outage's dirty log from every replica.
func dumpAll(c *client.Client, ref wire.FileRef, dead int, replicas []int) ([]*wire.DirtyDumpResp, error) {
	dumps := make([]*wire.DirtyDumpResp, len(replicas))
	for i, r := range replicas {
		resp, err := c.ServerCaller(r).Call(&wire.DirtyDump{File: ref, Dead: uint16(dead)})
		if err != nil {
			return nil, fmt.Errorf("%w: dirty dump from server %d: %v", ErrResyncAborted, r, err)
		}
		dumps[i] = resp.(*wire.DirtyDumpResp)
	}
	return dumps, nil
}

// epochsTrustworthy decides whether the replicas' logs together form a
// complete record of the outage. Every degraded write stamped its records
// with the outage epoch on both replicas, so: the epoch sets must be equal
// (a replica that was itself briefly down missed records and shows fewer
// epochs — or none while its peer has some), no epoch may be 0 (the
// client's poison value after a MarkDirty replication failure), and a
// replica with items but no epoch is corrupt. Anything else means the log
// may have forgotten damage, and only a full rebuild is safe.
func epochsTrustworthy(dumps []*wire.DirtyDumpResp) bool {
	base := epochSet(dumps[0])
	for _, d := range dumps {
		s := epochSet(d)
		if len(s) == 0 && !dumpEmpty(d) {
			return false
		}
		if len(s) != len(base) {
			return false
		}
		for e := range s {
			if e == 0 {
				return false
			}
			if _, ok := base[e]; !ok {
				return false
			}
		}
	}
	return true
}

func epochSet(d *wire.DirtyDumpResp) map[uint64]struct{} {
	s := make(map[uint64]struct{}, len(d.Epochs))
	for _, e := range d.Epochs {
		s[e] = struct{}{}
	}
	return s
}

// mergeItems unions the replicas' dumps into one replay list sorted by the
// logical offset each item's replay completes (the order the cursor sweeps
// the file). A record present on only one replica — the other failed its
// MarkDirty — is still replayed; the union is why a single replication
// failure does not force a full rebuild.
func mergeItems(g raid.Geometry, dumps []*wire.DirtyDumpResp) (items []resyncItem, overflow bool) {
	type key struct {
		kind byte
		val  int64
	}
	seen := map[key]bool{}
	add := func(kind byte, val, end int64) {
		k := key{kind, val}
		if !seen[k] {
			seen[k] = true
			items = append(items, resyncItem{kind: kind, val: val, end: end})
		}
	}
	for _, d := range dumps {
		for _, it := range d.Units {
			add('u', it.Val, g.UnitStart(it.Val)+g.StripeUnit)
		}
		for _, it := range d.Mirrors {
			add('m', it.Val, g.UnitStart(it.Val)+g.StripeUnit)
		}
		for _, it := range d.Stripes {
			add('s', it.Val, g.StripeStart(it.Val+1))
		}
		overflow = overflow || d.Overflow
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].end != items[j].end {
			return items[i].end < items[j].end
		}
		if items[i].kind != items[j].kind {
			return items[i].kind < items[j].kind
		}
		return items[i].val < items[j].val
	})
	return items, overflow
}

// Resync brings server dead back up to date for file f by replaying its
// dirty-region log, and falls back to a full Rebuild when the log cannot be
// trusted. Unlike Rebuild it does not require the server's stores to be
// blank — it targets a server that returned with its pre-outage contents
// intact — and it runs online: foreground writes through c continue,
// coordinated with the replay via the client's sync-point cursor (behind it
// they are forwarded to the recovering server; ahead of it they re-dirty
// the log, and a later round replays them). The caller is responsible for
// MarkUp once Resync returns nil.
func Resync(c *client.Client, f *client.File, dead int, opts ResyncOptions) (ResyncReport, error) {
	g := f.Geometry()
	ref := f.Ref()
	var report ResyncReport
	if dead < 0 || dead >= g.Servers {
		return report, fmt.Errorf("recovery: server %d out of range", dead)
	}
	if ref.Scheme == wire.Raid0 {
		return report, fmt.Errorf("recovery: %w", client.ErrNoRedundancy)
	}
	replicas := client.DirtyReplicas(g.Servers, dead)
	defer c.ObserveSince("resync_pass", time.Now())

	clk := opts.Clock
	if clk == nil {
		clk = c.Clock()
	}
	if !clk.Timed() && opts.RateLimit > 0 {
		// No simulated clock to bill against: throttle in wall time.
		clk = &simtime.Clock{Scale: time.Second}
	}
	var lim *simtime.Limiter
	if opts.RateLimit > 0 {
		lim = simtime.NewLimiter(clk, opts.RateLimit)
	}
	throttle := func(n int64) {
		if lim != nil {
			lim.Acquire(n)
		}
	}

	dumps, err := dumpAll(c, ref, dead, replicas)
	if err != nil {
		return report, err
	}
	empty := true
	for _, d := range dumps {
		if !dumpEmpty(d) {
			empty = false
		}
	}
	if empty {
		return report, nil // no degraded write ever logged damage
	}
	if !epochsTrustworthy(dumps) {
		report.FullRebuild = true
		if opts.DryRun {
			return report, nil
		}
		return report, fullRebuildFallback(c, f, dead, replicas)
	}
	if opts.DryRun {
		items, overflow := mergeItems(g, dumps)
		for _, it := range items {
			switch it.kind {
			case 'u':
				report.Units++
			case 'm':
				report.Mirrors++
			case 's':
				report.Stripes++
			}
		}
		if overflow {
			report.OverflowBytes = -1 // unknown without reading the dumps
		}
		return report, nil
	}

	c.BeginResync(ref.ID, dead)
	defer c.EndResync(ref.ID, dead)

	// Each round: replay the union of the replicas' dumps, then retire
	// exactly the generations we saw (a write that re-dirtied an item during
	// the replay bumps its generation, so the retire leaves it for the next
	// round). Round 1 advances the cursor item by item and finishes by
	// raising it past everything and draining in-flight degraded writes;
	// from then on every foreground write is forwarded, no new damage is
	// logged, and the dump shrinks to empty within a round or two.
	const maxRounds = 64
	for round := 1; ; round++ {
		if round > maxRounds {
			return report, fmt.Errorf("%w: no convergence after %d rounds", ErrResyncAborted, maxRounds)
		}
		report.Rounds = round
		items, overflow := mergeItems(g, dumps)
		for _, it := range items {
			throttle(g.StripeUnit)
			var rerr error
			c.ResyncExclusive(func() {
				rerr = replayItem(c, ref, g, it, dead)
			})
			if rerr != nil {
				return report, fmt.Errorf("%w: replay of %c%d: %v", ErrResyncAborted, it.kind, it.val, rerr)
			}
			switch it.kind {
			case 'u':
				report.Units++
			case 'm':
				report.Mirrors++
			case 's':
				report.Stripes++
			}
			if round == 1 {
				c.AdvanceResyncCursor(ref.ID, dead, it.end)
			}
		}
		if overflow {
			var n int64
			var rerr error
			c.ResyncExclusive(func() {
				n, rerr = reconcileOverflow(c, ref, g, dead)
			})
			if rerr != nil {
				return report, fmt.Errorf("%w: overflow reconcile: %v", ErrResyncAborted, rerr)
			}
			throttle(n)
			report.OverflowBytes += n
		}
		if round == 1 {
			// Terminal cursor: every write from here on forwards. Drain the
			// writes that sampled the old cursor so their MarkDirty records
			// are all on the replicas before the next (final) dumps.
			c.AdvanceResyncCursor(ref.ID, dead, math.MaxInt64)
			if err := drainDegraded(c); err != nil {
				return report, err
			}
		}
		c.NoteResync(int64(len(items)))
		for i, r := range replicas {
			d := dumps[i]
			_, cerr := c.ServerCaller(r).Call(&wire.ClearDirty{
				File: ref, Dead: uint16(dead),
				Units: d.Units, Mirrors: d.Mirrors, Stripes: d.Stripes,
				Overflow: d.Overflow, OverflowGen: d.OverflowGen,
			})
			if cerr != nil {
				return report, fmt.Errorf("%w: clear on server %d: %v", ErrResyncAborted, r, cerr)
			}
		}
		if dumps, err = dumpAll(c, ref, dead, replicas); err != nil {
			return report, err
		}
		done := true
		for _, d := range dumps {
			if len(d.Units) != 0 || len(d.Mirrors) != 0 || len(d.Stripes) != 0 || d.Overflow {
				done = false
			}
		}
		if done {
			break
		}
		if !epochsTrustworthy(dumps) {
			// A MarkDirty replication failed mid-resync and poisoned the
			// epoch; the log can no longer be trusted.
			report.FullRebuild = true
			return report, fullRebuildFallback(c, f, dead, replicas)
		}
	}

	// The log drained: retire the outage's epochs so the next outage starts
	// a clean log.
	for _, r := range replicas {
		if _, cerr := c.ServerCaller(r).Call(&wire.ClearDirty{File: ref, Dead: uint16(dead), All: true}); cerr != nil {
			return report, fmt.Errorf("%w: epoch retire on server %d: %v", ErrResyncAborted, r, cerr)
		}
	}
	return report, nil
}

// drainDegraded waits until no degraded write is inside its
// decide-and-execute section.
func drainDegraded(c *client.Client) error {
	deadline := time.Now().Add(30 * time.Second)
	for c.DegradedWritesInFlight() != 0 {
		if time.Now().After(deadline) {
			return fmt.Errorf("%w: degraded writes did not drain", ErrResyncAborted)
		}
		time.Sleep(100 * time.Microsecond)
	}
	return nil
}

// fullRebuildFallback reconstructs the server in full when the dirty log is
// untrustworthy. Unlike the blank-replacement Rebuild path, the returning
// server may hold stale overflow extents that WriteOverflow (which only
// adds extents) would not remove, so Hybrid wipes them first.
func fullRebuildFallback(c *client.Client, f *client.File, dead int, replicas []int) error {
	c.NoteFullRebuildFallback()
	ref := f.Ref()
	if ref.Scheme == wire.Hybrid {
		if err := wipeOverflow(c, ref, dead); err != nil {
			return fmt.Errorf("recovery: full-rebuild fallback: %w", err)
		}
	}
	if err := Rebuild(c, f, dead); err != nil {
		return fmt.Errorf("recovery: full-rebuild fallback: %w", err)
	}
	for _, r := range replicas {
		if _, err := c.ServerCaller(r).Call(&wire.ClearDirty{File: ref, Dead: uint16(dead), All: true}); err != nil {
			return fmt.Errorf("recovery: full-rebuild fallback: clear on server %d: %w", r, err)
		}
	}
	return nil
}

// wipeOverflow invalidates every overflow extent (both stores) on a server.
func wipeOverflow(c *client.Client, ref wire.FileRef, srv int) error {
	all := []wire.Span{{Off: 0, Len: math.MaxInt64 / 2}}
	if _, err := c.ServerCaller(srv).Call(&wire.InvalidateOverflow{File: ref, Spans: all}); err != nil {
		return err
	}
	_, err := c.ServerCaller(srv).Call(&wire.InvalidateOverflow{File: ref, Spans: all, Mirror: true})
	return err
}

// replayItem reconstructs one dirty-log item onto the recovering server
// from the surviving redundancy. Called under the client's replay gate, so
// no foreground write from the coordinating client is mid-flight.
func replayItem(c *client.Client, ref wire.FileRef, g raid.Geometry, it resyncItem, dead int) error {
	span := wire.Span{Off: g.UnitStart(it.val), Len: g.StripeUnit}
	switch it.kind {
	case 'u':
		var data []byte
		if ref.Scheme == wire.Raid1 {
			resp, err := c.ServerCaller(g.MirrorServerOf(it.val)).Call(
				&wire.ReadMirror{File: ref, Spans: []wire.Span{span}})
			if err != nil {
				return err
			}
			data = resp.(*wire.ReadResp).Data
			if int64(len(data)) != span.Len {
				return fmt.Errorf("short mirror read for unit %d", it.val)
			}
		} else {
			// Reconstruct the unit from parity unit 0 and the other data
			// units. Under Reed-Solomon the first parity row is all ones, so
			// unit 0 is the plain XOR parity and this path covers RS too.
			stripe := it.val / int64(g.DataWidth())
			first, count := g.DataUnitsOf(stripe)
			acc := make([]byte, g.StripeUnit)
			presp, err := c.ServerCaller(g.ParityServerOf(stripe)).Call(
				&wire.ReadParity{File: ref, Stripes: []int64{stripe}})
			if err != nil {
				return err
			}
			copy(acc, presp.(*wire.ReadResp).Data)
			for j := 0; j < count; j++ {
				u := first + int64(j)
				if u == it.val {
					continue
				}
				ud, err := readUnitRaw(c, ref, g, u)
				if err != nil {
					return err
				}
				raid.XORInto(acc, ud)
			}
			data = acc
		}
		_, err := c.ServerCaller(dead).Call(&wire.WriteData{
			File: ref, Spans: []wire.Span{span}, Data: data, Raw: true})
		return err
	case 'm':
		resp, err := c.ServerCaller(g.ServerOf(it.val)).Call(
			&wire.Read{File: ref, Spans: []wire.Span{span}, Raw: true})
		if err != nil {
			return err
		}
		_, err = c.ServerCaller(dead).Call(&wire.WriteMirror{
			File: ref, Spans: []wire.Span{span}, Data: resp.(*wire.ReadResp).Data})
		return err
	case 's':
		var acc []byte
		if ref.Scheme == wire.ReedSolomon {
			// The recovering server holds one specific parity unit of this
			// stripe; recompute exactly that row.
			pu, ok := g.ParityUnitOn(dead, it.val)
			if !ok {
				return fmt.Errorf("stripe %d dirty on server %d, which owns none of its parity", it.val, dead)
			}
			var err error
			if acc, err = rsEncodeUnit(c, ref, g, it.val, pu); err != nil {
				return err
			}
		} else {
			first, count := g.DataUnitsOf(it.val)
			acc = make([]byte, g.StripeUnit)
			for j := 0; j < count; j++ {
				ud, err := readUnitRaw(c, ref, g, first+int64(j))
				if err != nil {
					return err
				}
				raid.XORInto(acc, ud)
			}
		}
		_, err := c.ServerCaller(dead).Call(&wire.WriteParity{
			File: ref, Stripes: []int64{it.val}, Data: acc})
		return err
	}
	return fmt.Errorf("unknown dirty item kind %q", it.kind)
}

// reconcileOverflow rebuilds the recovering server's overflow stores from
// their surviving mirrors. The server returned with its pre-outage overflow
// tables, which may hold extents since invalidated by full-stripe
// migrations it missed — and WriteOverflow only adds extents — so both
// stores are wiped before the re-dump. Returns the bytes rewritten.
func reconcileOverflow(c *client.Client, ref wire.FileRef, g raid.Geometry, dead int) (int64, error) {
	if err := wipeOverflow(c, ref, dead); err != nil {
		return 0, err
	}
	next := (dead + 1) % g.Servers
	prev := (dead - 1 + g.Servers) % g.Servers
	var n int64

	// Primary overflow <- mirror copy held by the next server.
	resp, err := c.ServerCaller(next).Call(&wire.OverflowDump{File: ref, Mirror: true})
	if err != nil {
		return n, err
	}
	dump := resp.(*wire.OverflowDumpResp)
	if len(dump.Extents) > 0 {
		if _, err := c.ServerCaller(dead).Call(&wire.WriteOverflow{
			File: ref, Extents: dump.Extents, Data: dump.Data,
		}); err != nil {
			return n, err
		}
		n += int64(len(dump.Data))
	}

	// Overflow mirror <- previous server's primary overflow.
	resp, err = c.ServerCaller(prev).Call(&wire.OverflowDump{File: ref})
	if err != nil {
		return n, err
	}
	dump = resp.(*wire.OverflowDumpResp)
	if len(dump.Extents) > 0 {
		if _, err := c.ServerCaller(dead).Call(&wire.WriteOverflow{
			File: ref, Extents: dump.Extents, Data: dump.Data, Mirror: true,
		}); err != nil {
			return n, err
		}
		n += int64(len(dump.Data))
	}
	return n, nil
}
