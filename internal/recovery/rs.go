package recovery

import (
	"bytes"
	"fmt"

	"csar/internal/client"
	"csar/internal/core"
	"csar/internal/raid"
	"csar/internal/wire"
)

// This file holds the Reed-Solomon halves of rebuild, verify and resync
// replay. An RS(k, m) stripe occupies all N = k+m servers — every server
// holds exactly one unit of every stripe, either a data unit or one of the
// m parity units — so rebuilding a server means re-deriving its one unit
// per stripe by decoding from any k of the surviving units. Unlike the XOR
// paths, reconstruction tolerates further failures: a rebuild can proceed
// while up to m-1 other servers are still down.

// rsDataIndexOn returns the code index (0..k-1) of the data unit of stripe
// s held by server srv. Only meaningful when srv holds no parity unit of s:
// with k+m servers, every server holds exactly one unit per stripe.
func rsDataIndexOn(g raid.Geometry, srv int, s int64) int {
	n := int64(g.Servers)
	first, _ := g.DataUnitsOf(s)
	return int(((int64(srv)-first)%n + n) % n)
}

// rebuildRS reconstructs server dead's data and parity units for every
// stripe of the file by decoding each stripe from its surviving units. A
// batch of stripes costs one multi-span raw Read and one multi-stripe
// ReadParity per live server, the GF(256) decodes, and one write of each
// kind to the replacement. Servers other than dead that are marked down are
// simply excluded from the survivor set.
func rebuildRS(c *client.Client, f *client.File, dead int, size int64) error {
	g := f.Geometry()
	ref := f.Ref()
	su := g.StripeUnit
	k := g.DataWidth()
	m := g.PU()
	code, err := core.RSOf(g)
	if err != nil {
		return err
	}

	// The survivor set is decided up front by probing, not by the client's
	// circuit breaker: a fresh process (the CLI) has no breaker history, and
	// a second dead server must be discovered before the batched reads, not
	// by failing them. Anything short of k survivors cannot decode.
	excluded := make([]bool, g.Servers)
	live := 0
	for srv := 0; srv < g.Servers; srv++ {
		if srv == dead {
			continue
		}
		if c.Down(srv) {
			excluded[srv] = true
			continue
		}
		if _, err := c.ServerCaller(srv).Call(&wire.Health{}); err != nil {
			excluded[srv] = true
			continue
		}
		live++
	}
	if live < k {
		return fmt.Errorf("recovery: only %d of %d servers reachable, need %d to decode RS(%d, %d)",
			live, g.Servers, k, k, m)
	}

	all := make([]int64, g.StripesIn(size))
	for i := range all {
		all[i] = int64(i)
	}
	batches := chunkInt64(all)
	return runBatches(len(batches), func(bi int) error {
		batch := batches[bi]
		units := make([][][]byte, len(batch)) // per stripe, per code index
		for i := range units {
			units[i] = make([][]byte, k+m)
		}

		for srv := 0; srv < g.Servers; srv++ {
			if srv == dead || excluded[srv] {
				continue
			}
			var dSpans []wire.Span
			var dAt [][2]int // (position in batch, code index)
			var pStripes []int64
			var pAt [][2]int
			for pos, s := range batch {
				if j, ok := g.ParityUnitOn(srv, s); ok {
					pStripes = append(pStripes, s)
					pAt = append(pAt, [2]int{pos, k + j})
				} else {
					di := rsDataIndexOn(g, srv, s)
					first, _ := g.DataUnitsOf(s)
					dSpans = append(dSpans, wire.Span{Off: g.UnitStart(first + int64(di)), Len: su})
					dAt = append(dAt, [2]int{pos, di})
				}
			}
			if len(dSpans) > 0 {
				resp, err := c.ServerCaller(srv).Call(&wire.Read{File: ref, Spans: dSpans, Raw: true})
				if err != nil {
					return err
				}
				data := resp.(*wire.ReadResp).Data
				if int64(len(data)) != int64(len(dSpans))*su {
					return fmt.Errorf("recovery: short unit read from server %d", srv)
				}
				for i, at := range dAt {
					units[at[0]][at[1]] = data[int64(i)*su : int64(i+1)*su]
				}
			}
			if len(pStripes) > 0 {
				resp, err := c.ServerCaller(srv).Call(&wire.ReadParity{File: ref, Stripes: pStripes})
				if err != nil {
					return err
				}
				data := resp.(*wire.ReadResp).Data
				if int64(len(data)) != int64(len(pStripes))*su {
					return fmt.Errorf("recovery: short parity read from server %d", srv)
				}
				for i, at := range pAt {
					units[at[0]][at[1]] = data[int64(i)*su : int64(i+1)*su]
				}
			}
		}

		// Decode each stripe and collect the dead server's unit.
		var dSpans []wire.Span
		var dData []byte
		var pStripes []int64
		var pData []byte
		for pos, s := range batch {
			if err := code.Reconstruct(units[pos]); err != nil {
				return fmt.Errorf("recovery: stripe %d: %w", s, err)
			}
			if j, ok := g.ParityUnitOn(dead, s); ok {
				pStripes = append(pStripes, s)
				pData = append(pData, units[pos][k+j]...)
			} else {
				di := rsDataIndexOn(g, dead, s)
				first, _ := g.DataUnitsOf(s)
				dSpans = append(dSpans, wire.Span{Off: g.UnitStart(first + int64(di)), Len: su})
				dData = append(dData, units[pos][di]...)
			}
		}
		if len(dSpans) > 0 {
			if _, err := c.ServerCaller(dead).Call(&wire.WriteData{
				File: ref, Spans: dSpans, Data: dData, Raw: true}); err != nil {
				return err
			}
		}
		if len(pStripes) > 0 {
			if _, err := c.ServerCaller(dead).Call(&wire.WriteParity{
				File: ref, Stripes: pStripes, Data: pData}); err != nil {
				return err
			}
		}
		return nil
	})
}

// verifyRS checks every stripe of a Reed-Solomon file byte-for-byte: the m
// parity units each server holds must equal the encoding of the stripe's k
// data units. There is no checksum shortcut here — GF(256) coefficient rows
// are not XOR-linear over per-unit CRCs the way single parity is — so the
// verification reads full units.
func verifyRS(c *client.Client, f *client.File) ([]string, error) {
	g := f.Geometry()
	ref := f.Ref()
	size := f.Size()
	k := g.DataWidth()
	m := g.PU()
	code, err := core.RSOf(g)
	if err != nil {
		return nil, err
	}
	var problems []string
	parity := make([][]byte, m)
	for j := range parity {
		parity[j] = make([]byte, g.StripeUnit)
	}
	for s := int64(0); s <= g.StripeOf(size - 1); s++ {
		first, _ := g.DataUnitsOf(s)
		data := make([][]byte, k)
		for i := 0; i < k; i++ {
			d, err := readUnitRaw(c, ref, g, first+int64(i))
			if err != nil {
				return nil, err
			}
			data[i] = d
		}
		code.EncodeInto(parity, data)
		for j := 0; j < m; j++ {
			presp, err := c.ServerCaller(g.ParityServerOfUnit(s, j)).Call(
				&wire.ReadParity{File: ref, Stripes: []int64{s}})
			if err != nil {
				return nil, err
			}
			if !bytes.Equal(parity[j], presp.(*wire.ReadResp).Data) {
				problems = append(problems, fmt.Sprintf(
					"stripe %d: parity unit %d does not match data", s, j))
			}
		}
	}
	return problems, nil
}

// rsEncodeUnit recomputes parity unit j of one stripe from its data units,
// read live from their servers. Used by intent replay and resync.
func rsEncodeUnit(c *client.Client, ref wire.FileRef, g raid.Geometry, stripe int64, j int) ([]byte, error) {
	code, err := core.RSOf(g)
	if err != nil {
		return nil, err
	}
	first, count := g.DataUnitsOf(stripe)
	data := make([][]byte, count)
	for i := 0; i < count; i++ {
		d, err := readUnitRaw(c, ref, g, first+int64(i))
		if err != nil {
			return nil, err
		}
		data[i] = d
	}
	out := make([]byte, g.StripeUnit)
	code.EncodeUnitInto(j, out, data)
	return out, nil
}
