package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"
)

// WriteProm renders a snapshot in the Prometheus text exposition format.
// Every metric is prefixed "csar_"; histogram buckets use the power-of-two
// nanosecond upper bounds converted to seconds, cumulatively, ending in
// +Inf, with _sum in seconds and _count as usual. Empty buckets are elided
// (64 le-lines per histogram would drown scrapes), except the +Inf line,
// which is always present.
func WriteProm(w io.Writer, s Snapshot) {
	for _, kv := range s.Counters {
		fmt.Fprintf(w, "# TYPE csar_%s counter\ncsar_%s %d\n", promName(kv.Name), promName(kv.Name), kv.Value)
	}
	for _, kv := range s.Gauges {
		fmt.Fprintf(w, "# TYPE csar_%s gauge\ncsar_%s %d\n", promName(kv.Name), promName(kv.Name), kv.Value)
	}
	for _, h := range s.Hists {
		name := promName(h.Name)
		fmt.Fprintf(w, "# TYPE csar_%s histogram\n", name)
		var cum int64
		for i := 0; i < NumBuckets; i++ {
			if h.Buckets[i] == 0 {
				continue
			}
			cum += h.Buckets[i]
			le := BucketUpper(i).Seconds()
			fmt.Fprintf(w, "csar_%s_bucket{le=%q} %d\n", name, fmt.Sprintf("%g", le), cum)
		}
		fmt.Fprintf(w, "csar_%s_bucket{le=\"+Inf\"} %d\n", name, h.Count)
		fmt.Fprintf(w, "csar_%s_sum %g\n", name, h.Sum.Seconds())
		fmt.Fprintf(w, "csar_%s_count %d\n", name, h.Count)
	}
}

// promName maps an instrument name to a Prometheus-legal metric name.
func promName(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		}
		return '_'
	}, name)
}

// statuszHist is the JSON shape of one histogram on /statusz.
type statuszHist struct {
	Count int64 `json:"count"`
	P50US int64 `json:"p50_us"`
	P95US int64 `json:"p95_us"`
	P99US int64 `json:"p99_us"`
	MaxUS int64 `json:"max_us"`
}

// statuszBody renders a snapshot as the /statusz JSON document.
func statuszBody(s Snapshot, extra map[string]any) map[string]any {
	counters := map[string]int64{}
	for _, kv := range s.Counters {
		counters[kv.Name] = kv.Value
	}
	gauges := map[string]int64{}
	for _, kv := range s.Gauges {
		gauges[kv.Name] = kv.Value
	}
	hists := map[string]statuszHist{}
	for _, h := range s.Hists {
		hists[h.Name] = statuszHist{
			Count: h.Count,
			P50US: h.P50().Microseconds(),
			P95US: h.P95().Microseconds(),
			P99US: h.P99().Microseconds(),
			MaxUS: h.Max.Microseconds(),
		}
	}
	body := map[string]any{
		"counters":   counters,
		"gauges":     gauges,
		"histograms": hists,
	}
	for k, v := range extra {
		body[k] = v
	}
	return body
}

// ServeDebug starts the opt-in debug HTTP listener of a daemon: /metrics in
// Prometheus text format, /statusz as JSON, and the Go pprof handlers under
// /debug/pprof/. status, if non-nil, contributes extra top-level fields to
// /statusz (the daemon's identity: index, listen address, uptime).
//
// The listener is meant for operators, not the public internet: it has no
// authentication, and /debug/pprof can reveal memory contents. Daemons
// default it off, and deployments should bind it to localhost or an
// administrative network (see DESIGN.md, "Observability").
//
// Close the returned listener to stop serving.
func ServeDebug(addr string, reg *Registry, status func() map[string]any) (io.Closer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		WriteProm(w, reg.Snapshot())
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, _ *http.Request) {
		var extra map[string]any
		if status != nil {
			extra = status()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(statuszBody(reg.Snapshot(), extra)) //nolint:errcheck // best-effort debug endpoint
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln) //nolint:errcheck // exits when the listener closes
	return ln, nil
}
