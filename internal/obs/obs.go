// Package obs is the shared observability layer of the CSAR reproduction:
// lock-free latency histograms, named counters and gauges, a registry that
// snapshots them, and the trace IDs that correlate a client operation with
// the server-side work it caused.
//
// The paper's evaluation is entirely about where time goes — full-stripe vs
// read-modify-write vs overflow paths, parity-lock waits, server write
// buffering — so every layer of this implementation (client, I/O daemon,
// scrub and recovery passes, the bench harness) records into the same
// primitives. Histograms use power-of-two buckets: an observation of d
// nanoseconds lands in bucket bits.Len64(d), so recording is one atomic add
// with no locks, and a percentile estimate is accurate to within one bucket
// (a factor of two), which is plenty to tell a 100µs RPC from a 10ms one.
package obs

import (
	crand "crypto/rand"
	"encoding/binary"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// NumBuckets is the number of histogram buckets: bucket i holds
// observations whose nanosecond count has bit length i, i.e. durations in
// [2^(i-1), 2^i). Bucket 0 holds zero-duration observations (an untimed
// clock, or sub-nanosecond noise). 64 bit lengths + the zero bucket.
const NumBuckets = 65

// Histogram is a lock-free latency histogram with power-of-two buckets.
// Observe is safe for concurrent use and never loses counts; Snapshot may
// run concurrently with observers (it reads atomically per field, so a
// snapshot taken mid-burst can be off by in-flight observations but is
// never corrupt).
type Histogram struct {
	counts [NumBuckets]atomic.Int64
	sum    atomic.Int64 // total nanoseconds observed
	max    atomic.Int64 // largest single observation, nanoseconds
}

// bucketOf maps a duration to its bucket index.
func bucketOf(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	return bits.Len64(uint64(d))
}

// BucketUpper returns the inclusive upper bound of bucket i in nanoseconds:
// the largest duration that lands in it.
func BucketUpper(i int) time.Duration {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return time.Duration(int64(^uint64(0) >> 1))
	}
	return time.Duration(int64(1)<<uint(i) - 1)
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[bucketOf(d)].Add(1)
	h.sum.Add(int64(d))
	for {
		cur := h.max.Load()
		if int64(d) <= cur || h.max.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// HistSnap is a point-in-time copy of one histogram, named.
type HistSnap struct {
	Name    string
	Count   int64
	Sum     time.Duration
	Max     time.Duration
	Buckets [NumBuckets]int64
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistSnap {
	var s HistSnap
	for i := range h.counts {
		n := h.counts[i].Load()
		s.Buckets[i] = n
		s.Count += n
	}
	s.Sum = time.Duration(h.sum.Load())
	s.Max = time.Duration(h.max.Load())
	return s
}

// Quantile estimates the q-th quantile (0 < q <= 1) as the upper bound of
// the bucket where the cumulative count crosses q·Count — within one
// power-of-two bucket of the exact value. Zero when the histogram is empty.
func (s HistSnap) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	// Nearest-rank: ceil(q·N). Truncating instead would drop the slowest
	// sample from p99 at small counts (int64(0.99*5) = 4 of 5).
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum int64
	for i := 0; i < NumBuckets; i++ {
		cum += s.Buckets[i]
		if cum >= rank {
			return BucketUpper(i)
		}
	}
	return s.Max
}

// P50, P95 and P99 are the quantiles every stats consumer wants.
func (s HistSnap) P50() time.Duration { return s.Quantile(0.50) }
func (s HistSnap) P95() time.Duration { return s.Quantile(0.95) }
func (s HistSnap) P99() time.Duration { return s.Quantile(0.99) }

// Mean returns the average observation; zero when empty.
func (s HistSnap) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// TrimmedBuckets returns a copy of the bucket counts with trailing empty
// buckets elided (nil when the histogram is empty) — the compact form the
// Stats RPC ships.
func (s HistSnap) TrimmedBuckets() []int64 {
	last := -1
	for i := NumBuckets - 1; i >= 0; i-- {
		if s.Buckets[i] != 0 {
			last = i
			break
		}
	}
	if last < 0 {
		return nil
	}
	return append([]int64(nil), s.Buckets[:last+1]...)
}

// SnapFromDump rebuilds a histogram snapshot from its shipped form (the
// inverse of TrimmedBuckets plus the scalar fields). Sum and Max are
// nanoseconds. Buckets beyond NumBuckets are ignored.
func SnapFromDump(name string, count, sum, max int64, buckets []int64) HistSnap {
	h := HistSnap{
		Name:  name,
		Count: count,
		Sum:   time.Duration(sum),
		Max:   time.Duration(max),
	}
	for i, v := range buckets {
		if i >= NumBuckets {
			break
		}
		h.Buckets[i] = v
	}
	return h
}

// merge folds o into s (same name or the caller doesn't care).
func (s *HistSnap) merge(o HistSnap) {
	s.Count += o.Count
	s.Sum += o.Sum
	if o.Max > s.Max {
		s.Max = o.Max
	}
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
}

// Counter is a named monotonic count.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// KV is one named value in a snapshot (a counter or an evaluated gauge).
type KV struct {
	Name  string
	Value int64
}

// Snapshot is a point-in-time copy of a registry: counters, evaluated
// gauges, and histograms, each sorted by name.
type Snapshot struct {
	Counters []KV
	Gauges   []KV
	Hists    []HistSnap
}

// Hist returns the named histogram snapshot and whether it exists.
func (s Snapshot) Hist(name string) (HistSnap, bool) {
	for _, h := range s.Hists {
		if h.Name == name {
			return h, true
		}
	}
	return HistSnap{}, false
}

// Counter returns the named counter's value (zero if absent).
func (s Snapshot) Counter(name string) int64 {
	for _, kv := range s.Counters {
		if kv.Name == name {
			return kv.Value
		}
	}
	return 0
}

// Merge combines snapshots from several sources (e.g. every client a bench
// harness created): same-name histograms and counters are summed, gauges
// are summed too (they are point-in-time, but summing per-source levels is
// the aggregate level).
func Merge(snaps ...Snapshot) Snapshot {
	hists := map[string]*HistSnap{}
	counters := map[string]int64{}
	gauges := map[string]int64{}
	for _, s := range snaps {
		for _, h := range s.Hists {
			if cur, ok := hists[h.Name]; ok {
				cur.merge(h)
			} else {
				hh := h
				hists[h.Name] = &hh
			}
		}
		for _, kv := range s.Counters {
			counters[kv.Name] += kv.Value
		}
		for _, kv := range s.Gauges {
			gauges[kv.Name] += kv.Value
		}
	}
	var out Snapshot
	for _, h := range hists {
		out.Hists = append(out.Hists, *h)
	}
	for n, v := range counters {
		out.Counters = append(out.Counters, KV{n, v})
	}
	for n, v := range gauges {
		out.Gauges = append(out.Gauges, KV{n, v})
	}
	sort.Slice(out.Hists, func(i, j int) bool { return out.Hists[i].Name < out.Hists[j].Name })
	sort.Slice(out.Counters, func(i, j int) bool { return out.Counters[i].Name < out.Counters[j].Name })
	sort.Slice(out.Gauges, func(i, j int) bool { return out.Gauges[i].Name < out.Gauges[j].Name })
	return out
}

// Registry holds a process's (or one subsystem's) named instruments.
// Hist and Counter get-or-create, so callers keep no instrument handles of
// their own; the name is the identity.
type Registry struct {
	mu       sync.Mutex
	hists    map[string]*Histogram
	counters map[string]*Counter
	gauges   map[string]func() int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		hists:    make(map[string]*Histogram),
		counters: make(map[string]*Counter),
		gauges:   make(map[string]func() int64),
	}
}

// Hist returns the named histogram, creating it on first use.
func (r *Registry) Hist(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// RegisterGauge installs a gauge: fn is evaluated at every Snapshot (and
// /metrics render), so it must be cheap and safe to call from any
// goroutine. Re-registering a name replaces the function.
func (r *Registry) RegisterGauge(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gauges[name] = fn
}

// Snapshot captures every instrument, sorted by name. Gauge functions run
// outside the registry lock (they may take their own locks).
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]func() int64, len(r.gauges))
	for n, fn := range r.gauges {
		gauges[n] = fn
	}
	r.mu.Unlock()

	var s Snapshot
	for n, h := range hists {
		hs := h.Snapshot()
		hs.Name = n
		s.Hists = append(s.Hists, hs)
	}
	for n, c := range counters {
		s.Counters = append(s.Counters, KV{n, c.Load()})
	}
	for n, fn := range gauges {
		s.Gauges = append(s.Gauges, KV{n, fn()})
	}
	sort.Slice(s.Hists, func(i, j int) bool { return s.Hists[i].Name < s.Hists[j].Name })
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	return s
}

// traceBase is a per-process random base for trace IDs; mixing a counter
// into it keeps IDs unique within the process, and the 64-bit random base
// keeps two processes' sequences from colliding in practice.
var (
	traceBase    uint64
	traceCounter atomic.Uint64
	traceOnce    sync.Once
)

// NewTraceID returns a fresh non-zero operation trace ID. A trace ID is
// minted at the client once per logical operation (one ReadAt or WriteAt),
// rides the wire header of every RPC the operation issues, and shows up in
// server-side slow-op logs — the correlation handle between a slow user
// write and the parity-lock wait that caused it. Zero means "untraced".
func NewTraceID() uint64 {
	traceOnce.Do(func() {
		var b [8]byte
		if _, err := crand.Read(b[:]); err == nil {
			traceBase = binary.LittleEndian.Uint64(b[:])
		} else {
			traceBase = uint64(time.Now().UnixNano())
		}
	})
	for {
		// The golden-ratio stride walks the whole 2^64 space before repeating.
		id := traceBase + traceCounter.Add(1)*0x9E3779B97F4A7C15
		if id != 0 {
			return id
		}
	}
}

// Span times one traced operation: mint it at the operation's entry point,
// thread Trace through the RPCs, and hand Elapsed (or the caller's own
// simulated-time measurement) to a histogram at the end.
type Span struct {
	Trace uint64
	Start time.Time
}

// StartSpan begins a traced operation.
func StartSpan() Span { return Span{Trace: NewTraceID(), Start: time.Now()} }

// Elapsed returns the wall time since the span started. Callers running
// under a simulated clock should convert Start with their clock instead.
func (s Span) Elapsed() time.Duration { return time.Since(s.Start) }
