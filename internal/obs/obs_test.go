package obs

import (
	"encoding/json"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHistogramConcurrentObserve is the property test from the issue:
// concurrent Observe calls never lose counts, and percentile estimates stay
// within one power-of-two bucket of the exact value computed from the same
// observations sorted. Run under -race by `make obs`.
func TestHistogramConcurrentObserve(t *testing.T) {
	const (
		goroutines = 16
		perG       = 2000
	)
	rng := rand.New(rand.NewSource(42))
	obs := make([][]time.Duration, goroutines)
	var all []time.Duration
	for g := range obs {
		obs[g] = make([]time.Duration, perG)
		for i := range obs[g] {
			// Log-uniform durations from ns to ~1s, plus occasional zeros.
			d := time.Duration(0)
			if rng.Intn(50) != 0 {
				d = time.Duration(1 + rng.Int63n(int64(1)<<uint(1+rng.Intn(30))))
			}
			obs[g][i] = d
			all = append(all, d)
		}
	}

	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(ds []time.Duration) {
			defer wg.Done()
			for _, d := range ds {
				h.Observe(d)
			}
		}(obs[g])
	}
	wg.Wait()

	s := h.Snapshot()
	if want := int64(goroutines * perG); s.Count != want {
		t.Fatalf("lost counts: Count = %d, want %d", s.Count, want)
	}
	var wantSum time.Duration
	var wantMax time.Duration
	for _, d := range all {
		wantSum += d
		if d > wantMax {
			wantMax = d
		}
	}
	if s.Sum != wantSum {
		t.Errorf("Sum = %v, want %v", s.Sum, wantSum)
	}
	if s.Max != wantMax {
		t.Errorf("Max = %v, want %v", s.Max, wantMax)
	}

	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 1.0} {
		rank := int(q * float64(len(all)))
		if rank < 1 {
			rank = 1
		}
		exact := all[rank-1]
		got := s.Quantile(q)
		// The estimate is the upper bound of the exact value's bucket, so it
		// must be >= exact and within the same power-of-two bucket.
		if got < exact {
			t.Errorf("Quantile(%v) = %v underestimates exact %v", q, got, exact)
		}
		if got > BucketUpper(bucketOf(exact)) {
			t.Errorf("Quantile(%v) = %v beyond bucket of exact %v (upper %v)",
				q, got, exact, BucketUpper(bucketOf(exact)))
		}
	}
}

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		d      time.Duration
		bucket int
	}{
		{-5, 0},
		{0, 0},
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 3},
		{1023, 10},
		{1024, 11},
	}
	for _, c := range cases {
		if got := bucketOf(c.d); got != c.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", c.d, got, c.bucket)
		}
		if up := BucketUpper(bucketOf(c.d)); c.d > up {
			t.Errorf("BucketUpper(bucketOf(%d)) = %d < observation", c.d, up)
		}
	}
	if BucketUpper(1) != 1 || BucketUpper(2) != 3 || BucketUpper(3) != 7 {
		t.Errorf("BucketUpper small buckets wrong: %d %d %d",
			BucketUpper(1), BucketUpper(2), BucketUpper(3))
	}
}

func TestQuantileEmptyAndSingle(t *testing.T) {
	var h Histogram
	if q := h.Snapshot().Quantile(0.99); q != 0 {
		t.Errorf("empty Quantile = %v, want 0", q)
	}
	h.Observe(100 * time.Microsecond)
	s := h.Snapshot()
	for _, q := range []float64{0.01, 0.5, 1} {
		got := s.Quantile(q)
		if got < 100*time.Microsecond || got > BucketUpper(bucketOf(100*time.Microsecond)) {
			t.Errorf("single-sample Quantile(%v) = %v", q, got)
		}
	}
}

func TestRegistrySnapshotAndMerge(t *testing.T) {
	r1 := NewRegistry()
	r1.Hist("op_read").Observe(time.Millisecond)
	r1.Hist("op_read").Observe(3 * time.Millisecond)
	r1.Counter("bytes_in").Add(100)
	r1.RegisterGauge("locks_held", func() int64 { return 2 })

	r2 := NewRegistry()
	r2.Hist("op_read").Observe(2 * time.Millisecond)
	r2.Hist("op_write").Observe(time.Millisecond)
	r2.Counter("bytes_in").Add(50)
	r2.Counter("bytes_out").Add(7)
	r2.RegisterGauge("locks_held", func() int64 { return 1 })

	m := Merge(r1.Snapshot(), r2.Snapshot())
	if h, ok := m.Hist("op_read"); !ok || h.Count != 3 || h.Sum != 6*time.Millisecond {
		t.Errorf("merged op_read = %+v ok=%v", h, ok)
	}
	if h, ok := m.Hist("op_write"); !ok || h.Count != 1 {
		t.Errorf("merged op_write = %+v ok=%v", h, ok)
	}
	if m.Counter("bytes_in") != 150 || m.Counter("bytes_out") != 7 {
		t.Errorf("merged counters: bytes_in=%d bytes_out=%d",
			m.Counter("bytes_in"), m.Counter("bytes_out"))
	}
	var gauge int64
	for _, kv := range m.Gauges {
		if kv.Name == "locks_held" {
			gauge = kv.Value
		}
	}
	if gauge != 3 {
		t.Errorf("merged gauge locks_held = %d, want 3", gauge)
	}
	// Sorted output, so snapshots are stable for table rendering.
	if !sort.SliceIsSorted(m.Hists, func(i, j int) bool { return m.Hists[i].Name < m.Hists[j].Name }) {
		t.Error("merged hists not sorted")
	}
}

func TestTraceIDsUniqueAndNonZero(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := 0; i < 10000; i++ {
		id := NewTraceID()
		if id == 0 {
			t.Fatal("zero trace ID")
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %#x after %d draws", id, i)
		}
		seen[id] = true
	}
}

func TestWriteProm(t *testing.T) {
	r := NewRegistry()
	r.Hist("rpc_read").Observe(100 * time.Microsecond)
	r.Hist("rpc_read").Observe(200 * time.Microsecond)
	r.Counter("bytes_in").Add(42)
	r.RegisterGauge("locks_held", func() int64 { return 5 })

	var b strings.Builder
	WriteProm(&b, r.Snapshot())
	out := b.String()
	for _, want := range []string{
		"# TYPE csar_bytes_in counter",
		"csar_bytes_in 42",
		"# TYPE csar_locks_held gauge",
		"csar_locks_held 5",
		"# TYPE csar_rpc_read histogram",
		`csar_rpc_read_bucket{le="+Inf"} 2`,
		"csar_rpc_read_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom output missing %q:\n%s", want, out)
		}
	}
}

func TestServeDebugEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Hist("op_write").Observe(time.Millisecond)
	r.Counter("bytes_out").Add(9)
	closer, err := ServeDebug("127.0.0.1:0", r, func() map[string]any {
		return map[string]any{"index": 3}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	addr := closer.(net.Listener).Addr().String()

	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return string(body)
	}

	if m := get("/metrics"); !strings.Contains(m, "csar_op_write_count 1") ||
		!strings.Contains(m, "csar_bytes_out 9") {
		t.Errorf("/metrics missing expected series:\n%s", m)
	}
	var status map[string]any
	if err := json.Unmarshal([]byte(get("/statusz")), &status); err != nil {
		t.Fatalf("/statusz not JSON: %v", err)
	}
	if status["index"] != float64(3) {
		t.Errorf("/statusz index = %v, want 3", status["index"])
	}
	if _, ok := status["histograms"].(map[string]any)["op_write"]; !ok {
		t.Errorf("/statusz missing op_write histogram: %v", status)
	}
	if p := get("/debug/pprof/cmdline"); p == "" {
		t.Error("/debug/pprof/cmdline empty")
	}
}

func BenchmarkObserve(b *testing.B) {
	var h Histogram
	b.RunParallel(func(pb *testing.PB) {
		d := 123 * time.Microsecond
		for pb.Next() {
			h.Observe(d)
			d += time.Nanosecond
		}
	})
	b.ReportMetric(float64(h.Snapshot().Count), "observations")
}
