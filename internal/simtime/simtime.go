// Package simtime provides the scaled time base of the CSAR performance
// model.
//
// All modeled costs (network transfer, disk seek and transfer) are expressed
// in simulated time. A Clock maps simulated time onto wall-clock time by a
// configurable scale factor, so that an experiment modeling tens of seconds
// of 2003-era hardware runs in tens of milliseconds, while concurrency
// effects (lock contention, pipeline overlap, shared-link saturation) still
// emerge from real goroutine scheduling. A zero or nil Clock disables
// timing entirely; correctness tests run untimed.
package simtime

import (
	"container/heap"
	"runtime"
	"sync"
	"time"
)

// spinThreshold is how much of the tail of a modeled sleep is burned by
// yielding instead of time.Sleep. The host timer only fires every ~1ms, so
// a plain time.Sleep overshoots sub-millisecond modeled costs by an entire
// millisecond — and because sim time is wall time divided by Scale, every
// microsecond of overshoot is billed to the model as if the hardware were
// slower. Sleeping coarse and yield-spinning the final stretch keeps the
// modeled timeline accurate to the scheduler quantum instead of the timer
// tick.
const spinThreshold = 2 * time.Millisecond

// SleepUntil blocks until the wall-clock instant target, with sub-timer-tick
// precision. Returns immediately if target has passed.
//
// The precision tail is not spun per goroutine: with hundreds of concurrent
// RPC and limiter sleeps, one yield loop per sleeper would saturate the host
// CPUs and itself distort the modeled timeline it exists to protect,
// especially on loaded or core-limited machines. Instead every sleeper in
// its final stretch parks on the shared waker — a single goroutine that
// yield-spins while tails are pending and fires each sleeper at its target —
// so the spin burns at most one core no matter how many sleeps are in
// flight, and all of them still wake at scheduler-quantum precision.
func SleepUntil(target time.Time) {
	d := time.Until(target)
	if d <= 0 {
		return
	}
	if d > spinThreshold {
		time.Sleep(d - spinThreshold)
		if !time.Now().Before(target) {
			return
		}
	}
	<-sharedWaker.add(target)
}

// sharedWaker is the process-wide precision-tail waker.
var sharedWaker waker

// waker wakes registered sleepers at their wall-clock targets. One run
// goroutine exists only while sleepers are parked; it yield-spins between
// checks, so total spin cost is bounded by one core regardless of the number
// of concurrent sleeps.
type waker struct {
	mu      sync.Mutex
	heap    waiters
	running bool
}

type waiter struct {
	target time.Time
	ch     chan struct{}
}

// waiters is a min-heap of parked sleepers ordered by wakeup target.
type waiters []waiter

func (h waiters) Len() int           { return len(h) }
func (h waiters) Less(i, j int) bool { return h[i].target.Before(h[j].target) }
func (h waiters) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *waiters) Push(x any)        { *h = append(*h, x.(waiter)) }
func (h *waiters) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// add parks a sleeper until target and returns the channel closed at (or
// just after) that instant, starting the run goroutine if none is live.
func (w *waker) add(target time.Time) chan struct{} {
	ch := make(chan struct{})
	w.mu.Lock()
	heap.Push(&w.heap, waiter{target, ch})
	if !w.running {
		w.running = true
		go w.run()
	}
	w.mu.Unlock()
	return ch
}

func (w *waker) run() {
	for {
		w.mu.Lock()
		now := time.Now()
		for len(w.heap) > 0 && !w.heap[0].target.After(now) {
			close(heap.Pop(&w.heap).(waiter).ch)
		}
		if len(w.heap) == 0 {
			w.running = false
			w.mu.Unlock()
			return
		}
		w.mu.Unlock()
		runtime.Gosched()
	}
}

// Clock maps simulated durations to wall-clock sleeps.
type Clock struct {
	// Scale is the wall-clock duration of one simulated second.
	// Zero disables all modeled delays.
	Scale time.Duration
}

// Timed reports whether the clock models time at all.
func (c *Clock) Timed() bool { return c != nil && c.Scale > 0 }

// wall converts a simulated duration to a wall duration.
func (c *Clock) wall(sim time.Duration) time.Duration {
	if !c.Timed() {
		return 0
	}
	return time.Duration(float64(sim) * float64(c.Scale) / float64(time.Second))
}

// Wall converts a simulated duration to the wall-clock duration it occupies
// under this clock's scale; zero on an untimed clock. Fault schedules use it
// to fire at simulated-time offsets.
func (c *Clock) Wall(sim time.Duration) time.Duration { return c.wall(sim) }

// Sleep blocks for the wall-clock equivalent of the simulated duration.
func (c *Clock) Sleep(sim time.Duration) {
	if w := c.wall(sim); w > 0 {
		SleepUntil(time.Now().Add(w))
	}
}

// SimSince converts the wall-clock time elapsed since start into simulated
// time. It reports zero on an untimed clock.
func (c *Clock) SimSince(start time.Time) time.Duration {
	if !c.Timed() {
		return 0
	}
	wall := time.Since(start)
	return time.Duration(float64(wall) * float64(time.Second) / float64(c.Scale))
}

// Limiter models a serially shared resource with a fixed throughput — a NIC
// direction, a disk arm — in simulated bytes per simulated second. Users
// charge work against it; concurrent users queue in FIFO order, so a shared
// link saturates exactly like a real one. The zero-rate or untimed limiter
// admits everything instantly.
type Limiter struct {
	clock *Clock
	// wallPerByte is the wall-clock cost of transferring one byte.
	wallPerByte float64

	mu       sync.Mutex
	nextFree time.Time // wall-clock instant at which the resource is idle
}

// NewLimiter returns a limiter for a resource moving bytesPerSimSecond.
// A non-positive rate or an untimed clock yields an unlimited limiter.
func NewLimiter(clock *Clock, bytesPerSimSecond float64) *Limiter {
	l := &Limiter{clock: clock}
	if clock.Timed() && bytesPerSimSecond > 0 {
		l.wallPerByte = float64(clock.Scale) / bytesPerSimSecond
	}
	return l
}

// Acquire charges the transfer of n bytes and blocks until the modeled
// resource has carried them.
func (l *Limiter) Acquire(n int64) {
	if l == nil || l.wallPerByte == 0 || n <= 0 {
		return
	}
	l.wait(time.Duration(float64(n) * l.wallPerByte))
}

// AcquireDur charges a fixed simulated duration (e.g. a disk seek) against
// the resource's serial timeline.
func (l *Limiter) AcquireDur(sim time.Duration) {
	if l == nil || !l.clock.Timed() || sim <= 0 {
		return
	}
	l.wait(l.clock.wall(sim))
}

func (l *Limiter) wait(wall time.Duration) {
	SleepUntil(l.reserve(wall))
}

func (l *Limiter) reserve(wall time.Duration) time.Time {
	l.mu.Lock()
	now := time.Now()
	start := l.nextFree
	if start.Before(now) {
		start = now
	}
	l.nextFree = start.Add(wall)
	target := l.nextFree
	l.mu.Unlock()
	return target
}

// Reserve books the transfer of n bytes on the resource's serial timeline
// without blocking, and returns the wall-clock instant at which the
// transfer completes. Callers waiting on several resources at once (e.g.
// the sender's and receiver's NICs, which operate concurrently) reserve on
// each and sleep until the latest instant. The zero time is returned when
// no delay is modeled.
func (l *Limiter) Reserve(n int64) time.Time {
	if l == nil || l.wallPerByte == 0 || n <= 0 {
		return time.Time{}
	}
	return l.reserve(time.Duration(float64(n) * l.wallPerByte))
}
