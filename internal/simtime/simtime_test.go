package simtime

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestUntimedClock(t *testing.T) {
	var nilClock *Clock
	if nilClock.Timed() {
		t.Fatal("nil clock must be untimed")
	}
	c := &Clock{}
	if c.Timed() {
		t.Fatal("zero-scale clock must be untimed")
	}
	start := time.Now()
	c.Sleep(time.Hour) // must not block
	if time.Since(start) > 100*time.Millisecond {
		t.Fatal("untimed Sleep blocked")
	}
	if c.SimSince(start) != 0 {
		t.Fatal("untimed SimSince must be zero")
	}
	l := NewLimiter(c, 1)
	l.Acquire(1 << 40) // must not block
	l.AcquireDur(time.Hour)
}

func TestNilLimiter(t *testing.T) {
	var l *Limiter
	l.Acquire(100) // must not panic or block
}

func TestClockScale(t *testing.T) {
	// 1 sim second = 10ms wall; sleeping 2 sim seconds takes about 20ms.
	c := &Clock{Scale: 10 * time.Millisecond}
	start := time.Now()
	c.Sleep(2 * time.Second)
	got := time.Since(start)
	if got < 15*time.Millisecond || got > 200*time.Millisecond {
		t.Fatalf("scaled sleep took %v, want about 20ms", got)
	}
	sim := c.SimSince(start)
	if sim < time.Second || sim > 30*time.Second {
		t.Fatalf("SimSince reported %v, want about 2s", sim)
	}
}

func TestLimiterThroughput(t *testing.T) {
	// 1 sim second = 20ms wall, rate 1e6 B/sim-s. Pushing 2e6 bytes should
	// take about 2 sim seconds = 40ms wall.
	c := &Clock{Scale: 20 * time.Millisecond}
	l := NewLimiter(c, 1e6)
	start := time.Now()
	for i := 0; i < 20; i++ {
		l.Acquire(100000)
	}
	got := time.Since(start)
	if got < 30*time.Millisecond || got > 400*time.Millisecond {
		t.Fatalf("transfer took %v, want about 40ms", got)
	}
}

func TestLimiterSerializesConcurrentUsers(t *testing.T) {
	// Two concurrent users of one link share its bandwidth: total time for
	// 2x work is about 2x the single-user time, not 1x.
	c := &Clock{Scale: 20 * time.Millisecond}
	l := NewLimiter(c, 1e6)
	start := time.Now()
	var wg sync.WaitGroup
	for u := 0; u < 2; u++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				l.Acquire(100000)
			}
		}()
	}
	wg.Wait()
	got := time.Since(start)
	if got < 30*time.Millisecond {
		t.Fatalf("concurrent transfers finished in %v; limiter not shared", got)
	}
}

func TestAcquireDur(t *testing.T) {
	c := &Clock{Scale: 10 * time.Millisecond}
	l := NewLimiter(c, 1e9)
	start := time.Now()
	l.AcquireDur(3 * time.Second) // 30ms wall
	got := time.Since(start)
	if got < 20*time.Millisecond || got > 300*time.Millisecond {
		t.Fatalf("AcquireDur took %v, want about 30ms", got)
	}
}

func TestSleepUntilPast(t *testing.T) {
	start := time.Now()
	SleepUntil(start.Add(-time.Second)) // must not block or park
	if time.Since(start) > 50*time.Millisecond {
		t.Fatal("SleepUntil on a past target blocked")
	}
}

func TestSharedWakerManyConcurrentSleepers(t *testing.T) {
	// Many goroutines in their precision tails at once: every sleeper must
	// wake (no lost waiter when the waker's heap drains and restarts), none
	// before its target, and the spin burden is one goroutine total — the
	// whole staggered batch completes in roughly the longest sleep, not the
	// sum.
	const sleepers = 100
	base := time.Now().Add(2 * time.Millisecond)
	var wg sync.WaitGroup
	errs := make(chan error, sleepers)
	for i := 0; i < sleepers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			target := base.Add(time.Duration(i) * 100 * time.Microsecond)
			SleepUntil(target)
			if time.Now().Before(target) {
				errs <- errors.New("SleepUntil returned before its target")
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := time.Since(base); got > 2*time.Second {
		t.Fatalf("staggered sleepers took %v; waker serialized or lost them", got)
	}

	// The heap has drained and the run goroutine exited; a fresh sleep must
	// restart it rather than park forever.
	start := time.Now()
	SleepUntil(start.Add(time.Millisecond))
	if time.Now().Before(start.Add(time.Millisecond)) {
		t.Fatal("post-drain SleepUntil woke early")
	}
}

func TestZeroAndNegativeCharges(t *testing.T) {
	c := &Clock{Scale: 10 * time.Millisecond}
	l := NewLimiter(c, 1)
	start := time.Now()
	l.Acquire(0)
	l.Acquire(-5)
	l.AcquireDur(0)
	l.AcquireDur(-time.Second)
	if time.Since(start) > 50*time.Millisecond {
		t.Fatal("non-positive charges must be free")
	}
}
