package gf256

import (
	"fmt"
	"sync"
)

// RS is a systematic Reed-Solomon code over GF(256) with k data units and m
// parity units per stripe. Any k of the k+m units suffice to recover the
// rest, so the code tolerates any m simultaneous erasures.
//
// The coding matrix is [I; C]: identity on top (data is stored verbatim),
// and an m×k Cauchy matrix C[j][i] = 1/(x_j+y_i) over distinct field points
// below. Every square submatrix of a Cauchy matrix is invertible, which is
// exactly the MDS condition for the systematic code: losing any d data and
// p parity units (d+p <= m) leaves a decodable system because the d×d
// Cauchy submatrix pairing the surviving parity rows with the lost data
// columns is invertible. Each column is then scaled (submatrix
// invertibility survives nonzero row/column scaling) so parity row 0 is
// all ones — parity unit 0 of RS(k,m) is byte-identical to the RAID5 XOR
// parity, and its encode runs at XOR speed.
type RS struct {
	K, M int
	// rows is the full (k+m)×k coding matrix; rows[0..k-1] form the
	// identity, rows[k..k+m-1] are the parity coefficient rows.
	rows [][]byte
}

// rsCache memoizes codes by (k,m): every file with the same shape shares
// one immutable matrix.
var (
	rsMu    sync.Mutex
	rsCache = map[[2]int]*RS{}
)

// NewRS returns the RS(k,m) code, building and caching its coding matrix.
// k must be at least 1, m at least 1, and k+m at most 256 (the field has
// only 256 distinct evaluation points).
func NewRS(k, m int) (*RS, error) {
	if k < 1 || m < 1 || k+m > 256 {
		return nil, fmt.Errorf("gf256: invalid RS shape k=%d m=%d (need k>=1, m>=1, k+m<=256)", k, m)
	}
	key := [2]int{k, m}
	rsMu.Lock()
	defer rsMu.Unlock()
	if r, ok := rsCache[key]; ok {
		return r, nil
	}
	rows := make([][]byte, k+m)
	for i := 0; i < k; i++ {
		rows[i] = make([]byte, k)
		rows[i][i] = 1
	}
	// Cauchy block over parity points x_j = k+j and data points y_i = i
	// (addition is XOR, so distinctness is all that matters), with column i
	// scaled by the inverse of its row-0 entry to make row 0 all ones.
	for j := 0; j < m; j++ {
		rows[k+j] = make([]byte, k)
		for i := 0; i < k; i++ {
			c := Inv(byte(k+j) ^ byte(i))
			rows[k+j][i] = Mul(c, byte(k)^byte(i)) // = c / C[0][i]
		}
	}
	r := &RS{K: k, M: m, rows: rows}
	rsCache[key] = r
	return r, nil
}

// ParityRow returns the coefficient row of parity unit j (0 <= j < m):
// parity_j = sum_i row[i] * data_i. The returned slice is shared and must
// not be modified.
func (r *RS) ParityRow(j int) []byte { return r.rows[r.K+j] }

// Coef returns the coefficient of data unit i in parity unit j. RMW parity
// deltas use it directly: parity_j ^= Coef(j,i) * (old_i XOR new_i).
func (r *RS) Coef(j, i int) byte { return r.rows[r.K+j][i] }

// EncodeInto computes all m parity units for one stripe of k equal-length
// data units. parity must hold m slices of the data unit length; each is
// zeroed and overwritten.
func (r *RS) EncodeInto(parity, data [][]byte) {
	if len(parity) != r.M || len(data) != r.K {
		panic(fmt.Sprintf("gf256: EncodeInto shape mismatch: %d parity %d data for RS(%d,%d)",
			len(parity), len(data), r.K, r.M))
	}
	for j := 0; j < r.M; j++ {
		p := parity[j]
		for i := range p {
			p[i] = 0
		}
		row := r.ParityRow(j)
		for i, d := range data {
			MulAddSlice(row[i], p, d)
		}
	}
}

// EncodeUnitInto computes just parity unit j into dst (zeroed first).
func (r *RS) EncodeUnitInto(j int, dst []byte, data [][]byte) {
	for i := range dst {
		dst[i] = 0
	}
	row := r.ParityRow(j)
	for i, d := range data {
		MulAddSlice(row[i], dst, d)
	}
}

// Reconstruct fills in the missing units of one stripe. units holds the
// k+m stripe units in code order (data 0..k-1, then parity 0..m-1);
// units[i] is nil for a lost unit and a slice of the unit length
// otherwise. Missing units are allocated, reconstructed from any k present
// ones, and stored back into units. It fails if fewer than k units are
// present.
func (r *RS) Reconstruct(units [][]byte) error {
	n := r.K + r.M
	if len(units) != n {
		panic(fmt.Sprintf("gf256: Reconstruct got %d units for RS(%d,%d)", len(units), r.K, r.M))
	}
	var size int
	present := make([]int, 0, r.K)
	for i, u := range units {
		if u != nil {
			if len(present) < r.K {
				present = append(present, i)
			}
			size = len(u)
		}
	}
	if len(present) < r.K {
		return fmt.Errorf("gf256: RS(%d,%d) stripe has only %d of %d units needed", r.K, r.M, len(present), r.K)
	}

	missingData := false
	for i := 0; i < r.K; i++ {
		if units[i] == nil {
			missingData = true
		}
	}
	if missingData {
		// Invert the k×k submatrix of the surviving rows: data = sub^-1 ×
		// survivors.
		sub := make([][]byte, r.K)
		for i, row := range present {
			sub[i] = r.rows[row]
		}
		dec, err := matInvert(sub)
		if err != nil {
			return fmt.Errorf("gf256: RS(%d,%d) decode: %w", r.K, r.M, err)
		}
		for i := 0; i < r.K; i++ {
			if units[i] != nil {
				continue
			}
			out := make([]byte, size)
			for t, row := range present {
				MulAddSlice(dec[i][t], out, units[row])
			}
			units[i] = out
		}
	}
	// With all data present, missing parity is a straight re-encode.
	for j := 0; j < r.M; j++ {
		if units[r.K+j] != nil {
			continue
		}
		out := make([]byte, size)
		r.EncodeUnitInto(j, out, units[:r.K])
		units[r.K+j] = out
	}
	return nil
}
