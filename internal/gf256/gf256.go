// Package gf256 implements arithmetic over the Galois field GF(2^8) and a
// systematic Reed-Solomon RS(k,m) erasure code built on it.
//
// The field uses the primitive polynomial x^8+x^4+x^3+x^2+1 (0x11d), the
// same polynomial as the Linux RAID6 and most RS implementations, so parity
// bytes are comparable against reference vectors. All products are served
// from a flat 64 KiB multiplication table built at init; the coding loops
// read one table row per coefficient and assemble eight product bytes into
// a machine word before touching the destination, mirroring the
// word-at-a-time XOR loop of raid.XORInto (MulAddSliceBytewise is the
// byte-at-a-time ablation baseline, like raid.XORIntoBytewise).
package gf256

import (
	"encoding/binary"
	"fmt"
)

// poly is the reduction polynomial (x^8 is implicit in the carry-out).
const poly = 0x11d

var (
	// expT[i] = g^i for generator g=2, doubled so products of logs need no
	// modular reduction: expT[logT[a]+logT[b]] is always in range.
	expT [510]byte
	// logT[a] = discrete log of a (logT[0] is unused).
	logT [256]byte
	// mulT[a][b] = a*b in GF(256); the row mulT[c] is the lookup table the
	// coding loops stream through.
	mulT [256][256]byte
	// invT[a] = a^-1 (invT[0] is unused).
	invT [256]byte
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		expT[i] = byte(x)
		expT[i+255] = byte(x)
		logT[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= poly
		}
	}
	for a := 1; a < 256; a++ {
		invT[a] = expT[255-int(logT[a])]
		for b := 1; b < 256; b++ {
			mulT[a][b] = expT[int(logT[a])+int(logT[b])]
		}
	}
}

// Mul returns a*b in GF(256).
func Mul(a, b byte) byte { return mulT[a][b] }

// Inv returns a^-1 in GF(256); it panics on a=0, which has no inverse.
func Inv(a byte) byte {
	if a == 0 {
		panic("gf256: inverse of zero")
	}
	return invT[a]
}

// Div returns a/b in GF(256); it panics on b=0.
func Div(a, b byte) byte {
	if b == 0 {
		panic("gf256: division by zero")
	}
	if a == 0 {
		return 0
	}
	return expT[int(logT[a])+255-int(logT[b])]
}

// MulAddSlice accumulates c*src into dst: dst[i] ^= c*src[i]. The slices
// must have equal length. c=0 is a no-op and c=1 degenerates to the plain
// word-at-a-time XOR; other coefficients stream one mul-table row and fold
// eight product bytes at a time into the destination word.
func MulAddSlice(c byte, dst, src []byte) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("gf256: MulAddSlice length mismatch %d != %d", len(dst), len(src)))
	}
	switch c {
	case 0:
		return
	case 1:
		xorInto(dst, src)
		return
	}
	row := &mulT[c]
	n := len(dst) &^ 7
	for i := 0; i < n; i += 8 {
		s := src[i : i+8 : i+8]
		w := uint64(row[s[0]]) | uint64(row[s[1]])<<8 |
			uint64(row[s[2]])<<16 | uint64(row[s[3]])<<24 |
			uint64(row[s[4]])<<32 | uint64(row[s[5]])<<40 |
			uint64(row[s[6]])<<48 | uint64(row[s[7]])<<56
		d := binary.LittleEndian.Uint64(dst[i:])
		binary.LittleEndian.PutUint64(dst[i:], d^w)
	}
	for i := n; i < len(dst); i++ {
		dst[i] ^= row[src[i]]
	}
}

// MulAddSliceBytewise is the byte-at-a-time variant of MulAddSlice. It
// exists only as the ablation baseline for the GF(256) coding
// microbenchmark.
func MulAddSliceBytewise(c byte, dst, src []byte) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("gf256: MulAddSliceBytewise length mismatch %d != %d", len(dst), len(src)))
	}
	if c == 0 {
		return
	}
	row := &mulT[c]
	for i := range dst {
		dst[i] ^= row[src[i]]
	}
}

// xorInto is the c=1 fast path (dst[i] ^= src[i], one word at a time).
// Duplicated from raid.XORInto so the field kernel stays dependency-free.
func xorInto(dst, src []byte) {
	n := len(dst) &^ 7
	for i := 0; i < n; i += 8 {
		d := binary.LittleEndian.Uint64(dst[i:])
		s := binary.LittleEndian.Uint64(src[i:])
		binary.LittleEndian.PutUint64(dst[i:], d^s)
	}
	for i := n; i < len(dst); i++ {
		dst[i] ^= src[i]
	}
}

// --- matrix arithmetic (row-major [][]byte) ---

// matMul returns a×b for a (r×n) and b (n×c).
func matMul(a, b [][]byte) [][]byte {
	rows, inner, cols := len(a), len(b), len(b[0])
	out := make([][]byte, rows)
	for i := range out {
		row := make([]byte, cols)
		for t := 0; t < inner; t++ {
			if a[i][t] == 0 {
				continue
			}
			mrow := &mulT[a[i][t]]
			for j := 0; j < cols; j++ {
				row[j] ^= mrow[b[t][j]]
			}
		}
		out[i] = row
	}
	return out
}

// matInvert returns m^-1 for a square matrix, or an error if m is singular.
// Gauss-Jordan elimination over GF(256); m is not modified.
func matInvert(m [][]byte) ([][]byte, error) {
	n := len(m)
	// Augmented [work | out], starting as [m | I].
	work := make([][]byte, n)
	out := make([][]byte, n)
	for i := range work {
		work[i] = append([]byte(nil), m[i]...)
		out[i] = make([]byte, n)
		out[i][i] = 1
	}
	for col := 0; col < n; col++ {
		pivot := -1
		for r := col; r < n; r++ {
			if work[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, fmt.Errorf("gf256: singular matrix")
		}
		work[col], work[pivot] = work[pivot], work[col]
		out[col], out[pivot] = out[pivot], out[col]
		if p := work[col][col]; p != 1 {
			ip := invT[p]
			scaleRow(work[col], ip)
			scaleRow(out[col], ip)
		}
		for r := 0; r < n; r++ {
			if r == col || work[r][col] == 0 {
				continue
			}
			f := work[r][col]
			mulAddRow(work[r], work[col], f)
			mulAddRow(out[r], out[col], f)
		}
	}
	return out, nil
}

func scaleRow(row []byte, c byte) {
	mrow := &mulT[c]
	for i := range row {
		row[i] = mrow[row[i]]
	}
}

func mulAddRow(dst, src []byte, c byte) {
	mrow := &mulT[c]
	for i := range dst {
		dst[i] ^= mrow[src[i]]
	}
}
