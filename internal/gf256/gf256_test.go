package gf256

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestFieldAxioms exercises the multiplication table against a direct
// carry-less ("Russian peasant") product, plus the inverse and division
// tables.
func TestFieldAxioms(t *testing.T) {
	slowMul := func(a, b byte) byte {
		var p byte
		for b > 0 {
			if b&1 != 0 {
				p ^= a
			}
			hi := a&0x80 != 0
			a <<= 1
			if hi {
				a ^= byte(poly & 0xff)
			}
			b >>= 1
		}
		return p
	}
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			if got, want := Mul(byte(a), byte(b)), slowMul(byte(a), byte(b)); got != want {
				t.Fatalf("Mul(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
	for a := 1; a < 256; a++ {
		if got := Mul(byte(a), Inv(byte(a))); got != 1 {
			t.Fatalf("a * a^-1 = %d for a=%d", got, a)
		}
		if got := Div(byte(a), byte(a)); got != 1 {
			t.Fatalf("a/a = %d for a=%d", got, a)
		}
	}
	if Div(0, 5) != 0 || Mul(0, 77) != 0 || Mul(1, 77) != 77 {
		t.Fatal("zero/identity laws broken")
	}
}

// TestMulAddSliceMatchesBytewise pins the word-at-a-time loop to the
// bytewise ablation across coefficients, lengths (including non-multiples
// of 8), and offsets.
func TestMulAddSliceMatchesBytewise(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 7, 8, 9, 63, 64, 65, 1000} {
		src := make([]byte, n)
		rng.Read(src)
		for _, c := range []byte{0, 1, 2, 3, 0x1d, 0x80, 0xff} {
			a := make([]byte, n)
			b := make([]byte, n)
			rng.Read(a)
			copy(b, a)
			MulAddSlice(c, a, src)
			MulAddSliceBytewise(c, b, src)
			if !bytes.Equal(a, b) {
				t.Fatalf("c=%d n=%d: wordwise and bytewise disagree", c, n)
			}
		}
	}
}

// TestRSRoundTripProperty is the decode(encode(x)) property test: random
// k and m, random data (including ragged tail-stripe lengths), random
// erasure patterns of up to m units across data and parity, reconstructed
// bytes must equal the originals.
func TestRSRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		k := 1 + rng.Intn(10)
		m := 1 + rng.Intn(4)
		r, err := NewRS(k, m)
		if err != nil {
			t.Fatal(err)
		}
		// Ragged tails: unit sizes that are not multiples of the word size,
		// including the 1-byte degenerate stripe.
		size := 1 + rng.Intn(200)
		data := make([][]byte, k)
		for i := range data {
			data[i] = make([]byte, size)
			rng.Read(data[i])
		}
		parity := make([][]byte, m)
		for j := range parity {
			parity[j] = make([]byte, size)
		}
		r.EncodeInto(parity, data)

		// Erase up to m random units (possibly zero — the no-op case).
		units := make([][]byte, k+m)
		for i := range data {
			units[i] = append([]byte(nil), data[i]...)
		}
		for j := range parity {
			units[k+j] = append([]byte(nil), parity[j]...)
		}
		erase := rng.Intn(m + 1)
		for _, idx := range rng.Perm(k + m)[:erase] {
			units[idx] = nil
		}
		if err := r.Reconstruct(units); err != nil {
			t.Fatalf("k=%d m=%d erase=%d: %v", k, m, erase, err)
		}
		for i := range data {
			if !bytes.Equal(units[i], data[i]) {
				t.Fatalf("k=%d m=%d: data unit %d not recovered", k, m, i)
			}
		}
		for j := range parity {
			if !bytes.Equal(units[k+j], parity[j]) {
				t.Fatalf("k=%d m=%d: parity unit %d not recovered", k, m, j)
			}
		}
	}
}

// TestRSTooManyErasures verifies the decoder refuses stripes with fewer
// than k survivors instead of fabricating data.
func TestRSTooManyErasures(t *testing.T) {
	r, err := NewRS(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	units := make([][]byte, 6)
	for i := 0; i < 3; i++ {
		units[i] = make([]byte, 16)
	}
	if err := r.Reconstruct(units); err == nil {
		t.Fatal("Reconstruct accepted 3 survivors for RS(4,2)")
	}
}

// TestRSDegeneratesToXOR confirms RS(k,1) parity equals the XOR parity the
// RAID5 path computes, so the two schemes agree on what "parity" means.
func TestRSDegeneratesToXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	r, err := NewRS(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	data := make([][]byte, 5)
	xor := make([]byte, 64)
	for i := range data {
		data[i] = make([]byte, 64)
		rng.Read(data[i])
		for b := range xor {
			xor[b] ^= data[i][b]
		}
	}
	parity := [][]byte{make([]byte, 64)}
	r.EncodeInto(parity, data)
	if !bytes.Equal(parity[0], xor) {
		t.Fatal("RS(k,1) parity differs from XOR parity")
	}
}

// TestRMWDelta verifies the read-modify-write identity the client's RS
// small-write path relies on: parity_j ^= Coef(j,i)*(old XOR new) moves a
// stripe's parity from encode(old data) to encode(new data).
func TestRMWDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	r, err := NewRS(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	const size = 48
	data := make([][]byte, 4)
	for i := range data {
		data[i] = make([]byte, size)
		rng.Read(data[i])
	}
	parity := make([][]byte, 3)
	for j := range parity {
		parity[j] = make([]byte, size)
	}
	r.EncodeInto(parity, data)

	// Overwrite unit 2 and patch every parity unit with the delta.
	newUnit := make([]byte, size)
	rng.Read(newUnit)
	delta := make([]byte, size)
	for b := range delta {
		delta[b] = data[2][b] ^ newUnit[b]
	}
	for j := range parity {
		MulAddSlice(r.Coef(j, 2), parity[j], delta)
	}
	data[2] = newUnit

	want := make([][]byte, 3)
	for j := range want {
		want[j] = make([]byte, size)
	}
	r.EncodeInto(want, data)
	for j := range want {
		if !bytes.Equal(parity[j], want[j]) {
			t.Fatalf("parity unit %d: delta update diverges from re-encode", j)
		}
	}
}

// TestNewRSShapes covers the shape validation boundary.
func TestNewRSShapes(t *testing.T) {
	for _, bad := range [][2]int{{0, 1}, {1, 0}, {200, 57}, {-1, 2}} {
		if _, err := NewRS(bad[0], bad[1]); err == nil {
			t.Errorf("NewRS(%d,%d) accepted", bad[0], bad[1])
		}
	}
	if _, err := NewRS(252, 4); err != nil {
		t.Errorf("NewRS(252,4) rejected: %v", err)
	}
	// Cache returns the same instance.
	a, _ := NewRS(4, 2)
	b, _ := NewRS(4, 2)
	if a != b {
		t.Error("NewRS(4,2) not cached")
	}
}

// BenchmarkGF256Mul measures the GF(256) coding kernel (dst ^= c*src) in
// both loop shapes, alongside the XOR parity microbenchmarks in
// internal/raid.
func BenchmarkGF256Mul(b *testing.B) {
	const size = 64 << 10
	src := make([]byte, size)
	dst := make([]byte, size)
	rand.New(rand.NewSource(3)).Read(src)
	b.Run("wordwise", func(b *testing.B) {
		b.SetBytes(size)
		for i := 0; i < b.N; i++ {
			MulAddSlice(0x1d, dst, src)
		}
	})
	b.Run("bytewise", func(b *testing.B) {
		b.SetBytes(size)
		for i := 0; i < b.N; i++ {
			MulAddSliceBytewise(0x1d, dst, src)
		}
	})
}

// BenchmarkRSEncode measures full-stripe RS(4,2) parity generation over
// 64 KiB units (bytes/op counts the data encoded, for comparison with
// BenchmarkParityXORWordwise).
func BenchmarkRSEncode(b *testing.B) {
	const su = 64 << 10
	r, err := NewRS(4, 2)
	if err != nil {
		b.Fatal(err)
	}
	data := make([][]byte, 4)
	rng := rand.New(rand.NewSource(5))
	for i := range data {
		data[i] = make([]byte, su)
		rng.Read(data[i])
	}
	parity := [][]byte{make([]byte, su), make([]byte, su)}
	b.SetBytes(4 * su)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.EncodeInto(parity, data)
	}
}
