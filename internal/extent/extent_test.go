package extent

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func collect(m *Map, off, length int64) (hits []Extent, misses []Extent) {
	m.Lookup(off, length,
		func(logical, src, n int64) { hits = append(hits, Extent{logical, n, src}) },
		func(logical, n int64) { misses = append(misses, Extent{Off: logical, Len: n}) })
	return
}

func TestInsertLookupBasic(t *testing.T) {
	var m Map
	m.Insert(100, 50, 0)
	if m.Bytes() != 50 || m.Len() != 1 {
		t.Fatalf("after one insert: bytes=%d len=%d", m.Bytes(), m.Len())
	}
	hits, misses := collect(&m, 90, 80)
	if len(hits) != 1 || hits[0] != (Extent{100, 50, 0}) {
		t.Fatalf("hits=%v", hits)
	}
	if len(misses) != 2 || misses[0] != (Extent{Off: 90, Len: 10}) || misses[1] != (Extent{Off: 150, Len: 20}) {
		t.Fatalf("misses=%v", misses)
	}
}

func TestInsertOverridesOverlap(t *testing.T) {
	var m Map
	m.Insert(0, 100, 0)
	m.Insert(40, 20, 1000) // newer write wins in the middle
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	hits, misses := collect(&m, 0, 100)
	if len(misses) != 0 {
		t.Fatalf("unexpected misses %v", misses)
	}
	want := []Extent{{0, 40, 0}, {40, 20, 1000}, {60, 40, 60}}
	if len(hits) != 3 {
		t.Fatalf("hits=%v", hits)
	}
	for i, h := range hits {
		if h != want[i] {
			t.Fatalf("hit %d = %v, want %v", i, h, want[i])
		}
	}
}

func TestInvalidateSplits(t *testing.T) {
	var m Map
	m.Insert(0, 100, 500)
	m.Invalidate(30, 40)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	hits, _ := collect(&m, 0, 100)
	want := []Extent{{0, 30, 500}, {70, 30, 570}}
	if len(hits) != 2 || hits[0] != want[0] || hits[1] != want[1] {
		t.Fatalf("hits=%v want %v", hits, want)
	}
	if m.Bytes() != 60 {
		t.Fatalf("bytes=%d", m.Bytes())
	}
}

func TestInvalidateEdges(t *testing.T) {
	var m Map
	m.Insert(10, 10, 0)
	m.Insert(30, 10, 100)
	m.Invalidate(15, 20) // trims tail of first, head of second
	hits, _ := collect(&m, 0, 50)
	want := []Extent{{10, 5, 0}, {35, 5, 105}}
	if len(hits) != 2 || hits[0] != want[0] || hits[1] != want[1] {
		t.Fatalf("hits=%v want %v", hits, want)
	}
	m.Invalidate(0, 100)
	if m.Len() != 0 {
		t.Fatalf("map not empty after full invalidate: %v", &m)
	}
}

func TestCoalesce(t *testing.T) {
	var m Map
	m.Insert(0, 10, 0)
	m.Insert(10, 10, 10) // contiguous logically and in the backing region
	if m.Len() != 1 {
		t.Fatalf("adjacent compatible extents not coalesced: %v", &m)
	}
	m.Insert(20, 10, 500) // contiguous logically but not in backing region
	if m.Len() != 2 {
		t.Fatalf("incompatible extents wrongly coalesced: %v", &m)
	}
}

func TestLookupZeroLength(t *testing.T) {
	var m Map
	m.Insert(0, 10, 0)
	hits, misses := collect(&m, 5, 0)
	if len(hits) != 0 || len(misses) != 0 {
		t.Fatalf("zero-length lookup produced %v / %v", hits, misses)
	}
	m.Insert(5, 0, 0) // no-op
	if m.Bytes() != 10 {
		t.Fatal("zero-length insert changed the map")
	}
}

func TestCovered(t *testing.T) {
	var m Map
	m.Insert(10, 10, 0)
	m.Insert(40, 10, 0)
	if got := m.Covered(0, 100); got != 20 {
		t.Fatalf("Covered=%d want 20", got)
	}
	if got := m.Covered(15, 30); got != 10 {
		t.Fatalf("Covered(15,30)=%d want 10", got)
	}
}

func TestClone(t *testing.T) {
	var m Map
	m.Insert(0, 10, 0)
	c := m.Clone()
	c.Insert(100, 10, 0)
	if m.Len() != 1 || c.Len() != 2 {
		t.Fatal("clone not independent")
	}
}

// refModel is a trivially correct byte-level reference: for every logical
// byte it records the backing source byte, or -1 for uncovered.
type refModel map[int64]int64

func (r refModel) insert(off, length, src int64) {
	for i := int64(0); i < length; i++ {
		r[off+i] = src + i
	}
}

func (r refModel) invalidate(off, length int64) {
	for i := int64(0); i < length; i++ {
		delete(r, off+i)
	}
}

func TestAgainstReferenceModel(t *testing.T) {
	const space = 400
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var m Map
		ref := refModel{}
		for op := 0; op < 120; op++ {
			off := int64(r.Intn(space))
			length := int64(r.Intn(space/4) + 1)
			if r.Intn(3) == 0 {
				m.Invalidate(off, length)
				ref.invalidate(off, length)
			} else {
				src := int64(r.Intn(10000))
				m.Insert(off, length, src)
				ref.insert(off, length, src)
			}
			if err := m.Validate(); err != nil {
				t.Logf("invariant violated after op %d: %v", op, err)
				return false
			}
		}
		// Compare byte-for-byte over the whole space.
		got := map[int64]int64{}
		m.Lookup(0, space*2, func(logical, src, n int64) {
			for i := int64(0); i < n; i++ {
				got[logical+i] = src + i
			}
		}, nil)
		if len(got) != len(ref) {
			t.Logf("coverage mismatch: got %d bytes, ref %d", len(got), len(ref))
			return false
		}
		for k, v := range ref {
			if got[k] != v {
				t.Logf("byte %d: got src %d, ref %d", k, got[k], v)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLookupPartitionProperty(t *testing.T) {
	// Lookup must partition any queried range exactly into hits and misses,
	// in order, with no overlap.
	f := func(seed int64, offSeed, lenSeed uint16) bool {
		r := rand.New(rand.NewSource(seed))
		var m Map
		for i := 0; i < 30; i++ {
			m.Insert(int64(r.Intn(500)), int64(r.Intn(60)+1), int64(r.Intn(5000)))
		}
		off := int64(offSeed % 600)
		length := int64(lenSeed % 300)
		cur := off
		var total int64
		ok := true
		m.Lookup(off, length,
			func(logical, _, n int64) {
				if logical != cur || n <= 0 {
					ok = false
				}
				cur = logical + n
				total += n
			},
			func(logical, n int64) {
				if logical != cur || n <= 0 {
					ok = false
				}
				cur = logical + n
				total += n
			})
		return ok && total == length
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
