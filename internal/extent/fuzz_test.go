package extent

import (
	"encoding/binary"
	"testing"
)

// FuzzMapOps drives the overflow table with an arbitrary operation tape and
// checks the structural invariants after every step. Each operation is
// seven bytes: opcode, two little-endian uint16 for offset/length, and two
// bytes of source-offset entropy.
func FuzzMapOps(f *testing.F) {
	f.Add([]byte{0, 0, 0, 16, 0, 1, 0})
	f.Add([]byte{
		0, 0, 0, 32, 0, 0, 0, // insert [0,32)
		1, 8, 0, 8, 0, 0, 0, // invalidate [8,16)
		0, 4, 0, 40, 0, 2, 0, // insert [4,44)
	})

	f.Fuzz(func(t *testing.T, tape []byte) {
		var m Map
		for i := 0; i+7 <= len(tape); i += 7 {
			op := tape[i]
			off := int64(binary.LittleEndian.Uint16(tape[i+1:]))
			length := int64(binary.LittleEndian.Uint16(tape[i+3:]))
			src := int64(binary.LittleEndian.Uint16(tape[i+5:]))
			switch op % 3 {
			case 0:
				m.Insert(off, length, src)
			case 1:
				m.Invalidate(off, length)
			case 2:
				// Lookup over an arbitrary range must partition it exactly.
				var covered int64
				cur := off
				m.Lookup(off, length, func(logical, _, n int64) {
					if logical != cur || n <= 0 {
						t.Fatal("hit out of order")
					}
					cur = logical + n
					covered += n
				}, func(logical, n int64) {
					if logical != cur || n <= 0 {
						t.Fatal("miss out of order")
					}
					cur = logical + n
				})
				if covered != m.Covered(off, length) {
					t.Fatal("Covered disagrees with Lookup")
				}
			}
			if err := m.Validate(); err != nil {
				t.Fatalf("invariant violated: %v", err)
			}
		}
	})
}
