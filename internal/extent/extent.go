// Package extent implements an ordered, non-overlapping byte-range map.
//
// It is the core data structure of the Hybrid scheme's overflow table: each
// extent records that logical file bytes [Off, Off+Len) are currently stored
// in the overflow region at offset Src (rather than in the data file).
// Inserting an extent overrides any previously inserted overlapping ranges
// (newest write wins); invalidating a range removes it, which is how a
// full-stripe RAID5 write migrates data back out of the overflow region.
package extent

import (
	"fmt"
	"sort"
	"strings"
)

// Extent maps the logical byte range [Off, Off+Len) to bytes stored at
// offset Src in some backing region (the overflow file).
type Extent struct {
	Off int64 // logical file offset
	Len int64 // length in bytes
	Src int64 // offset within the backing region
}

// End returns the exclusive logical end offset.
func (e Extent) End() int64 { return e.Off + e.Len }

func (e Extent) String() string {
	return fmt.Sprintf("[%d,%d)@%d", e.Off, e.End(), e.Src)
}

// Map is an ordered set of non-overlapping extents. The zero value is an
// empty map ready for use. Map is not safe for concurrent use; callers
// synchronize externally.
type Map struct {
	ext []Extent // sorted by Off, pairwise disjoint
}

// Len returns the number of extents in the map.
func (m *Map) Len() int { return len(m.ext) }

// Bytes returns the total number of logical bytes covered by the map.
func (m *Map) Bytes() int64 {
	var n int64
	for _, e := range m.ext {
		n += e.Len
	}
	return n
}

// search returns the index of the first extent with End() > off, i.e. the
// first extent that could overlap a range starting at off.
func (m *Map) search(off int64) int {
	return sort.Search(len(m.ext), func(i int) bool { return m.ext[i].End() > off })
}

// Insert records that logical range [off, off+length) now lives at src in
// the backing region. Overlapping parts of existing extents are overridden;
// extents straddling the boundary are split, preserving their own Src
// arithmetic so their surviving parts still point at the right bytes.
func (m *Map) Insert(off, length, src int64) {
	if length <= 0 {
		return
	}
	m.Invalidate(off, length)
	i := m.search(off)
	m.ext = append(m.ext, Extent{})
	copy(m.ext[i+1:], m.ext[i:])
	m.ext[i] = Extent{Off: off, Len: length, Src: src}
	m.coalesceAround(i)
}

// coalesceAround merges extent i with adjacent extents when both the logical
// ranges and backing offsets are contiguous.
func (m *Map) coalesceAround(i int) {
	if i+1 < len(m.ext) {
		a, b := m.ext[i], m.ext[i+1]
		if a.End() == b.Off && a.Src+a.Len == b.Src {
			m.ext[i].Len += b.Len
			m.ext = append(m.ext[:i+1], m.ext[i+2:]...)
		}
	}
	if i > 0 {
		a, b := m.ext[i-1], m.ext[i]
		if a.End() == b.Off && a.Src+a.Len == b.Src {
			m.ext[i-1].Len += b.Len
			m.ext = append(m.ext[:i], m.ext[i+1:]...)
		}
	}
}

// Invalidate removes coverage of the logical range [off, off+length).
// Extents partially inside the range are trimmed or split.
func (m *Map) Invalidate(off, length int64) {
	if length <= 0 {
		return
	}
	end := off + length
	i := m.search(off)
	for i < len(m.ext) && m.ext[i].Off < end {
		e := m.ext[i]
		switch {
		case e.Off >= off && e.End() <= end:
			// Fully covered: drop.
			m.ext = append(m.ext[:i], m.ext[i+1:]...)
		case e.Off < off && e.End() > end:
			// Covers the hole on both sides: split into two.
			left := Extent{Off: e.Off, Len: off - e.Off, Src: e.Src}
			right := Extent{Off: end, Len: e.End() - end, Src: e.Src + (end - e.Off)}
			m.ext[i] = left
			m.ext = append(m.ext, Extent{})
			copy(m.ext[i+2:], m.ext[i+1:])
			m.ext[i+1] = right
			return
		case e.Off < off:
			// Overlaps on the left: trim the tail.
			m.ext[i].Len = off - e.Off
			i++
		default:
			// Overlaps on the right: trim the head.
			delta := end - e.Off
			m.ext[i].Off = end
			m.ext[i].Src += delta
			m.ext[i].Len -= delta
			return
		}
	}
}

// Lookup walks the logical range [off, off+length) in order, calling hit for
// every piece covered by an extent (with the logical offset, backing source
// offset and piece length) and miss for every uncovered gap.
// Either callback may be nil.
func (m *Map) Lookup(off, length int64, hit func(logical, src, n int64), miss func(logical, n int64)) {
	end := off + length
	cur := off
	for i := m.search(off); i < len(m.ext) && cur < end; i++ {
		e := m.ext[i]
		if e.Off > cur {
			gapEnd := e.Off
			if gapEnd > end {
				gapEnd = end
			}
			if miss != nil {
				miss(cur, gapEnd-cur)
			}
			cur = gapEnd
			if cur >= end {
				break
			}
		}
		pieceEnd := e.End()
		if pieceEnd > end {
			pieceEnd = end
		}
		if pieceEnd > cur {
			if hit != nil {
				hit(cur, e.Src+(cur-e.Off), pieceEnd-cur)
			}
			cur = pieceEnd
		}
	}
	if cur < end && miss != nil {
		miss(cur, end-cur)
	}
}

// Covered reports how many bytes of [off, off+length) are covered.
func (m *Map) Covered(off, length int64) int64 {
	var n int64
	m.Lookup(off, length, func(_, _, pn int64) { n += pn }, nil)
	return n
}

// Extents returns a copy of the extents in ascending logical order.
func (m *Map) Extents() []Extent {
	return append([]Extent(nil), m.ext...)
}

// Clear removes all extents.
func (m *Map) Clear() { m.ext = m.ext[:0] }

// Clone returns a deep copy of the map.
func (m *Map) Clone() *Map {
	return &Map{ext: append([]Extent(nil), m.ext...)}
}

// Validate checks the internal invariants (ordering, disjointness, positive
// lengths) and returns a descriptive error on violation. Used by tests.
func (m *Map) Validate() error {
	for i, e := range m.ext {
		if e.Len <= 0 {
			return fmt.Errorf("extent %d has non-positive length: %v", i, e)
		}
		if i > 0 && m.ext[i-1].End() > e.Off {
			return fmt.Errorf("extents %d and %d overlap or are unordered: %v, %v",
				i-1, i, m.ext[i-1], e)
		}
	}
	return nil
}

func (m *Map) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, e := range m.ext {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(e.String())
	}
	b.WriteByte('}')
	return b.String()
}
