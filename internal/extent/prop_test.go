package extent

import (
	"bytes"
	"math/rand"
	"testing"
)

// This property test models the overflow table the way the Hybrid scheme
// actually uses it: Insert appends real bytes to a backing region and maps a
// logical range onto them, Invalidate migrates ranges back out, and reading
// through Lookup must reconstruct exactly the bytes a flat buffer would hold
// after the same sequence of writes. Where the existing reference-model test
// checks the offset arithmetic, this one checks end-to-end content — a
// split extent pointing one byte off in Src passes no other way.

// flatModel is the reference: a plain byte image of the logical space, plus
// a covered mask (true where overflow currently holds the byte).
type flatModel struct {
	img     []byte
	covered []bool
}

func (fm *flatModel) insert(off int64, data []byte) {
	copy(fm.img[off:], data)
	for i := range data {
		fm.covered[off+int64(i)] = true
	}
}

func (fm *flatModel) invalidate(off, length int64) {
	for i := int64(0); i < length; i++ {
		fm.covered[off+i] = false
	}
}

// readVia reconstructs the covered bytes of [off, off+length) through the
// map and a backing region, writing misses as zero.
func readVia(m *Map, backing []byte, off, length int64) ([]byte, []bool) {
	out := make([]byte, length)
	cov := make([]bool, length)
	m.Lookup(off, length, func(logical, src, n int64) {
		copy(out[logical-off:], backing[src:src+n])
		for i := int64(0); i < n; i++ {
			cov[logical-off+i] = true
		}
	}, nil)
	return out, cov
}

func TestOverflowContentAgainstFlatBuffer(t *testing.T) {
	const space = 4096
	for seed := int64(0); seed < 30; seed++ {
		r := rand.New(rand.NewSource(seed))
		var m Map
		var backing []byte // grows append-only, like the overflow store
		fm := &flatModel{img: make([]byte, space), covered: make([]bool, space)}

		for op := 0; op < 300; op++ {
			off := int64(r.Intn(space * 3 / 4))
			length := int64(r.Intn(space/8) + 1)
			if off+length > space {
				length = space - off
			}
			switch r.Intn(4) {
			case 0:
				// Full-stripe write migrated the range back in place.
				m.Invalidate(off, length)
				fm.invalidate(off, length)
			default:
				// Overflow write: fresh bytes land at the end of the region.
				data := make([]byte, length)
				r.Read(data)
				src := int64(len(backing))
				backing = append(backing, data...)
				m.Insert(off, length, src)
				fm.insert(off, data)
			}
			if err := m.Validate(); err != nil {
				t.Fatalf("seed %d op %d: %v", seed, op, err)
			}

			// Full-space content + coverage comparison after every op.
			got, cov := readVia(&m, backing, 0, space)
			want := make([]byte, space)
			for i := 0; i < space; i++ {
				if fm.covered[i] {
					want[i] = fm.img[i]
				}
			}
			for i := 0; i < space; i++ {
				if cov[i] != fm.covered[i] {
					t.Fatalf("seed %d op %d: coverage diverged at byte %d: map=%v ref=%v",
						seed, op, i, cov[i], fm.covered[i])
				}
			}
			if !bytes.Equal(got, want) {
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("seed %d op %d: content diverged at byte %d: got %d want %d",
							seed, op, i, got[i], want[i])
					}
				}
			}

			// Derived invariants: Bytes() matches the mask, Covered() agrees
			// on a random window, and extents are canonical (no two adjacent
			// extents left uncoalesced).
			var n int64
			for i := 0; i < space; i++ {
				if fm.covered[i] {
					n++
				}
			}
			if m.Bytes() != n {
				t.Fatalf("seed %d op %d: Bytes()=%d, mask says %d", seed, op, m.Bytes(), n)
			}
			wOff := int64(r.Intn(space))
			wLen := int64(r.Intn(space-int(wOff)) + 1)
			var wantCov int64
			for i := wOff; i < wOff+wLen; i++ {
				if fm.covered[i] {
					wantCov++
				}
			}
			if got := m.Covered(wOff, wLen); got != wantCov {
				t.Fatalf("seed %d op %d: Covered(%d,%d)=%d, want %d", seed, op, wOff, wLen, got, wantCov)
			}
			exts := m.Extents()
			for i := 1; i < len(exts); i++ {
				a, b := exts[i-1], exts[i]
				if a.End() == b.Off && a.Src+a.Len == b.Src {
					t.Fatalf("seed %d op %d: adjacent extents left uncoalesced: %v %v", seed, op, a, b)
				}
			}
		}

		// Clone independence: mutating the clone leaves the original's view
		// of the backing region untouched.
		cl := m.Clone()
		cl.Invalidate(0, space)
		if cl.Len() != 0 {
			t.Fatalf("seed %d: clone not emptied", seed)
		}
		got, _ := readVia(&m, backing, 0, space)
		want := make([]byte, space)
		for i := 0; i < space; i++ {
			if fm.covered[i] {
				want[i] = fm.img[i]
			}
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("seed %d: original corrupted by clone mutation", seed)
		}
	}
}
