// Manager-group routing: every metadata RPC goes through mgrCall, which
// holds a sticky current manager and fails over across the configured
// group. The manager is never on the data path, so this file is the whole
// of the client's metadata high-availability story: when the primary dies
// mid-operation, the call surfaces an unavailability (or fencing) error,
// the client walks the remaining managers, and the first one that answers
// as primary becomes the new sticky target.

package client

import (
	"context"
	"errors"
	"time"

	"csar/internal/wire"
)

// mgrFailover classifies a manager-call error: true means the error says
// nothing against the request itself, only against the manager that served
// it — it is dead (transport failure, CodeUnavailable), not the primary
// (CodeNotPrimary), or deposed (CodeStaleEpoch) — so the same request may
// be offered to the next manager in the group.
func mgrFailover(err error) bool {
	if errors.Is(err, wire.ErrNotPrimary) || errors.Is(err, wire.ErrStaleEpoch) {
		return true
	}
	return isUnavailable(err)
}

// mgrIdempotent reports whether a manager request may be re-issued after a
// failure whose effect is unknown. Reads of the namespace qualify, as does
// SetSize: the manager applies it with max semantics, so a duplicate is
// absorbed. The scheme-migration trio qualifies by design — SetScheme
// resumes a matching live pin, and CommitScheme/AbortScheme are fenced by
// the shadow ID, so a duplicate is answered, not re-applied. Create and
// Remove do not — a lost response may have mutated the namespace, and
// blindly repeating a Create would fail on its own first success.
func mgrIdempotent(m wire.Msg) bool {
	switch m.(type) {
	case *wire.Open, *wire.List, *wire.Ping, *wire.ServerList,
		*wire.Stats, *wire.MetaStatus, *wire.SetSize,
		*wire.SetScheme, *wire.CommitScheme, *wire.AbortScheme:
		return true
	}
	return false
}

// mgrCallOnce issues one attempt against manager idx, with the same
// deadline plumbing as the I/O-server path: native transport deadlines
// when available, a racing goroutine otherwise.
func (c *Client) mgrCallOnce(idx int, m wire.Msg, timeout time.Duration) (wire.Msg, error) {
	if timeout <= 0 {
		return c.mgrs[idx].Call(m)
	}
	if tc, ok := c.mgrs[idx].(timeoutCaller); ok {
		return tc.CallTimeout(m, timeout)
	}
	type result struct {
		resp wire.Msg
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		resp, err := c.mgrs[idx].Call(m)
		ch <- result{resp, err}
	}()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r.resp, r.err
	case <-timer.C:
		return nil, ErrCallTimeout
	}
}

// mgrCall issues one metadata request with manager failover. Within one
// cycle every manager gets a chance, starting from the sticky current one;
// idempotent requests additionally earn Policy.Retries extra cycles with
// backoff, covering the window where a standby has been probed but not yet
// promoted. A success away from the sticky manager moves the stickiness
// (and counts a MetaFailover), so the whole group is walked only while the
// cluster is actually in flux.
func (c *Client) mgrCall(m wire.Msg) (wire.Msg, error) {
	p := c.getPolicy()
	n := len(c.mgrs)
	cycles := 1
	if p.Retries > 0 && mgrIdempotent(m) {
		cycles += p.Retries
	}
	start := int(c.mgrCur.Load())
	if start >= n {
		start = 0
	}
	var lastErr error
	for cyc := 0; cyc < cycles; cyc++ {
		if cyc > 0 {
			c.metrics.retries.Add(1)
			c.backoff(cyc, p)
		}
		for off := 0; off < n; off++ {
			idx := (start + off) % n
			resp, err := c.mgrCallOnce(idx, m, p.CallTimeout)
			if err == nil {
				if idx != start {
					c.mgrCur.Store(int32(idx))
					c.metrics.metaFailovers.Add(1)
				}
				return resp, nil
			}
			if !mgrFailover(err) {
				return nil, err
			}
			if errors.Is(err, context.DeadlineExceeded) {
				c.metrics.timeouts.Add(1)
			}
			lastErr = err
		}
	}
	return nil, lastErr
}

// NumManagers returns the number of managers in the client's group.
func (c *Client) NumManagers() int { return len(c.mgrs) }

// CurrentManager returns the index (into the group passed to NewMulti) of
// the manager metadata RPCs currently route to.
func (c *Client) CurrentManager() int { return int(c.mgrCur.Load()) }

// ManagerStatuses probes every manager in the group with MetaStatus and
// returns their role/epoch reports in group order. An unreachable manager
// gets a zero-value entry with Files == -1 rather than failing the whole
// collection — an operator inspecting a half-dead cluster is exactly who
// calls this.
func (c *Client) ManagerStatuses() []wire.MetaStatusResp {
	p := c.getPolicy()
	out := make([]wire.MetaStatusResp, len(c.mgrs))
	for i := range c.mgrs {
		resp, err := c.mgrCallOnce(i, &wire.MetaStatus{}, p.CallTimeout)
		sr, ok := resp.(*wire.MetaStatusResp)
		if err != nil || !ok {
			out[i] = wire.MetaStatusResp{Index: uint16(i), Files: -1}
			continue
		}
		out[i] = *sr
	}
	return out
}

// ManagerStats fetches every manager's observability snapshot over the
// Stats RPC, in group order. Unreachable managers get a zero-value entry
// with Requests < 0, mirroring ServerStats.
func (c *Client) ManagerStats() []wire.StatsResp {
	p := c.getPolicy()
	out := make([]wire.StatsResp, len(c.mgrs))
	for i := range c.mgrs {
		resp, err := c.mgrCallOnce(i, &wire.Stats{}, p.CallTimeout)
		sr, ok := resp.(*wire.StatsResp)
		if err != nil || !ok {
			out[i] = wire.StatsResp{Index: uint16(i), Requests: -1}
			continue
		}
		out[i] = *sr
	}
	return out
}
