// Client-side observability: the latency histograms behind Client.Stats,
// the helpers recovery and scrub passes use to time themselves, and the
// Stats RPC fan-out that collects every server's view.

package client

import (
	"fmt"
	"io"
	"time"

	"csar/internal/obs"
	"csar/internal/wire"
)

// Observe records one duration into the named client histogram. The file
// I/O paths use it for the op histograms (op_read, op_write and its
// per-path splits, parity_lock_wait); the scrub and recovery packages reuse
// it for whole-pass timings (scrub_pass, rebuild_pass, resync_pass,
// replay_pass).
func (c *Client) Observe(name string, d time.Duration) {
	c.obs.Hist(name).Observe(d)
}

// sinceStart measures elapsed time for a histogram: simulated time under
// the performance model (what the paper's figures are denominated in), wall
// time otherwise.
func (c *Client) sinceStart(start time.Time) time.Duration {
	if c.clock.Timed() {
		return c.clock.SimSince(start)
	}
	return time.Since(start)
}

// ObserveSince records the time elapsed since start — sim-aware, like every
// client histogram — into the named histogram. `defer c.ObserveSince("x",
// time.Now())` at the top of a pass times the whole pass.
func (c *Client) ObserveSince(name string, start time.Time) {
	c.Observe(name, c.sinceStart(start))
}

// Stats snapshots the client's latency histograms and counters.
func (c *Client) Stats() obs.Snapshot { return c.obs.Snapshot() }

// ServerStats fetches every I/O server's observability snapshot over the
// Stats RPC. Unreachable servers get a zero-value entry (Requests < 0 marks
// them) rather than failing the whole collection — an operator inspecting a
// degraded cluster is exactly who calls this.
func (c *Client) ServerStats() []wire.StatsResp {
	out := make([]wire.StatsResp, len(c.srv))
	c.eachServer(len(c.srv), func(i int) error { //nolint:errcheck // partial results wanted
		resp, err := c.callSrv(i, &wire.Stats{})
		if err != nil {
			out[i] = wire.StatsResp{Index: uint16(i), Requests: -1}
			return nil
		}
		sr, ok := resp.(*wire.StatsResp)
		if !ok {
			out[i] = wire.StatsResp{Index: uint16(i), Requests: -1}
			return nil
		}
		out[i] = *sr
		return nil
	})
	return out
}

// SnapOfStatsResp converts one server's Stats reply into an obs snapshot,
// so server dumps can be merged and rendered with the same code as client
// snapshots.
func SnapOfStatsResp(sr wire.StatsResp) obs.Snapshot {
	var s obs.Snapshot
	for _, kv := range sr.Counters {
		s.Counters = append(s.Counters, obs.KV{Name: kv.Name, Value: kv.Value})
	}
	for _, kv := range sr.Gauges {
		s.Gauges = append(s.Gauges, obs.KV{Name: kv.Name, Value: kv.Value})
	}
	for _, h := range sr.Hists {
		s.Hists = append(s.Hists, obs.SnapFromDump(h.Name, h.Count, h.Sum, h.Max, h.Buckets))
	}
	return s
}

// Close releases the client's transport resources: every server caller and
// the manager caller that can be closed, is. In-process callers (test
// harnesses) typically implement no Close and cost nothing to leave.
func (c *Client) Close() error {
	var firstErr error
	for i, s := range c.srv {
		if cl, ok := s.(io.Closer); ok {
			if err := cl.Close(); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("client: closing server %d caller: %w", i, err)
			}
		}
	}
	for i, m := range c.mgrs {
		if cl, ok := m.(io.Closer); ok {
			if err := cl.Close(); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("client: closing manager %d caller: %w", i, err)
			}
		}
	}
	return firstErr
}
