package client

import (
	"time"

	"csar/internal/wire"
)

// This file keeps leased parity-lock acquisitions alive. A locked ReadParity
// issued with Policy.LockLease > 0 opens a lease on the parity server: if no
// heartbeat arrives before the deadline, the server revokes the lock and
// fail-stops the stripe (see internal/server/intent.go). While the RMW is in
// flight the client therefore registers the acquisition here, and a single
// background goroutine renews every registered lease at the heartbeat
// period. A healthy RMW completes in far less than one lease, so the
// heartbeat only matters when the write phase stalls — exactly the case the
// lease exists to distinguish from a crashed client.

// leaseEntry identifies one live acquisition: which server holds the lock,
// for which file and stripe, and under which owner token.
type leaseEntry struct {
	srv    int
	ref    wire.FileRef
	stripe int64
	owner  uint64
}

// leaseMS converts the policy's lock lease to the wire's milliseconds field
// (0 = no lease requested).
func leaseMS(p Policy) uint32 {
	if p.LockLease <= 0 {
		return 0
	}
	ms := p.LockLease / time.Millisecond
	if ms < 1 {
		ms = 1
	}
	return uint32(ms)
}

// renewEvery derives the heartbeat period: explicit when set, LockLease/3
// when zero, disabled when negative (or when no lease is in use).
func renewEvery(p Policy) time.Duration {
	if p.LockLease <= 0 || p.LeaseRenewEvery < 0 {
		return 0
	}
	if p.LeaseRenewEvery > 0 {
		return p.LeaseRenewEvery
	}
	return p.LockLease / 3
}

// trackLease registers a granted leased acquisition for heartbeat renewal
// and starts the renewal goroutine if it is not already running.
func (c *Client) trackLease(srv int, ref wire.FileRef, stripe int64, owner uint64) {
	p := c.getPolicy()
	every := renewEvery(p)
	if every <= 0 {
		return
	}
	c.lmu.Lock()
	c.leases[owner] = leaseEntry{srv: srv, ref: ref, stripe: stripe, owner: owner}
	start := !c.hbRunning
	if start {
		c.hbRunning = true
	}
	c.lmu.Unlock()
	if start {
		go c.heartbeat(every)
	}
}

// untrackLease drops an acquisition from the renewal set (the lock was
// released, or the server told us the lease already expired).
func (c *Client) untrackLease(owner uint64) {
	c.lmu.Lock()
	delete(c.leases, owner)
	c.lmu.Unlock()
}

// heartbeat renews every registered lease once per period and exits when the
// registry drains; trackLease restarts it on the next leased acquisition.
func (c *Client) heartbeat(every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for range t.C {
		c.lmu.Lock()
		if len(c.leases) == 0 {
			c.hbRunning = false
			c.lmu.Unlock()
			return
		}
		entries := make([]leaseEntry, 0, len(c.leases))
		for _, e := range c.leases {
			entries = append(entries, e)
		}
		c.lmu.Unlock()
		for _, e := range entries {
			c.renewLease(e)
		}
	}
}

// renewLease sends one heartbeat for one acquisition. A response renewing
// fewer stripes than asked means the server already expired the lease: the
// entry is dropped (the in-flight RMW will learn the same from its fenced
// parity write) and the expiry is counted. Transport failures are left for
// the next tick — the lease is sized to survive several missed heartbeats.
func (c *Client) renewLease(e leaseEntry) {
	p := c.getPolicy()
	resp, err := c.callSrv(e.srv, &wire.RenewLease{
		File: e.ref, Stripes: []int64{e.stripe}, Owner: e.owner, LeaseMS: leaseMS(p),
	})
	if err != nil {
		return
	}
	rr, ok := resp.(*wire.RenewLeaseResp)
	if !ok {
		return
	}
	if rr.Renewed < 1 {
		c.metrics.leaseExpiries.Add(1)
		c.untrackLease(e.owner)
		return
	}
	c.metrics.leaseRenewals.Add(1)
}
