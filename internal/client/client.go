// Package client implements the CSAR client library: PVFS-style striped
// access to the I/O servers, extended with the RAID1, RAID5 and Hybrid
// redundancy engines of the paper.
//
// As in PVFS, a client obtains a file's layout from the manager once and
// then moves data directly between itself and the I/O servers; the manager
// is never on the data path. All redundancy work — mirroring, parity
// computation, the partial-stripe read-modify-write with its lock ordering,
// and the Hybrid scheme's overflow writes — happens in this package, which
// is why the paper can describe CSAR as "implemented by adding new routines"
// around an unchanged data layout.
package client

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"csar/internal/obs"
	"csar/internal/raid"
	"csar/internal/simtime"
	"csar/internal/wire"
)

// Caller issues one request and returns its response; rpc.Client implements
// it over a connection, and test harnesses implement it in-process.
type Caller interface {
	Call(m wire.Msg) (wire.Msg, error)
}

// ErrDegradedWrite is returned when writing a Raid0 (or instrumented RAID5
// variant) file while one of its servers is marked down: those schemes have
// no redundancy to carry the failed server's share of the write. Raid1,
// Raid5 and Hybrid files accept degraded writes.
var ErrDegradedWrite = errors.New("client: scheme cannot write while a server is down")

// ErrNoRedundancy is returned when a degraded read is attempted on a RAID0
// file.
var ErrNoRedundancy = errors.New("client: raid0 stores no redundancy; data on a failed server is lost")

// Client is one mount of a CSAR file system.
type Client struct {
	// mgrs is the manager group — the primary and its standbys, in cluster
	// index order. mgrCur is the sticky index metadata RPCs route to;
	// mgrCall moves it on failover (mgr.go).
	mgrs   []Caller
	mgrCur atomic.Int32

	srv []Caller

	clock   *simtime.Clock
	xorBW   float64          // client XOR throughput, bytes per simulated second
	callCPU time.Duration    // per-request client-side processing cost
	cpu     *simtime.Limiter // the client's serial CPU

	metrics metrics

	// obs holds the client's latency histograms: one per logical op and
	// write path, one per RPC kind, plus the parity-lock wait (stats.go).
	obs *obs.Registry

	// health is the per-server circuit-breaker state (resilience.go).
	health []serverHealth

	// leases tracks live parity-lock acquisitions for heartbeat renewal
	// (lease.go), keyed by owner token.
	lmu       sync.Mutex
	leases    map[uint64]leaseEntry
	hbRunning bool

	mu     sync.Mutex
	down   map[int]bool
	policy Policy
	rng    *rand.Rand

	// Online-resync coordination (dirty.go): per-outage epochs, active
	// resync cursors, the replay gate, and the degraded-write drain counter.
	dmu              sync.Mutex
	outages          map[outageKey]uint64
	resyncs          map[outageKey]*resyncState
	resyncActive     atomic.Int32
	resyncGate       sync.RWMutex
	degradedInFlight atomic.Int64

	// Online re-layout coordination (relayout.go): per-file migration
	// targets with their copy cursors, behind the copy gate every
	// foreground read and write shares.
	relayouts    map[uint64]*relayoutState
	relayoutGate sync.RWMutex
}

// New creates a client talking to one manager and the I/O servers. The
// resilience layer starts disabled; SetPolicy turns it on.
func New(mgr Caller, servers []Caller) *Client {
	return NewMulti([]Caller{mgr}, servers)
}

// NewMulti creates a client talking to a manager group — the primary plus
// any standbys, in cluster index order — and the I/O servers. Metadata
// RPCs route to one sticky manager and fail over across the group when it
// dies or answers with a not-primary/stale-epoch fencing error.
func NewMulti(mgrs []Caller, servers []Caller) *Client {
	return &Client{
		mgrs:      mgrs,
		srv:       servers,
		obs:       obs.NewRegistry(),
		down:      make(map[int]bool),
		health:    make([]serverHealth, len(servers)),
		leases:    make(map[uint64]leaseEntry),
		outages:   make(map[outageKey]uint64),
		resyncs:   make(map[outageKey]*resyncState),
		relayouts: make(map[uint64]*relayoutState),
		rng:       rand.New(rand.NewSource(1)),
	}
}

// SetModel enables the performance model on this client: parity XOR
// computation is charged at xorBW bytes per simulated second, and every
// I/O-server request costs callCPU of serial client CPU (the PVFS library,
// kernel and TCP path of the paper's 1 GHz nodes). The paper measures the
// XOR cost at about 8% of the RAID5 full-stripe write time (the RAID5-npc
// curve of Figure 4a).
func (c *Client) SetModel(clock *simtime.Clock, xorBW float64, callCPU time.Duration) {
	c.clock = clock
	c.xorBW = xorBW
	c.callCPU = callCPU
	c.cpu = simtime.NewLimiter(clock, 1) // durations only
}

// chargeXOR models the client CPU time of XORing n bytes.
func (c *Client) chargeXOR(n int64) {
	if c.clock.Timed() && c.xorBW > 0 && n > 0 {
		c.clock.Sleep(time.Duration(float64(n) / c.xorBW * float64(time.Second)))
	}
}

// chargeGF models the client CPU time of a GF(256) multiply-accumulate pass
// over n bytes. The table-driven word-at-a-time kernel runs at roughly half
// the XOR bandwidth (see internal/gf256's benchmarks), so it is charged as
// two XOR passes rather than through a separate model knob.
func (c *Client) chargeGF(n int64) { c.chargeXOR(2 * n) }

// callSrv issues one request to server idx, charging the modeled client CPU
// first and applying the resilience policy: the breaker's admission gate, a
// per-call deadline, and retries with backoff for idempotent requests. An
// unavailability-class failure comes back as a *ServerError carrying the
// server index, which the read path uses to fail over to reconstruction.
func (c *Client) callSrv(idx int, m wire.Msg) (wire.Msg, error) {
	return c.callSrvT(idx, m, 0)
}

// callSrvT is callSrv with an operation trace ID (zero = untraced): the ID
// rides every attempt's wire header, and the whole call — retries, backoff
// and all — is timed into the per-RPC-kind histogram.
func (c *Client) callSrvT(idx int, m wire.Msg, trace uint64) (wire.Msg, error) {
	if c.clock.Timed() && c.callCPU > 0 {
		c.cpu.AcquireDur(c.callCPU)
	}
	start := time.Now()
	resp, err := c.callSrvInner(idx, m, trace)
	c.Observe("rpc_"+m.Kind().String(), c.sinceStart(start))
	return resp, err
}

func (c *Client) callSrvInner(idx int, m wire.Msg, trace uint64) (wire.Msg, error) {
	p := c.getPolicy()
	if p.BreakerThreshold > 0 {
		if err := c.admit(idx, p); err != nil {
			return nil, err
		}
	}
	attempts := 1
	if p.Retries > 0 && isIdempotent(m) {
		attempts += p.Retries
	}
	var lastErr error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			c.metrics.retries.Add(1)
			c.backoff(a, p)
		}
		resp, err := c.callOnceT(idx, m, p.CallTimeout, trace)
		if err == nil {
			c.noteSuccess(idx)
			return resp, nil
		}
		if !isUnavailable(err) {
			// An application error from a live server: the request itself
			// was rejected, so neither retrying nor failover can help.
			return nil, err
		}
		if errors.Is(err, context.DeadlineExceeded) {
			c.metrics.timeouts.Add(1)
		}
		c.noteFailure(idx, p)
		lastErr = err
	}
	return nil, &ServerError{Idx: idx, Err: lastErr}
}

// NumServers returns the number of I/O servers.
func (c *Client) NumServers() int { return len(c.srv) }

// Clock returns the client's performance-model time base (nil when the
// client runs untimed). The scrub rate limiter shares it so scrub I/O is
// throttled in simulated time, keeping benches deterministic.
func (c *Client) Clock() *simtime.Clock { return c.clock }

// MarkDown flags a server as failed; reads switch to degraded mode.
func (c *Client) MarkDown(idx int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.down[idx] = true
}

// MarkUp clears a server's failed flag (after rebuild or resync), including
// any breaker and staleness state the resilience layer accumulated for it
// and the outage epochs of its dirty-region logs (a future outage is a new
// epoch).
func (c *Client) MarkUp(idx int) {
	c.mu.Lock()
	delete(c.down, idx)
	c.mu.Unlock()
	c.resetHealth(idx)
	c.clearOutages(idx)
}

// Down reports whether a server is unusable right now: manually marked
// failed, or refused by its circuit breaker.
func (c *Client) Down(idx int) bool {
	c.mu.Lock()
	manual := c.down[idx]
	c.mu.Unlock()
	return manual || c.breakerDown(idx)
}

// anyDown returns the first unusable server of the file's stripe set:
// manually marked down, or held out by an open breaker. Checking the
// breaker here (with its probing re-admission) is what routes reads to the
// degraded paths while a server is out and back to the normal path once a
// probe finds it recovered.
func (c *Client) anyDown(ref wire.FileRef) (int, bool) {
	n := int(ref.Servers)
	c.mu.Lock()
	for i := 0; i < n; i++ {
		if c.down[i] {
			c.mu.Unlock()
			return i, true
		}
	}
	c.mu.Unlock()
	for i := 0; i < n; i++ {
		if c.breakerDown(i) {
			return i, true
		}
	}
	return -1, false
}

// allDown returns every unusable server of the file's stripe set, in
// ascending order. Reed-Solomon files tolerate up to ParityUnits
// simultaneous failures, so their degraded paths need the full list where
// the single-failure schemes need only anyDown's first hit.
func (c *Client) allDown(ref wire.FileRef) []int {
	n := int(ref.Servers)
	var out []int
	c.mu.Lock()
	for i := 0; i < n; i++ {
		if c.down[i] {
			out = append(out, i)
		}
	}
	c.mu.Unlock()
	for i := 0; i < n; i++ {
		if c.breakerDown(i) {
			found := false
			for _, d := range out {
				if d == i {
					found = true
					break
				}
			}
			if !found {
				out = append(out, i)
			}
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// server returns the caller for server idx.
func (c *Client) server(idx int) Caller { return c.srv[idx] }

// ServerCaller exposes the raw caller for server idx; the recovery package
// uses it to issue raw reads and rebuild writes outside the normal file API.
func (c *Client) ServerCaller(idx int) Caller { return c.srv[idx] }

// Create makes a new file striped over `servers` I/O servers with the given
// stripe unit and redundancy scheme. Reed-Solomon files get the manager's
// default parity-unit count; CreateParity chooses it explicitly.
func (c *Client) Create(name string, servers int, stripeUnit int64, scheme wire.Scheme) (*File, error) {
	return c.CreateParity(name, servers, stripeUnit, scheme, 0)
}

// CreateParity is Create with an explicit parity-unit count: a Reed-Solomon
// RS(k, m) file striped over servers = k+m I/O servers carries parity = m
// parity units per stripe and survives any m simultaneous server failures.
// parity 0 applies the manager's default (2 for Reed-Solomon); non-RS
// schemes reject an explicit count.
func (c *Client) CreateParity(name string, servers int, stripeUnit int64, scheme wire.Scheme, parity int) (*File, error) {
	resp, err := c.mgrCall(&wire.Create{
		Name:       name,
		Servers:    uint16(servers),
		StripeUnit: uint32(stripeUnit),
		Scheme:     scheme,
		Parity:     uint8(parity),
	})
	if err != nil {
		return nil, err
	}
	cr, ok := resp.(*wire.CreateResp)
	if !ok {
		return nil, fmt.Errorf("client: unexpected create response %T", resp)
	}
	return c.fileFor(cr.Ref, 0)
}

// Open looks up an existing file by name.
func (c *Client) Open(name string) (*File, error) {
	resp, err := c.mgrCall(&wire.Open{Name: name})
	if err != nil {
		return nil, err
	}
	or, ok := resp.(*wire.OpenResp)
	if !ok {
		return nil, fmt.Errorf("client: unexpected open response %T", resp)
	}
	return c.fileFor(or.Ref, or.Size)
}

func (c *Client) fileFor(ref wire.FileRef, size int64) (*File, error) {
	g := raid.Geometry{Servers: int(ref.Servers), StripeUnit: int64(ref.StripeUnit)}
	if ref.Scheme == wire.ReedSolomon {
		g.ParityUnits = ref.ParityUnits()
		if err := g.ValidateParity(); err != nil {
			return nil, err
		}
	} else if err := g.Validate(); err != nil {
		return nil, err
	}
	if g.Servers > len(c.srv) {
		return nil, fmt.Errorf("client: file spans %d servers, cluster has %d", g.Servers, len(c.srv))
	}
	f := &File{c: c, ref: ref, geom: g}
	f.size.Store(size)
	return f, nil
}

// Remove deletes a file: its manager metadata and every server-side store.
func (c *Client) Remove(name string) error {
	resp, err := c.mgrCall(&wire.Open{Name: name})
	if err != nil {
		return err
	}
	or, ok := resp.(*wire.OpenResp)
	if !ok {
		return fmt.Errorf("client: unexpected open response %T", resp)
	}
	if _, err := c.mgrCall(&wire.Remove{Name: name}); err != nil {
		return err
	}
	return c.eachServer(int(or.Ref.Servers), func(i int) error {
		if _, err := c.callSrv(i, &wire.RemoveFile{File: or.Ref}); err != nil {
			return err
		}
		if or.Mig.ID != 0 {
			// A removal mid-migration also reclaims the pinned shadow
			// layout's stores; the manager dropped its pin with the file.
			_, err := c.callSrv(i, &wire.RemoveFile{File: or.Mig})
			return err
		}
		return nil
	})
}

// List returns the names of all files.
func (c *Client) List() ([]string, error) {
	resp, err := c.mgrCall(&wire.List{})
	if err != nil {
		return nil, err
	}
	lr, ok := resp.(*wire.ListResp)
	if !ok {
		return nil, fmt.Errorf("client: unexpected list response %T", resp)
	}
	return lr.Names, nil
}

// StorageTotals reports each server's total materialized bytes (du-style),
// across all files.
func (c *Client) StorageTotals() ([]int64, error) {
	totals := make([]int64, len(c.srv))
	err := c.eachServer(len(c.srv), func(i int) error {
		resp, err := c.callSrv(i, &wire.StorageStat{})
		if err != nil {
			return err
		}
		totals[i] = resp.(*wire.StorageStatResp).Total
		return nil
	})
	return totals, err
}

// DropServerCaches empties every server's page cache; the paper does this
// between the initial-write and overwrite phases of its experiments.
func (c *Client) DropServerCaches() error {
	return c.eachServer(len(c.srv), func(i int) error {
		_, err := c.callSrv(i, &wire.DropCaches{})
		return err
	})
}

// eachServer runs fn for servers [0,n) concurrently and returns the first
// error.
func (c *Client) eachServer(n int, fn func(i int) error) error {
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	return errors.Join(errs...)
}
