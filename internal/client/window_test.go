package client

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestWindowStress drives Go/Failed/Wait from many goroutines under the
// race detector: the first error must win and stick, every Go issued after
// the failure must drop its fn, and Wait must observe a fully drained
// window no matter how the submissions interleave.
func TestWindowStress(t *testing.T) {
	boom := errors.New("boom")
	for iter := 0; iter < 50; iter++ {
		w := NewWindow(4)
		var ran, dropped atomic.Int64

		// Concurrent Failed pollers race the submitters and the failing op.
		stop := make(chan struct{})
		var pollers sync.WaitGroup
		for i := 0; i < 2; i++ {
			pollers.Add(1)
			go func() {
				defer pollers.Done()
				for {
					select {
					case <-stop:
						return
					default:
						w.Failed()
					}
				}
			}()
		}

		const ops = 64
		errAt := iter % ops
		var subs sync.WaitGroup
		for g := 0; g < 4; g++ {
			subs.Add(1)
			go func(g int) {
				defer subs.Done()
				for i := g; i < ops; i += 4 {
					i := i
					w.Go(func() error {
						ran.Add(1)
						if i == errAt {
							return boom
						}
						return nil
					})
				}
			}(g)
		}
		subs.Wait()

		if err := w.Wait(); !errors.Is(err, boom) {
			t.Fatalf("iter %d: Wait = %v, want boom", iter, err)
		}
		if !w.Failed() {
			t.Fatalf("iter %d: Failed false after Wait returned the error", iter)
		}
		// The error is sticky: repeated Wait keeps returning it, and every
		// Go after the failure drops its fn without running it.
		if err := w.Wait(); !errors.Is(err, boom) {
			t.Fatalf("iter %d: second Wait = %v, want boom", iter, err)
		}
		w.Go(func() error { dropped.Add(1); return nil })
		if err := w.Wait(); !errors.Is(err, boom) {
			t.Fatalf("iter %d: Wait after poisoned Go = %v, want boom", iter, err)
		}
		if dropped.Load() != 0 {
			t.Fatalf("iter %d: fn ran on a failed window", iter)
		}
		if ran.Load() > ops {
			t.Fatalf("iter %d: %d ops ran, submitted %d", iter, ran.Load(), ops)
		}

		close(stop)
		pollers.Wait()
	}
}

// TestWindowErrorStickyAcrossRecreate models the Stream.Flush poisoned-
// window pattern: Wait consumes the failed window's error, the owner
// recreates the window, and the fresh one must carry no residue of the old
// error while the old one keeps reporting it.
func TestWindowErrorStickyAcrossRecreate(t *testing.T) {
	old := NewWindow(2)
	old.Go(func() error { return fmt.Errorf("first failure") })
	if err := old.Wait(); err == nil {
		t.Fatal("failed op's error lost")
	}

	fresh := NewWindow(2)
	var ran atomic.Int64
	fresh.Go(func() error { ran.Add(1); return nil })
	if err := fresh.Wait(); err != nil {
		t.Fatalf("fresh window inherited error: %v", err)
	}
	if ran.Load() != 1 {
		t.Fatal("fresh window dropped its fn")
	}
	if !old.Failed() {
		t.Fatal("old window's sticky error cleared by recreate")
	}
}

// TestWindowDepthBound checks Go blocks at the configured depth: with depth
// d and d ops parked, the d+1th submission must not start until one frees.
func TestWindowDepthBound(t *testing.T) {
	const depth = 3
	w := NewWindow(depth)
	release := make(chan struct{})
	var inFlight atomic.Int64
	var peak atomic.Int64
	for i := 0; i < 12; i++ {
		w.Go(func() error {
			n := inFlight.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			<-release
			inFlight.Add(-1)
			return nil
		})
		if i == depth-1 {
			// All slots full; free them so the remaining submissions can
			// proceed (Go would otherwise block this goroutine forever).
			close(release)
		}
	}
	if err := w.Wait(); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > depth {
		t.Fatalf("peak in-flight %d exceeds depth %d", p, depth)
	}
}
