package client

import "testing"

// Parity-lock owner tokens are matched by value alone on the server, so two
// client processes must never emit overlapping sequences — a counter would
// let one client's ghost-release free another's live lock. The draws must
// therefore look like independent 64-bit randomness: non-zero (0 is the
// reserved "no token") and without repeats.
func TestLockTokensUniqueAndNonZero(t *testing.T) {
	seen := make(map[uint64]struct{}, 4096)
	for i := 0; i < 4096; i++ {
		tok := nextLockToken()
		if tok == 0 {
			t.Fatal("nextLockToken returned the reserved zero token")
		}
		if _, dup := seen[tok]; dup {
			t.Fatalf("duplicate token %#x after %d draws", tok, i)
		}
		seen[tok] = struct{}{}
	}
}
