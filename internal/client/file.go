package client

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"csar/internal/core"
	"csar/internal/obs"
	"csar/internal/raid"
	"csar/internal/wire"
)

// File is an open CSAR file. Methods are safe for concurrent use; as in
// PVFS, concurrent writers to non-overlapping regions are consistent
// (RAID5 parity protected by the Section 5.1 lock), while overlapping
// concurrent writes carry no guarantees.
type File struct {
	c    *Client
	ref  wire.FileRef
	geom raid.Geometry
	size atomic.Int64

	// gateExempt marks a handle that skips the relayout gate: the shadow
	// layout of a migration (written under the gate's shared side) and the
	// engine's handles inside RelayoutExclusive sections. See relayout.go.
	gateExempt bool
}

// Ref returns the file's wire reference.
func (f *File) Ref() wire.FileRef { return f.ref }

// Geometry returns the file's stripe geometry.
func (f *File) Geometry() raid.Geometry { return f.geom }

// Scheme returns the file's redundancy scheme.
func (f *File) Scheme() wire.Scheme { return f.ref.Scheme }

// Size returns the file's logical size as known to this client.
func (f *File) Size() int64 { return f.size.Load() }

// WriteAt writes len(p) bytes at offset off, maintaining the file's
// redundancy per its scheme.
//
// With one server marked down, Raid1, Raid5 and Hybrid files accept
// degraded writes (an extension beyond the paper's prototype): data
// destined for the failed server is carried by its redundancy — the mirror
// copy, the stripe parity, or the mirrored overflow region — and restored
// by the next Rebuild. Raid0 and the instrumented RAID5 variants return
// ErrDegradedWrite.
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("client: negative offset %d", off)
	}
	if len(p) == 0 {
		return 0, nil
	}
	// One trace ID per logical operation: it rides the wire header of every
	// RPC this write issues, so server-side slow-op logs correlate back here.
	tr := obs.NewTraceID()
	opStart := time.Now()
	defer func() { f.c.Observe("op_write", f.c.sinceStart(opStart)) }()
	// Online scheme migration (relayout.go): the whole write runs under
	// the shared side of the relayout gate so a migration's chunk copies
	// never interleave with it. A write overlapping the already-copied
	// region is mirrored into the shadow layout once the live write lands;
	// one wholly ahead of the cursor goes to the live layout only (the
	// copy will reach it).
	var mig *File
	if !f.gateExempt {
		f.c.relayoutGate.RLock()
		defer f.c.relayoutGate.RUnlock()
		if dst, cur, ok := f.c.relayoutDst(f.ref.ID); ok && off < cur {
			mig = dst
		}
	}
	dead := -1
	if d, down := f.c.anyDown(f.ref); down {
		switch f.ref.Scheme {
		case wire.Raid1, wire.Raid5, wire.Hybrid:
			dead = d
		case wire.ReedSolomon:
			// Degraded writes carry one failure (the dirty-region log and
			// delta resync are per-outage); with several servers out the
			// file stays readable but rejects writes until rebuild.
			if len(f.c.allDown(f.ref)) > 1 {
				return 0, ErrDegradedWrite
			}
			dead = d
		default:
			return 0, ErrDegradedWrite
		}
	}
	plan := core.PlanWrite(f.geom, f.ref.Scheme, off, int64(len(p)))
	execDead := dead
	forwarded := false
	if dead >= 0 {
		// Decide-and-execute runs under the resync replay gate (shared side)
		// so an item replay never interleaves with a foreground write; see
		// Client.ResyncExclusive.
		f.c.resyncGate.RLock()
		defer f.c.resyncGate.RUnlock()
		f.c.degradedInFlight.Add(1)
		if cur, ok := f.c.resyncCursor(f.ref.ID, dead); ok &&
			syncExtentEnd(f.geom, f.ref.Scheme, plan, off, int64(len(p))) <= cur {
			// The whole extent is behind the resync cursor: the recovering
			// server is current there, so write to it directly instead of
			// re-dirtying the log.
			f.c.degradedInFlight.Add(-1)
			forwarded = true
			execDead = -1
		} else {
			defer f.c.degradedInFlight.Add(-1)
			// Dirty-then-write: the damage goes on the replicated log before
			// any data lands, so a crash in between costs a spurious replay,
			// never a missed one.
			if err := f.c.recordDirty(f.ref, f.geom, plan, dead); err != nil {
				return 0, err
			}
		}
	}
	if err := f.execute(plan, off, p, execDead, tr); err != nil {
		return 0, err
	}
	if mig != nil {
		// Dual-write: the copied region of the shadow layout must track
		// the live layout byte for byte, so a failure here fails the write
		// — a silent skip would surface as divergence at cutover.
		if _, err := mig.WriteAt(p, off); err != nil {
			return 0, fmt.Errorf("client: migration dual-write: %w", err)
		}
		f.c.metrics.relayoutDualWrites.Add(1)
	}
	f.c.metrics.writes.Add(1)
	f.c.metrics.writeBytes.Add(int64(len(p)))
	switch {
	case forwarded:
		f.c.metrics.resyncForwards.Add(1)
	case dead >= 0:
		f.c.metrics.degradedWrites.Add(1)
		// The dead server missed this write: its stores are stale, so the
		// breaker must not re-admit it before rebuild/resync + MarkUp.
		f.c.markStale(dead)
	}
	for {
		old := f.size.Load()
		if off+int64(len(p)) <= old || f.size.CompareAndSwap(old, off+int64(len(p))) {
			break
		}
	}
	return len(p), nil
}

// execute runs the portions of a write plan. The RAID5 deadlock-avoidance
// rule (Section 5.1) requires only that the lower-numbered partial stripe's
// parity READ completes before the higher-numbered one is issued: a leading
// read-modify-write portion therefore starts first, and the remaining
// portions launch as soon as its parity read has returned, overlapping its
// write phase.
//
// The in-place data of the plain and (XOR) full-stripe portions is
// coalesced into one multi-span WriteData per server (writeBatch), issued
// concurrently with the batched parity writes; the RMW, mirror, overflow
// and Reed-Solomon portions keep their own protocols.
func (f *File) execute(plan core.Plan, off int64, p []byte, dead int, tr uint64) error {
	data := func(s raid.Span) []byte { return p[s.Off-off : s.End()-off] }

	var headErr error
	headDone := make(chan struct{})
	rest := plan.Portions
	if len(rest) > 1 && rest[0].Mode == core.ModeRMW {
		head := rest[0]
		rest = rest[1:]
		f.c.metrics.rmws.Add(1)
		lockHeld := make(chan struct{})
		go func() {
			defer close(headDone)
			defer f.timePath(f.writePathName("rmw"))()
			headErr = f.writeRMW(head.Span, data(head.Span), func() { close(lockHeld) }, dead, tr)
		}()
		<-lockHeld // head's parity read has completed (or failed)
	} else {
		close(headDone)
	}

	// Split and compute up front so the coalesced data RPCs and the parity
	// RPCs all hit the wire together.
	batch := newWriteBatch(f.geom)
	parity := newParityBatch(f.geom)
	var others []core.Portion
	var stops []func()
	var prepErr error
	for _, pt := range rest {
		if prepErr != nil {
			break
		}
		switch {
		case pt.Mode == core.ModePlain:
			stops = append(stops, f.timePath("op_write_plain"))
			batch.add(pt.Span, splitByServer(f.geom, pt.Span.Off, data(pt.Span)))
		case pt.Mode == core.ModeFullStripe && f.ref.Scheme != wire.ReedSolomon:
			f.c.metrics.fullStripes.Add(1)
			stops = append(stops, f.timePath(f.writePathName("full_stripe")))
			if err := f.addFullStripeParity(parity, pt.Span, data(pt.Span)); err != nil {
				prepErr = err
				break
			}
			batch.add(pt.Span, splitByServer(f.geom, pt.Span.Off, data(pt.Span)))
		default:
			others = append(others, pt)
		}
	}
	if prepErr != nil {
		<-headDone
		return prepErr
	}

	errs := make([]error, len(others)+2)
	var wg sync.WaitGroup
	if !batch.empty() {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[len(others)] = batch.flush(f, dead, tr)
		}()
	}
	if !parity.empty() {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[len(others)+1] = parity.flush(f, dead, tr)
		}()
	}
	for i, pt := range others {
		wg.Add(1)
		go func(i int, pt core.Portion) {
			defer wg.Done()
			switch pt.Mode {
			case core.ModeMirrored:
				f.c.metrics.mirrors.Add(1)
				defer f.timePath("op_write_mirror")()
				errs[i] = f.writeMirrored(pt.Span, data(pt.Span), dead, tr)
			case core.ModeFullStripe:
				f.c.metrics.fullStripes.Add(1)
				defer f.timePath(f.writePathName("full_stripe"))()
				errs[i] = f.writeFullStripesRS(pt.Span, data(pt.Span), dead, tr)
			case core.ModeRMW:
				f.c.metrics.rmws.Add(1)
				defer f.timePath(f.writePathName("rmw"))()
				errs[i] = f.writeRMW(pt.Span, data(pt.Span), nil, dead, tr)
			case core.ModeOverflow:
				f.c.metrics.overflowWrites.Add(1)
				defer f.timePath("op_write_overflow")()
				errs[i] = f.writeOverflow(pt.Span, data(pt.Span), dead, tr)
			default:
				errs[i] = fmt.Errorf("client: unknown portion mode %v", pt.Mode)
			}
		}(i, pt)
	}
	wg.Wait()
	for _, stop := range stops {
		stop()
	}
	<-headDone
	if headErr != nil {
		return headErr
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// timePath starts a timer for one per-path histogram and returns the stop
// function; meant for defer at the top of each write-path branch.
func (f *File) timePath(name string) func() {
	start := time.Now()
	return func() { f.c.Observe(name, f.c.sinceStart(start)) }
}

// writePathName returns the histogram name of one write-path branch:
// Reed-Solomon files get their own op_write_rs_* series so the GF(256)
// coding paths are visible separately from the XOR-parity ones.
func (f *File) writePathName(base string) string {
	if f.ref.Scheme == wire.ReedSolomon {
		return "op_write_rs_" + base
	}
	return "op_write_" + base
}

// sendWriteData ships per-server payloads of span to the data files,
// skipping the dead server (whose contents the redundancy carries) when
// dead >= 0.
func (f *File) sendWriteData(span raid.Span, payloads [][]byte, dead int, tr uint64) error {
	return f.c.eachServer(f.geom.Servers, func(i int) error {
		if len(payloads[i]) == 0 || i == dead {
			return nil
		}
		_, err := f.c.callSrvT(i, &wire.WriteData{
			File:  f.ref,
			Spans: []wire.Span{{Off: span.Off, Len: span.Len}},
			Data:  payloads[i],
		}, tr)
		return err
	})
}

func (f *File) writeMirrored(span raid.Span, p []byte, dead int, tr uint64) error {
	dataPayloads := splitByServer(f.geom, span.Off, p)
	mirrorPayloads := splitByMirror(f.geom, span.Off, p)
	var wg sync.WaitGroup
	var dErr, mErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		dErr = f.sendWriteData(span, dataPayloads, dead, tr)
	}()
	go func() {
		defer wg.Done()
		mErr = f.c.eachServer(f.geom.Servers, func(i int) error {
			if len(mirrorPayloads[i]) == 0 || i == dead {
				return nil
			}
			_, err := f.c.callSrvT(i, &wire.WriteMirror{
				File:  f.ref,
				Spans: []wire.Span{{Off: span.Off, Len: span.Len}},
				Data:  mirrorPayloads[i],
			}, tr)
			return err
		})
	}()
	wg.Wait()
	if dErr != nil {
		return dErr
	}
	return mErr
}

// Full-stripe XOR writes — data in place plus freshly computed parity,
// with no locks and no reads (the RAID5 best case) — run through the
// writeBatch/parityBatch machinery in execute; see batch.go. Overflow
// invalidation for the written stripes happens implicitly at each server
// when it applies the in-place data write (Section 4's migration back to
// RAID5); no extra messages are needed.

// writeRMW performs a partial-stripe RAID5 update: read the old parity
// (acquiring the stripe's lock) and the old data concurrently, fold the
// delta into the parity, write the new data, then write the parity
// (releasing the lock). The two reads overlap — "the client reads the data
// in the partial stripes and also the corresponding parity region" — which
// keeps the lock-hold window to the write phase; this is why the paper
// keeps the lock-hold window modest (Figure 3). onParityRead, if non-nil,
// is called exactly once, when the parity read has completed — the caller
// uses it to release the next partial stripe's parity read per the
// Section 5.1 ordering rule.
//
// Degraded mode (dead >= 0):
//   - If the dead server holds this stripe's parity, there is no parity to
//     maintain until rebuild: the new data is simply written to the (all
//     live) data servers.
//   - If the dead server holds data units in the range, their old contents
//     are reconstructed from the survivors and the parity before the delta
//     is applied, so the updated parity encodes the new bytes and the next
//     rebuild materializes them.
func (f *File) writeRMW(span raid.Span, p []byte, onParityRead func(), dead int, tr uint64) error {
	if f.ref.Scheme == wire.ReedSolomon {
		return f.writeRMWRS(span, p, onParityRead, dead, tr)
	}
	g := f.geom
	stripe := g.StripeOf(span.Off)
	lock := f.ref.Scheme.UsesLocking()
	ps := g.ParityServerOf(stripe)

	if dead == ps {
		// Degraded with the parity server down: the stripe's data units are
		// all on live servers; parity is recomputed at rebuild.
		if onParityRead != nil {
			onParityRead()
		}
		return f.sendWriteData(span, splitByServer(g, span.Off, p), dead, tr)
	}

	// 1. Old-parity read (lock acquisition) and old-data read, in parallel.
	// The acquisition carries a fresh owner token: if the locked read fails
	// client-side (deadline, dead link) we cannot know whether the server
	// granted the lock, and the token lets us release exactly that possible
	// ghost acquisition without ever touching a lock granted to anyone else.
	// It also carries the policy's lock lease: the server opens a stripe
	// intent with that deadline, and lease.go heartbeats it until the
	// unlocking parity write retires it — so a client that dies mid-RMW
	// costs one lease, not a wedged stripe.
	pol := f.c.getPolicy()
	var token uint64
	if lock {
		token = nextLockToken()
	}
	var parity []byte
	var pErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		if onParityRead != nil {
			defer onParityRead()
		}
		// parity_lock_wait: how long the locked parity read took end to end —
		// queueing behind another holder of this stripe's lock included.
		if lock {
			defer f.timePath("parity_lock_wait")()
		}
		presp, err := f.c.callSrvT(ps, &wire.ReadParity{
			File: f.ref, Stripes: []int64{stripe}, Lock: lock, Owner: token,
			LeaseMS: leaseMS(pol),
		}, tr)
		if err != nil {
			pErr = err
			if lock && isUnavailable(err) {
				// The server may hold the lock for us without us knowing;
				// fire the token-scoped release so no peer queues behind a
				// ghost (the Section 4 protocol cannot deadlock on us). No
				// data has been written: a clean (non-dirty) cancel.
				f.c.releaseParityLock(ps, f.ref, stripe, token, false)
			}
			return
		}
		parity = presp.(*wire.ReadResp).Data
		if int64(len(parity)) != g.StripeUnit {
			pErr = fmt.Errorf("client: parity read returned %d bytes, want %d",
				len(parity), g.StripeUnit)
			if lock {
				// Granted but unusable: free the acquisition (stripe untouched).
				f.c.releaseParityLock(ps, f.ref, stripe, token, false)
			}
			return
		}
		if lock {
			f.c.trackLease(ps, f.ref, stripe, token)
		}
	}()
	old := make([]byte, span.Len)
	var dErr error
	if dead < 0 {
		dErr = f.readRaw(span, old, tr)
	} else {
		// Live pieces read normally; the dead server's pieces are
		// reconstructed below, once the parity is in hand.
		dErr = f.readRawLive(span, old, dead)
	}
	<-done
	if pErr != nil {
		return pErr // lock not held (or unusable); nothing to release
	}
	if dErr == nil && dead >= 0 {
		dErr = f.reconstructOldPieces(span, old, dead)
	}

	unlockOnError := func(cause error) error {
		if lock {
			// Release the lock with an unchanged parity write so a failure
			// here cannot wedge other clients; if even that cannot reach the
			// server, fall back to the token-scoped release. No data write
			// has started, so the stripe is untouched (non-dirty).
			f.c.untrackLease(token)
			_, uerr := f.c.callSrvT(ps, &wire.WriteParity{
				File: f.ref, Stripes: []int64{stripe}, Data: parity, Unlock: true, Owner: token,
			}, tr)
			if uerr != nil && isUnavailable(uerr) {
				f.c.releaseParityLock(ps, f.ref, stripe, token, false)
			}
		}
		return cause
	}
	if dErr != nil {
		return unlockOnError(dErr)
	}

	// 3. New parity = old parity ^ old data ^ new data.
	if f.ref.Scheme != wire.Raid5NPC {
		f.c.chargeXOR(2 * span.Len)
		core.ApplyParityDelta(g, span.Off, old, p, parity)
	}

	// 4. Write the new data and the new parity; the parity write releases
	// the lock. For the protocol's consistency guarantee (concurrent writes
	// to non-overlapping regions) no ordering between them is needed:
	// another client's delta never involves this range's data, and the
	// parity block itself is serialized by the lock. Crash consistency is a
	// different matter — see writeRMWCommit for the two orderings.
	return f.writeRMWCommit(pol, span, p, stripe, ps, parity, lock, token, dead, tr)
}

// writeRMWCommit runs the write phase of a read-modify-write.
//
// With Policy.CrashSafeRMW the phases are strictly ordered: the data writes
// must all complete before the unlocking parity write is issued. The
// unlocking write is what retires the stripe's intent record on the parity
// server, so under this ordering an intent is only ever retired when data
// and parity are both fully in place — a crash at any earlier point leaves
// an open intent, and recovery's replay reconstructs the parity from
// whatever data landed. If a data write fails partway, parity and data may
// already disagree, so the lock is released dirty: the server fail-stops
// the stripe (abandons the intent, refuses new locks) until replay
// reconciles it.
//
// Without CrashSafeRMW the two run concurrently — the paper's layout, which
// keeps the lock-hold window to the write phase (Figure 3) but reopens the
// write hole if a client can crash between them.
func (f *File) writeRMWCommit(pol Policy, span raid.Span, p []byte, stripe int64, ps int, parity []byte, lock bool, token uint64, dead int, tr uint64) error {
	g := f.geom
	if lock && pol.CrashSafeRMW {
		if dErr := f.sendWriteData(span, splitByServer(g, span.Off, p), dead, tr); dErr != nil {
			f.c.untrackLease(token)
			f.c.releaseParityLock(ps, f.ref, stripe, token, true)
			return dErr
		}
		_, pwErr := f.c.callSrvT(ps, &wire.WriteParity{
			File: f.ref, Stripes: []int64{stripe}, Data: parity, Unlock: true, Owner: token,
		}, tr)
		f.c.untrackLease(token)
		if pwErr != nil {
			if errors.Is(pwErr, wire.ErrLeaseExpired) {
				// The server expired our lease mid-write and fenced this
				// late parity write off; the stripe is fail-stopped until
				// replay reconstructs its parity from the data we wrote.
				f.c.metrics.leaseExpiries.Add(1)
				return pwErr
			}
			if isUnavailable(pwErr) {
				// The unlocking parity write may have been lost before the
				// server applied it; the stripe's data has changed, so the
				// lingering acquisition must be released dirty.
				f.c.releaseParityLock(ps, f.ref, stripe, token, true)
			}
			return pwErr
		}
		return nil
	}

	var wErr error
	wdone := make(chan struct{})
	go func() {
		defer close(wdone)
		wErr = f.sendWriteData(span, splitByServer(g, span.Off, p), dead, tr)
	}()
	_, pwErr := f.c.callSrvT(ps, &wire.WriteParity{
		File: f.ref, Stripes: []int64{stripe}, Data: parity, Unlock: lock, Owner: token,
	}, tr)
	<-wdone
	if lock {
		f.c.untrackLease(token)
	}
	if pwErr != nil {
		if lock && isUnavailable(pwErr) {
			// The unlocking parity write may have been lost before the
			// server applied it; make sure the acquisition cannot linger.
			// Data writes ran concurrently, so the release is dirty.
			f.c.releaseParityLock(ps, f.ref, stripe, token, true)
		}
		return pwErr
	}
	return wErr
}

// writeOverflow stores a partial-stripe portion the Hybrid way: the new
// bytes go to the overflow region of each piece's home server, and a mirror
// copy goes to the overflow-mirror region of the unit's mirror server. No
// locks, no reads — the in-place data and parity stay untouched so the
// stripe remains reconstructable.
func (f *File) writeOverflow(span raid.Span, p []byte, dead int, tr uint64) error {
	g := f.geom
	prim := serverPieces(g, span.Off, span.Len)
	mirr := mirrorPieces(g, span.Off, span.Len)
	primPayload := splitByServer(g, span.Off, p)
	mirrPayload := splitByMirror(g, span.Off, p)

	var wg sync.WaitGroup
	var pErr, mErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		pErr = f.c.eachServer(g.Servers, func(i int) error {
			if len(prim[i]) == 0 || i == dead {
				return nil
			}
			_, err := f.c.callSrvT(i, &wire.WriteOverflow{
				File: f.ref, Extents: prim[i], Data: primPayload[i],
			}, tr)
			return err
		})
	}()
	go func() {
		defer wg.Done()
		mErr = f.c.eachServer(g.Servers, func(i int) error {
			if len(mirr[i]) == 0 || i == dead {
				return nil
			}
			_, err := f.c.callSrvT(i, &wire.WriteOverflow{
				File: f.ref, Extents: mirr[i], Data: mirrPayload[i], Mirror: true,
			}, tr)
			return err
		})
	}()
	wg.Wait()
	if pErr != nil {
		return pErr
	}
	return mErr
}

// ReadAt reads len(p) bytes at offset off. Bytes beyond what has been
// written read as zero. With a failed server it falls back to the scheme's
// degraded path.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("client: negative offset %d", off)
	}
	if len(p) == 0 {
		return 0, nil
	}
	tr := obs.NewTraceID()
	opStart := time.Now()
	defer func() { f.c.Observe("op_read", f.c.sinceStart(opStart)) }()
	// Reads come from the live (committed) layout throughout a migration.
	// The gate's shared side makes the cutover atomic with respect to
	// in-flight reads: AdoptRef swaps ref and geometry under the exclusive
	// side.
	if !f.gateExempt {
		f.c.relayoutGate.RLock()
		defer f.c.relayoutGate.RUnlock()
	}
	if idx, down := f.c.anyDown(f.ref); down {
		f.c.metrics.degradedReads.Add(1)
		n, err := f.readDegraded(p, off, idx)
		if err == nil {
			f.c.metrics.reads.Add(1)
			f.c.metrics.readBytes.Add(int64(n))
		}
		return n, err
	}
	span := raid.Span{Off: off, Len: int64(len(p))}
	perServer, err := f.fetchSpansT(span, false, tr)
	if err != nil {
		// A server died mid-read. For redundant schemes, fail over to the
		// reconstruction paths on the spot rather than surfacing an error
		// the redundancy exists to absorb.
		if dead, ok := FailedServer(err); ok && dead < f.geom.Servers &&
			f.ref.Scheme != wire.Raid0 {
			f.c.metrics.failovers.Add(1)
			f.c.metrics.degradedReads.Add(1)
			n, derr := f.readDegraded(p, off, dead)
			if derr == nil {
				f.c.metrics.reads.Add(1)
				f.c.metrics.readBytes.Add(int64(n))
				return n, nil
			}
		}
		return 0, err
	}
	mergeFromServers(f.geom, off, p, perServer)
	f.c.metrics.reads.Add(1)
	f.c.metrics.readBytes.Add(int64(len(p)))
	return len(p), nil
}

// fetchSpans reads one span from all servers and returns the per-server
// piece payloads. raw skips server-side overflow patching.
func (f *File) fetchSpans(span raid.Span, raw bool) ([][]byte, error) {
	return f.fetchSpansT(span, raw, 0)
}

func (f *File) fetchSpansT(span raid.Span, raw bool, tr uint64) ([][]byte, error) {
	g := f.geom
	pieces := serverPieces(g, span.Off, span.Len)
	perServer := make([][]byte, g.Servers)
	err := f.c.eachServer(g.Servers, func(i int) error {
		want := bytesFor(pieces[i])
		if want == 0 {
			return nil
		}
		resp, err := f.c.callSrvT(i, &wire.Read{
			File:  f.ref,
			Spans: []wire.Span{{Off: span.Off, Len: span.Len}},
			Raw:   raw,
		}, tr)
		if err != nil {
			return err
		}
		data := resp.(*wire.ReadResp).Data
		if int64(len(data)) != want {
			return fmt.Errorf("client: server %d returned %d bytes, want %d", i, len(data), want)
		}
		perServer[i] = data
		return nil
	})
	return perServer, err
}

// readRaw fills dst with the in-place (data file) contents of span,
// bypassing overflow patching; the RMW path uses it because parity is
// defined over the in-place data.
func (f *File) readRaw(span raid.Span, dst []byte, tr uint64) error {
	perServer, err := f.fetchSpansT(span, true, tr)
	if err != nil {
		return err
	}
	mergeFromServers(f.geom, span.Off, dst, perServer)
	return nil
}

// Compact migrates a Hybrid file's overflow-resident data back to RAID5
// and reclaims the overflow regions' storage — the background recovery
// process the paper sketches in Section 6.7: "a simple process that reads
// files in their entirety and writes them in a large chunk". After Compact,
// the file's long-term storage matches the RAID5 scheme's (plus at most one
// trailing partial stripe still mirrored in overflow). It is a no-op for
// other schemes. The caller should run it when the file is quiescent.
func (f *File) Compact() error {
	if f.ref.Scheme != wire.Hybrid {
		return nil
	}
	if _, down := f.c.anyDown(f.ref); down {
		return ErrDegradedWrite
	}
	size := f.size.Load()
	ss := f.geom.StripeSize()
	chunk := ss * 64
	buf := make([]byte, chunk)
	for off := int64(0); off < size; off += chunk {
		n := chunk
		if off+n > size {
			n = size - off
		}
		if _, err := f.ReadAt(buf[:n], off); err != nil {
			return err
		}
		// Rewriting in place sends whole stripes down the RAID5 path and
		// implicitly invalidates the overflow extents they cover.
		if _, err := f.WriteAt(buf[:n], off); err != nil {
			return err
		}
	}
	f.c.metrics.compactions.Add(1)
	// Reclaim the dead slots.
	return f.c.eachServer(f.geom.Servers, func(i int) error {
		if _, err := f.c.callSrv(i, &wire.CompactOverflow{File: f.ref}); err != nil {
			return err
		}
		_, err := f.c.callSrv(i, &wire.CompactOverflow{File: f.ref, Mirror: true})
		return err
	})
}

// Sync flushes every server's stores for this file and publishes the
// file's size to the manager.
func (f *File) Sync() error {
	if err := f.c.eachServer(f.geom.Servers, func(i int) error {
		_, err := f.c.callSrv(i, &wire.Sync{File: f.ref})
		return err
	}); err != nil {
		return err
	}
	_, err := f.c.mgrCall(&wire.SetSize{ID: f.ref.ID, Size: f.size.Load()})
	return err
}

// StorageBytes sums this file's storage across all servers: the total and
// the per-store breakdown (data, mirror, parity, overflow, overflow-mirror)
// — the measurement behind Table 2 of the paper.
func (f *File) StorageBytes() (int64, [5]int64, error) {
	var mu sync.Mutex
	var total int64
	var byStore [5]int64
	err := f.c.eachServer(f.geom.Servers, func(i int) error {
		resp, err := f.c.callSrv(i, &wire.StorageStat{FileID: f.ref.ID})
		if err != nil {
			return err
		}
		st := resp.(*wire.StorageStatResp)
		mu.Lock()
		defer mu.Unlock()
		total += st.Total
		for k := range byStore {
			byStore[k] += st.ByStore[k]
		}
		return nil
	})
	return total, byStore, err
}
