package client

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"csar/internal/wire"
)

// This file is the client's RPC resilience layer: per-call deadlines,
// retries with exponential backoff and jitter for idempotent requests, and
// a per-server circuit breaker with probing re-admission. Together with the
// automatic degraded-read failover in file.go it is what turns the paper's
// redundancy from an offline-recovery story into an online one — a hung or
// dead I/O server costs one deadline, not a wedged file system.

// ErrCallTimeout is returned when a call's deadline expires. It wraps
// context.DeadlineExceeded, as does the rpc package's own timeout, so one
// errors.Is classifies both.
var ErrCallTimeout = fmt.Errorf("client: call timed out (%w)", context.DeadlineExceeded)

// ErrBreakerOpen is returned without touching the network when a server's
// circuit breaker is open: the server failed repeatedly and its re-admission
// probe has not yet succeeded.
var ErrBreakerOpen = errors.New("client: server circuit breaker open")

// ErrNeedsRebuild explains why a healthy-looking server is still refused:
// degraded writes ran while it was out, so its stores are stale until
// Rebuild and MarkUp.
var ErrNeedsRebuild = errors.New("client: server missed degraded writes; rebuild before re-admission")

// ServerError attributes a transport-level failure to one I/O server. The
// read path uses it to pick the degraded-reconstruction target; it is only
// produced for unavailability-class failures (timeouts, dead connections,
// CodeUnavailable responses), never for application errors.
type ServerError struct {
	Idx int
	Err error
}

func (e *ServerError) Error() string {
	return fmt.Sprintf("client: server %d unavailable: %v", e.Idx, e.Err)
}

func (e *ServerError) Unwrap() error { return e.Err }

// FailedServer extracts the server index from an unavailability error
// returned by a client operation; ok is false for other errors.
func FailedServer(err error) (idx int, ok bool) {
	var se *ServerError
	if errors.As(err, &se) {
		return se.Idx, true
	}
	return -1, false
}

// Policy tunes the resilience layer. The zero Policy disables it entirely —
// no deadlines, no retries, no breaker — which is what correctness tests
// and the performance model (whose modeled delays must never race wall-
// clock deadlines) want.
type Policy struct {
	// CallTimeout is the per-call deadline on every I/O-server request;
	// non-positive means none.
	CallTimeout time.Duration
	// Retries is how many times an idempotent call is re-issued after an
	// unavailability-class failure. Non-idempotent calls (writes, locked
	// parity reads) are never retried: a lost response leaves the server-
	// side effect in place, and blindly repeating it could release another
	// client's lock or double-apply a side effect.
	Retries int
	// BackoffBase is the sleep before the first retry; each further retry
	// doubles it, capped at BackoffMax.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Jitter adds up to this fraction of the backoff as random extra sleep,
	// de-synchronizing clients that failed together.
	Jitter float64
	// BreakerThreshold opens a server's circuit breaker after this many
	// consecutive unavailability failures; non-positive disables the
	// breaker.
	BreakerThreshold int
	// ProbeAfter is how long an open breaker waits before the next
	// re-admission probe (a Health call).
	ProbeAfter time.Duration
	// Seed seeds the jitter's random source; zero uses a fixed default so
	// tests are reproducible.
	Seed int64
	// LockLease bounds how long a parity-lock acquisition may go without a
	// heartbeat before the server revokes it and fail-stops the stripe (the
	// write-hole close: a crashed client cannot wedge a stripe forever).
	// Non-positive requests no lease — the lock is held until released,
	// which is what correctness tests and the performance model want.
	LockLease time.Duration
	// LeaseRenewEvery is the heartbeat period for held leases. Zero derives
	// LockLease/3; negative disables renewal (tests use that to force an
	// expiry deterministically).
	LeaseRenewEvery time.Duration
	// CrashSafeRMW orders the read-modify-write's phases for crash
	// consistency: the data writes must complete before the unlocking
	// parity write is issued, so the stripe's intent record on the parity
	// server always brackets the window where data and parity can disagree.
	// Off, the two run concurrently (the paper's low-latency layout, fine
	// when clients never crash mid-write).
	CrashSafeRMW bool
}

// DefaultPolicy is the resilience configuration csar.Dial applies to real
// deployments: 2-second deadlines, two retries from 2ms backoff, a breaker
// tripping after three consecutive failures and probing every 250ms.
func DefaultPolicy() Policy {
	return Policy{
		CallTimeout:      2 * time.Second,
		Retries:          2,
		BackoffBase:      2 * time.Millisecond,
		BackoffMax:       100 * time.Millisecond,
		Jitter:           0.2,
		BreakerThreshold: 3,
		ProbeAfter:       250 * time.Millisecond,
		LockLease:        10 * time.Second,
		CrashSafeRMW:     true,
	}
}

// BreakerState is one server's circuit-breaker state.
type BreakerState int32

const (
	// BreakerClosed: the server is healthy; calls flow normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the server failed BreakerThreshold consecutive calls;
	// requests fail fast (and reads route degraded) until a probe succeeds.
	BreakerOpen
	// BreakerProbing: a re-admission Health probe is in flight.
	BreakerProbing
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerProbing:
		return "probing"
	}
	return fmt.Sprintf("breaker(%d)", int32(s))
}

// serverHealth is the breaker bookkeeping for one server.
type serverHealth struct {
	mu      sync.Mutex
	state   BreakerState
	fails   int       // consecutive unavailability failures
	retryAt time.Time // open: when the next probe may run
	// stale records that degraded writes ran while the server was out: its
	// stores miss data, so a successful probe must NOT re-admit it — only
	// Rebuild + MarkUp may.
	stale bool
}

// lockTokenFallback backs nextLockToken when the system's entropy source is
// unreadable (effectively never); mixing a counter into the clock keeps even
// that path unique within a process.
var lockTokenFallback atomic.Uint64

// nextLockToken returns a fresh parity-lock acquisition token (wire
// ReadParity.Owner / UnlockParity.Owner / WriteParity.Owner). The server
// cancels ghost acquisitions by token alone, with no notion of which client
// a token belongs to, so tokens must be unique across every process that can
// reach the same servers — a counter would make all clients emit the same
// sequence and let one client's ghost-release free another's live lock. Each
// token is therefore an independent 64-bit draw from crypto/rand (collision
// odds ~2^-64 per pair). Token 0 is reserved for "none".
func nextLockToken() uint64 {
	var b [8]byte
	for {
		var t uint64
		if _, err := crand.Read(b[:]); err != nil {
			t = uint64(time.Now().UnixNano())*0x9E3779B97F4A7C15 + lockTokenFallback.Add(1)
		} else {
			t = binary.LittleEndian.Uint64(b[:])
		}
		if t != 0 {
			return t
		}
	}
}

// SetPolicy installs a resilience policy on the client. Call it before
// issuing I/O; the zero Policy (the default for clients built by
// cluster.NewClient) disables the layer.
func (c *Client) SetPolicy(p Policy) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.policy = p
	seed := p.Seed
	if seed == 0 {
		seed = 1
	}
	c.rng = rand.New(rand.NewSource(seed))
}

// Policy returns the client's current resilience policy.
func (c *Client) Policy() Policy {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.policy
}

func (c *Client) getPolicy() Policy {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.policy
}

// BreakerStates returns every server's current breaker state.
func (c *Client) BreakerStates() []BreakerState {
	states := make([]BreakerState, len(c.srv))
	for i := range c.health {
		h := &c.health[i]
		h.mu.Lock()
		states[i] = h.state
		h.mu.Unlock()
	}
	return states
}

// isUnavailable classifies an error from a server call: true for transport-
// level failures and CodeUnavailable responses (retry/failover territory),
// false for application errors from a live server (retrying cannot help).
func isUnavailable(err error) bool {
	var we *wire.Error
	if errors.As(err, &we) {
		return we.Code == wire.CodeUnavailable
	}
	return true
}

// isIdempotent reports whether a request may be safely re-issued after a
// failure whose server-side effect is unknown. Reads, checksums, stat and
// liveness checks qualify. Writes do not. A locked ReadParity does not
// either: the lost response may have granted the lock, and a retried
// acquisition behind it would deadlock on our own ghost — the RMW path
// handles that case with an owner-token UnlockParity instead.
func isIdempotent(m wire.Msg) bool {
	switch m := m.(type) {
	case *wire.Read, *wire.ReadMirror, *wire.Ping, *wire.Health,
		*wire.StorageStat, *wire.ChecksumRange, *wire.OverflowDump,
		*wire.RenewLease, *wire.ListIntents, *wire.DirtyDump:
		return true
	case *wire.MarkDirty:
		// Re-delivery only bumps the marked items' generation counters; the
		// log contents are a set, so a duplicate record is absorbed.
		return true
	case *wire.ReadParity:
		return !m.Lock
	}
	return false
}

// timeoutCaller is the optional fast path of a Caller: rpc.Client satisfies
// it, and its abandon path frees the sequence slot on expiry instead of
// leaving a goroutine parked on the connection.
type timeoutCaller interface {
	CallTimeout(m wire.Msg, timeout time.Duration) (wire.Msg, error)
}

// tracedCaller is the optional tracing path of a Caller: rpc.Client
// satisfies it, sending the operation trace ID in the request frame's wire
// header. Transports without it (direct in-process handlers) simply drop
// the ID — tracing is best-effort correlation, never required for
// correctness.
type tracedCaller interface {
	CallTraced(m wire.Msg, trace uint64, timeout time.Duration) (wire.Msg, error)
}

// callOnce issues one attempt with an optional deadline. When the transport
// supports deadlines natively (rpc.Client), the timeout is threaded down so
// an expired call is abandoned rather than left running; otherwise (direct
// in-process handlers) the deadline is enforced by racing a goroutine, whose
// result is dropped when it eventually finishes.
func (c *Client) callOnce(idx int, m wire.Msg, timeout time.Duration) (wire.Msg, error) {
	return c.callOnceT(idx, m, timeout, 0)
}

// callOnceT is callOnce carrying an operation trace ID (zero = untraced).
func (c *Client) callOnceT(idx int, m wire.Msg, timeout time.Duration, trace uint64) (wire.Msg, error) {
	if tc, ok := c.srv[idx].(tracedCaller); ok && trace != 0 {
		return tc.CallTraced(m, trace, timeout)
	}
	if timeout <= 0 {
		return c.srv[idx].Call(m)
	}
	if tc, ok := c.srv[idx].(timeoutCaller); ok {
		return tc.CallTimeout(m, timeout)
	}
	type result struct {
		resp wire.Msg
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		resp, err := c.srv[idx].Call(m)
		ch <- result{resp, err}
	}()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r.resp, r.err
	case <-timer.C:
		return nil, ErrCallTimeout
	}
}

// backoff sleeps before retry attempt a (1-based), exponentially from
// BackoffBase with jitter.
func (c *Client) backoff(attempt int, p Policy) {
	if p.BackoffBase <= 0 {
		return
	}
	d := p.BackoffBase << (attempt - 1)
	if p.BackoffMax > 0 && d > p.BackoffMax {
		d = p.BackoffMax
	}
	if p.Jitter > 0 {
		c.mu.Lock()
		j := c.rng.Float64()
		c.mu.Unlock()
		d += time.Duration(float64(d) * p.Jitter * j)
	}
	time.Sleep(d)
}

// admit is the breaker's gate on one call: closed passes, open fails fast
// (probing first when a probe is due). A server under active resync passes
// unconditionally: its breaker is rightly open-and-stale, but the replay
// traffic and forwarded foreground writes must reach it.
func (c *Client) admit(idx int, p Policy) error {
	if c.resyncingServer(idx) {
		return nil
	}
	h := &c.health[idx]
	h.mu.Lock()
	switch h.state {
	case BreakerClosed:
		h.mu.Unlock()
		return nil
	case BreakerProbing:
		h.mu.Unlock()
		return &ServerError{Idx: idx, Err: ErrBreakerOpen}
	}
	// Open. Probe if due, else fail fast.
	if time.Now().Before(h.retryAt) {
		h.mu.Unlock()
		return &ServerError{Idx: idx, Err: ErrBreakerOpen}
	}
	h.state = BreakerProbing
	h.mu.Unlock()
	if err := c.probe(idx, p); err != nil {
		return &ServerError{Idx: idx, Err: err}
	}
	return nil
}

// probe issues one Health call to an open server and re-admits it on
// success — unless degraded writes made it stale, in which case only
// Rebuild + MarkUp may close the breaker. The caller has moved the breaker
// to BreakerProbing.
func (c *Client) probe(idx int, p Policy) error {
	c.metrics.breakerProbes.Add(1)
	_, err := c.callOnce(idx, &wire.Health{}, p.CallTimeout)
	h := &c.health[idx]
	h.mu.Lock()
	defer h.mu.Unlock()
	if err != nil {
		h.state = BreakerOpen
		h.retryAt = time.Now().Add(p.ProbeAfter)
		return fmt.Errorf("probe: %w", err)
	}
	if h.stale {
		h.state = BreakerOpen
		h.retryAt = time.Now().Add(p.ProbeAfter)
		return ErrNeedsRebuild
	}
	h.state = BreakerClosed
	h.fails = 0
	c.metrics.breakerReadmits.Add(1)
	return nil
}

// noteFailure counts one unavailability failure toward the breaker.
func (c *Client) noteFailure(idx int, p Policy) {
	if p.BreakerThreshold <= 0 {
		return
	}
	h := &c.health[idx]
	h.mu.Lock()
	defer h.mu.Unlock()
	h.fails++
	if h.state == BreakerClosed && h.fails >= p.BreakerThreshold {
		h.state = BreakerOpen
		h.retryAt = time.Now().Add(p.ProbeAfter)
		c.metrics.breakerTrips.Add(1)
	}
}

// noteSuccess resets the consecutive-failure count.
func (c *Client) noteSuccess(idx int) {
	h := &c.health[idx]
	h.mu.Lock()
	h.fails = 0
	h.mu.Unlock()
}

// markStale records that a degraded write ran while server idx was out;
// breaker probes will then refuse to re-admit it until Rebuild + MarkUp.
func (c *Client) markStale(idx int) {
	if idx < 0 || idx >= len(c.health) {
		return
	}
	h := &c.health[idx]
	h.mu.Lock()
	h.stale = true
	h.mu.Unlock()
}

// resetHealth clears server idx's breaker and staleness (MarkUp's job,
// after Rebuild).
func (c *Client) resetHealth(idx int) {
	if idx < 0 || idx >= len(c.health) {
		return
	}
	h := &c.health[idx]
	h.mu.Lock()
	h.state = BreakerClosed
	h.fails = 0
	h.stale = false
	h.mu.Unlock()
}

// breakerDown reports whether server idx is refused by its breaker right
// now, running a re-admission probe first when one is due. Normal traffic
// routes around an open breaker (degraded reads), so this probe is the only
// way a recovered server gets noticed.
func (c *Client) breakerDown(idx int) bool {
	p := c.getPolicy()
	if p.BreakerThreshold <= 0 || idx >= len(c.health) {
		return false
	}
	h := &c.health[idx]
	h.mu.Lock()
	state := h.state
	probeDue := state == BreakerOpen && !time.Now().Before(h.retryAt)
	if probeDue {
		h.state = BreakerProbing
	}
	h.mu.Unlock()
	switch {
	case state == BreakerClosed:
		return false
	case probeDue:
		return c.probe(idx, p) != nil
	default:
		return true
	}
}

// releaseParityLock fires a best-effort, asynchronous UnlockParity for a
// locked parity-read acquisition whose outcome is unknown (the read failed
// or timed out client-side, but the server may have granted the lock). The
// owner token guarantees it can only release our own ghost acquisition —
// never a lock since granted to another client. dirty tells the server
// whether data writes may have landed under this acquisition: false means
// the stripe is untouched (the server simply retires the intent and hands
// the lock on), true means parity and data may disagree, so the server
// fail-stops the stripe until intent replay reconciles it.
func (c *Client) releaseParityLock(idx int, ref wire.FileRef, stripe int64, token uint64, dirty bool) {
	p := c.getPolicy()
	c.metrics.lockReleases.Add(1)
	go func() {
		c.callOnce(idx, &wire.UnlockParity{ //nolint:errcheck // best effort
			File: ref, Stripes: []int64{stripe}, Owner: token, Dirty: dirty,
		}, p.CallTimeout)
	}()
}
