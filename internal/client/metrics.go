package client

import "sync/atomic"

// Metrics counts a client's file-system operations, letting users and the
// benchmark harness see how the redundancy engine translated their I/O:
// how many writes took the full-stripe path vs the read-modify-write or
// overflow paths, how much redundancy traffic was generated, and how much
// work ran degraded.
type Metrics struct {
	Reads          int64 // ReadAt calls
	ReadBytes      int64
	Writes         int64 // WriteAt calls
	WriteBytes     int64
	FullStripes    int64 // portions written via the RAID5 full-stripe path
	RMWs           int64 // portions written via locked read-modify-write
	OverflowWrites int64 // portions written to the mirrored overflow region
	MirrorWrites   int64 // portions written via RAID1 whole mirroring
	DegradedReads  int64 // reads served with a server marked down
	DegradedWrites int64 // writes applied with a server marked down
	Compactions    int64

	ScrubBytes        int64 // store bytes examined by integrity scrubs
	ScrubFound        int64 // redundancy mismatches detected by scrubs
	ScrubRepaired     int64 // mismatches repaired in place
	ScrubUnrepairable int64 // mismatches scrub declined or failed to repair
	IntentSkips       int64 // stripes scrub skipped because an intent was open

	Retries         int64 // idempotent calls re-issued after a failure
	Timeouts        int64 // calls that hit their deadline
	BreakerTrips    int64 // breakers opened by consecutive failures
	BreakerProbes   int64 // re-admission Health probes issued
	BreakerReadmits int64 // probes that closed a breaker again
	Failovers       int64 // reads rerouted to reconstruction after a failure
	MetaFailovers   int64 // metadata RPCs moved to a different manager
	LockReleases    int64 // ghost parity-lock releases sent (UnlockParity)

	LeaseRenewals    int64 // parity-lock lease heartbeats the server honored
	LeaseExpiries    int64 // leases the server revoked before we released them
	IntentsReplayed  int64 // abandoned stripe intents repaired by replay
	IntentsAbandoned int64 // abandoned intents seen by replay (incl. skipped)

	DirtyUnits           int64 // dirty-log items recorded by degraded writes
	ResyncedUnits        int64 // dirty-log items replayed by online resync
	ResyncForwards       int64 // degraded writes forwarded to a resyncing server
	FullRebuildFallbacks int64 // resyncs that fell back to a full rebuild

	Migrations        int64 // scheme migrations committed through this client
	RelayoutBytes     int64 // logical bytes re-encoded into shadow layouts
	RelayoutDualWrite int64 // foreground writes mirrored into a shadow layout
}

// metrics is the internal atomic representation.
type metrics struct {
	reads, readBytes, writes, writeBytes       atomic.Int64
	fullStripes, rmws, overflowWrites, mirrors atomic.Int64
	degradedReads, degradedWrites, compactions atomic.Int64

	scrubBytes, scrubFound, scrubRepaired, scrubUnrepairable atomic.Int64
	intentSkips                                              atomic.Int64

	retries, timeouts                           atomic.Int64
	breakerTrips, breakerProbes, breakerReadmits atomic.Int64
	failovers, metaFailovers, lockReleases      atomic.Int64

	leaseRenewals, leaseExpiries       atomic.Int64
	intentsReplayed, intentsAbandoned  atomic.Int64

	dirtyUnits, resyncedUnits                  atomic.Int64
	resyncForwards, fullRebuildFallbacks       atomic.Int64

	migrations, relayoutBytes, relayoutDualWrites atomic.Int64
}

func (m *metrics) snapshot() Metrics {
	return Metrics{
		Reads:          m.reads.Load(),
		ReadBytes:      m.readBytes.Load(),
		Writes:         m.writes.Load(),
		WriteBytes:     m.writeBytes.Load(),
		FullStripes:    m.fullStripes.Load(),
		RMWs:           m.rmws.Load(),
		OverflowWrites: m.overflowWrites.Load(),
		MirrorWrites:   m.mirrors.Load(),
		DegradedReads:  m.degradedReads.Load(),
		DegradedWrites: m.degradedWrites.Load(),
		Compactions:    m.compactions.Load(),

		ScrubBytes:        m.scrubBytes.Load(),
		ScrubFound:        m.scrubFound.Load(),
		ScrubRepaired:     m.scrubRepaired.Load(),
		ScrubUnrepairable: m.scrubUnrepairable.Load(),
		IntentSkips:       m.intentSkips.Load(),

		Retries:         m.retries.Load(),
		Timeouts:        m.timeouts.Load(),
		BreakerTrips:    m.breakerTrips.Load(),
		BreakerProbes:   m.breakerProbes.Load(),
		BreakerReadmits: m.breakerReadmits.Load(),
		Failovers:       m.failovers.Load(),
		MetaFailovers:   m.metaFailovers.Load(),
		LockReleases:    m.lockReleases.Load(),

		LeaseRenewals:    m.leaseRenewals.Load(),
		LeaseExpiries:    m.leaseExpiries.Load(),
		IntentsReplayed:  m.intentsReplayed.Load(),
		IntentsAbandoned: m.intentsAbandoned.Load(),

		DirtyUnits:           m.dirtyUnits.Load(),
		ResyncedUnits:        m.resyncedUnits.Load(),
		ResyncForwards:       m.resyncForwards.Load(),
		FullRebuildFallbacks: m.fullRebuildFallbacks.Load(),

		Migrations:        m.migrations.Load(),
		RelayoutBytes:     m.relayoutBytes.Load(),
		RelayoutDualWrite: m.relayoutDualWrites.Load(),
	}
}

// Metrics returns a snapshot of the client's operation counters.
func (c *Client) Metrics() Metrics { return c.metrics.snapshot() }

// NoteScrub records the outcome of one integrity-scrub pass in the client's
// counters (called by internal/scrub, which the client cannot import).
func (c *Client) NoteScrub(bytes, found, repaired, unrepairable int64) {
	c.metrics.scrubBytes.Add(bytes)
	c.metrics.scrubFound.Add(found)
	c.metrics.scrubRepaired.Add(repaired)
	c.metrics.scrubUnrepairable.Add(unrepairable)
}

// NoteIntentSkips records stripes a scrub pass left unexamined because
// their intent records were open (in-flight RMWs, not corruption).
func (c *Client) NoteIntentSkips(n int64) {
	c.metrics.intentSkips.Add(n)
}

// NoteReplay records the outcome of one intent-replay pass in the client's
// counters (called by internal/recovery, which the client cannot import).
func (c *Client) NoteReplay(replayed, abandoned int64) {
	c.metrics.intentsReplayed.Add(replayed)
	c.metrics.intentsAbandoned.Add(abandoned)
}

// NoteResync records dirty-log items replayed by an online resync pass
// (called by internal/recovery, which the client cannot import).
func (c *Client) NoteResync(items int64) {
	c.metrics.resyncedUnits.Add(items)
}

// NoteFullRebuildFallback records a resync that found its dirty log
// untrustworthy and fell back to a full rebuild.
func (c *Client) NoteFullRebuildFallback() {
	c.metrics.fullRebuildFallbacks.Add(1)
}

// NoteRelayout records bytes a migration pass re-encoded into a shadow
// layout (called by internal/recovery, which the client cannot import).
func (c *Client) NoteRelayout(bytes int64) {
	c.metrics.relayoutBytes.Add(bytes)
}

// NoteMigration records one committed scheme migration.
func (c *Client) NoteMigration() {
	c.metrics.migrations.Add(1)
}
