package client

import "sync/atomic"

// Metrics counts a client's file-system operations, letting users and the
// benchmark harness see how the redundancy engine translated their I/O:
// how many writes took the full-stripe path vs the read-modify-write or
// overflow paths, how much redundancy traffic was generated, and how much
// work ran degraded.
type Metrics struct {
	Reads          int64 // ReadAt calls
	ReadBytes      int64
	Writes         int64 // WriteAt calls
	WriteBytes     int64
	FullStripes    int64 // portions written via the RAID5 full-stripe path
	RMWs           int64 // portions written via locked read-modify-write
	OverflowWrites int64 // portions written to the mirrored overflow region
	MirrorWrites   int64 // portions written via RAID1 whole mirroring
	DegradedReads  int64 // reads served with a server marked down
	DegradedWrites int64 // writes applied with a server marked down
	Compactions    int64
}

// metrics is the internal atomic representation.
type metrics struct {
	reads, readBytes, writes, writeBytes       atomic.Int64
	fullStripes, rmws, overflowWrites, mirrors atomic.Int64
	degradedReads, degradedWrites, compactions atomic.Int64
}

func (m *metrics) snapshot() Metrics {
	return Metrics{
		Reads:          m.reads.Load(),
		ReadBytes:      m.readBytes.Load(),
		Writes:         m.writes.Load(),
		WriteBytes:     m.writeBytes.Load(),
		FullStripes:    m.fullStripes.Load(),
		RMWs:           m.rmws.Load(),
		OverflowWrites: m.overflowWrites.Load(),
		MirrorWrites:   m.mirrors.Load(),
		DegradedReads:  m.degradedReads.Load(),
		DegradedWrites: m.degradedWrites.Load(),
		Compactions:    m.compactions.Load(),
	}
}

// Metrics returns a snapshot of the client's operation counters.
func (c *Client) Metrics() Metrics { return c.metrics.snapshot() }
