package client

import (
	"fmt"

	"csar/internal/core"
	"csar/internal/raid"
	"csar/internal/wire"
)

// writeBatch coalesces the data units of several write-plan portions into
// one multi-span WriteData per server, so the batched RPC shape the rebuild
// path introduced is the default data path: a write whose plan has several
// in-place portions costs each data server one request, not one per
// portion.
type writeBatch struct {
	g     raid.Geometry
	spans [][]wire.Span // per server: portion spans, in plan order
	data  [][][]byte    // per server: payload pieces, parallel to spans
	size  []int64       // per server: total payload bytes
}

func newWriteBatch(g raid.Geometry) *writeBatch {
	return &writeBatch{
		g:     g,
		spans: make([][]wire.Span, g.Servers),
		data:  make([][][]byte, g.Servers),
		size:  make([]int64, g.Servers),
	}
}

// add registers one portion's span with its per-server payloads (as
// produced by splitByServer).
func (b *writeBatch) add(span raid.Span, payloads [][]byte) {
	for i, p := range payloads {
		if len(p) == 0 {
			continue
		}
		b.spans[i] = append(b.spans[i], wire.Span{Off: span.Off, Len: span.Len})
		b.data[i] = append(b.data[i], p)
		b.size[i] += int64(len(p))
	}
}

func (b *writeBatch) empty() bool {
	for i := range b.spans {
		if len(b.spans[i]) > 0 {
			return false
		}
	}
	return true
}

// flush issues one multi-span WriteData per contributing server, skipping
// dead. A single-portion batch ships its payload by reference; a
// multi-portion batch pays one concatenation copy.
func (b *writeBatch) flush(f *File, dead int, tr uint64) error {
	return f.c.eachServer(b.g.Servers, func(i int) error {
		if len(b.spans[i]) == 0 || i == dead {
			return nil
		}
		payload := b.data[i][0]
		if len(b.data[i]) > 1 {
			payload = make([]byte, 0, b.size[i])
			for _, piece := range b.data[i] {
				payload = append(payload, piece...)
			}
		}
		_, err := f.c.callSrvT(i, &wire.WriteData{
			File:  f.ref,
			Spans: b.spans[i],
			Data:  payload,
		}, tr)
		return err
	})
}

// parityBatch accumulates full-stripe parity blocks grouped by parity
// server, one WriteParity per server at flush.
type parityBatch struct {
	g       raid.Geometry
	stripes [][]int64
	data    [][]byte
}

func newParityBatch(g raid.Geometry) *parityBatch {
	return &parityBatch{
		g:       g,
		stripes: make([][]int64, g.Servers),
		data:    make([][]byte, g.Servers),
	}
}

func (b *parityBatch) empty() bool {
	for i := range b.stripes {
		if len(b.stripes[i]) > 0 {
			return false
		}
	}
	return true
}

func (b *parityBatch) flush(f *File, dead int, tr uint64) error {
	return f.c.eachServer(b.g.Servers, func(i int) error {
		if len(b.stripes[i]) == 0 || i == dead {
			return nil
		}
		_, err := f.c.callSrvT(i, &wire.WriteParity{
			File:    f.ref,
			Stripes: b.stripes[i],
			Data:    b.data[i],
		}, tr)
		return err
	})
}

// addFullStripeParity computes span's per-stripe XOR parity into the batch
// (RAID5-npc ships zero bytes without computing, isolating the parity CPU
// cost exactly as before). Parity per server goes into one exact-size
// buffer, computed in place — no per-stripe scratch allocations.
func (f *File) addFullStripeParity(pb *parityBatch, span raid.Span, p []byte) error {
	g := f.geom
	ss := g.StripeSize()
	su := g.StripeUnit
	if span.Off%ss != 0 || span.Len%ss != 0 {
		return fmt.Errorf("client: full-stripe span [%d,%d) not stripe-aligned", span.Off, span.End())
	}
	counts := make([]int64, g.Servers)
	for s := span.Off / ss; s < span.End()/ss; s++ {
		counts[g.ParityServerOf(s)]++
	}
	bufs := make([][]byte, g.Servers)
	for i, n := range counts {
		if n > 0 {
			bufs[i] = make([]byte, 0, n*su)
		}
	}
	compute := f.ref.Scheme != wire.Raid5NPC
	if compute {
		f.c.chargeXOR(span.Len)
	}
	for s := span.Off / ss; s < span.End()/ss; s++ {
		ps := g.ParityServerOf(s)
		n := len(bufs[ps])
		bufs[ps] = bufs[ps][:n+int(su)]
		if compute {
			base := g.StripeStart(s) - span.Off
			core.StripeParity(g, p[base:base+ss], bufs[ps][n:])
		}
		pb.stripes[ps] = append(pb.stripes[ps], s)
	}
	for i, b := range bufs {
		if len(b) == 0 {
			continue
		}
		if pb.data[i] == nil {
			pb.data[i] = b // fresh exact-size buffer; hand it over, no copy
		} else {
			pb.data[i] = append(pb.data[i], b...)
		}
	}
	return nil
}
