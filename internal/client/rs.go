package client

import (
	"errors"
	"fmt"
	"sync"

	"csar/internal/core"
	"csar/internal/raid"
	"csar/internal/wire"
)

// This file holds the Reed-Solomon RS(k, m) client paths. They mirror the
// RAID5 paths in file.go and degraded.go, generalized from one XOR parity
// unit per stripe to m GF(256) coefficient rows: full-stripe writes encode
// and ship m parity units, partial-stripe writes fold the data delta into
// all m parity units under m per-server locks, and degraded reads rebuild
// up to m lost units per stripe from any k survivors.

// writeFullStripesRS writes whole stripes under Reed-Solomon: data in place
// plus the stripe's m freshly encoded parity units, one per parity server,
// with no locks and no reads.
func (f *File) writeFullStripesRS(span raid.Span, p []byte, dead int, tr uint64) error {
	g := f.geom
	ss := g.StripeSize()
	su := g.StripeUnit
	if span.Off%ss != 0 || span.Len%ss != 0 {
		return fmt.Errorf("client: full-stripe span [%d,%d) not stripe-aligned", span.Off, span.End())
	}
	code, err := core.RSOf(g)
	if err != nil {
		return err
	}
	m := g.PU()

	// Encode per stripe and group the parity units by their server.
	f.c.chargeGF(int64(m) * span.Len)
	stripes := make([][]int64, g.Servers)
	parity := make([][]byte, g.Servers)
	bufs := make([][]byte, m)
	for s := span.Off / ss; s < span.End()/ss; s++ {
		for j := range bufs {
			bufs[j] = make([]byte, su)
		}
		base := g.StripeStart(s) - span.Off
		core.StripeRSParity(g, code, p[base:base+ss], bufs)
		for j := 0; j < m; j++ {
			ps := g.ParityServerOfUnit(s, j)
			stripes[ps] = append(stripes[ps], s)
			parity[ps] = append(parity[ps], bufs[j]...)
		}
	}

	payloads := splitByServer(g, span.Off, p)
	var wg sync.WaitGroup
	var dErr, pErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		dErr = f.sendWriteData(span, payloads, dead, tr)
	}()
	go func() {
		defer wg.Done()
		pErr = f.c.eachServer(g.Servers, func(i int) error {
			if len(stripes[i]) == 0 || i == dead {
				return nil
			}
			_, err := f.c.callSrvT(i, &wire.WriteParity{
				File:    f.ref,
				Stripes: stripes[i],
				Data:    parity[i],
			}, tr)
			return err
		})
	}()
	wg.Wait()
	if dErr != nil {
		return dErr
	}
	return pErr
}

// rsParityLock is one held parity-lock acquisition of a multi-parity
// read-modify-write: parity unit j of the stripe, the server holding it,
// the acquisition's owner token, and the parity contents being updated.
type rsParityLock struct {
	j      int
	srv    int
	token  uint64
	parity []byte
}

// writeRMWRS performs a partial-stripe Reed-Solomon update: lock and read
// all m parity units, read the old data, fold the delta into every parity
// unit with its own coefficient row, write the new data, and write the m
// new parity units (each write releasing its server's lock and retiring its
// intent). One locked RMW therefore updates all m parity servers before any
// lock is released, so a crash at any point leaves intents open on exactly
// the parity servers whose units are not yet consistent, and replay
// reconstructs each from the data that landed.
//
// Lock acquisitions happen strictly one at a time in parity-unit order:
// every client updating a stripe walks its parity servers in the same j
// order, so no client can hold one of the stripe's locks while waiting on a
// lock another holder of the same stripe already has. Across stripes the
// Section 5.1 rule (the lower-numbered stripe's acquisition phase completes
// before the higher-numbered one starts) keeps the order total.
func (f *File) writeRMWRS(span raid.Span, p []byte, onParityRead func(), dead int, tr uint64) error {
	g := f.geom
	stripe := g.StripeOf(span.Off)
	code, err := core.RSOf(g)
	if err != nil {
		if onParityRead != nil {
			onParityRead()
		}
		return err
	}
	pol := f.c.getPolicy()

	// The parity units to maintain: all m of the stripe's, minus a dead
	// server's (its unit is reconstructed by the next rebuild).
	var locks []*rsParityLock
	for j := 0; j < g.PU(); j++ {
		if srv := g.ParityServerOfUnit(stripe, j); srv != dead {
			locks = append(locks, &rsParityLock{j: j, srv: srv, token: nextLockToken()})
		}
	}
	if len(locks) == 0 {
		// m=1 with that one parity server down: data units are all live.
		if onParityRead != nil {
			onParityRead()
		}
		return f.sendWriteData(span, splitByServer(g, span.Off, p), dead, tr)
	}

	// Phase 1: acquire the parity locks (in j order, sequentially) in
	// parallel with the old-data read.
	var pErr error
	acquired := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		if onParityRead != nil {
			defer onParityRead()
		}
		defer f.timePath("parity_lock_wait")()
		for _, l := range locks {
			presp, err := f.c.callSrvT(l.srv, &wire.ReadParity{
				File: f.ref, Stripes: []int64{stripe}, Lock: true, Owner: l.token,
				LeaseMS: leaseMS(pol),
			}, tr)
			if err != nil {
				pErr = err
				if isUnavailable(err) {
					// The server may hold the lock for us without us
					// knowing; fire the token-scoped release (clean: no
					// data written yet).
					f.c.releaseParityLock(l.srv, f.ref, stripe, l.token, false)
				}
				return
			}
			l.parity = presp.(*wire.ReadResp).Data
			if int64(len(l.parity)) != g.StripeUnit {
				pErr = fmt.Errorf("client: parity read returned %d bytes, want %d",
					len(l.parity), g.StripeUnit)
				f.c.releaseParityLock(l.srv, f.ref, stripe, l.token, false)
				return
			}
			f.c.trackLease(l.srv, f.ref, stripe, l.token)
			acquired++
		}
	}()
	old := make([]byte, span.Len)
	var dErr error
	if dead < 0 {
		dErr = f.readRaw(span, old, tr)
	} else {
		dErr = f.readRawLive(span, old, dead)
	}
	<-done

	// unlockAcquired frees every lock we hold, for the error paths. No data
	// has been written when it runs clean: each lock is released with an
	// unchanged parity write, falling back to the token-scoped release.
	unlockAcquired := func() {
		var wg sync.WaitGroup
		for _, l := range locks[:acquired] {
			wg.Add(1)
			go func(l *rsParityLock) {
				defer wg.Done()
				f.c.untrackLease(l.token)
				_, uerr := f.c.callSrvT(l.srv, &wire.WriteParity{
					File: f.ref, Stripes: []int64{stripe}, Data: l.parity, Unlock: true, Owner: l.token,
				}, tr)
				if uerr != nil && isUnavailable(uerr) {
					f.c.releaseParityLock(l.srv, f.ref, stripe, l.token, false)
				}
			}(l)
		}
		wg.Wait()
	}
	if pErr != nil {
		unlockAcquired() // the failed acquisition released itself above
		return pErr
	}
	if dErr == nil && dead >= 0 {
		dErr = f.reconstructOldPiecesRS(span, old, dead)
	}
	if dErr != nil {
		unlockAcquired()
		return dErr
	}

	// Phase 2: new parity_j = old parity_j + Coef(j,i)*(old_i + new_i).
	f.c.chargeGF(2 * span.Len * int64(len(locks)))
	for _, l := range locks {
		core.ApplyRSParityDelta(g, code, l.j, span.Off, old, p, l.parity)
	}

	// Phase 3: write the new data and the m new parity units.
	return f.writeRMWCommitRS(pol, span, p, stripe, locks, dead, tr)
}

// writeRMWCommitRS runs the write phase of a Reed-Solomon read-modify-write,
// with the same two orderings as writeRMWCommit: under Policy.CrashSafeRMW
// the data writes complete before any unlocking parity write is issued (so
// an intent is only retired once data and that server's parity are both in
// place); otherwise data and parity writes run concurrently.
func (f *File) writeRMWCommitRS(pol Policy, span raid.Span, p []byte, stripe int64, locks []*rsParityLock, dead int, tr uint64) error {
	g := f.geom

	releaseDirty := func() {
		var wg sync.WaitGroup
		for _, l := range locks {
			wg.Add(1)
			go func(l *rsParityLock) {
				defer wg.Done()
				f.c.untrackLease(l.token)
				f.c.releaseParityLock(l.srv, f.ref, stripe, l.token, true)
			}(l)
		}
		wg.Wait()
	}
	writeParity := func() error {
		errs := make([]error, len(locks))
		var wg sync.WaitGroup
		for i, l := range locks {
			wg.Add(1)
			go func(i int, l *rsParityLock) {
				defer wg.Done()
				_, pwErr := f.c.callSrvT(l.srv, &wire.WriteParity{
					File: f.ref, Stripes: []int64{stripe}, Data: l.parity, Unlock: true, Owner: l.token,
				}, tr)
				f.c.untrackLease(l.token)
				if pwErr != nil {
					if errors.Is(pwErr, wire.ErrLeaseExpired) {
						// The server expired our lease and fenced this late
						// write off; the stripe is fail-stopped there until
						// replay reconstructs its parity unit.
						f.c.metrics.leaseExpiries.Add(1)
					} else if isUnavailable(pwErr) {
						// The unlocking write may have been lost before the
						// server applied it; the stripe's data has changed,
						// so the lingering acquisition is released dirty.
						f.c.releaseParityLock(l.srv, f.ref, stripe, l.token, true)
					}
					errs[i] = pwErr
				}
			}(i, l)
		}
		wg.Wait()
		return errors.Join(errs...)
	}

	if pol.CrashSafeRMW {
		if dErr := f.sendWriteData(span, splitByServer(g, span.Off, p), dead, tr); dErr != nil {
			releaseDirty()
			return dErr
		}
		return writeParity()
	}

	var wErr error
	wdone := make(chan struct{})
	go func() {
		defer close(wdone)
		wErr = f.sendWriteData(span, splitByServer(g, span.Off, p), dead, tr)
	}()
	pwErr := writeParity()
	<-wdone
	if pwErr != nil {
		return pwErr
	}
	return wErr
}

// rsDeadSet returns the down servers of this file's stripe set, plus extra
// (a server that just failed mid-read; -1 for none), in ascending order.
func (f *File) rsDeadSet(extra int) []int {
	deads := f.c.allDown(f.ref)
	if extra >= 0 {
		seen := false
		for _, d := range deads {
			if d == extra {
				seen = true
				break
			}
		}
		if !seen {
			deads = append(deads, extra)
			for j := len(deads) - 1; j > 0 && deads[j] < deads[j-1]; j-- {
				deads[j], deads[j-1] = deads[j-1], deads[j]
			}
		}
	}
	return deads
}

// readDegradedRS serves a read on a Reed-Solomon file with up to m servers
// down: live pieces are read normally, and each piece on a dead server is
// rebuilt from any k surviving units of its stripe.
func (f *File) readDegradedRS(p []byte, off int64, extra int) error {
	g := f.geom
	deads := f.rsDeadSet(extra)
	if len(deads) > g.PU() {
		return fmt.Errorf("client: %d servers down exceeds the file's %d-failure tolerance",
			len(deads), g.PU())
	}
	isDead := func(s int) bool {
		for _, d := range deads {
			if d == s {
				return true
			}
		}
		return false
	}
	span := raid.Span{Off: off, Len: int64(len(p))}
	perServer, err := f.fetchLiveSet(span, isDead, false)
	if err != nil {
		return err
	}

	type deadPiece struct{ cur, pieceEnd int64 }
	var pieces []deadPiece
	cursors := make([]int64, g.Servers)
	end := off + int64(len(p))
	for cur := off; cur < end; {
		b := g.UnitOf(cur)
		pieceEnd := g.UnitStart(b + 1)
		if pieceEnd > end {
			pieceEnd = end
		}
		n := pieceEnd - cur
		s := g.ServerOf(b)
		if isDead(s) {
			pieces = append(pieces, deadPiece{cur, pieceEnd})
		} else {
			copy(p[cur-off:pieceEnd-off], perServer[s][cursors[s]:cursors[s]+n])
			cursors[s] += n
		}
		cur = pieceEnd
	}

	errs := make([]error, len(pieces))
	var wg sync.WaitGroup
	for i, dp := range pieces {
		wg.Add(1)
		go func(i int, dp deadPiece) {
			defer wg.Done()
			errs[i] = f.reconstructRangeRS(p[dp.cur-off:dp.pieceEnd-off], dp.cur, deads)
		}(i, dp)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// fetchLiveSet reads the span from every server outside the dead set,
// leaving dead servers' payloads nil. raw bypasses overflow patching.
func (f *File) fetchLiveSet(span raid.Span, isDead func(int) bool, raw bool) ([][]byte, error) {
	g := f.geom
	pieces := serverPieces(g, span.Off, span.Len)
	perServer := make([][]byte, g.Servers)
	err := f.c.eachServer(g.Servers, func(i int) error {
		if isDead(i) || bytesFor(pieces[i]) == 0 {
			return nil
		}
		resp, err := f.c.callSrv(i, &wire.Read{
			File:  f.ref,
			Spans: []wire.Span{{Off: span.Off, Len: span.Len}},
			Raw:   raw,
		})
		if err != nil {
			return err
		}
		perServer[i] = resp.(*wire.ReadResp).Data
		return nil
	})
	return perServer, err
}

// reconstructRangeRS rebuilds dst, the in-place contents of the logical
// range [logical, logical+len(dst)) — which must lie within a single stripe
// unit owned by a dead server — by decoding the stripe from any k of its
// surviving units. Live data units are preferred as survivors (their
// identity rows make the decode cheapest); live parity units fill out the
// set when data units are among the dead.
func (f *File) reconstructRangeRS(dst []byte, logical int64, deads []int) error {
	g := f.geom
	code, err := core.RSOf(g)
	if err != nil {
		return err
	}
	k := g.DataWidth()
	m := g.PU()
	n := int64(len(dst))
	unit := g.UnitOf(logical)
	wu := logical - g.UnitStart(unit) // within-unit offset
	stripe := unit / int64(k)
	first, _ := g.DataUnitsOf(stripe)
	target := int(unit - first)
	isDead := func(s int) bool {
		for _, d := range deads {
			if d == s {
				return true
			}
		}
		return false
	}
	if !isDead(g.ServerOf(unit)) {
		return fmt.Errorf("client: reconstructRangeRS on live unit %d", unit)
	}

	// Choose the first k live units in code order (data 0..k-1, then parity
	// k..k+m-1) and fetch the same within-unit range of each.
	type fetch struct {
		idx, srv int
		span     wire.Span // data units only
		parity   bool
	}
	var fetches []fetch
	for i := 0; i < k+m && len(fetches) < k; i++ {
		if i < k {
			u := first + int64(i)
			srv := g.ServerOf(u)
			if isDead(srv) {
				continue
			}
			fetches = append(fetches, fetch{
				idx: i, srv: srv,
				span: wire.Span{Off: g.UnitStart(u) + wu, Len: n},
			})
		} else {
			srv := g.ParityServerOfUnit(stripe, i-k)
			if isDead(srv) {
				continue
			}
			fetches = append(fetches, fetch{idx: i, srv: srv, parity: true})
		}
	}
	if len(fetches) < k {
		return fmt.Errorf("client: stripe %d has only %d live units, need %d",
			stripe, len(fetches), k)
	}

	units := make([][]byte, k+m)
	errs := make([]error, len(fetches))
	var wg sync.WaitGroup
	for i, ft := range fetches {
		wg.Add(1)
		go func(i int, ft fetch) {
			defer wg.Done()
			if ft.parity {
				resp, err := f.c.callSrv(ft.srv, &wire.ReadParity{File: f.ref, Stripes: []int64{stripe}})
				if err != nil {
					errs[i] = err
					return
				}
				par := resp.(*wire.ReadResp).Data
				if int64(len(par)) != g.StripeUnit {
					errs[i] = fmt.Errorf("client: short parity read from server %d", ft.srv)
					return
				}
				units[ft.idx] = par[wu : wu+n]
				return
			}
			resp, err := f.c.callSrv(ft.srv, &wire.Read{
				File: f.ref, Spans: []wire.Span{ft.span}, Raw: true,
			})
			if err != nil {
				errs[i] = err
				return
			}
			data := resp.(*wire.ReadResp).Data
			if int64(len(data)) != n {
				errs[i] = fmt.Errorf("client: short survivor read from server %d", ft.srv)
				return
			}
			units[ft.idx] = data
		}(i, ft)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return err
	}
	if err := code.Reconstruct(units); err != nil {
		return err
	}
	copy(dst, units[target])
	return nil
}

// reconstructOldPiecesRS fills the dead server's pieces of old (holding the
// logical range of span) by decoding them from each stripe's survivors; the
// degraded Reed-Solomon read-modify-write uses it so the parity delta is
// computed against the dead server's true old contents.
func (f *File) reconstructOldPiecesRS(span raid.Span, old []byte, dead int) error {
	g := f.geom
	deads := []int{dead}
	end := span.Off + span.Len
	for cur := span.Off; cur < end; {
		b := g.UnitOf(cur)
		pieceEnd := g.UnitStart(b + 1)
		if pieceEnd > end {
			pieceEnd = end
		}
		if g.ServerOf(b) == dead {
			if err := f.reconstructRangeRS(old[cur-span.Off:pieceEnd-span.Off], cur, deads); err != nil {
				return err
			}
		}
		cur = pieceEnd
	}
	return nil
}
