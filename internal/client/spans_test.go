package client

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"csar/internal/raid"
)

func TestSplitMergeRoundTrip(t *testing.T) {
	// splitByServer followed by mergeFromServers must reproduce the input
	// for any geometry, offset and length.
	f := func(nSeed uint8, suSeed uint16, offSeed uint32, lenSeed uint16, seed int64) bool {
		g := raid.Geometry{
			Servers:    int(nSeed%8) + 1,
			StripeUnit: int64(suSeed%300) + 1,
		}
		off := int64(offSeed % 100000)
		r := rand.New(rand.NewSource(seed))
		p := make([]byte, int(lenSeed%5000)+1)
		r.Read(p)

		perServer := splitByServer(g, off, p)
		got := make([]byte, len(p))
		mergeFromServers(g, off, got, perServer)
		return bytes.Equal(p, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitByMirrorRotates(t *testing.T) {
	// The mirror payload of server i equals the data payload of server i-1.
	g := raid.Geometry{Servers: 4, StripeUnit: 16}
	p := make([]byte, 512)
	for i := range p {
		p[i] = byte(i)
	}
	data := splitByServer(g, 0, p)
	mirror := splitByMirror(g, 0, p)
	for i := 0; i < 4; i++ {
		prev := (i + 3) % 4
		if !bytes.Equal(mirror[i], data[prev]) {
			t.Fatalf("mirror payload of server %d != data payload of server %d", i, prev)
		}
	}
}

func TestServerPiecesMatchPayloadSizes(t *testing.T) {
	f := func(nSeed uint8, suSeed uint16, offSeed uint32, lenSeed uint16) bool {
		g := raid.Geometry{
			Servers:    int(nSeed%8) + 1,
			StripeUnit: int64(suSeed%300) + 1,
		}
		off := int64(offSeed % 100000)
		length := int64(lenSeed%5000) + 1
		p := make([]byte, length)

		pieces := serverPieces(g, off, length)
		payload := splitByServer(g, off, p)
		var totalPieces int64
		for i := 0; i < g.Servers; i++ {
			if bytesFor(pieces[i]) != int64(len(payload[i])) {
				return false
			}
			totalPieces += bytesFor(pieces[i])
			// Pieces are sorted and non-overlapping.
			for j := 1; j < len(pieces[i]); j++ {
				if pieces[i][j].Off < pieces[i][j-1].Off+pieces[i][j-1].Len {
					return false
				}
			}
		}
		return totalPieces == length
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMirrorPiecesMatchMirrorPayloads(t *testing.T) {
	f := func(nSeed uint8, offSeed uint32, lenSeed uint16) bool {
		g := raid.Geometry{Servers: int(nSeed%7) + 2, StripeUnit: 64}
		off := int64(offSeed % 10000)
		length := int64(lenSeed%3000) + 1
		p := make([]byte, length)
		pieces := mirrorPieces(g, off, length)
		payload := splitByMirror(g, off, p)
		for i := 0; i < g.Servers; i++ {
			if bytesFor(pieces[i]) != int64(len(payload[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAppendSpanMerges(t *testing.T) {
	spans := appendSpan(nil, 0, 10)
	spans = appendSpan(spans, 10, 5) // contiguous: merges
	if len(spans) != 1 || spans[0].Len != 15 {
		t.Fatalf("spans = %v", spans)
	}
	spans = appendSpan(spans, 20, 5) // gap: new span
	if len(spans) != 2 {
		t.Fatalf("spans = %v", spans)
	}
	if bytesFor(spans) != 20 {
		t.Fatalf("bytesFor = %d", bytesFor(spans))
	}
}
