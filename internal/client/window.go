package client

import "sync"

// Window is a bounded issue window for pipelining independent operations:
// Go queues fn, blocking while depth calls are already in flight, and Wait
// drains the window and returns the first error. Sequential QD1 write
// loops (the collective-I/O aggregators, bulk streaming) use it to keep
// every server's queue busy instead of waiting out each stripe batch's
// round trip; per-server ordering and parity consistency are unaffected
// because same-stripe writes still serialize through the parity lock.
type Window struct {
	slots chan struct{}
	wg    sync.WaitGroup

	mu  sync.Mutex
	err error
}

// NewWindow returns a window admitting depth concurrent operations.
// depth < 1 degenerates to serial issue.
func NewWindow(depth int) *Window {
	if depth < 1 {
		depth = 1
	}
	return &Window{slots: make(chan struct{}, depth)}
}

// Go runs fn in the window, blocking until a slot frees up. After a
// failure, subsequent Go calls drop their fn immediately — the caller sees
// the first error from Wait.
func (w *Window) Go(fn func() error) {
	w.slots <- struct{}{}
	if w.Failed() {
		<-w.slots
		return
	}
	w.wg.Add(1)
	go func() {
		defer func() { <-w.slots; w.wg.Done() }()
		if err := fn(); err != nil {
			w.mu.Lock()
			if w.err == nil {
				w.err = err
			}
			w.mu.Unlock()
		}
	}()
}

// Failed reports whether any operation has failed so far.
func (w *Window) Failed() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err != nil
}

// Wait blocks until every submitted operation has finished and returns the
// first error.
func (w *Window) Wait() error {
	w.wg.Wait()
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}
