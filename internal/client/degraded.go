package client

import (
	"fmt"
	"sync"

	"csar/internal/extent"
	"csar/internal/raid"
	"csar/internal/wire"
)

// readDegraded serves a read while server dead is down, using the file's
// redundancy: the mirror for RAID1, parity reconstruction for RAID5, and
// parity reconstruction plus the mirrored overflow region for Hybrid.
func (f *File) readDegraded(p []byte, off int64, dead int) (int, error) {
	switch f.ref.Scheme {
	case wire.Raid0:
		return 0, ErrNoRedundancy
	case wire.Raid1:
		if err := f.readDegradedMirror(p, off, dead); err != nil {
			return 0, err
		}
		return len(p), nil
	case wire.Raid5, wire.Raid5NoLock, wire.Raid5NPC:
		if err := f.readDegradedParity(p, off, dead, false); err != nil {
			return 0, err
		}
		return len(p), nil
	case wire.Hybrid:
		if err := f.readDegradedParity(p, off, dead, true); err != nil {
			return 0, err
		}
		return len(p), nil
	case wire.ReedSolomon:
		// Up to the file's ParityUnits servers may be down at once; the
		// RS path unions every down server with the one just reported.
		if err := f.readDegradedRS(p, off, dead); err != nil {
			return 0, err
		}
		return len(p), nil
	default:
		return 0, fmt.Errorf("client: degraded read unsupported for scheme %v", f.ref.Scheme)
	}
}

// fetchLive reads the span from every live server and leaves the dead
// server's payload nil. raw bypasses overflow patching (in-place contents).
func (f *File) fetchLive(span raid.Span, dead int, raw bool) ([][]byte, error) {
	g := f.geom
	pieces := serverPieces(g, span.Off, span.Len)
	perServer := make([][]byte, g.Servers)
	err := f.c.eachServer(g.Servers, func(i int) error {
		if i == dead || bytesFor(pieces[i]) == 0 {
			return nil
		}
		resp, err := f.c.callSrv(i, &wire.Read{
			File:  f.ref,
			Spans: []wire.Span{{Off: span.Off, Len: span.Len}},
			Raw:   raw,
		})
		if err != nil {
			return err
		}
		perServer[i] = resp.(*wire.ReadResp).Data
		return nil
	})
	return perServer, err
}

// readDegradedMirror reads a RAID1 file with one server down: the dead
// server's pieces come from its units' mirror copies, which all live on the
// next server.
func (f *File) readDegradedMirror(p []byte, off int64, dead int) error {
	g := f.geom
	span := raid.Span{Off: off, Len: int64(len(p))}

	var mirrorData []byte
	mirrorSrv := (dead + 1) % g.Servers
	var wg sync.WaitGroup
	var mErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := f.c.callSrv(mirrorSrv, &wire.ReadMirror{
			File:  f.ref,
			Spans: []wire.Span{{Off: span.Off, Len: span.Len}},
		})
		if err != nil {
			mErr = err
			return
		}
		mirrorData = resp.(*wire.ReadResp).Data
	}()
	perServer, err := f.fetchLive(span, dead, false)
	wg.Wait()
	if err != nil {
		return err
	}
	if mErr != nil {
		return mErr
	}

	// Merge: live pieces from their servers, dead pieces from the mirror
	// payload (which is ordered by the same unit walk).
	cursors := make([]int64, g.Servers)
	var mc int64
	end := off + int64(len(p))
	for cur := off; cur < end; {
		b := g.UnitOf(cur)
		pieceEnd := g.UnitStart(b + 1)
		if pieceEnd > end {
			pieceEnd = end
		}
		n := pieceEnd - cur
		s := g.ServerOf(b)
		if s == dead {
			if mc+n > int64(len(mirrorData)) {
				return fmt.Errorf("client: mirror read short: need %d bytes", mc+n)
			}
			copy(p[cur-off:pieceEnd-off], mirrorData[mc:mc+n])
			mc += n
		} else {
			copy(p[cur-off:pieceEnd-off], perServer[s][cursors[s]:cursors[s]+n])
			cursors[s] += n
		}
		cur = pieceEnd
	}
	return nil
}

// readDegradedParity reads a RAID5 or Hybrid file with one server down. The
// dead server's pieces are rebuilt from the surviving data units and parity
// of each affected stripe; under Hybrid, the mirrored overflow region then
// overlays any newer partial-stripe data.
func (f *File) readDegradedParity(p []byte, off int64, dead int, hybrid bool) error {
	g := f.geom
	span := raid.Span{Off: off, Len: int64(len(p))}

	perServer, err := f.fetchLive(span, dead, false)
	if err != nil {
		return err
	}

	// Walk the span; reconstruct dead pieces, copy live ones.
	type deadPiece struct{ cur, pieceEnd int64 }
	var deads []deadPiece
	cursors := make([]int64, g.Servers)
	end := off + int64(len(p))
	for cur := off; cur < end; {
		b := g.UnitOf(cur)
		pieceEnd := g.UnitStart(b + 1)
		if pieceEnd > end {
			pieceEnd = end
		}
		n := pieceEnd - cur
		s := g.ServerOf(b)
		if s == dead {
			deads = append(deads, deadPiece{cur, pieceEnd})
		} else {
			copy(p[cur-off:pieceEnd-off], perServer[s][cursors[s]:cursors[s]+n])
			cursors[s] += n
		}
		cur = pieceEnd
	}

	errs := make([]error, len(deads))
	var wg sync.WaitGroup
	for i, dp := range deads {
		wg.Add(1)
		go func(i int, dp deadPiece) {
			defer wg.Done()
			errs[i] = f.reconstructRange(p[dp.cur-off:dp.pieceEnd-off], dp.cur, dead)
		}(i, dp)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return e
		}
	}

	if hybrid {
		return f.patchFromOverflowMirror(p, off, dead)
	}
	return nil
}

// reconstructRange rebuilds dst, the in-place contents of the logical range
// [logical, logical+len(dst)) — which must lie within a single stripe unit
// owned by the dead server — from the stripe's surviving units and parity.
func (f *File) reconstructRange(dst []byte, logical int64, dead int) error {
	g := f.geom
	n := int64(len(dst))
	unit := g.UnitOf(logical)
	if g.ServerOf(unit) != dead {
		return fmt.Errorf("client: reconstructRange on live unit %d", unit)
	}
	wu := logical - g.UnitStart(unit) // within-unit offset
	stripe := unit / int64(g.DataWidth())
	first, count := g.DataUnitsOf(stripe)

	// Survivor spans: the same within-unit range of every other data unit.
	var spans []wire.Span
	for j := 0; j < count; j++ {
		u := first + int64(j)
		if u == unit {
			continue
		}
		spans = append(spans, wire.Span{Off: g.UnitStart(u) + wu, Len: n})
	}

	ps := g.ParityServerOf(stripe)
	pieces := make([][]wire.Span, g.Servers)
	for _, sp := range spans {
		s := g.ServerOf(g.UnitOf(sp.Off))
		pieces[s] = append(pieces[s], sp)
	}

	var mu sync.Mutex
	acc := make([]byte, n) // XOR accumulator
	err := f.c.eachServer(g.Servers, func(i int) error {
		if i == ps {
			resp, err := f.c.callSrv(i, &wire.ReadParity{File: f.ref, Stripes: []int64{stripe}})
			if err != nil {
				return err
			}
			par := resp.(*wire.ReadResp).Data
			if int64(len(par)) != g.StripeUnit {
				return fmt.Errorf("client: short parity read")
			}
			mu.Lock()
			raid.XORInto(acc, par[wu:wu+n])
			mu.Unlock()
			return nil
		}
		if len(pieces[i]) == 0 {
			return nil
		}
		resp, err := f.c.callSrv(i, &wire.Read{File: f.ref, Spans: pieces[i], Raw: true})
		if err != nil {
			return err
		}
		data := resp.(*wire.ReadResp).Data
		if int64(len(data)) != bytesFor(pieces[i]) {
			return fmt.Errorf("client: short survivor read from server %d", i)
		}
		mu.Lock()
		for k := int64(0); k+n <= int64(len(data)); k += n {
			raid.XORInto(acc, data[k:k+n])
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		return err
	}
	copy(dst, acc)
	return nil
}

// patchFromOverflowMirror overlays the dead server's overflow contents —
// mirrored on the next server — onto the reconstructed buffer.
func (f *File) patchFromOverflowMirror(p []byte, off int64, dead int) error {
	g := f.geom
	mirrorSrv := (dead + 1) % g.Servers
	resp, err := f.c.callSrv(mirrorSrv, &wire.OverflowDump{File: f.ref, Mirror: true})
	if err != nil {
		return err
	}
	dump := resp.(*wire.OverflowDumpResp)
	var m extent.Map
	var cur int64
	for _, e := range dump.Extents {
		m.Insert(e.Off, e.Len, cur)
		cur += e.Len
	}
	if cur > int64(len(dump.Data)) {
		return fmt.Errorf("client: overflow dump short: table %d bytes, data %d", cur, len(dump.Data))
	}
	m.Lookup(off, int64(len(p)), func(logical, src, n int64) {
		copy(p[logical-off:logical-off+n], dump.Data[src:src+n])
	}, nil)
	return nil
}

// readRawLive fills dst with the in-place contents of span from the live
// servers only, leaving the dead server's pieces zeroed for the caller to
// reconstruct. Used by degraded read-modify-write.
func (f *File) readRawLive(span raid.Span, dst []byte, dead int) error {
	g := f.geom
	perServer, err := f.fetchLive(span, dead, true)
	if err != nil {
		return err
	}
	cursors := make([]int64, g.Servers)
	end := span.Off + span.Len
	for cur := span.Off; cur < end; {
		b := g.UnitOf(cur)
		pieceEnd := g.UnitStart(b + 1)
		if pieceEnd > end {
			pieceEnd = end
		}
		n := pieceEnd - cur
		if s := g.ServerOf(b); s != dead {
			copy(dst[cur-span.Off:pieceEnd-span.Off], perServer[s][cursors[s]:cursors[s]+n])
			cursors[s] += n
		}
		cur = pieceEnd
	}
	return nil
}

// reconstructOldPieces fills the dead server's pieces of old (holding the
// logical range of span) by reconstructing them from the stripe's
// survivors and parity.
func (f *File) reconstructOldPieces(span raid.Span, old []byte, dead int) error {
	g := f.geom
	end := span.Off + span.Len
	for cur := span.Off; cur < end; {
		b := g.UnitOf(cur)
		pieceEnd := g.UnitStart(b + 1)
		if pieceEnd > end {
			pieceEnd = end
		}
		if g.ServerOf(b) == dead {
			if err := f.reconstructRange(old[cur-span.Off:pieceEnd-span.Off], cur, dead); err != nil {
				return err
			}
		}
		cur = pieceEnd
	}
	return nil
}
