package client

import (
	"reflect"
	"sort"
	"sync/atomic"
	"testing"
	"unsafe"
)

// TestMetricsSnapshotDrift guards the hand-maintained pair of structs in
// metrics.go: every atomic counter in the internal `metrics` struct must
// surface through snapshot() into the exported Metrics struct. It fails
// when the field sets diverge — a counter added to one side but not the
// other (the historical IntentSkips bug), or a snapshot() that forgets to
// Load one of them.
//
// The check is name-agnostic on purpose (exported names legitimately differ
// from internal ones, e.g. mirrors → MirrorWrites): each internal counter
// is set to a distinct prime via reflection, and the multiset of values in
// the snapshot must equal the multiset written. A missing snapshot line
// yields a zero where a prime should be; a missing exported field shrinks
// the struct; either breaks the multiset equality.
func TestMetricsSnapshotDrift(t *testing.T) {
	var m metrics
	mv := reflect.ValueOf(&m).Elem()
	mt := mv.Type()

	var want []int64
	prime := int64(2)
	nextPrime := func() int64 {
		p := prime
	search:
		for {
			prime++
			for d := int64(2); d*d <= prime; d++ {
				if prime%d == 0 {
					continue search
				}
			}
			return p
		}
	}

	atomicInt64 := reflect.TypeOf(atomic.Int64{})
	for i := 0; i < mt.NumField(); i++ {
		f := mt.Field(i)
		if f.Type != atomicInt64 {
			t.Fatalf("metrics field %s is %v; this test only understands atomic.Int64", f.Name, f.Type)
		}
		// The fields are unexported; write through the address instead of
		// reflect.Value.Set (which refuses unexported fields).
		p := (*atomic.Int64)(unsafe.Pointer(mv.Field(i).UnsafeAddr()))
		v := nextPrime()
		p.Store(v)
		want = append(want, v)
	}

	snap := m.snapshot()
	sv := reflect.ValueOf(snap)
	st := sv.Type()
	var got []int64
	for i := 0; i < st.NumField(); i++ {
		if st.Field(i).Type.Kind() != reflect.Int64 {
			t.Fatalf("Metrics field %s is %v; this test only understands int64", st.Field(i).Name, st.Field(i).Type)
		}
		got = append(got, sv.Field(i).Int())
	}

	if len(got) != len(want) {
		t.Fatalf("Metrics has %d fields, internal metrics has %d: the structs have drifted", len(got), len(want))
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("snapshot value multiset diverged at %d: got %v want %v\n"+
				"some counter in `metrics` is not Loaded into `Metrics` by snapshot() (or two fields map to one)",
				i, got, want)
		}
	}
}
