package client

import (
	"fmt"
	"math"
	"sync/atomic"

	"csar/internal/raid"
	"csar/internal/wire"
)

// This file is the client half of online scheme migration ("re-layout
// under writers"): while internal/recovery re-encodes a file's bytes into
// a pinned shadow layout, the client coordinates its foreground I/O with
// the copy through a monotonic cursor — writes overlapping the region
// already copied are mirrored into the shadow layout, writes wholly ahead
// of the cursor go to the live layout only (the copy will reach them) —
// and a gate that keeps chunk copies and foreground operations from
// interleaving. The structure deliberately mirrors the resync machinery in
// dirty.go, with one difference: a migration has no dirty log to absorb a
// write that slips between a chunk copy and the cursor advance, so the
// cursor is advanced inside the exclusive section, never after it.
//
// Coordination is client-local, matching the single-coordinator assumption
// of Rebuild, Resync and scrub: writes from other clients during a
// migration are not mirrored into the shadow layout, and other clients'
// open Files keep the old layout after the cutover.

// relayoutState tracks one in-progress migration on this client. cursor is
// the logical byte offset up to which the shadow layout holds the file's
// bytes; it only ever rises, and math.MaxInt64 marks the copy complete
// (every foreground write from then on is mirrored).
type relayoutState struct {
	dst    *File
	cursor atomic.Int64
}

// BeginRelayout registers an in-progress migration of one file into the
// shadow layout dst (a gate-exempt handle from FileForRelayout). From now
// until EndRelayout, foreground writes behind the cursor are dual-written
// to dst. Called by internal/recovery.
func (c *Client) BeginRelayout(fileID uint64, dst *File) {
	c.dmu.Lock()
	if _, ok := c.relayouts[fileID]; !ok {
		c.relayouts[fileID] = &relayoutState{dst: dst}
	}
	c.dmu.Unlock()
}

// AdvanceRelayoutCursor raises the copy cursor to logical offset `to`.
// Monotonic like the resync cursor: once a write observes its offset
// behind the cursor, the copied region can never become uncopied again.
func (c *Client) AdvanceRelayoutCursor(fileID uint64, to int64) {
	c.dmu.Lock()
	st := c.relayouts[fileID]
	c.dmu.Unlock()
	if st == nil {
		return
	}
	for {
		cur := st.cursor.Load()
		if to <= cur || st.cursor.CompareAndSwap(cur, to) {
			return
		}
	}
}

// EndRelayout deregisters a migration (committed or aborted). Foreground
// writes revert to the live layout alone.
func (c *Client) EndRelayout(fileID uint64) {
	c.dmu.Lock()
	delete(c.relayouts, fileID)
	c.dmu.Unlock()
}

// RelayoutCursor exposes the current copy cursor (MinInt64 when no
// migration is active for the file); tests use it to pin down the
// dual-write boundary deterministically.
func (c *Client) RelayoutCursor(fileID uint64) int64 {
	c.dmu.Lock()
	st := c.relayouts[fileID]
	c.dmu.Unlock()
	if st == nil {
		return math.MinInt64
	}
	return st.cursor.Load()
}

// relayoutDst samples the migration target and cursor for a file; ok is
// false when no migration is active for it. Called with the relayout gate
// held (shared side), which is what makes the sampled cursor stable for
// the duration of the caller's write.
func (c *Client) relayoutDst(fileID uint64) (*File, int64, bool) {
	c.dmu.Lock()
	st := c.relayouts[fileID]
	c.dmu.Unlock()
	if st == nil {
		return nil, 0, false
	}
	return st.dst, st.cursor.Load(), true
}

// RelayoutExclusive runs fn with the relayout gate held exclusively,
// blocking out every foreground read and write. The migration engine wraps
// each chunk copy (read from the live layout, write to the shadow, advance
// the cursor) and the final commit/cutover in it: a foreground write
// either finishes before the chunk copy reads the live layout (so the copy
// includes it) or starts after the cursor has advanced over its extent (so
// it dual-writes). File handles created with FileForRelayout skip the
// gate and are the only ones safe to use inside fn.
func (c *Client) RelayoutExclusive(fn func()) {
	c.relayoutGate.Lock()
	defer c.relayoutGate.Unlock()
	fn()
}

// FileForRelayout builds a gate-exempt file handle for a layout under
// migration: the shadow target of dual-writes (issued with the gate
// already held shared) and the engine's source/target handles inside
// RelayoutExclusive sections. Exempt handles never touch the relayout
// gate, which is what makes those nested uses deadlock-free.
func (c *Client) FileForRelayout(ref wire.FileRef, size int64) (*File, error) {
	f, err := c.fileFor(ref, size)
	if err != nil {
		return nil, err
	}
	f.gateExempt = true
	return f, nil
}

// AdoptRef swaps the file's layout identity in place — the migration
// coordinator calls it inside RelayoutExclusive, after the manager commits
// the cutover, so every write that started before the swap drained through
// the gate and every later one plans against the new geometry. The logical
// size is unchanged by a migration, so f.size carries over.
func (f *File) AdoptRef(ref wire.FileRef) error {
	g := raid.Geometry{Servers: int(ref.Servers), StripeUnit: int64(ref.StripeUnit)}
	if ref.Scheme == wire.ReedSolomon {
		g.ParityUnits = ref.ParityUnits()
		if err := g.ValidateParity(); err != nil {
			return err
		}
	} else if err := g.Validate(); err != nil {
		return err
	}
	if g.Servers > len(f.c.srv) {
		return fmt.Errorf("client: file spans %d servers, cluster has %d", g.Servers, len(f.c.srv))
	}
	f.ref = ref
	f.geom = g
	return nil
}

// PinScheme asks the manager to pin a shadow layout for migrating the file
// to the target scheme; re-issuing a matching pin resumes it.
func (c *Client) PinScheme(fileID uint64, scheme wire.Scheme, parity uint8) (*wire.SetSchemeResp, error) {
	resp, err := c.mgrCall(&wire.SetScheme{ID: fileID, Scheme: scheme, Parity: parity})
	if err != nil {
		return nil, err
	}
	sr, ok := resp.(*wire.SetSchemeResp)
	if !ok {
		return nil, fmt.Errorf("client: unexpected set-scheme response %T", resp)
	}
	return sr, nil
}

// CommitScheme asks the manager to cut the file over to its pinned shadow
// layout; newID fences the commit against a superseded pin.
func (c *Client) CommitScheme(fileID, newID uint64) error {
	_, err := c.mgrCall(&wire.CommitScheme{ID: fileID, NewID: newID})
	return err
}

// AbortScheme asks the manager to drop the file's pinned shadow layout.
func (c *Client) AbortScheme(fileID, newID uint64) error {
	_, err := c.mgrCall(&wire.AbortScheme{ID: fileID, NewID: newID})
	return err
}

// OpenInfo fetches a file's raw metadata — live layout, logical size, and
// any pinned migration target — without building a File. The migration
// orchestrator uses it to resume or abort a pin found at the manager.
func (c *Client) OpenInfo(name string) (*wire.OpenResp, error) {
	resp, err := c.mgrCall(&wire.Open{Name: name})
	if err != nil {
		return nil, err
	}
	or, ok := resp.(*wire.OpenResp)
	if !ok {
		return nil, fmt.Errorf("client: unexpected open response %T", resp)
	}
	return or, nil
}
