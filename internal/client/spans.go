package client

import (
	"csar/internal/raid"
	"csar/internal/wire"
)

// splitByServer partitions the bytes of a logical write [off, off+len(p))
// into per-server payloads, in the iteration order the servers themselves
// use (raid.Geometry.ToLocal), so a server receiving the whole span plus its
// payload can consume it sequentially.
func splitByServer(g raid.Geometry, off int64, p []byte) [][]byte {
	out := make([][]byte, g.Servers)
	end := off + int64(len(p))
	for cur := off; cur < end; {
		b := g.UnitOf(cur)
		pieceEnd := g.UnitStart(b + 1)
		if pieceEnd > end {
			pieceEnd = end
		}
		s := g.ServerOf(b)
		out[s] = append(out[s], p[cur-off:pieceEnd-off]...)
		cur = pieceEnd
	}
	return out
}

// splitByMirror partitions the bytes of a logical write into per-server
// payloads addressed to each unit's RAID1 mirror server.
func splitByMirror(g raid.Geometry, off int64, p []byte) [][]byte {
	out := make([][]byte, g.Servers)
	end := off + int64(len(p))
	for cur := off; cur < end; {
		b := g.UnitOf(cur)
		pieceEnd := g.UnitStart(b + 1)
		if pieceEnd > end {
			pieceEnd = end
		}
		s := g.MirrorServerOf(b)
		out[s] = append(out[s], p[cur-off:pieceEnd-off]...)
		cur = pieceEnd
	}
	return out
}

// mergeFromServers reassembles per-server Read responses (each the
// concatenation of that server's pieces, in order) into dst, which holds
// the logical range [off, off+len(dst)).
func mergeFromServers(g raid.Geometry, off int64, dst []byte, perServer [][]byte) {
	cursors := make([]int64, g.Servers)
	end := off + int64(len(dst))
	for cur := off; cur < end; {
		b := g.UnitOf(cur)
		pieceEnd := g.UnitStart(b + 1)
		if pieceEnd > end {
			pieceEnd = end
		}
		s := g.ServerOf(b)
		n := pieceEnd - cur
		copy(dst[cur-off:pieceEnd-off], perServer[s][cursors[s]:cursors[s]+n])
		cursors[s] += n
		cur = pieceEnd
	}
}

// serverPieces returns, for each server, the logical extents of its pieces
// of [off, off+length), in order. Used where the server must be told the
// extents explicitly (overflow writes).
func serverPieces(g raid.Geometry, off, length int64) [][]wire.Span {
	out := make([][]wire.Span, g.Servers)
	g0 := g
	end := off + length
	for cur := off; cur < end; {
		b := g0.UnitOf(cur)
		pieceEnd := g0.UnitStart(b + 1)
		if pieceEnd > end {
			pieceEnd = end
		}
		s := g0.ServerOf(b)
		out[s] = appendSpan(out[s], cur, pieceEnd-cur)
		cur = pieceEnd
	}
	return out
}

// mirrorPieces is serverPieces keyed by each unit's mirror server.
func mirrorPieces(g raid.Geometry, off, length int64) [][]wire.Span {
	out := make([][]wire.Span, g.Servers)
	end := off + length
	for cur := off; cur < end; {
		b := g.UnitOf(cur)
		pieceEnd := g.UnitStart(b + 1)
		if pieceEnd > end {
			pieceEnd = end
		}
		s := g.MirrorServerOf(b)
		out[s] = appendSpan(out[s], cur, pieceEnd-cur)
		cur = pieceEnd
	}
	return out
}

// appendSpan appends [off, off+n), merging with the previous span when
// contiguous.
func appendSpan(spans []wire.Span, off, n int64) []wire.Span {
	if k := len(spans); k > 0 && spans[k-1].Off+spans[k-1].Len == off {
		spans[k-1].Len += n
		return spans
	}
	return append(spans, wire.Span{Off: off, Len: n})
}

// bytesFor sums the payload bytes a server receives for pieces of a span.
func bytesFor(spans []wire.Span) int64 {
	var n int64
	for _, s := range spans {
		n += s.Len
	}
	return n
}
