package client

import (
	"fmt"
	"math"
	"sync/atomic"

	"csar/internal/core"
	"csar/internal/raid"
	"csar/internal/wire"
)

// This file is the client half of online incremental resync: while a server
// is out, every degraded write records what it damaged on that server into a
// dirty-region log replicated on the dead server's two ring neighbours
// (wire.MarkDirty), and while internal/recovery replays that log the client
// coordinates its foreground writes with the replay through a monotonic
// sync-point cursor — writes entirely behind the cursor are forwarded to the
// recovering server, writes ahead of it re-dirty the log.

// outageKey identifies one (file, dead server) outage on this client.
type outageKey struct {
	file uint64
	dead int
}

// DirtyReplicas returns the servers holding the dirty-region log for an
// outage of server dead in an n-server stripe set: its two ring neighbours,
// chosen because they are exactly the servers already carrying the dead
// server's redundancy (RAID1 mirror and overflow mirror on the next server,
// mirror-of and overflow-of the previous), so any failure that takes out a
// replica also exceeds the redundancy the log protects. With n == 2 the two
// collapse to the single survivor.
func DirtyReplicas(n, dead int) []int {
	next := (dead + 1) % n
	prev := (dead - 1 + n) % n
	if next == prev {
		return []int{next}
	}
	return []int{next, prev}
}

// outageEpoch returns the epoch of the (file, dead) outage, minting a fresh
// random one at the first degraded write. The epoch names one outage: every
// MarkDirty of the outage carries it, and the resync that later dumps the
// replicas compares their epoch sets to detect a log that missed writes
// (a replica that was itself down for part of the outage). Epoch 0 is the
// poison value — see poisonOutage.
func (c *Client) outageEpoch(fileID uint64, dead int) uint64 {
	k := outageKey{fileID, dead}
	c.dmu.Lock()
	defer c.dmu.Unlock()
	if e, ok := c.outages[k]; ok {
		return e
	}
	e := nextLockToken()
	c.outages[k] = e
	return e
}

// poisonOutage forces the outage's epoch to 0 after a MarkDirty replication
// failure: the log may now be incomplete, and any replica that records a
// 0 epoch (or whose epoch set disagrees with its peer's) makes resync fall
// back to a full rebuild.
func (c *Client) poisonOutage(fileID uint64, dead int) {
	c.dmu.Lock()
	c.outages[outageKey{fileID, dead}] = 0
	c.dmu.Unlock()
}

// clearOutages drops the outage epochs for server idx across all files
// (MarkUp's job: the outage is over, and a future one is a new epoch).
func (c *Client) clearOutages(idx int) {
	c.dmu.Lock()
	for k := range c.outages {
		if k.dead == idx {
			delete(c.outages, k)
		}
	}
	c.dmu.Unlock()
}

// dirtyDamage computes what a write plan damages on the dead server: the
// data units and mirror copies it owns that the write skips, the parity
// stripes it owns that the write updates (or leaves stale), and whether its
// overflow stores are affected. This is exactly the set resync must replay.
func dirtyDamage(g raid.Geometry, scheme wire.Scheme, plan core.Plan, dead int) (units, mirrors, stripes []int64, overflow bool) {
	seenU := map[int64]bool{}
	seenM := map[int64]bool{}
	seenS := map[int64]bool{}
	addUnits := func(sp raid.Span, mirrorsToo bool) {
		for b := g.UnitOf(sp.Off); b <= g.UnitOf(sp.End() - 1); b++ {
			if g.ServerOf(b) == dead && !seenU[b] {
				seenU[b] = true
				units = append(units, b)
			}
			if mirrorsToo && g.MirrorServerOf(b) == dead && !seenM[b] {
				seenM[b] = true
				mirrors = append(mirrors, b)
			}
		}
	}
	addStripes := func(sp raid.Span) {
		for s := g.StripeOf(sp.Off); s <= g.StripeOf(sp.End() - 1); s++ {
			if _, ok := g.ParityUnitOn(dead, s); ok && !seenS[s] {
				seenS[s] = true
				stripes = append(stripes, s)
			}
		}
	}
	for _, pt := range plan.Portions {
		switch pt.Mode {
		case core.ModeMirrored:
			addUnits(pt.Span, true)
		case core.ModeFullStripe:
			addUnits(pt.Span, false)
			addStripes(pt.Span)
			if scheme == wire.Hybrid {
				// The in-place write implicitly invalidates overflow extents
				// on every live server; the dead one misses the invalidation,
				// so its overflow stores need reconciling too.
				overflow = true
			}
		case core.ModeRMW:
			addUnits(pt.Span, false)
			addStripes(pt.Span)
		case core.ModeOverflow:
			for b := g.UnitOf(pt.Span.Off); b <= g.UnitOf(pt.Span.End() - 1); b++ {
				if g.ServerOf(b) == dead || g.MirrorServerOf(b) == dead {
					overflow = true
					break
				}
			}
		case core.ModePlain:
			addUnits(pt.Span, false)
		}
	}
	return units, mirrors, stripes, overflow
}

// recordDirty durably logs a degraded write's damage on the dirty-log
// replicas before the write executes (dirty-then-write: the damage is on
// record before any data lands, so a crash between the two costs a spurious
// replay, never a missed one). A replica failure poisons the outage's epoch,
// which forces the eventual resync into a full rebuild; if every replica
// refuses the record the degraded write itself is refused, because its
// damage could otherwise be silently forgotten.
func (c *Client) recordDirty(ref wire.FileRef, g raid.Geometry, plan core.Plan, dead int) error {
	units, mirrors, stripes, overflow := dirtyDamage(g, ref.Scheme, plan, dead)
	if len(units) == 0 && len(mirrors) == 0 && len(stripes) == 0 && !overflow {
		return nil
	}
	c.metrics.dirtyUnits.Add(int64(len(units) + len(mirrors) + len(stripes)))
	m := &wire.MarkDirty{
		File: ref, Dead: uint16(dead), Epoch: c.outageEpoch(ref.ID, dead),
		Units: units, Mirrors: mirrors, Stripes: stripes, Overflow: overflow,
	}
	replicas := DirtyReplicas(g.Servers, dead)
	failed := 0
	var lastErr error
	for _, r := range replicas {
		if _, err := c.callSrv(r, m); err != nil {
			c.poisonOutage(ref.ID, dead)
			failed++
			lastErr = err
		}
	}
	if failed == len(replicas) {
		return fmt.Errorf("client: dirty log unreachable, refusing degraded write: %w", lastErr)
	}
	return nil
}

// resyncState tracks one in-progress online resync on this client. cursor is
// the sync point: the logical byte offset up to which the recovering
// server's stores have been replayed. It only ever rises.
type resyncState struct {
	cursor atomic.Int64
}

// BeginResync registers an in-progress resync of server dead for one file.
// From now until EndResync, foreground writes whose sync extent lies
// entirely behind the cursor are forwarded to the recovering server instead
// of re-dirtying the log. Called by internal/recovery.
func (c *Client) BeginResync(fileID uint64, dead int) {
	k := outageKey{fileID, dead}
	c.dmu.Lock()
	if _, ok := c.resyncs[k]; !ok {
		c.resyncs[k] = &resyncState{}
		c.resyncActive.Add(1)
	}
	c.dmu.Unlock()
}

// AdvanceResyncCursor raises the resync sync point to logical offset `to`.
// The cursor is monotonic; a lower value is ignored. Monotonicity is what
// makes the forward decision sound: once a write observes its extent behind
// the cursor, the replayed region can never become unreplayed again.
func (c *Client) AdvanceResyncCursor(fileID uint64, dead int, to int64) {
	c.dmu.Lock()
	st := c.resyncs[outageKey{fileID, dead}]
	c.dmu.Unlock()
	if st == nil {
		return
	}
	for {
		cur := st.cursor.Load()
		if to <= cur || st.cursor.CompareAndSwap(cur, to) {
			return
		}
	}
}

// EndResync deregisters a resync (successful or aborted). Foreground writes
// revert to plain degraded mode.
func (c *Client) EndResync(fileID uint64, dead int) {
	k := outageKey{fileID, dead}
	c.dmu.Lock()
	if _, ok := c.resyncs[k]; ok {
		delete(c.resyncs, k)
		c.resyncActive.Add(-1)
	}
	c.dmu.Unlock()
}

// ResyncCursor exposes the current sync point (MinInt64 when no resync is
// active for the pair); tests use it to pin down the forward/re-dirty
// boundary deterministically.
func (c *Client) ResyncCursor(fileID uint64, dead int) int64 {
	cur, ok := c.resyncCursor(fileID, dead)
	if !ok {
		return math.MinInt64
	}
	return cur
}

// resyncCursor samples the sync point for (file, dead); ok is false when no
// resync is active for the pair. The resyncActive fast path keeps the
// common no-resync case to one atomic load.
func (c *Client) resyncCursor(fileID uint64, dead int) (int64, bool) {
	if c.resyncActive.Load() == 0 {
		return 0, false
	}
	c.dmu.Lock()
	st := c.resyncs[outageKey{fileID, dead}]
	c.dmu.Unlock()
	if st == nil {
		return 0, false
	}
	return st.cursor.Load(), true
}

// resyncingServer reports whether server idx is the target of any active
// resync. The breaker's admission gate passes such a server unconditionally:
// its stores are stale (so probes refuse it) but forwarded writes and replay
// traffic must reach it.
func (c *Client) resyncingServer(idx int) bool {
	if c.resyncActive.Load() == 0 {
		return false
	}
	c.dmu.Lock()
	defer c.dmu.Unlock()
	for k := range c.resyncs {
		if k.dead == idx {
			return true
		}
	}
	return false
}

// ResyncExclusive runs fn with the resync replay gate held exclusively,
// blocking out every foreground write's decide-and-execute section. The
// replayer wraps each item replay (and the overflow reconciliation) in it,
// which is what makes replay-vs-write interleavings impossible: a foreground
// write either completes before the replay reads the redundancy (so the
// reconstruction includes it) or starts after the replay's write lands (so
// it observes the advanced cursor, forwards, and overwrites the replayed
// bytes with its own). Coordination is client-local: writes from other
// clients during a resync are not coordinated, matching the single-
// coordinator assumption of Rebuild and scrub.
func (c *Client) ResyncExclusive(fn func()) {
	c.resyncGate.Lock()
	defer c.resyncGate.Unlock()
	fn()
}

// DegradedWritesInFlight counts degraded writes currently inside their
// decide-and-execute section. The resyncer drains it to zero after raising
// the cursor to its terminal value: once drained, every write that sampled
// the old cursor has finished (its MarkDirty is on the replicas), and every
// later write forwards — so the next dirty dump is complete.
func (c *Client) DegradedWritesInFlight() int64 { return c.degradedInFlight.Load() }

// syncExtentEnd is the forward decision's granularity: the highest logical
// offset whose replay state the write depends on. For parity schemes that is
// the stripe-aligned end of the write (a partial-stripe write touches its
// stripe's parity, which the replayer owns until the cursor passes the
// stripe end); for RAID1 the unit-aligned end. A Hybrid write with an
// overflow portion returns MaxInt64: overflow extents have no byte position
// in the replay order, so such writes only forward once the whole replay
// (including overflow reconciliation) is behind the cursor.
func syncExtentEnd(g raid.Geometry, scheme wire.Scheme, plan core.Plan, off, length int64) int64 {
	if scheme.UsesParity() {
		for _, pt := range plan.Portions {
			if pt.Mode == core.ModeOverflow {
				return math.MaxInt64
			}
		}
		ss := g.StripeSize()
		return (g.StripeOf(off+length-1) + 1) * ss
	}
	return g.UnitStart(g.UnitOf(off+length-1)) + g.StripeUnit
}
