package cluster

import (
	"errors"
	"math"
	"sync"
	"testing"

	"csar/internal/client"
	"csar/internal/recovery"
	"csar/internal/wire"
)

// This file tests online incremental resync end to end: dirty-region
// tracking by degraded writes, delta replay onto a returned server with a
// concurrent foreground writer, cursor-based write forwarding, the
// epoch-mismatch full-rebuild fallback, abort-and-rerun convergence, and
// dirty-log durability across a replica crash.

// dumpDirtyItems counts the dirty-log items the replicas hold for (f, dead),
// asking the servers directly.
func dumpDirtyItems(t *testing.T, c *Cluster, ref wire.FileRef, dead int) int {
	t.Helper()
	n := 0
	for _, r := range client.DirtyReplicas(c.Servers(), dead) {
		resp, err := c.Server(r).Handle(&wire.DirtyDump{File: ref, Dead: uint16(dead)})
		if err != nil {
			t.Fatal(err)
		}
		d := resp.(*wire.DirtyDumpResp)
		n += len(d.Units) + len(d.Mirrors) + len(d.Stripes)
		if d.Overflow {
			n++
		}
	}
	return n
}

// TestResyncDeltaOnline is the acceptance scenario: a 64 KiB file suffers a
// server outage, a handful of degraded writes damage a few stripes, the
// server returns with its stores intact, and Resync replays only the damaged
// delta while a foreground writer keeps writing. The file must verify clean
// after re-admission and the replayed item count must be far below what a
// full rebuild reconstructs.
func TestResyncDeltaOnline(t *testing.T) {
	for _, scheme := range redundantSchemes {
		t.Run(scheme.String(), func(t *testing.T) {
			c := newCluster(t, 5)
			cl := c.NewClient()
			f, err := cl.Create("f", 5, 64, scheme)
			if err != nil {
				t.Fatal(err)
			}
			const size = 64 << 10
			ref := make([]byte, size)
			copy(ref, pattern(size, 1))
			mustWrite(t, f, ref, 0)

			const dead = 2
			c.StopServer(dead)
			cl.MarkDown(dead)

			// Degraded writes damage a few scattered regions: an unaligned
			// small write (overflow under Hybrid), an aligned full stripe,
			// and a multi-stripe span.
			for _, w := range []struct {
				off int64
				n   int
			}{{1000, 100}, {2048, 256}, {3000, 500}} {
				data := pattern(w.n, byte(w.off))
				mustWrite(t, f, data, w.off)
				copy(ref[w.off:], data)
			}
			if m := cl.Metrics(); m.DirtyUnits == 0 {
				t.Fatal("degraded writes logged no dirty units")
			}

			// The server comes back with its (stale) pre-outage stores.
			c.RestartServer(dead)

			// Foreground traffic continues during the resync: a writer
			// repeats one fixed full-stripe write (so the final content is
			// deterministic) and a reader checks an untouched region.
			wdata := pattern(256, 99)
			copy(ref[8192:], wdata)
			mustWrite(t, f, wdata, 8192) // at least one write is guaranteed
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(2)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					mustWrite(t, f, wdata, 8192)
				}
			}()
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					// The outage window must never serve stale data: reads
					// stay degraded until MarkUp.
					checkRead(t, f, ref[:256], 0)
				}
			}()

			var totalItems int64
			rep, err := recovery.Resync(cl, f, dead, recovery.ResyncOptions{})
			if err != nil {
				t.Fatalf("resync: %v", err)
			}
			if rep.FullRebuild {
				t.Fatal("delta resync fell back to full rebuild")
			}
			totalItems += rep.Items()
			close(stop)
			wg.Wait()

			// Writes that landed after the pass drained may have re-dirtied
			// the log (the recovery loop's next tick would catch them); run
			// follow-up passes until it is empty.
			for i := 0; len(recovery.DirtyServers(cl, f)) > 0; i++ {
				if i == 10 {
					t.Fatal("dirty log did not drain")
				}
				rep, err := recovery.Resync(cl, f, dead, recovery.ResyncOptions{})
				if err != nil {
					t.Fatalf("follow-up resync: %v", err)
				}
				totalItems += rep.Items()
			}

			// Reads must be correct before re-admission too (degraded path).
			checkRead(t, f, ref, 0)
			cl.MarkUp(dead)

			problems, err := recovery.Verify(cl, f)
			if err != nil {
				t.Fatal(err)
			}
			if len(problems) != 0 {
				t.Fatalf("verify after resync: %v", problems)
			}
			checkRead(t, f, ref, 0)

			// The delta must be much smaller than a full rebuild of the
			// server, which reconstructs every unit and parity stripe it
			// owns.
			g := f.Geometry()
			var full int64
			g.UnitsOwnedBy(dead, f.Size(), func(int64) error { full++; return nil }) //nolint:errcheck
			if scheme.UsesParity() {
				g.ParityStripesOwnedBy(dead, f.Size(), func(int64) error { full++; return nil }) //nolint:errcheck
			}
			if totalItems == 0 || totalItems >= full/2 {
				t.Fatalf("resync replayed %d items; full rebuild would do %d — not a delta", totalItems, full)
			}
			m := cl.Metrics()
			if m.ResyncedUnits == 0 {
				t.Fatal("ResyncedUnits not recorded")
			}
			if m.FullRebuildFallbacks != 0 {
				t.Fatalf("unexpected full-rebuild fallback: %+v", m)
			}
		})
	}
}

// TestResyncForwardsBehindCursor pins the cursor protocol deterministically:
// with the sync-point past the whole file, a degraded-mode write is forwarded
// straight to the recovering server instead of re-dirtying the log.
func TestResyncForwardsBehindCursor(t *testing.T) {
	c := newCluster(t, 5)
	cl := c.NewClient()
	f, err := cl.Create("f", 5, 64, wire.Raid5)
	if err != nil {
		t.Fatal(err)
	}
	base := pattern(4096, 1)
	mustWrite(t, f, base, 0)

	const dead = 2
	c.StopServer(dead)
	cl.MarkDown(dead)
	mustWrite(t, f, pattern(256, 2), 0) // dirties the log
	c.RestartServer(dead)

	ref := f.Ref()
	before := dumpDirtyItems(t, c, ref, dead)
	if before == 0 {
		t.Fatal("degraded write left no dirty log")
	}

	cl.BeginResync(ref.ID, dead)
	cl.AdvanceResyncCursor(ref.ID, dead, math.MaxInt64)
	mustWrite(t, f, pattern(256, 3), 1024) // behind the cursor: forwarded
	cl.EndResync(ref.ID, dead)

	m := cl.Metrics()
	if m.ResyncForwards != 1 {
		t.Fatalf("ResyncForwards = %d, want 1", m.ResyncForwards)
	}
	if m.DegradedWrites != 1 { // only the pre-resync write
		t.Fatalf("DegradedWrites = %d, want 1", m.DegradedWrites)
	}
	if after := dumpDirtyItems(t, c, ref, dead); after != before {
		t.Fatalf("forwarded write changed the dirty log: %d -> %d items", before, after)
	}

	// The real resync then replays only the first write's damage; the
	// forwarded region is already fresh on the recovering server, which
	// Verify would catch out if it were not.
	rep, err := recovery.Resync(cl, f, dead, recovery.ResyncOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Items() == 0 || rep.FullRebuild {
		t.Fatalf("unexpected resync report: %+v", rep)
	}
	cl.MarkUp(dead)
	problems, err := recovery.Verify(cl, f)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("verify: %v", problems)
	}
	want := append([]byte{}, base...)
	copy(want, pattern(256, 2))
	copy(want[1024:], pattern(256, 3))
	checkRead(t, f, want, 0)
}

// TestResyncEpochMismatchFullRebuild loses one replica's dirty log entirely;
// the epoch sets disagree, so the log cannot prove it recorded every
// degraded write and Resync must fall back to a full rebuild.
func TestResyncEpochMismatchFullRebuild(t *testing.T) {
	c := newCluster(t, 5)
	cl := c.NewClient()
	f, err := cl.Create("f", 5, 64, wire.Raid5)
	if err != nil {
		t.Fatal(err)
	}
	want := pattern(8192, 1)
	mustWrite(t, f, want, 0)

	const dead = 2
	c.StopServer(dead)
	cl.MarkDown(dead)
	mustWrite(t, f, pattern(256, 2), 0)
	copy(want, pattern(256, 2))
	c.RestartServer(dead)

	ref := f.Ref()
	r := client.DirtyReplicas(c.Servers(), dead)[0]
	if _, err := c.Server(r).Handle(&wire.ClearDirty{File: ref, Dead: uint16(dead), All: true}); err != nil {
		t.Fatal(err)
	}

	rep, err := recovery.Resync(cl, f, dead, recovery.ResyncOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.FullRebuild {
		t.Fatal("mismatched epochs did not force a full rebuild")
	}
	if m := cl.Metrics(); m.FullRebuildFallbacks != 1 {
		t.Fatalf("FullRebuildFallbacks = %d, want 1", m.FullRebuildFallbacks)
	}
	if n := dumpDirtyItems(t, c, ref, dead); n != 0 {
		t.Fatalf("fallback left %d dirty items", n)
	}
	cl.MarkUp(dead)
	problems, err := recovery.Verify(cl, f)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("verify after fallback: %v", problems)
	}
	checkRead(t, f, want, 0)
}

// TestResyncAbortLeavesLogIntact kills the recovering server mid-replay:
// Resync must return ErrResyncAborted, leave the dirty log untouched, and a
// rerun after the fault clears must converge.
func TestResyncAbortLeavesLogIntact(t *testing.T) {
	c := newCluster(t, 5)
	cl := c.NewClient()
	f, err := cl.Create("f", 5, 64, wire.Raid5)
	if err != nil {
		t.Fatal(err)
	}
	want := pattern(8192, 1)
	mustWrite(t, f, want, 0)

	const dead = 2
	c.StopServer(dead)
	cl.MarkDown(dead)
	for _, off := range []int64{0, 1024, 4096} {
		mustWrite(t, f, pattern(256, byte(off)), off)
		copy(want[off:], pattern(256, byte(off)))
	}
	c.RestartServer(dead)

	ref := f.Ref()
	before := dumpDirtyItems(t, c, ref, dead)

	// The replacement dies again on the first replay write it receives.
	fault := c.Inject(FaultPoint{Server: dead, Action: FaultDrop})
	_, err = recovery.Resync(cl, f, dead, recovery.ResyncOptions{})
	if !errors.Is(err, recovery.ErrResyncAborted) {
		t.Fatalf("resync under fault: %v, want ErrResyncAborted", err)
	}
	if after := dumpDirtyItems(t, c, ref, dead); after != before {
		t.Fatalf("aborted resync changed the dirty log: %d -> %d items", before, after)
	}
	fault.Release()

	rep, err := recovery.Resync(cl, f, dead, recovery.ResyncOptions{})
	if err != nil {
		t.Fatalf("rerun after fault: %v", err)
	}
	if rep.Items() == 0 || rep.FullRebuild {
		t.Fatalf("unexpected rerun report: %+v", rep)
	}
	cl.MarkUp(dead)
	problems, err := recovery.Verify(cl, f)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("verify after rerun: %v", problems)
	}
	checkRead(t, f, want, 0)
}

// TestRebuildAbortAndRerun is the same recovery-of-recovery property for the
// full Rebuild path: the blank replacement dies mid-rebuild, Rebuild errors,
// and a rerun after it returns converges.
func TestRebuildAbortAndRerun(t *testing.T) {
	c := newCluster(t, 5)
	cl := c.NewClient()
	f, err := cl.Create("f", 5, 64, wire.Raid5)
	if err != nil {
		t.Fatal(err)
	}
	want := pattern(16<<10, 1)
	mustWrite(t, f, want, 0)

	const dead = 1
	c.StopServer(dead)
	c.ReplaceServer(dead)
	fault := c.Inject(FaultPoint{Server: dead, Kind: wire.KWriteData, After: 1, Action: FaultDrop})
	if err := recovery.Rebuild(cl, f, dead); err == nil {
		t.Fatal("rebuild succeeded with the replacement dropping writes")
	}
	fault.Release()
	if err := recovery.Rebuild(cl, f, dead); err != nil {
		t.Fatalf("rebuild rerun: %v", err)
	}
	cl.MarkUp(dead)
	problems, err := recovery.Verify(cl, f)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("verify after rebuild rerun: %v", problems)
	}
	checkRead(t, f, want, 0)
}

// TestDirtyLogSurvivesReplicaCrash crashes a dirty-log replica (RAM lost,
// disk kept): the journal reload must bring the log back, and the resync
// that follows must still converge.
func TestDirtyLogSurvivesReplicaCrash(t *testing.T) {
	c := newCluster(t, 5)
	cl := c.NewClient()
	f, err := cl.Create("f", 5, 64, wire.Raid5)
	if err != nil {
		t.Fatal(err)
	}
	want := pattern(8192, 1)
	mustWrite(t, f, want, 0)

	const dead = 2
	c.StopServer(dead)
	cl.MarkDown(dead)
	mustWrite(t, f, pattern(300, 2), 512)
	copy(want[512:], pattern(300, 2))

	ref := f.Ref()
	before := dumpDirtyItems(t, c, ref, dead)
	if before == 0 {
		t.Fatal("no dirty log to crash")
	}
	r := client.DirtyReplicas(c.Servers(), dead)[0]
	c.CrashServer(r)
	c.RestartServer(r)
	if after := dumpDirtyItems(t, c, ref, dead); after != before {
		t.Fatalf("dirty log lost in crash: %d -> %d items", before, after)
	}

	c.RestartServer(dead)
	if deads := recovery.DirtyServers(cl, f); len(deads) != 1 || deads[0] != dead {
		t.Fatalf("DirtyServers = %v, want [%d]", deads, dead)
	}
	if _, err := recovery.Resync(cl, f, dead, recovery.ResyncOptions{}); err != nil {
		t.Fatal(err)
	}
	cl.MarkUp(dead)
	problems, err := recovery.Verify(cl, f)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("verify: %v", problems)
	}
	checkRead(t, f, want, 0)
}

// TestResyncDryRunAndNoop: a dry run reports the delta without writing or
// clearing anything, and a resync with no logged damage is a no-op.
func TestResyncDryRunAndNoop(t *testing.T) {
	c := newCluster(t, 5)
	cl := c.NewClient()
	f, err := cl.Create("f", 5, 64, wire.Raid5)
	if err != nil {
		t.Fatal(err)
	}
	mustWrite(t, f, pattern(4096, 1), 0)

	// No damage: nothing to do.
	rep, err := recovery.Resync(cl, f, 2, recovery.ResyncOptions{})
	if err != nil || rep.Items() != 0 || rep.Rounds != 0 {
		t.Fatalf("no-op resync: %+v, %v", rep, err)
	}

	const dead = 2
	c.StopServer(dead)
	cl.MarkDown(dead)
	mustWrite(t, f, pattern(256, 2), 0)
	c.RestartServer(dead)

	ref := f.Ref()
	before := dumpDirtyItems(t, c, ref, dead)
	dry, err := recovery.Resync(cl, f, dead, recovery.ResyncOptions{DryRun: true})
	if err != nil {
		t.Fatal(err)
	}
	if dry.Items() == 0 || dry.FullRebuild {
		t.Fatalf("dry run found nothing: %+v", dry)
	}
	if after := dumpDirtyItems(t, c, ref, dead); after != before {
		t.Fatalf("dry run changed the dirty log: %d -> %d items", before, after)
	}

	real, err := recovery.Resync(cl, f, dead, recovery.ResyncOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if real.Items() != dry.Items() {
		t.Fatalf("dry run predicted %d items, real pass replayed %d", dry.Items(), real.Items())
	}
	cl.MarkUp(dead)
	if problems, err := recovery.Verify(cl, f); err != nil || len(problems) != 0 {
		t.Fatalf("verify: %v %v", problems, err)
	}
}
