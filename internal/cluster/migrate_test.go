package cluster

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"csar/internal/recovery"
	"csar/internal/wire"
)

// End-to-end tests for online scheme migration ("re-layout under
// writers"): the scheme-transition matrix on a quiet file, the
// dual-write cursor boundary pinned deterministically, the acceptance
// scenario — Hybrid → RS(4,2) under concurrent writers surviving an I/O
// server crash and a manager failover — and abort/re-run convergence.

// TestMigrateSchemeMatrix walks one live file through RAID1 → Hybrid →
// RAID5 → RS(4,2) → RAID1. After every hop the content must be intact,
// the file writable under the new scheme, the redundancy verifiable, and
// the new layout visible to a freshly attached client.
func TestMigrateSchemeMatrix(t *testing.T) {
	c := newCluster(t, 6)
	cl := c.NewClient()
	f, err := cl.Create("m", 6, 512, wire.Raid1)
	if err != nil {
		t.Fatal(err)
	}
	const size = 50 << 10
	ref := pattern(size, 3)
	mustWrite(t, f, ref, 0)

	hops := []struct {
		scheme wire.Scheme
		parity int
	}{
		{wire.Hybrid, 0},
		{wire.Raid5, 0},
		{wire.ReedSolomon, 2},
		{wire.Raid1, 0},
	}
	for i, hop := range hops {
		from := f.Scheme()
		rep, err := recovery.Migrate(cl, f, hop.scheme, hop.parity, recovery.MigrateOptions{})
		if err != nil {
			t.Fatalf("hop %v -> %v: %v", from, hop.scheme, err)
		}
		if rep.From != from || rep.To != hop.scheme || rep.NewID == 0 {
			t.Fatalf("report = %+v", rep)
		}
		if rep.BytesCopied < size {
			t.Fatalf("hop to %v copied %d bytes, file is %d", hop.scheme, rep.BytesCopied, size)
		}
		if rep.CleanupErrs != 0 {
			t.Fatalf("hop to %v left %d old stores behind", hop.scheme, rep.CleanupErrs)
		}
		if f.Scheme() != hop.scheme || f.Ref().ID != rep.NewID {
			t.Fatalf("handle after hop: scheme=%v id=%d, want %v/%d", f.Scheme(), f.Ref().ID, hop.scheme, rep.NewID)
		}
		// Content survived and the file is writable in the new scheme.
		checkRead(t, f, ref, 0)
		upd := pattern(777, byte(i+40))
		off := int64(i * 1000)
		mustWrite(t, f, upd, off)
		copy(ref[off:], upd)
		checkRead(t, f, ref, 0)
		if probs, err := recovery.Verify(cl, f); err != nil || len(probs) != 0 {
			t.Fatalf("verify after hop to %v: %v %v", hop.scheme, probs, err)
		}
		// A fresh client sees the committed layout.
		ff, err := c.NewClient().Open("m")
		if err != nil {
			t.Fatal(err)
		}
		if ff.Scheme() != hop.scheme || ff.Ref().ID != rep.NewID {
			t.Fatalf("fresh open after hop: scheme=%v id=%d", ff.Scheme(), ff.Ref().ID)
		}
		checkRead(t, ff, ref, 0)
	}
	if got := cl.Metrics().Migrations; got != int64(len(hops)) {
		t.Fatalf("Migrations metric = %d, want %d", got, len(hops))
	}
}

// TestRelayoutCursorBoundary pins the dual-write rule down without any
// timing: with the cursor held at a fixed offset, a foreground write behind
// it must be mirrored into the shadow layout, one wholly ahead must not be,
// and the cursor must never move backwards.
func TestRelayoutCursorBoundary(t *testing.T) {
	c := newCluster(t, 6)
	cl := c.NewClient()
	f, err := cl.Create("b", 6, 1024, wire.Hybrid)
	if err != nil {
		t.Fatal(err)
	}
	mustWrite(t, f, pattern(64<<10, 5), 0)

	id := f.Ref().ID
	sr, err := cl.PinScheme(id, wire.ReedSolomon, 2)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := cl.FileForRelayout(sr.New, 0)
	if err != nil {
		t.Fatal(err)
	}
	cl.BeginRelayout(id, dst)
	cl.AdvanceRelayoutCursor(id, 16384)

	// Behind the cursor: the write lands in both layouts. 4 KiB at 4 KiB
	// is one full RS(4,2) stripe, so the shadow holds exactly those bytes.
	behind := pattern(4096, 9)
	mustWrite(t, f, behind, 4096)
	got := make([]byte, len(behind))
	if _, err := dst.ReadAt(got, 4096); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, behind) {
		t.Fatal("write behind the cursor not mirrored into the shadow layout")
	}
	if m := cl.Metrics().RelayoutDualWrite; m != 1 {
		t.Fatalf("RelayoutDualWrite = %d, want 1", m)
	}

	// Wholly ahead of the cursor: live layout only. The shadow's size
	// would have grown past 32 KiB had the write been mirrored.
	mustWrite(t, f, pattern(4096, 11), 32768)
	if m := cl.Metrics().RelayoutDualWrite; m != 1 {
		t.Fatalf("write ahead of the cursor was mirrored (dual-writes = %d)", m)
	}
	if ds := dst.Size(); ds > 16384 {
		t.Fatalf("shadow size %d grew past the cursor", ds)
	}

	// The cursor is monotonic: a lower advance is a no-op.
	cl.AdvanceRelayoutCursor(id, 8192)
	if cur := cl.RelayoutCursor(id); cur != 16384 {
		t.Fatalf("cursor moved backwards: %d", cur)
	}

	cl.EndRelayout(id)
	if err := cl.AbortScheme(id, sr.New.ID); err != nil {
		t.Fatal(err)
	}
}

// TestMigrateUnderWritersCrashAndFailover is the acceptance scenario: a
// Hybrid file on six servers migrates to RS(4,2) while writers keep
// rewriting their regions. Mid-copy an I/O server fails requests and the
// pass aborts; the server then crash-restarts (RAM state lost, disk
// intact) and the primary manager is killed and a standby promoted. The
// re-run must resume the same pinned shadow layout, converge, and leave
// the file byte-identical to what the writers wrote, verifiably redundant,
// and visible to fresh clients under the new scheme.
func TestMigrateUnderWritersCrashAndFailover(t *testing.T) {
	cfg := DefaultConfig(6)
	cfg.Managers = 3
	cfg.MetaDir = t.TempDir()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cl := c.NewClient()

	// Block size is one whole Hybrid stripe (5 data units) times one whole
	// RS(4,2) stripe (4 data units): every write — live, dual-written, or
	// chunk copy — takes a full-stripe path, so a mid-write failure never
	// strands overflow tables or open RMW intents on the server that will
	// crash.
	const (
		unit      = 1024
		blockSize = 20 * unit // lcm(5, 4) data units
		nWriters  = 3
		blocks    = 4              // per writer
		size      = 16 * blockSize // writers cover 12 blocks, tail is static
	)
	f, err := cl.Create("m", 6, unit, wire.Hybrid)
	if err != nil {
		t.Fatal(err)
	}
	seed := pattern(size, 7)
	mustWrite(t, f, seed, 0)
	if err := f.Sync(); err != nil { // publish the size: fresh clients must see it post-cutover
		t.Fatal(err)
	}

	// Writers each own a disjoint run of blocks and rewrite them round-robin
	// with fresh contents, retrying each block until it is acknowledged —
	// the last acknowledged write per block is the expected final content.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	regions := make([][]byte, nWriters)
	for w := 0; w < nWriters; w++ {
		base := w * blocks * blockSize
		region := make([]byte, blocks*blockSize)
		copy(region, seed[base:base+len(region)])
		regions[w] = region
		wg.Add(1)
		go func(w int, region []byte) {
			defer wg.Done()
			for iter := 0; ; iter++ {
				select {
				case <-stop:
					return
				default:
				}
				b := iter % blocks
				data := pattern(blockSize, byte(w*31+iter))
				off := int64(w*blocks*blockSize + b*blockSize)
				for {
					if _, err := f.WriteAt(data, off); err == nil {
						break
					}
					time.Sleep(time.Millisecond)
				}
				copy(region[b*blockSize:], data)
			}
		}(w, region)
	}

	// First pass: server 2 starts failing data writes mid-copy. The pass
	// must abort and leave the shadow layout pinned.
	flt := c.Inject(FaultPoint{Server: 2, Kind: wire.KWriteData, After: 6, Action: FaultDrop})
	rep1, err := recovery.Migrate(cl, f, wire.ReedSolomon, 2, recovery.MigrateOptions{ChunkStripes: 2})
	if !errors.Is(err, recovery.ErrMigrationAborted) {
		t.Fatalf("pass with failing server: %v", err)
	}
	if rep1.NewID == 0 {
		t.Fatalf("no shadow pinned: %+v", rep1)
	}
	flt.Release()
	if info, err := cl.OpenInfo("m"); err != nil || info.Mig.ID != rep1.NewID {
		t.Fatalf("pin after aborted pass: %+v, %v", info, err)
	}

	// The wounded server crash-restarts: volatile state is gone, stores
	// survive. Then the primary manager dies and a standby takes over —
	// the pin must ride the replicated WAL across the failover.
	c.CrashServer(2)
	c.RestartServer(2)
	c.KillManager(0)
	if won, err := c.TryPromoteManager(1); err != nil || !won {
		t.Fatalf("promotion: won=%v err=%v", won, err)
	}

	// Re-run: resumes the same shadow layout and converges under writers.
	rep2, err := recovery.Migrate(cl, f, wire.ReedSolomon, 2, recovery.MigrateOptions{ChunkStripes: 2})
	if err != nil {
		t.Fatalf("re-run after crash and failover: %v", err)
	}
	if rep2.NewID != rep1.NewID {
		t.Fatalf("re-run pinned a new shadow %d, want resumed %d", rep2.NewID, rep1.NewID)
	}
	if rep2.BytesCopied < size {
		t.Fatalf("re-run copied %d bytes, file is %d", rep2.BytesCopied, size)
	}

	close(stop)
	wg.Wait()

	// Expected content: writers' last acknowledged blocks over the static
	// seed tail.
	want := make([]byte, size)
	copy(want, seed)
	for w, region := range regions {
		copy(want[w*blocks*blockSize:], region)
	}
	if f.Scheme() != wire.ReedSolomon || f.Ref().ID != rep2.NewID {
		t.Fatalf("handle after migration: %v/%d", f.Scheme(), f.Ref().ID)
	}
	checkRead(t, f, want, 0)
	if probs, err := recovery.Verify(cl, f); err != nil || len(probs) != 0 {
		t.Fatalf("verify after migration: %v %v", probs, err)
	}
	if info, err := cl.OpenInfo("m"); err != nil || info.Mig.ID != 0 {
		t.Fatalf("pin not cleared by commit: %+v, %v", info, err)
	}

	// A fresh client attached after the cutover sees the new layout.
	ff, err := c.NewClient().Open("m")
	if err != nil {
		t.Fatal(err)
	}
	if ff.Scheme() != wire.ReedSolomon || ff.Size() != size {
		t.Fatalf("fresh open: %v size=%d", ff.Scheme(), ff.Size())
	}
	checkRead(t, ff, want, 0)

	m := cl.Metrics()
	if m.Migrations != 1 {
		t.Fatalf("Migrations = %d", m.Migrations)
	}
	if m.MetaFailovers == 0 {
		t.Fatal("no metadata failover counted across the manager kill")
	}
	if m.RelayoutBytes < size {
		t.Fatalf("RelayoutBytes = %d, want >= %d", m.RelayoutBytes, size)
	}
}

// TestAbortMigrationAndRerun: a pinned migration with a partially
// materialized shadow is abandoned; the pin clears, and a later migration
// to a different target proceeds under a fresh shadow ID.
func TestAbortMigrationAndRerun(t *testing.T) {
	c := newCluster(t, 6)
	cl := c.NewClient()
	f, err := cl.Create("a", 6, 512, wire.Hybrid)
	if err != nil {
		t.Fatal(err)
	}
	const size = 32 << 10
	ref := pattern(size, 21)
	mustWrite(t, f, ref, 0)

	sr, err := cl.PinScheme(f.Ref().ID, wire.Raid5, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Partially materialize the shadow, as an interrupted copy would.
	dst, err := cl.FileForRelayout(sr.New, 0)
	if err != nil {
		t.Fatal(err)
	}
	mustWrite(t, dst, ref[:8192], 0)

	if err := recovery.AbortMigration(cl, "a"); err != nil {
		t.Fatal(err)
	}
	if info, err := cl.OpenInfo("a"); err != nil || info.Mig.ID != 0 {
		t.Fatalf("pin after abort: %+v, %v", info, err)
	}
	// Aborting again is a no-op.
	if err := recovery.AbortMigration(cl, "a"); err != nil {
		t.Fatal(err)
	}

	// A subsequent migration to a different target gets a fresh shadow and
	// converges; the abandoned copy leaves no trace.
	rep, err := recovery.Migrate(cl, f, wire.ReedSolomon, 2, recovery.MigrateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.NewID == sr.New.ID {
		t.Fatal("aborted shadow ID reused")
	}
	checkRead(t, f, ref, 0)
	if probs, err := recovery.Verify(cl, f); err != nil || len(probs) != 0 {
		t.Fatalf("verify: %v %v", probs, err)
	}
}
