package cluster

import (
	"bytes"
	"testing"
	"time"

	"csar/internal/client"
	"csar/internal/recovery"
	"csar/internal/simnet"
	"csar/internal/wire"
)

// This file is the deterministic fault-schedule harness for the client's
// resilience layer: each scenario arms request-level faults (inject.go) or
// simnet link faults at exact points in a workload and asserts both the end
// state of the data AND the resilience metrics (retries, timeouts, breaker
// transitions, failovers, lock releases). Nothing here depends on real
// timing except "sleep longer than ProbeAfter", so the scenarios hold under
// -race and -count=2.

// testPolicy returns a fast, jitter-free policy for fault tests; scenarios
// override the fields they exercise.
func testPolicy() client.Policy {
	return client.Policy{
		BackoffBase: time.Millisecond,
		BackoffMax:  2 * time.Millisecond,
	}
}

func mustWrite(t *testing.T, f *client.File, p []byte, off int64) {
	t.Helper()
	if _, err := f.WriteAt(p, off); err != nil {
		t.Fatal(err)
	}
}

func checkRead(t *testing.T, f *client.File, want []byte, off int64) {
	t.Helper()
	got := make([]byte, len(want))
	if _, err := f.ReadAt(got, off); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("read mismatch at byte %d: got %d want %d", off+int64(i), got[i], want[i])
			}
		}
	}
}

// TestFaultSchedule is the table of deterministic failure scenarios.
func TestFaultSchedule(t *testing.T) {
	scenarios := []struct {
		name string
		run  func(t *testing.T)
	}{
		{"HangMidStripe", runHangMidStripe},
		{"GhostParityLock", runGhostParityLock},
		{"PartitionStaleVeto", runPartitionStaleVeto},
		{"FlappingServer", runFlappingServer},
		{"KillMidWorkload", runKillMidWorkload},
	}
	for _, s := range scenarios {
		t.Run(s.name, s.run)
	}
}

// runHangMidStripe: a server stops answering reads mid-workload (wedged, not
// crashed — only deadlines can tell). The client must burn exactly its
// deadline+retry budget once, trip the breaker, fail the read over to parity
// reconstruction, and serve every later read degraded without touching the
// wedged server again.
func runHangMidStripe(t *testing.T) {
	c := newCluster(t, 4)
	cl := c.NewClient()
	f, err := cl.Create("hang", 4, 64, wire.Raid5)
	if err != nil {
		t.Fatal(err)
	}
	ref := pattern(1024, 3)
	mustWrite(t, f, ref, 0)

	p := testPolicy()
	p.CallTimeout = 30 * time.Millisecond
	p.Retries = 2
	p.BreakerThreshold = 3 // == total attempts: exactly one trip
	p.ProbeAfter = time.Hour
	cl.SetPolicy(p)

	fault := c.Inject(FaultPoint{Server: 1, Kind: wire.KRead, Action: FaultHang})
	t.Cleanup(fault.Release)

	checkRead(t, f, ref, 0) // fails over to reconstruction mid-read
	select {
	case <-fault.Triggered():
	default:
		t.Fatal("fault never triggered")
	}
	m := cl.Metrics()
	if m.Timeouts != 3 || m.Retries != 2 {
		t.Fatalf("timeouts=%d retries=%d, want 3 and 2 (1 try + 2 retries, all deadlined)", m.Timeouts, m.Retries)
	}
	if m.BreakerTrips != 1 || m.Failovers != 1 || m.DegradedReads < 1 {
		t.Fatalf("trips=%d failovers=%d degradedReads=%d, want 1, 1, >=1",
			m.BreakerTrips, m.Failovers, m.DegradedReads)
	}
	if cl.BreakerStates()[1] != client.BreakerOpen {
		t.Fatalf("server 1 breaker = %v, want open", cl.BreakerStates()[1])
	}

	// Later reads route degraded up front: correct bytes, no new deadlines.
	checkRead(t, f, ref[100:400], 100)
	if m2 := cl.Metrics(); m2.Timeouts != 3 {
		t.Fatalf("degraded-routed read burned %d extra deadlines", m2.Timeouts-3)
	}
}

// runGhostParityLock: the parity server executes a locked parity read but
// the response is lost (FaultBlackhole) — the server holds a lock its owner
// does not know it has. The owner-token release must free it so another
// client's RMW on the same stripe cannot deadlock (the Section 4 protocol's
// dead-peer case).
func runGhostParityLock(t *testing.T) {
	c := newCluster(t, 4)
	clA, clB := c.NewClient(), c.NewClient()
	f, err := clA.Create("ghost", 4, 64, wire.Raid5)
	if err != nil {
		t.Fatal(err)
	}
	ref := pattern(768, 5)
	mustWrite(t, f, ref, 0)

	ps := f.Geometry().ParityServerOf(0)
	fault := c.Inject(FaultPoint{Server: ps, Kind: wire.KReadParity, Action: FaultBlackhole})
	t.Cleanup(fault.Release)

	// Client A's RMW: the lock is granted server-side, the reply is lost,
	// the write fails — and A fires the token-scoped UnlockParity.
	if _, err := f.WriteAt(pattern(50, 9), 10); err == nil {
		t.Fatal("write with blackholed parity read unexpectedly succeeded")
	}
	if m := clA.Metrics(); m.LockReleases != 1 {
		t.Fatalf("lockReleases=%d, want 1", m.LockReleases)
	}
	fault.Release()

	// Client B's RMW on the same stripe must acquire the lock — it may queue
	// briefly behind the ghost until A's release lands, but never deadlock.
	fb, err := clB.Open("ghost")
	if err != nil {
		t.Fatal(err)
	}
	bdata := pattern(50, 11)
	if _, err := fb.WriteAt(bdata, 10); err != nil {
		t.Fatalf("RMW behind ghost lock: %v", err)
	}
	copy(ref[10:], bdata)
	checkRead(t, fb, ref, 0)
	// A's failed RMW must not have written its data.
	checkRead(t, f, ref, 0)
}

// runPartitionStaleVeto: a server is partitioned away during Hybrid overflow
// writes, the writes proceed degraded (so the server's stores go stale), the
// partition heals — and the breaker's probe must REFUSE to re-admit the
// healthy-looking server until Rebuild + MarkUp, or clients would read stale
// bytes.
func runPartitionStaleVeto(t *testing.T) {
	c := newPipeCluster(t, 4)
	cl := c.NewClient()
	f, err := cl.Create("part", 4, 64, wire.Hybrid)
	if err != nil {
		t.Fatal(err)
	}
	p := testPolicy()
	p.CallTimeout = 500 * time.Millisecond
	p.BreakerThreshold = 1
	p.ProbeAfter = 20 * time.Millisecond
	cl.SetPolicy(p)

	ref := make([]byte, 1024)
	head := pattern(512, 7)
	mustWrite(t, f, head, 0)
	copy(ref, head)

	c.PartitionServer(2)
	// The overflow write spans every server; the partitioned one fails it.
	tail := pattern(255, 8)
	if _, err := f.WriteAt(tail, 512); err == nil {
		t.Fatal("write through partition unexpectedly succeeded")
	}
	if m := cl.Metrics(); m.BreakerTrips != 1 {
		t.Fatalf("breakerTrips=%d, want 1", m.BreakerTrips)
	}
	// Retried, the write goes degraded — and marks server 2 stale.
	mustWrite(t, f, tail, 512)
	copy(ref[512:], tail)
	if m := cl.Metrics(); m.DegradedWrites != 1 {
		t.Fatalf("degradedWrites=%d, want 1", m.DegradedWrites)
	}

	// Heal the network and give the breaker a due probe: the server answers
	// Health, but it missed a degraded write, so re-admission must be vetoed.
	c.HealServer(2)
	time.Sleep(3 * p.ProbeAfter)
	checkRead(t, f, ref, 0)
	m := cl.Metrics()
	if m.BreakerProbes < 1 {
		t.Fatalf("no re-admission probe ran after heal (probes=%d)", m.BreakerProbes)
	}
	if m.BreakerReadmits != 0 {
		t.Fatalf("stale server re-admitted (readmits=%d)", m.BreakerReadmits)
	}
	if cl.BreakerStates()[2] != client.BreakerOpen {
		t.Fatalf("server 2 breaker = %v, want open until rebuild", cl.BreakerStates()[2])
	}

	// Only the full recovery path re-admits: replace, rebuild, mark up.
	c.ReplaceServer(2)
	if err := recovery.Rebuild(cl, f, 2); err != nil {
		t.Fatal(err)
	}
	cl.MarkUp(2)
	if cl.BreakerStates()[2] != client.BreakerClosed {
		t.Fatalf("server 2 breaker = %v after MarkUp, want closed", cl.BreakerStates()[2])
	}
	checkRead(t, f, ref, 0)
	problems, err := recovery.Verify(cl, f)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) > 0 {
		t.Fatalf("inconsistent after rebuild: %v", problems[0])
	}
	if m := cl.Metrics(); m.DegradedReads < 1 {
		t.Fatalf("degradedReads=%d, want >=1 while the breaker held the server out", m.DegradedReads)
	}
}

// runFlappingServer: a server drops out and comes back three times. Each
// outage must trip the breaker and fail reads over exactly once; each return
// must be noticed by a probing re-admission (no stale writes ran, so
// re-admission is legal) and traffic must move back to the normal path.
func runFlappingServer(t *testing.T) {
	c := newCluster(t, 3)
	cl := c.NewClient()
	f, err := cl.Create("flap", 3, 64, wire.Raid1)
	if err != nil {
		t.Fatal(err)
	}
	ref := pattern(384, 13)
	mustWrite(t, f, ref, 0)

	p := testPolicy()
	p.BreakerThreshold = 1
	p.ProbeAfter = 0 // a probe is due as soon as the breaker opens
	cl.SetPolicy(p)

	for cycle := 0; cycle < 3; cycle++ {
		fault := c.Inject(FaultPoint{Server: 1, Kind: wire.KRead, Action: FaultDrop})
		checkRead(t, f, ref, 0) // trip + failover, served from mirrors
		if cl.BreakerStates()[1] != client.BreakerOpen {
			t.Fatalf("cycle %d: breaker not open after drop", cycle)
		}
		fault.Release()
		checkRead(t, f, ref, 0) // probe re-admits; normal path again
		if cl.BreakerStates()[1] != client.BreakerClosed {
			t.Fatalf("cycle %d: breaker not re-closed after recovery", cycle)
		}
	}
	m := cl.Metrics()
	if m.BreakerTrips != 3 || m.BreakerReadmits != 3 || m.Failovers != 3 {
		t.Fatalf("trips=%d readmits=%d failovers=%d, want 3 each",
			m.BreakerTrips, m.BreakerReadmits, m.Failovers)
	}
	if m.Timeouts != 0 {
		t.Fatalf("timeouts=%d on a fast-failing link, want 0", m.Timeouts)
	}
}

// runKillMidWorkload is the acceptance scenario: on the full RPC stack, a
// simnet fault schedule hangs every message to one I/O server in the middle
// of a workload. The client must complete every subsequent read with correct
// bytes through the degraded paths, with non-zero retry/timeout/breaker
// metrics, and partial-stripe writes must keep succeeding without a
// parity-lock deadlock.
func runKillMidWorkload(t *testing.T) {
	c := newPipeCluster(t, 4)
	t.Cleanup(c.Network().ClearFaults) // wake hung sends before teardown
	cl := c.NewClient()
	f, err := cl.Create("kill", 4, 64, wire.Raid5)
	if err != nil {
		t.Fatal(err)
	}
	p := testPolicy()
	p.CallTimeout = 40 * time.Millisecond
	p.Retries = 1
	p.BreakerThreshold = 2 // == total attempts of the first failing read
	p.ProbeAfter = time.Hour
	cl.SetPolicy(p)

	// Phase 1: healthy workload.
	const size = 2048
	ref := pattern(size, 17)
	mustWrite(t, f, ref, 0)
	checkRead(t, f, ref, 0)

	// The kill: every frame toward iod1 hangs silently from now on.
	<-c.Network().RunSchedule([]simnet.FaultStep{
		{From: simnet.Wildcard, To: c.ServerNodeName(1), Fault: simnet.LinkFault{Hang: true}},
	})

	// Phase 2: the very next read pays the deadline budget, trips the
	// breaker, and fails over; every read after that routes degraded up
	// front. All of them must return correct bytes.
	offs := []int64{0, 64, 100, 500, 777, 1000, 1300, 1500, 1800, 40,
		128, 256, 320, 600, 900, 1100, 1400, 1700, 1900, 2000}
	for i, off := range offs {
		n := int64(48 + 13*i)
		if off+n > size {
			n = size - off
		}
		checkRead(t, f, ref[off:off+n], off)
	}

	// Partial-stripe writes while the server is gone: degraded RMW, parity
	// locks on live servers only — no deadlock on the dead peer.
	for i, off := range []int64{10, 300, 1030} {
		data := pattern(50, byte(20+i))
		mustWrite(t, f, data, off)
		copy(ref[off:], data)
	}
	checkRead(t, f, ref, 0)

	m := cl.Metrics()
	if m.Timeouts != 2 || m.Retries != 1 {
		t.Fatalf("timeouts=%d retries=%d, want exactly 2 and 1 (one deadline budget)", m.Timeouts, m.Retries)
	}
	if m.BreakerTrips != 1 || m.Failovers != 1 {
		t.Fatalf("trips=%d failovers=%d, want 1 and 1", m.BreakerTrips, m.Failovers)
	}
	if m.DegradedReads < int64(len(offs)) || m.DegradedWrites != 3 {
		t.Fatalf("degradedReads=%d degradedWrites=%d, want >=%d and 3",
			m.DegradedReads, m.DegradedWrites, len(offs))
	}
}

// TestAutoFailoverMidRead is the regression for the core promise: a server
// dying mid-read (never marked down by anyone) reroutes through the degraded
// paths automatically and returns correct bytes, for every redundant scheme.
func TestAutoFailoverMidRead(t *testing.T) {
	for _, scheme := range redundantSchemes {
		t.Run(scheme.String(), func(t *testing.T) {
			c := newCluster(t, 4)
			cl := c.NewClient()
			f, err := cl.Create("auto", 4, 64, scheme)
			if err != nil {
				t.Fatal(err)
			}
			ref := pattern(1024, 21)
			mustWrite(t, f, ref, 0)

			c.StopServer(2) // nobody calls MarkDown
			checkRead(t, f, ref, 0)
			m := cl.Metrics()
			if m.Failovers < 1 || m.DegradedReads < 1 {
				t.Fatalf("failovers=%d degradedReads=%d, want >=1 each", m.Failovers, m.DegradedReads)
			}
		})
	}

	t.Run("raid0-still-errors", func(t *testing.T) {
		c := newCluster(t, 4)
		cl := c.NewClient()
		f, err := cl.Create("auto0", 4, 64, wire.Raid0)
		if err != nil {
			t.Fatal(err)
		}
		mustWrite(t, f, pattern(1024, 22), 0)
		c.StopServer(2)
		if _, err := f.ReadAt(make([]byte, 1024), 0); err == nil {
			t.Fatal("raid0 read off a dead server returned no error")
		}
	})
}
