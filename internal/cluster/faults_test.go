package cluster

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"csar/internal/recovery"
	"csar/internal/wire"
)

// TestFaultInjectionLifecycle interleaves random reads and writes with
// server failures, degraded operation, and rebuilds — the whole lifecycle
// the redundancy exists for — and checks the file against a flat reference
// array at every step, plus full consistency after every rebuild.
func TestFaultInjectionLifecycle(t *testing.T) {
	for _, scheme := range redundantSchemes {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < 4; seed++ {
				r := rand.New(rand.NewSource(seed + 100))
				servers := 4 + int(seed%2)
				c := newCluster(t, servers)
				cl := c.NewClient()
				su := int64(32 + r.Intn(64))
				f, err := cl.Create(fmt.Sprintf("fi%d", seed), servers, su, scheme)
				if err != nil {
					t.Fatal(err)
				}

				const space = 1 << 13
				ref := make([]byte, space)
				dead := -1

				for op := 0; op < 80; op++ {
					switch {
					case op%20 == 10 && dead < 0:
						// Fail a random server.
						dead = r.Intn(servers)
						c.StopServer(dead)
						cl.MarkDown(dead)
					case op%20 == 19 && dead >= 0:
						// Replace and rebuild it.
						c.ReplaceServer(dead)
						if err := recovery.Rebuild(cl, f, dead); err != nil {
							t.Fatalf("seed %d op %d rebuild(%d): %v", seed, op, dead, err)
						}
						cl.MarkUp(dead)
						problems, err := recovery.Verify(cl, f)
						if err != nil {
							t.Fatal(err)
						}
						if len(problems) > 0 {
							t.Fatalf("seed %d op %d: inconsistent after rebuild: %v",
								seed, op, problems[:1])
						}
						dead = -1
					case r.Intn(3) == 0:
						off := int64(r.Intn(space / 2))
						n := r.Intn(space/4) + 1
						got := make([]byte, n)
						if _, err := f.ReadAt(got, off); err != nil {
							t.Fatalf("seed %d op %d read (dead=%d): %v", seed, op, dead, err)
						}
						if !bytes.Equal(got, ref[off:off+int64(n)]) {
							t.Fatalf("seed %d op %d: read mismatch (dead=%d)", seed, op, dead)
						}
					default:
						off := int64(r.Intn(space / 2))
						n := r.Intn(space/4) + 1
						data := make([]byte, n)
						r.Read(data)
						if _, err := f.WriteAt(data, off); err != nil {
							t.Fatalf("seed %d op %d write (dead=%d): %v", seed, op, dead, err)
						}
						copy(ref[off:], data)
					}
				}

				// Settle: if still degraded, rebuild before the final check.
				if dead >= 0 {
					c.ReplaceServer(dead)
					if err := recovery.Rebuild(cl, f, dead); err != nil {
						t.Fatal(err)
					}
					cl.MarkUp(dead)
				}
				got := make([]byte, space)
				if _, err := f.ReadAt(got, 0); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, ref) {
					t.Fatalf("seed %d: final contents diverged", seed)
				}
				problems, err := recovery.Verify(cl, f)
				if err != nil {
					t.Fatal(err)
				}
				if len(problems) > 0 {
					t.Fatalf("seed %d: final inconsistency: %v", seed, problems[:1])
				}
			}
		})
	}
}

// TestMultipleFilesIsolated checks that files do not interfere: interleaved
// writes to several files under different schemes stay isolated, and
// removing one leaves the others intact.
func TestMultipleFilesIsolated(t *testing.T) {
	c := newCluster(t, 5)
	cl := c.NewClient()
	schemes := []wire.Scheme{wire.Raid0, wire.Raid1, wire.Raid5, wire.Hybrid}
	refs := make([][]byte, len(schemes))
	files := make([]interface {
		WriteAt([]byte, int64) (int, error)
		ReadAt([]byte, int64) (int, error)
	}, len(schemes))

	for i, s := range schemes {
		f, err := cl.Create(fmt.Sprintf("multi-%d", i), 5, 64, s)
		if err != nil {
			t.Fatal(err)
		}
		files[i] = f
		refs[i] = make([]byte, 4096)
	}
	r := rand.New(rand.NewSource(7))
	for op := 0; op < 200; op++ {
		i := r.Intn(len(files))
		off := int64(r.Intn(2048))
		data := make([]byte, r.Intn(1024)+1)
		r.Read(data)
		if _, err := files[i].WriteAt(data, off); err != nil {
			t.Fatal(err)
		}
		copy(refs[i][off:], data)
	}
	if err := cl.Remove("multi-0"); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(files); i++ {
		got := make([]byte, 4096)
		if _, err := files[i].ReadAt(got, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, refs[i]) {
			t.Fatalf("file %d corrupted by activity on other files", i)
		}
	}
}
