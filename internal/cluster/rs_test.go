package cluster

import (
	"errors"
	"testing"
	"time"

	"csar/internal/client"
	"csar/internal/recovery"
	"csar/internal/scrub"
	"csar/internal/wire"
)

// This file is the fault suite for the Reed-Solomon scheme: RS(4, 2) on six
// servers must survive two simultaneous server failures — degraded reads
// return correct bytes with any two servers gone, Rebuild restores both from
// the four survivors, scrub and Verify then report a clean file — and the
// multi-parity write path must keep the crash-restart intent-replay and
// online-resync guarantees of the single-parity schemes.

// rsVerifyClean asserts Verify and a scrub pass find nothing wrong.
func rsVerifyClean(t *testing.T, cl *client.Client, f *client.File) {
	t.Helper()
	problems, err := recovery.Verify(cl, f)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("verify: %v", problems[:min(3, len(problems))])
	}
	srep, err := scrub.Run(cl, f, scrub.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !srep.Clean() {
		t.Fatalf("scrub: %v (problems %v)", srep, srep.Problems)
	}
}

// TestRSRoundTripAndVerify: the model check for RS(4, 2) — a mix of
// aligned, unaligned, overlapping and sparse writes must read back exactly,
// and both parity units of every stripe must verify byte-correct.
func TestRSRoundTripAndVerify(t *testing.T) {
	cl := newCluster(t, 6).NewClient()
	f, err := cl.Create("rs", 6, 64, wire.ReedSolomon)
	if err != nil {
		t.Fatal(err)
	}
	if g := f.Geometry(); g.DataWidth() != 4 || g.PU() != 2 {
		t.Fatalf("geometry = RS(%d, %d), want RS(4, 2)", g.DataWidth(), g.PU())
	}
	writes := []struct {
		off int64
		n   int
	}{
		{0, 256},    // exactly one stripe (4 data units * 64)
		{256, 100},  // partial
		{300, 600},  // overlaps previous, spans stripes
		{2000, 50},  // sparse hole before it
		{0, 1},      // tiny overwrite at start
		{255, 2},    // straddles unit boundary
		{1024, 512}, // two aligned stripes
	}
	ref := make([]byte, 4096)
	var maxEnd int64
	for wi, w := range writes {
		data := pattern(w.n, byte(wi+1))
		mustWrite(t, f, data, w.off)
		copy(ref[w.off:], data)
		if e := w.off + int64(w.n); e > maxEnd {
			maxEnd = e
		}
	}
	checkRead(t, f, ref[:maxEnd], 0)
	rsVerifyClean(t, cl, f)
}

// TestRSDoubleFaultDegradedReads: with RS(4, 2), any two servers may fail
// simultaneously and reads must still reconstruct the exact bytes; a third
// failure exceeds the code's distance and must error rather than return
// wrong data. New writes during a double fault are refused (the dirty log
// tracks one outage).
func TestRSDoubleFaultDegradedReads(t *testing.T) {
	for _, dead := range [][2]int{{0, 1}, {1, 4}, {4, 5}} {
		c := newCluster(t, 6)
		cl := c.NewClient()
		f, err := cl.Create("rs", 6, 64, wire.ReedSolomon)
		if err != nil {
			t.Fatal(err)
		}
		const size = 8 << 10 // 32 stripes: parity placement rotates fully
		ref := pattern(size, 1)
		mustWrite(t, f, ref, 0)

		for _, d := range dead {
			c.StopServer(d)
			cl.MarkDown(d)
		}
		checkRead(t, f, ref, 0)
		// Unaligned sub-span: reconstruction must slice units correctly.
		checkRead(t, f, ref[777:2222], 777)

		if _, err := f.WriteAt(pattern(10, 9), 0); !errors.Is(err, client.ErrDegradedWrite) {
			t.Fatalf("dead=%v: double-degraded write: %v, want ErrDegradedWrite", dead, err)
		}

		third := 2
		if dead == [2]int{1, 4} {
			third = 0
		}
		c.StopServer(third)
		cl.MarkDown(third)
		got := make([]byte, 100)
		if _, err := f.ReadAt(got, 0); err == nil {
			t.Fatalf("dead=%v+%d: read with 3 dead servers succeeded", dead, third)
		}
		c.Close()
	}
}

// TestRSDoubleFaultRebuild: both failed servers are replaced with blanks and
// rebuilt — the first while the second is still down (a 4-survivor decode),
// the second from the fully restored set. The file must then read exactly
// and verify clean, including the rebuilt parity units.
func TestRSDoubleFaultRebuild(t *testing.T) {
	c := newCluster(t, 6)
	cl := c.NewClient()
	f, err := cl.Create("rs", 6, 64, wire.ReedSolomon)
	if err != nil {
		t.Fatal(err)
	}
	const size = 8 << 10
	ref := pattern(size, 2)
	mustWrite(t, f, ref, 0)

	const d1, d2 = 2, 5
	c.StopServer(d1)
	c.StopServer(d2)
	cl.MarkDown(d1)
	cl.MarkDown(d2)
	checkRead(t, f, ref, 0)

	c.ReplaceServer(d1)
	if err := recovery.Rebuild(cl, f, d1); err != nil {
		t.Fatalf("rebuild %d with %d still down: %v", d1, d2, err)
	}
	cl.MarkUp(d1)
	checkRead(t, f, ref, 0)

	c.ReplaceServer(d2)
	if err := recovery.Rebuild(cl, f, d2); err != nil {
		t.Fatalf("rebuild %d: %v", d2, err)
	}
	cl.MarkUp(d2)

	checkRead(t, f, ref, 0)
	rsVerifyClean(t, cl, f)

	// The rebuilt servers must carry real redundancy: writes and another
	// double fault on a different pair still work.
	upd := pattern(300, 3)
	mustWrite(t, f, upd, 500)
	copy(ref[500:], upd)
	for _, d := range []int{0, 3} {
		c.StopServer(d)
		cl.MarkDown(d)
	}
	checkRead(t, f, ref, 0)
}

// TestRSDegradedWriteAndResync: with one server out, writes proceed degraded
// (all reachable parity units updated, damage logged), and the returning
// server is brought back by replaying only the dirty delta — including its
// GF-scaled parity units, not just XOR rows.
func TestRSDegradedWriteAndResync(t *testing.T) {
	c := newCluster(t, 6)
	cl := c.NewClient()
	f, err := cl.Create("rs", 6, 64, wire.ReedSolomon)
	if err != nil {
		t.Fatal(err)
	}
	const size = 16 << 10
	ref := make([]byte, size)
	copy(ref, pattern(size, 1))
	mustWrite(t, f, ref, 0)

	const dead = 4
	c.StopServer(dead)
	cl.MarkDown(dead)

	// Degraded writes: an unaligned RMW, a full stripe, a multi-stripe
	// span. Each damages data units and parity units the dead server owns.
	for _, w := range []struct {
		off int64
		n   int
	}{{1000, 100}, {2048, 256}, {3000, 900}} {
		data := pattern(w.n, byte(w.off))
		mustWrite(t, f, data, w.off)
		copy(ref[w.off:], data)
	}
	if m := cl.Metrics(); m.DirtyUnits == 0 {
		t.Fatal("degraded RS writes logged no dirty items")
	}
	checkRead(t, f, ref, 0)

	c.RestartServer(dead)
	rep, err := recovery.Resync(cl, f, dead, recovery.ResyncOptions{})
	if err != nil {
		t.Fatalf("resync: %v", err)
	}
	if rep.FullRebuild {
		t.Fatalf("resync fell back to full rebuild: %+v", rep)
	}
	if rep.Items() == 0 {
		t.Fatalf("resync replayed nothing: %+v", rep)
	}
	cl.MarkUp(dead)

	checkRead(t, f, ref, 0)
	rsVerifyClean(t, cl, f)
}

// TestRSCrashRestartIntentReplay: a multi-parity RMW lands its data and its
// unit-0 parity write, but the second parity server dies before its
// unlocking write (and the client's dirty compensation) arrive. After
// crash-restart the journal resurrects that server's intent as abandoned,
// and replay must recompute its GF-scaled parity unit — not the XOR — from
// the stripe's data units.
func TestRSCrashRestartIntentReplay(t *testing.T) {
	c := newCluster(t, 6)
	cl := c.NewClient()
	f, err := cl.Create("rs", 6, 64, wire.ReedSolomon)
	if err != nil {
		t.Fatal(err)
	}
	g := f.Geometry()
	ref := pattern(int(2*g.StripeSize()), 2)
	mustWrite(t, f, ref, 0)

	p := testPolicy()
	p.LockLease = 10 * time.Second
	p.LeaseRenewEvery = -1
	p.CrashSafeRMW = true
	cl.SetPolicy(p)

	// Parity unit 1's server for stripe 0 stops acknowledging parity
	// writes, as if it died mid-request; unit 0's server stays healthy.
	ps1 := g.ParityServerOfUnit(0, 1)
	fwp := c.Inject(FaultPoint{Server: ps1, Kind: wire.KWriteParity, Action: FaultDrop})
	ful := c.Inject(FaultPoint{Server: ps1, Kind: wire.KUnlockParity, Action: FaultDrop})

	upd := pattern(10, 7)
	if _, err := f.WriteAt(upd, 0); err == nil {
		t.Fatal("RMW succeeded despite dropped parity write")
	}

	c.CrashServer(ps1)
	fwp.Release()
	ful.Release()
	c.RestartServer(ps1)
	in := waitIntent(t, cl, ps1, f.Ref(), true)
	if in.Stripe != 0 {
		t.Fatalf("journal-loaded intent = %+v, want stripe 0", in)
	}

	// Fail-stopped until replay reconciles the stripe.
	if _, err := f.WriteAt(pattern(10, 5), 0); !errors.Is(err, wire.ErrStripeTorn) {
		t.Fatalf("RMW on torn stripe: %v, want ErrStripeTorn", err)
	}
	rep, err := recovery.ReplayIntents(cl, f)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replayed != 1 || rep.Abandoned != 1 {
		t.Fatalf("replay report: %+v", rep)
	}

	// Crash-safe ordering: the failed RMW's data landed. Reads see it, the
	// stripe accepts writes again, and both parity units verify.
	want := append([]byte(nil), ref...)
	copy(want, upd)
	checkRead(t, f, want, 0)
	upd2 := pattern(10, 8)
	mustWrite(t, f, upd2, 64)
	copy(want[64:], upd2)
	checkRead(t, f, want, 0)
	rsVerifyClean(t, cl, f)

	// The replayed parity really is the GF row: kill two other servers and
	// reconstruct through it.
	for _, d := range []int{0, 1} {
		c.StopServer(d)
		cl.MarkDown(d)
	}
	checkRead(t, f, want, 0)
}
