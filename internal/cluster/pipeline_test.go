package cluster

import (
	"bytes"
	"testing"
	"time"

	"csar/internal/client"
	"csar/internal/recovery"
	"csar/internal/simnet"
	"csar/internal/simtime"
	"csar/internal/wire"
)

// newTimedPipeCluster builds a Pipe-transport cluster on a modeled network
// dominated by per-message latency, so round-trip overlap (or its absence)
// is directly visible in elapsed time.
func newTimedPipeCluster(t *testing.T, n int) *Cluster {
	t.Helper()
	cfg := DefaultConfig(n)
	cfg.Transport = Pipe
	cfg.Clock = &simtime.Clock{Scale: 100 * time.Millisecond} // 1 sim-s = 100ms wall
	// 80 sim-ms per hop (8ms wall) keeps the latency term far above host
	// scheduling noise even under the race detector on one core.
	cfg.Net = simnet.Params{Latency: 80 * time.Millisecond, BandwidthBPS: 1e9}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// TestPipelinedStripeWritesOverlap proves the pipelining win the write
// overhaul claims: N writes to independent stripes issued through a bounded
// window must overlap their round trips, finishing in well under the serial
// sum of the same N writes. The network model is latency-dominated (20 sim-ms
// per hop, negligible transfer time), so overlap — not bandwidth — is the
// only way to go faster.
func TestPipelinedStripeWritesOverlap(t *testing.T) {
	c := newTimedPipeCluster(t, 4)
	cl := c.NewClient()
	const su = 64 << 10
	const stripes = 8
	stripe := pattern(4*su, 3)

	fSerial, err := cl.Create("serial", 4, su, wire.Raid0)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	for i := 0; i < stripes; i++ {
		if _, err := fSerial.WriteAt(stripe, int64(i)*int64(len(stripe))); err != nil {
			t.Fatal(err)
		}
	}
	serial := time.Since(start)

	fPipe, err := cl.Create("pipelined", 4, su, wire.Raid0)
	if err != nil {
		t.Fatal(err)
	}
	win := client.NewWindow(stripes)
	start = time.Now()
	for i := 0; i < stripes; i++ {
		off := int64(i) * int64(len(stripe))
		win.Go(func() error {
			_, err := fPipe.WriteAt(stripe, off)
			return err
		})
	}
	if err := win.Wait(); err != nil {
		t.Fatal(err)
	}
	pipelined := time.Since(start)

	t.Logf("serial %v, pipelined %v", serial, pipelined)
	if pipelined >= serial*2/3 {
		t.Fatalf("pipelined writes did not overlap: %v vs serial %v", pipelined, serial)
	}

	// Overlap must not have corrupted anything: both files read back intact.
	got := make([]byte, stripes*len(stripe))
	if _, err := fPipe.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < stripes; i++ {
		if !bytes.Equal(got[i*len(stripe):(i+1)*len(stripe)], stripe) {
			t.Fatalf("stripe %d corrupted by pipelined write", i)
		}
	}
}

// TestSameStripeWritesSerializeThroughParityLock drives the other half of
// the pipelining contract: writes to the SAME stripe must not overlap their
// read-modify-write windows. Sixteen disjoint partial writes to one RAID5
// stripe race through a deep window; the parity lock forces each RMW's
// read-old/write-new/update-parity sequence to complete before the next
// begins, so the final parity must be consistent and every patch intact.
func TestSameStripeWritesSerializeThroughParityLock(t *testing.T) {
	c := newPipeCluster(t, 4)
	cl := c.NewClient()
	const su = 4096
	f, err := cl.Create("contended", 4, su, wire.Raid5)
	if err != nil {
		t.Fatal(err)
	}
	// Lay down a base stripe so every racing write is a partial RMW.
	base := pattern(3*su, 1)
	if _, err := f.WriteAt(base, 0); err != nil {
		t.Fatal(err)
	}

	const patches = 16
	const psize = (3 * su) / patches // disjoint, sub-unit patches
	win := client.NewWindow(patches)
	want := append([]byte{}, base...)
	for i := 0; i < patches; i++ {
		p := pattern(psize, byte(10+i))
		copy(want[i*psize:], p)
		off := int64(i * psize)
		win.Go(func() error {
			_, err := f.WriteAt(p, off)
			return err
		})
	}
	if err := win.Wait(); err != nil {
		t.Fatal(err)
	}

	got := make([]byte, len(want))
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("racing same-stripe writes lost a patch")
	}
	problems, err := recovery.Verify(cl, f)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) > 0 {
		t.Fatalf("parity inconsistent after racing same-stripe writes: %v", problems)
	}
}
