package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"csar/internal/client"
	"csar/internal/recovery"
	"csar/internal/wire"
)

var allSchemes = []wire.Scheme{
	wire.Raid0, wire.Raid1, wire.Raid5, wire.Hybrid, wire.Raid5NoLock, wire.Raid5NPC,
}

var redundantSchemes = []wire.Scheme{wire.Raid1, wire.Raid5, wire.Hybrid}

func newCluster(t *testing.T, n int) *Cluster {
	t.Helper()
	c, err := New(DefaultConfig(n))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func pattern(n int, seed byte) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(i)*7 + seed
	}
	return p
}

func TestWriteReadRoundTripAllSchemes(t *testing.T) {
	for _, scheme := range allSchemes {
		t.Run(scheme.String(), func(t *testing.T) {
			cl := newCluster(t, 5).NewClient()
			f, err := cl.Create("f", 5, 64, scheme)
			if err != nil {
				t.Fatal(err)
			}
			// A mix of aligned, unaligned, overlapping and sparse writes.
			writes := []struct {
				off int64
				n   int
			}{
				{0, 256},    // exactly one stripe (4 data units * 64)
				{256, 100},  // partial
				{300, 600},  // overlaps previous, spans stripes
				{2000, 50},  // sparse hole before it
				{0, 1},      // tiny overwrite at start
				{255, 2},    // straddles unit boundary
				{1024, 512}, // two aligned stripes
			}
			ref := make([]byte, 4096)
			var maxEnd int64
			for wi, w := range writes {
				data := pattern(w.n, byte(wi+1))
				if _, err := f.WriteAt(data, w.off); err != nil {
					t.Fatalf("write %d: %v", wi, err)
				}
				copy(ref[w.off:], data)
				if e := w.off + int64(w.n); e > maxEnd {
					maxEnd = e
				}
			}
			got := make([]byte, maxEnd)
			if _, err := f.ReadAt(got, 0); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, ref[:maxEnd]) {
				for i := range got {
					if got[i] != ref[i] {
						t.Fatalf("first mismatch at byte %d: got %d want %d", i, got[i], ref[i])
					}
				}
			}
			if f.Size() != maxEnd {
				t.Fatalf("size=%d want %d", f.Size(), maxEnd)
			}
		})
	}
}

func TestRandomOpsAgainstReferenceModel(t *testing.T) {
	// The model checker: every scheme must behave exactly like a flat byte
	// array under random writes and reads, and the redundancy invariants
	// must hold after every quiescent point.
	for _, scheme := range allSchemes {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < 6; seed++ {
				r := rand.New(rand.NewSource(seed))
				servers := 3 + r.Intn(5)
				su := int64(16 + r.Intn(100))
				cl := newCluster(t, servers).NewClient()
				f, err := cl.Create(fmt.Sprintf("f%d", seed), servers, su, scheme)
				if err != nil {
					t.Fatal(err)
				}
				const space = 1 << 14
				ref := make([]byte, space)
				var size int64
				for op := 0; op < 60; op++ {
					off := int64(r.Intn(space / 2))
					n := r.Intn(space/4) + 1
					if r.Intn(4) == 0 {
						got := make([]byte, n)
						if _, err := f.ReadAt(got, off); err != nil {
							t.Fatalf("seed %d op %d read: %v", seed, op, err)
						}
						want := make([]byte, n)
						copy(want, ref[off:])
						if !bytes.Equal(got, want) {
							t.Fatalf("seed %d op %d: read mismatch at off=%d n=%d", seed, op, off, n)
						}
					} else {
						data := make([]byte, n)
						r.Read(data)
						if _, err := f.WriteAt(data, off); err != nil {
							t.Fatalf("seed %d op %d write: %v", seed, op, err)
						}
						copy(ref[off:], data)
						if off+int64(n) > size {
							size = off + int64(n)
						}
					}
				}
				if scheme != wire.Raid5NoLock { // nolock makes no parity promise
					problems, err := recovery.Verify(cl, f)
					if err != nil {
						t.Fatalf("seed %d verify: %v", seed, err)
					}
					// Raid5NPC intentionally writes wrong parity; everything
					// else must verify clean.
					if scheme != wire.Raid5NPC && len(problems) > 0 {
						t.Fatalf("seed %d: invariants violated: %v", seed, problems[:min(3, len(problems))])
					}
				}
			}
		})
	}
}

func TestConcurrentDisjointWritersSameStripe(t *testing.T) {
	// Section 5.1's scenario: clients write different blocks of the same
	// stripe. With locking, parity must be consistent afterwards.
	c := newCluster(t, 6) // stripe = 5 data units
	const su = 128
	setup := c.NewClient()
	f, err := setup.Create("shared", 6, su, wire.Raid5)
	if err != nil {
		t.Fatal(err)
	}
	// Materialize the first stripe so all writers do RMW updates.
	if _, err := f.WriteAt(make([]byte, 5*su), 0); err != nil {
		t.Fatal(err)
	}

	const rounds = 10
	var wg sync.WaitGroup
	errs := make([]error, 5)
	for w := 0; w < 5; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := c.NewClient()
			fw, err := cl.Open("shared")
			if err != nil {
				errs[w] = err
				return
			}
			for round := 0; round < rounds; round++ {
				data := pattern(su, byte(w*16+round))
				if _, err := fw.WriteAt(data, int64(w)*su); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", w, err)
		}
	}
	problems, err := recovery.Verify(setup, f)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) > 0 {
		t.Fatalf("parity inconsistent after concurrent disjoint writes: %v", problems)
	}
	// Contents: each block holds its writer's final round.
	got := make([]byte, 5*su)
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 5; w++ {
		want := pattern(su, byte(w*16+rounds-1))
		if !bytes.Equal(got[w*su:(w+1)*su], want) {
			t.Fatalf("block %d corrupted", w)
		}
	}
}

func TestConcurrentWritersHybridOverflow(t *testing.T) {
	// Hybrid writers of disjoint sub-block ranges land in overflow without
	// locks; data must still be correct.
	c := newCluster(t, 4)
	setup := c.NewClient()
	f, err := setup.Create("h", 4, 256, wire.Hybrid)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := c.NewClient()
			fw, err := cl.Open("h")
			if err != nil {
				errs[w] = err
				return
			}
			data := pattern(100, byte(w+1))
			_, errs[w] = fw.WriteAt(data, int64(w)*100)
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", w, err)
		}
	}
	got := make([]byte, 800)
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 8; w++ {
		if !bytes.Equal(got[w*100:(w+1)*100], pattern(100, byte(w+1))) {
			t.Fatalf("range of writer %d corrupted", w)
		}
	}
}

func TestHybridOverflowMigration(t *testing.T) {
	// A partial write creates overflow extents; a full-stripe write over
	// the same range invalidates them (migration back to RAID5).
	c := newCluster(t, 4) // stripe size = 3*64 = 192
	cl := c.NewClient()
	f, err := cl.Create("m", 4, 64, wire.Hybrid)
	if err != nil {
		t.Fatal(err)
	}
	// Partial write -> overflow.
	if _, err := f.WriteAt(pattern(100, 1), 10); err != nil {
		t.Fatal(err)
	}
	_, byStore, err := f.StorageBytes()
	if err != nil {
		t.Fatal(err)
	}
	if byStore[3] == 0 || byStore[4] == 0 {
		t.Fatalf("partial write produced no overflow: %v", byStore)
	}
	ovBefore := overflowExtentCount(t, cl, f)
	if ovBefore == 0 {
		t.Fatal("no overflow extents after partial write")
	}
	// Full-stripe write covering the same range -> extents invalidated.
	if _, err := f.WriteAt(pattern(192, 2), 0); err != nil {
		t.Fatal(err)
	}
	if got := overflowExtentCount(t, cl, f); got != 0 {
		t.Fatalf("overflow extents not invalidated by full-stripe write: %d", got)
	}
	// And the read sees the new data.
	got := make([]byte, 192)
	f.ReadAt(got, 0)
	if !bytes.Equal(got, pattern(192, 2)) {
		t.Fatal("full-stripe write did not supersede overflow data")
	}
}

func TestHybridSingleStripeInvalidatesParityServerMirror(t *testing.T) {
	// Regression: a single-stripe body write sends the stripe's parity
	// server only a WriteParity (it holds no data of that stripe), yet its
	// overflow-mirror table may cover the previous server's units in the
	// stripe. The parity write must invalidate them, or a degraded read
	// after the overwrite resurrects stale overflow data.
	c := newCluster(t, 4) // stripe 0: units on 0,1,2; parity on 3
	cl := c.NewClient()
	f, err := cl.Create("ss", 4, 64, wire.Hybrid)
	if err != nil {
		t.Fatal(err)
	}
	// Partial write inside unit 2 (owned by server 2, mirrored on 3).
	if _, err := f.WriteAt(pattern(30, 1), 130); err != nil {
		t.Fatal(err)
	}
	// Full single-stripe write superseding it.
	fresh := pattern(192, 2)
	if _, err := f.WriteAt(fresh, 0); err != nil {
		t.Fatal(err)
	}
	resp, err := cl.ServerCaller(3).Call(&wire.OverflowDump{File: f.Ref(), Mirror: true})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(resp.(*wire.OverflowDumpResp).Extents); n != 0 {
		t.Fatalf("parity server keeps %d stale overflow-mirror extents", n)
	}
	// The acid test: degraded read with server 2 down.
	c.StopServer(2)
	cl.MarkDown(2)
	got := make([]byte, 192)
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, fresh) {
		t.Fatal("degraded read resurrected stale overflow data")
	}
}

func overflowExtentCount(t *testing.T, cl *client.Client, f *client.File) int {
	t.Helper()
	total := 0
	for i := 0; i < f.Geometry().Servers; i++ {
		resp, err := cl.ServerCaller(i).Call(&wire.OverflowDump{File: f.Ref()})
		if err != nil {
			t.Fatal(err)
		}
		total += len(resp.(*wire.OverflowDumpResp).Extents)
	}
	return total
}

func TestStorageOverheads(t *testing.T) {
	// For purely full-stripe workloads: RAID1 stores 2x, RAID5 and Hybrid
	// store n/(n-1)x of the RAID0 bytes (Table 2's "best case" rows).
	// The stripe unit equals the disk page size so du-granular accounting
	// is exact.
	const n = 5
	const su = 4096
	const stripes = 20
	payload := int64(stripes * (n - 1) * su)

	totals := map[wire.Scheme]int64{}
	for _, scheme := range []wire.Scheme{wire.Raid0, wire.Raid1, wire.Raid5, wire.Hybrid} {
		c := newCluster(t, n)
		cl := c.NewClient()
		f, err := cl.Create("s", n, su, scheme)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt(make([]byte, payload), 0); err != nil {
			t.Fatal(err)
		}
		tot, _, err := f.StorageBytes()
		if err != nil {
			t.Fatal(err)
		}
		totals[scheme] = tot
	}
	if totals[wire.Raid0] != payload {
		t.Fatalf("raid0 stores %d, want %d", totals[wire.Raid0], payload)
	}
	if totals[wire.Raid1] != 2*payload {
		t.Fatalf("raid1 stores %d, want %d", totals[wire.Raid1], 2*payload)
	}
	want5 := payload * n / (n - 1)
	if totals[wire.Raid5] != want5 {
		t.Fatalf("raid5 stores %d, want %d", totals[wire.Raid5], want5)
	}
	if totals[wire.Hybrid] != want5 {
		t.Fatalf("hybrid stores %d, want %d (full-stripe workload)", totals[wire.Hybrid], want5)
	}
}

func TestDegradedReadsAllRedundantSchemes(t *testing.T) {
	for _, scheme := range redundantSchemes {
		t.Run(scheme.String(), func(t *testing.T) {
			c := newCluster(t, 4)
			cl := c.NewClient()
			f, err := cl.Create("d", 4, 64, scheme)
			if err != nil {
				t.Fatal(err)
			}
			// Mixed content: full stripes plus a partial tail and an inner
			// partial overwrite (exercises overflow under Hybrid).
			ref := make([]byte, 1000)
			copy(ref, pattern(1000, 3))
			f.WriteAt(ref, 0)
			over := pattern(70, 9)
			f.WriteAt(over, 130)
			copy(ref[130:], over)

			for dead := 0; dead < 4; dead++ {
				c.StopServer(dead)
				cl.MarkDown(dead)
				got := make([]byte, 1000)
				if _, err := f.ReadAt(got, 0); err != nil {
					t.Fatalf("dead=%d: %v", dead, err)
				}
				if !bytes.Equal(got, ref) {
					for i := range got {
						if got[i] != ref[i] {
							t.Fatalf("dead=%d: first mismatch at byte %d (got %d want %d)",
								dead, i, got[i], ref[i])
						}
					}
				}
				// Unaligned sub-reads in degraded mode too.
				sub := make([]byte, 333)
				if _, err := f.ReadAt(sub, 111); err != nil {
					t.Fatalf("dead=%d sub-read: %v", dead, err)
				}
				if !bytes.Equal(sub, ref[111:444]) {
					t.Fatalf("dead=%d: sub-read mismatch", dead)
				}
				c.RestartServer(dead)
				cl.MarkUp(dead)
			}
		})
	}
}

func TestDegradedWriteRefusedForRaid0(t *testing.T) {
	c := newCluster(t, 4)
	cl := c.NewClient()
	for _, scheme := range []wire.Scheme{wire.Raid0, wire.Raid5NoLock, wire.Raid5NPC} {
		f, err := cl.Create("w-"+scheme.String(), 4, 64, scheme)
		if err != nil {
			t.Fatal(err)
		}
		c.StopServer(2)
		cl.MarkDown(2)
		if _, err := f.WriteAt([]byte{1}, 0); !errors.Is(err, client.ErrDegradedWrite) {
			t.Fatalf("%v: err=%v, want ErrDegradedWrite", scheme, err)
		}
		c.RestartServer(2)
		cl.MarkUp(2)
	}
}

func TestDegradedWrites(t *testing.T) {
	// The degraded-write extension: with one server down, writes under the
	// redundant schemes must land correctly (degraded reads see them) and
	// must leave enough redundancy for Rebuild to fully restore the dead
	// server, including its own pieces of the degraded writes.
	for _, scheme := range redundantSchemes {
		t.Run(scheme.String(), func(t *testing.T) {
			for dead := 0; dead < 4; dead++ {
				c := newCluster(t, 4) // stripe = 3*64 = 192
				cl := c.NewClient()
				f, err := cl.Create("dw", 4, 64, scheme)
				if err != nil {
					t.Fatal(err)
				}
				ref := make([]byte, 2000)
				copy(ref, pattern(2000, 1))
				f.WriteAt(ref, 0)

				c.StopServer(dead)
				cl.MarkDown(dead)

				// Degraded writes of every flavour: aligned full stripes,
				// an unaligned large write, and small partial writes that
				// target every server's units, including the dead one.
				writes := []struct {
					off int64
					n   int
				}{
					{0, 192},     // one aligned stripe
					{192, 400},   // stripes + tail
					{700, 50},    // partial inside a stripe
					{64 * 9, 64}, // exactly one unit (rotates across servers)
					{1990, 30},   // extends the file
					{5, 3},       // tiny head overwrite
				}
				for wi, w := range writes {
					data := pattern(w.n, byte(0x40+wi))
					if _, err := f.WriteAt(data, w.off); err != nil {
						t.Fatalf("dead=%d write %d: %v", dead, wi, err)
					}
					copy(ref[w.off:], data)
				}

				// Degraded read sees every degraded write.
				got := make([]byte, len(ref))
				if _, err := f.ReadAt(got, 0); err != nil {
					t.Fatalf("dead=%d degraded read: %v", dead, err)
				}
				if !bytes.Equal(got, ref) {
					for i := range got {
						if got[i] != ref[i] {
							t.Fatalf("dead=%d: degraded read mismatch at byte %d", dead, i)
						}
					}
				}

				// Rebuild restores the dead server, including its pieces of
				// the degraded writes.
				c.ReplaceServer(dead)
				if err := recovery.Rebuild(cl, f, dead); err != nil {
					t.Fatalf("dead=%d rebuild: %v", dead, err)
				}
				cl.MarkUp(dead)
				if _, err := f.ReadAt(got, 0); err != nil {
					t.Fatalf("dead=%d read after rebuild: %v", dead, err)
				}
				if !bytes.Equal(got, ref) {
					t.Fatalf("dead=%d: contents wrong after rebuild", dead)
				}
				problems, err := recovery.Verify(cl, f)
				if err != nil {
					t.Fatal(err)
				}
				if len(problems) > 0 {
					t.Fatalf("dead=%d: inconsistent after rebuild: %v", dead, problems)
				}
			}
		})
	}
}

func TestRaid0DegradedReadFails(t *testing.T) {
	c := newCluster(t, 4)
	cl := c.NewClient()
	f, err := cl.Create("r0", 4, 64, wire.Raid0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteAt(pattern(500, 1), 0)
	c.StopServer(1)
	cl.MarkDown(1)
	if _, err := f.ReadAt(make([]byte, 500), 0); !errors.Is(err, client.ErrNoRedundancy) {
		t.Fatalf("err=%v, want ErrNoRedundancy", err)
	}
}

func TestStoppedServerErrors(t *testing.T) {
	c := newCluster(t, 3)
	cl := c.NewClient()
	f, err := cl.Create("x", 3, 64, wire.Raid0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteAt(pattern(400, 1), 0)
	c.StopServer(0)
	// Without MarkDown the client still contacts the dead server and must
	// surface an error rather than wrong data.
	if _, err := f.ReadAt(make([]byte, 400), 0); err == nil {
		t.Fatal("read from stopped server succeeded")
	}
	c.RestartServer(0)
	if _, err := f.ReadAt(make([]byte, 400), 0); err != nil {
		t.Fatalf("after restart: %v", err)
	}
}

func TestRebuildAfterReplace(t *testing.T) {
	for _, scheme := range redundantSchemes {
		t.Run(scheme.String(), func(t *testing.T) {
			c := newCluster(t, 5)
			cl := c.NewClient()
			f, err := cl.Create("reb", 5, 64, scheme)
			if err != nil {
				t.Fatal(err)
			}
			ref := make([]byte, 3000)
			copy(ref, pattern(3000, 5))
			f.WriteAt(ref, 0)
			patch := pattern(90, 7) // partial write -> overflow under Hybrid
			f.WriteAt(patch, 500)
			copy(ref[500:], patch)

			for dead := 0; dead < 5; dead++ {
				c.StopServer(dead)
				c.ReplaceServer(dead) // blank disk
				if err := recovery.Rebuild(cl, f, dead); err != nil {
					t.Fatalf("rebuild %d: %v", dead, err)
				}
				got := make([]byte, 3000)
				if _, err := f.ReadAt(got, 0); err != nil {
					t.Fatalf("read after rebuild %d: %v", dead, err)
				}
				if !bytes.Equal(got, ref) {
					t.Fatalf("data corrupted after rebuilding server %d", dead)
				}
				problems, err := recovery.Verify(cl, f)
				if err != nil {
					t.Fatal(err)
				}
				if len(problems) > 0 {
					t.Fatalf("inconsistent after rebuilding server %d: %v", dead, problems)
				}
			}
		})
	}
}

func TestPipeTransportRoundTrip(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Transport = Pipe
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cl := c.NewClient()
	for _, scheme := range allSchemes {
		f, err := cl.Create("p-"+scheme.String(), 4, 64, scheme)
		if err != nil {
			t.Fatal(err)
		}
		data := pattern(1000, 4)
		if _, err := f.WriteAt(data, 37); err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		got := make([]byte, 1000)
		if _, err := f.ReadAt(got, 37); err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("%v: data mismatch over pipe transport", scheme)
		}
		if err := f.Sync(); err != nil {
			t.Fatalf("%v sync: %v", scheme, err)
		}
	}
}

func TestManagerSemantics(t *testing.T) {
	c := newCluster(t, 4)
	cl := c.NewClient()
	if _, err := cl.Create("a", 4, 64, wire.Raid5); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Create("a", 4, 64, wire.Raid5); err == nil {
		t.Fatal("duplicate create succeeded")
	}
	if _, err := cl.Open("missing"); err == nil {
		t.Fatal("open of missing file succeeded")
	}
	if _, err := cl.Create("b", 2, 64, wire.Raid5); err == nil {
		t.Fatal("raid5 with 2 servers accepted")
	}
	if _, err := cl.Create("c", 9, 64, wire.Raid0); err == nil {
		t.Fatal("layout larger than cluster accepted")
	}
	names, err := cl.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "a" {
		t.Fatalf("List=%v", names)
	}
	// Size is published on Sync and visible to a fresh open.
	f, _ := cl.Open("a")
	f.WriteAt(pattern(500, 1), 0)
	f.Sync()
	f2, err := cl.Open("a")
	if err != nil {
		t.Fatal(err)
	}
	if f2.Size() != 500 {
		t.Fatalf("reopened size=%d", f2.Size())
	}
	if err := cl.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Open("a"); err == nil {
		t.Fatal("open after remove succeeded")
	}
	if got := c.TotalStorage(); got != 0 {
		t.Fatalf("storage after remove: %d", got)
	}
}

func TestSchemesShareDataLayout(t *testing.T) {
	// The paper keeps the data layout identical to PVFS for every scheme; a
	// file written under one scheme must read identically through a ref
	// with the same geometry under RAID0 (ignoring redundancy stores).
	c := newCluster(t, 4)
	cl := c.NewClient()
	f, err := cl.Create("lay", 4, 64, wire.Raid5)
	if err != nil {
		t.Fatal(err)
	}
	data := pattern(1024, 6)
	f.WriteAt(data, 0) // aligned full stripes: all in place
	raw := make([]byte, 1024)
	if err := rawRead(cl, f, raw); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, data) {
		t.Fatal("raw data layout differs from logical contents")
	}
}

func rawRead(cl *client.Client, f *client.File, dst []byte) error {
	g := f.Geometry()
	cur := int64(0)
	for cur < int64(len(dst)) {
		b := g.UnitOf(cur)
		end := g.UnitStart(b + 1)
		if end > int64(len(dst)) {
			end = int64(len(dst))
		}
		resp, err := cl.ServerCaller(g.ServerOf(b)).Call(&wire.Read{
			File:  f.Ref(),
			Spans: []wire.Span{{Off: cur, Len: end - cur}},
			Raw:   true,
		})
		if err != nil {
			return err
		}
		copy(dst[cur:end], resp.(*wire.ReadResp).Data)
		cur = end
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
