package cluster

import (
	"errors"
	"fmt"
	"testing"

	"csar/internal/wire"
)

// TestManagerFailoverMidCreateStream is the metadata-HA acceptance test:
// a client creating a stream of files has the primary manager killed
// (kill -9: the instance is discarded, only snapshot + WAL survive) in the
// middle. A standby is promoted by the deterministic rule, the client's
// metadata failover converges on it, and afterwards:
//
//   - every acknowledged file is visible to a fresh client's List;
//   - no file ID was lost or issued twice across the failover;
//   - a straggling replication ship from the dead primary's epoch is
//     refused with the stale-epoch fencing error;
//   - the old primary restarts from its WAL, rejoins as a standby, and
//     catches up with the new primary's history.
func TestManagerFailoverMidCreateStream(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Managers = 3
	cfg.MetaDir = t.TempDir()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cl := c.NewClient()

	acked := make(map[string]bool)
	for i := 0; i < 10; i++ {
		name := fmt.Sprintf("f%02d", i)
		if _, err := cl.Create(name, 2, 64, wire.Raid0); err != nil {
			t.Fatalf("create %s: %v", name, err)
		}
		acked[name] = true
	}

	// The primary dies mid-stream. The next create must fail — no manager
	// may silently accept a mutation — and must NOT be acknowledged.
	c.KillManager(0)
	if _, err := cl.Create("lost", 2, 64, wire.Raid0); err == nil {
		t.Fatal("create succeeded with the primary dead and no standby promoted")
	}

	// Deterministic promotion: manager 2 defers to the live manager 1;
	// manager 1 finds no lower-index manager alive and takes the epoch.
	if won, err := c.TryPromoteManager(2); err != nil || won {
		t.Fatalf("manager 2 should defer to manager 1 (won=%v, err=%v)", won, err)
	}
	won, err := c.TryPromoteManager(1)
	if err != nil || !won {
		t.Fatalf("manager 1 should win promotion (won=%v, err=%v)", won, err)
	}

	// The same client converges on the new primary and the stream resumes.
	for i := 10; i < 20; i++ {
		name := fmt.Sprintf("f%02d", i)
		if _, err := cl.Create(name, 2, 64, wire.Raid0); err != nil {
			t.Fatalf("create %s after failover: %v", name, err)
		}
		acked[name] = true
	}
	if mf := cl.Metrics().MetaFailovers; mf == 0 {
		t.Fatal("client counted no metadata failovers across a primary death")
	}

	// A straggling ship from the deposed epoch is fenced, not applied.
	for _, i := range []int{1, 2} {
		_, err := c.ManagerAt(i).Handle(&wire.MetaReplicate{Epoch: 1, Seq: 999})
		if !errors.Is(err, wire.ErrStaleEpoch) {
			t.Fatalf("manager %d accepted an epoch-1 straggler: %v", i, err)
		}
	}

	// A freshly attached client (the `csar ls` path) sees every
	// acknowledged file, the unacknowledged one is absent, and no ID was
	// issued twice.
	fresh := c.NewClient()
	names, err := fresh.List()
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]bool, len(names))
	for _, n := range names {
		got[n] = true
	}
	for n := range acked {
		if !got[n] {
			t.Fatalf("acknowledged file %s missing after failover", n)
		}
	}
	if got["lost"] {
		t.Fatal("unacknowledged create surfaced after failover")
	}
	if len(names) != len(acked) {
		t.Fatalf("list holds %d files, want %d", len(names), len(acked))
	}
	ids := make(map[uint64]string, len(names))
	for _, n := range names {
		f, err := fresh.Open(n)
		if err != nil {
			t.Fatalf("open %s: %v", n, err)
		}
		id := f.Ref().ID
		if prev, dup := ids[id]; dup {
			t.Fatalf("file ID %d issued twice: %s and %s", id, prev, n)
		}
		ids[id] = n
	}

	// The dead primary restarts from snapshot + WAL and rejoins as a
	// standby: it must refuse mutations and catch up with the history it
	// missed after the next committed op reaches it.
	if err := c.RestartManager(0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ManagerAt(0).Handle(&wire.Create{Name: "x", Servers: 2, StripeUnit: 64, Scheme: wire.Raid0}); !errors.Is(err, wire.ErrNotPrimary) {
		t.Fatalf("restarted ex-primary accepted a mutation: %v", err)
	}
	if _, err := cl.Create("f20", 2, 64, wire.Raid0); err != nil {
		t.Fatalf("create after ex-primary rejoin: %v", err)
	}
	st0, err := c.ManagerAt(0).Handle(&wire.MetaStatus{})
	if err != nil {
		t.Fatal(err)
	}
	st1, err := c.ManagerAt(1).Handle(&wire.MetaStatus{})
	if err != nil {
		t.Fatal(err)
	}
	s0, s1 := st0.(*wire.MetaStatusResp), st1.(*wire.MetaStatusResp)
	if s0.Epoch != s1.Epoch || s0.Seq != s1.Seq || s0.Files != s1.Files {
		t.Fatalf("rejoined standby at (epoch %d, seq %d, files %d); primary at (%d, %d, %d)",
			s0.Epoch, s0.Seq, s0.Files, s1.Epoch, s1.Seq, s1.Files)
	}
	if s0.Primary {
		t.Fatal("restarted ex-primary still claims the primary role")
	}
}

// TestManagerGroupInMemory checks the harness's in-memory group wiring:
// replication and promotion work without MetaDir, and a "restart" there is
// a partition heal (state intact, role preserved until fenced).
func TestManagerGroupInMemory(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Managers = 2
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cl := c.NewClient()
	if _, err := cl.Create("a", 2, 64, wire.Raid0); err != nil {
		t.Fatal(err)
	}
	st, err := c.ManagerAt(1).Handle(&wire.MetaStatus{})
	if err != nil {
		t.Fatal(err)
	}
	if sr := st.(*wire.MetaStatusResp); sr.Files != 1 || sr.Primary {
		t.Fatalf("standby status = %+v", sr)
	}

	c.KillManager(0)
	if won, err := c.TryPromoteManager(1); err != nil || !won {
		t.Fatalf("promotion: won=%v err=%v", won, err)
	}
	if _, err := cl.Create("b", 2, 64, wire.Raid0); err != nil {
		t.Fatal(err)
	}

	// The healed ex-primary is fenced on its next commit attempt and
	// steps down rather than forking the namespace.
	if err := c.RestartManager(0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ManagerAt(0).Handle(&wire.Create{Name: "split", Servers: 2, StripeUnit: 64, Scheme: wire.Raid0}); !errors.Is(err, wire.ErrStaleEpoch) {
		t.Fatalf("healed ex-primary was not fenced: %v", err)
	}
	names, err := cl.List()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if n == "split" {
			t.Fatal("fenced create leaked into the namespace")
		}
	}
}
