package cluster

import (
	"testing"

	"csar/internal/wire"
)

// fullStripeWriteAllocBudget bounds the allocations of one full-stripe
// RAID5 WriteAt through the complete stack — portion planning, batched
// multi-span marshaling, pooled RPC framing on both ends of every pipe,
// server handling, and response decode. It is a whole-path regression
// budget measured on the untimed Pipe transport: the count includes the
// per-request server goroutines and both directions of framing, so it is
// deliberately far above zero, but a data-path change that starts copying
// or re-allocating per unit blows well past it and fails CI.
const fullStripeWriteAllocBudget = 300

func TestFullStripeWriteAllocs(t *testing.T) {
	c := newPipeCluster(t, 6)
	cl := c.NewClient()
	const su = 4096
	f, err := cl.Create("alloc", 6, su, wire.Raid5)
	if err != nil {
		t.Fatal(err)
	}
	stripe := make([]byte, 5*su)
	for i := range stripe {
		stripe[i] = byte(i * 7)
	}
	// Warm the path (file metadata, pools, server-side state) first.
	for i := 0; i < 8; i++ {
		if _, err := f.WriteAt(stripe, 0); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(50, func() {
		if _, err := f.WriteAt(stripe, 0); err != nil {
			panic(err)
		}
	})
	t.Logf("full-stripe WriteAt: %.1f allocs/op", avg)
	if avg > fullStripeWriteAllocBudget {
		t.Fatalf("full-stripe WriteAt allocates %.1f/op, budget %d", avg, fullStripeWriteAllocBudget)
	}
}
