// Package cluster assembles an in-process CSAR deployment: one manager, N
// I/O servers each with its own simulated disk, and any number of clients,
// connected either by direct function calls (fast, untimed — for
// correctness tests) or by the real RPC stack over in-memory pipes with
// simulated NICs (for the performance experiments). It also provides the
// failure controls the recovery experiments need: stopping a server,
// restarting it, and replacing it with a blank one.
package cluster

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"csar/internal/client"
	"csar/internal/meta"
	"csar/internal/rpc"
	"csar/internal/server"
	"csar/internal/simdisk"
	"csar/internal/simnet"
	"csar/internal/simtime"
	"csar/internal/wire"
)

// Transport selects how clients reach the servers.
type Transport int

const (
	// Direct calls server handlers in-process with no marshaling and no
	// modeled network. Use for correctness tests.
	Direct Transport = iota
	// Pipe runs the full RPC stack over in-memory connections, charging
	// the simulated NICs of client and server nodes. Use for experiments.
	Pipe
)

// ErrServerDown is returned by calls to a stopped server. It wraps
// wire.ErrUnavailable so the client's resilience layer classifies it (and
// its stringified form on the Pipe transport, via wire.Error.Code) as
// server unavailability rather than an application error.
var ErrServerDown = fmt.Errorf("cluster: server down (%w)", wire.ErrUnavailable)

// Config describes a cluster.
type Config struct {
	// Servers is the number of I/O servers.
	Servers int
	// Transport selects Direct or Pipe.
	Transport Transport
	// Clock is the shared time base; nil runs untimed.
	Clock *simtime.Clock
	// Net configures the modeled interconnect (Pipe transport only).
	Net simnet.Params
	// Disk configures each server's storage model.
	Disk simdisk.Params
	// ServerOpts tunes the I/O daemons.
	ServerOpts server.Options
	// XORBandwidth is the clients' modeled parity-XOR throughput in bytes
	// per simulated second; zero disables the charge.
	XORBandwidth float64
	// ClientRequestCPU is the modeled client-side cost of issuing one
	// I/O-server request (library + kernel + TCP path); zero disables it.
	ClientRequestCPU time.Duration
	// Managers is the number of metadata managers: manager 0 starts as the
	// primary, the rest as replicating standbys. 0 or 1 runs the classic
	// single-manager cluster.
	Managers int
	// MetaDir, when set, makes every manager persistent: manager i keeps
	// its snapshot and WAL under MetaDir/mgr<i>/, so KillManager +
	// RestartManager model a real process crash and recovery-from-log.
	MetaDir string
}

// DefaultConfig returns an untimed direct-transport cluster of n servers.
func DefaultConfig(n int) Config {
	return Config{
		Servers:    n,
		Transport:  Direct,
		Net:        simnet.DefaultParams(),
		Disk:       simdisk.Params{PageSize: 4096},
		ServerOpts: server.DefaultOptions(),
	}
}

// ioServer is one server slot: the current server instance (replaceable on
// rebuild), its down flag, and any injected request-level faults.
type ioServer struct {
	srv  atomic.Pointer[server.Server]
	disk atomic.Pointer[simdisk.Disk]
	down atomic.Bool
	node *simnet.Node

	fmu    sync.Mutex
	faults []*InjectedFault
}

// mgrSlot is one manager slot: the current manager instance (replaceable
// on a kill/restart cycle) and its reachability gate. The gate guards
// every path into the manager — clients and peer replication alike — so a
// killed manager is unreachable to the whole cluster, exactly like a dead
// process.
type mgrSlot struct {
	mgr  atomic.Pointer[meta.Manager]
	down atomic.Bool
}

// Cluster is a running deployment.
type Cluster struct {
	cfg     Config
	network *simnet.Network
	mgrs    []*mgrSlot
	servers []*ioServer

	mu      sync.Mutex
	clients []*rpc.Client
	nodes   int
}

// New builds and starts a cluster.
func New(cfg Config) (*Cluster, error) {
	if cfg.Servers < 1 {
		return nil, fmt.Errorf("cluster: need at least 1 server, got %d", cfg.Servers)
	}
	if cfg.Disk.PageSize == 0 {
		cfg.Disk.PageSize = 4096
	}
	cfg.ServerOpts.Clock = cfg.Clock
	c := &Cluster{
		cfg:     cfg,
		network: simnet.New(cfg.Clock, cfg.Net),
	}
	nMgr := cfg.Managers
	if nMgr < 1 {
		nMgr = 1
	}
	for i := 0; i < nMgr; i++ {
		c.mgrs = append(c.mgrs, &mgrSlot{})
	}
	for i := range c.mgrs {
		m, err := c.newManager(i)
		if err != nil {
			return nil, err
		}
		c.mgrs[i].mgr.Store(m)
	}
	if len(c.mgrs) > 1 {
		for i := range c.mgrs {
			c.wireManager(i, i != 0)
		}
	}
	cfg.ServerOpts.PageSize = cfg.Disk.PageSize
	for i := 0; i < cfg.Servers; i++ {
		slot := &ioServer{node: c.network.NewNode(fmt.Sprintf("iod%d", i))}
		disk := simdisk.New(cfg.Clock, cfg.Disk)
		slot.disk.Store(disk)
		slot.srv.Store(server.New(i, disk, cfg.ServerOpts))
		c.servers = append(c.servers, slot)
	}
	return c, nil
}

// Clock returns the cluster's time base (nil when untimed).
func (c *Cluster) Clock() *simtime.Clock { return c.cfg.Clock }

// Servers returns the number of I/O servers.
func (c *Cluster) Servers() int { return len(c.servers) }

// Server returns I/O server i's current instance (for stats inspection).
func (c *Cluster) Server(i int) *server.Server { return c.servers[i].srv.Load() }

// Manager returns the metadata manager (manager 0 of a replicated group).
func (c *Cluster) Manager() *meta.Manager { return c.mgrs[0].mgr.Load() }

// Managers returns the number of managers in the group.
func (c *Cluster) Managers() int { return len(c.mgrs) }

// ManagerAt returns manager i's current instance.
func (c *Cluster) ManagerAt(i int) *meta.Manager { return c.mgrs[i].mgr.Load() }

// newManager builds manager i: in-memory by default, persistent under
// Config.MetaDir when set.
func (c *Cluster) newManager(i int) (*meta.Manager, error) {
	if c.cfg.MetaDir == "" {
		return meta.New(c.cfg.Servers, nil), nil
	}
	dir := filepath.Join(c.cfg.MetaDir, fmt.Sprintf("mgr%d", i))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cluster: manager %d dir: %w", i, err)
	}
	return meta.NewPersistent(c.cfg.Servers, nil, filepath.Join(dir, "meta.json"))
}

// wireManager joins manager i to the replicated group, reaching each peer
// through its gate so a killed manager is unreachable to replication too.
func (c *Cluster) wireManager(i int, standby bool) {
	peers := make([]meta.Caller, len(c.mgrs))
	for j := range peers {
		if j != i {
			peers[j] = directCaller{c.mgrHandler(j)}
		}
	}
	c.mgrs[i].mgr.Load().SetCluster(i, peers, standby)
}

// mgrHandler returns the gated rpc.Handler for manager slot i.
func (c *Cluster) mgrHandler(i int) rpc.Handler {
	slot := c.mgrs[i]
	return func(m wire.Msg) (wire.Msg, error) {
		if slot.down.Load() {
			return nil, ErrServerDown
		}
		return slot.mgr.Load().Handle(m)
	}
}

// KillManager makes manager i unreachable — to clients and to its peers'
// replication ships alike. With Config.MetaDir set this models kill -9:
// RestartManager then rebuilds the instance from its snapshot + WAL.
func (c *Cluster) KillManager(i int) { c.mgrs[i].down.Store(true) }

// RestartManager brings manager i back. Persistent managers are rebuilt
// from disk (snapshot + WAL replay, torn tail and all) and rejoin the
// group as a standby — even a former primary must not resume the role,
// since a newer epoch may have been won while it was dead; it catches up
// via replication from the current primary. In-memory managers keep their
// state (a partition heal rather than a process restart).
func (c *Cluster) RestartManager(i int) error {
	slot := c.mgrs[i]
	if c.cfg.MetaDir != "" {
		slot.mgr.Load().Close() //nolint:errcheck // dead process: state is on disk
		m, err := c.newManager(i)
		if err != nil {
			return err
		}
		slot.mgr.Store(m)
		if len(c.mgrs) > 1 {
			c.wireManager(i, true)
		}
	}
	slot.down.Store(false)
	return nil
}

// PromoteManager unconditionally promotes manager i to primary at a fresh
// epoch, fencing any prior primary.
func (c *Cluster) PromoteManager(i int) error { return c.mgrs[i].mgr.Load().Promote() }

// TryPromoteManager promotes manager i only if no lower-index manager
// answers a status probe (the deterministic promotion rule).
func (c *Cluster) TryPromoteManager(i int) (bool, error) {
	return c.mgrs[i].mgr.Load().TryPromote()
}

// ServerDisk returns I/O server i's modeled disk (for stats inspection).
func (c *Cluster) ServerDisk(i int) *simdisk.Disk { return c.servers[i].disk.Load() }

// handler returns the gated rpc.Handler for server slot i: the down flag
// and any injected faults apply before the server sees the request.
func (c *Cluster) handler(i int) rpc.Handler {
	slot := c.servers[i]
	return func(m wire.Msg) (wire.Msg, error) {
		if slot.down.Load() {
			return nil, ErrServerDown
		}
		if err := slot.applyFaults(m); err != nil {
			return nil, err
		}
		if slot.down.Load() {
			return nil, ErrServerDown
		}
		return slot.srv.Load().Handle(m)
	}
}

// Network returns the cluster's modeled interconnect; tests install simnet
// link faults and schedules through it (Pipe transport).
func (c *Cluster) Network() *simnet.Network { return c.network }

// ServerNodeName returns server i's simnet node name, for addressing link
// faults.
func (c *Cluster) ServerNodeName(i int) string { return c.servers[i].node.Name() }

// PartitionServer cuts server i off: under the Pipe transport its simnet
// links drop in both directions; under Direct the request gate drops. Heal
// with HealServer. Unlike StopServer, a partition is a network event — the
// server process keeps running.
func (c *Cluster) PartitionServer(i int) {
	switch c.cfg.Transport {
	case Pipe:
		c.network.Partition(c.servers[i].node.Name())
	default:
		c.servers[i].down.Store(true)
	}
}

// HealServer reverses PartitionServer.
func (c *Cluster) HealServer(i int) {
	switch c.cfg.Transport {
	case Pipe:
		c.network.Heal(c.servers[i].node.Name())
	default:
		c.servers[i].down.Store(false)
	}
}

// directCaller adapts an rpc.Handler to the client.Caller interface.
type directCaller struct{ h rpc.Handler }

func (d directCaller) Call(m wire.Msg) (wire.Msg, error) { return d.h(m) }

// NewClient attaches a new client to the cluster. Under the Pipe transport
// the client gets its own simulated NIC and real RPC connections to every
// server; the manager is always reached directly (metadata traffic is not
// part of any modeled experiment).
func (c *Cluster) NewClient() *client.Client {
	callers := make([]client.Caller, len(c.servers))
	switch c.cfg.Transport {
	case Direct:
		for i := range c.servers {
			callers[i] = directCaller{c.handler(i)}
		}
	case Pipe:
		c.mu.Lock()
		c.nodes++
		name := fmt.Sprintf("client%d", c.nodes)
		c.mu.Unlock()
		clientNode := c.network.NewNode(name)
		for i := range c.servers {
			cEnd, sEnd := net.Pipe()
			go rpc.ServeConn(sEnd, c.handler(i), c.servers[i].node, clientNode) //nolint:errcheck
			rc := rpc.NewClient(cEnd, clientNode, c.servers[i].node)
			c.mu.Lock()
			c.clients = append(c.clients, rc)
			c.mu.Unlock()
			callers[i] = rc
		}
	}
	mgrCallers := make([]client.Caller, len(c.mgrs))
	for i := range c.mgrs {
		mgrCallers[i] = directCaller{c.mgrHandler(i)}
	}
	cl := client.NewMulti(mgrCallers, callers)
	if c.cfg.Clock.Timed() {
		cl.SetModel(c.cfg.Clock, c.cfg.XORBandwidth, c.cfg.ClientRequestCPU)
	}
	return cl
}

// StopServer marks server i failed: all subsequent calls to it error.
func (c *Cluster) StopServer(i int) { c.servers[i].down.Store(true) }

// RestartServer brings server i back with its storage intact (a process
// restart, not a disk loss).
func (c *Cluster) RestartServer(i int) { c.servers[i].down.Store(false) }

// CrashServer kills server i's process: all subsequent calls error, and the
// in-RAM state (parity locks, lock queues, lease timers, overflow tables)
// is gone. The disk survives. RestartServer then completes the restart —
// the fresh instance reloads the intent journal, so stripes that were
// mid-update at the crash come back fail-stopped and awaiting replay.
// Contrast StopServer, which keeps the same instance (a partition-like
// outage with RAM intact).
func (c *Cluster) CrashServer(i int) {
	slot := c.servers[i]
	slot.down.Store(true)
	disk := slot.disk.Load()
	disk.DropCaches() // the page cache dies with the process
	slot.srv.Store(server.New(i, disk, c.cfg.ServerOpts))
}

// ReplaceServer brings server i back with a blank disk, modeling a disk
// replacement after a crash. The recovery machinery then rebuilds it.
func (c *Cluster) ReplaceServer(i int) {
	disk := simdisk.New(c.cfg.Clock, c.cfg.Disk)
	c.servers[i].disk.Store(disk)
	c.servers[i].srv.Store(server.New(i, disk, c.cfg.ServerOpts))
	c.servers[i].down.Store(false)
}

// TotalStorage sums all live servers' materialized bytes, du-style
// (Table 2's measurement: "the sum of the file sizes at the I/O servers").
func (c *Cluster) TotalStorage() int64 {
	var n int64
	for _, s := range c.servers {
		n += s.srv.Load().Disk().AllocatedBytes()
	}
	return n
}

// DropAllCaches empties every server's page cache.
func (c *Cluster) DropAllCaches() {
	for _, s := range c.servers {
		s.srv.Load().Disk().DropCaches()
	}
}

// SyncAll flushes every server's dirty pages.
func (c *Cluster) SyncAll() {
	for _, s := range c.servers {
		s.srv.Load().Disk().SyncAll()
	}
}

// Close tears down all RPC connections created by NewClient and closes
// every manager (releasing persistent managers' WAL descriptors).
func (c *Cluster) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, rc := range c.clients {
		rc.Close() //nolint:errcheck
	}
	c.clients = nil
	for _, s := range c.mgrs {
		s.mgr.Load().Close() //nolint:errcheck
	}
}
