package cluster

import (
	"bytes"
	"sync"
	"testing"

	"csar/internal/recovery"
	"csar/internal/wire"
)

func newPipeCluster(t *testing.T, n int) *Cluster {
	t.Helper()
	cfg := DefaultConfig(n)
	cfg.Transport = Pipe
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// TestPipeTransportFailureLifecycle runs the failure workflow through the
// real RPC stack (framing, multiplexing, per-request goroutines) instead of
// direct calls: degraded reads and writes, rebuild, verification.
func TestPipeTransportFailureLifecycle(t *testing.T) {
	for _, scheme := range redundantSchemes {
		t.Run(scheme.String(), func(t *testing.T) {
			c := newPipeCluster(t, 4)
			cl := c.NewClient()
			f, err := cl.Create("p", 4, 4096, scheme)
			if err != nil {
				t.Fatal(err)
			}
			ref := pattern(100_000, 1)
			f.WriteAt(ref, 0)

			c.StopServer(1)
			cl.MarkDown(1)
			got := make([]byte, len(ref))
			if _, err := f.ReadAt(got, 0); err != nil {
				t.Fatalf("degraded read over rpc: %v", err)
			}
			if !bytes.Equal(got, ref) {
				t.Fatal("degraded read over rpc returned wrong data")
			}
			patch := pattern(5000, 9)
			if _, err := f.WriteAt(patch, 7777); err != nil {
				t.Fatalf("degraded write over rpc: %v", err)
			}
			copy(ref[7777:], patch)

			c.ReplaceServer(1)
			if err := recovery.Rebuild(cl, f, 1); err != nil {
				t.Fatalf("rebuild over rpc: %v", err)
			}
			cl.MarkUp(1)
			if _, err := f.ReadAt(got, 0); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, ref) {
				t.Fatal("contents wrong after rebuild over rpc")
			}
			problems, err := recovery.Verify(cl, f)
			if err != nil {
				t.Fatal(err)
			}
			if len(problems) > 0 {
				t.Fatalf("inconsistent after rpc lifecycle: %v", problems)
			}
		})
	}
}

// TestPipeTransportConcurrentClients drives parity-lock contention through
// real connections: many clients, one stripe, consistency at the end.
func TestPipeTransportConcurrentClients(t *testing.T) {
	c := newPipeCluster(t, 6)
	setup := c.NewClient()
	const su = 4096
	f, err := setup.Create("shared", 6, su, wire.Raid5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(make([]byte, 5*su), 0); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 5)
	for w := 0; w < 5; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := c.NewClient()
			fw, err := cl.Open("shared")
			if err != nil {
				errs[w] = err
				return
			}
			for round := 0; round < 5; round++ {
				if _, err := fw.WriteAt(pattern(su, byte(w+round)), int64(w)*su); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", w, err)
		}
	}
	problems, err := recovery.Verify(setup, f)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) > 0 {
		t.Fatalf("parity inconsistent over rpc: %v", problems)
	}
}

// TestPipeTransportStoppedServerSurfacesError checks that calls to a
// stopped server fail cleanly through the rpc stack rather than hanging.
func TestPipeTransportStoppedServerSurfacesError(t *testing.T) {
	c := newPipeCluster(t, 3)
	cl := c.NewClient()
	f, err := cl.Create("x", 3, 4096, wire.Raid0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteAt(pattern(50_000, 2), 0)
	c.StopServer(0)
	if _, err := f.ReadAt(make([]byte, 50_000), 0); err == nil {
		t.Fatal("read through stopped server succeeded")
	}
	c.RestartServer(0)
	if _, err := f.ReadAt(make([]byte, 50_000), 0); err != nil {
		t.Fatalf("after restart: %v", err)
	}
}
