package cluster

import (
	"errors"
	"testing"
	"time"

	"csar/internal/client"
	"csar/internal/recovery"
	"csar/internal/scrub"
	"csar/internal/wire"
)

// This file is the deterministic crash-consistency suite for the RAID5
// write-hole closure: a client that dies mid-read-modify-write, a parity
// server that dies before its unlocking parity write lands, and a stalled
// but live client whose heartbeat must keep its lease alive. Every scenario
// ends the same way — recovery.ReplayIntents reconciles the stripe, then
// recovery.Verify and a scrub pass report zero inconsistencies and reads
// return exactly the bytes the surviving writes put down. Ordering comes
// from fault injection and polling, never fixed sleeps racing the work, so
// the scenarios hold under -race and -count=2.

// waitIntent polls server srv's intent list for file ref until it reports
// exactly one intent with the given abandoned state.
func waitIntent(t *testing.T, cl *client.Client, srv int, ref wire.FileRef, abandoned bool) wire.Intent {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := cl.ServerCaller(srv).Call(&wire.ListIntents{File: ref})
		if err != nil {
			t.Fatal(err)
		}
		ints := resp.(*wire.ListIntentsResp).Intents
		if len(ints) == 1 && ints[0].Abandoned == abandoned {
			return ints[0]
		}
		if time.Now().After(deadline) {
			t.Fatalf("intent never reached state abandoned=%v: %+v", abandoned, ints)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestCrashClientMidRMW: a client acquires a stripe's parity lock with a
// short lease, lands new bytes in one data unit, then dies — no heartbeat,
// no unlocking parity write. The server must expire the lease, fail-stop
// the stripe (new RMWs refused with ErrStripeTorn), and replay must
// reconstruct the parity over the bytes the dead client managed to write.
func TestCrashClientMidRMW(t *testing.T) {
	c := newCluster(t, 4)
	cl := c.NewClient()
	f, err := cl.Create("crash-client", 4, 64, wire.Raid5)
	if err != nil {
		t.Fatal(err)
	}
	g := f.Geometry()
	ref := pattern(int(2*g.StripeSize()), 1)
	mustWrite(t, f, ref, 0)

	// The doomed client's half-finished RMW, replayed by hand: locked
	// parity read with a 40ms lease, one data unit overwritten, then
	// silence.
	ps := g.ParityServerOf(0)
	token := uint64(0xD15EA5ED)
	if _, err := cl.ServerCaller(ps).Call(&wire.ReadParity{
		File: f.Ref(), Stripes: []int64{0}, Lock: true, Owner: token, LeaseMS: 40,
	}); err != nil {
		t.Fatal(err)
	}
	first, _ := g.DataUnitsOf(0)
	torn := pattern(int(g.StripeUnit), 9)
	span := wire.Span{Off: g.UnitStart(first), Len: g.StripeUnit}
	if _, err := cl.ServerCaller(g.ServerOf(first)).Call(&wire.WriteData{
		File: f.Ref(), Spans: []wire.Span{span}, Data: torn, Raw: true,
	}); err != nil {
		t.Fatal(err)
	}

	// The lease expires with no heartbeat: the intent goes abandoned.
	in := waitIntent(t, cl, ps, f.Ref(), true)
	if in.Stripe != 0 || in.Owner != token {
		t.Fatalf("abandoned intent = %+v, want stripe 0 owner %d", in, token)
	}
	st := c.Server(ps).IntentStats()
	if st.LeaseExpiries != 1 || st.Abandoned != 1 {
		t.Fatalf("server stats after expiry: %+v", st)
	}

	// The stripe is fail-stopped: a fresh RMW is refused, not wedged.
	if _, err := f.WriteAt(pattern(10, 5), 0); !errors.Is(err, wire.ErrStripeTorn) {
		t.Fatalf("RMW on torn stripe: %v, want ErrStripeTorn", err)
	}

	// Replay reconciles: parity is recomputed from the data units as they
	// are now (old bytes + the dead client's unit).
	rep, err := recovery.ReplayIntents(cl, f)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replayed != 1 || rep.Abandoned != 1 || rep.Open != 0 || rep.Skipped != 0 {
		t.Fatalf("replay report: %+v", rep)
	}
	if m := cl.Metrics(); m.IntentsReplayed != 1 || m.IntentsAbandoned != 1 {
		t.Fatalf("replay metrics: replayed=%d abandoned=%d", m.IntentsReplayed, m.IntentsAbandoned)
	}
	problems, err := recovery.Verify(cl, f)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("verify after replay: %v", problems)
	}
	srep, err := scrub.Run(cl, f, scrub.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !srep.Clean() || srep.IntentSkips != 0 {
		t.Fatalf("scrub after replay: %v (skips=%d)", srep, srep.IntentSkips)
	}

	// Reads return the merged truth, and the stripe accepts RMWs again.
	want := append([]byte(nil), ref...)
	copy(want[g.UnitStart(first):], torn)
	checkRead(t, f, want, 0)
	upd := pattern(10, 6)
	mustWrite(t, f, upd, 0)
	copy(want, upd)
	checkRead(t, f, want, 0)
	if problems, err = recovery.Verify(cl, f); err != nil || len(problems) != 0 {
		t.Fatalf("final verify: %v %v", problems, err)
	}
}

// TestCrashServerMidParityWrite: under the crash-safe RMW ordering the data
// writes land, then the parity server dies before the unlocking parity
// write (and the client's dirty compensation) can reach it. After restart
// the journal must resurrect the intent as abandoned, and replay must
// install parity matching the new data.
func TestCrashServerMidParityWrite(t *testing.T) {
	c := newCluster(t, 4)
	cl := c.NewClient()
	f, err := cl.Create("crash-server", 4, 64, wire.Raid5)
	if err != nil {
		t.Fatal(err)
	}
	g := f.Geometry()
	ref := pattern(int(2*g.StripeSize()), 2)
	mustWrite(t, f, ref, 0)

	p := testPolicy()
	p.LockLease = 10 * time.Second
	p.LeaseRenewEvery = -1 // no heartbeat: nothing to renew in this scenario
	p.CrashSafeRMW = true
	cl.SetPolicy(p)

	// The parity server stops acknowledging parity writes — and the
	// client's compensating dirty unlock — as if it died mid-request.
	ps := g.ParityServerOf(0)
	fwp := c.Inject(FaultPoint{Server: ps, Kind: wire.KWriteParity, Action: FaultDrop})
	ful := c.Inject(FaultPoint{Server: ps, Kind: wire.KUnlockParity, Action: FaultDrop})

	upd := pattern(10, 7)
	if _, err := f.WriteAt(upd, 0); err == nil {
		t.Fatal("RMW succeeded despite dropped parity write")
	}

	// Crash-restart: the fresh instance loads the journal and finds the
	// open intent; no pre-crash update can still be in flight, so it comes
	// back abandoned.
	c.CrashServer(ps)
	fwp.Release()
	ful.Release()
	c.RestartServer(ps)
	in := waitIntent(t, cl, ps, f.Ref(), true)
	if in.Stripe != 0 {
		t.Fatalf("journal-loaded intent = %+v, want stripe 0", in)
	}
	if st := c.Server(ps).IntentStats(); st.Abandoned != 1 {
		t.Fatalf("restart stats: %+v", st)
	}

	// Fail-stopped until replay; then consistent with the landed data.
	if _, err := f.WriteAt(pattern(10, 5), 0); !errors.Is(err, wire.ErrStripeTorn) {
		t.Fatalf("RMW on torn stripe: %v, want ErrStripeTorn", err)
	}
	rep, err := recovery.ReplayIntents(cl, f)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replayed != 1 || rep.Abandoned != 1 {
		t.Fatalf("replay report: %+v", rep)
	}
	problems, err := recovery.Verify(cl, f)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("verify after replay: %v", problems)
	}
	srep, err := scrub.Run(cl, f, scrub.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !srep.Clean() || srep.IntentSkips != 0 {
		t.Fatalf("scrub after replay: %v (skips=%d)", srep, srep.IntentSkips)
	}

	// The crash-safe ordering means the failed RMW's data DID land: reads
	// see it, and the stripe takes writes again.
	want := append([]byte(nil), ref...)
	copy(want, upd)
	checkRead(t, f, want, 0)
	upd2 := pattern(10, 8)
	mustWrite(t, f, upd2, 64)
	copy(want[64:], upd2)
	checkRead(t, f, want, 0)
}

// TestLeaseRenewalKeepsLock: an RMW stalls mid-flight (a data server hangs)
// for several lease periods, but the client is alive — its heartbeat must
// keep renewing the lease so the server never revokes the lock, and the
// RMW must complete normally once the server recovers.
func TestLeaseRenewalKeepsLock(t *testing.T) {
	c := newCluster(t, 4)
	cl := c.NewClient()
	f, err := cl.Create("renew", 4, 64, wire.Raid5)
	if err != nil {
		t.Fatal(err)
	}
	g := f.Geometry()
	ref := pattern(int(g.StripeSize()), 3)
	mustWrite(t, f, ref, 0)

	p := testPolicy()
	p.Retries = 2 // the hung read must succeed on its post-release retry
	p.LockLease = 500 * time.Millisecond
	p.LeaseRenewEvery = 25 * time.Millisecond
	p.CrashSafeRMW = true
	cl.SetPolicy(p)

	// Hang the old-data read of the RMW: the parity lock is already held
	// (with its lease ticking) while the client waits.
	first, _ := g.DataUnitsOf(0)
	fault := c.Inject(FaultPoint{Server: g.ServerOf(first), Kind: wire.KRead, Action: FaultHang})

	upd := pattern(10, 8)
	done := make(chan error, 1)
	go func() {
		_, werr := f.WriteAt(upd, 0)
		done <- werr
	}()
	<-fault.Triggered()
	time.Sleep(3 * p.LockLease / 2) // well past the un-renewed deadline
	fault.Release()
	if werr := <-done; werr != nil {
		t.Fatalf("RMW failed despite live heartbeat: %v", werr)
	}

	m := cl.Metrics()
	if m.LeaseRenewals < 2 {
		t.Fatalf("leaseRenewals=%d, want >=2 over 1.5 lease periods", m.LeaseRenewals)
	}
	if m.LeaseExpiries != 0 {
		t.Fatalf("leaseExpiries=%d, want 0", m.LeaseExpiries)
	}
	ps := g.ParityServerOf(0)
	st := c.Server(ps).IntentStats()
	if st.LeaseExpiries != 0 || st.Abandoned != 0 || st.Retired < 1 || st.LeaseRenewals < 2 {
		t.Fatalf("server stats: %+v", st)
	}
	resp, err := cl.ServerCaller(ps).Call(&wire.ListIntents{File: f.Ref()})
	if err != nil {
		t.Fatal(err)
	}
	if ints := resp.(*wire.ListIntentsResp).Intents; len(ints) != 0 {
		t.Fatalf("intents left behind: %+v", ints)
	}

	want := append([]byte(nil), ref...)
	copy(want, upd)
	checkRead(t, f, want, 0)
	if problems, err := recovery.Verify(cl, f); err != nil || len(problems) != 0 {
		t.Fatalf("verify: %v %v", problems, err)
	}
}
