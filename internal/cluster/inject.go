package cluster

import (
	"sync"
	"sync/atomic"

	"csar/internal/wire"
)

// Request-level fault injection for deterministic failure tests. A
// FaultPoint arms at a specific request — "the After-th WriteData to server
// 2" — independent of wall-clock timing, so scenarios like "server hangs
// mid-stripe" or "server dies holding a parity lock" reproduce exactly,
// under -race and -count=2 alike. It complements the simnet link faults:
// those model the network, these model a wedged or dying server process.

// FaultAction is what an armed fault does to a matching request.
type FaultAction int

const (
	// FaultHang blocks the request until Release, then fails it with
	// ErrServerDown — a wedged server only deadlines can detect.
	FaultHang FaultAction = iota
	// FaultDrop fails matching requests immediately with ErrServerDown
	// until Release — a crashed server with a fast-failing connection.
	FaultDrop
	// FaultBlackhole lets the server execute the request (side effects
	// happen: locks are granted, data lands) but discards the response and
	// fails the call with ErrServerDown — the lost-response case behind
	// every ghost parity lock.
	FaultBlackhole
)

// FaultPoint describes where a fault arms.
type FaultPoint struct {
	// Server is the target server slot.
	Server int
	// Kind selects which requests count and trigger; zero matches any.
	Kind wire.Kind
	// After is how many matching requests pass through unharmed before the
	// fault triggers (0 = the first matching request).
	After int
	// Action is the fault's behavior once triggered.
	Action FaultAction
}

// InjectedFault is one armed fault; the test side of the handshake.
type InjectedFault struct {
	p    FaultPoint
	slot *ioServer

	skip      atomic.Int64 // matching requests still to let through
	triggered chan struct{}
	released  chan struct{}
	trigOnce  sync.Once
	relOnce   sync.Once
}

// Inject arms a fault on server p.Server. The returned handle reports when
// it triggers and releases it.
func (c *Cluster) Inject(p FaultPoint) *InjectedFault {
	f := &InjectedFault{
		p:         p,
		slot:      c.servers[p.Server],
		triggered: make(chan struct{}),
		released:  make(chan struct{}),
	}
	f.skip.Store(int64(p.After))
	f.slot.fmu.Lock()
	f.slot.faults = append(f.slot.faults, f)
	f.slot.fmu.Unlock()
	return f
}

// Triggered is closed when the fault has fired on its first request.
func (f *InjectedFault) Triggered() <-chan struct{} { return f.triggered }

// Release disarms the fault: hung requests fail with ErrServerDown, and
// subsequent requests pass through normally.
func (f *InjectedFault) Release() {
	f.relOnce.Do(func() {
		f.slot.fmu.Lock()
		kept := f.slot.faults[:0]
		for _, g := range f.slot.faults {
			if g != f {
				kept = append(kept, g)
			}
		}
		f.slot.faults = kept
		f.slot.fmu.Unlock()
		close(f.released)
	})
}

// applyFaults runs the slot's armed faults against one request; a non-nil
// error (always ErrServerDown) fails the call. Once triggered, a fault
// keeps matching until Release — retries of the doomed request fail too.
func (s *ioServer) applyFaults(m wire.Msg) error {
	s.fmu.Lock()
	var hit *InjectedFault
	for _, f := range s.faults {
		if f.p.Kind != 0 && f.p.Kind != m.Kind() {
			continue
		}
		if f.skip.Add(-1) >= 0 {
			continue
		}
		hit = f
		break
	}
	s.fmu.Unlock()
	if hit == nil {
		return nil
	}
	hit.trigOnce.Do(func() { close(hit.triggered) })
	switch hit.p.Action {
	case FaultHang:
		<-hit.released
		return ErrServerDown
	case FaultBlackhole:
		// Execute for real, drop the result.
		s.srv.Load().Handle(m) //nolint:errcheck // response is being lost
		return ErrServerDown
	default: // FaultDrop
		return ErrServerDown
	}
}
