package cluster

import (
	"bytes"
	"testing"

	"csar/internal/recovery"
	"csar/internal/wire"
)

// TestCompactReclaimsOverflow verifies the Section 6.7 extension: after a
// small-write-heavy phase, Compact brings a Hybrid file's storage down to
// (nearly) the RAID5 level, preserving contents and consistency.
func TestCompactReclaimsOverflow(t *testing.T) {
	c := newCluster(t, 4) // stripe = 3 * 4096
	cl := c.NewClient()
	f, err := cl.Create("cmp", 4, 4096, wire.Hybrid)
	if err != nil {
		t.Fatal(err)
	}

	// Build the file with many small writes: everything lands in overflow.
	ref := make([]byte, 120_000)
	for off := 0; off < len(ref); off += 1000 {
		data := pattern(1000, byte(off/1000))
		if _, err := f.WriteAt(data, int64(off)); err != nil {
			t.Fatal(err)
		}
		copy(ref[off:], data)
	}
	before, byBefore, err := f.StorageBytes()
	if err != nil {
		t.Fatal(err)
	}
	if byBefore[3] == 0 {
		t.Fatal("small writes produced no overflow")
	}

	if err := f.Compact(); err != nil {
		t.Fatal(err)
	}

	after, byAfter, err := f.StorageBytes()
	if err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Fatalf("compact did not reclaim: %d -> %d", before, after)
	}
	// At most one trailing partial stripe may remain in overflow.
	ss := f.Geometry().StripeSize()
	if byAfter[3] > 2*ss {
		t.Fatalf("overflow still holds %d bytes after compact", byAfter[3])
	}
	// Long-term storage approaches RAID5's ratio (n/(n-1) = 1.33x) plus
	// the small residual tail.
	if ratio := float64(after) / 120_000; ratio > 1.6 {
		t.Fatalf("post-compact storage ratio %.2f, want near 1.33", ratio)
	}

	// Contents intact and redundancy consistent.
	got := make([]byte, len(ref))
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ref) {
		t.Fatal("compact corrupted contents")
	}
	problems, err := recovery.Verify(cl, f)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) > 0 {
		t.Fatalf("inconsistent after compact: %v", problems)
	}

	// Compact is idempotent.
	if err := f.Compact(); err != nil {
		t.Fatal(err)
	}
	again, _, err := f.StorageBytes()
	if err != nil {
		t.Fatal(err)
	}
	if again > after {
		t.Fatalf("second compact grew storage: %d -> %d", after, again)
	}
}

func TestCompactNoOpForOtherSchemes(t *testing.T) {
	c := newCluster(t, 4)
	cl := c.NewClient()
	f, err := cl.Create("r5", 4, 4096, wire.Raid5)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteAt(pattern(50_000, 1), 0)
	before, _, _ := f.StorageBytes()
	if err := f.Compact(); err != nil {
		t.Fatal(err)
	}
	after, _, _ := f.StorageBytes()
	if before != after {
		t.Fatalf("compact changed a raid5 file: %d -> %d", before, after)
	}
}

func TestCompactSurvivesRebuild(t *testing.T) {
	// Compact, then lose a server, then rebuild: the reclaimed state must
	// still be recoverable.
	c := newCluster(t, 4)
	cl := c.NewClient()
	f, err := cl.Create("cr", 4, 4096, wire.Hybrid)
	if err != nil {
		t.Fatal(err)
	}
	ref := pattern(100_000, 3)
	f.WriteAt(ref, 0)
	f.WriteAt(pattern(500, 9), 1234) // overflow extent
	copy(ref[1234:], pattern(500, 9))
	if err := f.Compact(); err != nil {
		t.Fatal(err)
	}
	c.StopServer(2)
	c.ReplaceServer(2)
	if err := recovery.Rebuild(cl, f, 2); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(ref))
	f.ReadAt(got, 0)
	if !bytes.Equal(got, ref) {
		t.Fatal("data lost after compact + rebuild")
	}
}
