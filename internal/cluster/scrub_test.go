package cluster

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"csar/internal/recovery"
	"csar/internal/scrub"
	"csar/internal/wire"
)

// storeName is the server-side file name of one of a file's local stores
// (see server.storeSuffix).
func storeName(ref wire.FileRef, suffix string) string {
	return fmt.Sprintf("f%06d.%s", ref.ID, suffix)
}

// flipByte injects silent corruption: one byte of a server's local store is
// inverted directly on the simulated disk, bypassing the server.
func flipByte(t *testing.T, c *Cluster, srv int, name string, off int64) {
	t.Helper()
	f := c.ServerDisk(srv).Open(name)
	b := make([]byte, 1)
	f.ReadAt(b, off) //nolint:errcheck // zero-fill semantics
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b, off); err != nil {
		t.Fatal(err)
	}
}

func TestScrubCleanAllSchemes(t *testing.T) {
	for _, scheme := range allSchemes {
		t.Run(scheme.String(), func(t *testing.T) {
			c := newCluster(t, 5)
			cl := c.NewClient()
			f, err := cl.Create("f", 5, 64, scheme)
			if err != nil {
				t.Fatal(err)
			}
			writes := []struct {
				off int64
				n   int
			}{
				{0, 256}, {256, 100}, {300, 600}, {2000, 50}, {255, 2}, {1024, 512},
			}
			for _, w := range writes {
				if _, err := f.WriteAt(pattern(w.n, byte(w.off)), w.off); err != nil {
					t.Fatal(err)
				}
			}
			rep, err := scrub.Run(cl, f, scrub.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Clean() {
				t.Fatalf("scrub of a consistent file found mismatches: %v", rep.Problems)
			}
			tot := rep.Totals()
			if scheme == wire.Raid0 || scheme == wire.Raid5NPC {
				// No redundancy invariant to check (NPC parity is
				// deliberately uncomputed).
				if tot.Checked != 0 {
					t.Fatalf("%v scrub checked %d items; nothing to check", scheme, tot.Checked)
				}
				return
			}
			if tot.Checked == 0 {
				t.Fatal("scrub checked nothing")
			}
			m := cl.Metrics()
			if m.ScrubBytes == 0 {
				t.Fatal("scrub bytes not recorded in metrics")
			}
			if m.ScrubFound != 0 || m.ScrubRepaired != 0 || m.ScrubUnrepairable != 0 {
				t.Fatalf("clean scrub recorded mismatches: %+v", m)
			}
		})
	}
}

func TestScrubRefusesDownServer(t *testing.T) {
	c := newCluster(t, 5)
	cl := c.NewClient()
	f, err := cl.Create("f", 5, 64, wire.Raid5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(pattern(512, 1), 0); err != nil {
		t.Fatal(err)
	}
	cl.MarkDown(2)
	if _, err := scrub.Run(cl, f, scrub.Options{}); err == nil {
		t.Fatal("scrub ran with a server marked down")
	}
}

func TestScrubCancel(t *testing.T) {
	c := newCluster(t, 5)
	cl := c.NewClient()
	f, err := cl.Create("f", 5, 64, wire.Raid5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(pattern(2048, 1), 0); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	close(stop)
	rep, err := scrub.Run(cl, f, scrub.Options{Cancel: stop})
	if err != scrub.ErrCanceled {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if got := rep.Totals().Checked; got != 0 {
		t.Fatalf("pre-canceled scrub checked %d stripes", got)
	}
}

// TestScrubRepairsSilentCorruption flips one byte in each redundancy kind's
// stores — a data unit, a mirror unit, a parity block, and both overflow
// copies — and asserts the scrubber detects exactly that mismatch, repairs
// the correct copy, and subsequent (including degraded) reads are right.
func TestScrubRepairsSilentCorruption(t *testing.T) {
	// Geometry used by every subtest: 5 servers, 64-byte units, 256-byte
	// stripes, 512 bytes of in-place data. Unit 3 lives on server 3 at
	// local offset 0; its mirror is on server 4. Stripe 0's parity is on
	// server 4 at local offset 0.
	cases := []struct {
		name    string
		scheme  wire.Scheme
		corrupt func(t *testing.T, c *Cluster, ref wire.FileRef)
		counts  func(r *scrub.Report) scrub.Counts
		degrade int // server to fail for the degraded re-read; -1 skips
	}{
		{
			name:   "raid1-data-unit",
			scheme: wire.Raid1,
			corrupt: func(t *testing.T, c *Cluster, ref wire.FileRef) {
				flipByte(t, c, 3, storeName(ref, "data"), 5)
			},
			counts: func(r *scrub.Report) scrub.Counts { return r.Mirror },
			// Fail the mirror server so the read must use the repaired
			// primary of unit 3.
			degrade: 4,
		},
		{
			name:   "raid1-mirror-unit",
			scheme: wire.Raid1,
			corrupt: func(t *testing.T, c *Cluster, ref wire.FileRef) {
				flipByte(t, c, 4, storeName(ref, "mirror"), 5)
			},
			counts: func(r *scrub.Report) scrub.Counts { return r.Mirror },
			// Fail the primary so the read must use the repaired mirror.
			degrade: 3,
		},
		{
			name:   "raid5-data-unit",
			scheme: wire.Raid5,
			corrupt: func(t *testing.T, c *Cluster, ref wire.FileRef) {
				flipByte(t, c, 3, storeName(ref, "data"), 5)
			},
			counts: func(r *scrub.Report) scrub.Counts { return r.Parity },
			// Fail server 0: unit 0 is reconstructed from parity and the
			// other units of stripe 0, including the repaired unit 3.
			degrade: 0,
		},
		{
			name:   "raid5-parity-block",
			scheme: wire.Raid5,
			corrupt: func(t *testing.T, c *Cluster, ref wire.FileRef) {
				flipByte(t, c, 4, storeName(ref, "parity"), 2)
			},
			counts: func(r *scrub.Report) scrub.Counts { return r.Parity },
			// Reconstruction of unit 0 consumes the repaired parity block.
			degrade: 0,
		},
		{
			name:   "hybrid-primary-overflow",
			scheme: wire.Hybrid,
			corrupt: func(t *testing.T, c *Cluster, ref wire.FileRef) {
				// The partial write below lands in server 0's overflow
				// slot 0 at source offset 0.
				flipByte(t, c, 0, storeName(ref, "overflow"), 5)
			},
			counts:  func(r *scrub.Report) scrub.Counts { return r.Overflow },
			degrade: -1, // the normal read already exercises the repaired primary
		},
		{
			name:   "hybrid-overflow-mirror",
			scheme: wire.Hybrid,
			corrupt: func(t *testing.T, c *Cluster, ref wire.FileRef) {
				flipByte(t, c, 1, storeName(ref, "ovmirror"), 5)
			},
			counts: func(r *scrub.Report) scrub.Counts { return r.Overflow },
			// Fail server 0: the overflow bytes are served from the
			// repaired mirror on server 1.
			degrade: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := newCluster(t, 5)
			cl := c.NewClient()
			f, err := cl.Create("f", 5, 64, tc.scheme)
			if err != nil {
				t.Fatal(err)
			}
			want := pattern(512, 1)
			if _, err := f.WriteAt(want, 0); err != nil {
				t.Fatal(err)
			}
			if tc.scheme == wire.Hybrid {
				// A sub-stripe write goes to the mirrored overflow region.
				part := pattern(20, 9)
				if _, err := f.WriteAt(part, 0); err != nil {
					t.Fatal(err)
				}
				copy(want, part)
			}

			// Pass 1, clean: records last-known-good checksums.
			j := scrub.NewJournal()
			rep, err := scrub.Run(cl, f, scrub.Options{Journal: j})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Clean() {
				t.Fatalf("pre-corruption scrub found mismatches: %v", rep.Problems)
			}

			tc.corrupt(t, c, f.Ref())

			// Pass 2: must find exactly this mismatch and repair it.
			rep, err = scrub.Run(cl, f, scrub.Options{Journal: j, RepairData: true})
			if err != nil {
				t.Fatal(err)
			}
			got := tc.counts(rep)
			if got.Mismatched != 1 || got.Repaired != 1 || got.Unrepairable != 0 {
				t.Fatalf("scrub counts = %+v, want 1 mismatched / 1 repaired (problems: %v)",
					got, rep.Problems)
			}
			if tot := rep.Totals(); tot.Mismatched != 1 {
				t.Fatalf("scrub found %d mismatches beyond the injected one: %v",
					tot.Mismatched, rep.Problems)
			}

			// Pass 3 and an independent recheck must both be clean.
			rep, err = scrub.Run(cl, f, scrub.Options{Journal: j})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Clean() {
				t.Fatalf("post-repair scrub still finds mismatches: %v", rep.Problems)
			}
			problems, err := recovery.Verify(cl, f)
			if err != nil {
				t.Fatal(err)
			}
			if len(problems) > 0 {
				t.Fatalf("recovery.Verify after repair: %v", problems)
			}

			buf := make([]byte, len(want))
			if _, err := f.ReadAt(buf, 0); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf, want) {
				t.Fatal("contents wrong after repair")
			}
			if tc.degrade >= 0 {
				c.StopServer(tc.degrade)
				cl.MarkDown(tc.degrade)
				if _, err := f.ReadAt(buf, 0); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(buf, want) {
					t.Fatalf("degraded read (server %d down) wrong after repair", tc.degrade)
				}
				c.RestartServer(tc.degrade)
				cl.MarkUp(tc.degrade)
			}
		})
	}
}

// TestScrubRepairsMultipleCorruptions corrupts one copy of each redundancy
// kind a Hybrid file has — a data unit, a parity block of a different
// stripe, and an overflow-mirror extent — and asserts one scrub pass
// reports exactly those three mismatches and repairs them all.
func TestScrubRepairsMultipleCorruptions(t *testing.T) {
	c := newCluster(t, 5)
	cl := c.NewClient()
	f, err := cl.Create("f", 5, 64, wire.Hybrid)
	if err != nil {
		t.Fatal(err)
	}
	want := pattern(512, 1)
	if _, err := f.WriteAt(want, 0); err != nil {
		t.Fatal(err)
	}
	part := pattern(20, 9)
	if _, err := f.WriteAt(part, 0); err != nil {
		t.Fatal(err)
	}
	copy(want, part)

	j := scrub.NewJournal()
	rep, err := scrub.Run(cl, f, scrub.Options{Journal: j})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("pre-corruption scrub found mismatches: %v", rep.Problems)
	}

	ref := f.Ref()
	flipByte(t, c, 3, storeName(ref, "data"), 5)     // unit 3, stripe 0
	flipByte(t, c, 3, storeName(ref, "parity"), 2)   // parity of stripe 1
	flipByte(t, c, 1, storeName(ref, "ovmirror"), 5) // mirror of server 0's overflow

	rep, err = scrub.Run(cl, f, scrub.Options{Journal: j, RepairData: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Parity.Mismatched != 2 || rep.Parity.Repaired != 2 {
		t.Fatalf("parity counts = %+v, want 2/2 (problems: %v)", rep.Parity, rep.Problems)
	}
	if rep.Overflow.Mismatched != 1 || rep.Overflow.Repaired != 1 {
		t.Fatalf("overflow counts = %+v, want 1/1 (problems: %v)", rep.Overflow, rep.Problems)
	}
	if tot := rep.Totals(); tot.Mismatched != 3 || tot.Unrepairable != 0 {
		t.Fatalf("totals = %+v, want exactly 3 mismatches all repaired", tot)
	}

	rep, err = scrub.Run(cl, f, scrub.Options{Journal: j})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("post-repair scrub still finds mismatches: %v", rep.Problems)
	}
	problems, err := recovery.Verify(cl, f)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) > 0 {
		t.Fatalf("recovery.Verify after repair: %v", problems)
	}
	buf := make([]byte, len(want))
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, want) {
		t.Fatal("contents wrong after repair")
	}
}

// TestScrubUnrepairableWithoutRepairData checks the data-repair gate: when
// the evidence says the primary data copy is the corrupt one and RepairData
// is off, scrub must report the mismatch as unrepairable and leave every
// copy untouched.
func TestScrubUnrepairableWithoutRepairData(t *testing.T) {
	c := newCluster(t, 5)
	cl := c.NewClient()
	f, err := cl.Create("f", 5, 64, wire.Raid1)
	if err != nil {
		t.Fatal(err)
	}
	want := pattern(512, 1)
	if _, err := f.WriteAt(want, 0); err != nil {
		t.Fatal(err)
	}
	j := scrub.NewJournal()
	if _, err := scrub.Run(cl, f, scrub.Options{Journal: j}); err != nil {
		t.Fatal(err)
	}
	flipByte(t, c, 3, storeName(f.Ref(), "data"), 5)

	rep, err := scrub.Run(cl, f, scrub.Options{Journal: j})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mirror.Mismatched != 1 || rep.Mirror.Repaired != 0 || rep.Mirror.Unrepairable != 1 {
		t.Fatalf("counts = %+v, want 1 mismatched / 0 repaired / 1 unrepairable", rep.Mirror)
	}
	// The mirror still holds the good copy: a degraded read proves it.
	c.StopServer(3)
	cl.MarkDown(3)
	buf := make([]byte, len(want))
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, want) {
		t.Fatal("scrub without RepairData damaged the mirror copy")
	}
}

// TestScrubConcurrentWithWriters runs the scrubber in a loop while three
// foreground writers update disjoint regions, then checks that a few
// quiescent passes converge to a clean file with the writers' data intact —
// the parity-lock interaction and the journal's drop-on-mismatch rule are
// what make this safe.
func TestScrubConcurrentWithWriters(t *testing.T) {
	for _, scheme := range redundantSchemes {
		t.Run(scheme.String(), func(t *testing.T) {
			c := newCluster(t, 5)
			setup := c.NewClient()
			f, err := setup.Create("f", 5, 64, scheme)
			if err != nil {
				t.Fatal(err)
			}
			const writers = 3
			const region = 512 // two whole stripes per writer
			want := make([]byte, writers*region)
			init := pattern(len(want), 3)
			if _, err := f.WriteAt(init, 0); err != nil {
				t.Fatal(err)
			}
			copy(want, init)

			j := scrub.NewJournal()
			stop := make(chan struct{})
			var scrubErr error
			var scrubWG sync.WaitGroup
			scrubWG.Add(1)
			go func() {
				defer scrubWG.Done()
				scl := c.NewClient()
				sf, err := scl.Open("f")
				if err != nil {
					scrubErr = err
					return
				}
				for {
					select {
					case <-stop:
						return
					default:
					}
					if _, err := scrub.Run(scl, sf, scrub.Options{Journal: j}); err != nil {
						scrubErr = err
						return
					}
				}
			}()

			var wg sync.WaitGroup
			errs := make([]error, writers)
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					cl := c.NewClient()
					fw, err := cl.Open("f")
					if err != nil {
						errs[w] = err
						return
					}
					r := rand.New(rand.NewSource(int64(w + 1)))
					base := int64(w) * region
					for round := 0; round < 60; round++ {
						n := 1 + r.Intn(100)
						off := base + int64(r.Intn(region-n))
						data := pattern(n, byte(w*50+round))
						if _, err := fw.WriteAt(data, off); err != nil {
							errs[w] = err
							return
						}
						// Writers own disjoint regions, so updating the
						// shared expectation needs no lock.
						copy(want[off:int(off)+n], data)
					}
				}(w)
			}
			wg.Wait()
			close(stop)
			scrubWG.Wait()
			if scrubErr != nil {
				t.Fatalf("scrub during writes: %v", scrubErr)
			}
			for w, err := range errs {
				if err != nil {
					t.Fatalf("writer %d: %v", w, err)
				}
			}

			// Races seen mid-run leave at most transient inconsistencies;
			// quiescent passes must converge to clean.
			clean := false
			for i := 0; i < 4 && !clean; i++ {
				rep, err := scrub.Run(setup, f, scrub.Options{Journal: j})
				if err != nil {
					t.Fatal(err)
				}
				clean = rep.Clean()
			}
			if !clean {
				t.Fatal("scrub did not converge to clean after writers stopped")
			}
			problems, err := recovery.Verify(setup, f)
			if err != nil {
				t.Fatal(err)
			}
			if len(problems) > 0 {
				t.Fatalf("redundancy inconsistent after concurrent scrub: %v", problems)
			}
			got := make([]byte, len(want))
			if _, err := f.ReadAt(got, 0); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatal("foreground data corrupted by concurrent scrub")
			}
		})
	}
}
