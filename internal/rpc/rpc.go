// Package rpc carries wire messages over a byte-stream connection with
// request/response multiplexing.
//
// Each frame is a 4-byte little-endian length, a 4-byte sequence number, and
// a wire-encoded message. A client tags requests with fresh sequence numbers
// and matches responses; a server handles every request in its own goroutine
// so that one blocked request (a queued parity-lock read, Section 5.1 of the
// paper) never stalls the connection — exactly the behaviour PVFS iods get
// from their event loop.
//
// When the endpoints are simnet nodes, every frame charges the modeled NICs:
// requests on the client's outbound link, responses on the server's. This is
// how the figures' client-link saturation appears without real gigabit
// hardware.
package rpc

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"csar/internal/simnet"
	"csar/internal/wire"
)

// MaxFrame bounds a frame body to keep a corrupt or hostile length prefix
// from allocating unbounded memory.
const MaxFrame = 1 << 30

// maxPooledFrame caps the receive buffers kept warm in the pool; anything
// larger is a one-off and goes back to the GC.
const maxPooledFrame = 4 << 20

// ErrClosed is returned by calls pending on a connection that closed.
var ErrClosed = errors.New("rpc: connection closed")

// ErrTimeout is returned by CallTimeout when the deadline expires before the
// response arrives. It wraps context.DeadlineExceeded so callers can
// classify timeouts without importing this package's sentinel.
var ErrTimeout = fmt.Errorf("rpc: call timed out (%w)", context.DeadlineExceeded)

// bufPool recycles receive-frame buffers. A buffer is returned right after
// wire.Unmarshal, which is safe because every decoder deep-copies what it
// keeps (Decoder.BytesCopy and friends) — nothing downstream of decode may
// alias the frame. The pool-correctness tests poison buffers on Put to
// enforce exactly that.
var bufPool = sync.Pool{New: func() any { return new([]byte) }}

// poisonPooledBuffers, when set by SetPoolPoison in tests, overwrites every
// buffer returned to the pool so a still-referenced alias shows up as
// corruption instead of a heisenbug. Atomic because background connections
// may still be draining frames when a test flips it.
var poisonPooledBuffers atomic.Bool

// SetPoolPoison toggles poison-on-put for the receive-buffer pool
// (test-only).
func SetPoolPoison(on bool) { poisonPooledBuffers.Store(on) }

func getBuf(n int) *[]byte {
	bp := bufPool.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, n)
	}
	*bp = (*bp)[:n]
	return bp
}

func putBuf(bp *[]byte) {
	if bp == nil || cap(*bp) > maxPooledFrame {
		return
	}
	if poisonPooledBuffers.Load() {
		b := (*bp)[:cap(*bp)]
		for i := range b {
			b[i] = 0xDB
		}
	}
	bufPool.Put(bp)
}

// writeFrame stamps the transport header into the frame's reserved prefix
// and puts head and payload on the wire without copying either: one write
// for head-only frames, a writev-style net.Buffers write when a payload
// rides along.
func writeFrame(w io.Writer, seq uint32, fr *wire.Frame) error {
	buf := fr.HeadWithPrefix()
	binary.LittleEndian.PutUint32(buf, uint32(4+fr.BodyLen()))
	binary.LittleEndian.PutUint32(buf[4:], seq)
	if len(fr.Payload) == 0 {
		_, err := w.Write(buf)
		return err
	}
	nb := net.Buffers{buf, fr.Payload}
	_, err := nb.WriteTo(w)
	return err
}

// readFrame reads one frame into a pooled buffer. The returned body aliases
// *bp; the caller must putBuf(bp) as soon as the body has been decoded.
func readFrame(r io.Reader) (seq uint32, body []byte, bp *[]byte, err error) {
	var hdr [4]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n < 4 || n > MaxFrame {
		return 0, nil, nil, fmt.Errorf("rpc: invalid frame length %d", n)
	}
	bp = getBuf(int(n))
	buf := *bp
	if _, err = io.ReadFull(r, buf); err != nil {
		putBuf(bp)
		return 0, nil, nil, err
	}
	return binary.LittleEndian.Uint32(buf), buf[4:], bp, nil
}

// Client issues concurrent calls over one connection.
type Client struct {
	conn io.ReadWriteCloser
	// local and remote are the simnet endpoints; either may be nil for an
	// unmodeled (real TCP) connection.
	local, remote *simnet.Node

	wmu sync.Mutex // serializes frame writes

	mu      sync.Mutex
	seq     uint32
	pending map[uint32]chan msgOrErr
	churn   int // inserts since pending was last (re)allocated
	closed  bool
}

type msgOrErr struct {
	msg wire.Msg
	err error
}

// NewClient wraps conn. If local and remote are non-nil, each request
// charges the modeled transfer from local to remote (and the server side
// charges the response). The client owns conn and closes it on Close.
func NewClient(conn io.ReadWriteCloser, local, remote *simnet.Node) *Client {
	c := &Client{
		conn:    conn,
		local:   local,
		remote:  remote,
		pending: make(map[uint32]chan msgOrErr),
	}
	go c.readLoop()
	return c
}

func (c *Client) readLoop() {
	for {
		seq, body, bp, err := readFrame(c.conn)
		if err != nil {
			c.failAll(err)
			return
		}
		m, err := wire.Unmarshal(body)
		putBuf(bp) // decode deep-copied everything it kept
		c.mu.Lock()
		ch := c.pending[seq]
		c.forget(seq)
		c.mu.Unlock()
		if ch != nil {
			ch <- msgOrErr{m, err}
		}
	}
}

// forget removes a pending entry (mu held). Go maps never shrink their
// bucket arrays, so a burst of timed-out calls would otherwise pin the
// high-water memory forever; once the map drains after enough churn, swap
// in a fresh one.
func (c *Client) forget(seq uint32) {
	delete(c.pending, seq)
	if c.churn > 1024 && len(c.pending) == 0 {
		c.pending = make(map[uint32]chan msgOrErr)
		c.churn = 0
	}
}

// PendingCalls reports the number of in-flight calls (for tests).
func (c *Client) PendingCalls() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

func (c *Client) failAll(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for _, ch := range c.pending {
		ch <- msgOrErr{nil, fmt.Errorf("%w (%v)", ErrClosed, err)}
	}
	c.pending = make(map[uint32]chan msgOrErr)
	c.churn = 0
}

// Call sends req and blocks for the matching response. A wire.Error response
// is converted into a Go error.
func (c *Client) Call(req wire.Msg) (wire.Msg, error) { return c.call(req, 0, 0) }

// CallTimeout is Call with a per-call deadline. When the deadline expires
// before the response arrives the call returns ErrTimeout and the sequence
// number is abandoned: a late response is silently dropped by the read loop,
// and the connection stays usable for other calls. A non-positive timeout
// means no deadline.
func (c *Client) CallTimeout(req wire.Msg, timeout time.Duration) (wire.Msg, error) {
	return c.call(req, timeout, 0)
}

// CallTraced is CallTimeout with an operation trace ID riding the request
// frame's wire header, so the server can correlate this RPC with the client
// operation that issued it. A zero trace sends the plain untraced encoding.
func (c *Client) CallTraced(req wire.Msg, trace uint64, timeout time.Duration) (wire.Msg, error) {
	return c.call(req, timeout, trace)
}

func (c *Client) call(req wire.Msg, timeout time.Duration, trace uint64) (wire.Msg, error) {
	fr := wire.MarshalFrame(req, trace)

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		fr.Free()
		return nil, ErrClosed
	}
	c.seq++
	seq := c.seq
	ch := make(chan msgOrErr, 1)
	c.pending[seq] = ch
	c.churn++
	c.mu.Unlock()

	if timeout <= 0 {
		err := c.send(seq, &fr)
		fr.Free()
		if err != nil {
			c.abandon(seq)
			return nil, err
		}
		return decodeResult(<-ch)
	}

	// The send itself can block (a hung modeled link, a full pipe), so it
	// must race the deadline too. The send goroutine owns the frame and
	// frees it when the write finishes, whether or not the call has been
	// abandoned by then. Because that write can outlive this call, the
	// frame must not alias the caller's buffers: a caller reusing its slice
	// right after ErrTimeout would race the in-flight write and the server
	// could apply a torn payload as a valid write.
	fr.OwnPayload()
	sendErr := make(chan error, 1)
	go func() {
		err := c.send(seq, &fr)
		fr.Free()
		sendErr <- err
	}()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	for {
		select {
		case r := <-ch:
			return decodeResult(r)
		case err := <-sendErr:
			if err != nil {
				c.abandon(seq)
				return nil, err
			}
			sendErr = nil // sent; keep waiting for the response or the deadline
		case <-timer.C:
			c.abandon(seq)
			return nil, ErrTimeout
		}
	}
}

// send charges the modeled link and writes the request frame.
func (c *Client) send(seq uint32, fr *wire.Frame) error {
	if err := c.local.Send(c.remote, int64(8+fr.BodyLen())); err != nil {
		return fmt.Errorf("rpc: send: %w", err)
	}
	c.wmu.Lock()
	err := writeFrame(c.conn, seq, fr)
	c.wmu.Unlock()
	if err != nil {
		return fmt.Errorf("rpc: send: %w", err)
	}
	return nil
}

// abandon forgets a pending call; a late response finds no channel and is
// dropped.
func (c *Client) abandon(seq uint32) {
	c.mu.Lock()
	c.forget(seq)
	c.mu.Unlock()
}

func decodeResult(r msgOrErr) (wire.Msg, error) {
	if r.err != nil {
		return nil, r.err
	}
	if e, ok := r.msg.(*wire.Error); ok {
		return nil, e
	}
	return r.msg, nil
}

// Close shuts the connection down; pending and future calls fail.
func (c *Client) Close() error {
	err := c.conn.Close()
	c.failAll(ErrClosed)
	return err
}

// Handler processes one request and returns its response. Returning an
// error sends a wire.Error to the caller.
type Handler func(req wire.Msg) (wire.Msg, error)

// TracedHandler is a Handler that also receives the request's operation
// trace ID (zero for untraced frames), for per-op correlation in server
// stats and slow-op logs.
type TracedHandler func(req wire.Msg, trace uint64) (wire.Msg, error)

// ServeConn reads requests from conn until it closes, dispatching each to h
// in its own goroutine. If local and remote are non-nil simnet nodes,
// responses charge the modeled transfer from local (the server) to remote
// (the client). ServeConn returns when the connection fails or closes.
func ServeConn(conn io.ReadWriteCloser, h Handler, local, remote *simnet.Node) error {
	return ServeConnTraced(conn, func(req wire.Msg, _ uint64) (wire.Msg, error) {
		return h(req)
	}, local, remote)
}

// ServeConnTraced is ServeConn for handlers that consume the per-request
// trace ID. It owns conn and closes it on return: without that, every
// client that disconnects leaves its accepted descriptor open forever on
// the server, and a long-lived daemon eventually runs out of fds.
func ServeConnTraced(conn io.ReadWriteCloser, h TracedHandler, local, remote *simnet.Node) error {
	defer conn.Close() //nolint:errcheck // already torn down; nothing to report
	var wmu sync.Mutex
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		seq, body, bp, err := readFrame(conn)
		if err != nil {
			return err
		}
		req, trace, err := wire.UnmarshalTraced(body)
		putBuf(bp) // decode deep-copied everything the handler will see
		if err != nil {
			// Unknown or corrupt request: answer with an error frame.
			req = nil
		}
		wg.Add(1)
		go func(seq uint32, req wire.Msg, trace uint64, unmarshalErr error) {
			defer wg.Done()
			var resp wire.Msg
			if unmarshalErr != nil {
				resp = &wire.Error{Text: unmarshalErr.Error()}
			} else {
				r, herr := handleSafely(h, req, trace)
				if herr != nil {
					resp = &wire.Error{Text: herr.Error(), Code: wire.ErrorCodeOf(herr)}
				} else {
					resp = r
				}
			}
			// The response's bulk data (a ReadResp payload) rides the frame
			// by reference; it is a handler-private slice by construction.
			fr := wire.MarshalFrame(resp, 0)
			defer fr.Free()
			if err := local.Send(remote, int64(8+fr.BodyLen())); err != nil {
				// The modeled link dropped the response after the handler ran
				// (work done, reply lost); the client's deadline detects it.
				return
			}
			wmu.Lock()
			defer wmu.Unlock()
			writeFrame(conn, seq, &fr) //nolint:errcheck // conn teardown is detected by readFrame
		}(seq, req, trace, err)
	}
}

// handleSafely converts a handler panic into an error response, so one bad
// request cannot take down a server shared by many clients.
func handleSafely(h TracedHandler, req wire.Msg, trace uint64) (resp wire.Msg, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("rpc: handler panic: %v", r)
		}
	}()
	return h(req, trace)
}
