package rpc

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"csar/internal/wire"
)

// patternOf fills a payload deterministically from a seed so corruption is
// detectable at any point in the frame lifecycle.
func patternOf(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = seed ^ byte(i*13)
	}
	return b
}

// TestPoolPoisonCorrectness is the pool-correctness property test: with
// poison-on-put enabled in both the receive-buffer pool and the frame-head
// pool, every recycled buffer is overwritten the moment it is returned. If
// any stage of readFrame → decode → handler hand-off (or marshal → write →
// Free on the way out) retained an alias into a pooled buffer, the poison
// shows up as payload corruption under this concurrent load. Run it with
// -race for the ordering half of the same property.
func TestPoolPoisonCorrectness(t *testing.T) {
	SetPoolPoison(true)
	wire.SetPoolPoison(true)
	t.Cleanup(func() {
		SetPoolPoison(false)
		wire.SetPoolPoison(false)
	})

	c := startPair(t, func(req wire.Msg) (wire.Msg, error) {
		w := req.(*wire.WriteData)
		// The decoded request must match its seed-derived pattern: the
		// request frame's buffer has already been poisoned by now, so any
		// aliasing of it corrupts w.Data.
		want := patternOf(len(w.Data), byte(w.File.ID))
		if !bytes.Equal(w.Data, want) {
			return nil, fmt.Errorf("request payload corrupted (seed %d, len %d)", w.File.ID, len(w.Data))
		}
		// Echoing the decoded slice exercises the by-reference response
		// payload path: the handler's slice rides the response frame.
		return &wire.ReadResp{Data: w.Data}, nil
	})

	// Sizes straddle the payload-split threshold: head-inlined, barely
	// split, and bulk.
	sizes := []int{100, 3 << 10, 64 << 10}
	const workers = 8
	const rounds = 48

	type kept struct {
		seed byte
		data []byte
	}
	keep := make([][]kept, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				seed := byte(w*rounds + r)
				payload := patternOf(sizes[r%len(sizes)], seed)
				resp, err := c.Call(&wire.WriteData{
					File:  wire.FileRef{ID: uint64(seed)},
					Spans: []wire.Span{{Off: 0, Len: int64(len(payload))}},
					Data:  payload,
				})
				if err != nil {
					t.Errorf("worker %d round %d: %v", w, r, err)
					return
				}
				data := resp.(*wire.ReadResp).Data
				if !bytes.Equal(data, payload) {
					t.Errorf("worker %d round %d: response corrupted", w, r)
					return
				}
				keep[w] = append(keep[w], kept{seed, data})
			}
		}(w)
	}
	wg.Wait()

	// Every retained response must still be intact after all the pool
	// recycling that followed it — a decoded message owns its bytes forever.
	for w, ks := range keep {
		for _, k := range ks {
			if !bytes.Equal(k.data, patternOf(len(k.data), k.seed)) {
				t.Fatalf("worker %d: retained response (seed %d) corrupted by later pool reuse", w, k.seed)
			}
		}
	}
}
