package rpc

import (
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"csar/internal/simnet"
	"csar/internal/simtime"
	"csar/internal/wire"
)

// startPair wires a client to a handler over an in-process connection.
func startPair(t *testing.T, h Handler) *Client {
	t.Helper()
	cEnd, sEnd := net.Pipe()
	go ServeConn(sEnd, h, nil, nil) //nolint:errcheck
	c := NewClient(cEnd, nil, nil)
	t.Cleanup(func() { c.Close() })
	return c
}

func TestCallRoundTrip(t *testing.T) {
	c := startPair(t, func(req wire.Msg) (wire.Msg, error) {
		if _, ok := req.(*wire.Ping); ok {
			return &wire.OK{}, nil
		}
		return nil, errors.New("unexpected message")
	})
	resp, err := c.Call(&wire.Ping{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := resp.(*wire.OK); !ok {
		t.Fatalf("resp = %T", resp)
	}
}

func TestHandlerErrorPropagates(t *testing.T) {
	c := startPair(t, func(req wire.Msg) (wire.Msg, error) {
		return nil, errors.New("no such file")
	})
	_, err := c.Call(&wire.Open{Name: "x"})
	if err == nil || !strings.Contains(err.Error(), "no such file") {
		t.Fatalf("err = %v", err)
	}
}

func TestHandlerPanicBecomesError(t *testing.T) {
	c := startPair(t, func(req wire.Msg) (wire.Msg, error) {
		panic("kaboom")
	})
	_, err := c.Call(&wire.Ping{})
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("err = %v", err)
	}
	// The connection survives a panicking handler... subsequent calls work
	// because the panic is confined to the request goroutine.
	_, err = c.Call(&wire.Ping{})
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("second call err = %v", err)
	}
}

func TestConcurrentCallsMultiplex(t *testing.T) {
	c := startPair(t, func(req wire.Msg) (wire.Msg, error) {
		o := req.(*wire.Open)
		// Vary response latency so completions interleave out of order.
		if len(o.Name)%2 == 0 {
			time.Sleep(2 * time.Millisecond)
		}
		return &wire.ListResp{Names: []string{o.Name}}, nil
	})
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := strings.Repeat("x", i+1)
			resp, err := c.Call(&wire.Open{Name: name})
			if err != nil {
				t.Errorf("call %d: %v", i, err)
				return
			}
			lr := resp.(*wire.ListResp)
			if len(lr.Names) != 1 || lr.Names[0] != name {
				t.Errorf("call %d got %v", i, lr.Names)
			}
		}(i)
	}
	wg.Wait()
}

func TestSlowHandlerDoesNotBlockOthers(t *testing.T) {
	block := make(chan struct{})
	c := startPair(t, func(req wire.Msg) (wire.Msg, error) {
		if _, ok := req.(*wire.List); ok {
			<-block // simulates a queued parity-lock read
			return &wire.ListResp{}, nil
		}
		return &wire.OK{}, nil
	})
	done := make(chan struct{})
	go func() {
		c.Call(&wire.List{}) //nolint:errcheck
		close(done)
	}()
	// While the List call is parked, a Ping must still complete.
	if _, err := c.Call(&wire.Ping{}); err != nil {
		t.Fatal(err)
	}
	close(block)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("blocked call never finished")
	}
}

func TestCloseFailsPendingCalls(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	c := startPair(t, func(req wire.Msg) (wire.Msg, error) {
		<-block
		return &wire.OK{}, nil
	})
	errc := make(chan error, 1)
	go func() {
		_, err := c.Call(&wire.Ping{})
		errc <- err
	}()
	time.Sleep(5 * time.Millisecond)
	c.Close()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("pending call succeeded after Close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pending call never failed")
	}
	if _, err := c.Call(&wire.Ping{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("call after close: %v", err)
	}
}

func TestOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		ServeConn(conn, func(req wire.Msg) (wire.Msg, error) {
			return &wire.OK{}, nil
		}, nil, nil) //nolint:errcheck
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(conn, nil, nil)
	defer c.Close()
	if _, err := c.Call(&wire.Ping{}); err != nil {
		t.Fatal(err)
	}
}

func TestSimnetChargingOnCalls(t *testing.T) {
	clock := &simtime.Clock{Scale: 5 * time.Millisecond}
	nw := simnet.New(clock, simnet.Params{Latency: 0, BandwidthBPS: 1e6})
	cn, sn := nw.NewNode("client"), nw.NewNode("server")

	cEnd, sEnd := net.Pipe()
	go ServeConn(sEnd, func(req wire.Msg) (wire.Msg, error) {
		return &wire.ReadResp{Data: make([]byte, 1e6)}, nil // 1 sim-s response
	}, sn, cn) //nolint:errcheck
	c := NewClient(cEnd, cn, sn)
	defer c.Close()

	start := time.Now()
	if _, err := c.Call(&wire.Read{}); err != nil {
		t.Fatal(err)
	}
	if got := time.Since(start); got < 4*time.Millisecond {
		t.Fatalf("modeled transfer not charged: %v", got)
	}
}

func TestLargePayload(t *testing.T) {
	payload := make([]byte, 8<<20)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	c := startPair(t, func(req wire.Msg) (wire.Msg, error) {
		w := req.(*wire.WriteData)
		return &wire.ReadResp{Data: w.Data}, nil
	})
	resp, err := c.Call(&wire.WriteData{Data: payload})
	if err != nil {
		t.Fatal(err)
	}
	got := resp.(*wire.ReadResp).Data
	if len(got) != len(payload) {
		t.Fatalf("len=%d", len(got))
	}
	for i := range got {
		if got[i] != payload[i] {
			t.Fatalf("byte %d differs", i)
		}
	}
}
