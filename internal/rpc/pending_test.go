package rpc

import (
	"errors"
	"sync"
	"testing"
	"time"

	"csar/internal/wire"
)

// TestTimedOutCallsDrainPendingMap regresses the pending-call bookkeeping:
// a burst of abandoned (timed-out) calls must leave the pending map empty —
// no leaked entries from the abandon path — and the connection must remain
// usable. The client also swaps in a fresh map after enough churn so the
// burst's bucket memory is not pinned forever; that part is not observable
// through len(), but this test drives exactly the churn pattern it exists
// for.
func TestTimedOutCallsDrainPendingMap(t *testing.T) {
	block := make(chan struct{})
	c := startPair(t, func(req wire.Msg) (wire.Msg, error) {
		if _, ok := req.(*wire.Ping); ok {
			<-block // hang every ping past its caller's deadline
		}
		return &wire.OK{}, nil
	})

	const total = 10_000
	const workers = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < total/workers; i++ {
				_, err := c.CallTimeout(&wire.Ping{}, 50*time.Microsecond)
				if err == nil {
					t.Error("hung call succeeded")
					return
				}
				if !errors.Is(err, ErrTimeout) {
					t.Errorf("hung call: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	if n := c.PendingCalls(); n != 0 {
		t.Fatalf("pending map holds %d entries after %d timed-out calls", n, total)
	}

	// Release the hung handlers; their late responses must be dropped
	// silently and a fresh call must still work.
	close(block)
	if _, err := c.Call(&wire.Open{Name: "still-alive"}); err != nil {
		t.Fatalf("call after timeout burst: %v", err)
	}
	if n := c.PendingCalls(); n != 0 {
		t.Fatalf("pending map holds %d entries at idle", n)
	}
}
