package rpc

import (
	"bytes"
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"csar/internal/simnet"
	"csar/internal/wire"
)

func TestCallTimeoutExpiresAndConnectionSurvives(t *testing.T) {
	release := make(chan struct{})
	c := startPair(t, func(req wire.Msg) (wire.Msg, error) {
		if _, ok := req.(*wire.Ping); ok {
			<-release // wedged server
		}
		return &wire.OK{}, nil
	})

	start := time.Now()
	_, err := c.CallTimeout(&wire.Ping{}, 25*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatal("ErrTimeout must wrap context.DeadlineExceeded for uniform classification")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("timeout did not bound the call")
	}

	// Release the wedged handler: its late response must be dropped, not
	// misdelivered, and the connection must stay usable.
	close(release)
	resp, err := c.CallTimeout(&wire.Health{}, time.Second)
	if err != nil {
		t.Fatalf("call after timeout: %v", err)
	}
	if _, ok := resp.(*wire.OK); !ok {
		t.Fatalf("late response leaked into a later call: got %T", resp)
	}
}

func TestCallTimeoutCoversBlockedSend(t *testing.T) {
	// A hung modeled link blocks the send itself; the deadline must fire
	// anyway (the silent-loss failure mode only deadlines detect).
	n := simnet.New(nil, simnet.DefaultParams())
	cn, sn := n.NewNode("client"), n.NewNode("server")
	n.SetLinkFault("client", "server", simnet.LinkFault{Hang: true})
	t.Cleanup(n.ClearFaults)

	cEnd, sEnd := net.Pipe()
	go ServeConn(sEnd, func(wire.Msg) (wire.Msg, error) { return &wire.OK{}, nil }, sn, cn) //nolint:errcheck
	c := NewClient(cEnd, cn, sn)
	t.Cleanup(func() { c.Close() })

	_, err := c.CallTimeout(&wire.Ping{}, 25*time.Millisecond)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want a deadline error", err)
	}

	// Clearing the fault lets the stuck frame drain; the connection keeps
	// working.
	n.ClearFaults()
	if _, err := c.CallTimeout(&wire.Ping{}, time.Second); err != nil {
		t.Fatalf("call after link heal: %v", err)
	}
}

func TestTimedOutSendDoesNotAliasCallerBuffer(t *testing.T) {
	// The client end of an unbuffered pipe with no reader: the send
	// goroutine wedges mid-write, the deadline fires, and the call returns
	// while the frame is still streaming.
	cEnd, sEnd := net.Pipe()
	c := NewClient(cEnd, nil, nil)
	t.Cleanup(func() { c.Close() })

	payload := patternOf(64<<10, 7) // well above the payload-split threshold
	want := append([]byte(nil), payload...)

	_, err := c.CallTimeout(&wire.WriteData{
		File:  wire.FileRef{ID: 7},
		Spans: []wire.Span{{Off: 0, Len: int64(len(payload))}},
		Data:  payload,
	}, 25*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}

	// The caller reuses its buffer the moment the call returns — exactly
	// what a WriteAt caller does with its scratch stripe buffer. The
	// abandoned send, still blocked on the unread pipe, must be streaming a
	// private copy, not this slice.
	for i := range payload {
		payload[i] = 0xFF
	}

	// Drain the pipe and decode the frame that was in flight; a torn or
	// mutated payload here is the write the server would have applied.
	_, body, bp, err := readFrame(sEnd)
	if err != nil {
		t.Fatalf("readFrame: %v", err)
	}
	m, err := wire.Unmarshal(body)
	putBuf(bp)
	if err != nil {
		t.Fatalf("unmarshal in-flight frame: %v", err)
	}
	got := m.(*wire.WriteData).Data
	if !bytes.Equal(got, want) {
		t.Fatal("timed-out send streamed the caller's mutated buffer (torn write)")
	}
}

func TestSendErrorPropagates(t *testing.T) {
	// A dropped link fails the call immediately — no deadline needed — and
	// the error surfaces to the caller.
	n := simnet.New(nil, simnet.DefaultParams())
	cn, sn := n.NewNode("client"), n.NewNode("server")
	n.Partition("server")
	t.Cleanup(n.ClearFaults)

	cEnd, sEnd := net.Pipe()
	go ServeConn(sEnd, func(wire.Msg) (wire.Msg, error) { return &wire.OK{}, nil }, sn, cn) //nolint:errcheck
	c := NewClient(cEnd, cn, sn)
	t.Cleanup(func() { c.Close() })

	if _, err := c.Call(&wire.Ping{}); !errors.Is(err, simnet.ErrLinkDown) {
		t.Fatalf("err = %v, want ErrLinkDown", err)
	}
	n.Heal("server")
	if _, err := c.Call(&wire.Ping{}); err != nil {
		t.Fatalf("call after heal: %v", err)
	}
}

func TestDroppedResponseHitsDeadline(t *testing.T) {
	// The server executes the request but its response frame is lost on the
	// modeled link (the ghost-lock scenario's transport); only the client's
	// deadline reports it.
	n := simnet.New(nil, simnet.DefaultParams())
	cn, sn := n.NewNode("client"), n.NewNode("server")
	n.SetLinkFault("server", "client", simnet.LinkFault{Drop: true})
	t.Cleanup(n.ClearFaults)

	handled := make(chan struct{}, 8)
	cEnd, sEnd := net.Pipe()
	go ServeConn(sEnd, func(wire.Msg) (wire.Msg, error) { //nolint:errcheck
		handled <- struct{}{}
		return &wire.OK{}, nil
	}, sn, cn)
	c := NewClient(cEnd, cn, sn)
	t.Cleanup(func() { c.Close() })

	_, err := c.CallTimeout(&wire.Ping{}, 25*time.Millisecond)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want a deadline error", err)
	}
	select {
	case <-handled:
		// The side effect happened even though the call failed — exactly the
		// asymmetry the client's idempotency rules exist for.
	case <-time.After(2 * time.Second):
		t.Fatal("handler never ran")
	}
}
