package workload

import (
	"testing"

	"csar"
)

func env(t *testing.T, servers int, scheme csar.Scheme, su int64) Env {
	t.Helper()
	c, err := csar.NewCluster(csar.ClusterOptions{Servers: servers})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return Env{Cluster: c, Scheme: scheme, StripeUnit: su}
}

func TestFullStripeWrite(t *testing.T) {
	for _, scheme := range []csar.Scheme{csar.Raid0, csar.Raid1, csar.Raid5, csar.Hybrid} {
		e := env(t, 5, scheme, 4096)
		n, err := FullStripeWrite(e, "fs", 1<<20, 4)
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if n == 0 || n%e.StripeSize() != 0 {
			t.Fatalf("%v: wrote %d bytes", scheme, n)
		}
	}
}

func TestSmallBlockWrite(t *testing.T) {
	e := env(t, 5, csar.Hybrid, 4096)
	n, err := SmallBlockWrite(e, "sb", 1<<19)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no bytes written")
	}
	// Small-block overwrites under Hybrid land in overflow.
	cl := e.Cluster.NewClient()
	f, err := cl.Open("sb")
	if err != nil {
		t.Fatal(err)
	}
	_, byStore, err := f.StorageBytes()
	if err != nil {
		t.Fatal(err)
	}
	if byStore[3] == 0 {
		t.Fatal("hybrid small-block writes produced no overflow data")
	}
}

func TestContention(t *testing.T) {
	e := env(t, 6, csar.Raid5, 2048)
	n, err := Contention(e, "cont", 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if n != 5*4*2048 {
		t.Fatalf("wrote %d", n)
	}
	// Parity must be consistent after contended locked writes.
	cl := e.Cluster.NewClient()
	f, _ := cl.Open("cont")
	problems, err := cl.Verify(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) > 0 {
		t.Fatalf("inconsistent: %v", problems)
	}
}

func TestPerfWriteRead(t *testing.T) {
	e := env(t, 4, csar.Raid1, 4096)
	w, err := PerfWrite(e, "perf", 3, 128<<10)
	if err != nil {
		t.Fatal(err)
	}
	if w != 3*128<<10 {
		t.Fatalf("wrote %d", w)
	}
	r, err := PerfRead(e, "perf", 3, 128<<10)
	if err != nil {
		t.Fatal(err)
	}
	if r != w {
		t.Fatalf("read %d", r)
	}
}

func TestBTIO(t *testing.T) {
	for _, scheme := range []csar.Scheme{csar.Raid5, csar.Hybrid} {
		e := env(t, 5, scheme, 4096)
		class := BTIOClass{Name: "T", Bytes: 2 << 20, Steps: 4}
		n, err := BTIO(e, "btio", 4, class)
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if n == 0 {
			t.Fatalf("%v: nothing written", scheme)
		}
		// Overwrite pass (pre-existing file).
		e.Cluster.DropCaches()
		n2, err := BTIO(e, "btio", 4, class)
		if err != nil {
			t.Fatalf("%v overwrite: %v", scheme, err)
		}
		if n2 != n {
			t.Fatalf("%v overwrite wrote %d vs %d", scheme, n2, n)
		}
		cl := e.Cluster.NewClient()
		f, _ := cl.Open("btio")
		problems, err := cl.Verify(f)
		if err != nil {
			t.Fatal(err)
		}
		if len(problems) > 0 {
			t.Fatalf("%v: inconsistent after BTIO: %v", scheme, problems[:1])
		}
	}
}

func TestBTIOScaled(t *testing.T) {
	step := BTIOClassB.Bytes / int64(BTIOClassB.Steps)
	c := BTIOClassB.Scaled(16)
	if c.Steps != 2 || c.Bytes != 2*step || c.Name != "B" {
		t.Fatalf("scaled class = %+v", c)
	}
	// Per-step size (and therefore per-write request size) is preserved.
	if c.Bytes/int64(c.Steps) != step {
		t.Fatalf("step size changed: %d vs %d", c.Bytes/int64(c.Steps), step)
	}
	if BTIOClassA.Scaled(1).Bytes != 419<<20 {
		t.Fatal("unscaled class changed")
	}
	if got := BTIOClassB.Scaled(8).Steps; got != 5 {
		t.Fatalf("div=8 steps=%d want 5", got)
	}
}

func TestFlashIO(t *testing.T) {
	e := env(t, 4, csar.Hybrid, 16<<10)
	n, err := FlashIO(e, "flash", 4, 2<<20)
	if err != nil {
		t.Fatal(err)
	}
	if n < 2<<20 {
		t.Fatalf("wrote %d", n)
	}
}

func TestCactus(t *testing.T) {
	e := env(t, 4, csar.Raid5, 64<<10)
	n, err := Cactus(e, "cactus", 3, 6<<20)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3*6<<20 {
		t.Fatalf("wrote %d", n)
	}
}

func TestHartreeFock(t *testing.T) {
	e := env(t, 4, csar.Raid1, 16<<10)
	n, err := HartreeFock(e, "hf", 1<<20, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1<<20 {
		t.Fatalf("wrote %d", n)
	}
}

func TestStorageOrderingAcrossSchemes(t *testing.T) {
	// Table 2's qualitative shape on a mostly-large-write workload
	// (Cactus): raid0 < raid5 <= hybrid < raid1.
	totals := map[csar.Scheme]int64{}
	for _, scheme := range []csar.Scheme{csar.Raid0, csar.Raid1, csar.Raid5, csar.Hybrid} {
		e := env(t, 5, scheme, 64<<10)
		if _, err := Cactus(e, "c", 2, 8<<20); err != nil {
			t.Fatal(err)
		}
		totals[scheme] = e.Cluster.TotalStorage()
	}
	if !(totals[csar.Raid0] < totals[csar.Raid5] &&
		totals[csar.Raid5] <= totals[csar.Hybrid] &&
		totals[csar.Hybrid] < totals[csar.Raid1]) {
		t.Fatalf("storage ordering violated: %v", totals)
	}
}

func TestFlashStorageStripeUnitEffect(t *testing.T) {
	// Table 2's FLASH rows: with a large stripe unit the Hybrid scheme's
	// unit-granular overflow slots make it use MORE storage than RAID1;
	// with a small stripe unit it uses less.
	storage := func(su int64) (hybrid, raid1 int64) {
		eh := env(t, 5, csar.Hybrid, su)
		if _, err := FlashIO(eh, "f", 4, 4<<20); err != nil {
			t.Fatal(err)
		}
		hybrid = eh.Cluster.TotalStorage()
		er := env(t, 5, csar.Raid1, su)
		if _, err := FlashIO(er, "f", 4, 4<<20); err != nil {
			t.Fatal(err)
		}
		raid1 = er.Cluster.TotalStorage()
		return
	}
	h64, r64 := storage(64 << 10)
	if h64 <= r64 {
		t.Fatalf("64K stripe unit: hybrid %d should exceed raid1 %d (fragmentation)", h64, r64)
	}
	h8, r8 := storage(8 << 10)
	if h8 >= r8 {
		t.Fatalf("8K stripe unit: hybrid %d should undercut raid1 %d", h8, r8)
	}
}
