// Package workload generates the I/O request streams of every benchmark and
// application in the paper's evaluation (Section 6):
//
//   - the full-stripe and one-block write microbenchmarks (Figure 4);
//   - the parity-lock contention microbenchmark (Figure 3);
//   - ROMIO's perf concurrent-write benchmark (Figure 5);
//   - NAS BTIO (full-mpiio) checkpointing (Figures 6 and 7);
//   - FLASH I/O, Cactus BenchIO and Hartree-Fock (Figure 8 and Table 2).
//
// The generators reproduce the request mix the paper reports at the PVFS
// layer (sizes, alignment, concurrency), not the applications' numerics:
// the redundancy schemes react only to the offset/size/concurrency stream.
package workload

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"csar"
)

// Env binds a workload to a cluster and file configuration.
type Env struct {
	Cluster *csar.Cluster
	Scheme  csar.Scheme
	// StripeUnit is the file stripe unit (default 64 KiB).
	StripeUnit int64
	// FileServers is the number of servers files stripe over (0 = all).
	FileServers int
	// ParityUnits is the RS(k, m) parity count for the ReedSolomon scheme
	// (0 = 2); ignored for other schemes.
	ParityUnits int
}

func (e Env) fileOpts() csar.FileOptions {
	return csar.FileOptions{
		Servers:     e.servers(),
		StripeUnit:  e.stripeUnit(),
		Scheme:      e.Scheme,
		ParityUnits: e.parityUnits(),
	}
}

// parityUnits returns the effective parity-unit count of the env's files:
// RS files default to m = 2, every other scheme takes none.
func (e Env) parityUnits() int {
	if e.Scheme != csar.ReedSolomon {
		return 0
	}
	if e.ParityUnits > 0 {
		return e.ParityUnits
	}
	return 2
}

func (e Env) servers() int {
	if e.FileServers > 0 {
		return e.FileServers
	}
	return e.Cluster.Servers()
}

func (e Env) stripeUnit() int64 {
	if e.StripeUnit > 0 {
		return e.StripeUnit
	}
	return csar.DefaultStripeUnit
}

// StripeSize returns the data bytes per parity stripe for the env's layout.
// For single-server layouts (no parity possible) it degenerates to one
// stripe unit so chunked workloads still have a sensible granule.
func (e Env) StripeSize() int64 {
	w := e.servers() - 1
	if e.Scheme == csar.ReedSolomon {
		w = e.servers() - e.parityUnits()
	}
	if w < 1 {
		w = 1
	}
	return int64(w) * e.stripeUnit()
}

// openOrCreate opens name if it exists, otherwise creates it.
func (e Env) openOrCreate(cl *csar.Client, name string) (*csar.File, error) {
	if f, err := cl.Open(name); err == nil {
		return f, nil
	}
	return cl.Create(name, e.fileOpts())
}

// fill returns a deterministic payload of n bytes.
func fill(n int64, seed byte) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(i)*31 + seed
	}
	return p
}

// FullStripeWrite is the Figure 4(a) microbenchmark: a single client writes
// totalBytes sequentially in chunks of chunkStripes whole stripes — the
// best case for RAID5 and the worst for RAID1's doubled client traffic.
func FullStripeWrite(e Env, name string, totalBytes int64, chunkStripes int) (int64, error) {
	cl := e.Cluster.NewClient()
	f, err := cl.Create(name, e.fileOpts())
	if err != nil {
		return 0, err
	}
	chunk := int64(chunkStripes) * e.StripeSize()
	if chunk <= 0 {
		return 0, fmt.Errorf("workload: non-positive chunk")
	}
	total := totalBytes - totalBytes%chunk
	if total == 0 {
		total = chunk
	}
	buf := fill(chunk, 1)
	for off := int64(0); off < total; off += chunk {
		if _, err := f.WriteAt(buf, off); err != nil {
			return 0, err
		}
	}
	if err := f.Sync(); err != nil {
		return 0, err
	}
	return total, nil
}

// SmallBlockWrite is the Figure 4(b) microbenchmark: a single client
// creates a large file, then overwrites it in one-block (stripe-unit)
// chunks — every write is a partial-stripe update, and because the file
// was just created the old data and parity are in the servers' caches.
func SmallBlockWrite(e Env, name string, totalBytes int64) (int64, error) {
	cl := e.Cluster.NewClient()
	f, err := cl.Create(name, e.fileOpts())
	if err != nil {
		return 0, err
	}
	su := e.stripeUnit()
	total := totalBytes - totalBytes%su
	if total == 0 {
		total = su
	}
	// Create the file first (large sequential write), as the paper does.
	big := fill(total, 2)
	if _, err := f.WriteAt(big, 0); err != nil {
		return 0, err
	}
	// Then overwrite one block at a time.
	buf := fill(su, 3)
	for off := int64(0); off < total; off += su {
		if _, err := f.WriteAt(buf, off); err != nil {
			return 0, err
		}
	}
	if err := f.Sync(); err != nil {
		return 0, err
	}
	return total, nil
}

// Contention is the Figure 3 microbenchmark: `clients` clients repeatedly
// write distinct blocks of the same RAID5 stripe, serializing on the
// stripe's parity lock. The file must stripe over clients+1 servers so the
// stripe has exactly `clients` data blocks. Returns total bytes written.
func Contention(e Env, name string, clients, rounds int) (int64, error) {
	setup := e.Cluster.NewClient()
	if _, err := setup.Create(name, e.fileOpts()); err != nil {
		return 0, err
	}
	su := e.stripeUnit()
	var wrote atomic.Int64
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := e.Cluster.NewClient()
			f, err := cl.Open(name)
			if err != nil {
				errs[w] = err
				return
			}
			buf := fill(su, byte(w))
			for round := 0; round < rounds; round++ {
				if _, err := f.WriteAt(buf, int64(w)*su); err != nil {
					errs[w] = err
					return
				}
				wrote.Add(su)
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return wrote.Load(), nil
}

// PerfWrite is the write phase of ROMIO's perf benchmark (Figure 5b): each
// of `ranks` clients concurrently writes one buffer of bufBytes at offset
// rank*bufBytes, then the file is flushed (the paper reports post-flush
// numbers). Returns total bytes written.
func PerfWrite(e Env, name string, ranks int, bufBytes int64) (int64, error) {
	setup := e.Cluster.NewClient()
	if _, err := setup.Create(name, e.fileOpts()); err != nil {
		return 0, err
	}
	err := csar.RunParallel(ranks, func(r *csar.Rank) error {
		cl := e.Cluster.NewClient()
		f, err := cl.Open(name)
		if err != nil {
			return err
		}
		buf := fill(bufBytes, byte(r.ID()))
		if _, err := f.WriteAt(buf, int64(r.ID())*bufBytes); err != nil {
			return err
		}
		r.Barrier()
		if r.ID() == 0 {
			return f.Sync()
		}
		return nil
	})
	return int64(ranks) * bufBytes, err
}

// PerfRead is the read phase of ROMIO's perf benchmark (Figure 5a): each
// rank reads back its buffer. Redundancy is never read during normal
// operation, so all schemes should perform alike.
func PerfRead(e Env, name string, ranks int, bufBytes int64) (int64, error) {
	err := csar.RunParallel(ranks, func(r *csar.Rank) error {
		cl := e.Cluster.NewClient()
		f, err := cl.Open(name)
		if err != nil {
			return err
		}
		buf := make([]byte, bufBytes)
		_, err = f.ReadAt(buf, int64(r.ID())*bufBytes)
		return err
	})
	return int64(ranks) * bufBytes, err
}

// BTIOClass selects the NAS BTIO problem size. The byte totals are the
// paper's reported RAID0 storage for each class (Table 2), scaled by the
// harness.
type BTIOClass struct {
	Name  string
	Bytes int64
	Steps int
}

// The BTIO classes. BT performs 40 checkpoint dumps over its run.
var (
	BTIOClassA = BTIOClass{"A", 419 << 20, 40}
	BTIOClassB = BTIOClass{"B", 1698 << 20, 40}
	BTIOClassC = BTIOClass{"C", 6802 << 20, 40}
)

// Scaled shrinks the class for fast runs by reducing the number of
// checkpoint steps while keeping each step at its paper-scale size — the
// per-write request sizes and alignment, which drive the experiments'
// behaviour, stay exactly as in the full benchmark.
func (c BTIOClass) Scaled(div int64) BTIOClass {
	if div <= 1 {
		return c
	}
	step := c.Bytes / int64(c.Steps)
	steps := int(int64(c.Steps) / div)
	if steps < 2 {
		steps = 2
	}
	c.Steps = steps
	c.Bytes = step * int64(steps)
	return c
}

// BTIO reproduces the btio-full-mpiio access pattern: `ranks` ranks
// checkpoint a shared solution array in `Steps` collective writes. ROMIO's
// collective buffering (in csar.RunParallel's CollectiveWrite) merges each
// rank's contribution so the file system sees mostly ~4 MB writes whose
// starting offsets are not stripe-aligned — each causing one or two
// partial-stripe writes (Section 6.5). The same function serves the
// initial-write and overwrite experiments: it opens the file if it exists.
func BTIO(e Env, name string, ranks int, class BTIOClass) (int64, error) {
	stepBytes := class.Bytes / int64(class.Steps)
	// Keep the per-step region deliberately unaligned, as in the real
	// benchmark where the solution array size is not a stripe multiple.
	if stepBytes%e.StripeSize() == 0 {
		stepBytes -= 8
	}
	per := stepBytes / int64(ranks)
	if per <= 0 {
		return 0, fmt.Errorf("workload: BTIO step too small for %d ranks", ranks)
	}
	var total atomic.Int64
	err := csar.RunParallel(ranks, func(r *csar.Rank) error {
		cl := e.Cluster.NewClient()
		// Rank 0 creates (or opens) the checkpoint file; the others open it
		// after the barrier, as MPI_File_open with MPI_MODE_CREATE does.
		var f *csar.File
		var err error
		if r.ID() == 0 {
			f, err = e.openOrCreate(cl, name)
		}
		r.Barrier()
		if r.ID() != 0 {
			f, err = cl.Open(name)
		}
		if err != nil {
			return err
		}
		r.Barrier()
		buf := fill(per, byte(r.ID()+1))
		for step := 0; step < class.Steps; step++ {
			base := int64(step) * stepBytes
			off := base + int64(r.ID())*per
			if err := r.CollectiveWrite(f, []csar.Req{{Off: off, Data: buf}}); err != nil {
				return err
			}
			total.Add(per)
		}
		r.Barrier()
		if r.ID() == 0 {
			return f.Sync()
		}
		return nil
	})
	return total.Load(), err
}

// FlashIO reproduces the FLASH I/O benchmark's request mix at the PVFS
// layer: a large number of small records — the paper reports 46% (4
// processes) to 37% (24 processes) of requests under 2 KB — with the rest
// between 100 KB and 300 KB (Sections 6.6 and 6.7). The stream models
// HDF5's on-disk layout: each dataset is a handful of small header and
// attribute records followed by the variable's bulk data, with the bulk
// aligned to the next stripe-unit boundary (HDF5 chunk alignment). The
// isolated small records are what fragment the Hybrid scheme's
// unit-granular overflow slots when the stripe unit is large — the effect
// behind FLASH's Table 2 rows. Requests are independent writes, not
// collectively buffered, matching the paper's observation of small and
// medium requests at the PVFS layer.
func FlashIO(e Env, name string, ranks int, totalBytes int64) (int64, error) {
	setup := e.Cluster.NewClient()
	if _, err := setup.Create(name, e.fileOpts()); err != nil {
		return 0, err
	}
	smallPerDataset := 3 // ~43% of requests under 2 KB, as with 4 processes
	if ranks > 8 {
		smallPerDataset = 2 // ~33%, approaching the 24-process mix
	}
	su := e.stripeUnit()
	var cursor atomic.Int64 // shared layout cursor, as HDF5 allocates datasets
	var total atomic.Int64
	err := csar.RunParallel(ranks, func(r *csar.Rank) error {
		cl := e.Cluster.NewClient()
		f, err := cl.Open(name)
		if err != nil {
			return err
		}
		rng := rand.New(rand.NewSource(int64(r.ID()) + 42))
		write := func(n int64, align bool) error {
			var off int64
			for {
				cur := cursor.Load()
				off = cur
				if align {
					if rem := off % su; rem != 0 {
						off += su - rem
					}
				}
				if cursor.CompareAndSwap(cur, off+n) {
					break
				}
			}
			if _, err := f.WriteAt(fill(n, byte(r.ID())), off); err != nil {
				return err
			}
			total.Add(n)
			return nil
		}
		for total.Load() < totalBytes {
			// Dataset header and attribute records: small, and followed by
			// an alignment gap, so each sits alone in its stripe unit.
			for i := 0; i < smallPerDataset; i++ {
				if err := write(256+rng.Int63n(2<<10-256), i == 0); err != nil {
					return err
				}
			}
			// The variable's bulk data: 4 chunk-aligned medium records.
			for i := 0; i < 4; i++ {
				if err := write(100<<10+rng.Int63n(200<<10), i == 0); err != nil {
					return err
				}
			}
		}
		r.Barrier()
		if r.ID() == 0 {
			return f.Sync()
		}
		return nil
	})
	return total.Load(), err
}

// Cactus reproduces the Cactus/BenchIO checkpoint: each of `ranks` nodes
// writes perRank bytes of checkpoint data in 4 MB chunks into its own
// region of a shared file (Section 6.6).
func Cactus(e Env, name string, ranks int, perRank int64) (int64, error) {
	setup := e.Cluster.NewClient()
	if _, err := setup.Create(name, e.fileOpts()); err != nil {
		return 0, err
	}
	const chunk = 4 << 20
	var total atomic.Int64
	err := csar.RunParallel(ranks, func(r *csar.Rank) error {
		cl := e.Cluster.NewClient()
		f, err := cl.Open(name)
		if err != nil {
			return err
		}
		base := int64(r.ID()) * perRank
		for off := int64(0); off < perRank; off += chunk {
			n := int64(chunk)
			if off+n > perRank {
				n = perRank - off
			}
			if _, err := f.WriteAt(fill(n, byte(r.ID())), base+off); err != nil {
				return err
			}
			total.Add(n)
		}
		r.Barrier()
		if r.ID() == 0 {
			return f.Sync()
		}
		return nil
	})
	return total.Load(), err
}

// HartreeFock reproduces the argos phase of the Hartree-Fock code: a
// sequential application writing ~150 MB in 16 KB requests through the
// PVFS kernel module. The kernel crossing adds a fixed per-call overhead
// that levels the four schemes to within a few percent (Section 6.6);
// kernelOverhead models it (the paper's effect size corresponds to
// roughly half a millisecond per call).
func HartreeFock(e Env, name string, totalBytes int64, kernelOverhead time.Duration) (int64, error) {
	cl := e.Cluster.NewClient()
	f, err := cl.Create(name, e.fileOpts())
	if err != nil {
		return 0, err
	}
	const req = 16 << 10
	total := totalBytes - totalBytes%req
	if total == 0 {
		total = req
	}
	buf := fill(req, 9)
	for off := int64(0); off < total; off += req {
		e.Cluster.ModelDelay(kernelOverhead)
		if _, err := f.WriteAt(buf, off); err != nil {
			return 0, err
		}
	}
	if err := f.Sync(); err != nil {
		return 0, err
	}
	return total, nil
}
